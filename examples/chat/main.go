// Command chat is a serverless instant-messaging application — the
// P2P application class the paper's introduction opens with (ICQ, AIM) —
// built on TPS: a room is simply an event type, and every participant
// both publishes and subscribes.
//
// It also demonstrates the paper's SubscribeMany variant (method (3) of
// the TPSInterface): one callback renders messages to the console while
// a second one maintains the activity counter, each with its own
// exception handler.
//
// Demo mode simulates a three-user conversation in one process:
//
//	go run ./examples/chat
//
// Interactive mode joins a real room over TCP (type lines, ctrl-D to
// leave):
//
//	go run ./examples/chat -mode rdv  -listen 127.0.0.1:9701
//	go run ./examples/chat -name ann  -listen 127.0.0.1:9702 -seed tcp://127.0.0.1:9701
//	go run ./examples/chat -name bob  -listen 127.0.0.1:9703 -seed tcp://127.0.0.1:9701
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

// ChatMessage is the room's event type.
type ChatMessage struct {
	From string
	Text string
	At   time.Time
}

func main() {
	var (
		mode   = flag.String("mode", "demo", "demo | rdv | chat")
		name   = flag.String("name", "anon", "display name (chat mode)")
		listen = flag.String("listen", "", "TCP listen address")
		seeds  = flag.String("seed", "", "comma-separated rendezvous addresses")
	)
	flag.Parse()
	var err error
	switch *mode {
	case "demo":
		err = demo()
	case "rdv":
		err = runRendezvous(*listen)
	default:
		err = chat(*name, *listen, *seeds)
	}
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

// client bundles one participant's TPS stack.
type client struct {
	platform *tps.Platform
	engine   *tps.Engine[ChatMessage]
	intf     *tps.Interface[ChatMessage]
	activity atomic.Int64
}

// join subscribes with two callbacks (console + activity counter), the
// paper's multi-callback subscription.
func (c *client) join(render func(ChatMessage)) error {
	console := tps.CallBackFunc[ChatMessage](func(m ChatMessage) error {
		render(m)
		return nil
	})
	counter := tps.CallBackFunc[ChatMessage](func(ChatMessage) error {
		c.activity.Add(1)
		return nil
	})
	logErr := tps.ExceptionHandlerFunc(func(err error) { log.Println("chat:", err) })
	return c.intf.SubscribeMany(
		[]tps.CallBack[ChatMessage]{console, counter},
		[]tps.ExceptionHandler{logErr, logErr},
	)
}

func newClient(p *tps.Platform) (*client, error) {
	if err := tps.Register[ChatMessage](p); err != nil {
		return nil, err
	}
	eng, err := tps.NewEngine[ChatMessage](p)
	if err != nil {
		return nil, err
	}
	intf, err := eng.NewInterface(nil)
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &client{platform: p, engine: eng, intf: intf}, nil
}

func (c *client) close() { c.engine.Close() }

// demo simulates ann, bob and zoe chatting through a rendezvous.
func demo() error {
	wan := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: 2 * time.Millisecond}})
	defer wan.Close()
	mk := func(name string, rendezvous bool, seeds ...string) (*tps.Platform, error) {
		node, err := wan.AddNode(name)
		if err != nil {
			return nil, err
		}
		return tps.NewPlatform(tps.Config{
			Name: name, Rendezvous: rendezvous, Seeds: seeds,
			FindTimeout: 500 * time.Millisecond, FindInterval: 100 * time.Millisecond,
		}, tps.WithTransport(memnet.New(node)))
	}
	rdv, err := mk("rdv", true)
	if err != nil {
		return err
	}
	defer rdv.Close()

	users := []string{"ann", "bob", "zoe"}
	clients := make([]*client, 0, len(users))
	for _, u := range users {
		p, err := mk(u, false, "mem://rdv")
		if err != nil {
			return err
		}
		defer p.Close()
		c, err := newClient(p)
		if err != nil {
			return err
		}
		defer c.close()
		user := u
		if err := c.join(func(m ChatMessage) {
			if m.From != user { // don't echo own messages to own console
				fmt.Printf("  [%s's screen] %s: %s\n", user, m.From, m.Text)
			}
		}); err != nil {
			return err
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		if !c.engine.AwaitReady(1, 10*time.Second) {
			return fmt.Errorf("a participant never joined the room")
		}
	}

	script := []struct{ who, text string }{
		{"ann", "anyone up for skiing this weekend?"},
		{"bob", "only if we rent — my skis are toast"},
		{"zoe", "there's a TPS app for that now"},
		{"ann", "publish once, every shop hears you. deal."},
	}
	for _, line := range script {
		for i, u := range users {
			if u == line.who {
				msg := ChatMessage{From: line.who, Text: line.text, At: time.Now()}
				if err := clients[i].intf.Publish(msg); err != nil {
					return err
				}
			}
		}
		time.Sleep(150 * time.Millisecond)
	}
	// Everyone should have seen all four messages (including their own:
	// pub/sub loops back).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, c := range clients {
			if c.activity.Load() < int64(len(script)) {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, u := range users {
		fmt.Printf("%s saw %d messages\n", u, clients[i].activity.Load())
	}
	return nil
}

func runRendezvous(listen string) error {
	if listen == "" {
		return fmt.Errorf("-listen is required in rdv mode")
	}
	p, err := tps.NewPlatform(tps.Config{Name: "rdv", ListenTCP: listen, Rendezvous: true})
	if err != nil {
		return err
	}
	defer p.Close()
	fmt.Printf("chat rendezvous on %v; ctrl-C to stop\n", p.Addresses())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	return nil
}

func chat(name, listen, seeds string) error {
	if listen == "" {
		return fmt.Errorf("-listen is required in chat mode")
	}
	var seedList []string
	if seeds != "" {
		seedList = strings.Split(seeds, ",")
	}
	p, err := tps.NewPlatform(tps.Config{Name: name, ListenTCP: listen, Seeds: seedList})
	if err != nil {
		return err
	}
	defer p.Close()
	c, err := newClient(p)
	if err != nil {
		return err
	}
	defer c.close()
	if err := c.join(func(m ChatMessage) {
		if m.From != name {
			fmt.Printf("%s: %s\n", m.From, m.Text)
		}
	}); err != nil {
		return err
	}
	if !c.engine.AwaitReady(1, 15*time.Second) {
		return fmt.Errorf("could not join the room (is the rendezvous up?)")
	}
	fmt.Printf("joined as %s — type messages, ctrl-D to leave\n", name)
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		text := strings.TrimSpace(scanner.Text())
		if text == "" {
			continue
		}
		if err := c.intf.Publish(ChatMessage{From: name, Text: text, At: time.Now()}); err != nil {
			log.Println("publish:", err)
		}
	}
	fmt.Printf("left the room after %d messages\n", c.activity.Load())
	return scanner.Err()
}
