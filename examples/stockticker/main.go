// Command stockticker demonstrates the type-hierarchy semantics of the
// paper's Figure 7: subscribing to a supertype delivers every published
// instance of its subtypes.
//
// The hierarchy:
//
//	Quote (interface)          — fA
//	├── StockQuote             — fB
//	└── FxQuote                — fC
//
// A subscriber to Quote receives stock AND currency quotes; a subscriber
// to StockQuote receives stock quotes only — the paper's
// fA(fA,fB,fC,fD) / fC(fC,fD) flows.
//
//	go run ./examples/stockticker
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

// Quote is the hierarchy root: anything with a symbol and a value.
type Quote interface {
	Symbol() string
	Value() float64
}

// StockQuote is an equity quote.
type StockQuote struct {
	Ticker string
	Price  float64
}

// Symbol implements Quote.
func (q StockQuote) Symbol() string { return q.Ticker }

// Value implements Quote.
func (q StockQuote) Value() float64 { return q.Price }

// FxQuote is a currency-pair quote.
type FxQuote struct {
	Pair string
	Rate float64
}

// Symbol implements Quote.
func (q FxQuote) Symbol() string { return q.Pair }

// Value implements Quote.
func (q FxQuote) Value() float64 { return q.Rate }

func main() {
	if err := run(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	wan := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: 2 * time.Millisecond}})
	defer wan.Close()
	mk := func(name string, rendezvous bool, seeds ...string) (*tps.Platform, error) {
		node, err := wan.AddNode(name)
		if err != nil {
			return nil, err
		}
		p, err := tps.NewPlatform(tps.Config{
			Name: name, Rendezvous: rendezvous, Seeds: seeds,
			FindTimeout: 500 * time.Millisecond, FindInterval: 100 * time.Millisecond,
		}, tps.WithTransport(memnet.New(node)))
		if err != nil {
			return nil, err
		}
		// Type definition phase: the common type model, including the
		// hierarchy, must be shared a priori (§3.2).
		if err := tps.Register[Quote](p); err != nil {
			return nil, err
		}
		if err := tps.RegisterSub[StockQuote, Quote](p); err != nil {
			return nil, err
		}
		if err := tps.RegisterSub[FxQuote, Quote](p); err != nil {
			return nil, err
		}
		return p, nil
	}

	rdv, err := mk("rdv", true)
	if err != nil {
		return err
	}
	defer rdv.Close()
	feed, err := mk("feed", false, "mem://rdv")
	if err != nil {
		return err
	}
	defer feed.Close()
	traderP, err := mk("trader", false, "mem://rdv")
	if err != nil {
		return err
	}
	defer traderP.Close()
	equityP, err := mk("equity-desk", false, "mem://rdv")
	if err != nil {
		return err
	}
	defer equityP.Close()

	// The trader watches EVERYTHING: one subscription to the root type.
	allEng, err := tps.NewEngine[Quote](traderP)
	if err != nil {
		return err
	}
	defer allEng.Close()
	allIntf, err := allEng.NewInterface(nil)
	if err != nil {
		return err
	}
	allDone := make(chan struct{})
	var allCount int
	err = allIntf.Subscribe(tps.CallBackFunc[Quote](func(q Quote) error {
		allCount++
		fmt.Printf("[trader]      %-8s = %10.4f   (%T)\n", q.Symbol(), q.Value(), q)
		if allCount == 4 {
			close(allDone)
		}
		return nil
	}), nil)
	if err != nil {
		return err
	}

	// The equity desk watches stocks only: a subtype subscription with a
	// content filter on top (criteria use the type's own methods).
	eqEng, err := tps.NewEngine[StockQuote](equityP)
	if err != nil {
		return err
	}
	defer eqEng.Close()
	eqIntf, err := eqEng.NewInterface(func(q StockQuote) bool { return q.Price >= 100 })
	if err != nil {
		return err
	}
	err = eqIntf.Subscribe(tps.CallBackFunc[StockQuote](func(q StockQuote) error {
		fmt.Printf("[equity desk] %-8s = %10.4f   (big ticket only)\n", q.Ticker, q.Price)
		return nil
	}), nil)
	if err != nil {
		return err
	}

	// The feed publishes concrete quote types.
	stockEng, err := tps.NewEngine[StockQuote](feed)
	if err != nil {
		return err
	}
	defer stockEng.Close()
	stockIntf, err := stockEng.NewInterface(nil)
	if err != nil {
		return err
	}
	fxEng, err := tps.NewEngine[FxQuote](feed)
	if err != nil {
		return err
	}
	defer fxEng.Close()
	fxIntf, err := fxEng.NewInterface(nil)
	if err != nil {
		return err
	}
	if err := stockEng.Announce(); err != nil {
		return err
	}
	if err := fxEng.Announce(); err != nil {
		return err
	}
	if !stockEng.AwaitReady(1, 10*time.Second) || !fxEng.AwaitReady(1, 10*time.Second) {
		return fmt.Errorf("feed never attached to the quote groups")
	}
	if !allEng.AwaitReady(2, 10*time.Second) {
		return fmt.Errorf("trader did not attach to the subtype groups")
	}

	quotes := []Quote{
		StockQuote{Ticker: "ACME", Price: 142.50},
		FxQuote{Pair: "EURUSD", Rate: 1.0871},
		StockQuote{Ticker: "PENNY", Price: 0.42},
		FxQuote{Pair: "USDCHF", Rate: 0.9112},
	}
	for _, q := range quotes {
		switch v := q.(type) {
		case StockQuote:
			if err := stockIntf.Publish(v); err != nil {
				return err
			}
		case FxQuote:
			if err := fxIntf.Publish(v); err != nil {
				return err
			}
		}
	}
	select {
	case <-allDone:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("trader received %d of 4 quotes", allCount)
	}
	// Give the equity desk a moment to drain.
	time.Sleep(200 * time.Millisecond)
	fmt.Printf("\ntrader saw %d quotes (all types); equity desk saw %d (filtered stocks)\n",
		len(allIntf.ObjectsReceived()), len(eqIntf.ObjectsReceived()))
	return nil
}
