// Command quickstart is the smallest complete TPS program: a publisher
// and a subscriber exchanging typed events through a rendezvous, all in
// one process over the simulated WAN (so it runs anywhere, offline).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

// Greeting is the application-defined event type: TPS's "subject" is
// the type itself.
type Greeting struct {
	From string
	Text string
}

func main() {
	if err := run(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	// A simulated WAN with three nodes: one rendezvous bridging two
	// peers (in a real deployment these are three machines and
	// Config.ListenTCP/Seeds replace the memnet transport).
	wan := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: 2 * time.Millisecond}})
	defer wan.Close()

	platform := func(name string, rendezvous bool, seeds ...string) (*tps.Platform, error) {
		node, err := wan.AddNode(name)
		if err != nil {
			return nil, err
		}
		return tps.NewPlatform(tps.Config{
			Name:         name,
			Rendezvous:   rendezvous,
			Seeds:        seeds,
			FindTimeout:  500 * time.Millisecond,
			FindInterval: 100 * time.Millisecond,
			// AdminAddr: "127.0.0.1:7700", // uncomment, then: curl -s http://127.0.0.1:7700/stats
		}, tps.WithTransport(memnet.New(node)))
	}

	rdv, err := platform("rdv", true)
	if err != nil {
		return err
	}
	defer rdv.Close()
	alice, err := platform("alice", false, "mem://rdv")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := platform("bob", false, "mem://rdv")
	if err != nil {
		return err
	}
	defer bob.Close()

	// Type definition phase: both peers agree on the event type.
	if err := tps.Register[Greeting](alice); err != nil {
		return err
	}
	if err := tps.Register[Greeting](bob); err != nil {
		return err
	}

	// Bob subscribes: initialization + subscription phases.
	bobEngine, err := tps.NewEngine[Greeting](bob)
	if err != nil {
		return err
	}
	defer bobEngine.Close()
	bobIntf, err := bobEngine.NewInterface(nil)
	if err != nil {
		return err
	}
	got := make(chan Greeting, 1)
	err = bobIntf.Subscribe(tps.CallBackFunc[Greeting](func(g Greeting) error {
		got <- g
		return nil
	}), nil)
	if err != nil {
		return err
	}

	// Alice publishes: initialization + publication phases.
	aliceEngine, err := tps.NewEngine[Greeting](alice)
	if err != nil {
		return err
	}
	defer aliceEngine.Close()
	aliceIntf, err := aliceEngine.NewInterface(nil)
	if err != nil {
		return err
	}
	if !aliceEngine.AwaitReady(1, 10*time.Second) {
		return fmt.Errorf("alice never attached to the Greeting event group")
	}
	if err := aliceIntf.Publish(Greeting{From: "alice", Text: "hello, P2P world"}); err != nil {
		return err
	}

	select {
	case g := <-got:
		fmt.Printf("bob received: %q from %s\n", g.Text, g.From)
	case <-time.After(10 * time.Second):
		return fmt.Errorf("timed out waiting for the greeting")
	}
	fmt.Printf("alice sent %d event(s); bob received %d event(s)\n",
		len(aliceIntf.ObjectsSent()), len(bobIntf.ObjectsReceived()))
	return nil
}
