// Command skirental-jxta is the very same ski-rental application as
// examples/skirental — but written directly against the JXTA layer
// (package srjxta), the way the paper's §4.4 does it, to make the
// programming-experience comparison concrete: the application owns its
// own AdvertisementsCreator, AdvertisementsFinder and WireServiceFinder
// plus the duplicate-suppression and multi-advertisement plumbing that
// TPS otherwise hides.
//
//	go run ./examples/skirental-jxta            # one-process demo
//
// Distributed mode mirrors examples/skirental:
//
//	go run ./examples/skirental-jxta -mode rdv -listen 127.0.0.1:9701
//	go run ./examples/skirental-jxta -mode sub -listen 127.0.0.1:9702 -seed tcp://127.0.0.1:9701
//	go run ./examples/skirental-jxta -mode pub -listen 127.0.0.1:9703 -seed tcp://127.0.0.1:9701
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/jxta/transport/tcpnet"
	"github.com/tps-p2p/tps/internal/netsim"
	"github.com/tps-p2p/tps/internal/srapp"
	"github.com/tps-p2p/tps/internal/srapp/srjxta"
)

func main() {
	var (
		mode   = flag.String("mode", "demo", "demo | rdv | pub | sub")
		listen = flag.String("listen", "", "TCP listen address (distributed modes)")
		seeds  = flag.String("seed", "", "comma-separated rendezvous addresses")
		count  = flag.Int("count", 3, "offers to publish (pub mode)")
	)
	flag.Parse()
	if err := run(*mode, *listen, *seeds, *count); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(mode, listen, seeds string, count int) error {
	if mode == "demo" {
		return demo(count)
	}
	if listen == "" {
		return fmt.Errorf("-listen is required in %s mode", mode)
	}
	tr, err := tcpnet.Listen(listen)
	if err != nil {
		return err
	}
	role := rendezvous.RoleEdge
	if mode == "rdv" {
		role = rendezvous.RoleRendezvous
	}
	var seedAddrs []endpoint.Address
	if seeds != "" {
		for _, s := range strings.Split(seeds, ",") {
			seedAddrs = append(seedAddrs, endpoint.Address(s))
		}
	}
	p, err := peer.New(peer.Config{Name: mode, Role: role, Seeds: seedAddrs}, tr)
	if err != nil {
		return err
	}
	defer p.Close()
	fmt.Printf("%s peer %s listening on %v\n", mode, p.ID().Short(), p.Addresses())

	switch mode {
	case "rdv":
		if _, err := p.EnableDaemon(); err != nil {
			return err
		}
		fmt.Println("rendezvous running; ctrl-C to stop")
		waitInterrupt()
		return nil
	case "sub":
		app, err := srjxta.New(p, 5*time.Second)
		if err != nil {
			return err
		}
		defer app.Close()
		if err := app.Subscribe(func(r srapp.SkiRental) {
			fmt.Println("Skis that could be rented:", r)
		}); err != nil {
			return err
		}
		fmt.Println("subscribed; ctrl-C to stop")
		waitInterrupt()
		fmt.Printf("received %d offers in total\n", len(app.Received()))
		return nil
	case "pub":
		app, err := srjxta.New(p, 5*time.Second)
		if err != nil {
			return err
		}
		defer app.Close()
		if !app.AwaitReady(1, 15*time.Second) {
			return fmt.Errorf("no wire connection (is the rendezvous up?)")
		}
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		for i := 0; i < count; i++ {
			offer := srapp.RandomOffer(rng)
			fmt.Println("publishing:", offer)
			if err := app.Publish(offer); err != nil {
				return err
			}
			time.Sleep(time.Second)
		}
		return nil
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// demo runs shop, customer and rendezvous in one process over the
// simulated WAN.
func demo(count int) error {
	wan := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: 2 * time.Millisecond}})
	defer wan.Close()
	mk := func(name string, role rendezvous.Role, seeds ...endpoint.Address) (*peer.Peer, error) {
		node, err := wan.AddNode(name)
		if err != nil {
			return nil, err
		}
		return peer.New(peer.Config{Name: name, Role: role, Seeds: seeds}, memnet.New(node))
	}
	rdv, err := mk("rdv", rendezvous.RoleRendezvous)
	if err != nil {
		return err
	}
	defer rdv.Close()
	if _, err := rdv.EnableDaemon(); err != nil {
		return err
	}
	shopPeer, err := mk("shop", rendezvous.RoleEdge, "mem://rdv")
	if err != nil {
		return err
	}
	defer shopPeer.Close()
	customerPeer, err := mk("customer", rendezvous.RoleEdge, "mem://rdv")
	if err != nil {
		return err
	}
	defer customerPeer.Close()

	shop, err := srjxta.New(shopPeer, 500*time.Millisecond)
	if err != nil {
		return err
	}
	defer shop.Close()
	customer, err := srjxta.New(customerPeer, 5*time.Second)
	if err != nil {
		return err
	}
	defer customer.Close()
	if err := customer.Subscribe(func(r srapp.SkiRental) {
		fmt.Println("Skis that could be rented:", r)
	}); err != nil {
		return err
	}
	if !shop.AwaitReady(1, 10*time.Second) {
		return fmt.Errorf("shop never connected")
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < count; i++ {
		offer := srapp.RandomOffer(rng)
		fmt.Println("shop publishes:", offer)
		if err := shop.Publish(offer); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(customer.Received()) < count && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("customer received %d of %d offers\n", len(customer.Received()), count)
	return nil
}

func waitInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}
