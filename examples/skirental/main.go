// Command skirental is the paper's testbed application (§4) over the
// TPS API: shops publish ski-rental offers, customers subscribe and
// compare them — the CLI equivalent of the paper's Figures 12 and 13.
//
// Demo mode (default) runs a rendezvous, a shop and a customer in one
// process over the simulated WAN:
//
//	go run ./examples/skirental
//
// Distributed mode runs one role per process over TCP:
//
//	go run ./examples/skirental -mode rdv  -listen 127.0.0.1:9701
//	go run ./examples/skirental -mode sub  -listen 127.0.0.1:9702 -seed tcp://127.0.0.1:9701
//	go run ./examples/skirental -mode pub  -listen 127.0.0.1:9703 -seed tcp://127.0.0.1:9701 -count 5
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
	"github.com/tps-p2p/tps/internal/srapp"
	"github.com/tps-p2p/tps/internal/srapp/srtps"
)

func main() {
	var (
		mode   = flag.String("mode", "demo", "demo | rdv | pub | sub")
		listen = flag.String("listen", "", "TCP listen address (distributed modes)")
		seeds  = flag.String("seed", "", "comma-separated rendezvous addresses")
		count  = flag.Int("count", 3, "offers to publish (pub mode)")
		pause  = flag.Duration("pause", time.Second, "pause between offers (pub mode)")
	)
	flag.Parse()
	if err := run(*mode, *listen, *seeds, *count, *pause); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(mode, listen, seeds string, count int, pause time.Duration) error {
	switch mode {
	case "demo":
		return demo(count)
	case "rdv", "pub", "sub":
		return distributed(mode, listen, seeds, count, pause)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// demo runs all three roles in one process over a simulated WAN.
func demo(count int) error {
	wan := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: 2 * time.Millisecond}})
	defer wan.Close()
	mk := func(name string, rendezvous bool, seeds ...string) (*tps.Platform, error) {
		node, err := wan.AddNode(name)
		if err != nil {
			return nil, err
		}
		return tps.NewPlatform(tps.Config{
			Name: name, Rendezvous: rendezvous, Seeds: seeds,
			FindTimeout: 500 * time.Millisecond, FindInterval: 100 * time.Millisecond,
		}, tps.WithTransport(memnet.New(node)))
	}
	rdv, err := mk("rdv", true)
	if err != nil {
		return err
	}
	defer rdv.Close()
	shopP, err := mk("shop", false, "mem://rdv")
	if err != nil {
		return err
	}
	defer shopP.Close()
	customerP, err := mk("customer", false, "mem://rdv")
	if err != nil {
		return err
	}
	defer customerP.Close()

	customer, err := srtps.New(customerP)
	if err != nil {
		return err
	}
	defer customer.Close()
	if err := customer.SubscribeConsole(os.Stdout); err != nil {
		return err
	}

	shop, err := srtps.New(shopP)
	if err != nil {
		return err
	}
	defer shop.Close()
	if !shop.AwaitReady(1, 10*time.Second) {
		return fmt.Errorf("shop never attached to the SkiRental event group")
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < count; i++ {
		offer := srapp.RandomOffer(rng)
		fmt.Println("shop publishes:", offer)
		if err := shop.Publish(offer); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(customer.Received()) < count && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("customer received %d of %d offers\n", len(customer.Received()), count)
	return nil
}

// distributed runs one role over TCP.
func distributed(mode, listen, seeds string, count int, pause time.Duration) error {
	if listen == "" {
		return fmt.Errorf("-listen is required in %s mode", mode)
	}
	var seedList []string
	if seeds != "" {
		seedList = strings.Split(seeds, ",")
	}
	platform, err := tps.NewPlatform(tps.Config{
		Name:       mode,
		ListenTCP:  listen,
		Seeds:      seedList,
		Rendezvous: mode == "rdv",
	})
	if err != nil {
		return err
	}
	defer platform.Close()
	fmt.Printf("%s peer %s listening on %v\n", mode, platform.PeerID(), platform.Addresses())

	switch mode {
	case "rdv":
		fmt.Println("rendezvous running; ctrl-C to stop")
		waitInterrupt()
		return nil
	case "sub":
		app, err := srtps.New(platform)
		if err != nil {
			return err
		}
		defer app.Close()
		if err := app.SubscribeConsole(os.Stdout); err != nil {
			return err
		}
		fmt.Println("subscribed to SkiRental offers; ctrl-C to stop")
		waitInterrupt()
		fmt.Printf("received %d offers in total\n", len(app.Received()))
		return nil
	default: // pub
		app, err := srtps.New(platform)
		if err != nil {
			return err
		}
		defer app.Close()
		if !app.AwaitReady(1, 15*time.Second) {
			return fmt.Errorf("no connection to the SkiRental event group (is the rendezvous up?)")
		}
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		for i := 0; i < count; i++ {
			offer := srapp.RandomOffer(rng)
			fmt.Println("publishing:", offer)
			if err := app.Publish(offer); err != nil {
				return err
			}
			time.Sleep(pause)
		}
		return nil
	}
}

func waitInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}
