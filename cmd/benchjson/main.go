// Command benchjson runs the repo's benchmark suite and emits the
// results as machine-readable JSON, so the perf trajectory stays
// comparable across PRs without anyone hand-transcribing `go test
// -bench` output into tables. Typical use, from the repo root:
//
//	go run ./cmd/benchjson -out BENCH_9.json
//
// Each benchmark maps to its measured metrics (ns/op, B/op, allocs/op,
// plus any custom b.ReportMetric units such as events/sec). Multiple
// -count runs of the same benchmark are averaged. The GOMAXPROCS suffix
// (`-8`) is stripped from names so files diff cleanly across machines;
// the procs value is recorded once in the metadata instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"github.com/tps-p2p/tps/internal/obs"
)

type run struct {
	sums   map[string]float64
	counts map[string]int
}

func main() {
	bench := flag.String("bench", "LocalPublishDeliver|Fig18InvocationTime|SeenObserve|MessageCodec|EventLogAppend", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value; results are averaged")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "BENCH_9.json", `output path, or "-" for stdout`)
	flag.Parse()

	args := []string{
		"test", "-run", "xxx", "-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	results := make(map[string]*run)
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // keep the human-readable stream visible
		parseLine(line, results)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test: %w", err))
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched %q", *bench))
	}

	doc := struct {
		GeneratedBy string `json:"generated_by"`
		GoVersion   string `json:"go_version"`
		GOMAXPROCS  int    `json:"gomaxprocs"`
		// ObsSchemaVersion records which runtime stats schema
		// (internal/obs, the /stats endpoint) this build carries, so a
		// benchmark file can be matched to the introspection format of
		// the binary that produced it.
		ObsSchemaVersion int                           `json:"obs_schema_version"`
		Bench            string                        `json:"bench"`
		Benchtime        string                        `json:"benchtime"`
		Count            int                           `json:"count"`
		Benchmarks       map[string]map[string]float64 `json:"benchmarks"`
	}{
		GeneratedBy:      "cmd/benchjson",
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		ObsSchemaVersion: obs.SchemaVersion,
		Bench:            *bench,
		Benchtime:        *benchtime,
		Count:            *count,
		Benchmarks:       make(map[string]map[string]float64, len(results)),
	}
	for name, r := range results {
		metrics := make(map[string]float64, len(r.sums))
		for unit, sum := range r.sums {
			metrics[unit] = round3(sum / float64(r.counts[unit]))
		}
		doc.Benchmarks[name] = metrics
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(doc.Benchmarks))
	for n := range doc.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s (%s)\n", len(names), *out, strings.Join(names, ", "))
}

// parseLine folds one `go test -bench` result line into results. The
// format is: name, iteration count, then value/unit pairs — e.g.
// `BenchmarkFoo-8  1000  1234 ns/op  56 B/op  7 allocs/op`.
func parseLine(line string, results map[string]*run) {
	if !strings.HasPrefix(line, "Benchmark") {
		return
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return // not an iteration count: some other Benchmark-prefixed line
	}
	r := results[name]
	if r == nil {
		r = &run{sums: make(map[string]float64), counts: make(map[string]int)}
		results[name] = r
	}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		r.sums[unit] += value
		r.counts[unit]++
	}
}

func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
