// Command rendezvous runs a standalone rendezvous/relay daemon over
// TCP: the infrastructure peer that bridges sub-networks, tracks
// connected peers and forwards traffic for firewalled ones. TPS event
// groups of any type are served by the one daemon (it joins none of
// them).
//
// Operational state is served over the embedded admin endpoint instead
// of periodic log lines:
//
//	go run ./cmd/rendezvous -listen 0.0.0.0:9701
//	curl -s http://127.0.0.1:7700/stats | jq .
//	go run ./cmd/tpsctl stats -admin 127.0.0.1:7700
//
//	go run ./cmd/rendezvous -listen 0.0.0.0:9702 -seed tcp://host-a:9701   # mesh
//
// A replica set — rendezvous that anti-entropy-sync their durable event
// logs so any one of them can serve the others' retained history after
// a crash — is formed by pointing replicas at each other (they must
// all run with -log-dir):
//
//	go run ./cmd/rendezvous -listen :9701 -log-dir /var/tps/a -replica tcp://host-b:9702
//	go run ./cmd/rendezvous -listen :9702 -log-dir /var/tps/b -replica tcp://host-a:9701
//
// Clients list both replicas as seeds with failover enabled and elect
// one active; inspect sync state with `tpsctl replicas`.
//
// The admin server carries no authentication: keep it on loopback (the
// default) unless the network is trusted. -admin "" disables it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/obs/admin"
)

func main() {
	var (
		listen    = flag.String("listen", "0.0.0.0:9701", "TCP listen address")
		seeds     = flag.String("seed", "", "comma-separated addresses of other rendezvous to mesh with")
		name      = flag.String("name", "rendezvous", "peer name")
		adminAddr = flag.String("admin", fmt.Sprintf("127.0.0.1:%d", admin.DefaultPort),
			"HTTP admin address serving /stats, /peers, /health (empty disables)")
		logDir   = flag.String("log-dir", "", "directory for the durable event log (empty disables durability)")
		logSync  = flag.String("log-sync", "", `event log fsync policy: "none", "roll" or "always"`)
		replicas = flag.String("replica", "", "comma-separated addresses of the other replica-set members to anti-entropy-sync the event log with (requires -log-dir)")
		syncInt  = flag.Duration("sync-interval", 0, "anti-entropy digest cadence for -replica (0 = default 5s)")
	)
	flag.Parse()
	if err := run(*listen, *seeds, *name, *adminAddr, *logDir, *logSync, *replicas, *syncInt); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(listen, seeds, name, adminAddr, logDir, logSync, replicas string, syncInt time.Duration) error {
	cfg := tps.Config{
		Name:                name,
		ListenTCP:           listen,
		Rendezvous:          true,
		AdminAddr:           adminAddr,
		LogDir:              logDir,
		LogSync:             logSync,
		ReplicaSyncInterval: syncInt,
	}
	if seeds != "" {
		for _, s := range strings.Split(seeds, ",") {
			cfg.Seeds = append(cfg.Seeds, strings.TrimSpace(s))
		}
	}
	if replicas != "" {
		if logDir == "" {
			return fmt.Errorf("-replica requires -log-dir: replication syncs the durable event log")
		}
		for _, s := range strings.Split(replicas, ",") {
			cfg.ReplicaSeeds = append(cfg.ReplicaSeeds, strings.TrimSpace(s))
		}
	}
	p, err := tps.NewPlatform(cfg)
	if err != nil {
		return err
	}
	defer p.Close()
	fmt.Printf("rendezvous %s up on %v (peers seed with tcp://<this-host>:%s)\n",
		p.PeerID(), p.Addresses(), hostPort(listen))
	if len(cfg.ReplicaSeeds) > 0 {
		fmt.Printf("replica set: syncing event log with %v\n", cfg.ReplicaSeeds)
	}
	if addr := p.AdminAddr(); addr != "" {
		fmt.Printf("admin endpoint on http://%s (/stats /peers /subscriptions /health /rpc)\n", addr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("shutting down")
	return nil
}

func hostPort(listen string) string {
	if i := strings.LastIndex(listen, ":"); i >= 0 {
		return listen[i+1:]
	}
	return listen
}
