// Command rendezvous runs a standalone rendezvous/relay daemon over
// TCP: the infrastructure peer that bridges sub-networks, tracks
// connected peers and forwards traffic for firewalled ones. TPS event
// groups of any type are served by the one daemon (it joins none of
// them).
//
//	go run ./cmd/rendezvous -listen 0.0.0.0:9701
//	go run ./cmd/rendezvous -listen 0.0.0.0:9702 -seed tcp://host-a:9701   # mesh
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/tcpnet"
)

func main() {
	var (
		listen = flag.String("listen", "0.0.0.0:9701", "TCP listen address")
		seeds  = flag.String("seed", "", "comma-separated addresses of other rendezvous to mesh with")
		name   = flag.String("name", "rendezvous", "peer name")
		stats  = flag.Duration("stats", 30*time.Second, "stats print interval (0 disables)")
	)
	flag.Parse()
	if err := run(*listen, *seeds, *name, *stats); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(listen, seeds, name string, statsEvery time.Duration) error {
	tr, err := tcpnet.Listen(listen)
	if err != nil {
		return err
	}
	var seedAddrs []endpoint.Address
	if seeds != "" {
		for _, s := range strings.Split(seeds, ",") {
			seedAddrs = append(seedAddrs, endpoint.Address(strings.TrimSpace(s)))
		}
	}
	p, err := peer.New(peer.Config{
		Name:  name,
		Role:  rendezvous.RoleRendezvous,
		Seeds: seedAddrs,
	}, tr)
	if err != nil {
		return err
	}
	defer p.Close()
	daemon, err := p.EnableDaemon()
	if err != nil {
		return err
	}
	defer daemon.Close()
	fmt.Printf("rendezvous %s up on %v (peers seed with tcp://<this-host>:%s)\n",
		p.ID().Short(), p.Addresses(), hostPort(listen))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	if statsEvery <= 0 {
		<-stop
		return nil
	}
	ticker := time.NewTicker(statsEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			rs := daemon.Rendezvous.Stats()
			es := p.Endpoint().Stats()
			ts := tr.Stats()
			fmt.Printf("clients=%d propagated=%d delivered=%d dup=%d | msgs in/out=%d/%d bytes in/out=%d/%d\n",
				rs.LeasesActive, rs.Propagated, rs.Delivered, rs.Duplicates,
				es.MsgsIn, es.MsgsOut, es.BytesIn, es.BytesOut)
			fmt.Printf("  health: sendfail=%d suspect=%d probes=%d evicted=%d breaker-skips=%d seedfail=%d | tcp sent/dropped/requeued=%d/%d/%d dialfail=%d writefail=%d redials=%d\n",
				rs.SendFailures, rs.Suspected, rs.Probes, rs.Evicted, rs.BreakerSkips, rs.SeedFailures,
				ts.Sent, ts.Dropped, ts.Requeued, ts.DialFailures, ts.WriteFailures, ts.Redials)
		case <-stop:
			fmt.Println("shutting down")
			return nil
		}
	}
}

func hostPort(listen string) string {
	if i := strings.LastIndex(listen, ":"); i >= 0 {
		return listen[i+1:]
	}
	return listen
}
