// Command tpsctl is the operator's Swiss-army knife for a live TPS/JXTA
// mesh: discover advertisements, query peer health (PIP), and probe
// event types — without writing a program.
//
//	tpsctl -seed tcp://rdv:9701 discover            # list PS.* event groups
//	tpsctl -seed tcp://rdv:9701 discover -name 'PS.SkiRental*'
//	tpsctl -seed tcp://rdv:9701 peerinfo tcp://host:9702
//	tpsctl -seed tcp://rdv:9701 listen SkiRental    # dump raw events of a type group
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/transport/tcpnet"
	"github.com/tps-p2p/tps/internal/jxta/wire"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:0", "local TCP listen address")
		seeds  = flag.String("seed", "", "comma-separated rendezvous addresses (required)")
		name   = flag.String("name", "PS.*", "advertisement name pattern (discover)")
		wait   = flag.Duration("wait", 2*time.Second, "how long to collect discovery responses")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tpsctl [flags] discover | peerinfo <addr> | listen <type>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Args()[1:], *listen, *seeds, *name, *wait); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(cmd string, args []string, listen, seeds, namePat string, wait time.Duration) error {
	if seeds == "" {
		return fmt.Errorf("-seed is required")
	}
	tr, err := tcpnet.Listen(listen)
	if err != nil {
		return err
	}
	var seedAddrs []endpoint.Address
	for _, s := range strings.Split(seeds, ",") {
		seedAddrs = append(seedAddrs, endpoint.Address(strings.TrimSpace(s)))
	}
	p, err := peer.New(peer.Config{Name: "tpsctl", Seeds: seedAddrs}, tr)
	if err != nil {
		return err
	}
	defer p.Close()
	net := p.NetGroup()
	if !net.AwaitRendezvous(10 * time.Second) {
		return fmt.Errorf("no rendezvous reachable at %s", seeds)
	}

	switch cmd {
	case "discover":
		return discover(p, namePat, wait)
	case "peerinfo":
		if len(args) != 1 {
			return fmt.Errorf("usage: tpsctl peerinfo <addr>")
		}
		return peerInfo(p, endpoint.Address(args[0]))
	case "listen":
		if len(args) != 1 {
			return fmt.Errorf("usage: tpsctl listen <type-name>")
		}
		return listenType(p, args[0], wait)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func discover(p *peer.Peer, pattern string, wait time.Duration) error {
	net := p.NetGroup()
	if err := net.Discovery.GetRemoteAdvertisements(adv.Group, "Name", pattern, 50); err != nil {
		return err
	}
	time.Sleep(wait)
	recs := net.Discovery.GetLocalAdvertisements(adv.Group, "Name", pattern)
	if len(recs) == 0 {
		fmt.Println("no advertisements found")
		return nil
	}
	fmt.Printf("%-28s %-12s %-12s %s\n", "NAME", "GROUP", "PUBLISHER", "WIRE PIPE")
	for _, rec := range recs {
		pg, ok := rec.Adv.(*adv.PeerGroupAdv)
		if !ok {
			continue
		}
		pipe := "-"
		if svc, ok := pg.Service(wire.ServiceName); ok && svc.Pipe != nil {
			pipe = svc.Pipe.PipeID.Short()
		}
		fmt.Printf("%-28s %-12s %-12s %s\n", pg.Name, pg.GroupID.Short(), pg.PeerID.Short(), pipe)
	}
	return nil
}

func peerInfo(p *peer.Peer, addr endpoint.Address) error {
	info, err := p.NetGroup().PeerInfo.Query(addr, 5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("peer      %s\n", info.PeerID)
	fmt.Printf("uptime    %v\n", info.Uptime().Round(time.Second))
	fmt.Printf("msgs      in=%d out=%d\n", info.MsgsIn, info.MsgsOut)
	fmt.Printf("bytes     in=%d out=%d\n", info.BytesIn, info.BytesOut)
	if info.LastInUnixMS > 0 {
		fmt.Printf("last in   %v\n", time.UnixMilli(info.LastInUnixMS).Format(time.RFC3339))
	}
	if info.LastOutUnixMS > 0 {
		fmt.Printf("last out  %v\n", time.UnixMilli(info.LastOutUnixMS).Format(time.RFC3339))
	}
	return nil
}

func listenType(p *peer.Peer, typeName string, wait time.Duration) error {
	net := p.NetGroup()
	pattern := "PS." + typeName + "*"
	if err := net.Discovery.GetRemoteAdvertisements(adv.Group, "Name", pattern, 50); err != nil {
		return err
	}
	time.Sleep(wait)
	recs := net.Discovery.GetLocalAdvertisements(adv.Group, "Name", pattern)
	if len(recs) == 0 {
		return fmt.Errorf("no event group advertised for type %q", typeName)
	}
	count := 0
	for _, rec := range recs {
		pg, ok := rec.Adv.(*adv.PeerGroupAdv)
		if !ok {
			continue
		}
		g, pipeAdv, err := p.JoinGroupFromAdv(pg)
		if err != nil {
			continue
		}
		in, err := g.Wire.CreateInputPipe(pipeAdv)
		if err != nil {
			continue
		}
		groupName := pg.Name
		in.SetListener(func(m *message.Message) {
			fmt.Printf("[%s] event %s from %s, %d elements, %d bytes\n",
				groupName, m.ID.Short(), m.Src.Short(), m.Len(), m.WireSize())
		})
		count++
	}
	if count == 0 {
		return fmt.Errorf("could not join any event group for %q", typeName)
	}
	fmt.Printf("listening on %d group(s) for type %s; ctrl-C to stop\n", count, typeName)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	return nil
}
