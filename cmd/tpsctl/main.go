// Command tpsctl is the operator's Swiss-army knife for a live TPS/JXTA
// mesh: discover advertisements, query peer health (PIP), probe event
// types, and read any peer's admin endpoint — without writing a
// program.
//
// Mesh commands (speak JXTA to a rendezvous):
//
//	tpsctl -seed tcp://rdv:9701 discover            # list PS.* event groups
//	tpsctl -seed tcp://rdv:9701 discover -name 'PS.SkiRental*'
//	tpsctl -seed tcp://rdv:9701 peerinfo tcp://host:9702
//	tpsctl -seed tcp://rdv:9701 listen SkiRental    # dump raw events of a type group
//
// Admin commands (speak HTTP/JSON to a peer's admin endpoint; the
// address comes from -admin, or is derived from the -seed host on the
// default admin port):
//
//	tpsctl stats -admin 127.0.0.1:7700              # one coherent stats view
//	tpsctl stats -seed tcp://rdv:9701               # same, address derived
//	tpsctl peers -admin 127.0.0.1:7700              # leases, seeds, health
//	tpsctl subs  -admin 127.0.0.1:7700              # subscriptions and types
//	tpsctl log   -admin 127.0.0.1:7700              # durable event log: retained ranges, cursor lag
//	tpsctl replicas -admin 127.0.0.1:7700           # replica set: membership, per-topic digest lag, last sync
//	tpsctl watch -admin 127.0.0.1:7700 -interval 2s # poll /stats, print deltas + per-interval p99
//	                                                # (failovers are called out explicitly)
//	tpsctl latency -admin 127.0.0.1:7700            # per-stage latency histograms: p50/p90/p99
//	tpsctl trace -admin 127.0.0.1:7700              # list traced events on the peer
//	tpsctl trace -admin a:7700,b:7700 <event-id>    # merge hop records from several peers
//	                                                # into one end-to-end trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/transport/tcpnet"
	"github.com/tps-p2p/tps/internal/jxta/wire"
	"github.com/tps-p2p/tps/internal/obs"
	"github.com/tps-p2p/tps/internal/obs/admin"
	"github.com/tps-p2p/tps/internal/obs/hist"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:0", "local TCP listen address")
		seeds  = flag.String("seed", "", "comma-separated rendezvous addresses (required)")
		name   = flag.String("name", "PS.*", "advertisement name pattern (discover)")
		wait   = flag.Duration("wait", 2*time.Second, "how long to collect discovery responses")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr,
			"usage: tpsctl [flags] discover | peerinfo <addr> | listen <type> | stats | peers | subs | log | replicas | watch | latency | trace [event-id]")
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "stats", "peers", "subs", "log", "replicas", "watch", "latency", "trace":
		err = adminCommand(cmd, args, *seeds)
	default:
		err = run(cmd, args, *listen, *seeds, *name, *wait)
	}
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

// adminCommand serves the HTTP/JSON subcommands. Flags are accepted
// after the subcommand ("tpsctl stats -seed tcp://rdv:9701"); a -seed
// given before it is inherited as the default.
func adminCommand(cmd string, args []string, globalSeed string) error {
	fs := flag.NewFlagSet("tpsctl "+cmd, flag.ExitOnError)
	adminAddr := fs.String("admin", "", "admin endpoint host:port")
	seed := fs.String("seed", globalSeed,
		fmt.Sprintf("rendezvous address tcp://host:port; its host derives the admin address on port %d", admin.DefaultPort))
	interval := fs.Duration("interval", 2*time.Second, "poll interval (watch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cmd == "trace" {
		// trace accepts several admin endpoints (comma-separated) and
		// merges their hop records into one end-to-end view.
		bases, err := adminBases(*adminAddr, *seed)
		if err != nil {
			return err
		}
		return showTrace(bases, fs.Args())
	}
	base, err := adminBase(*adminAddr, *seed)
	if err != nil {
		return err
	}
	switch cmd {
	case "stats":
		return showStats(base)
	case "peers":
		return showPeers(base)
	case "subs":
		return showSubs(base)
	case "log":
		return showLog(base)
	case "replicas":
		return showReplicas(base)
	case "watch":
		return watchStats(base, *interval)
	case "latency":
		return showLatency(base)
	}
	return fmt.Errorf("unknown admin command %q", cmd)
}

// adminBase resolves the admin endpoint URL: -admin verbatim, else the
// -seed host with the conventional admin port.
func adminBase(adminAddr, seed string) (string, error) {
	if adminAddr != "" {
		return "http://" + adminAddr, nil
	}
	if seed == "" {
		return "", fmt.Errorf("need -admin host:port or -seed tcp://host:port")
	}
	s := strings.TrimSpace(strings.Split(seed, ",")[0])
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	host, _, err := net.SplitHostPort(s)
	if err != nil {
		host = s
	}
	return fmt.Sprintf("http://%s:%d", host, admin.DefaultPort), nil
}

// adminBases resolves a comma-separated -admin list (or the single
// seed-derived address) into base URLs.
func adminBases(adminAddr, seed string) ([]string, error) {
	if adminAddr == "" {
		base, err := adminBase("", seed)
		if err != nil {
			return nil, err
		}
		return []string{base}, nil
	}
	var out []string
	for _, a := range strings.Split(adminAddr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, "http://"+a)
		}
	}
	return out, nil
}

func fetchJSON(base, path string, into any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("GET %s%s: %s", base, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func showStats(base string) error {
	var view obs.View
	if err := fetchJSON(base, "/stats", &view); err != nil {
		return err
	}
	fmt.Printf("stats (schema %d) at %s\n", view.Schema,
		time.UnixMilli(view.TakenAtMS).Format(time.RFC3339))
	for _, s := range view.Subsystems {
		fmt.Printf("%s\n", s.Name)
		for _, k := range sortedKeys(s.Counters) {
			line := fmt.Sprintf("  %-20s %d", k, s.Counters[k])
			if r, ok := view.Rates[s.Name+"."+k]; ok && r != 0 {
				line += fmt.Sprintf("  (%.1f/s)", r)
			}
			fmt.Println(line)
		}
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Printf("  %-20s %g\n", k, s.Gauges[k])
		}
	}
	return nil
}

func showPeers(base string) error {
	var doc struct {
		PeerID string          `json:"peer_id"`
		Peers  []obs.PeerEntry `json:"peers"`
	}
	if err := fetchJSON(base, "/peers", &doc); err != nil {
		return err
	}
	fmt.Printf("peer %s: %d known peers\n", doc.PeerID, len(doc.Peers))
	fmt.Printf("%-12s %-26s %-14s %-10s %-5s %s\n", "KIND", "ADDR", "ID", "EXPIRES", "FAILS", "STATE")
	for _, pe := range doc.Peers {
		state := "ok"
		if pe.Suspect {
			state = "suspect"
		}
		if pe.BreakerOpenMS > 0 {
			state = fmt.Sprintf("breaker-open %dms", pe.BreakerOpenMS)
		}
		expires := "-"
		if pe.ExpiresInMS > 0 {
			expires = (time.Duration(pe.ExpiresInMS) * time.Millisecond).Round(time.Second).String()
		}
		fmt.Printf("%-12s %-26s %-14s %-10s %-5d %s\n",
			pe.Kind, pe.Addr, short(pe.ID), expires, pe.Fails, state)
	}
	return nil
}

func showSubs(base string) error {
	var doc struct {
		Subscriptions []obs.SubscriptionEntry `json:"subscriptions"`
		Types         []string                `json:"types"`
	}
	if err := fetchJSON(base, "/subscriptions", &doc); err != nil {
		return err
	}
	if len(doc.Subscriptions) == 0 {
		fmt.Println("no subscriptions")
	} else {
		fmt.Printf("%-28s %-12s %-12s %s\n", "TYPE", "SUBSCRIBERS", "ATTACHED", "READY")
		for _, se := range doc.Subscriptions {
			fmt.Printf("%-28s %-12d %-12d %d\n", se.Type, se.Subscribers, se.Attachments, se.Ready)
		}
	}
	if len(doc.Types) > 0 {
		fmt.Printf("registered types: %s\n", strings.Join(doc.Types, ", "))
	}
	return nil
}

// showLog renders the peer's durable event log state: retained
// sequence ranges per topic, and — when the peer also tracks replay
// cursors — how far each cursor lags behind the retained tail.
func showLog(base string) error {
	var resp struct {
		Result obs.Inspection `json:"result"`
	}
	if err := postRPC(base, "inspect", &resp); err != nil {
		return err
	}
	in := resp.Result
	if len(in.EventLog) == 0 && len(in.Cursors) == 0 {
		fmt.Println("no event log (peer runs without -log-dir) and no replay cursors")
		return nil
	}
	if len(in.EventLog) > 0 {
		fmt.Printf("%-28s %-22s %-10s %s\n", "TOPIC", "RETAINED", "SEGMENTS", "BYTES")
		for _, t := range in.EventLog {
			fmt.Printf("%-28s %-22s %-10d %d\n",
				short(t.Topic), fmt.Sprintf("%d..%d", t.FirstSeq, t.LastSeq), t.Segments, t.Bytes)
		}
	}
	if len(in.Cursors) > 0 {
		// Lag is computable only when this peer also retains the topic's
		// log (same admin endpoint); otherwise print the raw cursor.
		last := map[string]uint64{}
		for _, t := range in.EventLog {
			last[t.Topic] = t.LastSeq
		}
		fmt.Printf("%-28s %-14s %-12s %s\n", "GROUP", "ORIGIN", "CURSOR", "LAG")
		for _, c := range in.Cursors {
			lag := "-"
			if l, ok := last[c.Group]; ok && l >= c.Seq {
				lag = fmt.Sprintf("%d", l-c.Seq)
			}
			fmt.Printf("%-28s %-14s %-12d %s\n", short(c.Group), short(c.Origin), c.Seq, lag)
		}
	}
	return nil
}

// showReplicas renders the rendezvous replica set: each configured
// replica, when it last sent a digest, and the per-(origin, topic) lag
// between the local log and the replica's advertised tail. A replica
// that has never synced (or a peer with no replica set) is visible at a
// glance.
func showReplicas(base string) error {
	var resp struct {
		Result obs.Inspection `json:"result"`
	}
	if err := postRPC(base, "inspect", &resp); err != nil {
		return err
	}
	reps := resp.Result.Replicas
	if len(reps) == 0 {
		fmt.Println("no replica set (rendezvous runs without -replica)")
		return nil
	}
	for _, r := range reps {
		sync := "never"
		if r.LastSyncAgoMS >= 0 {
			sync = fmt.Sprintf("%s ago", (time.Duration(r.LastSyncAgoMS) * time.Millisecond).Round(time.Millisecond))
		}
		id := r.ID
		if id == "" {
			id = "-"
		}
		fmt.Printf("replica %s  id=%s  last digest: %s\n", r.Addr, short(id), sync)
		if len(r.Topics) == 0 {
			fmt.Println("  (no topic digests yet)")
			continue
		}
		fmt.Printf("  %-28s %-14s %-12s %-12s %s\n", "TOPIC", "ORIGIN", "LOCAL", "REMOTE", "LAG")
		for _, t := range r.Topics {
			lag := "-"
			if t.RemoteLast > t.LocalLast {
				lag = fmt.Sprintf("%d", t.RemoteLast-t.LocalLast)
			}
			fmt.Printf("  %-28s %-14s %-12d %-12d %s\n",
				short(t.Topic), short(t.Origin), t.LocalLast, t.RemoteLast, lag)
		}
	}
	return nil
}

// showLatency renders every per-stage latency histogram the peer
// carries: observation count, mean and upper-bound quantiles. Bucket
// bounds come from the fixed log-linear layout (≤12.5% relative error),
// so the printed quantiles are conservative upper bounds.
func showLatency(base string) error {
	var view obs.View
	if err := fetchJSON(base, "/stats", &view); err != nil {
		return err
	}
	fmt.Printf("latency (schema %d) at %s\n", view.Schema,
		time.UnixMilli(view.TakenAtMS).Format(time.RFC3339))
	gotRows := false
	fmt.Printf("%-12s %-20s %-10s %-9s %-9s %-9s %s\n",
		"SUBSYSTEM", "STAGE", "COUNT", "MEAN", "P50", "P90", "P99")
	for _, s := range view.Subsystems {
		for _, k := range sortedKeys(s.Hists) {
			h := s.Hists[k]
			if h.Count == 0 {
				continue
			}
			gotRows = true
			fmt.Printf("%-12s %-20s %-10d %-9s %-9s %-9s %s\n",
				s.Name, k, h.Count, fmtUS(h.MeanUS()),
				fmtUS(h.Quantile(0.5)), fmtUS(h.Quantile(0.9)), fmtUS(h.Quantile(0.99)))
		}
	}
	if !gotRows {
		fmt.Println("(no observations yet — histograms fill as events flow)")
	}
	return nil
}

// showTrace lists retained traced events (no args) or merges one
// event's hop records from every given admin endpoint into an ordered
// end-to-end trace. Peers that saw nothing contribute nothing; peers
// without a trace store (404) are warned about and skipped.
func showTrace(bases []string, args []string) error {
	if len(args) == 0 {
		listed := false
		for _, base := range bases {
			var doc struct {
				Events []trace.EventSummary `json:"events"`
			}
			if err := fetchJSON(base, "/trace", &doc); err != nil {
				fmt.Fprintf(os.Stderr, "warn: %s: %v\n", base, err)
				continue
			}
			if !listed {
				fmt.Printf("%-52s %-6s %s\n", "EVENT", "HOPS", "FIRST SEEN")
				listed = true
			}
			for _, ev := range doc.Events {
				fmt.Printf("%-52s %-6d %s\n", ev.EventID, ev.Hops,
					time.UnixMicro(ev.FirstUS).Format(time.RFC3339))
			}
		}
		if !listed {
			return fmt.Errorf("no admin endpoint served /trace (peers need a trace store; raise TraceRate)")
		}
		return nil
	}
	eventID := args[0]
	var hops []trace.Hop
	for _, base := range bases {
		var doc struct {
			Hops []trace.Hop `json:"hops"`
		}
		if err := fetchJSON(base, "/trace/"+eventID, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "warn: %s: %v\n", base, err)
			continue
		}
		hops = append(hops, doc.Hops...)
	}
	tr := trace.Assemble(eventID, hops)
	if len(tr.Hops) == 0 {
		return fmt.Errorf("no hops recorded for %s on %d peer(s)", eventID, len(bases))
	}
	fmt.Printf("event %s\n", tr.EventID)
	if tr.SentUS != 0 {
		fmt.Printf("published %s\n", time.UnixMicro(tr.SentUS).Format(time.RFC3339Nano))
	}
	fmt.Printf("%-9s %-14s %-12s %s\n", "STAGE", "PEER", "OFFSET", "PATH")
	for _, h := range tr.Hops {
		offset := "-"
		if tr.SentUS != 0 {
			// Cross-peer clock skew can make this negative; print it raw.
			offset = fmtUSSigned(float64(h.AtUS - tr.SentUS))
		}
		path := "-"
		if len(h.Path) > 0 {
			parts := make([]string, len(h.Path))
			for i, p := range h.Path {
				parts[i] = short(p)
			}
			path = strings.Join(parts, " > ")
		}
		fmt.Printf("%-9s %-14s %-12s %s\n", h.Stage, short(h.Peer), offset, path)
	}
	return nil
}

// fmtUS renders a microsecond quantity at a human scale.
func fmtUS(us float64) string {
	switch {
	case math.IsInf(us, 1):
		return "inf"
	case us < 1000:
		return fmt.Sprintf("%dµs", int64(us))
	case us < 1e6:
		return fmt.Sprintf("%.1fms", us/1000)
	default:
		return fmt.Sprintf("%.2fs", us/1e6)
	}
}

func fmtUSSigned(us float64) string {
	if us < 0 {
		return "-" + fmtUS(-us)
	}
	return "+" + fmtUS(us)
}

// postRPC performs one JSON-RPC 2.0 call against POST /rpc.
func postRPC(base, method string, into any) error {
	body := strings.NewReader(fmt.Sprintf(`{"jsonrpc":"2.0","id":1,"method":%q}`, method))
	resp, err := http.Post(base+"/rpc", "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s/rpc: %s", base, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// watchStats polls /stats and prints the counters that moved between
// polls, one line per change, until interrupted. Latency histograms are
// differenced the same way: the per-interval delta distribution yields
// a p99 for exactly the events of that interval, not a lifetime blend.
func watchStats(base string, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	prev := map[string]int64{}
	prevHists := map[string]hist.Snapshot{}
	first := true
	for {
		var view obs.View
		if err := fetchJSON(base, "/stats", &view); err != nil {
			return err
		}
		cur := map[string]int64{}
		curHists := map[string]hist.Snapshot{}
		for _, s := range view.Subsystems {
			for k, v := range s.Counters {
				cur[s.Name+"."+k] = v
			}
			for k, h := range s.Hists {
				curHists[s.Name+"."+k] = h
			}
		}
		if first {
			fmt.Printf("watching %s/stats every %v (ctrl-C to stop)\n", base, interval)
			first = false
		} else {
			var lines []string
			for _, k := range sortedKeys(cur) {
				if d := cur[k] - prev[k]; d != 0 {
					lines = append(lines, fmt.Sprintf("%s +%d (%.1f/s)",
						k, d, float64(d)/interval.Seconds()))
				}
			}
			for _, k := range sortedKeys(curHists) {
				if d := hist.Delta(curHists[k], prevHists[k]); d.Count > 0 {
					lines = append(lines, fmt.Sprintf("%s p99=%s (n=%d)",
						k, fmtUS(d.Quantile(0.99)), d.Count))
				}
			}
			// A failover is an operator-grade event, not background
			// counter noise: lead the line with it.
			if d := cur["rendezvous.failovers"] - prev["rendezvous.failovers"]; d > 0 {
				lines = append([]string{fmt.Sprintf("FAILOVER: rendezvous switched active seed ×%d", d)}, lines...)
			}
			if len(lines) == 0 {
				lines = []string{"idle"}
			}
			fmt.Printf("%s  %s\n", time.Now().Format("15:04:05"), strings.Join(lines, "  "))
		}
		prev = cur
		prevHists = curHists
		select {
		case <-ticker.C:
		case <-stop:
			return nil
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func short(id string) string {
	if i := strings.LastIndex(id, ":"); i >= 0 && len(id)-i > 1 {
		id = id[i+1:]
	}
	if len(id) > 12 {
		return id[:12]
	}
	if id == "" {
		return "-"
	}
	return id
}

func run(cmd string, args []string, listen, seeds, namePat string, wait time.Duration) error {
	if seeds == "" {
		return fmt.Errorf("-seed is required")
	}
	tr, err := tcpnet.Listen(listen)
	if err != nil {
		return err
	}
	var seedAddrs []endpoint.Address
	for _, s := range strings.Split(seeds, ",") {
		seedAddrs = append(seedAddrs, endpoint.Address(strings.TrimSpace(s)))
	}
	p, err := peer.New(peer.Config{Name: "tpsctl", Seeds: seedAddrs}, tr)
	if err != nil {
		return err
	}
	defer p.Close()
	net := p.NetGroup()
	if !net.AwaitRendezvous(10 * time.Second) {
		return fmt.Errorf("no rendezvous reachable at %s", seeds)
	}

	switch cmd {
	case "discover":
		return discover(p, namePat, wait)
	case "peerinfo":
		if len(args) != 1 {
			return fmt.Errorf("usage: tpsctl peerinfo <addr>")
		}
		return peerInfo(p, endpoint.Address(args[0]))
	case "listen":
		if len(args) != 1 {
			return fmt.Errorf("usage: tpsctl listen <type-name>")
		}
		return listenType(p, args[0], wait)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func discover(p *peer.Peer, pattern string, wait time.Duration) error {
	net := p.NetGroup()
	if err := net.Discovery.GetRemoteAdvertisements(adv.Group, "Name", pattern, 50); err != nil {
		return err
	}
	time.Sleep(wait)
	recs := net.Discovery.GetLocalAdvertisements(adv.Group, "Name", pattern)
	if len(recs) == 0 {
		fmt.Println("no advertisements found")
		return nil
	}
	fmt.Printf("%-28s %-12s %-12s %s\n", "NAME", "GROUP", "PUBLISHER", "WIRE PIPE")
	for _, rec := range recs {
		pg, ok := rec.Adv.(*adv.PeerGroupAdv)
		if !ok {
			continue
		}
		pipe := "-"
		if svc, ok := pg.Service(wire.ServiceName); ok && svc.Pipe != nil {
			pipe = svc.Pipe.PipeID.Short()
		}
		fmt.Printf("%-28s %-12s %-12s %s\n", pg.Name, pg.GroupID.Short(), pg.PeerID.Short(), pipe)
	}
	return nil
}

func peerInfo(p *peer.Peer, addr endpoint.Address) error {
	info, err := p.NetGroup().PeerInfo.Query(addr, 5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("peer      %s\n", info.PeerID)
	fmt.Printf("uptime    %v\n", info.Uptime().Round(time.Second))
	fmt.Printf("msgs      in=%d out=%d\n", info.MsgsIn, info.MsgsOut)
	fmt.Printf("bytes     in=%d out=%d\n", info.BytesIn, info.BytesOut)
	if info.LastInUnixMS > 0 {
		fmt.Printf("last in   %v\n", time.UnixMilli(info.LastInUnixMS).Format(time.RFC3339))
	}
	if info.LastOutUnixMS > 0 {
		fmt.Printf("last out  %v\n", time.UnixMilli(info.LastOutUnixMS).Format(time.RFC3339))
	}
	return nil
}

func listenType(p *peer.Peer, typeName string, wait time.Duration) error {
	net := p.NetGroup()
	pattern := "PS." + typeName + "*"
	if err := net.Discovery.GetRemoteAdvertisements(adv.Group, "Name", pattern, 50); err != nil {
		return err
	}
	time.Sleep(wait)
	recs := net.Discovery.GetLocalAdvertisements(adv.Group, "Name", pattern)
	if len(recs) == 0 {
		return fmt.Errorf("no event group advertised for type %q", typeName)
	}
	count := 0
	for _, rec := range recs {
		pg, ok := rec.Adv.(*adv.PeerGroupAdv)
		if !ok {
			continue
		}
		g, pipeAdv, err := p.JoinGroupFromAdv(pg)
		if err != nil {
			continue
		}
		in, err := g.Wire.CreateInputPipe(pipeAdv)
		if err != nil {
			continue
		}
		groupName := pg.Name
		in.SetListener(func(m *message.Message) {
			fmt.Printf("[%s] event %s from %s, %d elements, %d bytes\n",
				groupName, m.ID.Short(), m.Src.Short(), m.Len(), m.WireSize())
		})
		count++
	}
	if count == 0 {
		return fmt.Errorf("could not join any event group for %q", typeName)
	}
	fmt.Printf("listening on %d group(s) for type %s; ctrl-C to stop\n", count, typeName)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	return nil
}
