// Command benchfig regenerates the evaluation of the paper: Figure 18
// (invocation time), Figure 19 (publisher throughput), Figure 20
// (subscriber throughput) and the §4.4 lines-of-code comparison.
//
//	go run ./cmd/benchfig                 # all figures, fast scale
//	go run ./cmd/benchfig -fig 18         # one figure
//	go run ./cmd/benchfig -paper          # full paper-scale durations
//	go run ./cmd/benchfig -loc            # the §4.4 LoC table only
//	go run ./cmd/benchfig -csv out/       # also write CSV per figure
//
// Absolute numbers will not match 2001 hardware; the shape — which
// stack wins, by roughly what factor, and how participant counts bend
// the curves — is the reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/tps-p2p/tps/internal/benchkit"
	"github.com/tps-p2p/tps/internal/benchstats"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "figure to run (18, 19 or 20); 0 = all")
		paper = flag.Bool("paper", false, "paper-scale durations (Fig 20 runs 50 s per series)")
		loc   = flag.Bool("loc", false, "print only the lines-of-code comparison")
		csv   = flag.String("csv", "", "directory to write CSV files into")
		scale = flag.Float64("scale", 0.01, "simulation time scale (ignored with -paper)")
	)
	flag.Parse()

	if *loc {
		if err := printLoC(); err != nil {
			log.Println(err)
			os.Exit(1)
		}
		return
	}
	s := *scale
	if *paper {
		s = 1.0
	}
	profile := benchkit.Paper2001(s)
	run := func(n int) error {
		switch n {
		case 18:
			return figure18(profile, *csv)
		case 19:
			return figure19(profile, *csv)
		case 20:
			return figure20(profile, s, *csv)
		default:
			return fmt.Errorf("unknown figure %d", n)
		}
	}
	figs := []int{18, 19, 20}
	if *fig != 0 {
		figs = []int{*fig}
	}
	for _, n := range figs {
		if err := run(n); err != nil {
			log.Println(err)
			os.Exit(1)
		}
	}
	if err := printLoC(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func figure18(profile benchkit.Profile, csvDir string) error {
	fmt.Println("=== Figure 18: invocation time (ms per sendMessage call) ===")
	series, err := benchkit.Figure18(benchkit.FigureConfig{
		Profile: profile,
		Stacks:  benchkit.DefaultStacks,
		Counts:  []int{1, 4},
		Events:  50,
	})
	if err != nil {
		return err
	}
	fmt.Print(benchstats.Chart("Invocation time, 50 events", "event number", "ms/msg", series, 64, 14))
	printRatios(series)
	return writeCSV(csvDir, "fig18.csv", "event", series)
}

func figure19(profile benchkit.Profile, csvDir string) error {
	fmt.Println("=== Figure 19: publisher throughput (messages sent per second) ===")
	series, err := benchkit.Figure19(benchkit.FigureConfig{
		Profile:   profile,
		Stacks:    benchkit.DefaultStacks,
		Counts:    []int{1, 4},
		Events:    100,
		EpochSize: 10,
	})
	if err != nil {
		return err
	}
	fmt.Print(benchstats.Chart("Publisher throughput, 100 events", "epoch", "msg snd/sec", series, 64, 14))
	printRatios(series)
	return writeCSV(csvDir, "fig19.csv", "epoch", series)
}

func figure20(profile benchkit.Profile, scale float64, csvDir string) error {
	fmt.Println("=== Figure 20: subscriber throughput under flood (messages received per second) ===")
	// The paper samples every second for 50 seconds while each publisher
	// floods 10000 events; the window scales with the simulation.
	window := time.Duration(float64(time.Second) * scale)
	if window < 10*time.Millisecond {
		window = 10 * time.Millisecond
	}
	events := 10000
	if scale < 0.5 {
		events = 4000 // still far beyond what the subscriber can drain
	}
	series, err := benchkit.Figure20(benchkit.FigureConfig{
		Profile:     profile,
		Stacks:      benchkit.DefaultStacks,
		Counts:      []int{1, 4},
		Events:      events,
		Window:      window,
		SampleCount: 50,
	})
	if err != nil {
		return err
	}
	fmt.Print(benchstats.Chart("Subscriber throughput under flood", "sample window", "msg rcv/sec", series, 64, 14))
	printRatios(series)
	return writeCSV(csvDir, "fig20.csv", "second", series)
}

// printRatios prints the stack-vs-stack comparisons the paper draws
// from each figure, using medians (robust against scheduler/GC spikes).
func printRatios(series []benchstats.Series) {
	medians := map[string]float64{}
	for _, s := range series {
		medians[s.Name] = benchstats.Median(s.Points)
	}
	find := func(sub string) (string, float64) {
		for name, m := range medians {
			if len(name) >= len(sub) && name[:len(sub)] == sub {
				return name, m
			}
		}
		return "", 0
	}
	type pair struct{ a, b string }
	for _, p := range []pair{{"SR-TPS", "SR-JXTA"}, {"SR-JXTA", "JXTA-WIRE"}} {
		// Compare within the same participant count: series names are
		// "<stack> <n> xxx(s)".
		for _, s := range series {
			if name := s.Name; len(name) > len(p.a) && name[:len(p.a)] == p.a && name[len(p.a)] == ' ' {
				suffix := name[len(p.a):]
				if otherName, otherMedian := find(p.b + suffix); otherName != "" && otherMedian != 0 {
					fmt.Printf("    %-28s vs %-28s median ratio %.3f\n", name, otherName, medians[name]/otherMedian)
				}
			}
		}
	}
	fmt.Println()
}

func writeCSV(dir, name, xHeader string, series []benchstats.Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := benchstats.WriteCSV(f, xHeader, series); err != nil {
		return err
	}
	fmt.Printf("    wrote %s\n\n", filepath.Join(dir, name))
	return nil
}
