package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// loc.go reproduces the §4.4 programming-experience comparison: the
// number of lines a programmer writes for the same ski-rental
// application over TPS versus directly over JXTA. The paper reports
// ~5000 extra lines for the full TPS-equivalent functionality in Java
// (≥900 in the minimal case); the Go gap is smaller in absolute terms
// but the shape — an order of magnitude more application code without
// the abstraction — is the same.

// countGoLines counts non-blank, non-comment lines across the .go files
// of a directory (tests excluded: the comparison is about application
// code).
func countGoLines(dir string) (int, error) {
	total := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		n, err := countFileLines(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

func countFileLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	count := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case line == "", strings.HasPrefix(line, "//"):
			continue
		case strings.HasPrefix(line, "/*"):
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		count++
	}
	return count, sc.Err()
}

// locRow is one line of the comparison table.
type locRow struct {
	what string
	dirs []string
}

func printLoC() error {
	root, err := repoRoot()
	if err != nil {
		return err
	}
	rows := []locRow{
		{"SR-TPS  (app over TPS, §4.3)", []string{"internal/srapp/srtps", "examples/skirental"}},
		{"SR-JXTA (app direct on JXTA, §4.4)", []string{"internal/srapp/srjxta", "examples/skirental-jxta"}},
	}
	fmt.Println("=== §4.4 programming-experience comparison (non-blank, non-comment Go lines) ===")
	counts := make([]int, len(rows))
	for i, row := range rows {
		for _, d := range row.dirs {
			n, err := countGoLines(filepath.Join(root, d))
			if err != nil {
				return fmt.Errorf("counting %s: %w", d, err)
			}
			counts[i] += n
		}
		fmt.Printf("  %-38s %5d lines   (%s)\n", row.what, counts[i], strings.Join(row.dirs, " + "))
	}
	if counts[0] > 0 {
		fmt.Printf("  writing the app directly on JXTA costs %d extra lines (%.1fx)\n",
			counts[1]-counts[0], float64(counts[1])/float64(counts[0]))
	}
	fmt.Println("  (paper, in Java: ~5000 extra lines with full TPS functionality; >=900 minimal)")
	return nil
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above %s (run from inside the repository)", dir)
		}
		dir = parent
	}
}
