package tps

import (
	"errors"
	"testing"
)

// White-box tests for the public package's unexported helpers.

type cbStruct struct{ hits int }

func (c *cbStruct) Handle(int) error { return nil }

func TestSameHandlerPointers(t *testing.T) {
	a, b := &cbStruct{}, &cbStruct{}
	if !sameHandler(a, a) {
		t.Fatal("same pointer not equal")
	}
	if sameHandler(a, b) {
		t.Fatal("distinct pointers equal")
	}
}

func TestSameHandlerFuncs(t *testing.T) {
	f := CallBackFunc[int](func(int) error { return nil })
	g := CallBackFunc[int](func(int) error { return nil })
	if !sameHandler(f, f) {
		t.Fatal("same func value not equal")
	}
	if sameHandler(f, g) {
		t.Fatal("distinct funcs equal")
	}
}

func TestSameHandlerNils(t *testing.T) {
	if !sameHandler(nil, nil) {
		t.Fatal("nil != nil")
	}
	if sameHandler(nil, &cbStruct{}) || sameHandler(&cbStruct{}, nil) {
		t.Fatal("nil equal to non-nil")
	}
}

func TestSameHandlerComparableValues(t *testing.T) {
	type tok struct{ id int }
	if !sameHandler(tok{1}, tok{1}) {
		t.Fatal("equal comparable values not equal")
	}
	if sameHandler(tok{1}, tok{2}) {
		t.Fatal("different values equal")
	}
	if sameHandler(tok{1}, "not a tok") {
		t.Fatal("different kinds equal")
	}
}

func TestSameHandlerIncomparable(t *testing.T) {
	// Structs holding slices are not comparable; must not panic.
	type bad struct{ xs []int }
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panicked: %v", r)
		}
	}()
	if sameHandler(bad{xs: []int{1}}, bad{xs: []int{1}}) {
		t.Fatal("incomparable values reported equal")
	}
}

func TestPSErrorUnwrap(t *testing.T) {
	cause := errors.New("root cause")
	err := psErr("publish", cause)
	if !errors.Is(err, cause) {
		t.Fatal("Unwrap chain broken")
	}
	var pse *PSError
	if !errors.As(err, &pse) || pse.Op != "publish" {
		t.Fatalf("As failed: %v", err)
	}
	if pse.Error() == "" {
		t.Fatal("empty message")
	}
	if psErr("x", nil) != nil {
		t.Fatal("nil cause should yield nil")
	}
}

func TestAdapterFuncs(t *testing.T) {
	called := 0
	cb := CallBackFunc[string](func(s string) error {
		called++
		if s != "ev" {
			t.Fatalf("got %q", s)
		}
		return nil
	})
	if err := cb.Handle("ev"); err != nil || called != 1 {
		t.Fatalf("callback adapter: %v, %d", err, called)
	}
	var caught error
	exh := ExceptionHandlerFunc(func(err error) { caught = err })
	boom := errors.New("boom")
	exh.HandleException(boom)
	if caught != boom {
		t.Fatal("exception adapter dropped the error")
	}
}

func TestDefaultStr(t *testing.T) {
	if defaultStr("", "d") != "d" || defaultStr("x", "d") != "x" {
		t.Fatal("defaultStr wrong")
	}
}
