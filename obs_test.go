package tps_test

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	tps "github.com/tps-p2p/tps"
)

// TestPlatformStatsAndInspect drives real traffic through a rig and
// checks the redesigned introspection API reports it: live counters in
// Stats(), peers/subscriptions/types in Inspect().
func TestPlatformStatsAndInspect(t *testing.T) {
	r := newRig(t)
	pub := r.edge()
	sub := r.edge()

	if err := tps.Register[SkiRental](pub); err != nil {
		t.Fatal(err)
	}
	if err := tps.Register[SkiRental](sub); err != nil {
		t.Fatal(err)
	}
	subEng, err := tps.NewEngine[SkiRental](sub)
	if err != nil {
		t.Fatal(err)
	}
	subIntf, err := subEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	g := &gather[SkiRental]{}
	if err := subIntf.Subscribe(g, nil); err != nil {
		t.Fatal(err)
	}
	pubEng, err := tps.NewEngine[SkiRental](pub)
	if err != nil {
		t.Fatal(err)
	}
	pubIntf, err := pubEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pubEng.AwaitReady(1, 10*time.Second) || !subEng.AwaitReady(1, 10*time.Second) {
		t.Fatal("engines not ready")
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := pubIntf.Publish(SkiRental{Shop: "S", Price: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitN(t, g, n)

	// Publisher side: published counted, wire sent, endpoint moved bytes.
	pv := pub.Stats()
	if pv.Schema == 0 {
		t.Fatal("schema missing")
	}
	for _, name := range []string{"endpoint", "engine", "rendezvous", "seen", "wire"} {
		if _, ok := pv.Subsystem(name); !ok {
			t.Fatalf("publisher view lacks subsystem %q (have %+v)", name, pv.Subsystems)
		}
	}
	if got := pv.Counter("engine", "published"); got != n {
		t.Fatalf("engine.published = %d, want %d", got, n)
	}
	if pv.Counter("wire", "sent") == 0 {
		t.Fatal("wire.sent = 0, want > 0")
	}
	if pv.Counter("endpoint", "bytes_out") == 0 {
		t.Fatal("endpoint.bytes_out = 0, want > 0")
	}

	// Subscriber side: delivered events and seen-cache activity.
	sv := sub.Stats()
	if got := sv.Counter("engine", "delivered"); got < n {
		t.Fatalf("engine.delivered = %d, want >= %d", got, n)
	}
	if sv.Counter("seen", "observed") == 0 {
		t.Fatal("seen.observed = 0, want > 0")
	}

	// Inspect: the subscriber knows its rendezvous, its subscription
	// and its registered type.
	in := sub.Inspect()
	if in.PeerID != sub.PeerID() {
		t.Fatalf("inspect peer_id = %q", in.PeerID)
	}
	foundRdv := false
	for _, pe := range in.Peers {
		if pe.Kind == "rendezvous" && pe.ID != "" {
			foundRdv = true
		}
	}
	if !foundRdv {
		t.Fatalf("no connected rendezvous in %+v", in.Peers)
	}
	foundSub := false
	for _, se := range in.Subscriptions {
		if se.Subscribers >= 1 && se.Attachments >= 1 {
			foundSub = true
		}
	}
	if !foundSub {
		t.Fatalf("no live subscription in %+v", in.Subscriptions)
	}
	if len(in.Types) == 0 {
		t.Fatal("no registered types reported")
	}

	// Closing the engine removes it from the aggregation.
	subEng.Close()
	if got := sub.Stats().Counter("engine", "delivered"); got != 0 {
		t.Fatalf("engine.delivered after engine close = %d, want 0 (zero snapshot)", got)
	}
}

// TestStatsCollectDuringPublish hammers Collect and Inspect while the
// publish→fan-out path runs, so the race detector can prove the
// introspection API never tears the hot path.
func TestStatsCollectDuringPublish(t *testing.T) {
	r := newRig(t)
	pub := r.edge()
	sub := r.edge()
	if err := tps.Register[SkiRental](pub); err != nil {
		t.Fatal(err)
	}
	if err := tps.Register[SkiRental](sub); err != nil {
		t.Fatal(err)
	}
	subEng, err := tps.NewEngine[SkiRental](sub)
	if err != nil {
		t.Fatal(err)
	}
	subIntf, err := subEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	g := &gather[SkiRental]{}
	if err := subIntf.Subscribe(g, nil); err != nil {
		t.Fatal(err)
	}
	pubEng, err := tps.NewEngine[SkiRental](pub)
	if err != nil {
		t.Fatal(err)
	}
	pubIntf, err := pubEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pubEng.AwaitReady(1, 10*time.Second) {
		t.Fatal("publisher not ready")
	}

	const events = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, p := range []*tps.Platform{pub, sub} {
		wg.Add(1)
		go func(p *tps.Platform) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = p.Stats()
					_ = p.Inspect()
				}
			}
		}(p)
	}
	for i := 0; i < events; i++ {
		if err := pubIntf.Publish(SkiRental{Shop: "race", Price: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitN(t, g, events)
	close(stop)
	wg.Wait()
	if got := pub.Stats().Counter("engine", "published"); got != events {
		t.Fatalf("engine.published = %d, want %d", got, events)
	}
}

// TestAdminSurfaceEndToEnd boots a platform with the admin server on an
// ephemeral port and walks the HTTP surface like an operator would.
func TestAdminSurfaceEndToEnd(t *testing.T) {
	r := newRig(t)
	p := r.platform(tps.Config{Seeds: []string{"mem://rdv"}, AdminAddr: "127.0.0.1:0"})
	addr := p.AdminAddr()
	if addr == "" {
		t.Fatal("AdminAddr empty with admin configured")
	}
	if !p.AwaitRendezvous(10 * time.Second) {
		t.Fatal("no rendezvous")
	}
	if err := tps.Register[SkiRental](p); err != nil {
		t.Fatal(err)
	}
	eng, err := tps.NewEngine[SkiRental](p)
	if err != nil {
		t.Fatal(err)
	}
	intf, err := eng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := intf.Publish(SkiRental{Shop: "ops"}); err != nil {
		t.Fatal(err)
	}

	var view struct {
		Schema     int `json:"schema"`
		Subsystems []struct {
			Name     string           `json:"name"`
			Counters map[string]int64 `json:"counters"`
		} `json:"subsystems"`
	}
	getAs(t, "http://"+addr+"/stats", http.StatusOK, &view)
	names := map[string]map[string]int64{}
	for _, s := range view.Subsystems {
		names[s.Name] = s.Counters
	}
	for _, want := range []string{"endpoint", "engine", "rendezvous", "seen", "wire"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("/stats lacks %q: %v", want, names)
		}
	}
	if names["engine"]["published"] != 1 {
		t.Fatalf("engine.published over HTTP = %d, want 1", names["engine"]["published"])
	}

	var health struct {
		Status string `json:"status"`
	}
	getAs(t, "http://"+addr+"/health", http.StatusOK, &health)
	if health.Status != "ok" {
		t.Fatalf("health = %+v", health)
	}

	var peers struct {
		Peers []tps.PeerEntry `json:"peers"`
	}
	getAs(t, "http://"+addr+"/peers", http.StatusOK, &peers)
	if len(peers.Peers) == 0 {
		t.Fatal("/peers empty for a seeded, connected peer")
	}

	// Platform.Close shuts the admin server down with it.
	p.Close()
	if _, err := http.Get("http://" + addr + "/stats"); err == nil {
		t.Fatal("admin server still reachable after Platform.Close")
	}
}

// TestAdminHealthDegradedWhenUnconnected pins the /health degradation
// contract: a peer whose seeds are unreachable (AwaitConnected fails)
// serves 503.
func TestAdminHealthDegradedWhenUnconnected(t *testing.T) {
	r := newRig(t)
	p := r.platform(tps.Config{Seeds: []string{"mem://no-such-rdv"}, AdminAddr: "127.0.0.1:0"})
	if p.AwaitRendezvous(200 * time.Millisecond) {
		t.Fatal("connected to a nonexistent rendezvous?")
	}
	var health struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	getAs(t, "http://"+p.AdminAddr()+"/health", http.StatusServiceUnavailable, &health)
	if health.Status != "degraded" || health.Reason == "" {
		t.Fatalf("health = %+v", health)
	}
}

func getAs(t *testing.T, url string, wantCode int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}
