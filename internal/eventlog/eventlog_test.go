package eventlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func appendN(t *testing.T, l *Log, topic string, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		body := []byte(fmt.Sprintf("event-%d", i))
		seq, err := l.Append(topic, func(seq uint64) ([]byte, error) { return body, nil })
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d: got seq %d", i, seq)
		}
	}
}

func collect(t *testing.T, l *Log, topic string, after uint64) []Entry {
	t.Helper()
	var out []Entry
	err := l.Read(topic, after, 0, func(e Entry) error {
		out = append(out, Entry{Seq: e.Seq, TimeMS: e.TimeMS, Payload: append([]byte(nil), e.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

func TestAppendReadRoundTrip(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, "topic-a", 1, 10)
	got := collect(t, l, "topic-a", 0)
	if len(got) != 10 {
		t.Fatalf("got %d entries, want 10", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d: seq %d", i, e.Seq)
		}
		if want := fmt.Sprintf("event-%d", i+1); string(e.Payload) != want {
			t.Fatalf("entry %d: payload %q, want %q", i, e.Payload, want)
		}
	}
	// Suffix read from a cursor.
	tail := collect(t, l, "topic-a", 7)
	if len(tail) != 3 || tail[0].Seq != 8 {
		t.Fatalf("suffix read after 7: %+v", tail)
	}
	if first, last, ok := l.Range("topic-a"); !ok || first != 1 || last != 10 {
		t.Fatalf("range = %d..%d ok=%v", first, last, ok)
	}
}

func TestResetRestartsNumbering(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, "topic-a", 1, 5)
	dropped, err := l.Reset("topic-a")
	if err != nil || dropped != 5 {
		t.Fatalf("Reset = (%d, %v), want 5 dropped", dropped, err)
	}
	if _, _, ok := l.Range("topic-a"); ok {
		t.Fatal("reset topic still reports a retained range")
	}
	// The empty-topic escape hatch applies again: AppendExact may restart
	// at any sequence, as on a copy re-seeded past a retention gap.
	if err := l.AppendExact("topic-a", 40, 7, []byte("x")); err != nil {
		t.Fatalf("AppendExact after Reset: %v", err)
	}
	if err := l.AppendExact("topic-a", 41, 8, []byte("y")); err != nil {
		t.Fatalf("AppendExact 41: %v", err)
	}
	if first, last, ok := l.Range("topic-a"); !ok || first != 40 || last != 41 {
		t.Fatalf("range after restart = %d..%d ok=%v, want 40..41", first, last, ok)
	}
	// Resetting a topic that never existed is a no-op.
	if dropped, err := l.Reset("nope"); err != nil || dropped != 0 {
		t.Fatalf("Reset(unknown) = (%d, %v)", dropped, err)
	}
}

func TestTopicsAreIndependent(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, "a", 1, 3)
	appendN(t, l, "b", 1, 5)
	if got := collect(t, l, "a", 0); len(got) != 3 {
		t.Fatalf("topic a: %d entries", len(got))
	}
	if got := collect(t, l, "b", 0); len(got) != 5 {
		t.Fatalf("topic b: %d entries", len(got))
	}
	if topics := l.Topics(); len(topics) != 2 || topics[0] != "a" || topics[1] != "b" {
		t.Fatalf("topics = %v", topics)
	}
}

func TestRecoveryResumesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "t", 1, 7)
	l.Close()

	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Snapshot().Counters["recovered"]; got != 7 {
		t.Fatalf("recovered = %d, want 7", got)
	}
	appendN(t, l2, "t", 8, 9) // numbering continues where recovery left off
	got := collect(t, l2, "t", 0)
	if len(got) != 9 || got[8].Seq != 9 {
		t.Fatalf("after recovery: %d entries, last %+v", len(got), got[len(got)-1])
	}
}

func TestSegmentRollAndRetentionByBytes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Retention: Retention{SegmentBytes: 256, MaxBytes: 600}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	big := bytes.Repeat([]byte("x"), 100)
	for i := 1; i <= 30; i++ {
		if _, err := l.Append("t", func(seq uint64) ([]byte, error) { return big, nil }); err != nil {
			t.Fatal(err)
		}
	}
	first, last, ok := l.Range("t")
	if !ok || last != 30 {
		t.Fatalf("range = %d..%d ok=%v", first, last, ok)
	}
	if first == 1 {
		t.Fatal("retention never dropped the oldest segment")
	}
	snap := l.Snapshot()
	if snap.Counters["truncated"] == 0 {
		t.Fatal("truncated counter not bumped by retention")
	}
	// Whatever is retained must read back contiguously up to last.
	got := collect(t, l, "t", 0)
	if uint64(len(got)) != last-first+1 || got[0].Seq != first {
		t.Fatalf("retained suffix: %d entries starting at %d, want %d..%d", len(got), got[0].Seq, first, last)
	}
}

func TestRetentionByAge(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	l, err := Open(Config{
		Dir:       t.TempDir(),
		Retention: Retention{SegmentBytes: 64, MaxAge: time.Minute},
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("y"), 40)
	for i := 0; i < 4; i++ {
		if _, err := l.Append("t", func(uint64) ([]byte, error) { return payload, nil }); err != nil {
			t.Fatal(err)
		}
	}
	now = now.Add(2 * time.Minute) // everything so far ages out
	for i := 0; i < 4; i++ {
		if _, err := l.Append("t", func(uint64) ([]byte, error) { return payload, nil }); err != nil {
			t.Fatal(err)
		}
	}
	first, _, ok := l.Range("t")
	if !ok || first <= 2 {
		t.Fatalf("aged segments not dropped: first=%d ok=%v", first, ok)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "t", 1, 5)
	l.Close()

	// Simulate a crash mid-append: garbage bytes after the last record.
	seg := findSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{recMagic, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snap := l2.Snapshot()
	if snap.Counters["torn_tails"] != 1 {
		t.Fatalf("torn_tails = %d, want 1", snap.Counters["torn_tails"])
	}
	got := collect(t, l2, "t", 0)
	if len(got) != 5 {
		t.Fatalf("after torn-tail recovery: %d entries, want 5", len(got))
	}
	// Appends continue cleanly past the repaired tail.
	appendN(t, l2, "t", 6, 6)
	if got := collect(t, l2, "t", 0); len(got) != 6 {
		t.Fatalf("append after repair: %d entries", len(got))
	}
}

func TestCorruptedRecordDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "t", 1, 5)
	l.Close()

	// Flip one payload byte in the middle of the segment: the CRC fails
	// there, and recovery must keep only the prefix before it.
	seg := findSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, "t", 0)
	if len(got) >= 5 {
		t.Fatalf("corrupt record not dropped: %d entries", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("event-%d", i+1); string(e.Payload) != want {
			t.Fatalf("recovered entry %d corrupted: %q", i, e.Payload)
		}
	}
}

func TestReadMaxBounds(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, "t", 1, 10)
	n := 0
	if err := l.Read("t", 0, 4, func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("max=4 delivered %d", n)
	}
}

func TestUnknownTopicReadsNothing(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Read("ghost", 0, 0, func(Entry) error { t.Fatal("unexpected entry"); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := l.Range("ghost"); ok {
		t.Fatal("range of unknown topic reported ok")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNone, SyncRoll, SyncAlways} {
		dir := t.TempDir()
		l, err := Open(Config{Dir: dir, Sync: pol, Retention: Retention{SegmentBytes: 128}})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, "t", 1, 8)
		l.Close()
		l2, err := Open(Config{Dir: dir, Sync: pol})
		if err != nil {
			t.Fatal(err)
		}
		if got := collect(t, l2, "t", 0); len(got) != 8 {
			t.Fatalf("policy %v: %d entries after reopen", pol, len(got))
		}
		l2.Close()
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
	for _, s := range []string{"", "none", "roll", "always"} {
		if _, err := ParseSyncPolicy(s); err != nil {
			t.Fatalf("ParseSyncPolicy(%q): %v", s, err)
		}
	}
}

// TestConcurrentAppendAndReplay drives appends and replay reads of the
// same topic from multiple goroutines; under -race this pins the locking
// of the append/read paths, and every read must observe a contiguous
// prefix-free suffix (no holes, no torn entries).
func TestConcurrentAppendAndReplay(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), Retention: Retention{SegmentBytes: 512}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_, err := l.Append("t", func(seq uint64) ([]byte, error) {
					return []byte(fmt.Sprintf("seq-%d", seq)), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev uint64
				err := l.Read("t", 0, 0, func(e Entry) error {
					if prev != 0 && e.Seq != prev+1 {
						return fmt.Errorf("hole: %d after %d", e.Seq, prev)
					}
					if want := fmt.Sprintf("seq-%d", e.Seq); string(e.Payload) != want {
						return fmt.Errorf("entry %d: payload %q", e.Seq, e.Payload)
					}
					prev = e.Seq
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	got := collect(t, l, "t", 0)
	if len(got) != writers*perWriter {
		t.Fatalf("final count %d, want %d", len(got), writers*perWriter)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append("t", func(uint64) ([]byte, error) { return []byte("x"), nil }); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// findSegment returns the single topic's newest segment file.
func findSegment(t *testing.T, root string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(root, "*", "*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files under %s (err=%v)", root, err)
	}
	return matches[len(matches)-1]
}
