// Package eventlog is the durability layer of the rendezvous mesh: a
// per-topic append-only log that rendezvous peers write while fanning
// events out, and read back to serve replay requests from subscribers
// that joined or reconnected after a publish.
//
// Storage model: one directory per topic, holding fixed-layout segment
// files named after the first sequence number they contain. Every
// record is CRC-checked, so a torn tail left by a crash mid-append is
// detected and truncated on the next Open — recovery never surfaces a
// corrupt entry. Retention is by segment: when the active segment fills
// past Retention.SegmentBytes it is sealed and a new one starts, and
// sealed segments are deleted oldest-first once the topic exceeds
// Retention.MaxBytes or a segment's newest record is older than
// Retention.MaxAge. Sequence numbers are per-topic, contiguous and
// start at 1; a restarted peer resumes the numbering its log recovered.
//
// The log stores opaque payloads. The rendezvous layer stores fully
// encoded endpoint frames, so serving a replay is a raw frame send with
// no re-marshalling.
package eventlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tps-p2p/tps/internal/obs"
)

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy int

// Sync policies, weakest to strongest.
const (
	// SyncNone never fsyncs: the OS page cache decides. A machine crash
	// can lose the tail, which recovery then truncates — the replay
	// protocol's at-least-once contract absorbs the loss upstream.
	SyncNone SyncPolicy = iota
	// SyncRoll fsyncs a segment once, when it is sealed.
	SyncRoll
	// SyncAlways fsyncs after every append.
	SyncAlways
)

// ParseSyncPolicy maps the Config-file spellings to a policy: "" or
// "none", "roll", "always".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "none":
		return SyncNone, nil
	case "roll":
		return SyncRoll, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncNone, fmt.Errorf("eventlog: unknown sync policy %q", s)
}

// String returns the ParseSyncPolicy spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncRoll:
		return "roll"
	case SyncAlways:
		return "always"
	default:
		return "none"
	}
}

// Retention bounds how much history a topic keeps. Zero fields take the
// defaults below; MaxAge zero means no age limit.
type Retention struct {
	// SegmentBytes is the size at which the active segment is sealed.
	SegmentBytes int64
	// MaxBytes caps the topic's total size; oldest sealed segments are
	// deleted first. The active segment is never deleted.
	MaxBytes int64
	// MaxAge drops sealed segments whose newest record is older.
	MaxAge time.Duration
}

// Retention defaults.
const (
	DefaultSegmentBytes = 1 << 20  // 1 MiB
	DefaultMaxBytes     = 64 << 20 // 64 MiB per topic
)

// Config configures a Log.
type Config struct {
	// Dir is the root directory; one subdirectory per topic is created
	// beneath it.
	Dir string
	// Retention bounds per-topic history.
	Retention Retention
	// Sync selects the fsync policy.
	Sync SyncPolicy
	// Clock substitutes the time source (tests). Nil means time.Now.
	Clock func() time.Time
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("eventlog: closed")

// ErrOutOfOrder is returned by AppendExact when the supplied sequence
// number is not the topic's next: an anti-entropy import must apply a
// pulled suffix contiguously or not at all.
var ErrOutOfOrder = errors.New("eventlog: non-contiguous sequence")

// Record layout: magic(1) seq(8) unix-ms(8) len(4) crc32c(4) payload.
// The CRC covers the seq/time/len header fields and the payload, so a
// bit flip anywhere in a record is detected.
const (
	recMagic   = 0xE7
	headerSize = 1 + 8 + 8 + 4 + 4
	// maxRecordBytes bounds a single payload; anything larger in a
	// segment is treated as corruption.
	maxRecordBytes = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// topicFile is the metadata file inside a topic directory holding the
// raw topic string (directory names are sanitized and hashed).
const topicFile = "TOPIC"

// Entry is one replayable record.
type Entry struct {
	// Seq is the per-topic sequence number, contiguous from 1.
	Seq uint64
	// TimeMS is the append time in unix milliseconds.
	TimeMS int64
	// Payload is the stored bytes. It is only valid during the Read
	// callback; callers must copy to retain.
	Payload []byte
}

// segment is one on-disk segment file's recovered metadata.
type segment struct {
	path     string
	firstSeq uint64
	lastSeq  uint64
	size     int64
	lastMS   int64  // append time of the newest record
	crc      uint32 // CRC-32C over the segment's raw bytes (valid prefix)
}

func (s *segment) entries() int64 { return int64(s.lastSeq-s.firstSeq) + 1 }

// topicLog is one topic's segments and append state.
type topicLog struct {
	mu      sync.Mutex
	topic   string
	dir     string
	segs    []*segment // oldest..newest; the last is the active one
	active  *os.File   // append handle for segs[last]; nil until first append
	nextSeq uint64
	scratch []byte
}

// Log is a set of per-topic append-only logs rooted at one directory.
type Log struct {
	cfg Config
	now func() time.Time

	mu     sync.Mutex
	topics map[string]*topicLog
	closed bool

	appended  atomic.Int64 // records appended
	replayed  atomic.Int64 // records served through Read
	truncated atomic.Int64 // records dropped by retention or corruption
	recovered atomic.Int64 // records validated by the Open scan
	tornTails atomic.Int64 // tail truncations performed by recovery
	ioErrors  atomic.Int64 // append/fsync/open failures

	// errMu guards lastErr, the sticky most-recent I/O failure cleared
	// by the next successful append: the /health degraded-state source.
	errMu   sync.Mutex
	lastErr error
}

// recordErr notes an append-path I/O failure: the counter feeds the
// tps_eventlog_io_errors_total metric and the sticky error degrades
// /health until a later append succeeds.
func (l *Log) recordErr(err error) {
	l.ioErrors.Add(1)
	l.errMu.Lock()
	l.lastErr = err
	l.errMu.Unlock()
}

// clearErr marks the log healthy again after a successful append.
func (l *Log) clearErr() {
	l.errMu.Lock()
	l.lastErr = nil
	l.errMu.Unlock()
}

// Err returns the most recent append-path I/O failure, or nil while the
// log is healthy. The error is sticky until a later append succeeds, so
// a dying disk stays visible on /health between write attempts.
func (l *Log) Err() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.lastErr
}

// Open creates (or recovers) the log rooted at cfg.Dir. Every topic
// directory found is scanned: CRC-valid, sequence-contiguous records
// are indexed, a torn tail is truncated in place, and anything after a
// corruption or sequence gap is discarded — the log that Open returns
// only ever serves entries that were fully written.
func Open(cfg Config) (*Log, error) {
	if cfg.Dir == "" {
		return nil, errors.New("eventlog: Config.Dir is required")
	}
	if cfg.Retention.SegmentBytes <= 0 {
		cfg.Retention.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.Retention.MaxBytes <= 0 {
		cfg.Retention.MaxBytes = DefaultMaxBytes
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	l := &Log{cfg: cfg, now: now, topics: make(map[string]*topicLog)}
	dirs, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		tdir := filepath.Join(cfg.Dir, d.Name())
		raw, err := os.ReadFile(filepath.Join(tdir, topicFile))
		if err != nil {
			continue // not a topic directory we wrote
		}
		t := &topicLog{topic: string(raw), dir: tdir}
		if err := l.recoverTopic(t); err != nil {
			return nil, err
		}
		l.topics[t.topic] = t
	}
	return l, nil
}

// recoverTopic scans a topic directory's segments in order, validating
// records and repairing crash damage.
func (l *Log) recoverTopic(t *topicLog) error {
	names, err := filepath.Glob(filepath.Join(t.dir, "*.seg"))
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	sort.Strings(names) // zero-padded first-seq names sort numerically
	var expected uint64
	drop := false
	for _, path := range names {
		if drop {
			// A prior segment ended in corruption or a gap: everything
			// after it is unreachable history. Count and remove.
			if sc, err := scanSegment(path); err == nil && sc.count > 0 {
				l.truncated.Add(sc.count)
			}
			_ = os.Remove(path)
			continue
		}
		sc, err := scanSegment(path)
		if err != nil {
			return err
		}
		if sc.count == 0 {
			// Nothing valid (e.g. a crash before the first record hit the
			// disk): remove the husk.
			if sc.torn {
				l.tornTails.Add(1)
			}
			_ = os.Remove(path)
			continue
		}
		if expected != 0 && sc.firstSeq != expected {
			// Sequence discontinuity between segments: the suffix cannot
			// be trusted. Keep the contiguous prefix only.
			drop = true
			l.truncated.Add(sc.count)
			_ = os.Remove(path)
			continue
		}
		if sc.torn {
			if err := os.Truncate(path, sc.goodSize); err != nil {
				return fmt.Errorf("eventlog: truncate torn tail of %s: %w", path, err)
			}
			l.tornTails.Add(1)
		}
		t.segs = append(t.segs, &segment{
			path:     path,
			firstSeq: sc.firstSeq,
			lastSeq:  sc.lastSeq,
			size:     sc.goodSize,
			lastMS:   sc.lastMS,
			crc:      sc.crc,
		})
		l.recovered.Add(sc.count)
		expected = sc.lastSeq + 1
	}
	if expected == 0 {
		expected = 1
	}
	t.nextSeq = expected
	return nil
}

// scanResult is one segment's validation outcome.
type scanResult struct {
	firstSeq uint64
	lastSeq  uint64
	lastMS   int64
	count    int64
	goodSize int64  // bytes up to and including the last valid record
	crc      uint32 // CRC-32C over the valid prefix bytes
	torn     bool   // file extends past goodSize with invalid data
}

// scanSegment walks a segment file record by record, stopping at the
// first record that fails validation (bad magic, implausible length,
// CRC mismatch, short read, or a non-contiguous sequence number).
func scanSegment(path string) (scanResult, error) {
	var sc scanResult
	f, err := os.Open(path)
	if err != nil {
		return sc, fmt.Errorf("eventlog: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return sc, fmt.Errorf("eventlog: %w", err)
	}
	fileSize := info.Size()
	var hdr [headerSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			sc.torn = sc.goodSize < fileSize
			return sc, nil
		}
		seq := binary.BigEndian.Uint64(hdr[1:9])
		ms := int64(binary.BigEndian.Uint64(hdr[9:17]))
		n := binary.BigEndian.Uint32(hdr[17:21])
		crc := binary.BigEndian.Uint32(hdr[21:25])
		if hdr[0] != recMagic || n > maxRecordBytes ||
			(sc.count > 0 && seq != sc.lastSeq+1) {
			sc.torn = true
			return sc, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			sc.torn = true
			return sc, nil
		}
		sum := crc32.Checksum(hdr[1:21], crcTable)
		if crc32.Update(sum, crcTable, payload) != crc {
			sc.torn = true
			return sc, nil
		}
		if sc.count == 0 {
			sc.firstSeq = seq
		}
		sc.lastSeq = seq
		sc.lastMS = ms
		sc.count++
		sc.goodSize += headerSize + int64(n)
		sc.crc = crc32.Update(sc.crc, crcTable, hdr[:])
		sc.crc = crc32.Update(sc.crc, crcTable, payload)
	}
}

// topicDirName derives a filesystem-safe directory name for a topic:
// a sanitized prefix for readability plus a hash for uniqueness.
func topicDirName(topic string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, topic)
	if len(safe) > 40 {
		safe = safe[:40]
	}
	if safe == "" {
		safe = "topic"
	}
	return fmt.Sprintf("%s-%08x", safe, crc32.Checksum([]byte(topic), crcTable))
}

// getTopic returns the topic's log, creating its directory on first
// use.
func (l *Log) getTopic(topic string, create bool) (*topicLog, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if t, ok := l.topics[topic]; ok {
		return t, nil
	}
	if !create {
		return nil, nil
	}
	dir := filepath.Join(l.cfg.Dir, topicDirName(topic))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, topicFile), []byte(topic), 0o644); err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	t := &topicLog{topic: topic, dir: dir, nextSeq: 1}
	l.topics[topic] = t
	return t, nil
}

// Append reserves the topic's next sequence number, hands it to build,
// and durably stores the bytes build returns under that number. The
// callback runs with the topic locked, so the caller can stamp the
// sequence into the payload it encodes and the stored bytes match what
// it then sends — there is no window for another append to interleave.
// The payload is fully copied before Append returns; build may recycle
// it afterwards.
func (l *Log) Append(topic string, build func(seq uint64) ([]byte, error)) (uint64, error) {
	t, err := l.getTopic(topic, true)
	if err != nil {
		if !errors.Is(err, ErrClosed) {
			l.recordErr(err)
		}
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seq := t.nextSeq
	payload, err := build(seq)
	if err != nil {
		return 0, err
	}
	if err := l.appendRecordLocked(t, seq, l.now().UnixMilli(), payload); err != nil {
		return 0, err
	}
	return seq, nil
}

// AppendExact stores payload under a caller-chosen sequence number and
// timestamp. This is the anti-entropy import path: a replica pulling a
// suffix of another peer's log must store records byte-identically —
// same sequence, same timestamp, same payload yield the same record
// bytes and (with matching retention config) the same segment files, so
// segment checksums verify convergence. The first record of an empty
// topic may start at any sequence (the source's retention may have
// trimmed the head, exactly like recovery accepting a trimmed log);
// afterwards seq must be exactly the topic's next sequence, or
// ErrOutOfOrder is returned without writing.
func (l *Log) AppendExact(topic string, seq uint64, timeMS int64, payload []byte) error {
	if seq == 0 {
		return fmt.Errorf("%w: sequence numbers start at 1", ErrOutOfOrder)
	}
	t, err := l.getTopic(topic, true)
	if err != nil {
		if !errors.Is(err, ErrClosed) {
			l.recordErr(err)
		}
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nextSeq == 1 && !t.hasEntriesLocked() {
		t.nextSeq = seq
	}
	if seq != t.nextSeq {
		return fmt.Errorf("%w: got seq %d, next is %d", ErrOutOfOrder, seq, t.nextSeq)
	}
	return l.appendRecordLocked(t, seq, timeMS, payload)
}

// hasEntriesLocked reports whether any retained segment holds a record.
func (t *topicLog) hasEntriesLocked() bool {
	for _, seg := range t.segs {
		if seg.firstSeq != 0 {
			return true
		}
	}
	return false
}

// appendRecordLocked encodes and writes one record with the given
// coordinates, rolling/retaining segments as needed and keeping the
// active segment's running CRC current. I/O failures are recorded for
// the health surface; success clears the degraded state.
func (l *Log) appendRecordLocked(t *topicLog, seq uint64, timeMS int64, payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("eventlog: record of %d bytes exceeds limit", len(payload))
	}
	if err := l.ensureActiveLocked(t, int64(len(payload)), seq); err != nil {
		l.recordErr(err)
		return err
	}
	need := headerSize + len(payload)
	if cap(t.scratch) < need {
		t.scratch = make([]byte, need)
	}
	rec := t.scratch[:need]
	rec[0] = recMagic
	binary.BigEndian.PutUint64(rec[1:9], seq)
	binary.BigEndian.PutUint64(rec[9:17], uint64(timeMS))
	binary.BigEndian.PutUint32(rec[17:21], uint32(len(payload)))
	sum := crc32.Checksum(rec[1:21], crcTable)
	binary.BigEndian.PutUint32(rec[21:25], crc32.Update(sum, crcTable, payload))
	copy(rec[headerSize:], payload)
	if _, err := t.active.Write(rec); err != nil {
		err = fmt.Errorf("eventlog: append %s: %w", t.topic, err)
		l.recordErr(err)
		return err
	}
	if l.cfg.Sync == SyncAlways {
		if err := t.active.Sync(); err != nil {
			err = fmt.Errorf("eventlog: sync %s: %w", t.topic, err)
			l.recordErr(err)
			return err
		}
	}
	seg := t.segs[len(t.segs)-1]
	if seg.firstSeq == 0 {
		seg.firstSeq = seq
	}
	seg.lastSeq = seq
	seg.lastMS = timeMS
	seg.size += int64(need)
	seg.crc = crc32.Update(seg.crc, crcTable, rec)
	t.nextSeq = seq + 1
	l.appended.Add(1)
	l.clearErr()
	return nil
}

// ensureActiveLocked makes sure the topic has an open active segment
// with room for a payload of n bytes, sealing and rolling as needed,
// then enforces retention over the sealed segments. nextSeq names a
// freshly started segment file (it is the sequence about to be written,
// which AppendExact may have chosen).
func (l *Log) ensureActiveLocked(t *topicLog, n int64, nextSeq uint64) error {
	roll := t.active == nil
	if !roll {
		seg := t.segs[len(t.segs)-1]
		if seg.size > 0 && seg.size+headerSize+n > l.cfg.Retention.SegmentBytes {
			roll = true
		}
	}
	if roll {
		if t.active != nil {
			if l.cfg.Sync == SyncRoll {
				_ = t.active.Sync()
			}
			_ = t.active.Close()
			t.active = nil
		}
		reopen := false
		if len(t.segs) > 0 {
			// Recovery leaves the last scanned segment as the active one:
			// reopen it for append instead of starting a new file, unless
			// it is already full.
			seg := t.segs[len(t.segs)-1]
			if seg.size+headerSize+n <= l.cfg.Retention.SegmentBytes {
				reopen = true
			}
		}
		var path string
		if reopen {
			path = t.segs[len(t.segs)-1].path
		} else {
			path = filepath.Join(t.dir, fmt.Sprintf("%020d.seg", nextSeq))
			t.segs = append(t.segs, &segment{path: path})
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("eventlog: %w", err)
		}
		t.active = f
		l.enforceRetentionLocked(t)
	}
	return nil
}

// enforceRetentionLocked deletes sealed segments that push the topic
// over its byte budget or age out entirely. The active (last) segment
// is exempt.
func (l *Log) enforceRetentionLocked(t *topicLog) {
	var total int64
	for _, s := range t.segs {
		total += s.size
	}
	nowMS := l.now().UnixMilli()
	for len(t.segs) > 1 {
		oldest := t.segs[0]
		over := total > l.cfg.Retention.MaxBytes
		aged := l.cfg.Retention.MaxAge > 0 && oldest.lastMS > 0 &&
			nowMS-oldest.lastMS > l.cfg.Retention.MaxAge.Milliseconds()
		if !over && !aged {
			return
		}
		_ = os.Remove(oldest.path)
		if oldest.lastSeq >= oldest.firstSeq && oldest.firstSeq > 0 {
			l.truncated.Add(oldest.entries())
		}
		total -= oldest.size
		t.segs = t.segs[1:]
	}
}

// Read streams the topic's retained entries with sequence numbers
// strictly greater than after, in order, to fn. A non-zero max bounds
// how many entries are delivered. Reading holds the topic's lock, so it
// is safe against concurrent appends; fn's Entry payload is reused
// between calls and must be copied to retain. fn returning an error
// stops the stream and surfaces the error.
func (l *Log) Read(topic string, after uint64, max int, fn func(Entry) error) error {
	t, err := l.getTopic(topic, false)
	if err != nil || t == nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sent := 0
	var payload []byte
	for _, seg := range t.segs {
		if seg.lastSeq <= after || seg.firstSeq == 0 {
			continue
		}
		f, err := os.Open(seg.path)
		if err != nil {
			return fmt.Errorf("eventlog: %w", err)
		}
		var hdr [headerSize]byte
		remaining := seg.size
		for remaining >= headerSize {
			if _, err := io.ReadFull(f, hdr[:]); err != nil {
				f.Close()
				return fmt.Errorf("eventlog: read %s: %w", seg.path, err)
			}
			seq := binary.BigEndian.Uint64(hdr[1:9])
			ms := int64(binary.BigEndian.Uint64(hdr[9:17]))
			n := binary.BigEndian.Uint32(hdr[17:21])
			if cap(payload) < int(n) {
				payload = make([]byte, n)
			}
			payload = payload[:n]
			if _, err := io.ReadFull(f, payload); err != nil {
				f.Close()
				return fmt.Errorf("eventlog: read %s: %w", seg.path, err)
			}
			remaining -= headerSize + int64(n)
			if seq <= after {
				continue
			}
			if err := fn(Entry{Seq: seq, TimeMS: ms, Payload: payload}); err != nil {
				f.Close()
				return err
			}
			l.replayed.Add(1)
			sent++
			if max > 0 && sent >= max {
				f.Close()
				return nil
			}
		}
		f.Close()
	}
	return nil
}

// Reset discards every retained record of the topic and restarts its
// numbering: the next AppendExact may begin at any sequence, exactly as
// on a topic that never held anything. The anti-entropy import uses it
// when the source's retention has trimmed past this copy's contiguous
// tail — the bridge records no longer exist anywhere, so the copy
// restarts at the source's retained head instead of waiting forever for
// sequences that cannot arrive. Dropped records feed the truncated
// counter. Resetting an unknown topic is a no-op.
func (l *Log) Reset(topic string) (dropped int64, err error) {
	t, err := l.getTopic(topic, false)
	if err != nil || t == nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.active != nil {
		_ = t.active.Close()
		t.active = nil
	}
	for _, seg := range t.segs {
		if seg.firstSeq > 0 && seg.lastSeq >= seg.firstSeq {
			dropped += seg.entries()
		}
		_ = os.Remove(seg.path)
	}
	if dropped > 0 {
		l.truncated.Add(dropped)
	}
	t.segs = nil
	t.nextSeq = 1
	return dropped, nil
}

// Range reports the topic's retained sequence range. ok is false when
// the topic has no retained entries.
func (l *Log) Range(topic string) (first, last uint64, ok bool) {
	t, err := l.getTopic(topic, false)
	if err != nil || t == nil {
		return 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, seg := range t.segs {
		if seg.firstSeq == 0 {
			continue
		}
		if !ok {
			first = seg.firstSeq
			ok = true
		}
		last = seg.lastSeq
	}
	return first, last, ok
}

// SegmentDigest summarises one on-disk segment for anti-entropy
// verification: the sequence range it spans and the CRC-32C over its
// raw bytes (the Castagnoli-checked records laid end to end). Two
// replicas holding byte-identical copies of a log produce identical
// digests; a matched range with a differing CRC is divergence.
type SegmentDigest struct {
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	CRC      uint32 `json:"crc"`
}

// SegmentDigests returns the topic's per-segment checksums, oldest
// first. The active segment is included with its running CRC, so
// replicas that are fully caught up verify the tail too. Nil when the
// topic retains nothing.
func (l *Log) SegmentDigests(topic string) []SegmentDigest {
	t, err := l.getTopic(topic, false)
	if err != nil || t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SegmentDigest
	for _, seg := range t.segs {
		if seg.firstSeq == 0 {
			continue
		}
		out = append(out, SegmentDigest{FirstSeq: seg.firstSeq, LastSeq: seg.lastSeq, CRC: seg.crc})
	}
	return out
}

// Topics lists every topic with a log directory, sorted.
func (l *Log) Topics() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.topics))
	for name := range l.topics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TopicsView reports each topic's retained range and on-disk footprint,
// sorted by topic; it feeds the admin surface's log view.
func (l *Log) TopicsView() []obs.LogTopicEntry {
	out := make([]obs.LogTopicEntry, 0, 4)
	for _, topic := range l.Topics() {
		t, err := l.getTopic(topic, false)
		if err != nil || t == nil {
			continue
		}
		t.mu.Lock()
		e := obs.LogTopicEntry{Topic: topic, Segments: len(t.segs)}
		for _, seg := range t.segs {
			e.Bytes += seg.size
			if seg.firstSeq == 0 {
				continue
			}
			if e.FirstSeq == 0 {
				e.FirstSeq = seg.firstSeq
			}
			e.LastSeq = seg.lastSeq
		}
		t.mu.Unlock()
		out = append(out, e)
	}
	return out
}

// Snapshot implements obs.Provider for the "eventlog" subsystem.
func (l *Log) Snapshot() obs.Snapshot {
	var segments int
	var bytes int64
	l.mu.Lock()
	topics := make([]*topicLog, 0, len(l.topics))
	for _, t := range l.topics {
		topics = append(topics, t)
	}
	n := len(l.topics)
	l.mu.Unlock()
	for _, t := range topics {
		t.mu.Lock()
		segments += len(t.segs)
		for _, seg := range t.segs {
			bytes += seg.size
		}
		t.mu.Unlock()
	}
	return obs.Snapshot{
		Name:    "eventlog",
		Version: 1,
		Counters: map[string]int64{
			"appended":   l.appended.Load(),
			"replayed":   l.replayed.Load(),
			"truncated":  l.truncated.Load(),
			"recovered":  l.recovered.Load(),
			"torn_tails": l.tornTails.Load(),
			"io_errors":  l.ioErrors.Load(),
		},
		Gauges: map[string]float64{
			"topics":   float64(n),
			"segments": float64(segments),
			"bytes":    float64(bytes),
		},
	}
}

// Close flushes (per the sync policy) and closes every open segment.
// The log's files remain on disk for the next Open to recover.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	topics := make([]*topicLog, 0, len(l.topics))
	for _, t := range l.topics {
		topics = append(topics, t)
	}
	l.mu.Unlock()
	for _, t := range topics {
		t.mu.Lock()
		if t.active != nil {
			if l.cfg.Sync != SyncNone {
				_ = t.active.Sync()
			}
			_ = t.active.Close()
			t.active = nil
		}
		t.mu.Unlock()
	}
	return nil
}
