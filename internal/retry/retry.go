// Package retry provides capped exponential backoff with jitter for
// redial and reconnect loops.
//
// The transports and the rendezvous protocol treat peer failure as the
// normal case: a dead peer must not be hammered on every tick, and a
// fleet of peers reconnecting after a partition heals must not all redial
// in the same instant. Policy captures both concerns — exponential growth
// bounds the retry rate, the cap bounds how long a recovered peer waits,
// and jitter desynchronises the herd.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy describes a capped exponential backoff curve. The zero value is
// usable: zero fields take the Default values.
type Policy struct {
	// Initial is the delay after the first failure.
	Initial time.Duration
	// Max caps the delay regardless of how many failures accumulated.
	Max time.Duration
	// Multiplier is the growth factor between consecutive failures.
	// Values below 1 are treated as the default.
	Multiplier float64
	// Jitter is the fraction of the delay randomly subtracted, in [0,1].
	// Subtracting (rather than adding) keeps Backoff ≤ Max while still
	// desynchronising concurrent retriers. Negative disables jitter;
	// zero means the default.
	Jitter float64
}

// Default values substituted for zero Policy fields.
var Default = Policy{
	Initial:    50 * time.Millisecond,
	Max:        5 * time.Second,
	Multiplier: 2,
	Jitter:     0.2,
}

func (p Policy) norm() Policy {
	if p.Initial <= 0 {
		p.Initial = Default.Initial
	}
	if p.Max <= 0 {
		p.Max = Default.Max
	}
	if p.Max < p.Initial {
		p.Max = p.Initial
	}
	if p.Multiplier < 1 {
		p.Multiplier = Default.Multiplier
	}
	if p.Jitter == 0 {
		p.Jitter = Default.Jitter
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Backoff returns the delay to wait after the given consecutive failure
// count (1 for the first failure). Non-positive counts return 0. The
// result is in ((1-Jitter)·d, d] where d grows exponentially from
// Initial and is capped at Max.
func (p Policy) Backoff(failures int) time.Duration {
	if failures <= 0 {
		return 0
	}
	p = p.norm()
	d := float64(p.Initial)
	for i := 1; i < failures; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		d -= d * p.Jitter * rand.Float64()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Wait blocks for the backoff delay of the given failure count, or until
// the context is done, whichever comes first. It returns the context's
// error if interrupted, nil otherwise.
func (p Policy) Wait(ctx context.Context, failures int) error {
	d := p.Backoff(failures)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// permanentError marks an error as not worth retrying. It unwraps to
// the underlying error so callers' errors.Is/As checks see through the
// marker.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops retrying and returns it immediately:
// a rejected credential or a malformed request will not succeed on the
// tenth attempt either. A nil err returns nil. errors.Is/As against the
// wrapped error still work on Do's return value.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do calls fn up to attempts times, waiting p.Backoff between failures.
// It returns nil on the first success, the context error if cancelled
// mid-wait, and otherwise the last failure's error. An error wrapped
// with Permanent short-circuits the loop: it is returned at once,
// remaining attempts notwithstanding. attempts ≤ 0 runs fn once.
func Do(ctx context.Context, p Policy, attempts int, fn func() error) error {
	if attempts <= 0 {
		attempts = 1
	}
	var err error
	for i := 1; i <= attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if IsPermanent(err) || i == attempts {
			break
		}
		if werr := p.Wait(ctx, i); werr != nil {
			return werr
		}
	}
	return err
}
