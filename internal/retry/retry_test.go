package retry_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/retry"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := retry.Policy{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := p.Backoff(0); got != 0 {
		t.Fatalf("Backoff(0) = %v, want 0", got)
	}
	if got := p.Backoff(-3); got != 0 {
		t.Fatalf("Backoff(-3) = %v, want 0", got)
	}
}

func TestBackoffJitterStaysInRange(t *testing.T) {
	p := retry.Policy{Initial: 100 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		d := p.Backoff(2) // base 200ms, jittered into (100ms, 200ms]
		if d <= 100*time.Millisecond || d > 200*time.Millisecond {
			t.Fatalf("jittered backoff %v outside (100ms, 200ms]", d)
		}
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p retry.Policy
	d := p.Backoff(1)
	if d <= 0 || d > retry.Default.Initial {
		t.Fatalf("zero policy Backoff(1) = %v", d)
	}
	// Deep in the curve the cap must hold.
	if d := p.Backoff(50); d > retry.Default.Max {
		t.Fatalf("zero policy Backoff(50) = %v exceeds default max", d)
	}
}

func TestWaitHonoursContext(t *testing.T) {
	p := retry.Policy{Initial: 10 * time.Second, Max: 10 * time.Second, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := p.Wait(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait did not return promptly on cancel")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := retry.Policy{Initial: time.Millisecond, Max: 2 * time.Millisecond, Jitter: -1}
	calls := 0
	err := retry.Do(context.Background(), p, 5, func() error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do err=%v calls=%d", err, calls)
	}
}

func TestDoReturnsLastError(t *testing.T) {
	p := retry.Policy{Initial: time.Millisecond, Max: time.Millisecond, Jitter: -1}
	boom := errors.New("boom")
	calls := 0
	err := retry.Do(context.Background(), p, 3, func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("Do err=%v calls=%d", err, calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	p := retry.Policy{Initial: time.Millisecond, Max: time.Millisecond, Jitter: -1}
	fatal := errors.New("bad credentials")
	calls := 0
	err := retry.Do(context.Background(), p, 10, func() error {
		calls++
		return retry.Permanent(fatal)
	})
	if calls != 1 {
		t.Fatalf("Do retried a permanent error: calls=%d", calls)
	}
	// The marker must be transparent to callers matching the cause.
	if !errors.Is(err, fatal) {
		t.Fatalf("Do err=%v, want wrapped %v", err, fatal)
	}
	if !retry.IsPermanent(err) {
		t.Fatalf("IsPermanent(%v) = false", err)
	}
}

func TestPermanentNilAndDetection(t *testing.T) {
	if retry.Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	if retry.IsPermanent(errors.New("transient")) {
		t.Fatal("IsPermanent true for unmarked error")
	}
	// Permanent marks survive further wrapping by the caller.
	wrapped := fmt.Errorf("connect: %w", retry.Permanent(errors.New("refused")))
	if !retry.IsPermanent(wrapped) {
		t.Fatal("IsPermanent lost through fmt.Errorf %w wrapping")
	}
}

func TestDoCancelledMidWaitReturnsContextError(t *testing.T) {
	// A long backoff between two failing attempts: cancel must interrupt
	// the wait and surface ctx.Err(), not the attempt's error.
	p := retry.Policy{Initial: 10 * time.Second, Max: 10 * time.Second, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- retry.Do(ctx, p, 5, func() error {
			calls++
			return errors.New("flaky")
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail and enter Wait
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do err=%v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancel")
	}
	if calls != 1 {
		t.Fatalf("calls=%d, want 1 (cancel hit during the first backoff)", calls)
	}
}
