package benchstats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty slices should yield 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Fatalf("mean = %f", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Fatalf("stddev = %f", got)
	}
	if StdDev([]float64{42}) != 0 {
		t.Fatal("single sample stddev should be 0")
	}
	if got := RelStdDev(xs); math.Abs(got-2.138089935/5) > 1e-6 {
		t.Fatalf("rel stddev = %f", got)
	}
	if RelStdDev([]float64{0, 0}) != 0 {
		t.Fatal("zero-mean rel stddev should be 0")
	}
}

func TestMinMaxPercentile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatalf("min/max = %f/%f", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty slices should yield 0")
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 9 {
		t.Fatal("extreme percentiles wrong")
	}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("p50 = %f", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, pa, pb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		lo, hi := float64(pa%101), float64(pb%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := Percentile(raw, lo), Percentile(raw, hi)
		return a <= b && a >= Min(raw) && b <= Max(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, "event", []Series{
		{Name: "a", Points: []float64{1, 2, 3}},
		{Name: "b", Points: []float64{4, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "event,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[3] != "3,3.0000," {
		t.Fatalf("padded row = %q", lines[3])
	}
}

func TestChartRenders(t *testing.T) {
	out := Chart("Fig X", "event number", "ms/msg", []Series{
		{Name: "JXTA-WIRE 1 sub", Points: []float64{1, 2, 3, 4, 5}},
		{Name: "SR-TPS 1 sub", Points: []float64{2, 3, 4, 5, 6}},
	}, 40, 10)
	for _, want := range []string{"Fig X", "ms/msg", "event number", "JXTA-WIRE 1 sub", "SR-TPS 1 sub", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart lacks %q:\n%s", want, out)
		}
	}
	if got := Chart("empty", "x", "y", nil, 40, 10); !strings.Contains(got, "no data") {
		t.Fatalf("empty chart = %q", got)
	}
	// Flat series must not divide by zero.
	flat := Chart("flat", "x", "y", []Series{{Name: "f", Points: []float64{3, 3, 3}}}, 40, 8)
	if !strings.Contains(flat, "f") {
		t.Fatal("flat series render failed")
	}
}

func TestSeriesSummary(t *testing.T) {
	s := Series{Name: "test", Points: []float64{1, 2, 3}}
	sum := s.Summary()
	for _, want := range []string{"test", "mean=", "min=", "max="} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary lacks %q: %s", want, sum)
		}
	}
}
