// Package benchstats provides the small statistics and rendering
// toolkit the benchmark harness uses to regenerate the paper's figures:
// summary statistics, per-index series, CSV output and ASCII charts.
// It is offline analysis of benchmark samples — for live runtime
// counters and the admin endpoint, see internal/obs.
package benchstats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation, or 0 for fewer than two
// points.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// RelStdDev returns the standard deviation as a fraction of the mean
// (the paper quotes "~20%" deviations), or 0 when the mean is 0.
func RelStdDev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank
// on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Median returns the 50th percentile: the robust location estimate the
// ratio comparisons use (micro-benchmark means get skewed by GC and
// scheduler spikes).
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Min returns the smallest value, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Series is one named line of a figure: Points[i] is the value at
// x-index i (event number, epoch, second...).
type Series struct {
	Name   string
	Points []float64
}

// Summary renders "name: mean=… σ=… (rel …%) min=… max=…".
func (s Series) Summary() string {
	return fmt.Sprintf("%-22s mean=%8.2f  σ=%7.2f (%4.1f%%)  min=%8.2f  max=%8.2f",
		s.Name, Mean(s.Points), StdDev(s.Points), 100*RelStdDev(s.Points), Min(s.Points), Max(s.Points))
}

// WriteCSV emits "x,<name1>,<name2>,..." rows; series of different
// lengths are padded with empty cells.
func WriteCSV(w io.Writer, xHeader string, series []Series) error {
	headers := make([]string, 0, len(series)+1)
	headers = append(headers, xHeader)
	maxLen := 0
	for _, s := range series {
		headers = append(headers, s.Name)
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprint(i+1))
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.4f", s.Points[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Chart renders the series as an ASCII line chart, the terminal stand-in
// for the paper's figures.
func Chart(title, xLabel, yLabel string, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	var lo, hi float64
	maxLen := 0
	first := true
	for _, s := range series {
		for _, v := range s.Points {
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	if first || maxLen == 0 {
		return title + ": (no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i, v := range s.Points {
			col := 0
			if maxLen > 1 {
				col = i * (width - 1) / (maxLen - 1)
			}
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s\n", yLabel)
	for r, rowBytes := range grid {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%9.2f |%s\n", yVal, string(rowBytes))
	}
	fmt.Fprintf(&b, "%9s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s %s\n", "", xLabel)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Summary())
	}
	return b.String()
}
