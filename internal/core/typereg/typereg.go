// Package typereg maintains the event-type registry of the TPS layer.
//
// Type-based publish/subscribe uses the event type as the subject: one
// type maps to one advertisement (and one propagated pipe). Types form a
// nominal hierarchy — the paper's Figure 7 — so that subscribing to a
// type also delivers instances of its subtypes. Go has no struct
// subtyping, so the hierarchy is declared explicitly at registration
// time; delivery additionally respects Go assignability (an interface
// subscription receives every implementing event type).
//
// Subjects are hierarchical paths ("A/C/D"), which lets the
// advertisement finder discover a whole subtree with one prefix query —
// exactly how the paper's TPSAdvertisementsFinder collects "the multiple
// advertisements that are in relation with our type".
package typereg

import (
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// Errors.
var (
	ErrNotRegistered = errors.New("typereg: type not registered")
	ErrDupType       = errors.New("typereg: type already registered")
	ErrBadParent     = errors.New("typereg: parent not registered")
	ErrNotNameable   = errors.New("typereg: type has no name")
)

// Node is one registered event type.
type Node struct {
	typ    reflect.Type
	name   string
	path   string
	parent *Node

	mu       sync.Mutex
	children []*Node
}

// Type returns the registered Go type. For interface registrations it is
// the interface type itself.
func (n *Node) Type() reflect.Type { return n.typ }

// Name returns the type's short name (e.g. "SkiRental").
func (n *Node) Name() string { return n.name }

// Path returns the hierarchical subject (e.g. "Rental/SkiRental").
func (n *Node) Path() string { return n.path }

// Parent returns the supertype node, or nil for roots.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the direct subtypes.
func (n *Node) Children() []*Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*Node(nil), n.children...)
}

// IsInterface reports whether the node registers an interface type.
func (n *Node) IsInterface() bool { return n.typ.Kind() == reflect.Interface }

// Registry maps Go types to subject nodes.
type Registry struct {
	mu     sync.RWMutex
	byType map[reflect.Type]*Node
	byPath map[string]*Node
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		byType: make(map[reflect.Type]*Node),
		byPath: make(map[string]*Node),
	}
}

// TypeOf returns the registration type for a sample value: the dynamic
// type of v, with pointer indirection stripped.
func TypeOf(v any) reflect.Type {
	t := reflect.TypeOf(v)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t
}

// Register adds typ to the hierarchy under parent (nil for a root) and
// returns its node. Concrete (non-interface) types are also registered
// with encoding/gob so events can cross the wire.
func (r *Registry) Register(typ reflect.Type, parent *Node) (*Node, error) {
	if typ == nil {
		return nil, ErrNotNameable
	}
	for typ.Kind() == reflect.Pointer {
		typ = typ.Elem()
	}
	name := typ.Name()
	if name == "" {
		return nil, fmt.Errorf("%w: %v", ErrNotNameable, typ)
	}
	path := name
	if parent != nil {
		path = parent.path + "/" + name
	}
	node := &Node{typ: typ, name: name, path: path, parent: parent}

	r.mu.Lock()
	if _, ok := r.byType[typ]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrDupType, typ)
	}
	if _, ok := r.byPath[path]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: path %q", ErrDupType, path)
	}
	if parent != nil {
		if _, ok := r.byType[parent.typ]; !ok {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrBadParent, parent.typ)
		}
	}
	r.byType[typ] = node
	r.byPath[path] = node
	r.mu.Unlock()

	if parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, node)
		parent.mu.Unlock()
	}
	if typ.Kind() != reflect.Interface {
		// gob needs concrete types announced under a stable name. The
		// name derives from the type itself (not the hierarchy path):
		// the same type registered under different hierarchies — or in
		// several registries of one process — must map to one gob name.
		gob.RegisterName("tps/"+typ.PkgPath()+"."+typ.Name(), reflect.New(typ).Elem().Interface())
	}
	return node, nil
}

// NodeByType returns the node for a Go type.
func (r *Registry) NodeByType(typ reflect.Type) (*Node, bool) {
	for typ != nil && typ.Kind() == reflect.Pointer {
		typ = typ.Elem()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.byType[typ]
	return n, ok
}

// NodeByPath returns the node for a subject path.
func (r *Registry) NodeByPath(path string) (*Node, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.byPath[path]
	return n, ok
}

// NodeOf returns the node for a sample value's dynamic type.
func (r *Registry) NodeOf(v any) (*Node, bool) {
	return r.NodeByType(TypeOf(v))
}

// Paths lists every registered subject path, sorted — the type catalog
// the introspection API reports.
func (r *Registry) Paths() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byPath))
	for p := range r.byPath {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Subtree returns the node and all its descendants, sorted by path —
// the nominal subtype closure of Figure 7 (subscribing to A covers
// B, C and D).
func (r *Registry) Subtree(root *Node) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// Closure returns every registered type an event subscription on root
// must cover: the nominal subtree plus — when root is an interface —
// every registered concrete type assignable to it, with their own
// subtrees.
func (r *Registry) Closure(root *Node) []*Node {
	set := make(map[*Node]struct{})
	for _, n := range r.Subtree(root) {
		set[n] = struct{}{}
	}
	if root.IsInterface() {
		r.mu.RLock()
		var impls []*Node
		for typ, n := range r.byType {
			if typ.Kind() == reflect.Interface {
				continue
			}
			if typ.Implements(root.typ) || reflect.PointerTo(typ).Implements(root.typ) {
				impls = append(impls, n)
			}
		}
		r.mu.RUnlock()
		for _, n := range impls {
			for _, sub := range r.Subtree(n) {
				set[sub] = struct{}{}
			}
		}
	}
	out := make([]*Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// Assignable reports whether an event of dynamic type dyn may be
// delivered to a subscriber whose subscription type is the given node:
// either the types match, dyn is a nominal descendant of the node, or
// the node is an interface dyn implements. This is the delivery
// predicate that makes the paper's fA(fA,fB,fC,fD) semantics type-safe
// in Go.
func (r *Registry) Assignable(node *Node, dyn reflect.Type) bool {
	for dyn != nil && dyn.Kind() == reflect.Pointer {
		dyn = dyn.Elem()
	}
	if node.typ == dyn {
		return true
	}
	if node.IsInterface() {
		return dyn.Implements(node.typ) || reflect.PointerTo(dyn).Implements(node.typ)
	}
	// Nominal descent.
	d, ok := r.NodeByType(dyn)
	if !ok {
		return false
	}
	for p := d.parent; p != nil; p = p.parent {
		if p == node {
			return true
		}
	}
	return false
}

// CoversPath reports whether path lies in the subject subtree rooted at
// rootPath ("A/C" covers "A/C" and "A/C/D" but not "A/CD").
func CoversPath(rootPath, path string) bool {
	return path == rootPath || strings.HasPrefix(path, rootPath+"/")
}

// PathsOf extracts the subject paths of a node list.
func PathsOf(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.path
	}
	return out
}
