package typereg

import (
	"reflect"
	"testing"
	"testing/quick"
)

// The Figure 7 hierarchy, in Go form: A is the root event interface;
// B and C are event kinds under A; D specialises C.
type figA interface{ Kind() string }

type figB struct{ N int }

func (figB) Kind() string { return "B" }

type figC struct{ S string }

func (figC) Kind() string { return "C" }

type figD struct {
	figC
	Extra float64
}

func buildFig7(t *testing.T) (*Registry, map[string]*Node) {
	t.Helper()
	r := New()
	nodes := make(map[string]*Node)
	a, err := r.Register(reflect.TypeOf((*figA)(nil)).Elem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes["A"] = a
	b, err := r.Register(reflect.TypeOf(figB{}), a)
	if err != nil {
		t.Fatal(err)
	}
	nodes["B"] = b
	c, err := r.Register(reflect.TypeOf(figC{}), a)
	if err != nil {
		t.Fatal(err)
	}
	nodes["C"] = c
	d, err := r.Register(reflect.TypeOf(figD{}), c)
	if err != nil {
		t.Fatal(err)
	}
	nodes["D"] = d
	return r, nodes
}

func TestRegisterPathsAndLookup(t *testing.T) {
	r, nodes := buildFig7(t)
	if nodes["A"].Path() != "figA" {
		t.Fatalf("A path %q", nodes["A"].Path())
	}
	if nodes["D"].Path() != "figA/figC/figD" {
		t.Fatalf("D path %q", nodes["D"].Path())
	}
	if got, ok := r.NodeByPath("figA/figC"); !ok || got != nodes["C"] {
		t.Fatal("NodeByPath failed")
	}
	if got, ok := r.NodeByType(reflect.TypeOf(figB{})); !ok || got != nodes["B"] {
		t.Fatal("NodeByType failed")
	}
	if got, ok := r.NodeOf(&figB{}); !ok || got != nodes["B"] {
		t.Fatal("NodeOf with pointer failed")
	}
	if !nodes["A"].IsInterface() || nodes["B"].IsInterface() {
		t.Fatal("IsInterface wrong")
	}
	if nodes["D"].Parent() != nodes["C"] {
		t.Fatal("parent wrong")
	}
	kids := nodes["A"].Children()
	if len(kids) != 2 {
		t.Fatalf("A children = %d", len(kids))
	}
}

func TestRegisterErrors(t *testing.T) {
	r, nodes := buildFig7(t)
	if _, err := r.Register(reflect.TypeOf(figB{}), nil); err == nil {
		t.Fatal("duplicate type accepted")
	}
	if _, err := r.Register(nil, nil); err == nil {
		t.Fatal("nil type accepted")
	}
	if _, err := r.Register(reflect.TypeOf(struct{ X int }{}), nil); err == nil {
		t.Fatal("anonymous type accepted")
	}
	orphan := &Node{typ: reflect.TypeOf(0), name: "int", path: "int"}
	if _, err := r.Register(reflect.TypeOf(""), orphan); err == nil {
		t.Fatal("unregistered parent accepted")
	}
	_ = nodes
}

func TestSubtreeClosure(t *testing.T) {
	r, nodes := buildFig7(t)
	got := PathsOf(r.Subtree(nodes["A"]))
	want := []string{"figA", "figA/figB", "figA/figC", "figA/figC/figD"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("subtree(A) = %v", got)
	}
	got = PathsOf(r.Subtree(nodes["C"]))
	want = []string{"figA/figC", "figA/figC/figD"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("subtree(C) = %v", got)
	}
	if got := PathsOf(r.Subtree(nodes["B"])); len(got) != 1 {
		t.Fatalf("subtree(B) = %v", got)
	}
}

func TestInterfaceClosureIncludesImplementers(t *testing.T) {
	r := New()
	// Register B and C as roots (no nominal link to A), then A as an
	// interface: closure must still find them via assignability.
	if _, err := r.Register(reflect.TypeOf(figB{}), nil); err != nil {
		t.Fatal(err)
	}
	cNode, err := r.Register(reflect.TypeOf(figC{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(reflect.TypeOf(figD{}), cNode); err != nil {
		t.Fatal(err)
	}
	aNode, err := r.Register(reflect.TypeOf((*figA)(nil)).Elem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := PathsOf(r.Closure(aNode))
	want := []string{"figA", "figB", "figC", "figC/figD"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("closure(A) = %v, want %v", got, want)
	}
}

func TestAssignable(t *testing.T) {
	r, nodes := buildFig7(t)
	cases := []struct {
		node *Node
		dyn  reflect.Type
		want bool
	}{
		{nodes["A"], reflect.TypeOf(figB{}), true},  // interface impl
		{nodes["A"], reflect.TypeOf(figD{}), true},  // embeds figC => implements
		{nodes["C"], reflect.TypeOf(figD{}), true},  // nominal descent
		{nodes["C"], reflect.TypeOf(figC{}), true},  // exact
		{nodes["C"], reflect.TypeOf(figB{}), false}, // sibling
		{nodes["D"], reflect.TypeOf(figC{}), false}, // supertype not deliverable to subtype sub
		{nodes["B"], reflect.TypeOf(figD{}), false},
	}
	for i, c := range cases {
		if got := r.Assignable(c.node, c.dyn); got != c.want {
			t.Errorf("case %d: Assignable(%s, %v) = %v, want %v", i, c.node.Path(), c.dyn, got, c.want)
		}
	}
	// Pointer dynamic types are unwrapped.
	if !r.Assignable(nodes["C"], reflect.TypeOf(&figD{})) {
		t.Fatal("pointer dyn type not unwrapped")
	}
	// Unregistered dynamic types are never assignable to concrete nodes.
	if r.Assignable(nodes["C"], reflect.TypeOf(42)) {
		t.Fatal("unregistered type assignable")
	}
}

func TestCoversPath(t *testing.T) {
	cases := []struct {
		root, path string
		want       bool
	}{
		{"A", "A", true},
		{"A", "A/B", true},
		{"A/C", "A/C/D", true},
		{"A", "AB", false},
		{"A/C", "A/CD", false},
		{"A/C", "A", false},
	}
	for _, c := range cases {
		if got := CoversPath(c.root, c.path); got != c.want {
			t.Errorf("CoversPath(%q, %q) = %v", c.root, c.path, got)
		}
	}
}

// Property: every node in a subtree is covered by the root's path, and
// nothing outside it is.
func TestQuickSubtreeMatchesCoversPath(t *testing.T) {
	r, nodes := buildFig7(t)
	all := r.Subtree(nodes["A"])
	f := func(rootIdx uint8) bool {
		roots := []*Node{nodes["A"], nodes["B"], nodes["C"], nodes["D"]}
		root := roots[int(rootIdx)%len(roots)]
		inSub := make(map[string]bool)
		for _, n := range r.Subtree(root) {
			inSub[n.Path()] = true
		}
		for _, n := range all {
			if CoversPath(root.Path(), n.Path()) != inSub[n.Path()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeOfUnwrapsPointers(t *testing.T) {
	v := &figB{}
	if TypeOf(v) != reflect.TypeOf(figB{}) {
		t.Fatal("single pointer not unwrapped")
	}
	vv := &v
	if TypeOf(vv) != reflect.TypeOf(figB{}) {
		t.Fatal("double pointer not unwrapped")
	}
	if TypeOf(nil) != nil {
		t.Fatal("nil should map to nil type")
	}
}
