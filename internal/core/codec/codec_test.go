package codec

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

type skiRental struct {
	Shop         string
	Brand        string
	Price        float64
	NumberOfDays float64
}

func init() {
	// Normally done by the type registry.
	gob.Register(skiRental{})
}

func TestGobRoundTrip(t *testing.T) {
	c := Gob{}
	if c.Name() != "gob" {
		t.Fatalf("name %q", c.Name())
	}
	in := skiRental{Shop: "XTremShop", Brand: "Salomon", Price: 14, NumberOfDays: 100}
	data, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(data, reflect.TypeOf(skiRental{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v", out)
	}
}

func TestGobDecodeWithoutTypeHint(t *testing.T) {
	c := Gob{}
	in := skiRental{Shop: "s"}
	data, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.(skiRental); !ok {
		t.Fatalf("dynamic type %T", out)
	}
}

func TestGobTypeMismatch(t *testing.T) {
	c := Gob{}
	data, err := c.Encode(skiRental{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(data, reflect.TypeOf(42)); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestGobGarbage(t *testing.T) {
	c := Gob{}
	if _, err := c.Decode([]byte("not gob at all"), nil); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := c.Encode(nil); !errors.Is(err, ErrNilEvent) {
		t.Fatalf("nil encode: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := JSON{}
	if c.Name() != "json" {
		t.Fatalf("name %q", c.Name())
	}
	in := skiRental{Shop: "Shop2", Brand: "Atomic", Price: 19.5, NumberOfDays: 7}
	data, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(data, reflect.TypeOf(skiRental{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v", out)
	}
}

func TestJSONRequiresType(t *testing.T) {
	c := JSON{}
	if _, err := c.Decode([]byte(`{}`), nil); err == nil {
		t.Fatal("json decode without type accepted")
	}
	if _, err := c.Decode([]byte(`{broken`), reflect.TypeOf(skiRental{})); err == nil {
		t.Fatal("broken json decoded")
	}
	if _, err := c.Encode(nil); !errors.Is(err, ErrNilEvent) {
		t.Fatalf("nil encode: %v", err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"gob", "json", "xml"} {
		c, err := ByName(name)
		if err != nil || c.Name() != name {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("xdr"); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("unknown: %v", err)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	c := XML{}
	in := skiRental{Shop: "XmlShop", Brand: "Völkl & Co", Price: 25, NumberOfDays: 3}
	data, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("<Shop>XmlShop</Shop>")) {
		t.Fatalf("xml lacks readable structure: %s", data)
	}
	out, err := c.Decode(data, reflect.TypeOf(skiRental{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v", out)
	}
}

func TestXMLErrors(t *testing.T) {
	c := XML{}
	if _, err := c.Encode(nil); !errors.Is(err, ErrNilEvent) {
		t.Fatalf("nil encode: %v", err)
	}
	if _, err := c.Decode([]byte("<skiRental>"), reflect.TypeOf(skiRental{})); err == nil {
		t.Fatal("truncated xml decoded")
	}
	if _, err := c.Decode([]byte("<x/>"), nil); err == nil {
		t.Fatal("decode without type accepted")
	}
}

// Property: both codecs round-trip arbitrary event field values.
func TestQuickRoundTripBothCodecs(t *testing.T) {
	for _, c := range []Codec{Gob{}, JSON{}} {
		c := c
		f := func(shop, brand string, price, days float64) bool {
			in := skiRental{Shop: shop, Brand: brand, Price: price, NumberOfDays: days}
			data, err := c.Encode(in)
			if err != nil {
				return false
			}
			out, err := c.Decode(data, reflect.TypeOf(skiRental{}))
			if err != nil {
				return false
			}
			return reflect.DeepEqual(out, in)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}
