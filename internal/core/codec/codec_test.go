package codec

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

type skiRental struct {
	Shop         string
	Brand        string
	Price        float64
	NumberOfDays float64
}

func init() {
	// Normally done by the type registry.
	gob.Register(skiRental{})
}

func TestGobRoundTrip(t *testing.T) {
	c := Gob{}
	if c.Name() != "gob" {
		t.Fatalf("name %q", c.Name())
	}
	in := skiRental{Shop: "XTremShop", Brand: "Salomon", Price: 14, NumberOfDays: 100}
	data, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(data, reflect.TypeOf(skiRental{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v", out)
	}
}

func TestGobDecodeWithoutTypeHint(t *testing.T) {
	c := Gob{}
	in := skiRental{Shop: "s"}
	data, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.(skiRental); !ok {
		t.Fatalf("dynamic type %T", out)
	}
}

func TestGobTypeMismatch(t *testing.T) {
	c := Gob{}
	data, err := c.Encode(skiRental{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(data, reflect.TypeOf(42)); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestGobGarbage(t *testing.T) {
	c := Gob{}
	if _, err := c.Decode([]byte("not gob at all"), nil); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := c.Encode(nil); !errors.Is(err, ErrNilEvent) {
		t.Fatalf("nil encode: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := JSON{}
	if c.Name() != "json" {
		t.Fatalf("name %q", c.Name())
	}
	in := skiRental{Shop: "Shop2", Brand: "Atomic", Price: 19.5, NumberOfDays: 7}
	data, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(data, reflect.TypeOf(skiRental{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v", out)
	}
}

func TestJSONRequiresType(t *testing.T) {
	c := JSON{}
	if _, err := c.Decode([]byte(`{}`), nil); err == nil {
		t.Fatal("json decode without type accepted")
	}
	if _, err := c.Decode([]byte(`{broken`), reflect.TypeOf(skiRental{})); err == nil {
		t.Fatal("broken json decoded")
	}
	if _, err := c.Encode(nil); !errors.Is(err, ErrNilEvent) {
		t.Fatalf("nil encode: %v", err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"gob", "json", "xml"} {
		c, err := ByName(name)
		if err != nil || c.Name() != name {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("xdr"); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("unknown: %v", err)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	c := XML{}
	in := skiRental{Shop: "XmlShop", Brand: "Völkl & Co", Price: 25, NumberOfDays: 3}
	data, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("<Shop>XmlShop</Shop>")) {
		t.Fatalf("xml lacks readable structure: %s", data)
	}
	out, err := c.Decode(data, reflect.TypeOf(skiRental{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v", out)
	}
}

func TestXMLErrors(t *testing.T) {
	c := XML{}
	if _, err := c.Encode(nil); !errors.Is(err, ErrNilEvent) {
		t.Fatalf("nil encode: %v", err)
	}
	if _, err := c.Decode([]byte("<skiRental>"), reflect.TypeOf(skiRental{})); err == nil {
		t.Fatal("truncated xml decoded")
	}
	if _, err := c.Decode([]byte("<x/>"), nil); err == nil {
		t.Fatal("decode without type accepted")
	}
}

// Property: both codecs round-trip arbitrary event field values.
func TestQuickRoundTripBothCodecs(t *testing.T) {
	for _, c := range []Codec{Gob{}, JSON{}} {
		c := c
		f := func(shop, brand string, price, days float64) bool {
			in := skiRental{Shop: shop, Brand: brand, Price: price, NumberOfDays: days}
			data, err := c.Encode(in)
			if err != nil {
				return false
			}
			out, err := c.Decode(data, reflect.TypeOf(skiRental{}))
			if err != nil {
				return false
			}
			return reflect.DeepEqual(out, in)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

type bikeRental struct {
	Shop  string
	Price float64
}

func init() {
	gob.Register(bikeRental{})
}

// TestGobBlobsAreSelfContained locks in the property that makes buffer
// pooling (and NOT encoder pooling) correct: every Encode output must
// decode standalone with a fresh decoder, because events land on
// arbitrary peers with no shared gob stream state. Interleaving types
// and decoding out of order would catch any reuse of encoder
// type-descriptor state across events.
func TestGobBlobsAreSelfContained(t *testing.T) {
	c := Gob{}
	events := []any{
		skiRental{Shop: "a", Brand: "x", Price: 1, NumberOfDays: 2},
		bikeRental{Shop: "b", Price: 3},
		skiRental{Shop: "c", Brand: "y", Price: 4, NumberOfDays: 5},
		bikeRental{Shop: "d", Price: 6},
		skiRental{Shop: "e"},
	}
	blobs := make([][]byte, len(events))
	var wg sync.WaitGroup
	// Encode concurrently so the pool actually cycles buffers between
	// goroutines, then decode in reverse order so no decoder can lean on
	// stream state from an earlier blob.
	for i, ev := range events {
		wg.Add(1)
		go func(i int, ev any) {
			defer wg.Done()
			data, err := c.Encode(ev)
			if err != nil {
				t.Error(err)
				return
			}
			blobs[i] = data
		}(i, ev)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := len(blobs) - 1; i >= 0; i-- {
		out, err := c.Decode(blobs[i], reflect.TypeOf(events[i]))
		if err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		if !reflect.DeepEqual(out, events[i]) {
			t.Fatalf("blob %d: got %+v want %+v", i, out, events[i])
		}
	}
}

// TestGobEncodeResultDoesNotAliasPool guards the copy-out: a returned
// blob must stay intact while later Encodes reuse the pooled buffer.
func TestGobEncodeResultDoesNotAliasPool(t *testing.T) {
	c := Gob{}
	first, err := c.Encode(skiRental{Shop: "keep", Brand: "me"})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), first...)
	for i := 0; i < 64; i++ {
		if _, err := c.Encode(bikeRental{Shop: "overwrite", Price: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(first, snapshot) {
		t.Fatal("earlier Encode result was clobbered by pooled buffer reuse")
	}
}
