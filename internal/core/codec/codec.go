// Package codec serialises TPS events for the wire.
//
// TPS assumes the peers a priori share a common type model (the paper's
// §3.2/§6 discussion: Java serialization there, Go types here). Two
// codecs ship: gob — the Go-native analogue of Java serialization, used
// by default — and JSON, the "loose" representation §6 sketches as the
// road toward cross-model interoperability.
package codec

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"reflect"
	"sync"
)

// Errors.
var (
	ErrUnknownCodec = errors.New("codec: unknown codec name")
	ErrNilEvent     = errors.New("codec: nil event")
)

// Codec turns events into bytes and back.
type Codec interface {
	// Name identifies the codec on the wire.
	Name() string
	// Encode serialises an event value.
	Encode(event any) ([]byte, error)
	// Decode deserialises into a value of the given type. The returned
	// value's dynamic type is typ (not a pointer to it).
	Decode(data []byte, typ reflect.Type) (any, error)
}

// Gob is the default event codec. Concrete event types must be
// registered with encoding/gob, which the type registry does at
// registration time.
type Gob struct{}

// Name implements Codec.
func (Gob) Name() string { return "gob" }

// gobBufPool recycles the scratch buffers gob streams are rendered into,
// so steady-state publishing reuses one grown buffer instead of growing
// a fresh bytes.Buffer through several doublings per event.
//
// The gob.Encoder itself is deliberately NOT pooled: an encoder transmits
// each type's descriptor only once per stream, and every TPS event must
// decode standalone on whichever peer it lands on (there is no shared
// stream state between peers). A reused encoder would emit frames whose
// type descriptors live in some earlier frame, which a fresh decoder
// cannot resolve — so correctness forces a fresh encoder per event, and
// TestGobBlobsAreSelfContained locks that property in.
var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Encode implements Codec. The value is encoded through an interface
// envelope so Decode can recover the concrete type without knowing it in
// advance.
func (Gob) Encode(event any) ([]byte, error) {
	if event == nil {
		return nil, ErrNilEvent
	}
	buf := gobBufPool.Get().(*bytes.Buffer)
	defer gobBufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(&event); err != nil {
		return nil, fmt.Errorf("codec: gob encode %T: %w", event, err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// Decode implements Codec. typ is advisory for gob (the stream is
// self-describing); when non-nil the decoded value is checked against
// it.
func (Gob) Decode(data []byte, typ reflect.Type) (any, error) {
	var out any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&out); err != nil {
		return nil, fmt.Errorf("codec: gob decode: %w", err)
	}
	if typ != nil && reflect.TypeOf(out) != typ {
		return nil, fmt.Errorf("codec: gob decoded %T, want %v", out, typ)
	}
	return out, nil
}

// JSON is the alternative, cross-language-friendly codec. Unlike gob the
// stream is not self-describing, so Decode requires the expected type
// (the TPS envelope carries the type path for exactly this reason).
type JSON struct{}

// Name implements Codec.
func (JSON) Name() string { return "json" }

// Encode implements Codec.
func (JSON) Encode(event any) ([]byte, error) {
	if event == nil {
		return nil, ErrNilEvent
	}
	out, err := json.Marshal(event)
	if err != nil {
		return nil, fmt.Errorf("codec: json encode %T: %w", event, err)
	}
	return out, nil
}

// Decode implements Codec.
func (JSON) Decode(data []byte, typ reflect.Type) (any, error) {
	if typ == nil {
		return nil, errors.New("codec: json decode requires a type")
	}
	ptr := reflect.New(typ)
	if err := json.Unmarshal(data, ptr.Interface()); err != nil {
		return nil, fmt.Errorf("codec: json decode into %v: %w", typ, err)
	}
	return ptr.Elem().Interface(), nil
}

// XML represents events as XML documents — the "loose" way of achieving
// common type knowledge at run time that the paper's §6 leaves as
// ongoing investigation: peers that do not share the Go type model can
// still inspect the element structure. Like JSON, the stream is not
// self-describing at the Go level, so Decode needs the expected type.
type XML struct{}

// Name implements Codec.
func (XML) Name() string { return "xml" }

// Encode implements Codec.
func (XML) Encode(event any) ([]byte, error) {
	if event == nil {
		return nil, ErrNilEvent
	}
	out, err := xml.Marshal(event)
	if err != nil {
		return nil, fmt.Errorf("codec: xml encode %T: %w", event, err)
	}
	return out, nil
}

// Decode implements Codec.
func (XML) Decode(data []byte, typ reflect.Type) (any, error) {
	if typ == nil {
		return nil, errors.New("codec: xml decode requires a type")
	}
	ptr := reflect.New(typ)
	if err := xml.Unmarshal(data, ptr.Interface()); err != nil {
		return nil, fmt.Errorf("codec: xml decode into %v: %w", typ, err)
	}
	return ptr.Elem().Interface(), nil
}

// ByName returns the codec registered under the given wire name.
func ByName(name string) (Codec, error) {
	switch name {
	case "gob":
		return Gob{}, nil
	case "json":
		return JSON{}, nil
	case "xml":
		return XML{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownCodec, name)
	}
}

// Interface compliance.
var (
	_ Codec = Gob{}
	_ Codec = JSON{}
	_ Codec = XML{}
)
