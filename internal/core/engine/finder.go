package engine

import (
	"time"

	"github.com/tps-p2p/tps/internal/core/typereg"
	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/wire"
)

// finder.go is the TPSAdvertisementsFinder block (paper Figure 16): a
// background loop that keeps searching for advertisements related to the
// tracked types — so a publisher reaches the maximum number of
// interested subscribers even when their groups appeared later — and an
// advertisement listener that attaches every new matching group.

// finderLoop periodically queries the net group for advertisements of
// every tracked type subtree.
func (e *Engine) finderLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.fint)
	defer ticker.Stop()
	for {
		e.findOnce()
		select {
		case <-ticker.C:
		case <-e.kick:
		case <-e.stop:
			return
		}
	}
}

// findOnce issues one round of discovery queries: for each tracked root
// path P, an exact query for "PS.P" and a prefix query for "PS.P/*"
// (the subtype closure), mirroring the paper's
// getRemoteAdvertisements(..., "Name", prefix+"*", N).
func (e *Engine) findOnce() {
	net := e.peer.NetGroup()
	if net == nil {
		return
	}
	e.mu.Lock()
	paths := make([]string, 0, len(e.tracked))
	for p := range e.tracked {
		paths = append(paths, p)
	}
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return
	}
	for _, p := range paths {
		_ = net.Discovery.GetRemoteAdvertisements(adv.Group, "Name", PSPrefix+p, 0)
		_ = net.Discovery.GetRemoteAdvertisements(adv.Group, "Name", PSPrefix+p+"/*", 0)
	}
	// Local cache hits (e.g. advertisements that arrived via unsolicited
	// remote publish before we started tracking) attach too.
	for _, p := range paths {
		for _, rec := range net.Discovery.GetLocalAdvertisements(adv.Group, "Name", PSPrefix+p) {
			e.considerAdvertisement(rec.Adv)
		}
		for _, rec := range net.Discovery.GetLocalAdvertisements(adv.Group, "Name", PSPrefix+p+"/*") {
			e.considerAdvertisement(rec.Adv)
		}
	}
}

// onAdvertisement is the engine's discovery listener: every
// advertisement a remote peer sends us is considered for attachment.
func (e *Engine) onAdvertisement(a adv.Advertisement, _ jid.ID) {
	e.considerAdvertisement(a)
}

// considerAdvertisement attaches to the advertised group if it carries a
// wire service for a tracked type (or a subtype of one).
func (e *Engine) considerAdvertisement(a adv.Advertisement) {
	pg, ok := a.(*adv.PeerGroupAdv)
	if !ok {
		return
	}
	svc, ok := pg.Service(wire.ServiceName)
	if !ok || svc.Pipe == nil {
		return
	}
	path, ok := advPath(pg.Name)
	if !ok {
		return
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	interested := false
	for root := range e.tracked {
		if typereg.CoversPath(root, path) {
			interested = true
			break
		}
	}
	_, already := e.attachments[path][pg.GroupID]
	inProgress := e.creating[pg.GroupID]
	if interested && !already && !inProgress {
		e.creating[pg.GroupID] = true
	}
	e.mu.Unlock()
	if !interested || already || inProgress {
		return
	}
	e.stats.advsFound.Add(1)
	if err := e.attach(pg); err != nil {
		e.mu.Lock()
		delete(e.creating, pg.GroupID)
		e.mu.Unlock()
	}
}

// advPath extracts the type path from an advertisement name
// ("PS.figA/figC" -> "figA/figC").
func advPath(name string) (string, bool) {
	if len(name) <= len(PSPrefix) || name[:len(PSPrefix)] != PSPrefix {
		return "", false
	}
	return name[len(PSPrefix):], true
}
