// Package engine implements the TPS engine over the JXTA substrate —
// the paper's §3.4 architecture.
//
// The engine is built from the four blocks of Figure 10:
//
//   - TPSEngine (this type): collects publications and subscriptions and
//     dispatches them to the other blocks;
//   - Advertisements: the creator (creator.go) builds the one
//     advertisement that represents a type, the finder (finder.go)
//     keeps searching for further advertisements related to tracked
//     types and dispatches them to listeners;
//   - Interface Repository (subscriptions.go): stores callback objects
//     and exception handlers and starts/stops subscriptions;
//   - Connections (attach.go): joins the per-type peer groups found or
//     created, opens wire input/output pipes and runs the pipe readers.
//
// One engine serves one type hierarchy; programs interested in several
// unrelated hierarchies create several engines (§4.2).
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tps-p2p/tps/internal/core/codec"
	"github.com/tps-p2p/tps/internal/core/typereg"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/seen"
	"github.com/tps-p2p/tps/internal/obs"
	"github.com/tps-p2p/tps/internal/obs/hist"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

// PSPrefix prefixes every TPS advertisement name, as in the paper's
// AdvertisementsCreator (adv.setName(PS_PREFIX + pipeAdv.getName())).
const PSPrefix = "PS."

// Defaults.
const (
	// DefaultFindTimeout is how long a publisher or subscriber searches
	// for an existing type advertisement before creating its own — the
	// paper's "specific amount of time".
	DefaultFindTimeout = 2 * time.Second
	// DefaultFindInterval is the advertisement finder's loop period —
	// the paper's SLEEPING_TIME.
	DefaultFindInterval = time.Second
)

// Errors.
var (
	ErrClosed        = errors.New("tps: engine closed")
	ErrNotRegistered = errors.New("tps: event type not registered")
	ErrNilDelivery   = errors.New("tps: nil delivery callback")
)

// Config configures an Engine.
type Config struct {
	// Peer is the JXTA peer the engine runs on.
	Peer *peer.Peer
	// Registry is the shared event-type registry.
	Registry *typereg.Registry
	// Codec serialises events; nil means gob.
	Codec codec.Codec
	// FindTimeout bounds the initial advertisement search.
	FindTimeout time.Duration
	// FindInterval is the background finder's period.
	FindInterval time.Duration
	// Tracer, when non-nil, receives hop records for sampled events
	// (publish and deliver stages; the rendezvous layer records the
	// forward stage into the same per-peer store).
	Tracer *trace.Store
	// TraceRate is the fraction of published events stamped with a
	// trace element, in [0,1]. 0 (the default) disables tracing and
	// leaves the publish path untouched.
	TraceRate float64
}

// Engine is the TPS engine: one instance per type hierarchy.
type Engine struct {
	peer  *peer.Peer
	reg   *typereg.Registry
	codec codec.Codec
	ftime time.Duration
	fint  time.Duration

	mu           sync.Mutex
	cond         *sync.Cond                        // broadcast on attachment changes
	tracked      map[string]*typereg.Node          // root paths the finder queries for
	attachments  map[string]map[jid.ID]*attachment // type path -> group ID -> attachment
	pubSnaps     map[string][]*attachment          // immutable fan-out snapshots; invalidated on attach/detach
	creating     map[jid.ID]bool                   // group IDs being attached right now
	creatingPath map[string]bool                   // type paths whose own adv is being created
	subs         *subscriptionSet
	dedupe       *seen.Cache
	self         *publishedEvents // decode-once: values this peer published, by event ID
	closed       bool

	// Per-message counters are atomics so the publish and deliver paths
	// never touch e.mu just to count.
	stats engineCounters

	// Stage latency histograms; always on (recording is alloc-free).
	histPublish  *hist.Hist // publish call → fan-out complete
	histDispatch *hist.Hist // dispatch → last subscriber callback return
	histTransit  *hist.Hist // publish stamp → local delivery (traced events only)

	// Sampled hop tracing; sampler decides per event ID, tracer archives.
	tracer  *trace.Store
	sampler trace.Sampler

	wg     sync.WaitGroup
	stop   chan struct{}
	kick   chan struct{} // wakes the finder immediately
	lisTok int
}

// Stats counts engine activity.
//
// Deprecated: new introspection code should use Snapshot (the
// obs.Provider view); Stats remains for existing tests and tools.
type Stats struct {
	Published       int64
	Delivered       int64
	DuplicateEvents int64
	DecodeErrors    int64
	// PublishErrors counts per-attachment publish failures (wire send or
	// mesh propagation errored). A Publish call across several attached
	// groups can partially fail; each failing attachment counts once.
	PublishErrors   int64
	AttachmentsLive int
	AdvsCreated     int64
	AdvsFound       int64
}

// engineCounters is the lock-free internal form of Stats.
type engineCounters struct {
	published       atomic.Int64
	delivered       atomic.Int64
	duplicateEvents atomic.Int64
	decodeErrors    atomic.Int64
	publishErrors   atomic.Int64
	advsCreated     atomic.Int64
	advsFound       atomic.Int64
	replayRequests  atomic.Int64
}

// New creates and starts an engine: the advertisement finder begins
// running immediately.
func New(cfg Config) (*Engine, error) {
	if cfg.Peer == nil || cfg.Registry == nil {
		return nil, errors.New("tps: engine needs a peer and a registry")
	}
	if cfg.Codec == nil {
		cfg.Codec = codec.Gob{}
	}
	if cfg.FindTimeout <= 0 {
		cfg.FindTimeout = DefaultFindTimeout
	}
	if cfg.FindInterval <= 0 {
		cfg.FindInterval = DefaultFindInterval
	}
	e := &Engine{
		peer:         cfg.Peer,
		reg:          cfg.Registry,
		codec:        cfg.Codec,
		ftime:        cfg.FindTimeout,
		fint:         cfg.FindInterval,
		tracked:      make(map[string]*typereg.Node),
		attachments:  make(map[string]map[jid.ID]*attachment),
		pubSnaps:     make(map[string][]*attachment),
		creating:     make(map[jid.ID]bool),
		creatingPath: make(map[string]bool),
		subs:         newSubscriptionSet(),
		dedupe:       seen.New(),
		self:         newPublishedEvents(),
		histPublish:  hist.New(),
		histDispatch: hist.New(),
		histTransit:  hist.New(),
		tracer:       cfg.Tracer,
		sampler:      trace.NewSampler(cfg.TraceRate),
		stop:         make(chan struct{}),
		kick:         make(chan struct{}, 1),
	}
	e.cond = sync.NewCond(&e.mu)
	net := cfg.Peer.NetGroup()
	if net == nil {
		return nil, ErrClosed
	}
	e.lisTok = net.Discovery.AddListener(e.onAdvertisement)
	e.wg.Add(2)
	go e.finderLoop()
	go e.replayLoop()
	return e, nil
}

// Codec returns the engine's event codec.
func (e *Engine) Codec() codec.Codec { return e.codec }

// Registry returns the shared type registry.
func (e *Engine) Registry() *typereg.Registry { return e.reg }

// Peer returns the underlying JXTA peer.
func (e *Engine) Peer() *peer.Peer { return e.peer }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Published:       e.stats.published.Load(),
		Delivered:       e.stats.delivered.Load(),
		DuplicateEvents: e.stats.duplicateEvents.Load(),
		DecodeErrors:    e.stats.decodeErrors.Load(),
		PublishErrors:   e.stats.publishErrors.Load(),
		AdvsCreated:     e.stats.advsCreated.Load(),
		AdvsFound:       e.stats.advsFound.Load(),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, m := range e.attachments {
		st.AttachmentsLive += len(m)
	}
	return st
}

// Snapshot implements obs.Provider. Counter keys follow the shared obs
// vocabulary: what Stats calls DecodeErrors and PublishErrors are
// `decode_failures` and `publish_failures` here.
func (e *Engine) Snapshot() obs.Snapshot {
	e.mu.Lock()
	attachments := 0
	for _, m := range e.attachments {
		attachments += len(m)
	}
	e.mu.Unlock()
	return obs.Snapshot{
		Name:    "engine",
		Version: 1,
		Counters: map[string]int64{
			"published":        e.stats.published.Load(),
			"delivered":        e.stats.delivered.Load(),
			"duplicates":       e.stats.duplicateEvents.Load(),
			"decode_failures":  e.stats.decodeErrors.Load(),
			"publish_failures": e.stats.publishErrors.Load(),
			"advs_created":     e.stats.advsCreated.Load(),
			"advs_found":       e.stats.advsFound.Load(),
			"replay_requests":  e.stats.replayRequests.Load(),
		},
		Gauges: map[string]float64{
			"attachments":   float64(attachments),
			"subscriptions": float64(e.SubscriptionCount()),
		},
		Hists: map[string]hist.Snapshot{
			"publish_fanout_us": e.histPublish.Snapshot(),
			"dispatch_us":       e.histDispatch.Snapshot(),
			"transit_us":        e.histTransit.Snapshot(),
		},
	}
}

// ZeroSnapshot is the engine snapshot of a peer running no engines yet:
// every counter present and zero, so the stats document's subsystem
// catalog is stable from the first collect.
func ZeroSnapshot() obs.Snapshot {
	return obs.Snapshot{
		Name:    "engine",
		Version: 1,
		Counters: map[string]int64{
			"published":        0,
			"delivered":        0,
			"duplicates":       0,
			"decode_failures":  0,
			"publish_failures": 0,
			"advs_created":     0,
			"advs_found":       0,
			"replay_requests":  0,
		},
		Gauges: map[string]float64{
			"attachments":   0,
			"subscriptions": 0,
		},
		Hists: map[string]hist.Snapshot{
			"publish_fanout_us": {},
			"dispatch_us":       {},
			"transit_us":        {},
		},
	}
}

// SeenCache exposes the event-level dedupe cache for the "seen"
// subsystem aggregation.
func (e *Engine) SeenCache() *seen.Cache { return e.dedupe }

// SubscriptionsView lists the live subscription table: one entry per
// subscribed root type, with the attachment fan-in serving it. It feeds
// /subscriptions on the admin surface.
func (e *Engine) SubscriptionsView() []obs.SubscriptionEntry {
	subscribers := make(map[string]int)
	e.subs.mu.RLock()
	for sub := range e.subs.subs {
		subscribers[sub.node.Path()]++
	}
	e.subs.mu.RUnlock()
	paths := make([]string, 0, len(subscribers))
	for p := range subscribers {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]obs.SubscriptionEntry, 0, len(paths))
	for _, p := range paths {
		node, ok := e.reg.NodeByPath(p)
		entry := obs.SubscriptionEntry{Type: p, Subscribers: subscribers[p]}
		if ok {
			entry.Attachments = e.attachmentCount(node)
			entry.Ready = e.readyCount(node)
		}
		out = append(out, entry)
	}
	return out
}

// attachmentCount counts the live attachments covering the node's
// subtree, connected or not.
func (e *Engine) attachmentCount(node *typereg.Node) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	count := 0
	for path, m := range e.attachments {
		if typereg.CoversPath(node.Path(), path) {
			count += len(m)
		}
	}
	return count
}

// Close stops the finder, closes every attachment and detaches from
// discovery.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	var atts []*attachment
	for _, m := range e.attachments {
		for _, a := range m {
			atts = append(atts, a)
		}
	}
	e.attachments = map[string]map[jid.ID]*attachment{}
	e.cond.Broadcast()
	e.mu.Unlock()

	close(e.stop)
	e.wg.Wait()
	if net := e.peer.NetGroup(); net != nil {
		net.Discovery.RemoveListener(e.lisTok)
	}
	for _, a := range atts {
		a.close(e.peer)
	}
}

// Publish serialises the event and sends it on the wire pipe of every
// group attached for the event's dynamic type, creating the type's
// advertisement first if nobody advertises it yet.
func (e *Engine) Publish(event any) error {
	node, ok := e.reg.NodeOf(event)
	if !ok {
		return fmt.Errorf("%w: %T", ErrNotRegistered, event)
	}
	if err := e.EnsureType(node); err != nil {
		return err
	}
	// The publish_fanout_us histogram covers encode → envelope → every
	// attachment handed off; EnsureType stays outside it because the
	// first-publish advertisement search blocks for seconds by design.
	start := time.Now()
	payload, err := e.codec.Encode(event)
	if err != nil {
		return err
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	// Steady-state publish reuses the cached fan-out snapshot; the slice
	// is rebuilt only after an attach or detach invalidated it, so the
	// per-call copy-under-mutex allocation is gone from the hot path.
	atts, ok := e.pubSnaps[node.Path()]
	if !ok {
		atts = make([]*attachment, 0, len(e.attachments[node.Path()]))
		for _, a := range e.attachments[node.Path()] {
			atts = append(atts, a)
		}
		e.pubSnaps[node.Path()] = atts
	}
	e.mu.Unlock()
	e.stats.published.Add(1)

	// Build the four-element TPS message once and share it across the
	// fan-out: the wire service Dups before mutating, so each attachment
	// sees its own envelope without the engine rebuilding the elements.
	eventID := jid.NewMessage()
	// Decode-once: remember the outgoing value so the synchronous wire
	// loopback (and any mesh echo) dispatches it without a gob decode.
	e.self.put(eventID, event)
	msg := newEventMessage(e, eventID, node.Path(), payload)
	// Deterministic sampling: every peer computes the same decision
	// from the event ID, so a stamped event is traced end to end. The
	// stamp appends one element and therefore only runs when sampled —
	// with TraceRate 0 the publish path is byte-identical to before.
	if e.sampler.Sample(eventID) {
		sentUS := time.Now().UnixMicro()
		trace.Stamp(msg, eventID, sentUS)
		if e.tracer != nil {
			e.tracer.Record(eventID, trace.StagePublish, e.peer.ID(), sentUS, nil)
		}
	}

	var firstErr error
	sent := 0
	for _, a := range atts {
		if err := a.publish(msg); err != nil {
			e.stats.publishErrors.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	e.histPublish.Observe(time.Since(start))
	if sent == 0 && firstErr != nil {
		return fmt.Errorf("tps: publish %s: %w", node.Path(), firstErr)
	}
	return nil
}

// EnsureType makes sure at least one advertisement (and attachment)
// exists for the node's type: it searches for the configured find
// timeout and creates this peer's own advertisement when nothing shows
// up — the initialization behaviour of the paper's §4.1.
func (e *Engine) EnsureType(node *typereg.Node) error {
	e.trackPath(node)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if len(e.attachments[node.Path()]) > 0 {
		e.mu.Unlock()
		return nil
	}
	e.mu.Unlock()

	// Trigger an immediate search round and wait for a matching
	// advertisement to attach.
	e.kickFinder()
	deadline := time.Now().Add(e.ftime)
	timer := time.AfterFunc(e.ftime, func() {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	})
	defer timer.Stop()
	e.mu.Lock()
	for len(e.attachments[node.Path()]) == 0 && !e.closed && time.Now().Before(deadline) {
		e.cond.Wait()
	}
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if len(e.attachments[node.Path()]) > 0 {
		e.mu.Unlock()
		return nil
	}
	// Nobody advertises this type: create our own advertisement, keep
	// looking for others in the background (the finder stays on it).
	// Only one goroutine creates per path; latecomers wait for it.
	for e.creatingPath[node.Path()] && !e.closed {
		e.cond.Wait()
	}
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if len(e.attachments[node.Path()]) > 0 {
		e.mu.Unlock()
		return nil
	}
	e.creatingPath[node.Path()] = true
	e.mu.Unlock()

	err := e.createAndAttach(node)
	e.mu.Lock()
	delete(e.creatingPath, node.Path())
	e.cond.Broadcast()
	e.mu.Unlock()
	return err
}

// AwaitAttachments blocks until the type has at least n attachments or
// the timeout elapses, reporting success. Benchmarks and tests use it to
// know the mesh is ready before measuring.
func (e *Engine) AwaitAttachments(node *typereg.Node, n int, timeout time.Duration) bool {
	e.trackPath(node)
	e.kickFinder()
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	})
	defer timer.Stop()
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		count := 0
		for path, m := range e.attachments {
			if typereg.CoversPath(node.Path(), path) {
				count += len(m)
			}
		}
		if count >= n {
			return true
		}
		if e.closed || !time.Now().Before(deadline) {
			return false
		}
		e.cond.Wait()
	}
}

// trackPath registers a root path with the background finder.
func (e *Engine) trackPath(node *typereg.Node) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tracked[node.Path()]; !ok {
		e.tracked[node.Path()] = node
	}
}

func (e *Engine) kickFinder() {
	select {
	case e.kick <- struct{}{}:
	default:
	}
}
