package engine

// replay_test.go unit-tests the contiguous replay cursor: the invariant
// that makes at-least-once redelivery converge is that the cursor never
// advances past an undelivered sequence, while gap signals may jump it
// over ranges retention has made unrecoverable.

import (
	"testing"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

func TestCursorAdvancesOnlyContiguously(t *testing.T) {
	a := &attachment{}
	origin := jid.FromSeed(jid.KindPeer, 1)

	a.noteCursor(origin, 1)
	a.noteCursor(origin, 2)
	if got := a.cursor(origin); got != 2 {
		t.Fatalf("cursor after 1,2 = %d, want 2", got)
	}
	// A hole: 3 is lost, 4..6 arrive. The cursor must hold at 2 so the
	// next replay round refetches 3 — advancing to max would skip it
	// forever.
	a.noteCursor(origin, 4)
	a.noteCursor(origin, 5)
	a.noteCursor(origin, 6)
	if got := a.cursor(origin); got != 2 {
		t.Fatalf("cursor with hole at 3 = %d, want 2", got)
	}
	// The hole fills: the cursor drains the pending run in one step.
	a.noteCursor(origin, 3)
	if got := a.cursor(origin); got != 6 {
		t.Fatalf("cursor after hole filled = %d, want 6", got)
	}
	// Duplicates and stale sequences are no-ops.
	a.noteCursor(origin, 4)
	a.noteCursor(origin, 6)
	if got := a.cursor(origin); got != 6 {
		t.Fatalf("cursor after duplicates = %d, want 6", got)
	}
}

func TestCursorPerOrigin(t *testing.T) {
	a := &attachment{}
	o1 := jid.FromSeed(jid.KindPeer, 1)
	o2 := jid.FromSeed(jid.KindPeer, 2)
	a.noteCursor(o1, 1)
	a.noteCursor(o1, 2)
	a.noteCursor(o2, 1)
	if a.cursor(o1) != 2 || a.cursor(o2) != 1 {
		t.Fatalf("cursors = (%d, %d), want (2, 1): origins must not share state",
			a.cursor(o1), a.cursor(o2))
	}
}

func TestJumpCursorSkipsRetentionGap(t *testing.T) {
	a := &attachment{}
	origin := jid.FromSeed(jid.KindPeer, 1)
	a.noteCursor(origin, 1)
	// Entries above the gap arrived before the signal.
	a.noteCursor(origin, 10)
	a.noteCursor(origin, 11)
	// Retention dropped 2..8; the log retains 9..11. Waiting for 2 would
	// stall the cursor forever, so the gap signal jumps the floor to 8
	// and the pending run 9 would drain when it arrives.
	a.jumpCursor(origin, 9)
	if got := a.cursor(origin); got != 8 {
		t.Fatalf("cursor after gap jump to first=9: %d, want 8", got)
	}
	a.noteCursor(origin, 9)
	if got := a.cursor(origin); got != 11 {
		t.Fatalf("cursor after 9 arrives = %d, want 11 (pending 10,11 drain)", got)
	}
	// A stale or retained-everything gap signal must not move the cursor
	// backwards.
	a.jumpCursor(origin, 5)
	if got := a.cursor(origin); got != 11 {
		t.Fatalf("cursor after stale gap = %d, want 11", got)
	}
	a.jumpCursor(origin, 0)
	if got := a.cursor(origin); got != 11 {
		t.Fatalf("cursor after empty gap = %d, want 11", got)
	}
}

func TestCursorPendingSetBounded(t *testing.T) {
	a := &attachment{}
	origin := jid.FromSeed(jid.KindPeer, 1)
	// Never deliver seq 1: everything lands in the pending set, which
	// must stay capped instead of growing with the hole's width.
	for seq := uint64(2); seq < maxPendingSeqs*2; seq++ {
		a.noteCursor(origin, seq)
	}
	a.curMu.Lock()
	pending := len(a.cursors[origin].pending)
	a.curMu.Unlock()
	if pending > maxPendingSeqs {
		t.Fatalf("pending set grew to %d, cap is %d", pending, maxPendingSeqs)
	}
	if got := a.cursor(origin); got != 0 {
		t.Fatalf("cursor with seq 1 missing = %d, want 0", got)
	}
}
