package engine

import (
	"sync"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// publishedEvents remembers the values this peer recently published,
// keyed by event ID. The wire service loops every published message back
// to the publisher's own input pipe (and the mesh may echo it), so
// without this cache a peer pays a full gob decode to receive an event
// whose decoded value it already holds — the dominant per-event cost on
// the local delivery path. onWireMessage consults the cache before
// decoding and dispatches the original value instead.
//
// Delivering the published value means local subscribers share it with
// the publisher rather than receiving a serialisation round-trip copy.
// TPS events are immutable by contract once published (callbacks filter
// and read them, §4.2), so sharing is observationally equivalent for
// conforming applications while skipping the decode entirely.
//
// The cache is a fixed-size FIFO ring: entries older than capacity fall
// out, which is far longer than the synchronous loopback they exist to
// serve; a miss just means a regular decode.
type publishedEvents struct {
	mu   sync.Mutex
	byID map[jid.ID]any
	ring []jid.ID // insertion order; evicted slot-for-slot once full
	next int
}

// publishedEventsCap bounds how many in-flight self-published values are
// retained. Loopback consumes an entry within the same Publish call;
// capacity beyond that only covers slow mesh echoes, which the dedupe
// layers drop anyway.
const publishedEventsCap = 128

func newPublishedEvents() *publishedEvents {
	return &publishedEvents{
		byID: make(map[jid.ID]any, publishedEventsCap),
		ring: make([]jid.ID, publishedEventsCap),
	}
}

// put records an outgoing event value, evicting the oldest entry once the
// ring is full.
func (p *publishedEvents) put(id jid.ID, value any) {
	p.mu.Lock()
	if old := p.ring[p.next]; !old.IsZero() {
		delete(p.byID, old)
	}
	p.ring[p.next] = id
	p.next = (p.next + 1) % len(p.ring)
	p.byID[id] = value
	p.mu.Unlock()
}

// get returns the published value for id and releases the entry. The
// engine's dedupe admits each event ID at most once before consulting
// this cache (even with several attached groups looping it back), so a
// hit is the entry's only possible reader; dropping it immediately keeps
// published values from outliving their delivery. The ring keeps the ID
// slot until capacity eviction, but that holds no payload — and events
// that never loop back (no local input pipe) age out the same way.
func (p *publishedEvents) get(id jid.ID) (any, bool) {
	p.mu.Lock()
	v, ok := p.byID[id]
	if ok {
		delete(p.byID, id)
	}
	p.mu.Unlock()
	return v, ok
}
