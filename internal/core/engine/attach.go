package engine

import (
	"fmt"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/core/codec"
	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/peergroup"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/wire"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

// attach.go is the Connections block: it turns a found or created
// advertisement into a live attachment — a joined peer group, a wire
// input pipe with its reader (the paper's TPSPipeReader /
// TPSMyInputPipe) and a wire output pipe (TPSMyOutputPipe).

// TPS message element names, namespace "tps".
const (
	elemNS      = "tps"
	elemEventID = "EventID"
	elemPath    = "Path"
	elemCodec   = "Codec"
	elemData    = "Data"
)

// attachment is one live (type, group) binding.
type attachment struct {
	path    string
	groupID jid.ID
	group   *peergroup.Group
	pipeAdv *adv.PipeAdv
	in      *wire.InputPipe
	out     *wire.OutputPipe

	// Replay cursors: highest log sequence delivered, per origin
	// rendezvous, plus which rendezvous already got a replay request
	// this connection epoch. Both maps are lazily allocated — an
	// attachment on a log-free mesh never touches them.
	curMu     sync.Mutex
	cursors   map[jid.ID]*cursorState
	requested map[jid.ID]bool
}

// attach joins the advertised group, opens the wire pipes and registers
// the attachment. It clears the engine's in-progress marker.
func (e *Engine) attach(pg *adv.PeerGroupAdv) error {
	defer func() {
		e.mu.Lock()
		delete(e.creating, pg.GroupID)
		e.mu.Unlock()
	}()

	path, ok := advPath(pg.Name)
	if !ok {
		return fmt.Errorf("tps: advertisement %q lacks the %q prefix", pg.Name, PSPrefix)
	}
	g, wirePipe, err := e.peer.JoinGroupFromAdv(pg)
	if err != nil {
		return fmt.Errorf("tps: join group for %s: %w", path, err)
	}
	in, err := g.Wire.CreateInputPipe(wirePipe)
	if err != nil {
		// The group may be shared (peer already joined); without our own
		// input pipe the attachment cannot deliver, so fail loudly.
		return fmt.Errorf("tps: input pipe for %s: %w", path, err)
	}
	out, err := g.Wire.CreateOutputPipe(wirePipe)
	if err != nil {
		in.Close()
		return fmt.Errorf("tps: output pipe for %s: %w", path, err)
	}
	a := &attachment{
		path:    path,
		groupID: pg.GroupID,
		group:   g,
		pipeAdv: wirePipe,
		in:      in,
		out:     out,
	}
	in.SetListener(func(m *message.Message) { e.onWireMessage(a, m) })
	if rdv := g.Rendezvous; rdv != nil {
		// Replay gaps surface as exceptions on this attachment's path.
		rdv.SetReplayGapListener(e.onGapSignal(a))
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		a.close(e.peer)
		return ErrClosed
	}
	if _, dup := e.attachments[path][pg.GroupID]; dup {
		e.mu.Unlock()
		a.close(e.peer)
		return nil
	}
	if e.attachments[path] == nil {
		e.attachments[path] = make(map[jid.ID]*attachment)
	}
	e.attachments[path][pg.GroupID] = a
	delete(e.pubSnaps, path) // invalidate the cached publish fan-out snapshot
	e.cond.Broadcast()
	e.mu.Unlock()
	return nil
}

// newEventMessage assembles the four-element TPS event envelope. The
// event ID crosses the wire in binary form (message.AddID), not as a
// parsed-back URN string.
func newEventMessage(e *Engine, eventID jid.ID, path string, payload []byte) *message.Message {
	msg := message.New(e.peer.ID())
	msg.Grow(4)
	msg.AddID(elemNS, elemEventID, eventID)
	msg.AddString(elemNS, elemPath, path)
	msg.AddString(elemNS, elemCodec, e.codec.Name())
	msg.AddBytes(elemNS, elemData, payload)
	return msg
}

// publish sends one pre-built event message on this attachment's output
// pipe. The message may be shared across attachments; the wire service
// Dups it before mutating.
func (a *attachment) publish(msg *message.Message) error {
	return a.out.Send(msg)
}

// ready reports whether the attachment can reach beyond this process:
// its group holds a rendezvous lease, or it was never seeded (loopback
// only).
func (a *attachment) ready() bool {
	rdv := a.group.Rendezvous
	if rdv == nil {
		return false
	}
	if !rdv.Seeded() {
		return true
	}
	return len(rdv.ConnectedRendezvous()) > 0
}

// close tears the attachment down and leaves its group.
func (a *attachment) close(p *peer.Peer) {
	a.in.Close()
	p.LeaveGroup(a.groupID)
}

// onWireMessage is the pipe reader: it deduplicates, decodes and
// dispatches one incoming event.
//
// Decode-once: the payload of any given event is gob-decoded at most
// once on this peer. Deduplication runs before the decode, so an event
// echoed through several groups or mesh paths decodes on first arrival
// only; the decoded value is then shared across every matching
// subscription and interface callback (dispatch fans the same value
// out). Events this peer itself published skip the decode entirely —
// the publisher still holds the original value (publishedEvents) and
// loopback dispatches it as-is.
func (e *Engine) onWireMessage(a *attachment, msg *message.Message) {
	eventID, err := msg.GetID(elemNS, elemEventID)
	if err != nil {
		e.stats.decodeErrors.Add(1)
		return
	}
	// Advance the replay cursor before deduplication: a replayed event
	// that was already delivered live still moves the cursor forward, so
	// the next reconnect asks for less.
	if origin, seq, ok := rendezvous.ReplayInfo(msg); ok {
		a.noteCursor(origin, seq)
	}
	// The same event arrives once per attached group carrying the type;
	// deliver it exactly once (the duplicate handling the paper's
	// SR-JXTA application reimplements by hand).
	if !e.dedupe.Observe(eventID) {
		e.stats.duplicateEvents.Add(1)
		return
	}
	// Traced events carry the publisher's clock: measure network
	// transit and archive the deliver hop. The probe is an alloc-free
	// element scan, so untraced messages pay only that.
	if ev, sentUS, ok := trace.Info(msg); ok {
		e.histTransit.Observe(time.Duration(time.Now().UnixMicro()-sentUS) * time.Microsecond)
		if e.tracer != nil {
			e.tracer.Record(ev, trace.StageDeliver, e.peer.ID(), sentUS, msg.Path)
		}
	}
	path := msg.Text(elemNS, elemPath)
	node, ok := e.reg.NodeByPath(path)
	if !ok {
		// A type outside our registered model: the common-type-model
		// assumption (§6) means we cannot decode it.
		e.stats.decodeErrors.Add(1)
		return
	}
	if value, ok := e.self.get(eventID); ok {
		e.stats.delivered.Add(1)
		dstart := time.Now()
		e.subs.dispatch(e.reg, node, value, msg.Src)
		e.histDispatch.Observe(time.Since(dstart))
		return
	}
	c := e.codec
	if name := msg.Text(elemNS, elemCodec); name != c.Name() {
		if other, err := codec.ByName(name); err == nil {
			c = other
		}
	}
	value, err := c.Decode(msg.Bytes(elemNS, elemData), node.Type())
	if err != nil {
		e.stats.decodeErrors.Add(1)
		e.subs.dispatchError(fmt.Errorf("tps: decode %s: %w", path, err))
		return
	}
	e.stats.delivered.Add(1)
	dstart := time.Now()
	e.subs.dispatch(e.reg, node, value, msg.Src)
	e.histDispatch.Observe(time.Since(dstart))
}
