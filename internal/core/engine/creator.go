package engine

import (
	"fmt"

	"github.com/tps-p2p/tps/internal/core/typereg"
	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/wire"
)

// creator.go is the AdvertisementsCreator block (paper Figure 15): one
// type is represented by one peer-group advertisement that embeds the
// wire service bound to the type's propagated pipe; the pipe's name is
// the name of the type.

// createTypeAdvertisement assembles the advertisement pair for a type:
// a fresh peer group carrying the wire service and its propagated pipe.
func createTypeAdvertisement(peerID jid.ID, node *typereg.Node) (*adv.PeerGroupAdv, *adv.PipeAdv) {
	groupID := jid.NewGroup()
	pipeAdv := &adv.PipeAdv{
		PipeID: jid.NewPipeIn(groupID),
		Type:   adv.PipePropagate,
		Name:   PSPrefix + node.Path(),
	}
	groupAdv := &adv.PeerGroupAdv{
		GroupID:    groupID,
		PeerID:     peerID,
		Name:       PSPrefix + node.Path(),
		Desc:       "TPS event group for type " + node.Path(),
		GroupImpl:  "go-jxta-stdgroup",
		App:        "tps",
		Rendezvous: true,
	}
	groupAdv.SetService(adv.ServiceAdv{
		Name:     wire.ServiceName,
		Version:  "1.0",
		Keywords: pipeAdv.Name,
		Pipe:     pipeAdv,
	})
	return groupAdv, pipeAdv
}

// createAndAttach creates this peer's own advertisement for the type,
// publishes it (locally and into the mesh, the paper's
// publishAdvertisement doing publish + remotePublish) and attaches to
// the new group.
func (e *Engine) createAndAttach(node *typereg.Node) error {
	net := e.peer.NetGroup()
	if net == nil {
		return ErrClosed
	}
	groupAdv, _ := createTypeAdvertisement(e.peer.ID(), node)
	// Claim the group before the advertisement can reach our own finder
	// (it lands in the local discovery cache immediately), or the finder
	// would race us into a second attach.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.creating[groupAdv.GroupID] = true
	e.mu.Unlock()
	if err := net.Discovery.RemotePublish(groupAdv, 0); err != nil {
		// Local publication still worked if only propagation failed; an
		// isolated peer can publish to itself.
		if lerr := net.Discovery.Publish(groupAdv, 0, 0); lerr != nil {
			e.mu.Lock()
			delete(e.creating, groupAdv.GroupID)
			e.mu.Unlock()
			return fmt.Errorf("tps: publish type advertisement: %w", lerr)
		}
	}
	e.stats.advsCreated.Add(1)
	return e.attach(groupAdv)
}
