package engine_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/core/engine"
	"github.com/tps-p2p/tps/internal/core/typereg"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

// The Figure 7 hierarchy: quote events with a common interface root.
type quote interface{ Sym() string }

type stockQuote struct {
	Symbol string
	Price  float64
}

func (q stockQuote) Sym() string { return q.Symbol }

type fxQuote struct {
	Pair string
	Rate float64
}

func (q fxQuote) Sym() string { return q.Pair }

type techQuote struct {
	stockQuote
	PE float64
}

// newRegistry builds the test hierarchy: quote <- {stockQuote, fxQuote},
// stockQuote <- techQuote.
func newRegistry(t *testing.T) (*typereg.Registry, map[string]*typereg.Node) {
	t.Helper()
	r := typereg.New()
	nodes := map[string]*typereg.Node{}
	var err error
	if nodes["quote"], err = r.Register(reflect.TypeOf((*quote)(nil)).Elem(), nil); err != nil {
		t.Fatal(err)
	}
	if nodes["stock"], err = r.Register(reflect.TypeOf(stockQuote{}), nodes["quote"]); err != nil {
		t.Fatal(err)
	}
	if nodes["fx"], err = r.Register(reflect.TypeOf(fxQuote{}), nodes["quote"]); err != nil {
		t.Fatal(err)
	}
	if nodes["tech"], err = r.Register(reflect.TypeOf(techQuote{}), nodes["stock"]); err != nil {
		t.Fatal(err)
	}
	return r, nodes
}

type testRig struct {
	t   *testing.T
	net *netsim.Network
	n   int
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	n := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(n.Close)
	rig := &testRig{t: t, net: n}
	// One rendezvous daemon bridges everything.
	node, err := n.AddNode("rdv")
	if err != nil {
		t.Fatal(err)
	}
	d, err := peer.New(peer.Config{Name: "rdv", Role: rendezvous.RoleRendezvous, LeaseTTL: 2 * time.Second}, memnet.New(node))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.EnableDaemon(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return rig
}

type testEnginePeer struct {
	peer  *peer.Peer
	eng   *engine.Engine
	nodes map[string]*typereg.Node
}

func (r *testRig) addEngine() *testEnginePeer {
	r.t.Helper()
	r.n++
	name := fmt.Sprintf("peer%d", r.n)
	node, err := r.net.AddNode(name)
	if err != nil {
		r.t.Fatal(err)
	}
	p, err := peer.New(peer.Config{
		Name:     name,
		Seeds:    []endpoint.Address{"mem://rdv"},
		LeaseTTL: 2 * time.Second,
	}, memnet.New(node))
	if err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(p.Close)
	if !p.NetGroup().AwaitRendezvous(5 * time.Second) {
		r.t.Fatal("peer never reached the daemon")
	}
	reg, nodes := newRegistry(r.t)
	eng, err := engine.New(engine.Config{
		Peer:         p,
		Registry:     reg,
		FindTimeout:  400 * time.Millisecond,
		FindInterval: 100 * time.Millisecond,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(eng.Close)
	return &testEnginePeer{peer: p, eng: eng, nodes: nodes}
}

// collector gathers delivered events.
type collector struct {
	mu     sync.Mutex
	events []any
	errs   []error
}

func (c *collector) deliver(event any, _ jid.ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, event)
	return nil
}

func (c *collector) onError(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs = append(c.errs, err)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func (c *collector) snapshot() []any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]any(nil), c.events...)
}

func (c *collector) errCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.errs)
}

func waitCount(t *testing.T, c *collector, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: have %d events, want %d", c.count(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPublisherFirstThenSubscriber(t *testing.T) {
	rig := newRig(t)
	pub := rig.addEngine()
	sub := rig.addEngine()

	// Publisher ensures the type exists (creates the advertisement: the
	// paper's initialization phase).
	if err := pub.eng.EnsureType(pub.nodes["stock"]); err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := sub.eng.Subscribe(sub.nodes["stock"], c.deliver, c.onError); err != nil {
		t.Fatal(err)
	}
	if !pub.eng.AwaitReady(pub.nodes["stock"], 1, 5*time.Second) ||
		!sub.eng.AwaitReady(sub.nodes["stock"], 1, 5*time.Second) {
		t.Fatal("attachments never became ready")
	}
	if err := pub.eng.Publish(stockQuote{Symbol: "ACME", Price: 42}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c, 1)
	got, ok := c.snapshot()[0].(stockQuote)
	if !ok || got.Symbol != "ACME" || got.Price != 42 {
		t.Fatalf("got %#v", c.snapshot()[0])
	}
}

func TestSubscriberFirstThenPublisher(t *testing.T) {
	rig := newRig(t)
	sub := rig.addEngine()
	pub := rig.addEngine()

	var c collector
	if _, err := sub.eng.Subscribe(sub.nodes["stock"], c.deliver, c.onError); err != nil {
		t.Fatal(err)
	}
	// The publisher's EnsureType must FIND the subscriber's
	// advertisement instead of creating a second one (minimization).
	if err := pub.eng.EnsureType(pub.nodes["stock"]); err != nil {
		t.Fatal(err)
	}
	if st := pub.eng.Stats(); st.AdvsCreated != 0 {
		t.Fatalf("publisher created %d advs despite existing one", st.AdvsCreated)
	}
	if !pub.eng.AwaitReady(pub.nodes["stock"], 1, 5*time.Second) {
		t.Fatal("publisher attachment not ready")
	}
	if err := pub.eng.Publish(stockQuote{Symbol: "XYZ", Price: 7}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c, 1)
}

func TestSubtypeDeliveryFigure7(t *testing.T) {
	rig := newRig(t)
	pub := rig.addEngine()
	subAll := rig.addEngine()  // subscribes to the interface root
	subTech := rig.addEngine() // subscribes to a leaf

	var cAll, cTech collector
	if _, err := subAll.eng.Subscribe(subAll.nodes["quote"], cAll.deliver, cAll.onError); err != nil {
		t.Fatal(err)
	}
	if _, err := subTech.eng.Subscribe(subTech.nodes["tech"], cTech.deliver, cTech.onError); err != nil {
		t.Fatal(err)
	}
	// Publish one event of each concrete type.
	for _, n := range []string{"stock", "fx", "tech"} {
		if err := pub.eng.EnsureType(pub.nodes[n]); err != nil {
			t.Fatal(err)
		}
	}
	// Everybody must see everybody: the quote subscriber needs all three
	// type attachments ready on the publisher side.
	for _, n := range []string{"stock", "fx", "tech"} {
		if !pub.eng.AwaitReady(pub.nodes[n], 1, 5*time.Second) {
			t.Fatalf("publisher %s attachment not ready", n)
		}
	}
	if !subAll.eng.AwaitReady(subAll.nodes["quote"], 3, 10*time.Second) {
		t.Fatal("root subscriber did not attach to all subtype groups")
	}
	if !subTech.eng.AwaitReady(subTech.nodes["tech"], 1, 5*time.Second) {
		t.Fatal("leaf subscriber not ready")
	}
	// Under load the publisher's find window can expire before it sees a
	// subscriber-created advertisement, leaving duplicate groups for one
	// type. The publishes below are one-shot, so both sides must converge
	// on the full merged group set (attached AND leased) before firing,
	// as TestSimultaneousCreation does for the two-peer case. All
	// advertisement creation is over by now, so the total is stable.
	created := int(pub.eng.Stats().AdvsCreated + subAll.eng.Stats().AdvsCreated + subTech.eng.Stats().AdvsCreated)
	if !pub.eng.AwaitReady(pub.nodes["quote"], created, 15*time.Second) {
		t.Fatal("publisher never became ready on every merged group")
	}
	if !subAll.eng.AwaitReady(subAll.nodes["quote"], created, 15*time.Second) {
		t.Fatal("root subscriber never became ready on every merged group")
	}

	if err := pub.eng.Publish(stockQuote{Symbol: "S", Price: 1}); err != nil {
		t.Fatal(err)
	}
	if err := pub.eng.Publish(fxQuote{Pair: "EURUSD", Rate: 1.1}); err != nil {
		t.Fatal(err)
	}
	if err := pub.eng.Publish(techQuote{stockQuote: stockQuote{Symbol: "T", Price: 2}, PE: 30}); err != nil {
		t.Fatal(err)
	}

	// Root subscriber receives all three (fA,fB,fC,fD semantics)...
	waitCount(t, &cAll, 3)
	kinds := map[string]int{}
	for _, ev := range cAll.snapshot() {
		kinds[fmt.Sprintf("%T", ev)]++
	}
	if len(kinds) != 3 {
		t.Fatalf("root subscriber kinds = %v", kinds)
	}
	// ...the leaf subscriber exactly one (fD only).
	waitCount(t, &cTech, 1)
	time.Sleep(200 * time.Millisecond)
	if cTech.count() != 1 {
		t.Fatalf("leaf subscriber received %d events", cTech.count())
	}
	if _, ok := cTech.snapshot()[0].(techQuote); !ok {
		t.Fatalf("leaf got %T", cTech.snapshot()[0])
	}
}

func TestSimultaneousCreationConvergesWithExactlyOnceDelivery(t *testing.T) {
	rig := newRig(t)
	a := rig.addEngine()
	b := rig.addEngine()

	// Both ensure the same type concurrently: they may race and create
	// two advertisements (two groups) for it.
	var wg sync.WaitGroup
	for _, p := range []*testEnginePeer{a, b} {
		wg.Add(1)
		go func(p *testEnginePeer) {
			defer wg.Done()
			if err := p.eng.EnsureType(p.nodes["stock"]); err != nil {
				t.Errorf("ensure: %v", err)
			}
		}(p)
	}
	wg.Wait()

	var c collector
	if _, err := b.eng.Subscribe(b.nodes["stock"], c.deliver, c.onError); err != nil {
		t.Fatal(err)
	}
	// Let the finders merge the advertisement sets: if two groups were
	// created, both engines eventually attach to both.
	created := a.eng.Stats().AdvsCreated + b.eng.Stats().AdvsCreated
	if created >= 2 {
		if !a.eng.AwaitAttachments(a.nodes["stock"], 2, 10*time.Second) ||
			!b.eng.AwaitAttachments(b.nodes["stock"], 2, 10*time.Second) {
			t.Fatal("engines never merged the duplicate advertisements")
		}
	}
	// The publishes below are one-shot: the publisher must hold a lease
	// on EVERY merged group before firing, and the subscriber on at least
	// one, or early events evaporate before the mesh is reachable.
	if !a.eng.AwaitReady(a.nodes["stock"], int(created), 10*time.Second) {
		t.Fatal("a not ready")
	}
	if !b.eng.AwaitReady(b.nodes["stock"], 1, 10*time.Second) {
		t.Fatal("b not ready")
	}
	const total = 10
	for i := 0; i < total; i++ {
		if err := a.eng.Publish(stockQuote{Symbol: "DUP", Price: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, &c, total)
	// Exactly once despite multi-group publication.
	time.Sleep(300 * time.Millisecond)
	if c.count() != total {
		t.Fatalf("delivered %d, want exactly %d (TPS dedupe failed)", c.count(), total)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	rig := newRig(t)
	pub := rig.addEngine()
	sub := rig.addEngine()
	var c1, c2 collector
	s1, err := sub.eng.Subscribe(sub.nodes["stock"], c1.deliver, c1.onError)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.eng.Subscribe(sub.nodes["stock"], c2.deliver, c2.onError); err != nil {
		t.Fatal(err)
	}
	if sub.eng.SubscriptionCount() != 2 {
		t.Fatalf("subscriptions = %d", sub.eng.SubscriptionCount())
	}
	if err := pub.eng.EnsureType(pub.nodes["stock"]); err != nil {
		t.Fatal(err)
	}
	if !pub.eng.AwaitReady(pub.nodes["stock"], 1, 5*time.Second) {
		t.Fatal("not ready")
	}
	if err := pub.eng.Publish(stockQuote{Symbol: "ONE"}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c1, 1)
	waitCount(t, &c2, 1)

	// Remove one callback: only the other keeps receiving (paper method 4).
	sub.eng.Unsubscribe(s1)
	if err := pub.eng.Publish(stockQuote{Symbol: "TWO"}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c2, 2)
	time.Sleep(100 * time.Millisecond)
	if c1.count() != 1 {
		t.Fatalf("unsubscribed callback still got %d events", c1.count())
	}

	// Remove everything: no event is received anymore (paper method 5).
	sub.eng.UnsubscribeAll()
	if err := pub.eng.Publish(stockQuote{Symbol: "THREE"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if c2.count() != 2 {
		t.Fatalf("callback got %d events after UnsubscribeAll", c2.count())
	}
}

func TestExceptionHandlerReceivesCallbackErrors(t *testing.T) {
	rig := newRig(t)
	pub := rig.addEngine()
	sub := rig.addEngine()
	var c collector
	boom := errors.New("boom")
	if _, err := sub.eng.Subscribe(sub.nodes["stock"], func(any, jid.ID) error { return boom }, c.onError); err != nil {
		t.Fatal(err)
	}
	if err := pub.eng.EnsureType(pub.nodes["stock"]); err != nil {
		t.Fatal(err)
	}
	if !pub.eng.AwaitReady(pub.nodes["stock"], 1, 5*time.Second) {
		t.Fatal("not ready")
	}
	if err := pub.eng.Publish(stockQuote{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.errCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("exception handler never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCallbackPanicIsContained(t *testing.T) {
	rig := newRig(t)
	pub := rig.addEngine()
	sub := rig.addEngine()
	var c collector
	if _, err := sub.eng.Subscribe(sub.nodes["stock"], func(any, jid.ID) error { panic("subscriber bug") }, c.onError); err != nil {
		t.Fatal(err)
	}
	var ok collector
	if _, err := sub.eng.Subscribe(sub.nodes["stock"], ok.deliver, ok.onError); err != nil {
		t.Fatal(err)
	}
	if err := pub.eng.EnsureType(pub.nodes["stock"]); err != nil {
		t.Fatal(err)
	}
	if !pub.eng.AwaitReady(pub.nodes["stock"], 1, 5*time.Second) {
		t.Fatal("not ready")
	}
	if err := pub.eng.Publish(stockQuote{Symbol: "P"}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &ok, 1) // the healthy subscriber still got the event
	deadline := time.Now().Add(5 * time.Second)
	for c.errCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("panic never surfaced to the exception handler")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPublishUnregisteredType(t *testing.T) {
	rig := newRig(t)
	p := rig.addEngine()
	type unregistered struct{ X int }
	if err := p.eng.Publish(unregistered{}); !errors.Is(err, engine.ErrNotRegistered) {
		t.Fatalf("err = %v", err)
	}
}

func TestClosedEngineRefusesWork(t *testing.T) {
	rig := newRig(t)
	p := rig.addEngine()
	p.eng.Close()
	p.eng.Close() // idempotent
	if err := p.eng.Publish(stockQuote{}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("publish after close: %v", err)
	}
	if _, err := p.eng.Subscribe(p.nodes["stock"], func(any, jid.ID) error { return nil }, nil); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("subscribe after close: %v", err)
	}
}

func TestIsolatedPeerLoopback(t *testing.T) {
	// A peer with no rendezvous still works locally: publisher and
	// subscriber in one process (time/space decoupling degenerates to
	// loopback).
	n := netsim.New(netsim.Config{})
	t.Cleanup(n.Close)
	node, err := n.AddNode("solo")
	if err != nil {
		t.Fatal(err)
	}
	p, err := peer.New(peer.Config{Name: "solo"}, memnet.New(node))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	reg, nodes := newRegistry(t)
	eng, err := engine.New(engine.Config{
		Peer: p, Registry: reg,
		FindTimeout:  200 * time.Millisecond,
		FindInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	var c collector
	if _, err := eng.Subscribe(nodes["stock"], c.deliver, c.onError); err != nil {
		t.Fatal(err)
	}
	if err := eng.Publish(stockQuote{Symbol: "SELF", Price: 3}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c, 1)
}

func TestStatsProgression(t *testing.T) {
	rig := newRig(t)
	pub := rig.addEngine()
	sub := rig.addEngine()
	var c collector
	if _, err := sub.eng.Subscribe(sub.nodes["stock"], c.deliver, c.onError); err != nil {
		t.Fatal(err)
	}
	if err := pub.eng.EnsureType(pub.nodes["stock"]); err != nil {
		t.Fatal(err)
	}
	if !pub.eng.AwaitReady(pub.nodes["stock"], 1, 5*time.Second) {
		t.Fatal("not ready")
	}
	for i := 0; i < 5; i++ {
		if err := pub.eng.Publish(stockQuote{Price: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, &c, 5)
	if st := pub.eng.Stats(); st.Published != 5 || st.AttachmentsLive == 0 {
		t.Fatalf("pub stats %+v", st)
	}
	if st := sub.eng.Stats(); st.Delivered != 5 {
		t.Fatalf("sub stats %+v", st)
	}
}
