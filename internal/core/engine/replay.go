package engine

// replay.go is the engine's half of the durable-delivery contract: the
// per-attachment replay cursors (the highest log sequence delivered per
// origin rendezvous, recovered from the rdv:Seq/rdv:LogSrc elements a
// logging rendezvous stamps onto every event) and the background loop
// that presents those cursors to each connected rendezvous on every
// (re)connect. Replayed events come back through the ordinary wire
// delivery path, where the engine's dedupe cache suppresses what was
// already observed — at-least-once redelivery, exactly-once dispatch.

import (
	"fmt"
	"sort"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/obs"
)

// ReplayGapError is dispatched to exception handlers when a rendezvous
// answered a replay request with a gap signal: events between the
// engine's cursor and First were dropped by the log's retention (or the
// log restarted), so they are unrecoverable — an explicit loss report,
// never a silent one.
type ReplayGapError struct {
	// Path is the type path of the attachment whose group gapped.
	Path string
	// Topic is the log topic (the group parameter).
	Topic string
	// First and Last bound what the rendezvous still retains; both zero
	// when it retains nothing.
	First, Last uint64
	// Tentative is set when the signalling replica had not completed a
	// first anti-entropy exchange with its replica set: the range looks
	// lost from where it stands, but a replica it has not synced with
	// yet may still hold it — treat as possible, not proven, loss.
	Tentative bool
}

// Error implements error.
func (e *ReplayGapError) Error() string {
	qual := ""
	if e.Tentative {
		qual = " (tentative: replica not yet synced)"
	}
	return fmt.Sprintf("tps: replay gap on %s: events before seq %d no longer retained (have %d..%d)%s",
		e.Path, e.First, e.First, e.Last, qual)
}

// maxPendingSeqs bounds the out-of-order set per origin. Entries beyond
// the cap are simply not recorded; a later replay refetches them, so
// the bound costs extra redelivery under extreme loss, never data.
const maxPendingSeqs = 4096

// cursorState tracks one origin's delivery progress. The cursor is the
// highest CONTIGUOUS sequence delivered — not the highest seen. On a
// lossy link a replayed suffix arrives with holes; presenting the
// maximum would skip those holes forever, while the contiguous cursor
// makes the next re-request refetch them (dedupe absorbs the rest).
type cursorState struct {
	seq     uint64
	pending map[uint64]bool // delivered above a hole, awaiting refetch
}

// noteCursor records that an event numbered seq by origin's log was
// observed on this attachment. Called for every delivery carrying log
// coordinates — including duplicates, so a replayed suffix advances the
// cursor even when the events themselves were already dispatched.
func (a *attachment) noteCursor(origin jid.ID, seq uint64) {
	a.curMu.Lock()
	defer a.curMu.Unlock()
	if a.cursors == nil {
		a.cursors = make(map[jid.ID]*cursorState, 2)
	}
	st := a.cursors[origin]
	if st == nil {
		st = &cursorState{}
		a.cursors[origin] = st
	}
	switch {
	case seq <= st.seq:
	case seq == st.seq+1:
		st.seq = seq
		for st.pending[st.seq+1] {
			delete(st.pending, st.seq+1)
			st.seq++
		}
	default:
		if st.pending == nil {
			st.pending = make(map[uint64]bool)
		}
		if len(st.pending) < maxPendingSeqs {
			st.pending[seq] = true
		}
	}
}

// jumpCursor advances origin's cursor floor past a replay gap: entries
// up to first-1 are unrecoverable, so waiting for them would stall the
// contiguous cursor forever and re-replay the same suffix every round.
func (a *attachment) jumpCursor(origin jid.ID, first uint64) {
	if first == 0 {
		return
	}
	a.curMu.Lock()
	defer a.curMu.Unlock()
	st := a.cursors[origin]
	if st == nil || st.seq+1 >= first {
		return
	}
	st.seq = first - 1
	for st.pending[st.seq+1] {
		delete(st.pending, st.seq+1)
		st.seq++
	}
}

// cursor returns the attachment's cursor for one origin (tests).
func (a *attachment) cursor(origin jid.ID) uint64 {
	a.curMu.Lock()
	defer a.curMu.Unlock()
	if st := a.cursors[origin]; st != nil {
		return st.seq
	}
	return 0
}

// syncReplay sends replay requests to every rendezvous the attachment's
// group is newly connected to: one request per known log origin — the
// rendezvous's own log (zero cursor on first contact: a late joiner
// asking for the full retained suffix) plus every other origin a cursor
// is held for. The extra origins are what make failover exactly-once
// observable: after re-homing to a standby, the dead primary's cursor
// is presented to the standby, which serves the missing suffix from its
// replicated copy under the primary's own numbering. A rendezvous that
// drops off the connected set is forgotten, so the next reconnect
// re-requests from the then-current cursors: the at-least-once retry
// loop.
func (a *attachment) syncReplay(e *Engine) {
	rdv := a.group.Rendezvous
	if rdv == nil {
		return
	}
	connected := rdv.ConnectedRendezvous()
	a.curMu.Lock()
	defer a.curMu.Unlock()
	if a.requested == nil {
		a.requested = make(map[jid.ID]bool, 2)
	}
	live := make(map[jid.ID]bool, len(connected))
	for _, id := range connected {
		live[id] = true
		if a.requested[id] {
			continue
		}
		sent := false
		request := func(origin jid.ID, after uint64) {
			if err := rdv.RequestReplay(id, a.group.Param(), origin, after); err == nil {
				sent = true
				e.stats.replayRequests.Add(1)
			}
		}
		var selfAfter uint64
		if st := a.cursors[id]; st != nil {
			selfAfter = st.seq
		}
		request(id, selfAfter)
		// Foreign-origin cursors only matter after a failover: the
		// standby serves the dead primary's stream from its replicated
		// copy. In mesh mode (several independent durable rendezvous) a
		// foreign cursor would only trigger the server's full-own-log
		// fallback — entirely redundant with the self-origin request
		// just sent — so fan them out in active/standby mode only.
		if rdv.ActiveStandby() {
			for origin, st := range a.cursors {
				if origin != id {
					request(origin, st.seq)
				}
			}
		}
		if sent {
			a.requested[id] = true
		}
	}
	for id := range a.requested {
		if !live[id] {
			delete(a.requested, id)
		}
	}
}

// replayLoop periodically reconciles replay requests against the
// current rendezvous connections. It only acts while subscriptions
// exist: a pure publisher has nothing to catch up on.
func (e *Engine) replayLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.fint)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.requestReplays()
		case <-e.stop:
			return
		}
	}
}

// requestReplays runs one reconciliation round over all attachments.
func (e *Engine) requestReplays() {
	if e.SubscriptionCount() == 0 {
		return
	}
	e.mu.Lock()
	var atts []*attachment
	for _, m := range e.attachments {
		for _, a := range m {
			atts = append(atts, a)
		}
	}
	e.mu.Unlock()
	for _, a := range atts {
		a.syncReplay(e)
	}
}

// CursorsView lists the engine's replay cursors — the highest log
// sequence delivered per (group, origin rendezvous) — for the admin
// surface.
func (e *Engine) CursorsView() []obs.CursorEntry {
	e.mu.Lock()
	var atts []*attachment
	for _, m := range e.attachments {
		for _, a := range m {
			atts = append(atts, a)
		}
	}
	e.mu.Unlock()
	var out []obs.CursorEntry
	for _, a := range atts {
		a.curMu.Lock()
		for origin, st := range a.cursors {
			out = append(out, obs.CursorEntry{
				Group:  a.groupID.String(),
				Origin: origin.String(),
				Seq:    st.seq,
			})
		}
		a.curMu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].Origin < out[j].Origin
	})
	return out
}

// onGapSignal turns a rendezvous gap signal into a ReplayGapError for
// the attachment's subscribers, and advances the cursor floor so the
// next replay round asks from the retained range instead of re-pulling
// the same suffix forever.
func (e *Engine) onGapSignal(a *attachment) rendezvous.GapListener {
	return func(origin jid.ID, topic string, first, last uint64, tentative bool) {
		a.jumpCursor(origin, first)
		e.subs.dispatchError(&ReplayGapError{Path: a.path, Topic: topic, First: first, Last: last, Tentative: tentative})
	}
}
