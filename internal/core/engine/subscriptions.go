package engine

import (
	"fmt"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/core/typereg"
	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// subscriptions.go is the Interface Repository block (the paper's
// TPSSubscriberManager): it stores callback objects together with their
// exception handlers and starts/stops subscriptions.

// Delivery consumes a decoded event. A non-nil return value is routed to
// the subscription's error handler — the paper's TPSExceptionHandler,
// which handles "the exceptions that may be raised while handling the
// received events".
type Delivery func(event any, from jid.ID) error

// ErrorHandler consumes delivery and decode errors. It must not block.
type ErrorHandler func(err error)

// Subscription is one registered (callback, exception handler) pair.
type Subscription struct {
	node    *typereg.Node
	deliver Delivery
	onError ErrorHandler
	set     *subscriptionSet
}

// Node returns the subscription's root type node.
func (s *Subscription) Node() *typereg.Node { return s.node }

// subscriptionSet is the concurrency-safe repository.
type subscriptionSet struct {
	mu   sync.RWMutex
	subs map[*Subscription]struct{}
}

func newSubscriptionSet() *subscriptionSet {
	return &subscriptionSet{subs: make(map[*Subscription]struct{})}
}

// Subscribe registers a delivery callback rooted at the given type node:
// events of that type and of every subtype (nominal or by interface
// satisfaction) are delivered. onError may be nil.
//
// Subscribing also runs EnsureType on the root so an advertisement for
// it exists — the paper's subscriber performs the same initialization as
// the publisher (§4.1).
func (e *Engine) Subscribe(node *typereg.Node, deliver Delivery, onError ErrorHandler) (*Subscription, error) {
	if deliver == nil {
		return nil, ErrNilDelivery
	}
	if node == nil {
		return nil, ErrNotRegistered
	}
	// Track every registered type in the closure so the finder also
	// hunts for subtype advertisements published elsewhere.
	for _, n := range e.reg.Closure(node) {
		e.trackPath(n)
	}
	if err := e.EnsureType(node); err != nil {
		return nil, err
	}
	sub := &Subscription{node: node, deliver: deliver, onError: onError, set: e.subs}
	e.subs.add(sub)
	return sub, nil
}

// Unsubscribe removes one subscription. Removing the last subscription
// stops deliveries entirely (attachments stay warm for resubscription).
func (e *Engine) Unsubscribe(sub *Subscription) {
	if sub != nil && sub.set != nil {
		sub.set.remove(sub)
	}
}

// UnsubscribeAll removes every subscription registered on the engine —
// the paper's unsubscribe() variant (5): "after this call, no event is
// received anymore".
func (e *Engine) UnsubscribeAll() {
	e.subs.clear()
}

// SubscriptionCount returns the number of live subscriptions.
func (e *Engine) SubscriptionCount() int {
	e.subs.mu.RLock()
	defer e.subs.mu.RUnlock()
	return len(e.subs.subs)
}

func (s *subscriptionSet) add(sub *Subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs[sub] = struct{}{}
}

func (s *subscriptionSet) remove(sub *Subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, sub)
}

func (s *subscriptionSet) clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = make(map[*Subscription]struct{})
}

// dispatch delivers an event to every subscription whose root type the
// event's dynamic type is assignable to (Figure 7 semantics). Callback
// panics are converted to exception-handler calls so one bad subscriber
// cannot kill the reader.
func (s *subscriptionSet) dispatch(reg *typereg.Registry, node *typereg.Node, event any, from jid.ID) {
	dyn := typereg.TypeOf(event)
	s.mu.RLock()
	targets := make([]*Subscription, 0, len(s.subs))
	for sub := range s.subs {
		if reg.Assignable(sub.node, dyn) {
			targets = append(targets, sub)
		}
	}
	s.mu.RUnlock()
	for _, sub := range targets {
		s.deliverOne(sub, event, from)
	}
}

func (s *subscriptionSet) deliverOne(sub *Subscription, event any, from jid.ID) {
	defer func() {
		if r := recover(); r != nil && sub.onError != nil {
			sub.onError(fmt.Errorf("tps: callback panic: %v", r))
		}
	}()
	if err := sub.deliver(event, from); err != nil && sub.onError != nil {
		sub.onError(err)
	}
}

// dispatchError fans a decode error to every subscription's exception
// handler.
func (s *subscriptionSet) dispatchError(err error) {
	s.mu.RLock()
	targets := make([]*Subscription, 0, len(s.subs))
	for sub := range s.subs {
		if sub.onError != nil {
			targets = append(targets, sub)
		}
	}
	s.mu.RUnlock()
	for _, sub := range targets {
		sub.onError(err)
	}
}

// AwaitReady blocks until at least n attachments covering the node's
// subtree are live AND connected to a rendezvous (or unseeded), or the
// timeout elapses. Publishers use it before measuring throughput.
func (e *Engine) AwaitReady(node *typereg.Node, n int, timeout time.Duration) bool {
	e.trackPath(node)
	deadline := time.Now().Add(timeout)
	for {
		if e.readyCount(node) >= n {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		e.kickFinder()
		time.Sleep(10 * time.Millisecond)
	}
}

func (e *Engine) readyCount(node *typereg.Node) int {
	e.mu.Lock()
	var atts []*attachment
	for path, m := range e.attachments {
		if typereg.CoversPath(node.Path(), path) {
			for _, a := range m {
				atts = append(atts, a)
			}
		}
	}
	e.mu.Unlock()
	count := 0
	for _, a := range atts {
		if a.ready() {
			count++
		}
	}
	return count
}
