package chaos_test

// failover_test.go is the executable form of ROBUSTNESS.md's
// "Replication" section: a replica set of rendezvous anti-entropy-syncs
// the durable event log, and active/standby clients fail over to a
// standby when the failure detector declares the active dead. The
// scenarios pin the acceptance criteria down: killing the primary
// mid-stream loses and duplicates nothing, logs converge byte-for-byte
// after a partition heals, a lagging replica serves a stale suffix
// silently (no false gap), and only losing every replica of a range
// surfaces a replay gap.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/chaos"
	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous/replica"
)

// awaitCopyTail polls a replica's log until its copy of origin's topic
// retains sequence want — anti-entropy is asynchronous, so scenarios
// that depend on replicated state must wait for it explicitly.
func awaitCopyTail(t *testing.T, p *chaos.Peer, origin jid.ID, want uint64) {
	t.Helper()
	key := replica.TopicKey(origin, chaos.GroupParam)
	waitFor(t, 15*time.Second, fmt.Sprintf("copy of %s tail %d on %s", origin, want, p.Name), func() bool {
		_, last, ok := p.Log.Range(key)
		return ok && last >= want
	})
}

// awaitFailover waits until the peer both counted a failover and holds
// a live lease again. AwaitConnected alone is not enough: right after a
// kill the old lease has not expired yet, so "connected" can still mean
// "leased at the corpse".
func awaitFailover(t *testing.T, p *chaos.Peer) {
	t.Helper()
	waitFor(t, 30*time.Second, fmt.Sprintf("%s fails over", p.Name), func() bool {
		return p.Rdv.Snapshot().Counters["failovers"] >= 1 && p.Rdv.AwaitConnected(0)
	})
}

// topicDir finds the on-disk directory for a topic under one peer's log
// root by reading the TOPIC marker files — directory names are
// sanitized+hashed, so tests resolve them by content.
func topicDir(t *testing.T, root, topic string) string {
	t.Helper()
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("read log root %s: %v", root, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(root, e.Name(), "TOPIC"))
		if err == nil && string(b) == topic {
			return filepath.Join(root, e.Name())
		}
	}
	t.Fatalf("no directory for topic %q under %s", topic, root)
	return ""
}

// assertSegmentsIdentical compares the two directories' segment files
// byte for byte: same file names, same contents. This is the strongest
// convergence statement the replication protocol makes — a copy is the
// origin's frames under the origin's numbering and timestamps, so the
// files must be indistinguishable.
func assertSegmentsIdentical(t *testing.T, dirA, dirB string) {
	t.Helper()
	segsA, err := filepath.Glob(filepath.Join(dirA, "*.seg"))
	if err != nil || len(segsA) == 0 {
		t.Fatalf("no segments in %s: %v", dirA, err)
	}
	segsB, err := filepath.Glob(filepath.Join(dirB, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segsA) != len(segsB) {
		t.Fatalf("segment counts differ: %d in %s, %d in %s", len(segsA), dirA, len(segsB), dirB)
	}
	for i := range segsA {
		if filepath.Base(segsA[i]) != filepath.Base(segsB[i]) {
			t.Fatalf("segment names diverge: %s vs %s", segsA[i], segsB[i])
		}
		a, err := os.ReadFile(segsA[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(segsB[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("segment %s differs between replicas (%d vs %d bytes)",
				filepath.Base(segsA[i]), len(a), len(b))
		}
	}
}

// TestFailoverKillPrimaryMidStream runs the headline scenario: a
// 2-replica set, a publisher and subscriber in active/standby mode,
// the primary killed mid-stream. After the failure detector rotates
// both clients to the standby, the stream continues and a replay of the
// dead primary's stream from the standby's copy fills whatever the
// subscriber missed — exactly-once observable end to end.
func TestFailoverKillPrimaryMidStream(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 31, LogDir: t.TempDir(), SyncInterval: 200 * time.Millisecond})
	add := adder(t)
	defer c.Close()

	rdvA := add(c.AddReplicaRendezvous("rdvA", []string{"rdvB"}))
	rdvB := add(c.AddReplicaRendezvous("rdvB", []string{"rdvA"}))
	pub := add(c.AddFailoverEdge("pub", "rdvA", "rdvB"))
	sub := add(c.AddFailoverEdge("sub", "rdvA", "rdvB"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConnected(10*time.Second, "pub", "sub"); err != nil {
		t.Fatal(err)
	}

	// First half of the stream through the primary. Wait only for the
	// log and its replica copy — NOT for the sink — so the kill lands
	// mid-stream from the subscriber's point of view whenever delivery
	// lags replication.
	const batch = 10
	for i := 0; i < batch; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	awaitLogTail(t, rdvA, batch)
	awaitCopyTail(t, rdvB, rdvA.EP.PeerID(), batch)

	c.Kill("rdvA")
	awaitFailover(t, pub)
	awaitFailover(t, sub)

	// The stream continues through the standby (now origin rdvB)...
	for i := batch; i < 2*batch; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatalf("publish after failover %d: %v", i, err)
		}
	}
	// ...and the dead primary's suffix is replayed from the standby's
	// copy, from wherever the subscriber's cursor got to.
	cur := cursorFor(sink, rdvA.EP.PeerID())
	if err := sub.Rdv.RequestReplay(rdvB.EP.PeerID(), chaos.GroupParam, rdvA.EP.PeerID(), cur); err != nil {
		t.Fatal(err)
	}
	if !sink.WaitCount(2*batch, 20*time.Second) {
		t.Fatalf("delivered %d/%d across the failover", sink.Count(), 2*batch)
	}
	c.Net.WaitQuiesce(5 * time.Second)
	distinctBodies(t, sink, 2*batch)
	if cur := cursorFor(sink, rdvA.EP.PeerID()); cur != batch {
		t.Fatalf("origin-A cursor = %d, want %d", cur, batch)
	}
	if cur := cursorFor(sink, rdvB.EP.PeerID()); cur != batch {
		t.Fatalf("origin-B cursor = %d, want %d", cur, batch)
	}
}

// TestAntiEntropyConvergesAfterPartition partitions the two replicas
// apart, streams into both sides, heals, and requires the replica
// copies to converge to the byte-identical segment files of each
// origin — the acceptance criterion for the sync protocol.
func TestAntiEntropyConvergesAfterPartition(t *testing.T) {
	dir := t.TempDir()
	c := chaos.New(chaos.Config{Seed: 32, LogDir: dir, SyncInterval: 200 * time.Millisecond})
	add := adder(t)
	defer c.Close()

	rdvA := add(c.AddReplicaRendezvous("rdvA", []string{"rdvB"}))
	rdvB := add(c.AddReplicaRendezvous("rdvB", []string{"rdvA"}))
	pubA := add(c.AddEdge("pubA", "rdvA"))
	pubB := add(c.AddEdge("pubB", "rdvB"))
	if err := c.AwaitConnected(10*time.Second, "pubA", "pubB"); err != nil {
		t.Fatal(err)
	}

	// Pre-partition traffic so both replicas carry copies already.
	const pre = 3
	for i := 0; i < pre; i++ {
		if err := pubA.Publish(svc, fmt.Sprintf("a-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := pubB.Publish(svc, fmt.Sprintf("b-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	awaitCopyTail(t, rdvB, rdvA.EP.PeerID(), pre)
	awaitCopyTail(t, rdvA, rdvB.EP.PeerID(), pre)

	// Partition the replicas apart; both sides keep accepting events the
	// other cannot see. The replicas are linked ONLY by anti-entropy, so
	// healing proves the protocol converges, not mesh propagation.
	c.Partition([]string{"rdvA", "pubA"}, []string{"rdvB", "pubB"})
	const total = 15
	for i := pre; i < total; i++ {
		if err := pubA.Publish(svc, fmt.Sprintf("a-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := pubB.Publish(svc, fmt.Sprintf("b-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	awaitLogTail(t, rdvA, total)
	awaitLogTail(t, rdvB, total)
	if _, last, _ := rdvB.Log.Range(replica.TopicKey(rdvA.EP.PeerID(), chaos.GroupParam)); last >= total {
		t.Fatalf("copies crossed the partition: rdvB holds A@%d", last)
	}

	c.Heal()
	awaitCopyTail(t, rdvB, rdvA.EP.PeerID(), total)
	awaitCopyTail(t, rdvA, rdvB.EP.PeerID(), total)

	// Byte-identical convergence, both directions.
	assertSegmentsIdentical(t,
		topicDir(t, filepath.Join(dir, "rdvA"), chaos.GroupParam),
		topicDir(t, filepath.Join(dir, "rdvB"), replica.TopicKey(rdvA.EP.PeerID(), chaos.GroupParam)))
	assertSegmentsIdentical(t,
		topicDir(t, filepath.Join(dir, "rdvB"), chaos.GroupParam),
		topicDir(t, filepath.Join(dir, "rdvA"), replica.TopicKey(rdvB.EP.PeerID(), chaos.GroupParam)))
}

// TestLaggingReplicaResetsPastRetentionGap partitions a replica away
// long enough for the origin's retention to trim past the replica's
// copied tail. After the heal, waiting for the trimmed bridge records
// would re-pull the same batch every sync round forever; instead the
// replica must detect the origin-side gap from the stamped retained
// head, reset its copy, restart at the head, and still converge to
// byte-identical segments — with the reset counted, not silent.
func TestLaggingReplicaResetsPastRetentionGap(t *testing.T) {
	dir := t.TempDir()
	c := chaos.New(chaos.Config{
		Seed:         35,
		LogDir:       dir,
		SyncInterval: 200 * time.Millisecond,
		LogRetention: eventlog.Retention{SegmentBytes: 512, MaxBytes: 2048},
	})
	add := adder(t)
	defer c.Close()

	rdvA := add(c.AddReplicaRendezvous("rdvA", []string{"rdvB"}))
	rdvB := add(c.AddReplicaRendezvous("rdvB", []string{"rdvA"}))
	pubA := add(c.AddEdge("pubA", "rdvA"))
	if err := c.AwaitConnected(10*time.Second, "pubA"); err != nil {
		t.Fatal(err)
	}

	// Seed the copy, then cut the replicas apart and stream enough into
	// the origin that retention drops everything the copy holds.
	const pre = 3
	for i := 0; i < pre; i++ {
		if err := pubA.Publish(svc, fmt.Sprintf("a-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	awaitCopyTail(t, rdvB, rdvA.EP.PeerID(), pre)
	c.Partition([]string{"rdvA", "pubA"}, []string{"rdvB"})
	const total = 40
	for i := pre; i < total; i++ {
		if err := pubA.Publish(svc, fmt.Sprintf("a-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	awaitLogTail(t, rdvA, total)
	first, last, ok := rdvA.Log.Range(chaos.GroupParam)
	if !ok || first <= pre+1 {
		t.Fatalf("origin retention never trimmed past the copy: range %d..%d ok=%v", first, last, ok)
	}

	c.Heal()
	awaitCopyTail(t, rdvB, rdvA.EP.PeerID(), last)
	if n := rdvB.Rdv.Snapshot().Counters["sync_resets"]; n < 1 {
		t.Fatalf("sync_resets = %d, want >= 1 (the gap must be counted)", n)
	}
	key := replica.TopicKey(rdvA.EP.PeerID(), chaos.GroupParam)
	if bFirst, bLast, ok := rdvB.Log.Range(key); !ok || bFirst != first || bLast != last {
		t.Fatalf("copy range after reset = %d..%d ok=%v, want origin's %d..%d", bFirst, bLast, ok, first, last)
	}
	assertSegmentsIdentical(t,
		topicDir(t, filepath.Join(dir, "rdvA"), chaos.GroupParam),
		topicDir(t, filepath.Join(dir, "rdvB"), key))
}

// TestSyncRejectsNonReplicaPeer points a rogue replica at peers that do
// not list it in their replica sets: a replicating rendezvous and a
// plain durable one with replication off. Its digests must be dropped
// (counted, not stored) on both — otherwise any peer could plant forged
// history under a foreign origin's key, to be served to failover
// clients as authoritative — while the configured set keeps syncing.
func TestSyncRejectsNonReplicaPeer(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 36, LogDir: t.TempDir(), SyncInterval: 150 * time.Millisecond})
	add := adder(t)
	defer c.Close()

	rdvA := add(c.AddReplicaRendezvous("rdvA", []string{"rdvB"}))
	rdvB := add(c.AddReplicaRendezvous("rdvB", []string{"rdvA"}))
	rdvC := add(c.AddRendezvous("rdvC")) // durable, replication off
	rogue := add(c.AddReplicaRendezvous("rogue", []string{"rdvA", "rdvC"}))
	pubR := add(c.AddEdge("pubR", "rogue"))
	pubA := add(c.AddEdge("pubA", "rdvA"))
	if err := c.AwaitConnected(10*time.Second, "pubR", "pubA"); err != nil {
		t.Fatal(err)
	}

	const n = 5
	for i := 0; i < n; i++ {
		if err := pubR.Publish(svc, fmt.Sprintf("r-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := pubA.Publish(svc, fmt.Sprintf("a-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	awaitLogTail(t, rogue, n)
	awaitLogTail(t, rdvA, n)

	// The configured set replicates; the rogue's digests bounce off both
	// targets.
	awaitCopyTail(t, rdvB, rdvA.EP.PeerID(), n)
	waitFor(t, 15*time.Second, "rdvA rejects rogue sync ops", func() bool {
		return rdvA.Rdv.Snapshot().Counters["sync_rejects"] >= 1
	})
	waitFor(t, 15*time.Second, "rdvC rejects rogue sync ops", func() bool {
		return rdvC.Rdv.Snapshot().Counters["sync_rejects"] >= 1
	})
	rogueKey := replica.TopicKey(rogue.EP.PeerID(), chaos.GroupParam)
	if _, _, ok := rdvA.Log.Range(rogueKey); ok {
		t.Fatal("replicating rendezvous stored a copy of the rogue's stream")
	}
	if _, _, ok := rdvC.Log.Range(rogueKey); ok {
		t.Fatal("replication-off rendezvous stored a copy of the rogue's stream")
	}
	if n := rdvA.Rdv.Snapshot().Counters["sync_applied"]; n != 0 {
		t.Fatalf("rdvA applied %d sync records; only rdvB pulls in this topology", n)
	}
}

// TestLaggingReplicaServesStaleSuffix replays against a replica whose
// copy ends before the subscriber's cursor. The cursor proves those
// entries were already delivered, so the replica must serve nothing and
// signal nothing — a lagging standby is stale, not evidence of loss.
func TestLaggingReplicaServesStaleSuffix(t *testing.T) {
	// Sync effectively off: the lag is constructed directly so the
	// scenario cannot race the anti-entropy ticker.
	c := chaos.New(chaos.Config{Seed: 33, LogDir: t.TempDir(), SyncInterval: time.Hour})
	add := adder(t)
	defer c.Close()

	rdvA := add(c.AddReplicaRendezvous("rdvA", []string{"rdvB"}))
	rdvB := add(c.AddReplicaRendezvous("rdvB", []string{"rdvA"}))
	pub := add(c.AddEdge("pub", "rdvA"))
	sub := add(c.AddEdge("sub", "rdvA", "rdvB"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	gapCh := make(chan jid.ID, 1)
	sub.Rdv.SetReplayGapListener(func(origin jid.ID, _ string, _, _ uint64, _ bool) {
		select {
		case gapCh <- origin:
		default:
		}
	})
	if err := c.AwaitConnected(10*time.Second, "pub", "sub"); err != nil {
		t.Fatal(err)
	}

	const n = 10
	for i := 0; i < n; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.WaitCount(n, 10*time.Second) {
		t.Fatalf("live delivery got %d/%d", sink.Count(), n)
	}
	if cur := cursorFor(sink, rdvA.EP.PeerID()); cur != n {
		t.Fatalf("cursor = %d, want %d", cur, n)
	}

	// rdvB's copy of A lags at half the stream (appended directly; the
	// payload bytes never travel, only the range matters here).
	key := replica.TopicKey(rdvA.EP.PeerID(), chaos.GroupParam)
	for seq := uint64(1); seq <= n/2; seq++ {
		if err := rdvB.Log.AppendExact(key, seq, time.Now().UnixMilli(), []byte("stale")); err != nil {
			t.Fatal(err)
		}
	}

	// Cursor n against a copy ending at n/2: serve nothing, no gap.
	if err := sub.Rdv.RequestReplay(rdvB.EP.PeerID(), chaos.GroupParam, rdvA.EP.PeerID(), n); err != nil {
		t.Fatal(err)
	}
	c.Net.WaitQuiesce(5 * time.Second)
	select {
	case origin := <-gapCh:
		t.Fatalf("lagging replica signalled a gap for origin %s", origin)
	default:
	}
	distinctBodies(t, sink, n)
}

// TestDoubleKillSurfacesReplayGap loses every copy of a range: the
// primary dies before anti-entropy ever ran, so the standby holds
// nothing of the dead origin. Replaying the origin there must produce
// an explicit unbounded gap for that origin — the signal the engine
// turns into ReplayGapError — because silence would be indistinguishable
// from "nothing to replay".
func TestDoubleKillSurfacesReplayGap(t *testing.T) {
	// Sync off: the standby must genuinely hold nothing of the primary.
	c := chaos.New(chaos.Config{Seed: 34, LogDir: t.TempDir(), SyncInterval: time.Hour})
	add := adder(t)
	defer c.Close()

	rdvA := add(c.AddReplicaRendezvous("rdvA", []string{"rdvB"}))
	rdvB := add(c.AddReplicaRendezvous("rdvB", []string{"rdvA"}))
	pub := add(c.AddFailoverEdge("pub", "rdvA", "rdvB"))
	sub := add(c.AddFailoverEdge("sub", "rdvA", "rdvB"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	type gap struct {
		origin      jid.ID
		first, last uint64
		tentative   bool
	}
	gapCh := make(chan gap, 1)
	sub.Rdv.SetReplayGapListener(func(origin jid.ID, _ string, first, last uint64, tentative bool) {
		select {
		case gapCh <- gap{origin, first, last, tentative}:
		default:
		}
	})
	if err := c.AwaitConnected(10*time.Second, "pub", "sub"); err != nil {
		t.Fatal(err)
	}

	const n = 8
	for i := 0; i < n; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.WaitCount(n, 10*time.Second) {
		t.Fatalf("live delivery got %d/%d", sink.Count(), n)
	}

	c.Kill("rdvA")
	awaitFailover(t, sub)

	// The subscriber resumes origin A at the standby — which retained
	// nothing of A. The range is gone from every replica; that is the
	// one case that must surface as a gap.
	if err := sub.Rdv.RequestReplay(rdvB.EP.PeerID(), chaos.GroupParam, rdvA.EP.PeerID(), n); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-gapCh:
		if g.origin != rdvA.EP.PeerID() {
			t.Fatalf("gap origin = %s, want the dead primary %s", g.origin, rdvA.EP.PeerID())
		}
		if g.first != 0 || g.last != 0 {
			t.Fatalf("gap bounds %d..%d, want 0..0 (nothing retained)", g.first, g.last)
		}
		// The standby never completed a digest exchange (sync is off),
		// so its loss verdict must be flagged provisional.
		if !g.tentative {
			t.Fatal("gap from a never-synced replica not marked tentative")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no gap signal after losing every replica of the range")
	}
	distinctBodies(t, sink, n)
}
