package chaos_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/chaos"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/netsim"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

const svc = "chaos-app"

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// adder returns a helper that unwraps (peer, error) pairs from the
// cluster's Add methods, failing the test on error.
func adder(t *testing.T) func(*chaos.Peer, error) *chaos.Peer {
	return func(p *chaos.Peer, err error) *chaos.Peer {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

// TestPartitionHealRecovery cuts the rendezvous mesh in half, watches the
// surviving side account for the failures (send errors, suspicion), then
// heals the partition and requires delivery to resume without outside
// intervention.
func TestPartitionHealRecovery(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 42})
	add := adder(t)
	defer c.Close()

	rdvA := add(c.AddRendezvous("rdv-a"))
	add(c.AddRendezvous("rdv-b", "rdv-a"))
	pub := add(c.AddEdge("pub", "rdv-a"))
	sub := add(c.AddEdge("sub", "rdv-b"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConnected(10*time.Second, "rdv-b", "pub", "sub"); err != nil {
		t.Fatal(err)
	}

	// Baseline: the full path pub → rdv-a → rdv-b → sub works.
	if err := pub.Publish(svc, "baseline"); err != nil {
		t.Fatal(err)
	}
	if !sink.WaitCount(1, 10*time.Second) {
		t.Fatal("baseline message never delivered")
	}

	c.Partition([]string{"rdv-a", "pub"}, []string{"rdv-b", "sub"})

	// Publishing into the partition must fail loudly at the mesh link:
	// rdv-a's sends to rdv-b error, feeding the failure detector.
	for i := 0; i < 4; i++ {
		_ = pub.Publish(svc, fmt.Sprintf("lost-%d", i))
	}
	waitFor(t, 10*time.Second, "rdv-a to suspect rdv-b", func() bool {
		st := rdvA.Rdv.Stats()
		return st.SendFailures >= 2 && st.Suspected >= 1
	})
	if n := sink.Count(); n != 1 {
		t.Fatalf("messages crossed the partition: sink has %d", n)
	}

	c.Heal()

	// rdv-b's seed loop re-leases into rdv-a (its reconnect is also the
	// proof of life that clears any eviction ban rdv-a accumulated), and
	// new publications flow again.
	deadline := time.Now().Add(15 * time.Second)
	for sink.Count() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("delivery never recovered after heal: stats=%+v", rdvA.Rdv.Stats())
		}
		_ = pub.Publish(svc, "post-heal")
		time.Sleep(100 * time.Millisecond)
	}
}

// TestLossyLinkDegradesProportionally runs one subscriber behind a 30%%
// lossy link and one behind a clean link. The lossy subscriber must lose
// roughly the link's share of traffic — and nothing else: no send errors,
// no suspicion, no eviction. Loss is degradation, not failure.
func TestLossyLinkDegradesProportionally(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 7})
	add := adder(t)
	defer c.Close()

	rdv := add(c.AddRendezvous("rdv"))
	pub := add(c.AddEdge("pub", "rdv"))
	good := add(c.AddEdge("good", "rdv"))
	lossy := add(c.AddEdge("lossy", "rdv"))
	goodSink, err := good.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	lossySink, err := lossy.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConnected(10*time.Second, "pub", "good", "lossy"); err != nil {
		t.Fatal(err)
	}
	// Install the loss only after the lease handshake so setup is
	// deterministic; from here on, 30% of rdv→lossy traffic vanishes.
	c.Net.SetLink("rdv", "lossy", netsim.Link{Latency: time.Millisecond, Loss: 0.3})

	const n = 300
	for i := 0; i < n; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if !goodSink.WaitCount(n, 20*time.Second) {
		t.Fatalf("clean subscriber got %d/%d", goodSink.Count(), n)
	}
	c.Net.WaitQuiesce(10 * time.Second)

	got := lossySink.Count()
	// 30% loss over 300 sends: expect ~210 through. The bounds are wide
	// (±8σ) because lease-renewal traffic also consumes draws from the
	// seeded RNG, but a catastrophic (near-zero) or spurious (lossless)
	// outcome must fail.
	if got < 140 || got > 290 {
		t.Fatalf("lossy subscriber got %d/%d, want roughly 70%%", got, n)
	}
	st := rdv.Rdv.Stats()
	if st.SendFailures != 0 || st.Suspected != 0 || st.Evicted != 0 {
		t.Fatalf("silent loss must not trip the failure detector: %+v", st)
	}
}

// TestDeadPeerEvictedBehindBreaker kills a mesh rendezvous outright. The
// survivor must evict it after sustained failures, stop redialing while
// the breaker is open (skips counted, not dials), and reconnect on its
// own once the peer comes back after the cooldown.
func TestDeadPeerEvictedBehindBreaker(t *testing.T) {
	c := chaos.New(chaos.Config{
		Seed:          3,
		LeaseTTL:      time.Second,
		SuspectAfter:  2,
		EvictAfter:    4,
		EvictCooldown: 2 * time.Second,
	})
	add := adder(t)
	defer c.Close()

	add(c.AddRendezvous("rdv-b"))
	rdvA := add(c.AddRendezvous("rdv-a", "rdv-b"))
	pub := add(c.AddEdge("pub", "rdv-a"))
	if err := c.AwaitConnected(10*time.Second, "rdv-a", "pub"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "mesh lease rdv-a → rdv-b", func() bool {
		return len(rdvA.Rdv.ConnectedRendezvous()) == 1
	})

	c.Kill("rdv-b")

	// Drive fan-outs at the dead peer until the failure detector evicts
	// it. Each publish costs one failed send; the suspect probe adds one
	// more, so a handful of publishes crosses EvictAfter.
	deadline := time.Now().Add(10 * time.Second)
	for rdvA.Rdv.Stats().Evicted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dead peer never evicted: %+v", rdvA.Rdv.Stats())
		}
		_ = pub.Publish(svc, "into the void")
		time.Sleep(50 * time.Millisecond)
	}
	if n := len(rdvA.Rdv.ConnectedRendezvous()); n != 0 {
		t.Fatalf("evicted peer still in connection table (%d entries)", n)
	}

	// While the breaker is open the seed loop must skip, not redial.
	waitFor(t, 10*time.Second, "breaker to skip seed redials", func() bool {
		return rdvA.Rdv.Stats().BreakerSkips >= 1
	})

	// The peer restarts (same name, and — as for any restarted peer —
	// the same identity). After the cooldown
	// rdv-a's seed loop may dial again and the mesh must re-form without
	// manual help.
	add(c.AddRendezvous("rdv-b"))
	waitFor(t, 15*time.Second, "mesh to re-form after breaker cooldown", func() bool {
		return len(rdvA.Rdv.ConnectedRendezvous()) == 1
	})
}

// TestSlowConsumerDoesNotStallMesh floods a subscriber that needs 25ms of
// processing per message alongside a fast one. The publisher and the fast
// subscriber must be completely unaffected by the slow peer's backlog,
// and the slow peer must still receive everything — late, not lost.
func TestSlowConsumerDoesNotStallMesh(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 11, LeaseTTL: 5 * time.Second})
	add := adder(t)
	defer c.Close()

	add(c.AddRendezvous("rdv"))
	pub := add(c.AddEdge("pub", "rdv"))
	fast := add(c.AddEdge("fast", "rdv"))
	slow, err := c.AddSlowEdge("slow", 25*time.Millisecond, "rdv")
	if err != nil {
		t.Fatal(err)
	}
	fastSink, err := fast.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	slowSink, err := slow.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConnected(10*time.Second, "pub", "fast", "slow"); err != nil {
		t.Fatal(err)
	}

	// 150 messages × 25ms pins the slow node down for ≥3.75s.
	const n = 150
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	publishTook := time.Since(start)
	if publishTook > 2*time.Second {
		t.Fatalf("publishing blocked behind the slow consumer: %v for %d messages", publishTook, n)
	}
	if !fastSink.WaitCount(n, 3*time.Second) {
		t.Fatalf("fast subscriber stalled behind the slow one: %d/%d", fastSink.Count(), n)
	}
	if lag := slowSink.Count(); lag >= n {
		t.Fatalf("slow consumer was not actually slow (%d/%d already delivered)", lag, n)
	}
	// Slow means late, not lossy: the backlog drains completely.
	if !slowSink.WaitCount(n, 30*time.Second) {
		t.Fatalf("slow subscriber lost messages: %d/%d", slowSink.Count(), n)
	}
}

// TestPropagateReportsPartitionToPublisher checks the error contract at
// the API surface: with peers connected but all of them unreachable,
// Propagate must return ErrAllSendsFailed — not ErrNoPeers, and not nil.
func TestPropagateReportsPartitionToPublisher(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 5})
	add := adder(t)
	defer c.Close()

	add(c.AddRendezvous("rdv"))
	pub := add(c.AddEdge("pub", "rdv"))
	if err := c.AwaitConnected(10*time.Second, "pub"); err != nil {
		t.Fatal(err)
	}

	// Cut the publisher's only uplink. Its rendezvous table still lists
	// rdv until the lease expires, so the very next publish attempts the
	// send and must surface the total failure.
	c.Partition([]string{"pub"}, []string{"rdv"})
	err := pub.Publish(svc, "unreachable")
	if !errors.Is(err, rendezvous.ErrAllSendsFailed) {
		t.Fatalf("err = %v, want ErrAllSendsFailed", err)
	}

	c.Heal()
	// After healing, the same call recovers without restarting anything.
	waitFor(t, 10*time.Second, "publish to succeed after heal", func() bool {
		return pub.Publish(svc, "reachable again") == nil
	})
}

// TestTraceSurvivesLossyLink publishes traced events through a
// rendezvous into a subscriber behind a 30% lossy link, then assembles
// each event's hop trace from the per-peer stores. The set of events
// with a deliver hop at the subscriber must match exactly the frames
// the sink actually received — tracing may neither invent deliveries
// (a hop for a dropped frame) nor lose them (a delivered frame without
// its hop) — and every delivered event's trace must read
// publish→forward→deliver across the three peers.
func TestTraceSurvivesLossyLink(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 11})
	add := adder(t)
	defer c.Close()

	rdv := add(c.AddRendezvous("rdv"))
	pub := add(c.AddEdge("pub", "rdv"))
	sub := add(c.AddEdge("sub", "rdv"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConnected(10*time.Second, "pub", "sub"); err != nil {
		t.Fatal(err)
	}
	c.Net.SetLink("rdv", "sub", netsim.Link{Latency: time.Millisecond, Loss: 0.3})

	const n = 150
	byBody := make(map[string]jid.ID, n)
	for i := 0; i < n; i++ {
		body := fmt.Sprintf("t-%d", i)
		id, err := pub.PublishTraced(svc, body)
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		byBody[body] = id
	}
	c.Net.WaitQuiesce(10 * time.Second)

	delivered := make(map[string]bool, n)
	for _, b := range sink.Bodies() {
		delivered[b] = true
	}
	if len(delivered) == 0 || len(delivered) == n {
		t.Fatalf("lossy link delivered %d/%d; the test needs both outcomes", len(delivered), n)
	}

	for body, id := range byBody {
		ev := id.String()
		var hops []trace.Hop
		for _, p := range []*chaos.Peer{pub, rdv, sub} {
			hops = append(hops, p.Trace.Hops(ev)...)
		}
		tr := trace.Assemble(ev, hops)

		stages := make(map[string]int)
		for _, h := range tr.Hops {
			stages[h.Stage]++
		}
		if stages[trace.StagePublish] != 1 {
			t.Fatalf("%s: want exactly one publish hop, got %d", body, stages[trace.StagePublish])
		}
		if delivered[body] {
			if stages[trace.StageForward] == 0 || stages[trace.StageDeliver] == 0 {
				t.Fatalf("%s delivered but trace lacks hops: %+v", body, tr.Hops)
			}
			if tr.Hops[0].Stage != trace.StagePublish {
				t.Fatalf("%s: trace must start at publish: %+v", body, tr.Hops)
			}
			last := tr.Hops[len(tr.Hops)-1]
			if last.Stage != trace.StageDeliver || last.Peer != sub.EP.PeerID().String() {
				t.Fatalf("%s: trace must end with the subscriber's deliver hop: %+v", body, tr.Hops)
			}
		} else if stages[trace.StageDeliver] != 0 {
			t.Fatalf("%s was dropped by the link but has a deliver hop: %+v", body, tr.Hops)
		}
	}
}
