package chaos_test

// durability_test.go is the executable form of ROBUSTNESS.md's
// "Durability" section: with an event log on the rendezvous, a
// subscriber that was offline at publish time — a late joiner, a
// partitioned peer, or a peer whose rendezvous crashed and restarted —
// recovers the missed events by presenting its cursor, and never
// observes a corrupt or duplicate event while doing so.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/chaos"
	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/netsim"
)

// cursorFor computes the replay cursor a subscriber would present to
// origin: the highest CONTIGUOUS log sequence across the sink's
// messages. Contiguity matters — a lossy link punches holes into a
// replayed suffix, and a cursor past a hole would skip it forever.
func cursorFor(s *chaos.Sink, origin jid.ID) uint64 {
	seqs := map[uint64]bool{}
	for _, m := range s.Msgs() {
		if o, seq, ok := rendezvous.ReplayInfo(m); ok && o == origin {
			seqs[seq] = true
		}
	}
	var cur uint64
	for seqs[cur+1] {
		cur++
	}
	return cur
}

// awaitLogTail polls a rendezvous's log until topic "chaos" retains
// sequence want — publishing is asynchronous, appending happens on the
// rendezvous's receive path.
func awaitLogTail(t *testing.T, p *chaos.Peer, want uint64) {
	t.Helper()
	waitFor(t, 10*time.Second, fmt.Sprintf("log tail %d on %s", want, p.Name), func() bool {
		_, last, ok := p.Log.Range(chaos.GroupParam)
		return ok && last >= want
	})
}

// distinctBodies asserts the sink saw each want-body exactly once —
// replay must compose with the seen caches into exactly-once delivery.
func distinctBodies(t *testing.T, s *chaos.Sink, want int) {
	t.Helper()
	counts := map[string]int{}
	for _, b := range s.Bodies() {
		counts[b]++
	}
	if len(counts) != want {
		t.Fatalf("got %d distinct bodies, want %d", len(counts), want)
	}
	for b, n := range counts {
		if n != 1 {
			t.Fatalf("body %q delivered %d times, want exactly once", b, n)
		}
	}
}

// TestLateJoinerCatchesUp publishes with no subscriber attached at all,
// then brings one up: the retained suffix must arrive via replay, and a
// duplicate replay request must not double-deliver anything.
func TestLateJoinerCatchesUp(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 21, LogDir: t.TempDir()})
	add := adder(t)
	defer c.Close()

	rdv := add(c.AddRendezvous("rdv"))
	pub := add(c.AddEdge("pub", "rdv"))
	if err := c.AwaitConnected(10*time.Second, "pub"); err != nil {
		t.Fatal(err)
	}

	const n = 20
	for i := 0; i < n; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("early-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	awaitLogTail(t, rdv, n)

	// The subscriber joins only now — every event predates it.
	sub := add(c.AddEdge("sub", "rdv"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConnected(10*time.Second, "sub"); err != nil {
		t.Fatal(err)
	}
	if err := sub.Rdv.RequestReplay(rdv.EP.PeerID(), chaos.GroupParam, jid.Nil, 0); err != nil {
		t.Fatal(err)
	}
	if !sink.WaitCount(n, 10*time.Second) {
		t.Fatalf("late joiner caught up %d/%d", sink.Count(), n)
	}

	// A second (redundant) request redelivers at the wire; the seen
	// cache must absorb every duplicate.
	if err := sub.Rdv.RequestReplay(rdv.EP.PeerID(), chaos.GroupParam, jid.Nil, 0); err != nil {
		t.Fatal(err)
	}
	c.Net.WaitQuiesce(5 * time.Second)
	distinctBodies(t, sink, n)
	if cur := cursorFor(sink, rdv.EP.PeerID()); cur != n {
		t.Fatalf("cursor after catch-up = %d, want %d", cur, n)
	}
}

// TestReconnectResumesFromCursor partitions a subscriber away, publishes
// through the outage, heals, and replays from the subscriber's cursor:
// only the missed suffix is redelivered and nothing is lost.
func TestReconnectResumesFromCursor(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 22, LogDir: t.TempDir()})
	add := adder(t)
	defer c.Close()

	rdv := add(c.AddRendezvous("rdv"))
	pub := add(c.AddEdge("pub", "rdv"))
	sub := add(c.AddEdge("sub", "rdv"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConnected(10*time.Second, "pub", "sub"); err != nil {
		t.Fatal(err)
	}

	const live = 5
	for i := 0; i < live; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("live-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if !sink.WaitCount(live, 10*time.Second) {
		t.Fatalf("live delivery got %d/%d", sink.Count(), live)
	}
	cursor := cursorFor(sink, rdv.EP.PeerID())
	if cursor != live {
		t.Fatalf("cursor after live phase = %d, want %d", cursor, live)
	}

	c.Partition([]string{"rdv", "pub"}, []string{"sub"})
	const missed = 7
	for i := 0; i < missed; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("missed-%d", i)); err != nil {
			t.Fatalf("publish during outage %d: %v", i, err)
		}
	}
	if n := sink.Count(); n != live {
		t.Fatalf("messages crossed the partition: %d", n)
	}

	c.Heal()
	if err := c.AwaitConnected(15*time.Second, "sub"); err != nil {
		t.Fatal(err)
	}
	if err := sub.Rdv.RequestReplay(rdv.EP.PeerID(), chaos.GroupParam, jid.Nil, cursor); err != nil {
		t.Fatal(err)
	}
	if !sink.WaitCount(live+missed, 10*time.Second) {
		t.Fatalf("resume delivered %d/%d", sink.Count(), live+missed)
	}
	distinctBodies(t, sink, live+missed)
}

// TestRendezvousRestartRecoversLog kills the logging rendezvous
// mid-stream and brings it back under the same name: the recovered log
// must resume the old numbering, and a full replay must return both the
// pre-crash and post-crash events.
func TestRendezvousRestartRecoversLog(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 23, LogDir: t.TempDir()})
	add := adder(t)
	defer c.Close()

	rdv := add(c.AddRendezvous("rdv"))
	pub := add(c.AddEdge("pub", "rdv"))
	if err := c.AwaitConnected(10*time.Second, "pub"); err != nil {
		t.Fatal(err)
	}
	const before = 8
	for i := 0; i < before; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("pre-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	awaitLogTail(t, rdv, before)

	c.Kill("rdv")
	rdv2 := add(c.AddRendezvous("rdv"))
	if first, last, ok := rdv2.Log.Range(chaos.GroupParam); !ok || first != 1 || last != before {
		t.Fatalf("recovered log retains %d..%d (ok=%v), want 1..%d", first, last, ok, before)
	}

	// The publisher's lease loop reconnects on its own; post-crash
	// publishes must extend the recovered numbering, not restart it.
	if err := c.AwaitConnected(20*time.Second, "pub"); err != nil {
		t.Fatal(err)
	}
	const after = 4
	for i := 0; i < after; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("post-%d", i)); err != nil {
			t.Fatalf("publish after restart %d: %v", i, err)
		}
	}
	// The recovered numbering extends 8 → 12; a log that restarted from
	// scratch would re-number from 1 and fail this wait.
	awaitLogTail(t, rdv2, before+after)

	sub := add(c.AddEdge("sub", "rdv"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConnected(10*time.Second, "sub"); err != nil {
		t.Fatal(err)
	}
	if err := sub.Rdv.RequestReplay(rdv2.EP.PeerID(), chaos.GroupParam, jid.Nil, 0); err != nil {
		t.Fatal(err)
	}
	if !sink.WaitCount(before+after, 10*time.Second) {
		t.Fatalf("replay across restart delivered %d/%d", sink.Count(), before+after)
	}
	distinctBodies(t, sink, before+after)
}

// TestTornTailRecoveryServesIntactPrefix simulates a crash mid-append:
// after killing the rendezvous, garbage is written onto its active
// segment. The restarted peer must truncate the torn tail and serve
// every intact entry — and never deliver the corrupt one.
func TestTornTailRecoveryServesIntactPrefix(t *testing.T) {
	dir := t.TempDir()
	c := chaos.New(chaos.Config{Seed: 24, LogDir: dir})
	add := adder(t)
	defer c.Close()

	rdv := add(c.AddRendezvous("rdv"))
	pub := add(c.AddEdge("pub", "rdv"))
	if err := c.AwaitConnected(10*time.Second, "pub"); err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("keep-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	awaitLogTail(t, rdv, n)
	c.Kill("rdv")

	// The torn write: a record header that claims more payload than the
	// file holds, exactly what a crash mid-append leaves behind.
	segs, err := filepath.Glob(filepath.Join(dir, "rdv", "*", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xE7, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	rdv2 := add(c.AddRendezvous("rdv"))
	if _, last, ok := rdv2.Log.Range(chaos.GroupParam); !ok || last != n {
		t.Fatalf("recovered log retains up to %d, want %d (torn tail not truncated?)", last, n)
	}
	sub := add(c.AddEdge("sub", "rdv"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConnected(10*time.Second, "sub"); err != nil {
		t.Fatal(err)
	}
	if err := sub.Rdv.RequestReplay(rdv2.EP.PeerID(), chaos.GroupParam, jid.Nil, 0); err != nil {
		t.Fatal(err)
	}
	if !sink.WaitCount(n, 10*time.Second) {
		t.Fatalf("replay after torn tail delivered %d/%d", sink.Count(), n)
	}
	c.Net.WaitQuiesce(5 * time.Second)
	distinctBodies(t, sink, n)
	for _, b := range sink.Bodies() {
		if len(b) < 5 || b[:5] != "keep-" {
			t.Fatalf("corrupt body delivered: %q", b)
		}
	}
}

// TestReplayConvergesOverLossyLink drops 30% of rendezvous→subscriber
// traffic and drives the at-least-once loop: re-requesting from the
// current cursor until the sink converges on the full set. Loss slows
// replay down; it must not lose anything.
func TestReplayConvergesOverLossyLink(t *testing.T) {
	c := chaos.New(chaos.Config{Seed: 25, LogDir: t.TempDir()})
	add := adder(t)
	defer c.Close()

	rdv := add(c.AddRendezvous("rdv"))
	pub := add(c.AddEdge("pub", "rdv"))
	if err := c.AwaitConnected(10*time.Second, "pub"); err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	awaitLogTail(t, rdv, n)

	sub := add(c.AddEdge("sub", "rdv"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConnected(10*time.Second, "sub"); err != nil {
		t.Fatal(err)
	}
	c.Net.SetLink("rdv", "sub", netsim.Link{Latency: time.Millisecond, Loss: 0.3})

	// The retry loop an engine runs automatically, spelled out: ask,
	// wait, ask again from wherever the cursor got to.
	deadline := time.Now().Add(30 * time.Second)
	for sink.Count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("replay never converged over lossy link: %d/%d", sink.Count(), n)
		}
		cur := cursorFor(sink, rdv.EP.PeerID())
		if err := sub.Rdv.RequestReplay(rdv.EP.PeerID(), chaos.GroupParam, jid.Nil, cur); err != nil {
			t.Fatal(err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	distinctBodies(t, sink, n)
}

// TestCursorBehindRetentionSignalsGap shrinks retention until early
// entries are deleted, then replays from an ancient cursor: the
// subscriber must get an explicit gap signal bounding what survives,
// plus the retained suffix — silence is not an option.
func TestCursorBehindRetentionSignalsGap(t *testing.T) {
	c := chaos.New(chaos.Config{
		Seed:   26,
		LogDir: t.TempDir(),
		// Tiny segments and a low cap force retention to drop the head.
		LogRetention: eventlog.Retention{SegmentBytes: 512, MaxBytes: 1536},
	})
	add := adder(t)
	defer c.Close()

	rdv := add(c.AddRendezvous("rdv"))
	pub := add(c.AddEdge("pub", "rdv"))
	if err := c.AwaitConnected(10*time.Second, "pub"); err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := pub.Publish(svc, fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	awaitLogTail(t, rdv, n)
	first, last, ok := rdv.Log.Range(chaos.GroupParam)
	if !ok || first <= 1 {
		t.Fatalf("retention never dropped the head: range %d..%d ok=%v", first, last, ok)
	}

	sub := add(c.AddEdge("sub", "rdv"))
	sink, err := sub.Subscribe(svc)
	if err != nil {
		t.Fatal(err)
	}
	gapCh := make(chan [2]uint64, 1)
	sub.Rdv.SetReplayGapListener(func(_ jid.ID, topic string, gFirst, gLast uint64, _ bool) {
		select {
		case gapCh <- [2]uint64{gFirst, gLast}:
		default:
		}
	})
	if err := c.AwaitConnected(10*time.Second, "sub"); err != nil {
		t.Fatal(err)
	}
	// Cursor 1: everything from 2 up to first-1 is gone for good.
	if err := sub.Rdv.RequestReplay(rdv.EP.PeerID(), chaos.GroupParam, jid.Nil, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-gapCh:
		if g[0] != first || g[1] != last {
			t.Fatalf("gap signal bounds %d..%d, want %d..%d", g[0], g[1], first, last)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no gap signal for a cursor behind retention")
	}
	// The retained suffix still arrives after the gap.
	want := int(last - first + 1)
	if !sink.WaitCount(want, 10*time.Second) {
		t.Fatalf("retained suffix delivered %d/%d after gap", sink.Count(), want)
	}
}
