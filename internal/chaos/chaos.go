// Package chaos is a fault-injection harness for the rendezvous mesh.
//
// It assembles clusters of rendezvous and edge peers over netsim — whose
// loss, jitter, bandwidth and partition knobs make wide-area failure
// modes reproducible inside one process — and exposes the handful of
// operations scenario tests need: build a topology, subscribe sinks,
// publish, kill nodes, partition and heal. All randomness comes from the
// cluster's seed, so a failing scenario replays deterministically.
//
// The scenario suite (chaos_test.go) is the executable form of the
// failure model documented in ROBUSTNESS.md: partitions heal, slow
// consumers stall only themselves, lossy links degrade delivery
// proportionally, and dead peers are evicted behind a breaker.
package chaos

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

// GroupParam scopes every chaos cluster to one peer group.
const GroupParam = "chaos"

// Config tunes a cluster. Zero fields take the defaults below.
type Config struct {
	// Seed feeds netsim's deterministic randomness (loss, jitter).
	Seed int64
	// Link is the default link between all node pairs.
	Link netsim.Link
	// LeaseTTL for every rendezvous service (default 1500ms — fast
	// enough that renewal/backoff behaviour shows inside a test).
	LeaseTTL time.Duration
	// SuspectAfter / EvictAfter / EvictCooldown configure failure
	// detection on every peer (defaults 2 / 4 / 1500ms).
	SuspectAfter  int
	EvictAfter    int
	EvictCooldown time.Duration
	// LogDir, when non-empty, gives every rendezvous peer a durable
	// event log at LogDir/<name>, so killing and re-adding a rendezvous
	// under the same name exercises crash recovery against its old
	// segments.
	LogDir string
	// LogRetention bounds those logs (zero fields take the defaults).
	LogRetention eventlog.Retention
	// SyncInterval is the anti-entropy digest cadence for replica-set
	// rendezvous (AddReplicaRendezvous). Scenario tests run it at a few
	// hundred milliseconds so convergence shows within a test timeout;
	// zero takes the rendezvous default (5s).
	SyncInterval time.Duration
}

// Defaults for zero Config fields.
const (
	DefaultLeaseTTL      = 1500 * time.Millisecond
	DefaultSuspectAfter  = 2
	DefaultEvictAfter    = 4
	DefaultEvictCooldown = 1500 * time.Millisecond
)

// Cluster is a simulated mesh of peers.
type Cluster struct {
	Net *netsim.Network
	cfg Config

	mu       sync.Mutex
	peers    map[string]*Peer
	idSeeds  map[string]uint64
	nextSeed uint64
}

// Peer bundles one node's netsim, endpoint and rendezvous layers.
type Peer struct {
	Name  string
	Node  *netsim.Node
	EP    *endpoint.Service
	Rdv   *rendezvous.Service
	Log   *eventlog.Log
	Trace *trace.Store
}

// New creates a cluster.
func New(cfg Config) *Cluster {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.EvictAfter <= 0 {
		cfg.EvictAfter = DefaultEvictAfter
	}
	if cfg.EvictCooldown <= 0 {
		cfg.EvictCooldown = DefaultEvictCooldown
	}
	if cfg.Link == (netsim.Link{}) {
		cfg.Link = netsim.Link{Latency: time.Millisecond}
	}
	return &Cluster{
		Net:     netsim.New(netsim.Config{Seed: cfg.Seed, DefaultLink: cfg.Link}),
		cfg:     cfg,
		peers:   make(map[string]*Peer),
		idSeeds: make(map[string]uint64),
	}
}

// AddRendezvous adds a rendezvous peer, optionally seeded with other
// peers (by node name).
func (c *Cluster) AddRendezvous(name string, seeds ...string) (*Peer, error) {
	return c.add(name, rendezvous.RoleRendezvous, seeds, nil, nodeExtra{})
}

// AddReplicaRendezvous adds a rendezvous peer that anti-entropy-syncs
// its event log against the named replica-set members. Requires a
// cluster LogDir: replication is of the durable log. The replicas are
// deliberately NOT mesh-seeded with each other — the sync protocol is
// the only channel between them, so a scenario that converges proves
// the protocol converged, not that propagation leaked across.
func (c *Cluster) AddReplicaRendezvous(name string, replicas []string, seeds ...string) (*Peer, error) {
	if c.cfg.LogDir == "" {
		return nil, fmt.Errorf("chaos: AddReplicaRendezvous(%s) needs Config.LogDir (replication syncs the durable log)", name)
	}
	return c.add(name, rendezvous.RoleRendezvous, seeds, nil, nodeExtra{replicas: replicas})
}

// AddEdge adds an edge peer leasing into the given seeds (by node name).
func (c *Cluster) AddEdge(name string, seeds ...string) (*Peer, error) {
	return c.add(name, rendezvous.RoleEdge, seeds, nil, nodeExtra{})
}

// AddFailoverEdge adds an edge peer in active/standby seed mode: it
// leases into one seed at a time and rotates to a standby only after
// the failure detector declares the active dead.
func (c *Cluster) AddFailoverEdge(name string, seeds ...string) (*Peer, error) {
	return c.add(name, rendezvous.RoleEdge, seeds, nil, nodeExtra{failover: true})
}

// AddSlowEdge adds an edge peer whose node needs perMsg processing time
// for every delivery — a slow consumer that saturates under flood.
func (c *Cluster) AddSlowEdge(name string, perMsg time.Duration, seeds ...string) (*Peer, error) {
	return c.add(name, rendezvous.RoleEdge, seeds, []netsim.NodeOption{netsim.WithProcessing(perMsg, 0)}, nodeExtra{})
}

// nodeExtra carries the per-node knobs that only some Add helpers set.
type nodeExtra struct {
	replicas []string
	failover bool
}

func (c *Cluster) add(name string, role rendezvous.Role, seeds []string, opts []netsim.NodeOption, extra nodeExtra) (*Peer, error) {
	node, err := c.Net.AddNode(name, opts...)
	if err != nil {
		return nil, err
	}
	// A peer re-added under a killed peer's name keeps that peer's ID,
	// matching real restart semantics (identity survives the crash).
	c.mu.Lock()
	idSeed, known := c.idSeeds[name]
	if !known {
		c.nextSeed++
		idSeed = c.nextSeed
		c.idSeeds[name] = idSeed
	}
	c.mu.Unlock()
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, idSeed))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		node.Close()
		return nil, err
	}
	var elog *eventlog.Log
	if role == rendezvous.RoleRendezvous && c.cfg.LogDir != "" {
		elog, err = eventlog.Open(eventlog.Config{
			Dir:       filepath.Join(c.cfg.LogDir, name),
			Retention: c.cfg.LogRetention,
		})
		if err != nil {
			_ = ep.Close()
			node.Close()
			return nil, err
		}
	}
	addrs := make([]endpoint.Address, len(seeds))
	for i, s := range seeds {
		addrs[i] = endpoint.MakeAddress("mem", s)
	}
	replicaAddrs := make([]endpoint.Address, len(extra.replicas))
	for i, r := range extra.replicas {
		replicaAddrs[i] = endpoint.MakeAddress("mem", r)
	}
	tracer := trace.NewStore(0)
	rdv, err := rendezvous.New(ep, rendezvous.Config{
		Role:          role,
		GroupParam:    GroupParam,
		Seeds:         addrs,
		LeaseTTL:      c.cfg.LeaseTTL,
		SuspectAfter:  c.cfg.SuspectAfter,
		EvictAfter:    c.cfg.EvictAfter,
		EvictCooldown: c.cfg.EvictCooldown,
		Log:           elog,
		Tracer:        tracer,
		ReplicaSeeds:  replicaAddrs,
		SyncInterval:  c.cfg.SyncInterval,
		ActiveStandby: extra.failover,
	})
	if err != nil {
		if elog != nil {
			_ = elog.Close()
		}
		_ = ep.Close()
		node.Close()
		return nil, err
	}
	p := &Peer{Name: name, Node: node, EP: ep, Rdv: rdv, Log: elog, Trace: tracer}
	c.mu.Lock()
	c.peers[name] = p
	c.mu.Unlock()
	return p, nil
}

// Peer returns a peer by name.
func (c *Cluster) Peer(name string) (*Peer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[name]
	return p, ok
}

// Kill abruptly closes a peer's network node, as a crashed process
// would: no disconnect message, no lease teardown. The peer's services
// are left running but unreachable; the rest of the mesh must detect the
// failure on its own.
func (c *Cluster) Kill(name string) {
	c.mu.Lock()
	p := c.peers[name]
	delete(c.peers, name)
	c.mu.Unlock()
	if p != nil {
		// Node first: with the node gone, the services' shutdown traffic
		// (lease disconnects) never reaches the network, exactly as a
		// crash would behave. Closing the services afterwards just stops
		// their goroutines.
		p.Node.Close()
		p.Rdv.Close()
		_ = p.EP.Close()
		// Release the log's file handles so a re-added peer of the same
		// name can recover the directory. Entries were written straight
		// through; anything half-appended is the torn tail recovery eats.
		if p.Log != nil {
			_ = p.Log.Close()
		}
	}
}

// Partition cuts every link crossing between the groups; Heal restores
// everything.
func (c *Cluster) Partition(groups ...[]string) { c.Net.Partition(groups...) }

// Heal clears all partitions.
func (c *Cluster) Heal() { c.Net.Heal() }

// AwaitConnected waits for every named peer to hold a rendezvous lease.
func (c *Cluster) AwaitConnected(timeout time.Duration, names ...string) error {
	for _, name := range names {
		p, ok := c.Peer(name)
		if !ok {
			return fmt.Errorf("chaos: unknown peer %q", name)
		}
		if !p.Rdv.AwaitConnected(timeout) {
			return fmt.Errorf("chaos: %s never connected", name)
		}
	}
	return nil
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	c.mu.Lock()
	peers := make([]*Peer, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	c.peers = map[string]*Peer{}
	c.mu.Unlock()
	for _, p := range peers {
		p.Rdv.Close()
		_ = p.EP.Close()
		if p.Log != nil {
			_ = p.Log.Close()
		}
	}
	c.Net.Close()
}

// Publish propagates a small payload message to svc across the mesh.
func (p *Peer) Publish(svc, body string) error {
	m := message.New(p.EP.PeerID())
	m.AddString("app", "body", body)
	return p.Rdv.Propagate(m, svc, GroupParam)
}

// PublishTraced propagates a payload like Publish, but stamps the
// message with a hop-trace element (the message ID doubles as the event
// ID) and records the publish hop locally — what the engine does for
// sampled events, distilled for scenario tests. The returned ID keys
// the hop records on every peer the message crosses.
func (p *Peer) PublishTraced(svc, body string) (jid.ID, error) {
	m := message.New(p.EP.PeerID())
	m.AddString("app", "body", body)
	sentUS := time.Now().UnixMicro()
	trace.Stamp(m, m.ID, sentUS)
	if p.Trace != nil {
		p.Trace.Record(m.ID, trace.StagePublish, p.EP.PeerID(), sentUS, nil)
	}
	return m.ID, p.Rdv.Propagate(m, svc, GroupParam)
}

// Sink collects messages delivered to one peer's service handler.
type Sink struct {
	mu   sync.Mutex
	msgs []*message.Message
}

// Subscribe registers a sink for propagated messages addressed to svc.
// Messages carrying a hop-trace element get a deliver hop recorded in
// the peer's trace store, mirroring the engine's receive side.
func (p *Peer) Subscribe(svc string) (*Sink, error) {
	s := &Sink{}
	err := p.EP.RegisterHandler(svc, GroupParam, func(msg *message.Message, _ endpoint.Address) {
		if ev, sentUS, ok := trace.Info(msg); ok && p.Trace != nil {
			p.Trace.Record(ev, trace.StageDeliver, p.EP.PeerID(), sentUS, msg.Path)
		}
		s.mu.Lock()
		s.msgs = append(s.msgs, msg)
		s.mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Count returns how many messages arrived.
func (s *Sink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

// Msgs returns the received messages in arrival order.
func (s *Sink) Msgs() []*message.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*message.Message(nil), s.msgs...)
}

// Bodies returns the "app"/"body" text of every received message.
func (s *Sink) Bodies() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.msgs))
	for _, m := range s.msgs {
		out = append(out, m.Text("app", "body"))
	}
	return out
}

// WaitCount polls until at least n messages arrived or the timeout
// elapses; it reports success.
func (s *Sink) WaitCount(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for s.Count() < n {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return true
}
