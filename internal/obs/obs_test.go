package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCollectMergesProvidersByName(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("wire", func() Snapshot {
		return Snapshot{Name: "wire", Version: 1,
			Counters: map[string]int64{"sent": 3},
			Gauges:   map[string]float64{"input_pipes": 1}}
	})
	r.RegisterFunc("wire", func() Snapshot {
		return Snapshot{Name: "wire", Version: 1,
			Counters: map[string]int64{"sent": 4, "received": 2},
			Gauges:   map[string]float64{"input_pipes": 2}}
	})
	r.RegisterFunc("engine", func() Snapshot {
		return Snapshot{Name: "engine", Version: 1, Counters: map[string]int64{"published": 9}}
	})

	v := r.Collect()
	if v.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", v.Schema, SchemaVersion)
	}
	if len(v.Subsystems) != 2 {
		t.Fatalf("subsystems = %d, want 2", len(v.Subsystems))
	}
	// Sorted by name: engine before wire.
	if v.Subsystems[0].Name != "engine" || v.Subsystems[1].Name != "wire" {
		t.Fatalf("order = %s,%s", v.Subsystems[0].Name, v.Subsystems[1].Name)
	}
	if got := v.Counter("wire", "sent"); got != 7 {
		t.Fatalf("wire.sent = %d, want 7", got)
	}
	w, _ := v.Subsystem("wire")
	if w.Gauges["input_pipes"] != 3 {
		t.Fatalf("wire.input_pipes = %v, want 3", w.Gauges["input_pipes"])
	}
}

func TestCollectDerivesRates(t *testing.T) {
	now := time.Unix(1000, 0)
	r := NewRegistry()
	r.SetClock(func() time.Time { return now })
	var sent atomic.Int64
	sent.Store(10)
	r.RegisterFunc("wire", func() Snapshot {
		return Snapshot{Name: "wire", Version: 1, Counters: map[string]int64{"sent": sent.Load()}}
	})

	first := r.Collect()
	if first.IntervalMS != 0 || len(first.Rates) != 0 {
		t.Fatalf("first collect should have no interval/rates, got %v / %v", first.IntervalMS, first.Rates)
	}
	sent.Store(30)
	now = now.Add(2 * time.Second)
	second := r.Collect()
	if second.IntervalMS != 2000 {
		t.Fatalf("interval = %dms, want 2000", second.IntervalMS)
	}
	if got := second.Rates["wire.sent"]; got != 10 {
		t.Fatalf("wire.sent rate = %v, want 10/s", got)
	}
}

func TestUnregisterRemovesProvider(t *testing.T) {
	r := NewRegistry()
	remove := r.RegisterFunc("engine", func() Snapshot {
		return Snapshot{Name: "engine", Version: 1, Counters: map[string]int64{"published": 1}}
	})
	if n := len(r.Collect().Subsystems); n != 1 {
		t.Fatalf("subsystems = %d, want 1", n)
	}
	remove()
	remove() // idempotent
	if n := len(r.Collect().Subsystems); n != 0 {
		t.Fatalf("subsystems after remove = %d, want 0", n)
	}
}

func TestViewJSONShape(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("seen", func() Snapshot {
		return Snapshot{Name: "seen", Version: 1,
			Counters: map[string]int64{"observed": 5},
			Gauges:   map[string]float64{"entries": 2}}
	})
	buf, err := json.Marshal(r.Collect())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema     int   `json:"schema"`
		TakenAtMS  int64 `json:"taken_at_ms"`
		Subsystems []struct {
			Name     string             `json:"name"`
			Version  int                `json:"version"`
			Counters map[string]int64   `json:"counters"`
			Gauges   map[string]float64 `json:"gauges"`
		} `json:"subsystems"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SchemaVersion || doc.TakenAtMS == 0 {
		t.Fatalf("bad envelope: %+v", doc)
	}
	if len(doc.Subsystems) != 1 || doc.Subsystems[0].Counters["observed"] != 5 {
		t.Fatalf("bad subsystems: %+v", doc.Subsystems)
	}
}

// TestCollectConcurrent exercises Collect and Register/unregister under
// the race detector while providers read a hot counter.
func TestCollectConcurrent(t *testing.T) {
	r := NewRegistry()
	var hot atomic.Int64
	snap := func() Snapshot {
		return Snapshot{Name: "engine", Version: 1, Counters: map[string]int64{"published": hot.Load()}}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				hot.Add(1)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				remove := r.RegisterFunc("engine", snap)
				r.Collect()
				remove()
			}
		}()
	}
	for i := 0; i < 500; i++ {
		r.Collect()
	}
	close(stop)
	wg.Wait()
}
