package trace

import (
	"sort"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// Defaults for Store bounds.
const (
	// DefaultMaxEvents bounds how many distinct traced events a peer
	// retains; the oldest event is evicted FIFO when the bound is hit.
	DefaultMaxEvents = 256
	// maxHopsPerEvent caps hop records for a single event so a
	// propagation loop cannot grow an entry without bound.
	maxHopsPerEvent = 64
)

// Hop is one recorded touch of a traced event at one peer. AtUS and
// SentUS are unix microseconds on the recording and publishing peer's
// clocks respectively — cross-peer ordering is therefore subject to
// clock skew, which Assemble tolerates by also ordering on stage.
type Hop struct {
	EventID string   `json:"event_id"`
	Peer    string   `json:"peer"`
	Stage   string   `json:"stage"`
	AtUS    int64    `json:"at_us"`
	SentUS  int64    `json:"sent_us,omitempty"`
	Path    []string `json:"path,omitempty"`
}

type entry struct {
	hops []Hop
}

// Store is a bounded, peer-local archive of hop records for sampled
// events. All methods are safe for concurrent use. Recording is only
// ever invoked for sampled events, so it may allocate; the unsampled
// hot path never reaches it.
type Store struct {
	mu     sync.Mutex
	max    int
	events map[jid.ID]*entry
	order  []jid.ID // insertion order for FIFO eviction
	now    func() time.Time
}

// NewStore returns a store retaining up to maxEvents traced events
// (DefaultMaxEvents when maxEvents <= 0).
func NewStore(maxEvents int) *Store {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Store{
		max:    maxEvents,
		events: make(map[jid.ID]*entry),
		now:    time.Now,
	}
}

// SetClock overrides the wall clock, for deterministic tests.
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// Record appends a hop for eventID as observed on peer. sentUS is the
// publish stamp carried by the message element; path is the message's
// Path at recording time (copied, so callers may keep mutating it).
func (s *Store) Record(eventID jid.ID, stage string, peer jid.ID, sentUS int64, path []jid.ID) {
	if eventID.IsZero() {
		return
	}
	var ps []string
	if len(path) > 0 {
		ps = make([]string, len(path))
		for i, p := range path {
			ps[i] = p.String()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.events[eventID]
	if e == nil {
		for len(s.order) >= s.max {
			delete(s.events, s.order[0])
			s.order = s.order[1:]
		}
		e = &entry{}
		s.events[eventID] = e
		s.order = append(s.order, eventID)
	}
	if len(e.hops) >= maxHopsPerEvent {
		return
	}
	e.hops = append(e.hops, Hop{
		EventID: eventID.String(),
		Peer:    peer.String(),
		Stage:   stage,
		AtUS:    s.now().UnixMicro(),
		SentUS:  sentUS,
		Path:    ps,
	})
}

// Hops returns this peer's recorded hops for the event, by canonical
// URN (as printed by jid.ID.String). nil when the event is unknown.
func (s *Store) Hops(eventID string) []Hop {
	id, err := jid.Parse(eventID)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.events[id]
	if e == nil {
		return nil
	}
	out := make([]Hop, len(e.hops))
	copy(out, e.hops)
	return out
}

// EventSummary describes one retained traced event.
type EventSummary struct {
	EventID string `json:"event_id"`
	Hops    int    `json:"hops"`
	FirstUS int64  `json:"first_us"` // earliest hop timestamp
}

// Events lists retained events, oldest first.
func (s *Store) Events() []EventSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EventSummary, 0, len(s.order))
	for _, id := range s.order {
		e := s.events[id]
		if e == nil || len(e.hops) == 0 {
			continue
		}
		first := e.hops[0].AtUS
		for _, h := range e.hops {
			if h.AtUS < first {
				first = h.AtUS
			}
		}
		out = append(out, EventSummary{EventID: id.String(), Hops: len(e.hops), FirstUS: first})
	}
	return out
}

// Len returns the number of retained traced events.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Trace is an assembled cross-peer view of one event's journey.
type Trace struct {
	EventID string `json:"event_id"`
	SentUS  int64  `json:"sent_us,omitempty"`
	Hops    []Hop  `json:"hops"`
}

// stageRank orders stages within one event at equal timestamps.
func stageRank(stage string) int {
	switch stage {
	case StagePublish:
		return 0
	case StageForward:
		return 1
	case StageDeliver:
		return 2
	default:
		return 3
	}
}

// Assemble merges hop records gathered from any number of peers into
// one ordered trace: sorted by recording timestamp (stage order breaks
// ties, tolerating clock skew between peers), with duplicate
// (peer, stage) records collapsed to the earliest — an engine with
// several attachments records the same injection more than once, and a
// replayed frame can re-record delivery.
func Assemble(eventID string, hops []Hop) Trace {
	tr := Trace{EventID: eventID}
	seen := make(map[string]int) // peer+stage → index in tr.Hops
	for _, h := range hops {
		if h.EventID != "" && h.EventID != eventID {
			continue
		}
		if h.SentUS != 0 && (tr.SentUS == 0 || h.SentUS < tr.SentUS) {
			tr.SentUS = h.SentUS
		}
		key := h.Peer + "\x00" + h.Stage
		if i, dup := seen[key]; dup {
			if h.AtUS < tr.Hops[i].AtUS {
				tr.Hops[i] = h
			}
			continue
		}
		seen[key] = len(tr.Hops)
		tr.Hops = append(tr.Hops, h)
	}
	sort.SliceStable(tr.Hops, func(i, j int) bool {
		a, b := tr.Hops[i], tr.Hops[j]
		// Publish sorts first regardless of skewed clocks; the rest
		// order by timestamp with stage rank breaking exact ties.
		if ap, bp := a.Stage == StagePublish, b.Stage == StagePublish; ap != bp {
			return ap
		}
		if a.AtUS != b.AtUS {
			return a.AtUS < b.AtUS
		}
		return stageRank(a.Stage) < stageRank(b.Stage)
	})
	return tr
}
