// Package trace implements sampled per-event hop tracing for the TPS
// propagation path.
//
// When an engine publishes a sampled event it stamps one small binary
// element (26 bytes: version, event ID, publish wall-clock) onto the
// outgoing message. The element rides the existing copy-on-write
// envelope through every rendezvous hop for free — Dup shares element
// headers, and forwarding peers never strip unknown namespaces. Each
// layer that touches a stamped message records a Hop (publish, forward
// or deliver) into its peer-local bounded Store, together with the
// message's Path stamps at that moment. Traces are assembled across
// peers by fetching each peer's hops for an event ID (admin endpoint
// /trace/{eventID}, tpsctl trace) and merging with Assemble.
//
// Sampling is deterministic and allocation-free: an event is traced
// iff jid.ID.Hash64() falls under a threshold derived from the
// configured rate, so every peer makes the same decision for the same
// event without coordination. With rate 0 (the default) no element is
// ever added and the publish→deliver hot path is unchanged — the probe
// on the receive side is a linear element scan with zero allocations,
// gated by TestHotPathAllocBudget.
package trace

import (
	"encoding/binary"
	"math"

	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
)

// The trace element: namespace "trc", name "Ev". One per traced
// message, stamped once at publish and never rewritten.
const (
	ElemNS   = "trc"
	ElemName = "Ev"

	// MimeType marks the binary trace payload.
	MimeType = "application/x-tps-trace"

	wireVersion = 1
	payloadSize = 1 + jid.WireSize + 8 // version + event ID + sent µs
)

// Hop stages, in propagation order.
const (
	StagePublish = "publish"
	StageForward = "forward"
	StageDeliver = "deliver"
)

// Sampler makes the per-event trace decision for one configured rate.
// The zero value samples nothing.
type Sampler struct {
	threshold uint64
}

// NewSampler returns a sampler tracing approximately the given
// fraction of events (clamped to [0,1]). The decision is a pure
// function of the event ID, so all peers agree on it.
func NewSampler(rate float64) Sampler {
	if rate <= 0 || math.IsNaN(rate) {
		return Sampler{}
	}
	t := rate * math.MaxUint64
	if t >= math.MaxUint64 {
		return Sampler{threshold: math.MaxUint64}
	}
	return Sampler{threshold: uint64(t)}
}

// Enabled reports whether any event can be sampled.
func (s Sampler) Enabled() bool { return s.threshold != 0 }

// Sample reports whether the event should be traced. Zero allocations.
func (s Sampler) Sample(eventID jid.ID) bool {
	if s.threshold == 0 {
		return false
	}
	if s.threshold == math.MaxUint64 {
		return true
	}
	return eventID.Hash64() < s.threshold
}

// Stamp adds the trace element to msg: the event ID this message
// carries and the publisher's wall clock in unix microseconds. Call it
// only for sampled events — it appends an element and therefore
// allocates.
func Stamp(msg *message.Message, eventID jid.ID, sentUS int64) {
	data := make([]byte, 1, payloadSize)
	data[0] = wireVersion
	data = eventID.AppendWire(data)
	data = binary.BigEndian.AppendUint64(data, uint64(sentUS))
	msg.AddElement(message.Element{
		Namespace: ElemNS,
		Name:      ElemName,
		MimeType:  MimeType,
		Data:      data,
	})
}

// Info probes msg for a trace element and decodes it. ok is false for
// unstamped messages, unknown versions and malformed payloads. The
// probe is allocation-free, so every delivery path can afford it even
// when tracing is off locally.
func Info(msg *message.Message) (eventID jid.ID, sentUS int64, ok bool) {
	e, found := msg.Element(ElemNS, ElemName)
	if !found || len(e.Data) != payloadSize || e.Data[0] != wireVersion {
		return jid.Nil, 0, false
	}
	id, err := jid.FromWire(e.Data[1], [16]byte(e.Data[2:1+jid.WireSize]))
	if err != nil || id.IsZero() {
		return jid.Nil, 0, false
	}
	return id, int64(binary.BigEndian.Uint64(e.Data[1+jid.WireSize:])), true
}
