package trace

import (
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
)

func TestStampInfoRoundTrip(t *testing.T) {
	src := jid.NewPeer()
	ev := jid.NewMessage()
	msg := message.New(src)
	Stamp(msg, ev, 1234567890)

	got, sentUS, ok := Info(msg)
	if !ok {
		t.Fatal("Info did not find the trace element")
	}
	if got != ev {
		t.Fatalf("event ID = %v, want %v", got, ev)
	}
	if sentUS != 1234567890 {
		t.Fatalf("sentUS = %d, want 1234567890", sentUS)
	}

	// The element must survive the COW Dup used on every forward hop.
	dup := msg.Dup()
	dup.AddString("rdv", "Op", "prop") // forwarding-style mutation
	if got2, _, ok := Info(dup); !ok || got2 != ev {
		t.Fatalf("trace element lost across Dup+mutate: ok=%v id=%v", ok, got2)
	}
}

func TestInfoRejectsMalformed(t *testing.T) {
	msg := message.New(jid.NewPeer())
	if _, _, ok := Info(msg); ok {
		t.Fatal("Info matched an unstamped message")
	}
	msg.AddBytes(ElemNS, ElemName, []byte{9, 9, 9})
	if _, _, ok := Info(msg); ok {
		t.Fatal("Info matched a short payload")
	}
	bad := message.New(jid.NewPeer())
	data := make([]byte, payloadSize)
	data[0] = 99 // unknown version
	bad.AddBytes(ElemNS, ElemName, data)
	if _, _, ok := Info(bad); ok {
		t.Fatal("Info matched an unknown version")
	}
}

// The receive-side probe runs on every delivered message, traced or
// not, so it must be allocation-free on the common (unstamped) case —
// and on the stamped case too.
func TestInfoAllocFree(t *testing.T) {
	plain := message.New(jid.NewPeer())
	plain.AddString("tps", "Codec", "gob")
	stamped := message.New(jid.NewPeer())
	Stamp(stamped, jid.NewMessage(), 42)

	if allocs := testing.AllocsPerRun(500, func() {
		if _, _, ok := Info(plain); ok {
			t.Error("unexpected match")
		}
	}); allocs != 0 {
		t.Fatalf("Info on unstamped message: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		if _, _, ok := Info(stamped); !ok {
			t.Error("expected match")
		}
	}); allocs != 0 {
		t.Fatalf("Info on stamped message: %v allocs/op, want 0", allocs)
	}
}

func TestSampler(t *testing.T) {
	if NewSampler(0).Enabled() || NewSampler(-1).Enabled() {
		t.Fatal("rate <= 0 must disable sampling")
	}
	all := NewSampler(1)
	none := NewSampler(0)
	half := NewSampler(0.5)
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		ev := jid.NewMessage()
		if !all.Sample(ev) {
			t.Fatal("rate 1 must sample everything")
		}
		if none.Sample(ev) {
			t.Fatal("rate 0 must sample nothing")
		}
		if half.Sample(ev) {
			hits++
		}
		// Determinism: the same event gives the same answer every time.
		if half.Sample(ev) != half.Sample(ev) {
			t.Fatal("sampler is not deterministic")
		}
	}
	if hits < n/4 || hits > 3*n/4 {
		t.Fatalf("rate 0.5 sampled %d/%d events", hits, n)
	}
	// Sampling must be allocation-free: it runs per publish.
	ev := jid.NewMessage()
	if allocs := testing.AllocsPerRun(500, func() { half.Sample(ev) }); allocs != 0 {
		t.Fatalf("Sample: %v allocs/op, want 0", allocs)
	}
}

func TestStoreRecordAndEvict(t *testing.T) {
	s := NewStore(2)
	base := time.UnixMicro(1_000_000)
	tick := 0
	s.SetClock(func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Millisecond) })

	peer := jid.NewPeer()
	ev1, ev2, ev3 := jid.NewMessage(), jid.NewMessage(), jid.NewMessage()
	s.Record(ev1, StagePublish, peer, 10, nil)
	s.Record(ev1, StageDeliver, peer, 10, []jid.ID{peer})
	s.Record(ev2, StagePublish, peer, 20, nil)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	// Third event evicts the oldest (ev1).
	s.Record(ev3, StagePublish, peer, 30, nil)
	if s.Len() != 2 {
		t.Fatalf("len after evict = %d, want 2", s.Len())
	}
	if got := s.Hops(ev1.String()); got != nil {
		t.Fatalf("evicted event still present: %v", got)
	}
	hops := s.Hops(ev2.String())
	if len(hops) != 1 || hops[0].Stage != StagePublish || hops[0].SentUS != 20 {
		t.Fatalf("ev2 hops = %+v", hops)
	}
	evs := s.Events()
	if len(evs) != 2 || evs[0].EventID != ev2.String() || evs[1].EventID != ev3.String() {
		t.Fatalf("events = %+v", evs)
	}
	if s.Hops("not-a-urn") != nil {
		t.Fatal("bad URN should return nil")
	}
	// Zero event IDs are ignored.
	s.Record(jid.Nil, StagePublish, peer, 0, nil)
	if s.Len() != 2 {
		t.Fatal("nil event was recorded")
	}
}

func TestStoreHopCap(t *testing.T) {
	s := NewStore(4)
	ev, peer := jid.NewMessage(), jid.NewPeer()
	for i := 0; i < maxHopsPerEvent*2; i++ {
		s.Record(ev, StageForward, peer, 0, nil)
	}
	if n := len(s.Hops(ev.String())); n != maxHopsPerEvent {
		t.Fatalf("hops = %d, want cap %d", n, maxHopsPerEvent)
	}
}

func TestAssemble(t *testing.T) {
	ev := jid.NewMessage().String()
	pub, rdv, sub := jid.NewPeer().String(), jid.NewPeer().String(), jid.NewPeer().String()
	hops := []Hop{
		// Out of order, with a duplicate forward (two attachments) and a
		// publish whose clock reads later than the relay's (skew).
		{EventID: ev, Peer: sub, Stage: StageDeliver, AtUS: 400, SentUS: 100},
		{EventID: ev, Peer: rdv, Stage: StageForward, AtUS: 250},
		{EventID: ev, Peer: rdv, Stage: StageForward, AtUS: 200},
		{EventID: ev, Peer: pub, Stage: StagePublish, AtUS: 300, SentUS: 100},
		{EventID: "urn:other", Peer: pub, Stage: StagePublish, AtUS: 1},
	}
	tr := Assemble(ev, hops)
	if tr.EventID != ev || tr.SentUS != 100 {
		t.Fatalf("trace header = %+v", tr)
	}
	if len(tr.Hops) != 3 {
		t.Fatalf("hops = %+v, want 3 (dedup + foreign filter)", tr.Hops)
	}
	if tr.Hops[0].Stage != StagePublish || tr.Hops[0].Peer != pub {
		t.Fatalf("first hop = %+v, want publish despite clock skew", tr.Hops[0])
	}
	if tr.Hops[1].Stage != StageForward || tr.Hops[1].AtUS != 200 {
		t.Fatalf("second hop = %+v, want earliest forward", tr.Hops[1])
	}
	if tr.Hops[2].Stage != StageDeliver || tr.Hops[2].Peer != sub {
		t.Fatalf("third hop = %+v", tr.Hops[2])
	}
}
