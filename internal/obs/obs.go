// Package obs is the observability core of a TPS peer: a registry where
// every instrumented subsystem (engine, wire, endpoint, tcpnet,
// rendezvous, seen) registers a named snapshot provider, and one
// Collect() call assembles a coherent point-in-time view of all of them
// — counters, gauges, and per-second rates derived between collections.
//
// The registry is deliberately off the hot path: subsystems keep
// counting with the same atomic counters they always had, and pay
// nothing until somebody actually collects. Registration and collection
// take a registry lock; Snapshot providers must therefore be safe to
// call concurrently with the traffic they observe (all of ours are —
// they only read atomics or take short service-local locks).
//
// The JSON shape of View is versioned by SchemaVersion and documented in
// OBSERVABILITY.md; the admin HTTP surface (internal/obs/admin) and
// cmd/tpsctl both speak it, and cmd/benchjson stamps it into the
// BENCH_<pr>.json trajectory files so they stay self-describing.
package obs

import (
	"sort"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/obs/hist"
)

// SchemaVersion identifies the JSON shape of View, Snapshot and
// Inspection. Bump it whenever a field is renamed, removed, or changes
// meaning; adding fields is backward compatible and does not bump it.
//
// Schema 2 (PR 9): Snapshot grew the Hists map of per-stage latency
// histograms. Counters, gauges and the View envelope are unchanged;
// the bump marks that consumers may rely on histogram presence.
const SchemaVersion = 2

// Snapshot is one subsystem's point-in-time state: monotonic counters
// (totals since the subsystem started) and level gauges (current
// values, may go up and down). Counter and gauge keys use lower_snake
// naming with the shared vocabulary — `sent`, `dropped`, `*_failures` —
// so operators never have to guess which of three spellings a subsystem
// picked.
type Snapshot struct {
	// Name identifies the subsystem ("engine", "wire", "endpoint",
	// "tcpnet", "rendezvous", "seen").
	Name string `json:"name"`
	// Version is the subsystem's snapshot version, independent of the
	// overall schema: bumped when that subsystem's key set changes
	// incompatibly.
	Version int `json:"version"`
	// Counters are monotonically non-decreasing totals.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges are instantaneous levels (queue depth, live attachments,
	// cache occupancy).
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Hists are per-stage latency histograms (`*_us` keys, microsecond
	// buckets — see internal/obs/hist for the fixed bucket layout).
	Hists map[string]hist.Snapshot `json:"histograms,omitempty"`
}

// Provider yields a subsystem snapshot. Implementations must be safe to
// call at any time from any goroutine.
type Provider interface {
	Snapshot() Snapshot
}

// ProviderFunc adapts a plain function to Provider.
type ProviderFunc func() Snapshot

// Snapshot implements Provider.
func (f ProviderFunc) Snapshot() Snapshot { return f() }

// Merge folds several snapshots of the same subsystem kind into one,
// summing counters and gauges. A peer runs one wire service per joined
// group and possibly several engines; their merged snapshot is the
// per-peer truth the admin surface reports. The highest Version wins.
func Merge(name string, snaps ...Snapshot) Snapshot {
	out := Snapshot{Name: name, Version: 1}
	for _, s := range snaps {
		if s.Version > out.Version {
			out.Version = s.Version
		}
		for k, v := range s.Counters {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = make(map[string]float64)
			}
			out.Gauges[k] += v
		}
		for k, h := range s.Hists {
			if out.Hists == nil {
				out.Hists = make(map[string]hist.Snapshot)
			}
			out.Hists[k] = hist.Merge(out.Hists[k], h)
		}
	}
	return out
}

// View is the coherent multi-subsystem result of one Collect call — the
// document GET /stats serves.
type View struct {
	// Schema is SchemaVersion at build time.
	Schema int `json:"schema"`
	// TakenAtMS is the collection wall-clock instant (unix ms).
	TakenAtMS int64 `json:"taken_at_ms"`
	// IntervalMS is the time since the previous Collect on the same
	// registry; 0 on the first collection.
	IntervalMS int64 `json:"interval_ms,omitempty"`
	// Subsystems holds one merged snapshot per registered name, sorted
	// by name so the document diffs cleanly.
	Subsystems []Snapshot `json:"subsystems"`
	// Rates maps "<subsystem>.<counter>" to its per-second rate over
	// IntervalMS. Empty on the first collection.
	Rates map[string]float64 `json:"rates,omitempty"`
}

// Subsystem returns the named snapshot from the view, or a zero
// Snapshot and false.
func (v View) Subsystem(name string) (Snapshot, bool) {
	for _, s := range v.Subsystems {
		if s.Name == name {
			return s, true
		}
	}
	return Snapshot{}, false
}

// Counter returns a counter by "<subsystem>.<key>" addressing, or 0.
func (v View) Counter(subsystem, key string) int64 {
	s, ok := v.Subsystem(subsystem)
	if !ok {
		return 0
	}
	return s.Counters[key]
}

type registration struct {
	name string
	p    Provider
}

// Registry holds the providers of one peer. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	provs []*registration
	now   func() time.Time

	// previous collection, for rate derivation
	lastAt       time.Time
	lastCounters map[string]int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{now: time.Now}
}

// SetClock substitutes the time source (tests).
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Register adds a provider under the subsystem name and returns a
// function that removes it again (engines come and go with their
// Close). Several providers may share one name; Collect merges them.
func (r *Registry) Register(name string, p Provider) (remove func()) {
	reg := &registration{name: name, p: p}
	r.mu.Lock()
	r.provs = append(r.provs, reg)
	r.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			for i, cur := range r.provs {
				if cur == reg {
					r.provs = append(r.provs[:i], r.provs[i+1:]...)
					return
				}
			}
		})
	}
}

// RegisterFunc is Register for a plain function.
func (r *Registry) RegisterFunc(name string, f func() Snapshot) (remove func()) {
	return r.Register(name, ProviderFunc(f))
}

// Names lists the registered subsystem names, sorted and deduplicated.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]struct{}, len(r.provs))
	out := make([]string, 0, len(r.provs))
	for _, reg := range r.provs {
		if _, dup := seen[reg.name]; dup {
			continue
		}
		seen[reg.name] = struct{}{}
		out = append(out, reg.name)
	}
	sort.Strings(out)
	return out
}

// Collect snapshots every provider and assembles the merged view,
// deriving per-second counter rates against the previous Collect call.
//
// Collect holds the registry lock for the duration, so two concurrent
// collectors see strictly ordered intervals; providers are invoked
// under that lock and must not call back into the registry.
func (r *Registry) Collect() View {
	r.mu.Lock()
	defer r.mu.Unlock()

	byName := make(map[string][]Snapshot)
	order := make([]string, 0, len(r.provs))
	for _, reg := range r.provs {
		if _, ok := byName[reg.name]; !ok {
			order = append(order, reg.name)
		}
		byName[reg.name] = append(byName[reg.name], reg.p.Snapshot())
	}
	sort.Strings(order)

	at := r.now()
	v := View{Schema: SchemaVersion, TakenAtMS: at.UnixMilli()}
	flat := make(map[string]int64)
	for _, name := range order {
		merged := Merge(name, byName[name]...)
		v.Subsystems = append(v.Subsystems, merged)
		for k, c := range merged.Counters {
			flat[name+"."+k] = c
		}
	}

	if !r.lastAt.IsZero() {
		dt := at.Sub(r.lastAt)
		v.IntervalMS = dt.Milliseconds()
		if secs := dt.Seconds(); secs > 0 {
			rates := make(map[string]float64, len(flat))
			for k, c := range flat {
				if prev, ok := r.lastCounters[k]; ok && c >= prev {
					rates[k] = roundRate(float64(c-prev) / secs)
				}
			}
			v.Rates = rates
		}
	}
	r.lastAt = at
	r.lastCounters = flat
	return v
}

func roundRate(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}
