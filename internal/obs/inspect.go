package obs

// inspect.go defines the introspection view the admin surface serves on
// /peers and /subscriptions and tps.Platform.Inspect() returns: not
// counters but *structure* — who this peer is connected to and in what
// health, and which type subscriptions are live. Like View, the JSON
// shape is governed by SchemaVersion.

// Peer-entry kinds.
const (
	// PeerRendezvous is a rendezvous this peer holds a lease with.
	PeerRendezvous = "rendezvous"
	// PeerClient is an edge peer leased to this (rendezvous) peer.
	PeerClient = "client"
	// PeerSeed is a configured seed address, connected or not.
	PeerSeed = "seed"
)

// PeerEntry describes one remote peer (or configured seed) and the
// failure-detector state of its address.
type PeerEntry struct {
	// ID is the remote peer's URN; empty for seeds we never reached.
	ID string `json:"id,omitempty"`
	// Addr is the endpoint address sends go to.
	Addr string `json:"addr,omitempty"`
	// Kind is one of PeerRendezvous, PeerClient, PeerSeed.
	Kind string `json:"kind"`
	// Group scopes client leases; empty for the wildcard daemon mesh.
	Group string `json:"group,omitempty"`
	// ExpiresInMS is the remaining lease time; 0 when not leased.
	ExpiresInMS int64 `json:"expires_in_ms,omitempty"`
	// Fails is the address's consecutive send-failure count.
	Fails int `json:"fails,omitempty"`
	// Suspect reports the failure detector is probing the address.
	Suspect bool `json:"suspect,omitempty"`
	// BreakerOpenMS is the remaining eviction-breaker cooldown; 0 when
	// the breaker is closed.
	BreakerOpenMS int64 `json:"breaker_open_ms,omitempty"`
	// Leased reports, for seed entries, whether a lease is currently
	// held with this specific seed — AwaitConnected only promises SOME
	// lease, so this is where mixed seed health becomes visible.
	Leased bool `json:"leased,omitempty"`
	// Active marks, in active/standby failover mode, the seed the peer
	// currently elects as its primary rendezvous.
	Active bool `json:"active,omitempty"`
}

// ReplicaTopicLag compares one replicated (origin, topic) log stream's
// tail on this peer against a replica's advertised tail.
type ReplicaTopicLag struct {
	// Origin is the rendezvous whose log numbered the stream.
	Origin string `json:"origin"`
	// Topic is the stream's topic (group parameter).
	Topic string `json:"topic"`
	// LocalLast and RemoteLast are the highest contiguous sequences
	// held here and advertised by the replica. RemoteLast > LocalLast
	// means this peer is behind and will pull the difference.
	LocalLast  uint64 `json:"local_last"`
	RemoteLast uint64 `json:"remote_last"`
}

// ReplicaEntry describes one member of this rendezvous peer's replica
// set and the anti-entropy state against it.
type ReplicaEntry struct {
	// Addr is the replica's configured address.
	Addr string `json:"addr"`
	// ID is the replica's URN, empty until it first syncs.
	ID string `json:"id,omitempty"`
	// LastSyncAgoMS is the time since the replica's last digest was
	// received; -1 when it never synced.
	LastSyncAgoMS int64 `json:"last_sync_ago_ms"`
	// Topics compares per-stream tails, from the replica's last digest.
	Topics []ReplicaTopicLag `json:"topics,omitempty"`
}

// SubscriptionEntry describes the live delivery state of one subscribed
// type hierarchy root.
type SubscriptionEntry struct {
	// Type is the registry path of the subscription's root type.
	Type string `json:"type"`
	// Subscribers is how many callback registrations target the root.
	Subscribers int `json:"subscribers"`
	// Attachments is how many per-type event groups are joined for the
	// root's subtree.
	Attachments int `json:"attachments"`
	// Ready is how many of those attachments are connected and
	// delivering.
	Ready int `json:"ready"`
}

// LogTopicEntry describes one topic's retained range in the durable
// event log (rendezvous peers with Config.LogDir set).
type LogTopicEntry struct {
	// Topic is the log topic — the group parameter events propagate
	// under.
	Topic string `json:"topic"`
	// FirstSeq and LastSeq bound the retained sequence range; both 0
	// when the topic holds no entries.
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// Segments and Bytes describe the on-disk footprint.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
}

// CursorEntry is one (group, log origin) replay cursor an engine tracks:
// the highest log sequence number delivered from that origin.
type CursorEntry struct {
	// Group is the peer group (topic) the cursor belongs to.
	Group string `json:"group"`
	// Origin is the rendezvous peer whose log numbered the events.
	Origin string `json:"origin"`
	// Seq is the last delivered sequence number.
	Seq uint64 `json:"seq"`
}

// Inspection is the structural self-description of one peer.
type Inspection struct {
	// Schema is SchemaVersion at build time.
	Schema int `json:"schema"`
	// PeerID is this peer's URN.
	PeerID string `json:"peer_id"`
	// Name is the peer's human-readable name.
	Name string `json:"name,omitempty"`
	// Addresses are this peer's reachable addresses, best first.
	Addresses []string `json:"addresses,omitempty"`
	// Rendezvous reports whether the peer runs the rendezvous/relay
	// daemon stack.
	Rendezvous bool `json:"rendezvous,omitempty"`
	// Peers lists connected peers, leased clients and configured seeds.
	Peers []PeerEntry `json:"peers"`
	// Subscriptions lists the live subscription table across engines.
	Subscriptions []SubscriptionEntry `json:"subscriptions"`
	// Types lists every registered event-type path.
	Types []string `json:"types,omitempty"`
	// EventLog lists per-topic retained ranges of the durable event log;
	// empty when the peer runs without a log.
	EventLog []LogTopicEntry `json:"event_log,omitempty"`
	// Cursors lists the engines' replay cursors: the highest log
	// sequence delivered per (group, origin rendezvous).
	Cursors []CursorEntry `json:"cursors,omitempty"`
	// Replicas lists the rendezvous replica set and per-stream sync
	// lag; empty when the peer replicates nothing.
	Replicas []ReplicaEntry `json:"replicas,omitempty"`
}
