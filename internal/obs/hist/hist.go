// Package hist provides a lock-free, fixed-bucket log-linear latency
// histogram for hot-path instrumentation.
//
// The bucket layout trades memory for mergeability and bounded error:
// values are microsecond durations placed into 8 linear sub-buckets per
// power-of-two octave (≤ 12.5% relative error), with exact single-value
// buckets below 16µs and a single overflow bucket above ~67s. The
// layout is a compile-time constant, so snapshots taken on different
// peers (or at different times) merge by summing counts bucket-wise —
// the same property obs.Snapshot counters have.
//
// Observe is wait-free and performs zero allocations: two atomic adds
// against a fixed array. That makes it safe to
// call from the publish→deliver hot path, which is alloc-gated by
// TestHotPathAllocBudget.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	subBits  = 3            // 2^3 = 8 sub-buckets per octave
	sub      = 1 << subBits // sub-buckets per octave
	linear   = 2 * sub      // values below this get exact buckets
	maxShift = 22           // octaves above the linear range

	// MaxValueUS is the first value (in µs) that lands in the overflow
	// bucket: 16µs << 22 ≈ 67s. Anything slower than that is "broken",
	// not "slow", and exact resolution stops mattering.
	MaxValueUS = uint64(linear) << maxShift

	// NumBuckets is the fixed bucket count: (maxShift+2)*sub normal
	// buckets plus one overflow bucket.
	NumBuckets = (maxShift+2)*sub + 1

	overflowBucket = NumBuckets - 1
)

// Hist is a concurrency-safe latency histogram. The zero value is
// ready to use; copying a Hist after first use is not allowed (it
// contains atomics), so embed it by pointer.
type Hist struct {
	buckets [NumBuckets]atomic.Int64
	sum     atomic.Int64 // total observed microseconds
}

// New returns an empty histogram.
func New() *Hist { return &Hist{} }

// Observe records one duration. Negative durations clamp to zero
// (wall-clock skew between peers can produce them for network
// transit). Zero allocations; safe from any goroutine.
func (h *Hist) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.buckets[bucketOf(uint64(us))].Add(1)
	h.sum.Add(us)
}

// bucketOf maps a microsecond value to its bucket index.
func bucketOf(v uint64) int {
	if v >= MaxValueUS {
		return overflowBucket
	}
	exp := bits.Len64(v)
	if exp <= subBits+1 {
		return int(v) // exact buckets for 0..linear-1
	}
	shift := exp - subBits - 1
	return int(v>>shift) + shift*sub
}

// UpperBoundUS returns the inclusive upper bound (in µs) of bucket i,
// or +Inf for the overflow bucket. Bounds are strictly increasing in i,
// which is what Prometheus `le` labels and quantile estimation need.
func UpperBoundUS(i int) float64 {
	if i < 0 {
		return 0
	}
	if i >= overflowBucket {
		return math.Inf(1)
	}
	if i < linear {
		return float64(i)
	}
	shift := i/sub - 1
	return float64((uint64(i-shift*sub)+1)<<shift - 1)
}

// Bucket is one non-empty histogram bucket in a Snapshot: index into
// the fixed layout plus its count.
type Bucket struct {
	I int   `json:"i"`
	N int64 `json:"n"`
}

// Snapshot is a point-in-time, JSON-marshalable copy of a histogram.
// Only non-empty buckets are carried (sorted by index), so idle
// histograms serialize to a few bytes. Snapshots from different
// instances merge with Merge and subtract with Delta.
type Snapshot struct {
	Count   int64    `json:"count"`
	SumUS   int64    `json:"sum_us"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the current state. Counts are read without a global
// lock, so a snapshot taken concurrently with Observe may be torn by a
// few in-flight observations; Count is re-derived from the bucket sum
// so the invariant sum(buckets) == Count always holds.
func (h *Hist) Snapshot() Snapshot {
	s := Snapshot{SumUS: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{I: i, N: n})
			s.Count += n
		}
	}
	return s
}

// Merge returns the bucket-wise sum of two snapshots.
func Merge(a, b Snapshot) Snapshot {
	out := Snapshot{Count: a.Count + b.Count, SumUS: a.SumUS + b.SumUS}
	out.Buckets = make([]Bucket, 0, len(a.Buckets)+len(b.Buckets))
	i, j := 0, 0
	for i < len(a.Buckets) || j < len(b.Buckets) {
		switch {
		case j >= len(b.Buckets) || (i < len(a.Buckets) && a.Buckets[i].I < b.Buckets[j].I):
			out.Buckets = append(out.Buckets, a.Buckets[i])
			i++
		case i >= len(a.Buckets) || b.Buckets[j].I < a.Buckets[i].I:
			out.Buckets = append(out.Buckets, b.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{I: a.Buckets[i].I, N: a.Buckets[i].N + b.Buckets[j].N})
			i++
			j++
		}
	}
	return out
}

// Delta returns cur minus prev, clamping each bucket at zero. Use it
// to derive per-interval histograms from two cumulative snapshots
// (e.g. tpsctl watch computing p99 per poll interval).
func Delta(cur, prev Snapshot) Snapshot {
	sub := make(map[int]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		sub[b.I] = b.N
	}
	var out Snapshot
	for _, b := range cur.Buckets {
		n := b.N - sub[b.I]
		if n <= 0 {
			continue
		}
		out.Buckets = append(out.Buckets, Bucket{I: b.I, N: n})
		out.Count += n
	}
	if s := cur.SumUS - prev.SumUS; s > 0 {
		out.SumUS = s
	}
	return out
}

// Quantile estimates the p-th quantile (p in [0,1]) in microseconds,
// as the upper bound of the bucket containing that rank. Returns 0 for
// an empty snapshot; the overflow bucket reports MaxValueUS rather
// than +Inf so callers can always print a number.
func (s Snapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= target {
			if b.I >= overflowBucket {
				return float64(MaxValueUS)
			}
			return UpperBoundUS(b.I)
		}
	}
	return float64(MaxValueUS)
}

// MeanUS returns the arithmetic mean in microseconds, or 0 when empty.
func (s Snapshot) MeanUS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumUS) / float64(s.Count)
}
