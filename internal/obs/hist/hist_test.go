package hist

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// Every representable microsecond value must land in exactly one
// bucket, and the bucket's bounds must contain it.
func TestBucketLayout(t *testing.T) {
	// Bounds strictly increase.
	prev := -1.0
	for i := 0; i < overflowBucket; i++ {
		ub := UpperBoundUS(i)
		if ub <= prev {
			t.Fatalf("bucket %d upper bound %v not > previous %v", i, ub, prev)
		}
		prev = ub
	}
	if !math.IsInf(UpperBoundUS(overflowBucket), 1) {
		t.Fatalf("overflow bucket bound = %v, want +Inf", UpperBoundUS(overflowBucket))
	}

	// Spot-check assignment against bounds across the whole range,
	// including every octave boundary.
	check := func(v uint64) {
		t.Helper()
		b := bucketOf(v)
		if v >= MaxValueUS {
			if b != overflowBucket {
				t.Fatalf("bucketOf(%d) = %d, want overflow %d", v, b, overflowBucket)
			}
			return
		}
		ub := UpperBoundUS(b)
		var lb float64
		if b > 0 {
			lb = UpperBoundUS(b - 1)
		} else {
			lb = -1
		}
		if float64(v) <= lb || float64(v) > ub {
			t.Fatalf("value %d in bucket %d, but bounds are (%v, %v]", v, b, lb, ub)
		}
	}
	for v := uint64(0); v < 4096; v++ {
		check(v)
	}
	for shift := 0; shift < 40; shift++ {
		base := uint64(1) << shift
		for _, v := range []uint64{base - 1, base, base + 1} {
			check(v)
		}
	}
	check(MaxValueUS - 1)
	check(MaxValueUS)
	check(MaxValueUS * 3)
}

func TestObserveAndSnapshot(t *testing.T) {
	h := New()
	h.Observe(5 * time.Microsecond)
	h.Observe(5 * time.Microsecond)
	h.Observe(300 * time.Microsecond)
	h.Observe(-time.Second) // clamps to 0
	h.Observe(10 * time.Minute)

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := int64(5 + 5 + 300 + 0 + 10*60*1e6); s.SumUS != want {
		t.Fatalf("sum = %d, want %d", s.SumUS, want)
	}
	var total int64
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].I <= s.Buckets[i-1].I {
			t.Fatalf("snapshot buckets not sorted: %v", s.Buckets)
		}
	}
	for _, b := range s.Buckets {
		total += b.N
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.I != overflowBucket || last.N != 1 {
		t.Fatalf("10min observation not in overflow bucket: %v", s.Buckets)
	}
}

func TestQuantile(t *testing.T) {
	h := New()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ p, exact float64 }{
		{0.5, 500}, {0.9, 900}, {0.99, 990}, {1, 1000},
	} {
		got := s.Quantile(tc.p)
		// Log-linear buckets guarantee ≤ 12.5% overestimate (the
		// estimate is the bucket's upper bound, never below the rank).
		if got < tc.exact || got > tc.exact*1.125+1 {
			t.Fatalf("Quantile(%v) = %v, want within [%v, %v]", tc.p, got, tc.exact, tc.exact*1.125+1)
		}
	}
	if q := (Snapshot{}).Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	one := New()
	one.Observe(time.Hour)
	if q := one.Snapshot().Quantile(0.5); q != float64(MaxValueUS) {
		t.Fatalf("overflow quantile = %v, want %v", q, float64(MaxValueUS))
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 100; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
		b.Observe(time.Duration(i*37) * time.Microsecond)
	}
	merged := Merge(a.Snapshot(), b.Snapshot())

	// Merging must equal observing everything into one histogram.
	both := New()
	for i := 0; i < 100; i++ {
		both.Observe(time.Duration(i) * time.Microsecond)
		both.Observe(time.Duration(i*37) * time.Microsecond)
	}
	want := both.Snapshot()
	if merged.Count != want.Count || merged.SumUS != want.SumUS {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", merged.Count, merged.SumUS, want.Count, want.SumUS)
	}
	if len(merged.Buckets) != len(want.Buckets) {
		t.Fatalf("merged buckets %v, want %v", merged.Buckets, want.Buckets)
	}
	for i := range want.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("merged bucket %d = %v, want %v", i, merged.Buckets[i], want.Buckets[i])
		}
	}
	// Merge with the zero snapshot is identity.
	id := Merge(want, Snapshot{})
	if id.Count != want.Count || id.SumUS != want.SumUS || len(id.Buckets) != len(want.Buckets) {
		t.Fatalf("merge with zero changed snapshot: %+v vs %+v", id, want)
	}
}

func TestDelta(t *testing.T) {
	h := New()
	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	prev := h.Snapshot()
	h.Observe(10 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	cur := h.Snapshot()

	d := Delta(cur, prev)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if want := int64(10 + 5000); d.SumUS != want {
		t.Fatalf("delta sum = %d, want %d", d.SumUS, want)
	}
	if q := d.Quantile(1); q < 5000 || q > 5000*1.125 {
		t.Fatalf("delta max quantile = %v, want ~5000", q)
	}
	// Delta against itself is empty.
	if e := Delta(cur, cur); e.Count != 0 || len(e.Buckets) != 0 {
		t.Fatalf("self-delta not empty: %+v", e)
	}
}

// Concurrent Observe + Snapshot under -race: the histogram must never
// lose counts, and every snapshot must be internally consistent.
func TestConcurrentObserve(t *testing.T) {
	const goroutines = 8
	const perG = 5000
	h := New()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader checks snapshot consistency
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var total int64
			for _, b := range s.Buckets {
				total += b.N
			}
			if total != s.Count {
				t.Errorf("torn snapshot: bucket total %d != count %d", total, s.Count)
				return
			}
		}
	}()

	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Microsecond)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	s := h.Snapshot()
	if want := int64(goroutines * perG); s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
}

// The acceptance-criteria gate: recording into a histogram performs
// zero allocations, so always-on stage histograms cannot regress the
// publish→deliver alloc budget.
func TestObserveAllocFree(t *testing.T) {
	h := New()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(137 * time.Microsecond)
		h.Observe(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v allocs/op, want 0", allocs)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	h := New()
	h.Observe(42 * time.Microsecond)
	h.Observe(9 * time.Millisecond)
	s := h.Snapshot()
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != s.Count || back.SumUS != s.SumUS || len(back.Buckets) != len(s.Buckets) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, s)
	}
	if q1, q2 := s.Quantile(0.5), back.Quantile(0.5); q1 != q2 {
		t.Fatalf("quantile changed across round trip: %v vs %v", q1, q2)
	}
}

func BenchmarkObserve(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i&0xffff) * time.Microsecond)
	}
}
