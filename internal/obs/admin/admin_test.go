package admin

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/obs"
)

// testConfig builds a config over a live registry with one hot counter,
// a two-peer inspection and switchable health.
func testConfig(healthErr *atomic.Value) (Config, *atomic.Int64) {
	reg := obs.NewRegistry()
	var published atomic.Int64
	reg.RegisterFunc("engine", func() obs.Snapshot {
		return obs.Snapshot{Name: "engine", Version: 1,
			Counters: map[string]int64{"published": published.Load()},
			Gauges:   map[string]float64{"subscriptions": 1}}
	})
	reg.RegisterFunc("seen", func() obs.Snapshot {
		return obs.Snapshot{Name: "seen", Version: 1,
			Counters: map[string]int64{"observed": 2, "duplicates": 1}}
	})
	cfg := Config{
		Registry: reg,
		Inspect: func() obs.Inspection {
			return obs.Inspection{
				Schema: obs.SchemaVersion,
				PeerID: "urn:jxta:peer-test",
				Name:   "t",
				Peers: []obs.PeerEntry{
					{ID: "urn:jxta:rdv", Addr: "tcp://10.0.0.1:9701", Kind: obs.PeerRendezvous, ExpiresInMS: 1000},
					{Addr: "tcp://10.0.0.9:9701", Kind: obs.PeerSeed, Fails: 3, Suspect: true},
				},
				Subscriptions: []obs.SubscriptionEntry{
					{Type: "Greeting", Subscribers: 2, Attachments: 1, Ready: 1},
				},
				Types: []string{"Greeting"},
			}
		},
		Health: func() error {
			if healthErr == nil {
				return nil
			}
			if err, _ := healthErr.Load().(error); err != nil {
				return err
			}
			return nil
		},
	}
	return cfg, &published
}

func getJSON(t *testing.T, srv *httptest.Server, path string, wantCode int, into any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s content-type = %q", path, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

// TestStatsShape pins the versioned JSON contract of GET /stats: the
// envelope keys, the schema stamp, and per-subsystem counters.
func TestStatsShape(t *testing.T) {
	cfg, published := testConfig(nil)
	srv := httptest.NewServer(Handler(cfg))
	defer srv.Close()

	published.Store(41)
	var doc struct {
		Schema     int   `json:"schema"`
		TakenAtMS  int64 `json:"taken_at_ms"`
		Subsystems []struct {
			Name     string           `json:"name"`
			Version  int              `json:"version"`
			Counters map[string]int64 `json:"counters"`
		} `json:"subsystems"`
	}
	getJSON(t, srv, "/stats", http.StatusOK, &doc)
	if doc.Schema != obs.SchemaVersion {
		t.Fatalf("schema = %d, want %d", doc.Schema, obs.SchemaVersion)
	}
	if doc.TakenAtMS == 0 {
		t.Fatal("taken_at_ms missing")
	}
	if len(doc.Subsystems) != 2 || doc.Subsystems[0].Name != "engine" || doc.Subsystems[1].Name != "seen" {
		t.Fatalf("subsystems = %+v", doc.Subsystems)
	}
	if doc.Subsystems[0].Counters["published"] != 41 {
		t.Fatalf("engine.published = %d, want 41 (stats must be live)", doc.Subsystems[0].Counters["published"])
	}
	if doc.Subsystems[0].Version != 1 {
		t.Fatalf("engine snapshot version = %d", doc.Subsystems[0].Version)
	}

	// Second collect carries rates for the counter delta.
	published.Store(141)
	time.Sleep(5 * time.Millisecond) // measurable interval_ms
	var second struct {
		IntervalMS int64              `json:"interval_ms"`
		Rates      map[string]float64 `json:"rates"`
	}
	getJSON(t, srv, "/stats", http.StatusOK, &second)
	if second.IntervalMS <= 0 {
		t.Fatalf("interval_ms = %d, want > 0", second.IntervalMS)
	}
	if second.Rates["engine.published"] <= 0 {
		t.Fatalf("rates = %v, want engine.published > 0", second.Rates)
	}
}

func TestPeersAndSubscriptions(t *testing.T) {
	cfg, _ := testConfig(nil)
	srv := httptest.NewServer(Handler(cfg))
	defer srv.Close()

	var peers struct {
		Schema int             `json:"schema"`
		PeerID string          `json:"peer_id"`
		Peers  []obs.PeerEntry `json:"peers"`
	}
	getJSON(t, srv, "/peers", http.StatusOK, &peers)
	if peers.PeerID != "urn:jxta:peer-test" || len(peers.Peers) != 2 {
		t.Fatalf("peers doc = %+v", peers)
	}
	if peers.Peers[1].Kind != obs.PeerSeed || !peers.Peers[1].Suspect || peers.Peers[1].Fails != 3 {
		t.Fatalf("seed entry = %+v", peers.Peers[1])
	}

	var subs struct {
		Subscriptions []obs.SubscriptionEntry `json:"subscriptions"`
		Types         []string                `json:"types"`
	}
	getJSON(t, srv, "/subscriptions", http.StatusOK, &subs)
	if len(subs.Subscriptions) != 1 || subs.Subscriptions[0].Type != "Greeting" {
		t.Fatalf("subscriptions doc = %+v", subs)
	}
	if len(subs.Types) != 1 {
		t.Fatalf("types = %v", subs.Types)
	}
}

// TestHealthDegrades pins the /health contract: 200 while the peer is
// connected, 503 with the reason once connectivity is lost (the
// AwaitConnected failure surface).
func TestHealthDegrades(t *testing.T) {
	var healthErr atomic.Value
	cfg, _ := testConfig(&healthErr)
	srv := httptest.NewServer(Handler(cfg))
	defer srv.Close()

	var ok struct {
		Status string `json:"status"`
	}
	getJSON(t, srv, "/health", http.StatusOK, &ok)
	if ok.Status != "ok" {
		t.Fatalf("status = %q", ok.Status)
	}

	healthErr.Store(errors.New("no rendezvous connection: all seeds unreachable"))
	var bad struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	getJSON(t, srv, "/health", http.StatusServiceUnavailable, &bad)
	if bad.Status != "degraded" || bad.Reason == "" {
		t.Fatalf("degraded doc = %+v", bad)
	}
}

func TestReadEndpointsRejectWrites(t *testing.T) {
	cfg, _ := testConfig(nil)
	srv := httptest.NewServer(Handler(cfg))
	defer srv.Close()
	for _, path := range []string{"/stats", "/peers", "/subscriptions", "/health"} {
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/rpc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /rpc = %d, want 405", resp.StatusCode)
	}
}

func rpcCall(t *testing.T, srv *httptest.Server, body string) rpcResponse {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/rpc", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out rpcResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestJSONRPC(t *testing.T) {
	cfg, published := testConfig(nil)
	published.Store(7)
	srv := httptest.NewServer(Handler(cfg))
	defer srv.Close()

	if out := rpcCall(t, srv, `{"jsonrpc":"2.0","id":1,"method":"ping"}`); out.Error != nil || out.Result != "pong" {
		t.Fatalf("ping = %+v", out)
	}
	out := rpcCall(t, srv, `{"jsonrpc":"2.0","id":2,"method":"stats"}`)
	if out.Error != nil {
		t.Fatalf("stats error: %+v", out.Error)
	}
	view, ok := out.Result.(map[string]any)
	if !ok || view["schema"].(float64) != float64(obs.SchemaVersion) {
		t.Fatalf("stats result = %#v", out.Result)
	}
	if string(out.ID) != "2" {
		t.Fatalf("id echoed = %s", out.ID)
	}
	if out := rpcCall(t, srv, `{"jsonrpc":"2.0","id":3,"method":"nope"}`); out.Error == nil || out.Error.Code != rpcMethodNotFound {
		t.Fatalf("unknown method = %+v", out)
	}
	if out := rpcCall(t, srv, `{garbage`); out.Error == nil || out.Error.Code != rpcParseError {
		t.Fatalf("parse error = %+v", out)
	}
	if out := rpcCall(t, srv, `{"jsonrpc":"1.1","id":4,"method":"ping"}`); out.Error == nil || out.Error.Code != rpcInvalidRequest {
		t.Fatalf("bad version = %+v", out)
	}
}

// TestServerLifecycle exercises the real listener: New binds :0, serves,
// and Close makes further requests fail.
func TestServerLifecycle(t *testing.T) {
	cfg, _ := testConfig(nil)
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/stats", s.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

func TestNewRequiresRegistry(t *testing.T) {
	if _, err := New(Config{Addr: "127.0.0.1:0"}); !errors.Is(err, ErrNoRegistry) {
		t.Fatalf("err = %v", err)
	}
}
