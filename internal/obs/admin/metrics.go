package admin

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/tps-p2p/tps/internal/obs"
	"github.com/tps-p2p/tps/internal/obs/hist"
)

// metricsContentType is the Prometheus text exposition format version
// the /metrics endpoint speaks.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// renderMetrics renders a collected stats view in the Prometheus text
// exposition format: every counter becomes `tps_<subsystem>_<key>_total`,
// every gauge `tps_<subsystem>_<key>`, and every latency histogram a
// native Prometheus histogram (`_bucket{le=...}` cumulative series plus
// `_sum` and `_count`) with bucket bounds in microseconds, straight from
// the fixed log-linear layout in internal/obs/hist. The renderer reads
// only the snapshot document, so /metrics costs exactly one registry
// Collect — nothing is added to any hot path.
func renderMetrics(v obs.View) []byte {
	var b strings.Builder
	for _, s := range v.Subsystems {
		prefix := "tps_" + sanitizeMetric(s.Name) + "_"
		for _, k := range sortedMetricKeys(s.Counters) {
			name := prefix + sanitizeMetric(k) + "_total"
			fmt.Fprintf(&b, "# HELP %s Total %s.%s events since the peer started.\n", name, s.Name, k)
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
			fmt.Fprintf(&b, "%s %d\n", name, s.Counters[k])
		}
		for _, k := range sortedMetricKeys(s.Gauges) {
			name := prefix + sanitizeMetric(k)
			fmt.Fprintf(&b, "# HELP %s Current %s.%s level.\n", name, s.Name, k)
			fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
			fmt.Fprintf(&b, "%s %s\n", name, formatMetricValue(s.Gauges[k]))
		}
		for _, k := range sortedMetricKeys(s.Hists) {
			writeHistogram(&b, prefix+sanitizeMetric(k), s.Name, k, s.Hists[k])
		}
	}
	return []byte(b.String())
}

// writeHistogram emits one Prometheus histogram: cumulative bucket
// counts at each occupied bucket's upper bound, the mandatory +Inf
// bucket, then _sum and _count. Sparse snapshots stay sparse — an empty
// bucket range adds no series.
func writeHistogram(b *strings.Builder, name, subsystem, key string, sn hist.Snapshot) {
	fmt.Fprintf(b, "# HELP %s %s.%s latency distribution in microseconds.\n", name, subsystem, key)
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum int64
	for _, bk := range sn.Buckets {
		ub := hist.UpperBoundUS(bk.I)
		if math.IsInf(ub, 1) {
			// The overflow bucket is covered by the +Inf series below.
			break
		}
		cum += bk.N
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", name, strconv.FormatFloat(ub, 'f', -1, 64), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, sn.Count)
	fmt.Fprintf(b, "%s_sum %d\n", name, sn.SumUS)
	fmt.Fprintf(b, "%s_count %d\n", name, sn.Count)
}

// ValidateExposition checks a Prometheus text-format document for the
// invariants promtool's `check metrics` would enforce, without needing
// promtool in the build image: every sample carries a preceding TYPE,
// counter samples end in _total and never go negative, histogram bucket
// series have strictly increasing le bounds with non-decreasing
// cumulative counts, and every histogram closes with a +Inf bucket
// whose value equals its _count. Tests and CI call it against /metrics
// output; a nil return means a Prometheus scraper would accept the
// document.
func ValidateExposition(body string) error {
	type histState struct {
		lastLe   float64
		lastCum  float64
		infCount float64
		count    float64
		haveInf  bool
		haveSum  bool
		haveCnt  bool
	}
	types := make(map[string]string)
	hists := make(map[string]*histState)
	for ln, line := range strings.Split(body, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# TYPE ") {
				fields := strings.Fields(line[len("# TYPE "):])
				if len(fields) != 2 {
					return fmt.Errorf("line %d: malformed TYPE comment", lineNo)
				}
				name, typ := fields[0], fields[1]
				if typ != "counter" && typ != "gauge" && typ != "histogram" {
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				types[name] = typ
				if typ == "histogram" {
					hists[name] = &histState{lastLe: math.Inf(-1)}
				}
			}
			continue
		}
		// Sample line: name[{labels}] value
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				return fmt.Errorf("line %d: unbalanced label braces", lineNo)
			}
			name, labels = line[:i], line[i+1:j]
			line = line[:i] + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("line %d: want 'name value', got %d fields", lineNo, len(fields))
		}
		if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i]
		}
		if sanitizeMetric(name) != name {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad sample value %q: %v", lineNo, fields[1], err)
		}
		base, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name {
				if _, isHist := hists[trimmed]; isHist {
					base, suffix = trimmed, sfx
				}
				break
			}
		}
		typ, ok := types[base]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no TYPE", lineNo, name)
		}
		switch {
		case typ == "counter":
			if !strings.HasSuffix(name, "_total") {
				return fmt.Errorf("line %d: counter %s must end in _total", lineNo, name)
			}
			if val < 0 {
				return fmt.Errorf("line %d: counter %s is negative", lineNo, name)
			}
		case typ == "histogram" && suffix == "_bucket":
			h := hists[base]
			le, err := parseLe(labels)
			if err != nil {
				return fmt.Errorf("line %d: %s: %v", lineNo, name, err)
			}
			if le <= h.lastLe {
				return fmt.Errorf("line %d: %s le=%v not increasing", lineNo, name, le)
			}
			if val < h.lastCum {
				return fmt.Errorf("line %d: %s cumulative count decreased", lineNo, name)
			}
			h.lastLe, h.lastCum = le, val
			if math.IsInf(le, 1) {
				h.haveInf, h.infCount = true, val
			}
		case typ == "histogram" && suffix == "_sum":
			hists[base].haveSum = true
		case typ == "histogram" && suffix == "_count":
			h := hists[base]
			h.haveCnt, h.count = true, val
		case typ == "histogram":
			return fmt.Errorf("line %d: histogram %s sample lacks _bucket/_sum/_count", lineNo, name)
		}
	}
	for name, h := range hists {
		if !h.haveInf || !h.haveSum || !h.haveCnt {
			return fmt.Errorf("histogram %s incomplete (inf=%v sum=%v count=%v)", name, h.haveInf, h.haveSum, h.haveCnt)
		}
		if h.infCount != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", name, h.infCount, h.count)
		}
	}
	return nil
}

// parseLe extracts the le bound from a bucket's label set.
func parseLe(labels string) (float64, error) {
	for _, kv := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k != "le" {
			continue
		}
		v = strings.Trim(v, `"`)
		if v == "+Inf" {
			return math.Inf(1), nil
		}
		return strconv.ParseFloat(v, 64)
	}
	return 0, errors.New("bucket sample has no le label")
}

// sanitizeMetric maps a subsystem or key name into the Prometheus
// metric-name alphabet [a-zA-Z0-9_]. Our names are lower_snake already;
// this is a guard, not a transformation.
func sanitizeMetric(s string) string {
	ok := true
	for i := 0; i < len(s); i++ {
		if !isMetricChar(s[i]) {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	out := []byte(s)
	for i, c := range out {
		if !isMetricChar(c) {
			out[i] = '_'
		}
	}
	return string(out)
}

func isMetricChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// sortedMetricKeys returns the map's keys sorted, so the exposition is
// deterministic and diffs cleanly.
func sortedMetricKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatMetricValue renders a gauge sample. Integral values print
// without an exponent so the common case (counts used as levels) stays
// human-readable.
func formatMetricValue(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
