package admin

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/obs"
	"github.com/tps-p2p/tps/internal/obs/hist"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// metricsTestView builds a deterministic multi-subsystem view: fixed
// counters, a gauge, and a histogram spanning the linear range, the
// log-linear range and the overflow bucket.
func metricsTestView() obs.View {
	reg := obs.NewRegistry()
	at := time.UnixMilli(1_700_000_000_000)
	reg.SetClock(func() time.Time { return at })
	h := hist.New()
	for _, d := range []time.Duration{
		3 * time.Microsecond,
		40 * time.Microsecond,
		40 * time.Microsecond,
		2 * time.Millisecond,
		120 * time.Second, // past MaxValueUS: lands in the overflow bucket
	} {
		h.Observe(d)
	}
	reg.RegisterFunc("engine", func() obs.Snapshot {
		return obs.Snapshot{Name: "engine", Version: 2,
			Counters: map[string]int64{"published": 42, "delivered": 40},
			Gauges:   map[string]float64{"subscriptions": 2},
			Hists:    map[string]hist.Snapshot{"publish_fanout_us": h.Snapshot()},
		}
	})
	reg.RegisterFunc("seen", func() obs.Snapshot {
		return obs.Snapshot{Name: "seen", Version: 1,
			Counters: map[string]int64{"observed": 7, "duplicates": 3},
			Gauges:   map[string]float64{"occupancy_ratio": 0.25},
		}
	})
	return reg.Collect()
}

// TestMetricsGolden pins the exact Prometheus text exposition byte for
// byte. Run with -update to regenerate after an intentional format
// change.
func TestMetricsGolden(t *testing.T) {
	got := renderMetrics(metricsTestView())
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if err := ValidateExposition(string(got)); err != nil {
		t.Fatalf("golden exposition invalid: %v", err)
	}
}

// TestMetricsEndpoint checks the live endpoint: content type, validity,
// and that every counter and histogram the registry carries appears in
// the exposition under its prometheus name.
func TestMetricsEndpoint(t *testing.T) {
	cfg, published := testConfig(nil)
	published.Store(9)
	srv := httptest.NewServer(Handler(cfg))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	// Coverage: every registry counter must appear as a _total series.
	for _, s := range cfg.Registry.Collect().Subsystems {
		for k := range s.Counters {
			name := "tps_" + s.Name + "_" + k + "_total"
			if !strings.Contains(body, "\n"+name+" ") && !strings.HasPrefix(body, name+" ") {
				t.Errorf("counter %s.%s missing from exposition (want %s)", s.Name, k, name)
			}
		}
		for k := range s.Hists {
			name := "tps_" + s.Name + "_" + k + "_count"
			if !strings.Contains(body, name+" ") {
				t.Errorf("histogram %s.%s missing from exposition", s.Name, k)
			}
		}
	}
	if !strings.Contains(body, "tps_engine_published_total 9") {
		t.Fatalf("live counter value missing:\n%s", body)
	}
}

// TestValidateExpositionRejects feeds the validator documents a
// Prometheus scraper would reject.
func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "tps_x_total 1\n",
		"counter not _total":  "# TYPE tps_x counter\ntps_x 1\n",
		"negative counter":    "# TYPE tps_x_total counter\ntps_x_total -1\n",
		"le not increasing": "# TYPE tps_h histogram\n" +
			"tps_h_bucket{le=\"5\"} 1\ntps_h_bucket{le=\"2\"} 2\n" +
			"tps_h_bucket{le=\"+Inf\"} 2\ntps_h_sum 3\ntps_h_count 2\n",
		"cumulative decreases": "# TYPE tps_h histogram\n" +
			"tps_h_bucket{le=\"2\"} 3\ntps_h_bucket{le=\"5\"} 1\n" +
			"tps_h_bucket{le=\"+Inf\"} 3\ntps_h_sum 3\ntps_h_count 3\n",
		"histogram without +Inf": "# TYPE tps_h histogram\n" +
			"tps_h_bucket{le=\"2\"} 1\ntps_h_sum 2\ntps_h_count 1\n",
		"+Inf != count": "# TYPE tps_h histogram\n" +
			"tps_h_bucket{le=\"+Inf\"} 2\ntps_h_sum 3\ntps_h_count 3\n",
		"garbage value": "# TYPE tps_x_total counter\ntps_x_total banana\n",
	}
	for label, doc := range cases {
		if err := ValidateExposition(doc); err == nil {
			t.Errorf("%s: accepted invalid document", label)
		}
	}
	if err := ValidateExposition(string(renderMetrics(metricsTestView()))); err != nil {
		t.Errorf("rejected valid document: %v", err)
	}
}

// TestTraceEndpoints exercises /trace and /trace/{id}: the event list,
// one event's hops, and the empty-not-404 contract for unknown IDs.
func TestTraceEndpoints(t *testing.T) {
	cfg, _ := testConfig(nil)
	store := trace.NewStore(0)
	at := time.UnixMicro(1_000_000)
	store.SetClock(func() time.Time { return at })
	ev, peer := jid.NewMessage(), jid.NewPeer()
	store.Record(ev, trace.StagePublish, peer, 999_000, nil)
	store.Record(ev, trace.StageDeliver, peer, 999_000, []jid.ID{peer})
	cfg.Trace = store
	srv := httptest.NewServer(Handler(cfg))
	defer srv.Close()

	var list struct {
		Schema int                  `json:"schema"`
		Events []trace.EventSummary `json:"events"`
	}
	getJSON(t, srv, "/trace", http.StatusOK, &list)
	if list.Schema != obs.SchemaVersion || len(list.Events) != 1 {
		t.Fatalf("trace list = %+v", list)
	}
	if list.Events[0].EventID != ev.String() || list.Events[0].Hops != 2 {
		t.Fatalf("event summary = %+v", list.Events[0])
	}

	var doc struct {
		EventID string      `json:"event_id"`
		Hops    []trace.Hop `json:"hops"`
	}
	getJSON(t, srv, "/trace/"+ev.String(), http.StatusOK, &doc)
	if doc.EventID != ev.String() || len(doc.Hops) != 2 {
		t.Fatalf("trace doc = %+v", doc)
	}
	if doc.Hops[0].Stage != trace.StagePublish || doc.Hops[1].Path == nil {
		t.Fatalf("hops = %+v", doc.Hops)
	}

	getJSON(t, srv, "/trace/"+jid.NewMessage().String(), http.StatusOK, &doc)
	if len(doc.Hops) != 0 {
		t.Fatalf("unknown event hops = %+v", doc.Hops)
	}
}

// TestTraceRouteAbsentWithoutStore pins that peers without a trace
// store don't serve the route at all.
func TestTraceRouteAbsentWithoutStore(t *testing.T) {
	cfg, _ := testConfig(nil)
	srv := httptest.NewServer(Handler(cfg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /trace without store = %d, want 404", resp.StatusCode)
	}
}

// TestProfilingFlag pins that pprof is absent by default and mounted
// with Config.Profiling.
func TestProfilingFlag(t *testing.T) {
	cfg, _ := testConfig(nil)
	srv := httptest.NewServer(Handler(cfg))
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without flag: %d", resp.StatusCode)
	}

	cfg.Profiling = true
	srv = httptest.NewServer(Handler(cfg))
	defer srv.Close()
	resp, err = srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline with flag = %d", resp.StatusCode)
	}
}
