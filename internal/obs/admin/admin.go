// Package admin embeds an HTTP/JSON-RPC control-plane server in a TPS
// peer: the read side of the observability story. It serves the obs
// registry's stats view and the peer's structural introspection over
// plain GETs (curl-friendly) and a small JSON-RPC 2.0 method set over
// one POST endpoint (tool-friendly) — the tendermint rpc/http_server
// shape, scoped down to what a pub/sub peer needs.
//
// Endpoints, all rooted at the configured listen address:
//
//	GET  /stats          — obs.View: every subsystem's counters, gauges, rates
//	GET  /metrics        — the same registry in Prometheus text exposition
//	GET  /peers          — connected peers, leases, failure-detector state
//	GET  /subscriptions  — live subscription table across engines
//	GET  /trace          — retained traced events; /trace/{event-id} for hops
//	GET  /health         — 200 {"status":"ok"} or 503 {"status":"degraded",...}
//	POST /rpc            — JSON-RPC 2.0: stats, peers, subscriptions, health, ping
//
// With Config.Profiling set, net/http/pprof is additionally mounted
// under /debug/pprof/.
//
// The server is off unless explicitly configured (tps.Config.AdminAddr)
// and binds whatever address it is given — bind loopback unless the
// network is trusted; there is no authentication layer.
package admin

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"github.com/tps-p2p/tps/internal/obs"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

// DefaultPort is the conventional admin port, used by cmd/rendezvous
// and assumed by cmd/tpsctl when only a seed address is given.
const DefaultPort = 7700

// closeTimeout bounds graceful shutdown: in-flight requests get this
// long before the listener is torn down hard.
const closeTimeout = 2 * time.Second

// Config wires the server to its data sources. Registry is mandatory;
// nil Inspect or Health degrade the corresponding endpoints gracefully
// (empty inspection, always-ok health).
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7700" or ":0".
	Addr string
	// Registry supplies GET /stats.
	Registry *obs.Registry
	// Inspect supplies GET /peers and /subscriptions.
	Inspect func() obs.Inspection
	// Health reports nil when the peer is healthy; the error becomes
	// the degradation reason on GET /health (status 503).
	Health func() error
	// Trace, when set, serves the peer-local hop-trace archive: GET
	// /trace lists retained traced events, GET /trace/{event-id} returns
	// this peer's hop records for one event (clients merge the documents
	// from several peers with trace.Assemble).
	Trace *trace.Store
	// Profiling mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose memory contents and cost CPU to capture —
	// enable only on loopback-bound addresses or trusted networks.
	Profiling bool
}

// Server is a running admin endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ErrNoRegistry is returned by New when Config.Registry is nil.
var ErrNoRegistry = errors.New("admin: nil stats registry")

// New binds the address and starts serving. Close releases it.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, ErrNoRegistry
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(cfg), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains in-flight requests briefly, then tears the server down.
// Platform.Close calls it before the substrate stops, so /stats never
// observes a half-closed peer.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// Handler builds the admin mux for the given sources. New uses it; tests
// mount it on httptest servers.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, cfg.Registry.Collect())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		w.Header().Set("Content-Type", metricsContentType)
		w.WriteHeader(http.StatusOK)
		w.Write(renderMetrics(cfg.Registry.Collect()))
	})
	if cfg.Trace != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			if !allowGet(w, r) {
				return
			}
			writeJSON(w, http.StatusOK, traceListDoc(cfg.Trace))
		})
		mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
			if !allowGet(w, r) {
				return
			}
			id := strings.TrimPrefix(r.URL.Path, "/trace/")
			writeJSON(w, http.StatusOK, traceEventDoc(cfg.Trace, id))
		})
	}
	if cfg.Profiling {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/peers", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		in := inspect(cfg)
		writeJSON(w, http.StatusOK, peersDoc(in))
	})
	mux.HandleFunc("/subscriptions", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		in := inspect(cfg)
		writeJSON(w, http.StatusOK, subscriptionsDoc(in))
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		if !allowGet(w, r) {
			return
		}
		doc, code := healthDoc(cfg)
		writeJSON(w, code, doc)
	})
	mux.HandleFunc("/rpc", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "rpc is POST-only", http.StatusMethodNotAllowed)
			return
		}
		serveRPC(cfg, w, r)
	})
	return mux
}

func inspect(cfg Config) obs.Inspection {
	if cfg.Inspect == nil {
		return obs.Inspection{Schema: obs.SchemaVersion}
	}
	return cfg.Inspect()
}

// peersDoc trims an Inspection to its peer table, keeping the identity
// envelope so the document stands alone.
func peersDoc(in obs.Inspection) any {
	return struct {
		Schema int             `json:"schema"`
		PeerID string          `json:"peer_id"`
		Name   string          `json:"name,omitempty"`
		Peers  []obs.PeerEntry `json:"peers"`
	}{in.Schema, in.PeerID, in.Name, orEmptyPeers(in.Peers)}
}

// subscriptionsDoc trims an Inspection to its subscription table.
func subscriptionsDoc(in obs.Inspection) any {
	return struct {
		Schema        int                     `json:"schema"`
		PeerID        string                  `json:"peer_id"`
		Types         []string                `json:"types,omitempty"`
		Subscriptions []obs.SubscriptionEntry `json:"subscriptions"`
	}{in.Schema, in.PeerID, in.Types, orEmptySubs(in.Subscriptions)}
}

// traceListDoc lists the traced events this peer retains.
func traceListDoc(s *trace.Store) any {
	events := s.Events()
	if events == nil {
		events = []trace.EventSummary{}
	}
	return struct {
		Schema int                  `json:"schema"`
		Events []trace.EventSummary `json:"events"`
	}{obs.SchemaVersion, events}
}

// traceEventDoc returns this peer's hop records for one event. Unknown
// events yield an empty hops array rather than 404: a cross-peer trace
// query asks every peer and merges whatever each one saw, and "saw
// nothing" is a valid answer.
func traceEventDoc(s *trace.Store, eventID string) any {
	hops := s.Hops(eventID)
	if hops == nil {
		hops = []trace.Hop{}
	}
	return struct {
		Schema  int         `json:"schema"`
		EventID string      `json:"event_id"`
		Hops    []trace.Hop `json:"hops"`
	}{obs.SchemaVersion, eventID, hops}
}

func healthDoc(cfg Config) (any, int) {
	type doc struct {
		Schema int    `json:"schema"`
		Status string `json:"status"`
		Reason string `json:"reason,omitempty"`
	}
	if cfg.Health != nil {
		if err := cfg.Health(); err != nil {
			return doc{obs.SchemaVersion, "degraded", err.Error()}, http.StatusServiceUnavailable
		}
	}
	return doc{Schema: obs.SchemaVersion, Status: "ok"}, http.StatusOK
}

// orEmptyPeers keeps /peers serving `"peers": []` rather than `null`.
func orEmptyPeers(in []obs.PeerEntry) []obs.PeerEntry {
	if in == nil {
		return []obs.PeerEntry{}
	}
	return in
}

func orEmptySubs(in []obs.SubscriptionEntry) []obs.SubscriptionEntry {
	if in == nil {
		return []obs.SubscriptionEntry{}
	}
	return in
}

func allowGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "read-only endpoint", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf)
	w.Write([]byte{'\n'})
}

// JSON-RPC 2.0 error codes (the standard set).
const (
	rpcParseError     = -32700
	rpcInvalidRequest = -32600
	rpcMethodNotFound = -32601
)

type rpcRequest struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params"`
}

type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

type rpcResponse struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  any             `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
}

// serveRPC answers one JSON-RPC request. Methods mirror the GET
// endpoints one-to-one so every client can pick its transport style.
func serveRPC(cfg Config, w http.ResponseWriter, r *http.Request) {
	var req rpcRequest
	resp := rpcResponse{JSONRPC: "2.0"}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		resp.Error = &rpcError{rpcParseError, "parse error: " + err.Error()}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.ID = req.ID
	if req.JSONRPC != "" && req.JSONRPC != "2.0" {
		resp.Error = &rpcError{rpcInvalidRequest, "unsupported jsonrpc version " + req.JSONRPC}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	switch req.Method {
	case "stats":
		resp.Result = cfg.Registry.Collect()
	case "peers":
		resp.Result = peersDoc(inspect(cfg))
	case "subscriptions":
		resp.Result = subscriptionsDoc(inspect(cfg))
	case "inspect":
		resp.Result = inspect(cfg)
	case "health":
		doc, _ := healthDoc(cfg)
		resp.Result = doc
	case "ping":
		resp.Result = "pong"
	default:
		resp.Error = &rpcError{rpcMethodNotFound, "unknown method " + req.Method}
	}
	writeJSON(w, http.StatusOK, resp)
}
