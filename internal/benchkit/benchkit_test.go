package benchkit

import (
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/benchstats"
)

// fastProfile compresses the simulation so the whole suite runs in
// seconds while preserving the ratios between stacks.
func fastProfile() Profile { return Paper2001(0.002) }

func newTestCluster(t *testing.T, stack Stack, pubs, subs int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{Stack: stack, Publishers: pubs, Subscribers: subs, Profile: fastProfile()})
	if err != nil {
		t.Fatalf("cluster %v: %v", stack, err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterDeliversOnAllStacks(t *testing.T) {
	for _, stack := range DefaultStacks {
		stack := stack
		t.Run(stack.String(), func(t *testing.T) {
			c := newTestCluster(t, stack, 1, 2)
			base := c.ReceivedTotal()
			const n = 5
			for i := 0; i < n; i++ {
				if err := c.Pubs[0].Publish(c.Offer(i)); err != nil {
					t.Fatal(err)
				}
			}
			deadline := time.Now().Add(10 * time.Second)
			for c.ReceivedTotal() < base+2*n {
				if time.Now().After(deadline) {
					t.Fatalf("delivered %d of %d", c.ReceivedTotal()-base, 2*n)
				}
				time.Sleep(10 * time.Millisecond)
			}
			if got := c.Pubs[0].Sent(); got < n {
				t.Fatalf("Sent = %d", got)
			}
		})
	}
}

func TestInvocationTimeShape(t *testing.T) {
	// The paper's headline: SR-TPS ≈ SR-JXTA, both ≥ raw WIRE.
	means := map[Stack]float64{}
	for _, stack := range DefaultStacks {
		c := newTestCluster(t, stack, 1, 1)
		points, err := InvocationTime(c, 30)
		if err != nil {
			t.Fatal(err)
		}
		if len(points) != 30 {
			t.Fatalf("points = %d", len(points))
		}
		means[stack] = benchstats.Mean(points)
	}
	t.Logf("invocation means ms/msg: WIRE=%.4f SR-JXTA=%.4f SR-TPS=%.4f",
		means[StackWire], means[StackSRJXTA], means[StackSRTPS])
	// Allow generous tolerance: micro-benchmarks in CI jitter, but TPS
	// being an order of magnitude slower than SR-JXTA would signal a
	// layering bug.
	if means[StackSRTPS] > means[StackSRJXTA]*5 {
		t.Fatalf("SR-TPS invocation %fx slower than SR-JXTA", means[StackSRTPS]/means[StackSRJXTA])
	}
}

func TestSubscriberThroughputSaturates(t *testing.T) {
	// Figure 20's key shape: the subscriber's receive rate plateaus at
	// its processing capacity no matter how fast the publisher floods.
	c := newTestCluster(t, StackWire, 1, 1)
	window := 50 * time.Millisecond
	points, err := SubscriberThroughput(c, 2000, window, 10)
	if err != nil {
		t.Fatal(err)
	}
	mean := benchstats.Mean(points[2:]) // skip ramp-up windows
	// Capacity at scale 0.002: perMsg 120µs + 1910B/15MB/s ≈ 247µs
	// ⇒ ≈4000/s. The observed plateau must be in that region, far below
	// the flood rate.
	if mean < 500 || mean > 20000 {
		t.Fatalf("plateau %f events/s outside plausible band", mean)
	}
	t.Logf("subscriber plateau: %.0f events/s", mean)
}

func TestProfileScaling(t *testing.T) {
	p1 := Paper2001(1.0)
	p2 := Paper2001(0.1)
	if p1.SubPerMsg != 10*p2.SubPerMsg {
		t.Fatalf("SubPerMsg not scaled: %v vs %v", p1.SubPerMsg, p2.SubPerMsg)
	}
	if p2.SubBandwidth != 10*p1.SubBandwidth {
		t.Fatalf("SubBandwidth not scaled inversely: %d vs %d", p1.SubBandwidth, p2.SubBandwidth)
	}
	if Paper2001(0).Scale != 1 {
		t.Fatal("zero scale should default to 1")
	}
}

func TestStackString(t *testing.T) {
	if StackWire.String() != "JXTA-WIRE" || StackSRJXTA.String() != "SR-JXTA" || StackSRTPS.String() != "SR-TPS" {
		t.Fatal("stack names diverge from the paper's legends")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{Stack: StackWire}); err == nil {
		t.Fatal("zero participants accepted")
	}
	if _, err := NewCluster(Config{Stack: Stack(99), Publishers: 1, Subscribers: 1, Profile: fastProfile()}); err == nil {
		t.Fatal("unknown stack accepted")
	}
}
