package benchkit

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/peergroup"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/wire"
	"github.com/tps-p2p/tps/internal/srapp"
	"github.com/tps-p2p/tps/internal/srapp/srjxta"
	"github.com/tps-p2p/tps/internal/srapp/srtps"
)

// --- JXTA-WIRE: the lower-bound reference stack ---
//
// No discovery, no advertisements, no duplicate handling, no typed
// events: peers join one pre-agreed group, open the pre-agreed wire
// pipe, and move gob-encoded bytes. This is what the paper compares
// against "even if JXTA-WIRE alone is not comparable ... since it does
// not insure the properties described in Section 4.4".

var (
	wireGroupID = jid.FromSeed(jid.KindGroup, 0xBE_EF)
	wirePipeID  = jid.FromSeed(jid.KindPipe, 0xF0_0D)
)

func wirePipeAdv() *adv.PipeAdv {
	return &adv.PipeAdv{PipeID: wirePipeID, Type: adv.PipePropagate, Name: "bench.wire"}
}

type wirePub struct {
	out  *wire.OutputPipe
	self jid.ID
	sent atomic.Int64
}

func (w *wirePub) Publish(offer srapp.SkiRental) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(offer); err != nil {
		return err
	}
	m := message.New(w.self)
	m.AddBytes("bench", "payload", buf.Bytes())
	if err := w.out.Send(m); err != nil {
		return err
	}
	w.sent.Add(1)
	return nil
}

func (w *wirePub) Sent() int { return int(w.sent.Load()) }

type wireSub struct {
	received atomic.Int64
}

func (w *wireSub) Received() int { return int(w.received.Load()) }

func (c *Cluster) buildWire(pubAddrs []endpoint.Address) error {
	for i := 0; i < c.cfg.Publishers; i++ {
		node, err := c.pubNode(i)
		if err != nil {
			return err
		}
		p, err := newPeer(node.Name(), node, rendezvous.RoleRendezvous, nil)
		if err != nil {
			return err
		}
		c.closers = append(c.closers, p.Close)
		g, err := p.JoinGroup(peergroup.Config{ID: wireGroupID, Name: "bench.wire"})
		if err != nil {
			return err
		}
		out, err := g.Wire.CreateOutputPipe(wirePipeAdv())
		if err != nil {
			return err
		}
		c.Pubs = append(c.Pubs, &wirePub{out: out, self: p.ID()})
	}
	for j := 0; j < c.cfg.Subscribers; j++ {
		node, err := c.subNode(j)
		if err != nil {
			return err
		}
		p, err := newPeer(node.Name(), node, rendezvous.RoleEdge, pubAddrs)
		if err != nil {
			return err
		}
		c.closers = append(c.closers, p.Close)
		g, err := p.JoinGroup(peergroup.Config{ID: wireGroupID, Name: "bench.wire"})
		if err != nil {
			return err
		}
		in, err := g.Wire.CreateInputPipe(wirePipeAdv())
		if err != nil {
			return err
		}
		sub := &wireSub{}
		in.SetListener(func(*message.Message) { sub.received.Add(1) })
		c.Subs = append(c.Subs, sub)
	}
	return nil
}

// --- SR-JXTA: the hand-written application ---

type srjxtaPub struct{ app *srjxta.App }

func (s *srjxtaPub) Publish(offer srapp.SkiRental) error { return s.app.Publish(offer) }
func (s *srjxtaPub) Sent() int                           { return len(s.app.Sent()) }

type srjxtaSub struct {
	received atomic.Int64
}

func (s *srjxtaSub) Received() int { return int(s.received.Load()) }

func (c *Cluster) buildSRJXTA(pubAddrs []endpoint.Address) error {
	for i := 0; i < c.cfg.Publishers; i++ {
		node, err := c.pubNode(i)
		if err != nil {
			return err
		}
		p, err := newPeer(node.Name(), node, rendezvous.RoleRendezvous, nil)
		if err != nil {
			return err
		}
		c.closers = append(c.closers, p.Close)
		if _, err := p.EnableDaemon(); err != nil {
			return err
		}
		// The first publisher creates the type advertisement quickly;
		// later ones find it through the mesh.
		timeout := 300 * time.Millisecond
		if i > 0 {
			timeout = 3 * time.Second
		}
		app, err := srjxta.New(p, timeout)
		if err != nil {
			return fmt.Errorf("srjxta publisher %d: %w", i, err)
		}
		c.closers = append(c.closers, app.Close)
		c.Pubs = append(c.Pubs, &srjxtaPub{app: app})
	}
	for j := 0; j < c.cfg.Subscribers; j++ {
		node, err := c.subNode(j)
		if err != nil {
			return err
		}
		p, err := newPeer(node.Name(), node, rendezvous.RoleEdge, pubAddrs)
		if err != nil {
			return err
		}
		c.closers = append(c.closers, p.Close)
		app, err := srjxta.New(p, 5*time.Second)
		if err != nil {
			return fmt.Errorf("srjxta subscriber %d: %w", j, err)
		}
		c.closers = append(c.closers, app.Close)
		sub := &srjxtaSub{}
		if err := app.Subscribe(func(srapp.SkiRental) { sub.received.Add(1) }); err != nil {
			return err
		}
		c.Subs = append(c.Subs, sub)
	}
	return nil
}

// --- SR-TPS: the application over the TPS layer ---

type srtpsPub struct{ app *srtps.App }

func (s *srtpsPub) Publish(offer srapp.SkiRental) error { return s.app.Publish(offer) }
func (s *srtpsPub) Sent() int                           { return len(s.app.Sent()) }

type srtpsSub struct {
	received atomic.Int64
}

func (s *srtpsSub) Received() int { return int(s.received.Load()) }

func (c *Cluster) buildSRTPS(pubAddrs []endpoint.Address) error {
	for i := 0; i < c.cfg.Publishers; i++ {
		node, err := c.pubNode(i)
		if err != nil {
			return err
		}
		platform, err := newPlatform(node.Name(), node, true, nil)
		if err != nil {
			return err
		}
		c.closers = append(c.closers, platform.Close)
		app, err := srtps.New(platform)
		if err != nil {
			return fmt.Errorf("srtps publisher %d: %w", i, err)
		}
		c.closers = append(c.closers, app.Close)
		c.Pubs = append(c.Pubs, &srtpsPub{app: app})
	}
	for j := 0; j < c.cfg.Subscribers; j++ {
		node, err := c.subNode(j)
		if err != nil {
			return err
		}
		platform, err := newPlatform(node.Name(), node, false, pubAddrs)
		if err != nil {
			return err
		}
		c.closers = append(c.closers, platform.Close)
		app, err := srtps.New(platform)
		if err != nil {
			return fmt.Errorf("srtps subscriber %d: %w", j, err)
		}
		c.closers = append(c.closers, app.Close)
		sub := &srtpsSub{}
		if err := app.SubscribeFunc(func(srapp.SkiRental) { sub.received.Add(1) }); err != nil {
			return err
		}
		c.Subs = append(c.Subs, sub)
	}
	return nil
}
