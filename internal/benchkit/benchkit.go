// Package benchkit builds the measurement setups of the paper's §5: the
// same ski-rental workload on three stacks —
//
//   - WIRE: the raw JXTA wire service (the paper's lower-bound
//     reference, no TPS-equivalent functionality at all);
//   - SR-JXTA: the ski-rental application written directly on JXTA
//     (package srjxta);
//   - SR-TPS: the ski-rental application over the TPS layer (package
//     srtps);
//
// and the three experiment protocols: invocation time (Figure 18),
// publisher throughput (Figure 19) and subscriber throughput
// (Figure 20).
//
// Topology: publishers act as rendezvous and subscribers lease with
// every publisher, reproducing the LAN setup where the wire service
// fans out from the publishing side — which is why the paper's
// invocation time degrades with the number of subscribers.
//
// The netsim profile models the paper's 2001-era testbed (Sun Ultra 10,
// FastEthernet, JXTA 1.0): slow receiver-side processing bounds the
// subscriber throughput near the paper's ≈8 events/s at scale 1.0.
// Scale compresses all simulated costs proportionally so the full suite
// runs in seconds; ratios between stacks — the reproducible shape — are
// scale-invariant.
package benchkit

import (
	"errors"
	"fmt"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
	"github.com/tps-p2p/tps/internal/srapp"
)

// Stack selects the implementation under test.
type Stack int

// The three stacks of §5.
const (
	StackWire Stack = iota + 1
	StackSRJXTA
	StackSRTPS
)

// String returns the paper's name for the stack.
func (s Stack) String() string {
	switch s {
	case StackWire:
		return "JXTA-WIRE"
	case StackSRJXTA:
		return "SR-JXTA"
	case StackSRTPS:
		return "SR-TPS"
	default:
		return "stack(?)"
	}
}

// Profile calibrates the simulated testbed.
type Profile struct {
	// Scale compresses every simulated cost: 1.0 reproduces paper-like
	// absolute rates (a subscriber sustains ≈8 wire events/s), 0.01 runs
	// the same shape 100× faster.
	Scale float64
	// LinkLatency and LinkJitter shape the links.
	LinkLatency time.Duration
	LinkJitter  time.Duration
	// SubPerMsg and SubBandwidth model receiver-side processing cost
	// (per message + per byte); SubSwitch is the extra cost paid when
	// consecutive deliveries come from different senders (the paper's
	// multi-publisher collapse, §5.3).
	SubPerMsg    time.Duration
	SubBandwidth int
	SubSwitch    time.Duration
	// MessageBytes pads each event to the paper's message size.
	MessageBytes int
	// Seed drives the simulation's randomness.
	Seed int64
}

// Paper2001 returns the calibrated profile at the given scale.
// At scale 1.0 a subscriber processes a 1910-byte wire message in
// ≈60 ms + 1910 B / 30 kB/s ≈ 124 ms ⇒ ≈8 events/s, matching the
// paper's JXTA-WIRE plateau in Figure 20.
func Paper2001(scale float64) Profile {
	if scale <= 0 {
		scale = 1
	}
	return Profile{
		Scale:        scale,
		LinkLatency:  scaleDur(2*time.Millisecond, scale),
		LinkJitter:   scaleDur(3*time.Millisecond, scale),
		SubPerMsg:    scaleDur(60*time.Millisecond, scale),
		SubBandwidth: int(30_000 / scale),
		SubSwitch:    scaleDur(250*time.Millisecond, scale),
		MessageBytes: 1910,
		Seed:         1,
	}
}

func scaleDur(d time.Duration, scale float64) time.Duration {
	return time.Duration(float64(d) * scale)
}

// Publisher is the sending side of a stack.
type Publisher interface {
	// Publish sends one offer.
	Publish(offer srapp.SkiRental) error
	// Sent returns how many offers this publisher has sent.
	Sent() int
}

// Subscriber is the receiving side of a stack.
type Subscriber interface {
	// Received returns how many offers this subscriber has received.
	Received() int
}

// Config describes one measurement cluster.
type Config struct {
	Stack       Stack
	Publishers  int
	Subscribers int
	Profile     Profile
}

// Cluster is a ready-to-measure fleet: publishers (acting as
// rendezvous), subscribers, and the simulated WAN between them.
type Cluster struct {
	cfg  Config
	net  *netsim.Network
	Pubs []Publisher
	Subs []Subscriber

	closers []func()
}

// ErrNotReady is returned when the cluster cannot reach its connected
// steady state in time.
var ErrNotReady = errors.New("benchkit: cluster never became ready")

// NewCluster builds and connects a cluster, blocking until every
// subscriber provably receives from every publisher (warm-up events).
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Publishers < 1 || cfg.Subscribers < 1 {
		return nil, errors.New("benchkit: need at least one publisher and one subscriber")
	}
	if cfg.Profile.Scale == 0 {
		cfg.Profile = Paper2001(0.01)
	}
	c := &Cluster{
		cfg: cfg,
		net: netsim.New(netsim.Config{
			Seed: cfg.Profile.Seed,
			DefaultLink: netsim.Link{
				Latency: cfg.Profile.LinkLatency,
				Jitter:  cfg.Profile.LinkJitter,
			},
		}),
	}
	c.closers = append(c.closers, c.net.Close)

	pubAddrs := make([]endpoint.Address, 0, cfg.Publishers)
	for i := 0; i < cfg.Publishers; i++ {
		pubAddrs = append(pubAddrs, endpoint.Address(fmt.Sprintf("mem://pub%d", i)))
	}
	var err error
	switch cfg.Stack {
	case StackWire:
		err = c.buildWire(pubAddrs)
	case StackSRJXTA:
		err = c.buildSRJXTA(pubAddrs)
	case StackSRTPS:
		err = c.buildSRTPS(pubAddrs)
	default:
		err = fmt.Errorf("benchkit: unknown stack %d", cfg.Stack)
	}
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := c.warmUp(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// pubNode creates the netsim node + peer for publisher i (rendezvous
// role; subscribers lease with it).
func (c *Cluster) pubNode(i int) (*netsim.Node, error) {
	return c.net.AddNode(fmt.Sprintf("pub%d", i))
}

// subNode creates the netsim node for subscriber j with the profile's
// receiver-side processing cost.
func (c *Cluster) subNode(j int) (*netsim.Node, error) {
	return c.net.AddNode(fmt.Sprintf("sub%d", j),
		netsim.WithProcessing(c.cfg.Profile.SubPerMsg, c.cfg.Profile.SubBandwidth),
		netsim.WithSwitchPenalty(c.cfg.Profile.SubSwitch))
}

// newPeer assembles a jxta peer on a node.
func newPeer(name string, node *netsim.Node, role rendezvous.Role, seeds []endpoint.Address) (*peer.Peer, error) {
	return peer.New(peer.Config{
		Name:     name,
		Role:     role,
		Seeds:    seeds,
		LeaseTTL: 10 * time.Second,
	}, memnet.New(node))
}

// newPlatform assembles a TPS platform on a node.
func newPlatform(name string, node *netsim.Node, isRdv bool, seeds []endpoint.Address) (*tps.Platform, error) {
	strSeeds := make([]string, len(seeds))
	for i, s := range seeds {
		strSeeds[i] = string(s)
	}
	return tps.NewPlatform(tps.Config{
		Name:         name,
		Rendezvous:   isRdv,
		Seeds:        strSeeds,
		LeaseTTL:     10 * time.Second,
		FindTimeout:  500 * time.Millisecond,
		FindInterval: 100 * time.Millisecond,
	}, tps.WithTransport(memnet.New(node)))
}

// warmUp publishes marker events from every publisher until every
// subscriber has received at least one event from each round, proving
// the mesh is fully connected before measurement starts.
func (c *Cluster) warmUp() error {
	deadline := time.Now().Add(30 * time.Second)
	for p, pub := range c.Pubs {
		base := make([]int, len(c.Subs))
		for j, sub := range c.Subs {
			base[j] = sub.Received()
		}
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("%w: publisher %d unseen by some subscriber", ErrNotReady, p)
			}
			if err := pub.Publish(srapp.SkiRental{Shop: "warmup", Brand: "warmup"}); err == nil {
				allSeen := true
				probeDeadline := time.Now().Add(time.Second)
				for allSeen {
					allSeen = true
					for j, sub := range c.Subs {
						if sub.Received() <= base[j] {
							allSeen = false
							break
						}
					}
					if allSeen || time.Now().After(probeDeadline) {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				if allSeen {
					break
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	// Let in-flight warm-up traffic drain so it does not pollute the
	// measurement.
	c.net.WaitQuiesce(10 * time.Second)
	return nil
}

// Offer builds the padded test offer used by all experiments.
func (c *Cluster) Offer(i int) srapp.SkiRental {
	offer := srapp.SkiRental{
		Shop:         "XTremShop",
		Brand:        srapp.Brands[i%len(srapp.Brands)],
		Price:        14,
		NumberOfDays: 100,
	}
	// Pad to the paper's 1910-byte message size, minus a rough estimate
	// of envelope overhead so the wire frames land near the target.
	return srapp.Pad(offer, c.cfg.Profile.MessageBytes-200)
}

// ReceivedTotal sums all subscribers' receive counters.
func (c *Cluster) ReceivedTotal() int {
	total := 0
	for _, s := range c.Subs {
		total += s.Received()
	}
	return total
}

// WaitQuiesce drains in-flight traffic.
func (c *Cluster) WaitQuiesce(timeout time.Duration) bool {
	return c.net.WaitQuiesce(timeout)
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	for i := len(c.closers) - 1; i >= 0; i-- {
		c.closers[i]()
	}
	c.closers = nil
}
