package benchkit

import (
	"fmt"
	"time"

	"github.com/tps-p2p/tps/internal/benchstats"
)

// experiments.go implements the three measurement protocols of §5.

// InvocationTime reproduces Figure 18's protocol: the publisher produces
// `events` events one after another and the time taken by each send call
// is recorded (milliseconds per message). The paper uses 50 events.
func InvocationTime(c *Cluster, events int) ([]float64, error) {
	pub := c.Pubs[0]
	out := make([]float64, 0, events)
	for i := 0; i < events; i++ {
		offer := c.Offer(i)
		start := time.Now()
		if err := pub.Publish(offer); err != nil {
			return nil, fmt.Errorf("benchkit: invocation %d: %w", i, err)
		}
		out = append(out, float64(time.Since(start).Microseconds())/1000.0)
	}
	return out, nil
}

// PublisherThroughput reproduces Figure 19's protocol: the publisher
// delivers `events` events and the send-side rate is sampled per epoch
// of `epochSize` events (messages sent per second). The paper uses 100
// events in 10 epochs.
func PublisherThroughput(c *Cluster, events, epochSize int) ([]float64, error) {
	pub := c.Pubs[0]
	epochs := make([]float64, 0, events/epochSize)
	start := time.Now()
	for i := 0; i < events; i++ {
		if err := pub.Publish(c.Offer(i)); err != nil {
			return nil, fmt.Errorf("benchkit: publish %d: %w", i, err)
		}
		if (i+1)%epochSize == 0 {
			elapsed := time.Since(start)
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			epochs = append(epochs, float64(epochSize)/elapsed.Seconds())
			start = time.Now()
		}
	}
	return epochs, nil
}

// SubscriberThroughput reproduces Figure 20's protocol: every publisher
// floods `perPublisher` events; the first subscriber's receive counter
// is sampled every `window` for `samples` windows, yielding events
// received per second. The paper floods 10000 events per publisher and
// samples every second for 50 seconds.
func SubscriberThroughput(c *Cluster, perPublisher int, window time.Duration, samples int) ([]float64, error) {
	sub := c.Subs[0]
	errCh := make(chan error, len(c.Pubs))
	for _, pub := range c.Pubs {
		go func(p Publisher) {
			for i := 0; i < perPublisher; i++ {
				if err := p.Publish(c.Offer(i)); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(pub)
	}
	out := make([]float64, 0, samples)
	prev := sub.Received()
	for s := 0; s < samples; s++ {
		time.Sleep(window)
		now := sub.Received()
		out = append(out, float64(now-prev)/window.Seconds())
		prev = now
	}
	for range c.Pubs {
		if err := <-errCh; err != nil {
			return out, fmt.Errorf("benchkit: flood: %w", err)
		}
	}
	return out, nil
}

// FigureConfig selects participants for one figure run.
type FigureConfig struct {
	Profile     Profile
	Stacks      []Stack
	Counts      []int // subscriber counts (fig 18/19) or publisher counts (fig 20)
	Events      int   // fig 18: events measured; fig 19: total events; fig 20: events per publisher
	EpochSize   int   // fig 19
	Window      time.Duration
	SampleCount int // fig 20
}

// DefaultStacks is the paper's series order.
var DefaultStacks = []Stack{StackWire, StackSRJXTA, StackSRTPS}

// Figure18 measures invocation time for every (stack, subscriber count)
// combination and returns one series per combination, named as in the
// paper's legend.
func Figure18(cfg FigureConfig) ([]benchstats.Series, error) {
	var out []benchstats.Series
	for _, count := range cfg.Counts {
		for _, stack := range cfg.Stacks {
			c, err := NewCluster(Config{
				Stack: stack, Publishers: 1, Subscribers: count, Profile: cfg.Profile,
			})
			if err != nil {
				return nil, fmt.Errorf("fig18 %v/%d subs: %w", stack, count, err)
			}
			points, err := InvocationTime(c, cfg.Events)
			c.Close()
			if err != nil {
				return nil, fmt.Errorf("fig18 %v/%d subs: %w", stack, count, err)
			}
			out = append(out, benchstats.Series{
				Name:   fmt.Sprintf("%s %d sub(s)", stack, count),
				Points: points,
			})
		}
	}
	return out, nil
}

// Figure19 measures publisher throughput per epoch for every (stack,
// subscriber count) combination.
func Figure19(cfg FigureConfig) ([]benchstats.Series, error) {
	var out []benchstats.Series
	for _, count := range cfg.Counts {
		for _, stack := range cfg.Stacks {
			c, err := NewCluster(Config{
				Stack: stack, Publishers: 1, Subscribers: count, Profile: cfg.Profile,
			})
			if err != nil {
				return nil, fmt.Errorf("fig19 %v/%d subs: %w", stack, count, err)
			}
			points, err := PublisherThroughput(c, cfg.Events, cfg.EpochSize)
			c.Close()
			if err != nil {
				return nil, fmt.Errorf("fig19 %v/%d subs: %w", stack, count, err)
			}
			out = append(out, benchstats.Series{
				Name:   fmt.Sprintf("%s %d sub(s)", stack, count),
				Points: points,
			})
		}
	}
	return out, nil
}

// Figure20 measures subscriber throughput for every (stack, publisher
// count) combination.
func Figure20(cfg FigureConfig) ([]benchstats.Series, error) {
	var out []benchstats.Series
	for _, count := range cfg.Counts {
		for _, stack := range cfg.Stacks {
			c, err := NewCluster(Config{
				Stack: stack, Publishers: count, Subscribers: 1, Profile: cfg.Profile,
			})
			if err != nil {
				return nil, fmt.Errorf("fig20 %v/%d pubs: %w", stack, count, err)
			}
			points, err := SubscriberThroughput(c, cfg.Events, cfg.Window, cfg.SampleCount)
			c.Close()
			if err != nil {
				return nil, fmt.Errorf("fig20 %v/%d pubs: %w", stack, count, err)
			}
			out = append(out, benchstats.Series{
				Name:   fmt.Sprintf("%s %d pub(s)", stack, count),
				Points: points,
			})
		}
	}
	return out, nil
}
