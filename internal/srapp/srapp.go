// Package srapp holds the ski-rental application of the paper's §4: the
// event type shared by the TPS version (srtps) and the direct-JXTA
// version (srjxta), plus the scenario helpers the examples and the
// benchmark harness drive.
//
// "If you want to go skiing, you need skis" — shops publish rental
// offers, customers subscribe and compare them while doing something
// else. The two sub-packages implement the identical functionality so
// the programming-experience comparison (§4.4) and the performance
// comparison (§5) are apples to apples.
package srapp

import (
	"fmt"
	"math/rand"
)

// SkiRental is the paper's event type (§4.3.1): the name of the renter,
// the price, the brand of the skis and the number of days the skis are
// rented for.
type SkiRental struct {
	Shop         string
	Brand        string
	Price        float64
	NumberOfDays float64
}

// String renders the offer the way the paper's console callback prints
// it.
func (r SkiRental) String() string {
	return fmt.Sprintf("%s rents %s skis at %.2f CHF for %.0f days", r.Shop, r.Brand, r.Price, r.NumberOfDays)
}

// Brands and shops the demo generators draw from.
var (
	Brands = []string{"Salomon", "Atomic", "Rossignol", "K2", "Head", "Fischer"}
	Shops  = []string{"XTremShop", "AlpSports", "GlacierGear", "PowderPro"}
)

// RandomOffer generates a plausible rental offer from the given source.
func RandomOffer(rng *rand.Rand) SkiRental {
	return SkiRental{
		Shop:         Shops[rng.Intn(len(Shops))],
		Brand:        Brands[rng.Intn(len(Brands))],
		Price:        float64(8+rng.Intn(40)) + 0.5*float64(rng.Intn(2)),
		NumberOfDays: float64(1 + rng.Intn(14)),
	}
}

// Pad returns an offer padded so its encoded size approximates the
// paper's 1910-byte test messages: the Brand field carries the filler.
func Pad(offer SkiRental, targetBytes int) SkiRental {
	if targetBytes <= 0 {
		return offer
	}
	filler := make([]byte, targetBytes)
	for i := range filler {
		filler[i] = 'x'
	}
	offer.Brand = offer.Brand + "|" + string(filler)
	return offer
}
