// Package srtps is the ski-rental application written over the TPS API —
// the paper's §4.3 exhibit (SR-TPS).
//
// Note how little is here: the four phases are one type registration,
// two lines of initialization, a subscribe call with a callback and an
// exception handler, and a publish call. Everything else — finding or
// creating the type's advertisement, joining its peer group, opening
// wire pipes, managing multiple advertisements for the same type,
// suppressing duplicate messages — lives below the TPS abstraction.
// Compare with package srjxta, which rebuilds all of it by hand.
package srtps

import (
	"io"
	"sync"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/srapp"
)

// App is one peer's ski-rental application instance over TPS.
type App struct {
	engine *tps.Engine[srapp.SkiRental]
	intf   *tps.Interface[srapp.SkiRental]

	mu   sync.Mutex
	errs []error
}

// New builds the application on an existing TPS platform, running the
// paper's type-definition and initialization phases.
func New(platform *tps.Platform) (*App, error) {
	// Type definition phase: SkiRental joins the common type model.
	// Several application instances may share one platform, so an
	// already-registered type is fine.
	if err := tps.Register[srapp.SkiRental](platform); err != nil {
		// Duplicate registration only: any other error would also fail
		// engine creation below.
		_ = err
	}
	// Initialization phase: the engine and its interface.
	engine, err := tps.NewEngine[srapp.SkiRental](platform)
	if err != nil {
		return nil, err
	}
	intf, err := engine.NewInterface(nil)
	if err != nil {
		engine.Close()
		return nil, err
	}
	return &App{engine: engine, intf: intf}, nil
}

// SubscribeFunc runs the subscription phase with a plain function
// callback. Handling errors land in the app's error log.
func (a *App) SubscribeFunc(handle func(srapp.SkiRental)) error {
	cb := tps.CallBackFunc[srapp.SkiRental](func(r srapp.SkiRental) error {
		handle(r)
		return nil
	})
	return a.intf.Subscribe(cb, tps.ExceptionHandlerFunc(a.recordError))
}

// SubscribeConsole prints every offer to w — the paper's MyCBInterface.
func (a *App) SubscribeConsole(w io.Writer) error {
	return a.SubscribeFunc(func(r srapp.SkiRental) {
		_, _ = io.WriteString(w, "Skis that could be rented: "+r.String()+"\n")
	})
}

// Publish runs the publication phase for one offer.
func (a *App) Publish(offer srapp.SkiRental) error {
	return a.intf.Publish(offer)
}

// Received returns the offers received so far (the TPSInterface's
// objectsReceived).
func (a *App) Received() []srapp.SkiRental { return a.intf.ObjectsReceived() }

// Sent returns the offers published so far (objectsSent).
func (a *App) Sent() []srapp.SkiRental { return a.intf.ObjectsSent() }

// Errors returns the exceptions raised while handling events.
func (a *App) Errors() []error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]error(nil), a.errs...)
}

// AwaitReady blocks until the type's event group is attached and
// connected (benchmarks use it; the decoupled application does not).
func (a *App) AwaitReady(n int, timeout time.Duration) bool {
	return a.engine.AwaitReady(n, timeout)
}

// Close shuts the application down.
func (a *App) Close() {
	_ = a.intf.UnsubscribeAll()
	a.engine.Close()
}

func (a *App) recordError(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.errs = append(a.errs, err)
}
