package srjxta

import (
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/peer"
)

// AdvertisementsFinder is the hand-written analogue of the paper's
// Figure 16: a thread that keeps looking for peer-group advertisements
// whose name matches a prefix, de-duplicates them by group ID
// (findAdvertisement) and dispatches fresh ones to the registered
// listeners.
type AdvertisementsFinder struct {
	peer   *peer.Peer
	prefix string

	mu        sync.Mutex
	known     map[jid.ID]bool // group IDs already dispatched
	listeners []func(*adv.PeerGroupAdv)
	running   bool

	wg   sync.WaitGroup
	stop chan struct{}
}

// SleepingTime is the finder loop period — the paper's SLEEPING_TIME.
const SleepingTime = 250 * time.Millisecond

// NumberOfAdvPerPeer bounds each remote query's response size — the
// paper's NUMBER_OF_ADV_PER_PEER.
const NumberOfAdvPerPeer = 10

// NewAdvertisementsFinder builds a finder for advertisements whose name
// starts with prefix.
func NewAdvertisementsFinder(p *peer.Peer, prefix string) *AdvertisementsFinder {
	return &AdvertisementsFinder{
		peer:   p,
		prefix: prefix,
		known:  make(map[jid.ID]bool),
		stop:   make(chan struct{}),
	}
}

// AddListener registers a dispatch target for newly found
// advertisements.
func (f *AdvertisementsFinder) AddListener(l func(*adv.PeerGroupAdv)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.listeners = append(f.listeners, l)
}

// Start launches the finder thread. Like the paper's run(), it first
// flushes stale cached advertisements, then loops: remote query, sleep,
// local harvest, dispatch.
func (f *AdvertisementsFinder) Start() {
	f.mu.Lock()
	if f.running {
		f.mu.Unlock()
		return
	}
	f.running = true
	f.mu.Unlock()

	net := f.peer.NetGroup()
	if net != nil {
		net.Discovery.Flush(adv.Group)
	}
	f.wg.Add(1)
	go f.run()
}

// Stop terminates the finder thread.
func (f *AdvertisementsFinder) Stop() {
	f.mu.Lock()
	if !f.running {
		f.mu.Unlock()
		return
	}
	f.running = false
	f.mu.Unlock()
	close(f.stop)
	f.wg.Wait()
}

func (f *AdvertisementsFinder) run() {
	defer f.wg.Done()
	ticker := time.NewTicker(SleepingTime)
	defer ticker.Stop()
	for {
		f.findOnce()
		select {
		case <-ticker.C:
		case <-f.stop:
			return
		}
	}
}

func (f *AdvertisementsFinder) findOnce() {
	net := f.peer.NetGroup()
	if net == nil {
		return
	}
	// Remote query for fresh advertisements ("Name", prefix+"*").
	_ = net.Discovery.GetRemoteAdvertisements(adv.Group, "Name", f.prefix+"*", NumberOfAdvPerPeer)
	// Harvest whatever the local cache now holds.
	for _, rec := range net.Discovery.GetLocalAdvertisements(adv.Group, "Name", f.prefix+"*") {
		if pg, ok := rec.Adv.(*adv.PeerGroupAdv); ok {
			f.handleNewAdvertisement(pg)
		}
	}
}

// findAdvertisement reports whether the advertisement's group is already
// known — the paper's vector scan by GID.
func (f *AdvertisementsFinder) findAdvertisement(pg *adv.PeerGroupAdv) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.known[pg.GroupID]
}

// handleNewAdvertisement dispatches an advertisement exactly once.
func (f *AdvertisementsFinder) handleNewAdvertisement(pg *adv.PeerGroupAdv) {
	if f.findAdvertisement(pg) {
		return
	}
	f.mu.Lock()
	if f.known[pg.GroupID] {
		f.mu.Unlock()
		return
	}
	f.known[pg.GroupID] = true
	listeners := make([]func(*adv.PeerGroupAdv), len(f.listeners))
	copy(listeners, f.listeners)
	f.mu.Unlock()
	for _, l := range listeners {
		l(pg)
	}
}
