package srjxta

import (
	"fmt"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/wire"
)

// AdvertisementsCreator is the hand-written analogue of the paper's
// Figure 15: it assembles a peer-group advertisement embedding the wire
// service and its pipe, and publishes it both to the local cache and to
// the mesh.
type AdvertisementsCreator struct {
	peer *peer.Peer
}

// NewAdvertisementsCreator builds a creator on the peer's net group.
func NewAdvertisementsCreator(p *peer.Peer) *AdvertisementsCreator {
	return &AdvertisementsCreator{peer: p}
}

// CreatePeerGroupAdvertisement follows the paper's recipe line by line:
// create a PipeAdvertisement whose name is the type we are interested
// in, create the PeerGroupAdvertisement, and add the wire service
// (bound to the pipe) to its service table.
func (c *AdvertisementsCreator) CreatePeerGroupAdvertisement(name string) (*adv.PeerGroupAdv, error) {
	groupID := jid.NewGroup()
	pipeAdv := &adv.PipeAdv{
		PipeID: jid.NewPipeIn(groupID),
		Type:   adv.PipePropagate,
		Name:   name, // the pipe's name is the name of the type
	}
	groupAdv := &adv.PeerGroupAdv{
		GroupID:    groupID,
		PeerID:     c.peer.ID(),
		Name:       PSPrefix + pipeAdv.Name,
		Desc:       "ski-rental event group (hand-written)",
		GroupImpl:  "go-jxta-stdgroup",
		App:        "skirental",
		Rendezvous: true,
	}
	groupAdv.SetService(adv.ServiceAdv{
		Name:     wire.ServiceName,
		Version:  "1.0",
		Keywords: pipeAdv.Name,
		Pipe:     pipeAdv,
	})
	return groupAdv, nil
}

// PublishAdvertisement writes the advertisement to the local cache (for
// peers querying us) and pushes it to the other peers — the paper's
// publish + remotePublish pair.
func (c *AdvertisementsCreator) PublishAdvertisement(a adv.Advertisement) error {
	net := c.peer.NetGroup()
	if net == nil {
		return ErrClosed
	}
	if err := net.Discovery.Publish(a, 0, 0); err != nil {
		return fmt.Errorf("srjxta: publish advertisement: %w", err)
	}
	// Remote publication may fail while no rendezvous is connected yet;
	// the finder's periodic remote queries compensate, as in JXTA.
	_ = net.Discovery.RemotePublish(a, 0)
	return nil
}
