// Package srjxta is the ski-rental application written directly against
// the JXTA layer — the paper's §4.4 exhibit (SR-JXTA).
//
// It provides the very same functionality as the TPS version (package
// srtps): (1) minimisation of the number of advertisements for the same
// type, (2) management of multiple advertisements at the same time and
// (3) handling of duplicate messages — but every piece is written by
// hand against discovery, peer groups and wire pipes, in the style of
// the paper's AdvertisementsCreator (Figure 15), AdvertisementsFinder
// (Figure 16) and WireServiceFinder (Figure 17). The contrast in sheer
// code volume with srtps is the point.
package srjxta

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/seen"
	"github.com/tps-p2p/tps/internal/jxta/wire"
	"github.com/tps-p2p/tps/internal/srapp"
)

// PSPrefix matches the naming convention of the TPS layer so the two
// application versions can interoperate on the same mesh.
const PSPrefix = "PS."

// TypeName is the name of the one type this hand-written application
// supports. (TPS generalises this for free; here it is hard-coded, which
// is exactly the flexibility the abstraction buys.)
const TypeName = "SkiRental"

// ErrClosed is returned after Close.
var ErrClosed = errors.New("srjxta: closed")

// message elements
const (
	elemNS    = "skirental"
	elemEvent = "Event"
	elemID    = "EventID"
)

// App is one peer's hand-written ski-rental application.
type App struct {
	peer *peer.Peer

	creator *AdvertisementsCreator
	finder  *AdvertisementsFinder

	mu        sync.Mutex
	conns     map[jid.ID]*wireConnection // group ID -> live connection
	listeners []func(srapp.SkiRental)
	received  []srapp.SkiRental
	sent      []srapp.SkiRental
	dupes     *seen.Cache
	closed    bool
}

// wireConnection is one joined event group with its pipes (the paper's
// MyInputPipe/MyOutputPipe pair).
type wireConnection struct {
	groupID jid.ID
	in      *wire.InputPipe
	out     *wire.OutputPipe
}

// New builds the application on a running peer: it starts the
// advertisement finder, searches for an existing SkiRental
// advertisement, and creates its own if none shows up within
// findTimeout.
func New(p *peer.Peer, findTimeout time.Duration) (*App, error) {
	a := &App{
		peer:  p,
		conns: make(map[jid.ID]*wireConnection),
		dupes: seen.New(),
	}
	a.creator = NewAdvertisementsCreator(p)
	a.finder = NewAdvertisementsFinder(p, PSPrefix+TypeName)
	a.finder.AddListener(a.handleNewAdvertisement)
	a.finder.Start()

	// Initialization: look for an existing advertisement for the type...
	if !a.awaitConnection(findTimeout) {
		// ...and create our own when none is found in time, but keep the
		// finder running to reach the maximum number of interested
		// subscribers later.
		groupAdv, err := a.creator.CreatePeerGroupAdvertisement(TypeName)
		if err != nil {
			a.Close()
			return nil, err
		}
		if err := a.creator.PublishAdvertisement(groupAdv); err != nil {
			a.Close()
			return nil, err
		}
		a.handleNewAdvertisement(groupAdv)
	}
	return a, nil
}

// awaitConnection waits until at least one wire connection exists.
func (a *App) awaitConnection(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		a.mu.Lock()
		n := len(a.conns)
		a.mu.Unlock()
		if n > 0 {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// handleNewAdvertisement reacts to every advertisement the finder
// dispatches: join its group, look up the wire service, open the pipes —
// the WireServiceFinder flow.
func (a *App) handleNewAdvertisement(pg *adv.PeerGroupAdv) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	if _, dup := a.conns[pg.GroupID]; dup {
		a.mu.Unlock()
		return // multiple-advertisement management: already connected
	}
	a.mu.Unlock()

	wsf := NewWireServiceFinder(a.peer, pg)
	if err := wsf.LookupWireService(); err != nil {
		return
	}
	in, err := wsf.CreateInputPipe()
	if err != nil {
		return
	}
	out, err := wsf.CreateOutputPipe()
	if err != nil {
		in.Close()
		return
	}
	conn := &wireConnection{groupID: pg.GroupID, in: in, out: out}
	in.SetListener(func(m *message.Message) { a.handleMessage(m) })

	a.mu.Lock()
	if a.closed || a.conns[pg.GroupID] != nil {
		a.mu.Unlock()
		in.Close()
		return
	}
	a.conns[pg.GroupID] = conn
	a.mu.Unlock()
}

// handleMessage decodes one wire message, suppresses duplicates (the
// same event arrives once per connected group) and dispatches to the
// subscribers.
func (a *App) handleMessage(m *message.Message) {
	idRaw := m.Text(elemNS, elemID)
	eventID, err := jid.Parse(idRaw)
	if err != nil {
		return
	}
	if !a.dupes.Observe(eventID) {
		return // duplicate handling, by hand
	}
	data := m.Bytes(elemNS, elemEvent)
	var offer srapp.SkiRental
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&offer); err != nil {
		return
	}
	a.mu.Lock()
	a.received = append(a.received, offer)
	listeners := make([]func(srapp.SkiRental), len(a.listeners))
	copy(listeners, a.listeners)
	a.mu.Unlock()
	for _, l := range listeners {
		l(offer)
	}
}

// Subscribe registers a callback for incoming offers.
func (a *App) Subscribe(cb func(srapp.SkiRental)) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrClosed
	}
	a.listeners = append(a.listeners, cb)
	return nil
}

// Publish sends one offer to every connected group (and hence to every
// subscriber, however its advertisement was found).
func (a *App) Publish(offer srapp.SkiRental) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(offer); err != nil {
		return fmt.Errorf("srjxta: encode: %w", err)
	}
	eventID := jid.NewMessage()

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosed
	}
	conns := make([]*wireConnection, 0, len(a.conns))
	for _, c := range a.conns {
		conns = append(conns, c)
	}
	a.sent = append(a.sent, offer)
	a.mu.Unlock()

	if len(conns) == 0 {
		return errors.New("srjxta: no wire connection")
	}
	var firstErr error
	sent := 0
	for _, c := range conns {
		m := message.New(a.peer.ID())
		m.AddString(elemNS, elemID, eventID.String())
		m.AddBytes(elemNS, elemEvent, buf.Bytes())
		if err := c.out.Send(m); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	if sent == 0 {
		return fmt.Errorf("srjxta: publish: %w", firstErr)
	}
	return nil
}

// Received returns the offers received so far.
func (a *App) Received() []srapp.SkiRental {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]srapp.SkiRental(nil), a.received...)
}

// Sent returns the offers published so far.
func (a *App) Sent() []srapp.SkiRental {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]srapp.SkiRental(nil), a.sent...)
}

// AwaitReady blocks until at least n groups are connected and leased (or
// unseeded), for benchmark setup.
func (a *App) AwaitReady(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		ready := 0
		a.mu.Lock()
		conns := make([]*wireConnection, 0, len(a.conns))
		for _, c := range a.conns {
			conns = append(conns, c)
		}
		a.mu.Unlock()
		for _, c := range conns {
			if g, ok := a.peer.Group(c.groupID); ok {
				rdv := g.Rendezvous
				if rdv != nil && (!rdv.Seeded() || len(rdv.ConnectedRendezvous()) > 0) {
					ready++
				}
			}
		}
		if ready >= n {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close stops the finder and tears down every connection.
func (a *App) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	conns := make([]*wireConnection, 0, len(a.conns))
	for _, c := range a.conns {
		conns = append(conns, c)
	}
	a.conns = map[jid.ID]*wireConnection{}
	a.mu.Unlock()

	a.finder.Stop()
	for _, c := range conns {
		c.in.Close()
		a.peer.LeaveGroup(c.groupID)
	}
}
