package srjxta

import (
	"errors"
	"fmt"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/peergroup"
	"github.com/tps-p2p/tps/internal/jxta/wire"
)

// WireServiceFinder is the hand-written analogue of the paper's
// Figure 17: given a peer-group advertisement it (1) instantiates the
// group and looks up its wire service, (2) creates the input and output
// pipes, and (3) sends events on the output pipe.
type WireServiceFinder struct {
	peer  *peer.Peer
	pgAdv *adv.PeerGroupAdv

	group   *peergroup.Group
	pipeAdv *adv.PipeAdv
}

// NewWireServiceFinder pairs the peer with the advertisement to exploit.
func NewWireServiceFinder(p *peer.Peer, pgAdv *adv.PeerGroupAdv) *WireServiceFinder {
	return &WireServiceFinder{peer: p, pgAdv: pgAdv}
}

// LookupWireService joins the advertised group and extracts the wire
// service's pipe advertisement — the paper's newPeerGroup + init +
// lookupService sequence.
func (w *WireServiceFinder) LookupWireService() error {
	if w.peer == nil || w.pgAdv == nil {
		return errors.New("srjxta: unable to lookup the wire service")
	}
	svc, ok := w.pgAdv.Service(wire.ServiceName)
	if !ok || svc.Pipe == nil {
		return errors.New("srjxta: advertisement has no wire service")
	}
	group, pipeAdv, err := w.peer.JoinGroupFromAdv(w.pgAdv)
	if err != nil {
		return fmt.Errorf("srjxta: join group: %w", err)
	}
	w.group = group
	w.pipeAdv = pipeAdv
	return nil
}

// CreateInputPipe opens the receiving end of the wire pipe.
func (w *WireServiceFinder) CreateInputPipe() (*wire.InputPipe, error) {
	if w.group == nil {
		return nil, errors.New("srjxta: unable to create the input pipe")
	}
	in, err := w.group.Wire.CreateInputPipe(w.pipeAdv)
	if err != nil {
		return nil, fmt.Errorf("srjxta: unable to create the input pipe: %w", err)
	}
	return in, nil
}

// CreateOutputPipe opens the sending end of the wire pipe.
func (w *WireServiceFinder) CreateOutputPipe() (*wire.OutputPipe, error) {
	if w.group == nil {
		return nil, errors.New("srjxta: unable to create the output pipe")
	}
	out, err := w.group.Wire.CreateOutputPipe(w.pipeAdv)
	if err != nil {
		return nil, fmt.Errorf("srjxta: unable to create the output pipe: %w", err)
	}
	return out, nil
}
