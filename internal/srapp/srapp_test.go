package srapp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRandomOfferPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		o := RandomOffer(rng)
		if o.Shop == "" || o.Brand == "" {
			t.Fatalf("empty fields: %+v", o)
		}
		if o.Price < 8 || o.Price > 49 {
			t.Fatalf("price out of range: %+v", o)
		}
		if o.NumberOfDays < 1 || o.NumberOfDays > 14 {
			t.Fatalf("days out of range: %+v", o)
		}
	}
}

func TestRandomOfferDeterministicPerSeed(t *testing.T) {
	a := RandomOffer(rand.New(rand.NewSource(7)))
	b := RandomOffer(rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatal("same seed produced different offers")
	}
}

func TestStringRendering(t *testing.T) {
	o := SkiRental{Shop: "XTremShop", Brand: "Salomon", Price: 14, NumberOfDays: 100}
	s := o.String()
	for _, want := range []string{"XTremShop", "Salomon", "14.00", "100 days"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q lacks %q", s, want)
		}
	}
}

func TestPad(t *testing.T) {
	o := SkiRental{Shop: "s", Brand: "b"}
	padded := Pad(o, 1000)
	if len(padded.Brand) < 1000 {
		t.Fatalf("brand length %d", len(padded.Brand))
	}
	if padded.Shop != "s" {
		t.Fatal("padding touched other fields")
	}
	if got := Pad(o, 0); got != o {
		t.Fatal("zero target should be a no-op")
	}
	if got := Pad(o, -5); got != o {
		t.Fatal("negative target should be a no-op")
	}
}

// Property: padding grows the brand monotonically with the target and
// preserves the original prefix.
func TestQuickPadPreservesBrand(t *testing.T) {
	f := func(brand string, target uint16) bool {
		o := Pad(SkiRental{Brand: brand}, int(target))
		return strings.HasPrefix(o.Brand, brand)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
