package srapp_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
	"github.com/tps-p2p/tps/internal/srapp"
	"github.com/tps-p2p/tps/internal/srapp/srjxta"
	"github.com/tps-p2p/tps/internal/srapp/srtps"
)

// The two application versions must provide the same observable
// behaviour: these tests run the identical scenario through both.

func testOffer() srapp.SkiRental {
	return srapp.SkiRental{Shop: "XTremShop", Brand: "Salomon", Price: 14, NumberOfDays: 100}
}

// syncBuffer is a concurrency-safe console sink: the subscriber callback
// writes from the delivery goroutine (and a duplicate-path echo may still
// be in flight) while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func newWAN(t *testing.T) *netsim.Network {
	t.Helper()
	wan := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(wan.Close)
	return wan
}

func TestSRTPSEndToEnd(t *testing.T) {
	wan := newWAN(t)
	mkPlatform := func(name string, rdv bool, seeds ...string) *tps.Platform {
		node, err := wan.AddNode(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := tps.NewPlatform(tps.Config{
			Name: name, Rendezvous: rdv, Seeds: seeds,
			FindTimeout: 400 * time.Millisecond, FindInterval: 100 * time.Millisecond,
			LeaseTTL: 2 * time.Second,
		}, tps.WithTransport(memnet.New(node)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}
	mkPlatform("rdv", true)
	shopP := mkPlatform("shop", false, "mem://rdv")
	customerP := mkPlatform("customer", false, "mem://rdv")

	customer, err := srtps.New(customerP)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(customer.Close)
	var console syncBuffer
	if err := customer.SubscribeConsole(&console); err != nil {
		t.Fatal(err)
	}

	shop, err := srtps.New(shopP)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shop.Close)
	if !shop.AwaitReady(1, 10*time.Second) {
		t.Fatal("shop never ready")
	}
	if err := shop.Publish(testOffer()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(customer.Received()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("offer never arrived")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := customer.Received()[0]; got != testOffer() {
		t.Fatalf("got %+v", got)
	}
	if len(shop.Sent()) != 1 {
		t.Fatalf("Sent = %d", len(shop.Sent()))
	}
	if out := console.Snapshot(); !bytes.Contains(out, []byte("XTremShop")) {
		t.Fatalf("console output %q", out)
	}
	if len(customer.Errors()) != 0 {
		t.Fatalf("errors: %v", customer.Errors())
	}
}

func TestSRJXTAEndToEnd(t *testing.T) {
	wan := newWAN(t)
	mkPeer := func(name string, role rendezvous.Role, seeds ...endpoint.Address) *peer.Peer {
		node, err := wan.AddNode(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := peer.New(peer.Config{Name: name, Role: role, Seeds: seeds, LeaseTTL: 2 * time.Second}, memnet.New(node))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}
	rdv := mkPeer("rdv", rendezvous.RoleRendezvous)
	if _, err := rdv.EnableDaemon(); err != nil {
		t.Fatal(err)
	}
	shopPeer := mkPeer("shop", rendezvous.RoleEdge, "mem://rdv")
	customerPeer := mkPeer("customer", rendezvous.RoleEdge, "mem://rdv")

	// The shop starts first and creates the advertisement after a short
	// search.
	shop, err := srjxta.New(shopPeer, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shop.Close)
	// The customer finds the shop's advertisement (minimisation: no
	// second advertisement is created).
	customer, err := srjxta.New(customerPeer, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(customer.Close)

	got := make(chan srapp.SkiRental, 8)
	if err := customer.Subscribe(func(r srapp.SkiRental) { got <- r }); err != nil {
		t.Fatal(err)
	}
	if !shop.AwaitReady(1, 10*time.Second) {
		t.Fatal("shop never ready")
	}
	if err := shop.Publish(testOffer()); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r != testOffer() {
			t.Fatalf("got %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("offer never arrived")
	}
	if len(customer.Received()) == 0 || len(shop.Sent()) != 1 {
		t.Fatalf("received=%d sent=%d", len(customer.Received()), len(shop.Sent()))
	}
}

func TestSRJXTADuplicateSuppressionAcrossGroups(t *testing.T) {
	// Two shops start simultaneously with a tiny find timeout: both
	// create an advertisement, so two groups exist for the type. The
	// customer connects to both; each offer must still arrive exactly
	// once (functionality (2) and (3) of §4.4).
	wan := newWAN(t)
	mkPeer := func(name string, role rendezvous.Role, seeds ...endpoint.Address) *peer.Peer {
		node, err := wan.AddNode(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := peer.New(peer.Config{Name: name, Role: role, Seeds: seeds, LeaseTTL: 2 * time.Second}, memnet.New(node))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}
	rdv := mkPeer("rdv", rendezvous.RoleRendezvous)
	if _, err := rdv.EnableDaemon(); err != nil {
		t.Fatal(err)
	}
	shopAPeer := mkPeer("shopA", rendezvous.RoleEdge, "mem://rdv")
	shopBPeer := mkPeer("shopB", rendezvous.RoleEdge, "mem://rdv")
	customerPeer := mkPeer("customer", rendezvous.RoleEdge, "mem://rdv")

	type appResult struct {
		app *srjxta.App
		err error
	}
	results := make(chan appResult, 2)
	for _, p := range []*peer.Peer{shopAPeer, shopBPeer} {
		go func(p *peer.Peer) {
			app, err := srjxta.New(p, 50*time.Millisecond)
			results <- appResult{app, err}
		}(p)
	}
	shops := make([]*srjxta.App, 0, 2)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		t.Cleanup(r.app.Close)
		shops = append(shops, r.app)
	}
	customer, err := srjxta.New(customerPeer, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(customer.Close)
	if err := customer.Subscribe(func(srapp.SkiRental) {}); err != nil {
		t.Fatal(err)
	}
	// Let the finders merge the advertisement sets.
	time.Sleep(time.Second)

	const perShop = 5
	for _, shop := range shops {
		if !shop.AwaitReady(1, 10*time.Second) {
			t.Fatal("shop never ready")
		}
		for i := 0; i < perShop; i++ {
			if err := shop.Publish(testOffer()); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := perShop * len(shops)
	deadline := time.Now().Add(10 * time.Second)
	for len(customer.Received()) < want {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d", len(customer.Received()), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	wan.WaitQuiesce(5 * time.Second)
	if got := len(customer.Received()); got != want {
		t.Fatalf("received %d, want exactly %d (duplicates leaked)", got, want)
	}
}
