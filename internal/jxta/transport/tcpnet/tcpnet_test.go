package tcpnet_test

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/transport/tcpnet"
)

type frameSink struct {
	mu     sync.Mutex
	frames [][]byte
	ch     chan struct{}
}

func newFrameSink() *frameSink { return &frameSink{ch: make(chan struct{}, 256)} }

func (s *frameSink) recv(frame []byte) {
	s.mu.Lock()
	s.frames = append(s.frames, frame)
	s.mu.Unlock()
	select {
	case s.ch <- struct{}{}:
	default: // wait() also polls, so a dropped signal cannot stall it
	}
}

func (s *frameSink) wait(t *testing.T, n int) [][]byte {
	t.Helper()
	deadline := time.After(10 * time.Second)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		if len(s.frames) >= n {
			out := append([][]byte(nil), s.frames...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		select {
		case <-s.ch:
		case <-tick.C:
		case <-deadline:
			t.Fatalf("timeout waiting for %d frames", n)
		}
	}
}

func listen(t *testing.T) (*tcpnet.Transport, *frameSink) {
	t.Helper()
	tr, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	s := newFrameSink()
	tr.SetReceiver(s.recv)
	return tr, s
}

func TestBasicFrameExchange(t *testing.T) {
	a, _ := listen(t)
	b, bs := listen(t)
	if a.Scheme() != "tcp" {
		t.Fatalf("scheme = %q", a.Scheme())
	}
	payload := []byte("hello over tcp")
	if err := a.Send(b.LocalAddress(), payload); err != nil {
		t.Fatal(err)
	}
	got := bs.wait(t, 1)
	if !bytes.Equal(got[0], payload) {
		t.Fatalf("got %q", got[0])
	}
}

func TestManyFramesOrdered(t *testing.T) {
	a, _ := listen(t)
	b, bs := listen(t)
	const n = 500
	for i := 0; i < n; i++ {
		if err := a.Send(b.LocalAddress(), []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	got := bs.wait(t, n)
	for i := 0; i < n; i++ {
		if got[i][0] != byte(i) || got[i][1] != byte(i>>8) {
			t.Fatalf("frame %d out of order: %v", i, got[i])
		}
	}
}

func TestConcurrentSendersDoNotInterleave(t *testing.T) {
	a, _ := listen(t)
	b, bs := listen(t)
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('A' + g)}, 1000)
			for i := 0; i < perG; i++ {
				if err := a.Send(b.LocalAddress(), payload); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	got := bs.wait(t, goroutines*perG)
	for i, f := range got {
		if len(f) != 1000 {
			t.Fatalf("frame %d has length %d (interleaved writes)", i, len(f))
		}
		for _, c := range f {
			if c != f[0] {
				t.Fatalf("frame %d mixes payloads (interleaved writes)", i)
			}
		}
	}
}

func TestBidirectionalOverSingleConnection(t *testing.T) {
	a, as := listen(t)
	b, bs := listen(t)
	if err := a.Send(b.LocalAddress(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	bs.wait(t, 1)
	// b replies by dialing a's listener (address-based, as the endpoint
	// layer does via the SrcAddr envelope element).
	if err := b.Send(a.LocalAddress(), []byte("pong")); err != nil {
		t.Fatal(err)
	}
	got := as.wait(t, 1)
	if string(got[0]) != "pong" {
		t.Fatalf("got %q", got[0])
	}
}

func TestSendToDeadPeerFailsFast(t *testing.T) {
	// Sends are asynchronous: the first enqueue succeeds, the flusher's
	// dial fails, and the host's circuit breaker starts failing sends
	// fast instead of queueing frames for a dead peer.
	a, _ := listen(t)
	dead, _ := tcpnet.Listen("127.0.0.1:0")
	addr := dead.LocalAddress()
	_ = dead.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := a.Send(addr, []byte("x"))
		if errors.Is(err, tcpnet.ErrPeerDown) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened for dead peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := a.Stats()
	if st.DialFailures == 0 {
		t.Fatalf("stats = %+v, want DialFailures > 0", st)
	}
	if st.FailFast == 0 {
		t.Fatalf("stats = %+v, want FailFast > 0", st)
	}
}

func TestFullQueueShedsOldest(t *testing.T) {
	// A peer that accepts the connection but never reads stalls the
	// flusher on the kernel buffers; the bounded queue must shed its own
	// oldest frames without blocking the sender.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			<-stop // hold the connection open, read nothing
		}
	}()

	a, err := tcpnet.ListenConfig("127.0.0.1:0", tcpnet.Config{
		QueueLen:     8,
		WriteTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	a.SetReceiver(func([]byte) {})

	addr := endpoint.MakeAddress("tcp", ln.Addr().String())
	payload := bytes.Repeat([]byte("x"), 256<<10)
	start := time.Now()
	for i := 0; i < 200; i++ {
		// Errors are fine once the breaker opens; blocking is not.
		_ = a.Send(addr, payload)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("200 sends to a stalled peer took %v (sender blocked)", elapsed)
	}
	waitForStat(t, func(st tcpnet.Stats) bool { return st.Dropped > 0 || st.WriteFailures > 0 }, a)
}

func waitForStat(t *testing.T, cond func(tcpnet.Stats) bool, tr *tcpnet.Transport) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(tr.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", tr.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStatsCountSends(t *testing.T) {
	a, _ := listen(t)
	b, bs := listen(t)
	const n = 10
	for i := 0; i < n; i++ {
		if err := a.Send(b.LocalAddress(), []byte("frame")); err != nil {
			t.Fatal(err)
		}
	}
	bs.wait(t, n)
	st := a.Stats()
	if st.Enqueued != n || st.Sent != n {
		t.Fatalf("stats = %+v, want Enqueued = Sent = %d", st, n)
	}
	if st.Dropped != 0 || st.FailFast != 0 {
		t.Fatalf("healthy peer shed frames: %+v", st)
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	a, _ := listen(t)
	b1, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1 := newFrameSink()
	b1.SetReceiver(s1.recv)
	addr := b1.LocalAddress()
	if err := a.Send(addr, []byte("one")); err != nil {
		t.Fatal(err)
	}
	s1.wait(t, 1)
	_ = b1.Close()

	// Restart a listener on the same port.
	b2, err := tcpnet.Listen(addr.Host())
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = b2.Close() })
	s2 := newFrameSink()
	b2.SetReceiver(s2.recv)

	// First send may fail while the stale cached connection is detected;
	// the transport redials internally, so within a couple of attempts the
	// frame must arrive.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send(addr, []byte("two")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("could not re-send after peer restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
	got := s2.wait(t, 1)
	if string(got[0]) != "two" {
		t.Fatalf("got %q", got[0])
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	a, _ := listen(t)
	b, _ := listen(t)
	huge := make([]byte, tcpnet.MaxFrame+1)
	if err := a.Send(b.LocalAddress(), huge); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestClosedTransportRefusesSend(t *testing.T) {
	a, _ := listen(t)
	b, _ := listen(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.LocalAddress(), []byte("x")); !errors.Is(err, tcpnet.ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestEndpointOverTCP runs the endpoint layer over real TCP: the
// integration the rendezvous daemon (cmd/rendezvous) relies on.
func TestEndpointOverTCP(t *testing.T) {
	mk := func(seed uint64) *endpoint.Service {
		tr, err := tcpnet.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svc := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
		if err := svc.AddTransport(tr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = svc.Close() })
		return svc
	}
	a, b := mk(1), mk(2)

	type rx struct {
		msg  *message.Message
		from endpoint.Address
	}
	got := make(chan rx, 1)
	if err := b.RegisterHandler("echo", "", func(m *message.Message, from endpoint.Address) {
		got <- rx{m, from}
	}); err != nil {
		t.Fatal(err)
	}
	m := message.New(a.PeerID())
	m.AddString("app", "body", "over-tcp")
	if err := a.Send(b.LocalAddresses()[0], "echo", "", m); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.msg.Text("app", "body") != "over-tcp" {
			t.Fatalf("body = %q", r.msg.Text("app", "body"))
		}
		if r.from != a.LocalAddresses()[0] {
			t.Fatalf("from = %q, want %q", r.from, a.LocalAddresses()[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}
