// Package tcpnet is a real TCP transport for the endpoint layer, using
// length-prefixed frames over persistent connections. It serves the
// "tcp" address scheme ("tcp://host:port").
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
)

// Scheme is the address scheme served by this transport.
const Scheme = "tcp"

// MaxFrame bounds a single frame; larger frames indicate corruption or a
// hostile peer and cause the connection to drop.
const MaxFrame = 32 << 20

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("tcpnet: transport closed")

// Transport is a TCP-backed endpoint transport.
type Transport struct {
	ln net.Listener

	mu       sync.Mutex
	recv     func([]byte)
	conns    map[string]*tconn // outbound connection cache, keyed by host:port
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// tconn pairs a connection with a write mutex: concurrent Sends to one
// host must not interleave their frame bytes.
type tconn struct {
	c   net.Conn
	wmu sync.Mutex
}

// wbufPool recycles the length-prefixed write buffers so steady-state
// sending does not allocate one per frame.
var wbufPool = sync.Pool{New: func() any { return new([]byte) }}

func (tc *tconn) writeFrame(frame []byte) error {
	bp := wbufPool.Get().(*[]byte)
	buf := *bp
	if need := 4 + len(frame); cap(buf) < need {
		buf = make([]byte, need)
	} else {
		buf = buf[:need]
	}
	binary.BigEndian.PutUint32(buf, uint32(len(frame)))
	copy(buf[4:], frame)
	tc.wmu.Lock()
	_, err := tc.c.Write(buf)
	tc.wmu.Unlock()
	*bp = buf
	wbufPool.Put(bp)
	return err
}

var _ endpoint.Transport = (*Transport)(nil)

// Listen starts a transport accepting on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Transport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	t := &Transport{
		ln:       ln,
		conns:    make(map[string]*tconn),
		accepted: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Scheme implements endpoint.Transport.
func (t *Transport) Scheme() string { return Scheme }

// LocalAddress implements endpoint.Transport.
func (t *Transport) LocalAddress() endpoint.Address {
	return endpoint.MakeAddress(Scheme, t.ln.Addr().String())
}

// SetReceiver implements endpoint.Transport.
func (t *Transport) SetReceiver(recv func(frame []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = recv
}

// Send implements endpoint.Transport. It reuses a cached connection to
// the destination, dialing (or redialing once, if the cached connection
// has gone stale) as needed.
func (t *Transport) Send(to endpoint.Address, frame []byte) error {
	host := to.Host()
	if len(frame) > MaxFrame {
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", len(frame))
	}
	for attempt := 0; attempt < 2; attempt++ {
		conn, fresh, err := t.getConn(host)
		if err != nil {
			return err
		}
		if err = conn.writeFrame(frame); err == nil {
			return nil
		}
		t.dropConn(host, conn)
		if fresh {
			// A connection we just dialed failed to accept a write;
			// retrying would dial the same dead peer again.
			return fmt.Errorf("tcpnet: write to %s: %w", host, err)
		}
	}
	return fmt.Errorf("tcpnet: write to %s failed after redial", host)
}

// getConn returns a cached or fresh connection and whether it was dialed
// by this call. A cached connection whose peer has already closed it is
// detected synchronously (connDead) and replaced, so a Send after a peer
// restart does not silently write into a dead socket. The peek costs one
// non-blocking recvfrom per cached send — a deliberate trade: skipping
// it on "recently active" connections would reopen a silent-loss window
// exactly when a peer restarts, and the write syscall it precedes is of
// the same order of cost.
func (t *Transport) getConn(host string) (*tconn, bool, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, ErrClosed
	}
	if c, ok := t.conns[host]; ok {
		t.mu.Unlock()
		if !connDead(c.c) {
			return c, false, nil
		}
		t.dropConn(host, c)
	} else {
		t.mu.Unlock()
	}

	c, err := net.Dial("tcp", host)
	if err != nil {
		return nil, false, fmt.Errorf("tcpnet: dial %s: %w", host, err)
	}
	tc := &tconn{c: c}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = c.Close()
		return nil, false, ErrClosed
	}
	if existing, ok := t.conns[host]; ok {
		// Lost the race with a concurrent dialer; keep the winner.
		t.mu.Unlock()
		_ = c.Close()
		return existing, false, nil
	}
	t.conns[host] = tc
	t.mu.Unlock()
	// Frames can flow back on the outbound connection too.
	t.wg.Add(1)
	go t.readLoop(c, func() { t.dropConn(host, tc) })
	return tc, true, nil
}

func (t *Transport) dropConn(host string, tc *tconn) {
	t.mu.Lock()
	if t.conns[host] == tc {
		delete(t.conns, host)
	}
	t.mu.Unlock()
	_ = tc.c.Close()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Track accepted connections: Close must tear them down too, or
		// their blocked readers would keep the transport alive forever.
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn, func() {
			t.mu.Lock()
			delete(t.accepted, conn)
			t.mu.Unlock()
			_ = conn.Close()
		})
	}
}

func (t *Transport) readLoop(conn net.Conn, onExit func()) {
	defer t.wg.Done()
	defer onExit()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > MaxFrame {
			return // corrupt or hostile; drop the connection
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		t.mu.Lock()
		recv := t.recv
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if recv != nil {
			recv(frame)
		}
	}
}

// Close implements endpoint.Transport. It stops the listener, closes all
// connections and waits for reader goroutines to exit.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*tconn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.conns = map[string]*tconn{}
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()

	err := t.ln.Close()
	for _, c := range conns {
		_ = c.c.Close()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	t.wg.Wait()
	return err
}
