// Package tcpnet is a real TCP transport for the endpoint layer, using
// length-prefixed frames over persistent connections. It serves the
// "tcp" address scheme ("tcp://host:port").
//
// Sending is asynchronous and failure-aware: each destination host gets
// a bounded outbound queue drained by its own flusher goroutine, so one
// stalled or dead peer sheds its own queue (drop-oldest) instead of
// head-of-line-blocking every publisher. Dials are bounded by a timeout,
// writes by a per-frame deadline, and redials back off exponentially; a
// host that keeps failing opens a circuit breaker that fails sends fast
// until the backoff cools down. Stats exposes what was shed and why.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/obs"
	"github.com/tps-p2p/tps/internal/obs/hist"
	"github.com/tps-p2p/tps/internal/retry"
)

// Scheme is the address scheme served by this transport.
const Scheme = "tcp"

// MaxFrame bounds a single frame; larger frames indicate corruption or a
// hostile peer and cause the connection to drop.
const MaxFrame = 32 << 20

// Defaults substituted for zero Config fields.
const (
	DefaultDialTimeout  = 5 * time.Second
	DefaultWriteTimeout = 10 * time.Second
	DefaultQueueLen     = 1024
)

// Errors.
var (
	// ErrClosed is returned by Send after Close.
	ErrClosed = errors.New("tcpnet: transport closed")
	// ErrPeerDown is returned by Send while a host's circuit breaker is
	// open: the flusher failed to reach the peer and is backing off, so
	// enqueuing more frames would only shed them later.
	ErrPeerDown = errors.New("tcpnet: peer unreachable")
)

// Config tunes the transport's failure behaviour. The zero value uses
// the defaults above.
type Config struct {
	// DialTimeout bounds each connection attempt.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write; a peer that stops reading
	// long enough for the kernel buffers to fill fails the write instead
	// of wedging the flusher forever.
	WriteTimeout time.Duration
	// QueueLen bounds each host's outbound queue in frames. When full,
	// the oldest frame is shed (best-effort semantics: new data beats
	// stale data) and counted in Stats.Dropped.
	QueueLen int
	// Backoff shapes the redial curve after dial or write failures.
	Backoff retry.Policy
}

// Stats is a snapshot of transport activity.
type Stats struct {
	Enqueued      int64 // frames accepted into an outbound queue
	Sent          int64 // frames written to a connection
	Dropped       int64 // frames shed from a full queue (oldest first)
	Requeued      int64 // frames put back after a dial/write failure
	FailFast      int64 // sends rejected while a host breaker was open
	DialFailures  int64 // connection attempts that failed
	WriteFailures int64 // frame writes that failed or timed out
	Redials       int64 // reconnects after an established conn died
}

type tcpCounters struct {
	enqueued      atomic.Int64
	sent          atomic.Int64
	dropped       atomic.Int64
	requeued      atomic.Int64
	failFast      atomic.Int64
	dialFailures  atomic.Int64
	writeFailures atomic.Int64
	redials       atomic.Int64
}

// wbufPool recycles the length-prefixed write buffers so steady-state
// sending does not allocate one per frame. Queued frames hold pooled
// buffers; they return to the pool once written or shed.
var wbufPool = sync.Pool{New: func() any { return new([]byte) }}

// Transport is a TCP-backed endpoint transport.
type Transport struct {
	ln    net.Listener
	cfg   Config
	stats tcpCounters
	// waitHist times enqueue → flusher pickup per frame (queue wait);
	// recording is alloc-free, so it is always on.
	waitHist *hist.Hist

	mu       sync.Mutex
	recv     func([]byte)
	queues   map[string]*hostq // per-destination outbound queues
	accepted map[net.Conn]struct{}
	closed   bool
	stop     chan struct{}
	wg       sync.WaitGroup
}

var _ endpoint.Transport = (*Transport)(nil)

// Listen starts a transport accepting on addr (e.g. "127.0.0.1:0") with
// default configuration.
func Listen(addr string) (*Transport, error) {
	return ListenConfig(addr, Config{})
}

// ListenConfig starts a transport with explicit failure tuning.
func ListenConfig(addr string, cfg Config) (*Transport, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	t := &Transport{
		ln:       ln,
		cfg:      cfg,
		waitHist: hist.New(),
		queues:   make(map[string]*hostq),
		accepted: make(map[net.Conn]struct{}),
		stop:     make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Scheme implements endpoint.Transport.
func (t *Transport) Scheme() string { return Scheme }

// LocalAddress implements endpoint.Transport.
func (t *Transport) LocalAddress() endpoint.Address {
	return endpoint.MakeAddress(Scheme, t.ln.Addr().String())
}

// SetReceiver implements endpoint.Transport.
func (t *Transport) SetReceiver(recv func(frame []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = recv
}

// Stats returns a snapshot of the transport counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Enqueued:      t.stats.enqueued.Load(),
		Sent:          t.stats.sent.Load(),
		Dropped:       t.stats.dropped.Load(),
		Requeued:      t.stats.requeued.Load(),
		FailFast:      t.stats.failFast.Load(),
		DialFailures:  t.stats.dialFailures.Load(),
		WriteFailures: t.stats.writeFailures.Load(),
		Redials:       t.stats.redials.Load(),
	}
}

// Snapshot implements obs.Provider.
func (t *Transport) Snapshot() obs.Snapshot {
	hosts, depth := t.queueTotals()
	return obs.Snapshot{
		Name:    "tcpnet",
		Version: 1,
		Counters: map[string]int64{
			"enqueued":       t.stats.enqueued.Load(),
			"sent":           t.stats.sent.Load(),
			"dropped":        t.stats.dropped.Load(),
			"requeued":       t.stats.requeued.Load(),
			"fail_fast":      t.stats.failFast.Load(),
			"dial_failures":  t.stats.dialFailures.Load(),
			"write_failures": t.stats.writeFailures.Load(),
			"redials":        t.stats.redials.Load(),
		},
		Gauges: map[string]float64{
			"hosts":       float64(hosts),
			"queue_depth": float64(depth),
		},
		Hists: map[string]hist.Snapshot{
			"queue_wait_us": t.waitHist.Snapshot(),
		},
	}
}

// queueTotals counts the live outbound queues and the frames waiting in
// them across all destinations.
func (t *Transport) queueTotals() (hosts, depth int) {
	t.mu.Lock()
	qs := make([]*hostq, 0, len(t.queues))
	for _, q := range t.queues {
		qs = append(qs, q)
	}
	t.mu.Unlock()
	for _, q := range qs {
		q.mu.Lock()
		n := len(q.frames) - q.head
		q.mu.Unlock()
		hosts++
		depth += n
	}
	return hosts, depth
}

// QueueDepth reports how many frames are waiting for the given host —
// observability for tests and the admin surface.
func (t *Transport) QueueDepth(host string) int {
	t.mu.Lock()
	q := t.queues[host]
	t.mu.Unlock()
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.frames) - q.head
}

// Send implements endpoint.Transport. It copies the frame into the
// destination host's bounded queue and returns: delivery is asynchronous
// and best-effort. Send fails fast only when the transport is closed,
// the frame is oversized, or the host's circuit breaker is open after
// repeated dial/write failures.
func (t *Transport) Send(to endpoint.Address, frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", len(frame))
	}
	host := to.Host()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	q, ok := t.queues[host]
	if !ok {
		q = newHostq(t, host)
		t.queues[host] = q
		t.wg.Add(1)
		go q.flush()
	}
	t.mu.Unlock()
	return q.enqueue(frame)
}

// hostq is one destination's bounded outbound queue plus the connection
// its flusher currently holds.
type hostq struct {
	t    *Transport
	host string

	mu        sync.Mutex
	cond      *sync.Cond
	frames    []qframe // pooled, length-prefixed buffers; FIFO from head
	head      int
	conn      net.Conn  // flusher-owned; tracked here so Close can kill it
	downUntil time.Time // breaker: enqueue fails fast until then
	closed    bool
}

// qframe is one queued outbound frame: the pooled buffer plus its
// enqueue instant, so pop can record how long it waited. The timestamp
// rides the existing slice — amortized growth only, no per-frame
// allocation.
type qframe struct {
	bp   *[]byte
	atNS int64
}

func newHostq(t *Transport, host string) *hostq {
	q := &hostq{t: t, host: host}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// enqueue copies frame into a pooled length-prefixed buffer and appends
// it, shedding the oldest frame when the queue is full.
func (q *hostq) enqueue(frame []byte) error {
	bp := wbufPool.Get().(*[]byte)
	buf := *bp
	if need := 4 + len(frame); cap(buf) < need {
		buf = make([]byte, need)
	} else {
		buf = buf[:need]
	}
	binary.BigEndian.PutUint32(buf, uint32(len(frame)))
	copy(buf[4:], frame)
	*bp = buf

	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		wbufPool.Put(bp)
		return ErrClosed
	}
	if !q.downUntil.IsZero() && time.Now().Before(q.downUntil) {
		q.mu.Unlock()
		wbufPool.Put(bp)
		q.t.stats.failFast.Add(1)
		return fmt.Errorf("%w: %s", ErrPeerDown, q.host)
	}
	if len(q.frames)-q.head >= q.t.cfg.QueueLen {
		old := q.frames[q.head]
		q.frames[q.head] = qframe{}
		q.head++
		wbufPool.Put(old.bp)
		q.t.stats.dropped.Add(1)
	}
	q.frames = append(q.frames, qframe{bp: bp, atNS: time.Now().UnixNano()})
	q.cond.Signal()
	q.mu.Unlock()
	q.t.stats.enqueued.Add(1)
	return nil
}

// pop blocks until a frame is queued or the queue closes.
func (q *hostq) pop() (*[]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.frames) && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	f := q.frames[q.head]
	q.frames[q.head] = qframe{}
	q.head++
	if q.head == len(q.frames) {
		q.frames = q.frames[:0]
		q.head = 0
	}
	if f.atNS != 0 {
		q.t.waitHist.Observe(time.Duration(time.Now().UnixNano() - f.atNS))
	}
	return f.bp, true
}

// requeue puts an unsent frame back at the front so ordering survives a
// redial.
func (q *hostq) requeue(bp *[]byte) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		wbufPool.Put(bp)
		return
	}
	// Re-stamp on requeue: the frame starts a fresh queue wait behind
	// the redial, and the time it already waited was recorded at pop.
	f := qframe{bp: bp, atNS: time.Now().UnixNano()}
	if q.head > 0 {
		q.head--
		q.frames[q.head] = f
	} else {
		q.frames = append(q.frames, qframe{})
		copy(q.frames[1:], q.frames)
		q.frames[0] = f
	}
	q.mu.Unlock()
	q.t.stats.requeued.Add(1)
}

// backoff opens the breaker for the failure count's backoff delay and
// sleeps it off. It reports false when the transport shut down mid-wait.
func (q *hostq) backoff(fails int) bool {
	d := q.t.cfg.Backoff.Backoff(fails)
	q.mu.Lock()
	if !q.closed {
		q.downUntil = time.Now().Add(d)
	}
	q.mu.Unlock()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-q.t.stop:
		return false
	}
}

func (q *hostq) clearDown() {
	q.mu.Lock()
	q.downUntil = time.Time{}
	q.mu.Unlock()
}

// setConn publishes the flusher's connection for Close teardown.
func (q *hostq) setConn(c net.Conn) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		_ = c.Close()
		return false
	}
	q.conn = c
	q.mu.Unlock()
	return true
}

func (q *hostq) clearConn(c net.Conn) {
	q.mu.Lock()
	if q.conn == c {
		q.conn = nil
	}
	q.mu.Unlock()
	_ = c.Close()
}

// close shuts the queue: queued buffers return to the pool, the flusher
// wakes and exits, the connection dies.
func (q *hostq) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	for i := q.head; i < len(q.frames); i++ {
		wbufPool.Put(q.frames[i].bp)
	}
	q.frames = nil
	q.head = 0
	c := q.conn
	q.conn = nil
	q.cond.Broadcast()
	q.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// flush is the per-host sender: it drains the queue over one connection,
// dialing with a timeout, writing with a deadline, redialing with capped
// exponential backoff, and keeping per-(sender,receiver) FIFO order by
// requeueing the in-flight frame on failure.
func (q *hostq) flush() {
	defer q.t.wg.Done()
	var conn net.Conn
	fails := 0
	for {
		bp, ok := q.pop()
		if !ok {
			return
		}
		// A cached connection whose peer restarted looks writable but
		// eats frames; the non-blocking peek detects the dead socket
		// synchronously so the frame goes over a fresh connection. See
		// staleconn_unix.go for the trade-off discussion.
		if conn != nil && connDead(conn) {
			q.clearConn(conn)
			conn = nil
			q.t.stats.redials.Add(1)
		}
		if conn == nil {
			c, err := net.DialTimeout("tcp", q.host, q.t.cfg.DialTimeout)
			if err != nil {
				q.t.stats.dialFailures.Add(1)
				fails++
				q.requeue(bp)
				if !q.backoff(fails) {
					return
				}
				continue
			}
			if !q.setConn(c) {
				wbufPool.Put(bp)
				return
			}
			conn = c
			// Frames can flow back on the outbound connection too.
			q.t.wg.Add(1)
			go q.t.readLoop(c, func() { q.clearConn(c) })
		}
		_ = conn.SetWriteDeadline(time.Now().Add(q.t.cfg.WriteTimeout))
		if _, err := conn.Write(*bp); err != nil {
			q.t.stats.writeFailures.Add(1)
			q.clearConn(conn)
			conn = nil
			fails++
			q.requeue(bp)
			if !q.backoff(fails) {
				return
			}
			continue
		}
		_ = conn.SetWriteDeadline(time.Time{})
		wbufPool.Put(bp)
		fails = 0
		q.clearDown()
		q.t.stats.sent.Add(1)
	}
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Track accepted connections: Close must tear them down too, or
		// their blocked readers would keep the transport alive forever.
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn, func() {
			t.mu.Lock()
			delete(t.accepted, conn)
			t.mu.Unlock()
			_ = conn.Close()
		})
	}
}

func (t *Transport) readLoop(conn net.Conn, onExit func()) {
	defer t.wg.Done()
	defer onExit()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > MaxFrame {
			return // corrupt or hostile; drop the connection
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		t.mu.Lock()
		recv := t.recv
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if recv != nil {
			recv(frame)
		}
	}
}

// Close implements endpoint.Transport. It stops the listener, shuts
// every host queue (dropping what was still queued), closes all
// connections and waits for flusher and reader goroutines to exit.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	queues := make([]*hostq, 0, len(t.queues))
	for _, q := range t.queues {
		queues = append(queues, q)
	}
	t.queues = map[string]*hostq{}
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()

	close(t.stop)
	err := t.ln.Close()
	for _, q := range queues {
		q.close()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	t.wg.Wait()
	return err
}
