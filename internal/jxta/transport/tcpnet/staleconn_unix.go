//go:build unix

package tcpnet

import (
	"net"
	"syscall"
)

// connDead reports whether the remote end of a cached connection has
// already closed or reset it, using a non-blocking MSG_PEEK on the raw
// descriptor. A write to such a connection would "succeed" into the
// kernel buffer and the frame would be silently lost — the failure mode
// of sending to a peer that restarted. The peek never consumes data
// (the concurrent readLoop still sees every frame) and never blocks.
func connDead(c net.Conn) bool {
	sc, ok := c.(syscall.Conn)
	if !ok {
		return false
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	dead := false
	var buf [1]byte
	_ = raw.Control(func(fd uintptr) {
		for {
			n, _, err := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
			switch {
			case err == syscall.EINTR:
				continue
			case err == syscall.EAGAIN || err == syscall.EWOULDBLOCK:
				// Alive: nothing to read right now.
			case err != nil:
				dead = true // ECONNRESET and friends
			case n == 0:
				dead = true // orderly shutdown: FIN already received
			}
			return
		}
	})
	return dead
}
