//go:build !unix

package tcpnet

import "net"

// connDead is a no-op where raw-descriptor peeking is unavailable; the
// readLoop's EOF handling still drops stale connections, just not
// synchronously with Send.
func connDead(net.Conn) bool { return false }
