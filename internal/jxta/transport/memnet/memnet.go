// Package memnet adapts a netsim node to the endpoint Transport
// interface, giving peers a simulated wide-area network with the "mem"
// address scheme ("mem://<node-name>").
package memnet

import (
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/netsim"
)

// Scheme is the address scheme served by this transport.
const Scheme = "mem"

// Transport is an endpoint transport backed by a netsim node.
type Transport struct {
	node *netsim.Node
}

var _ endpoint.Transport = (*Transport)(nil)

// New wraps the netsim node. The node must not have a handler installed;
// the transport owns it.
func New(node *netsim.Node) *Transport {
	return &Transport{node: node}
}

// Scheme implements endpoint.Transport.
func (t *Transport) Scheme() string { return Scheme }

// LocalAddress implements endpoint.Transport.
func (t *Transport) LocalAddress() endpoint.Address {
	return endpoint.MakeAddress(Scheme, t.node.Name())
}

// Send implements endpoint.Transport. The netsim node copies the frame
// before scheduling delivery, satisfying the no-retain contract of
// endpoint.Transport (the endpoint recycles frame buffers).
func (t *Transport) Send(to endpoint.Address, frame []byte) error {
	return t.node.Send(to.Host(), frame)
}

// SetReceiver implements endpoint.Transport.
func (t *Transport) SetReceiver(recv func(frame []byte)) {
	t.node.SetHandler(func(_ string, data []byte) { recv(data) })
}

// Close implements endpoint.Transport.
func (t *Transport) Close() error {
	t.node.Close()
	return nil
}
