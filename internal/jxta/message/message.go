// Package message implements JXTA messages.
//
// A message is an ordered sequence of named elements, each carrying a MIME
// type and an opaque byte payload, together with an envelope used by the
// transport and propagation machinery: a message UUID (duplicate
// suppression in propagated pipes), the source peer ID, a TTL and the list
// of peers already visited (loop suppression in rendezvous propagation).
//
// The binary wire codec in codec.go is the only representation that
// crosses the network; in-process the Message struct is shared by value of
// its handle, so senders must Dup before mutating (mirroring JXTA's
// msg.dup()).
//
// # Copy-on-write
//
// Messages are immutable-by-contract after construction: every hop of the
// publish→propagate→deliver path that needs a private envelope calls Dup,
// and Dup is a cheap header copy, not a deep copy. The element list —
// including payload byte slices — is shared read-only between a message
// and its Dups; the first mutation through AddElement, ReplaceElement or
// RemoveElement clones the element headers (payloads stay shared), so a
// ReplaceID on one hop's envelope never leaks into sibling deliveries.
// Two rules keep this safe:
//
//   - element payloads must never be modified in place (they may be
//     aliased by any number of in-flight copies and by pooled marshal
//     buffers), and
//   - Path must only be extended through Stamp; Dup gives each copy its
//     own path slice, pre-sized so a full-TTL traversal does not
//     reallocate.
//
// Dup itself requires the same single-goroutine ownership the deep copy
// did: concurrent readers of a shared message are fine, but Dup and the
// mutators must not race each other on the same Message.
package message

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// Element is one named part of a message.
type Element struct {
	// Namespace scopes the element name; services use their own namespace
	// (e.g. "jxta", "wire", "tps") to avoid clashing with application
	// elements.
	Namespace string
	// Name identifies the element within its namespace.
	Name string
	// MimeType describes Data; empty means "application/octet-stream".
	MimeType string
	// Data is the payload. It is owned by the message; callers must not
	// retain slices passed to AddElement after the call.
	Data []byte
}

// Key returns the namespace-qualified element name.
func (e Element) Key() string { return e.Namespace + ":" + e.Name }

// Message is a unit of communication between peers.
type Message struct {
	// ID is the message UUID. Propagated pipes use it to drop duplicates.
	ID jid.ID
	// Src is the peer that created the message.
	Src jid.ID
	// TTL is the remaining propagation hop budget. A message with TTL 0
	// is delivered locally but never forwarded.
	TTL uint8
	// Path lists the peers the message already visited, newest last.
	// Rendezvous peers use it to suppress propagation loops. Extend it
	// only through Stamp.
	Path []jid.ID

	elements []Element
	// cow marks elements as shared with other messages (this message was
	// Dup'd, or is a Dup). The first mutation clones the element headers
	// before writing; payload bytes stay shared read-only.
	cow bool
}

// DefaultTTL is the hop budget assigned by New. Seven hops comfortably
// covers rendezvous meshes of practical diameter.
const DefaultTTL = 7

// New returns an empty message with a fresh UUID and the default TTL.
func New(src jid.ID) *Message {
	return &Message{ID: jid.NewMessage(), Src: src, TTL: DefaultTTL}
}

// ownElements makes the element slice exclusively owned, cloning the
// headers (payloads stay shared) when it is marked copy-on-write. extra
// reserves capacity for that many appends beyond the current length.
func (m *Message) ownElements(extra int) {
	if !m.cow {
		return
	}
	el := make([]Element, len(m.elements), len(m.elements)+extra)
	copy(el, m.elements)
	m.elements = el
	m.cow = false
}

// Grow ensures capacity for n additional elements, so a known-size batch
// of Add calls allocates at most once.
func (m *Message) Grow(n int) {
	if m.cow || cap(m.elements)-len(m.elements) < n {
		el := make([]Element, len(m.elements), len(m.elements)+n)
		copy(el, m.elements)
		m.elements = el
		m.cow = false
	}
}

// AddElement appends an element to the message.
func (m *Message) AddElement(e Element) {
	m.ownElements(4)
	m.elements = append(m.elements, e)
}

// AddBytes appends an element with the given payload and the default MIME
// type.
func (m *Message) AddBytes(namespace, name string, data []byte) {
	m.AddElement(Element{Namespace: namespace, Name: name, Data: data})
}

// AddString appends a text element.
func (m *Message) AddString(namespace, name, value string) {
	m.AddElement(Element{Namespace: namespace, Name: name, MimeType: "text/plain", Data: []byte(value)})
}

// AddID appends an element whose payload is the binary wire form of the
// ID (jid.WireSize bytes), avoiding the text URN round-trip on the hot
// path. GetID reverses it.
func (m *Message) AddID(namespace, name string, id jid.ID) {
	m.AddElement(Element{
		Namespace: namespace,
		Name:      name,
		MimeType:  "application/x-jxta-id",
		Data:      id.AppendWire(make([]byte, 0, jid.WireSize)),
	})
}

// ReplaceID is AddID with ReplaceElement semantics.
func (m *Message) ReplaceID(namespace, name string, id jid.ID) {
	m.ReplaceElement(Element{
		Namespace: namespace,
		Name:      name,
		MimeType:  "application/x-jxta-id",
		Data:      id.AppendWire(make([]byte, 0, jid.WireSize)),
	})
}

// GetID decodes the named ID element. It accepts both the binary form
// written by AddID and, for compatibility with frames from older peers,
// the canonical text URN. A missing element or malformed payload returns
// an error.
func (m *Message) GetID(namespace, name string) (jid.ID, error) {
	e, ok := m.Element(namespace, name)
	if !ok {
		return jid.Nil, fmt.Errorf("message: no %s:%s element", namespace, name)
	}
	if len(e.Data) == jid.WireSize {
		return jid.FromWire(e.Data[0], [16]byte(e.Data[1:]))
	}
	return jid.Parse(string(e.Data))
}

// Element returns the first element with the given namespace and name.
func (m *Message) Element(namespace, name string) (Element, bool) {
	for _, e := range m.elements {
		if e.Namespace == namespace && e.Name == name {
			return e, true
		}
	}
	return Element{}, false
}

// Text returns the payload of the named text element, or "" if absent.
func (m *Message) Text(namespace, name string) string {
	e, ok := m.Element(namespace, name)
	if !ok {
		return ""
	}
	return string(e.Data)
}

// Bytes returns the payload of the named element, or nil if absent.
func (m *Message) Bytes(namespace, name string) []byte {
	e, ok := m.Element(namespace, name)
	if !ok {
		return nil
	}
	return e.Data
}

// Uint64 decodes the named element as an 8-byte big-endian unsigned
// integer — the convention binary numeric elements use (the rdv:Seq
// log sequence, the trc:Ev publish stamp). ok is false when the
// element is absent or not exactly 8 bytes. The lookup is
// allocation-free, so hot-path probes can afford it per message.
func (m *Message) Uint64(namespace, name string) (uint64, bool) {
	e, ok := m.Element(namespace, name)
	if !ok || len(e.Data) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(e.Data), true
}

// ReplaceElement replaces the first element matching e's namespace and
// name, or appends e if no such element exists.
func (m *Message) ReplaceElement(e Element) {
	for i := range m.elements {
		if m.elements[i].Namespace == e.Namespace && m.elements[i].Name == e.Name {
			m.ownElements(1)
			m.elements[i] = e
			return
		}
	}
	m.AddElement(e)
}

// RemoveElement removes the first element with the given namespace and
// name and reports whether one was removed.
func (m *Message) RemoveElement(namespace, name string) bool {
	for i := range m.elements {
		if m.elements[i].Namespace == namespace && m.elements[i].Name == name {
			m.ownElements(0)
			m.elements = append(m.elements[:i], m.elements[i+1:]...)
			return true
		}
	}
	return false
}

// Elements returns a copy of the element list. Payload byte slices are
// shared; treat them as read-only.
func (m *Message) Elements() []Element {
	out := make([]Element, len(m.elements))
	copy(out, m.elements)
	return out
}

// Len returns the number of elements.
func (m *Message) Len() int { return len(m.elements) }

// Visited reports whether peer is already on the message path.
func (m *Message) Visited(peer jid.ID) bool {
	for _, p := range m.Path {
		if p == peer {
			return true
		}
	}
	return false
}

// Stamp appends peer to the path and decrements the TTL. It reports false
// if the TTL was already exhausted or the peer had been visited, in which
// case the message must not be forwarded. The path slice is pre-sized
// from the remaining TTL, so a full-TTL traversal reallocates at most
// once.
func (m *Message) Stamp(peer jid.ID) bool {
	if m.TTL == 0 || m.Visited(peer) {
		return false
	}
	m.TTL--
	if cap(m.Path) == len(m.Path) {
		p := make([]jid.ID, len(m.Path), len(m.Path)+int(m.TTL)+1)
		copy(p, m.Path)
		m.Path = p
	}
	m.Path = append(m.Path, peer)
	return true
}

// Dup returns a copy of the message that may be mutated independently.
// The copy keeps the same message ID: duplicate suppression must treat a
// re-sent message as the same logical event, as JXTA's msg.dup() does.
//
// Dup is O(1) in the payload: elements are shared copy-on-write between
// the original and the copy (see the package comment), so duplicating a
// message costs two small allocations regardless of how many kilobytes
// its payload elements hold. Only the path — the per-hop mutable state —
// is copied eagerly, pre-sized so Stamp never reallocates it.
func (m *Message) Dup() *Message {
	m.cow = true
	out := &Message{ID: m.ID, Src: m.Src, TTL: m.TTL, elements: m.elements, cow: true}
	if len(m.Path) > 0 {
		out.Path = make([]jid.ID, len(m.Path), len(m.Path)+int(m.TTL)+1)
		copy(out.Path, m.Path)
	}
	return out
}

// WireSize returns the exact encoded size in bytes without encoding.
func (m *Message) WireSize() int {
	n := 4 + 1 + 2*17 + 1 + 1 + len(m.Path)*17 + 2 // magic, version, ids, ttl, plen, path, count
	for _, e := range m.elements {
		n += 2 + len(e.Namespace) + 2 + len(e.Name) + 2 + len(e.MimeType) + 4 + len(e.Data)
	}
	return n
}

// Validation limits for the wire codec. They bound what a malicious or
// corrupt peer can make the decoder allocate.
const (
	MaxElements    = 1024
	MaxElementSize = 16 << 20 // 16 MiB per element payload
	MaxPathLen     = 64
)

// ErrTooLarge is returned when a message violates the codec limits.
var ErrTooLarge = errors.New("message: exceeds wire limits")

// Validate checks the message against the wire limits.
func (m *Message) Validate() error {
	if len(m.elements) > MaxElements {
		return fmt.Errorf("%w: %d elements", ErrTooLarge, len(m.elements))
	}
	if len(m.Path) > MaxPathLen {
		return fmt.Errorf("%w: path length %d", ErrTooLarge, len(m.Path))
	}
	for _, e := range m.elements {
		if len(e.Data) > MaxElementSize {
			return fmt.Errorf("%w: element %s is %d bytes", ErrTooLarge, e.Key(), len(e.Data))
		}
		if len(e.Namespace) > 255 || len(e.Name) > 255 || len(e.MimeType) > 255 {
			return fmt.Errorf("%w: element header fields exceed 255 bytes", ErrTooLarge)
		}
	}
	return nil
}
