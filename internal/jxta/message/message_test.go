package message

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

func testMsg() *Message {
	m := New(jid.FromSeed(jid.KindPeer, 1))
	m.AddString("jxta", "service", "discovery")
	m.AddBytes("app", "payload", []byte{0, 1, 2, 3, 255})
	m.AddElement(Element{Namespace: "wire", Name: "seq", MimeType: "text/plain", Data: []byte("42")})
	return m
}

func TestNewDefaults(t *testing.T) {
	src := jid.FromSeed(jid.KindPeer, 7)
	m := New(src)
	if m.Src != src {
		t.Fatalf("Src = %v", m.Src)
	}
	if m.TTL != DefaultTTL {
		t.Fatalf("TTL = %d", m.TTL)
	}
	if m.ID.Kind() != jid.KindMessage {
		t.Fatalf("ID kind = %v", m.ID.Kind())
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestElementAccess(t *testing.T) {
	m := testMsg()
	e, ok := m.Element("jxta", "service")
	if !ok || string(e.Data) != "discovery" {
		t.Fatalf("Element = %+v, %v", e, ok)
	}
	if _, ok := m.Element("jxta", "absent"); ok {
		t.Fatal("found absent element")
	}
	if _, ok := m.Element("absent", "service"); ok {
		t.Fatal("namespace not honoured")
	}
	if got := m.Text("wire", "seq"); got != "42" {
		t.Fatalf("Text = %q", got)
	}
	if got := m.Text("wire", "nope"); got != "" {
		t.Fatalf("Text(absent) = %q", got)
	}
	if got := m.Bytes("app", "payload"); !bytes.Equal(got, []byte{0, 1, 2, 3, 255}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := m.Bytes("app", "nope"); got != nil {
		t.Fatalf("Bytes(absent) = %v", got)
	}
	if e.Key() != "jxta:service" {
		t.Fatalf("Key = %q", e.Key())
	}
}

func TestReplaceAndRemove(t *testing.T) {
	m := testMsg()
	m.ReplaceElement(Element{Namespace: "wire", Name: "seq", Data: []byte("43")})
	if got := string(m.Bytes("wire", "seq")); got != "43" {
		t.Fatalf("after replace: %q", got)
	}
	if m.Len() != 3 {
		t.Fatalf("replace added element: Len=%d", m.Len())
	}
	m.ReplaceElement(Element{Namespace: "wire", Name: "new", Data: []byte("x")})
	if m.Len() != 4 {
		t.Fatal("replace of absent did not append")
	}
	if !m.RemoveElement("wire", "new") {
		t.Fatal("remove existing returned false")
	}
	if m.RemoveElement("wire", "new") {
		t.Fatal("remove absent returned true")
	}
	if m.Len() != 3 {
		t.Fatalf("Len after remove = %d", m.Len())
	}
}

func TestElementsIsCopy(t *testing.T) {
	m := testMsg()
	els := m.Elements()
	els[0].Name = "mutated"
	if _, ok := m.Element("jxta", "service"); !ok {
		t.Fatal("mutating Elements() result affected message")
	}
}

func TestStampAndVisited(t *testing.T) {
	m := testMsg()
	p1 := jid.FromSeed(jid.KindPeer, 11)
	p2 := jid.FromSeed(jid.KindPeer, 12)
	if m.Visited(p1) {
		t.Fatal("fresh message claims visit")
	}
	if !m.Stamp(p1) {
		t.Fatal("first stamp failed")
	}
	if m.TTL != DefaultTTL-1 {
		t.Fatalf("TTL = %d", m.TTL)
	}
	if !m.Visited(p1) {
		t.Fatal("Visited false after stamp")
	}
	if m.Stamp(p1) {
		t.Fatal("re-stamp by same peer allowed")
	}
	m.TTL = 0
	if m.Stamp(p2) {
		t.Fatal("stamp allowed with TTL 0")
	}
}

func TestDupIsIndependent(t *testing.T) {
	m := testMsg()
	m.Stamp(jid.FromSeed(jid.KindPeer, 9))
	d := m.Dup()
	if d.ID != m.ID {
		t.Fatal("Dup changed message ID")
	}
	if !reflect.DeepEqual(d.Elements(), m.Elements()) {
		t.Fatal("Dup elements differ")
	}
	// Payload bytes are intentionally shared read-only between a message
	// and its Dups; independence holds for every mutator.
	d.ReplaceElement(Element{Namespace: "app", Name: "payload", Data: []byte{99}})
	if m.Bytes("app", "payload")[0] == 99 {
		t.Fatal("ReplaceElement on dup leaked into original")
	}
	d.Path[0] = jid.FromSeed(jid.KindPeer, 1000)
	if m.Path[0] == d.Path[0] {
		t.Fatal("Dup shares path slice")
	}
}

// TestDupCopyOnWrite pins the COW contract element-by-element: every
// mutator on any copy leaves the original and all sibling copies exactly
// as they were.
func TestDupCopyOnWrite(t *testing.T) {
	m := testMsg()
	before := m.Elements()

	d1, d2 := m.Dup(), m.Dup()
	d1.ReplaceElement(Element{Namespace: "wire", Name: "seq", Data: []byte("changed")})
	d2.AddElement(Element{Namespace: "x", Name: "extra", Data: []byte("e")})
	if !reflect.DeepEqual(m.Elements(), before) {
		t.Fatal("mutating dups changed the original")
	}
	if string(d2.Bytes("wire", "seq")) != "42" {
		t.Fatal("d1's ReplaceElement leaked into sibling d2")
	}
	if _, ok := d1.Element("x", "extra"); ok {
		t.Fatal("d2's AddElement leaked into sibling d1")
	}

	// Mutating the ORIGINAL after Dup must not leak into live copies.
	d3 := m.Dup()
	m.RemoveElement("app", "payload")
	if d3.Bytes("app", "payload") == nil {
		t.Fatal("RemoveElement on original leaked into dup")
	}
	m.AddElement(Element{Namespace: "y", Name: "late", Data: []byte("l")})
	if _, ok := d3.Element("y", "late"); ok {
		t.Fatal("AddElement on original leaked into dup")
	}
}

// TestDupStampIndependent verifies per-hop path state stays private: a
// forwarding hop stamping its copy never alters the sender's path, and
// sibling hops stamping concurrently-shaped copies do not see each other.
func TestDupStampIndependent(t *testing.T) {
	m := testMsg()
	m.Stamp(jid.FromSeed(jid.KindPeer, 1))
	f1, f2 := m.Dup(), m.Dup()
	if !f1.Stamp(jid.FromSeed(jid.KindPeer, 2)) || !f2.Stamp(jid.FromSeed(jid.KindPeer, 3)) {
		t.Fatal("stamp on dup failed")
	}
	if len(m.Path) != 1 {
		t.Fatalf("original path grew: %v", m.Path)
	}
	if f1.Visited(jid.FromSeed(jid.KindPeer, 3)) || f2.Visited(jid.FromSeed(jid.KindPeer, 2)) {
		t.Fatal("sibling stamps aliased")
	}
	if m.TTL != DefaultTTL-1 || f1.TTL != DefaultTTL-2 {
		t.Fatalf("TTL not per-copy: m=%d f1=%d", m.TTL, f1.TTL)
	}
}

// TestDupStampNoRealloc pins the path pre-sizing: once a dup's path has
// been allocated by its first Stamp, a full-TTL traversal appends in
// place.
func TestDupStampNoRealloc(t *testing.T) {
	m := New(jid.FromSeed(jid.KindPeer, 1))
	if !m.Stamp(jid.FromSeed(jid.KindPeer, 2)) {
		t.Fatal("first stamp failed")
	}
	base := &m.Path[0]
	for i := 0; m.TTL > 0; i++ {
		if !m.Stamp(jid.FromSeed(jid.KindPeer, uint64(10+i))) {
			t.Fatal("stamp within TTL failed")
		}
	}
	if &m.Path[0] != base {
		t.Fatal("full-TTL traversal reallocated the path")
	}
	if len(m.Path) != DefaultTTL {
		t.Fatalf("path length %d, want %d", len(m.Path), DefaultTTL)
	}
}

// TestConcurrentFanOutMutation is the -race aliasing gate: one published
// message fans out to many goroutines, each Dup-ing its own envelope and
// rewriting the pipe-ID element plus stamping, exactly like the
// wire→rendezvous path does per hop. No mutation may reach a sibling or
// the publisher's message.
func TestConcurrentFanOutMutation(t *testing.T) {
	m := testMsg()
	m.AddElement(Element{Namespace: "wire", Name: "ID", Data: []byte("original")})
	// All Dups are taken sequentially (the ownership contract), the
	// mutations then race against concurrent readers of the original.
	const fan = 16
	dups := make([]*Message, fan)
	for i := range dups {
		dups[i] = m.Dup()
	}
	var wg sync.WaitGroup
	for i, d := range dups {
		wg.Add(1)
		go func(i int, d *Message) {
			defer wg.Done()
			d.ReplaceElement(Element{Namespace: "wire", Name: "ID", Data: []byte{byte(i)}})
			d.Stamp(jid.FromSeed(jid.KindPeer, uint64(100+i)))
			if got := d.Bytes("wire", "ID"); len(got) != 1 || got[0] != byte(i) {
				t.Errorf("dup %d sees foreign pipe ID %v", i, got)
			}
		}(i, d)
	}
	// Concurrent readers of the shared original while siblings mutate.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				if got := string(m.Bytes("wire", "ID")); got != "original" {
					t.Errorf("publisher's message mutated: %q", got)
				}
			}
		}()
	}
	wg.Wait()
	for i, d := range dups {
		if got := d.Bytes("wire", "ID"); len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("after join, dup %d has pipe ID %v", i, got)
		}
		if len(d.Path) != 1 {
			t.Fatalf("dup %d path %v", i, d.Path)
		}
	}
	if got := string(m.Bytes("wire", "ID")); got != "original" {
		t.Fatalf("publisher's message mutated: %q", got)
	}
	if len(m.Path) != 0 {
		t.Fatalf("publisher's path grew: %v", m.Path)
	}
}

// TestDupAllocBudget keeps Dup O(1): duplicating a message with a
// multi-kilobyte payload must cost at most two small allocations (the
// struct and the path copy), never a payload copy.
func TestDupAllocBudget(t *testing.T) {
	m := New(jid.FromSeed(jid.KindPeer, 1))
	m.AddBytes("bench", "payload", make([]byte, 1910))
	m.Stamp(jid.FromSeed(jid.KindPeer, 2))
	allocs := testing.AllocsPerRun(200, func() {
		sink = m.Dup()
	})
	if allocs > 2 {
		t.Errorf("Dup allocates %.1f/op, budget is 2 (struct + path)", allocs)
	}
}

var sink *Message

func TestMarshalRoundTrip(t *testing.T) {
	m := testMsg()
	m.Stamp(jid.FromSeed(jid.KindPeer, 2))
	m.Stamp(jid.FromSeed(jid.KindPeer, 3))
	frame, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != m.WireSize() {
		t.Fatalf("frame len %d != WireSize %d", len(frame), m.WireSize())
	}
	got, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.Src != m.Src || got.TTL != m.TTL {
		t.Fatalf("envelope mismatch: %+v vs %+v", got, m)
	}
	if !reflect.DeepEqual(got.Path, m.Path) {
		t.Fatalf("path mismatch: %v vs %v", got.Path, m.Path)
	}
	if !reflect.DeepEqual(got.Elements(), m.Elements()) {
		t.Fatal("elements mismatch")
	}
}

func TestMarshalEmptyMessage(t *testing.T) {
	m := New(jid.Nil)
	frame, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || !got.Src.IsZero() {
		t.Fatalf("got %+v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	m := testMsg()
	frame, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[0] = 'X'
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[4] = 99
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 1; cut < len(frame); cut += 7 {
			if _, err := Unmarshal(frame[:len(frame)-cut]); err == nil {
				t.Fatalf("truncated frame (cut %d) decoded", cut)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		bad := append(append([]byte(nil), frame...), 0xEE)
		if _, err := Unmarshal(bad); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Unmarshal(nil); err == nil {
			t.Fatal("nil frame decoded")
		}
	})
}

func TestValidateLimits(t *testing.T) {
	m := New(jid.Nil)
	m.AddElement(Element{Namespace: strings.Repeat("n", 300), Name: "x"})
	if err := m.Validate(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("long namespace: %v", err)
	}

	m = New(jid.Nil)
	for i := 0; i <= MaxElements; i++ {
		m.AddBytes("a", "b", nil)
	}
	if err := m.Validate(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("too many elements: %v", err)
	}

	m = New(jid.Nil)
	m.Path = make([]jid.ID, MaxPathLen+1)
	if err := m.Validate(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("long path: %v", err)
	}
	if _, err := m.Marshal(); err == nil {
		t.Fatal("Marshal accepted invalid message")
	}
}

// elementsEquivalent compares element lists treating nil and empty
// payloads as equal: the wire format cannot distinguish them.
func elementsEquivalent(a, b []Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Namespace != b[i].Namespace || a[i].Name != b[i].Name ||
			a[i].MimeType != b[i].MimeType || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

// Property: arbitrary messages survive a Marshal/Unmarshal round trip.
func TestQuickCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(srcSeed uint64, ttl uint8, nElems uint8, payload []byte) bool {
		m := New(jid.FromSeed(jid.KindPeer, srcSeed))
		m.TTL = ttl
		for i := 0; i < int(nElems%16); i++ {
			m.AddElement(Element{
				Namespace: "ns" + string(rune('a'+i%3)),
				Name:      "el" + string(rune('a'+i%5)),
				MimeType:  "application/test",
				Data:      payload,
			})
		}
		for i := 0; i < rng.Intn(4); i++ {
			m.Path = append(m.Path, jid.FromSeed(jid.KindPeer, uint64(i)))
		}
		frame, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(frame)
		if err != nil {
			return false
		}
		return got.ID == m.ID && got.Src == m.Src && got.TTL == m.TTL &&
			elementsEquivalent(got.Elements(), m.Elements()) &&
			reflect.DeepEqual(got.Path, m.Path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a decoded frame does not alias the input buffer.
func TestUnmarshalCopiesData(t *testing.T) {
	m := testMsg()
	frame, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		frame[i] = 0
	}
	if string(got.Bytes("jxta", "service")) != "discovery" {
		t.Fatal("decoded message aliases the frame buffer")
	}
}

func BenchmarkMarshal(b *testing.B) {
	m := New(jid.FromSeed(jid.KindPeer, 1))
	m.AddBytes("bench", "payload", bytes.Repeat([]byte{0xAB}, 1910)) // paper's message size
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	m := New(jid.FromSeed(jid.KindPeer, 1))
	m.AddBytes("bench", "payload", bytes.Repeat([]byte{0xAB}, 1910))
	frame, err := m.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAddGetIDRoundTrip(t *testing.T) {
	m := New(jid.FromSeed(jid.KindPeer, 1))
	want := jid.FromSeed(jid.KindPipe, 42)
	m.AddID("tps", "EventID", want)
	e, ok := m.Element("tps", "EventID")
	if !ok {
		t.Fatal("element missing")
	}
	if len(e.Data) != jid.WireSize {
		t.Fatalf("binary ID element is %d bytes, want %d", len(e.Data), jid.WireSize)
	}
	got, err := m.GetID("tps", "EventID")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestReplaceIDReplaces(t *testing.T) {
	m := New(jid.FromSeed(jid.KindPeer, 1))
	m.AddID("wire", "ID", jid.FromSeed(jid.KindPipe, 1))
	m.ReplaceID("wire", "ID", jid.FromSeed(jid.KindPipe, 2))
	if m.Len() != 1 {
		t.Fatalf("ReplaceID appended instead of replacing: %d elements", m.Len())
	}
	got, err := m.GetID("wire", "ID")
	if err != nil {
		t.Fatal(err)
	}
	if got != jid.FromSeed(jid.KindPipe, 2) {
		t.Fatalf("got %v", got)
	}
}

func TestGetIDTextFallback(t *testing.T) {
	// Frames from peers predating the binary ID element carry the ID as a
	// canonical URN string; GetID must still understand them.
	m := New(jid.FromSeed(jid.KindPeer, 1))
	want := jid.FromSeed(jid.KindMessage, 7)
	m.AddString("tps", "EventID", want.String())
	got, err := m.GetID("tps", "EventID")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestGetIDErrors(t *testing.T) {
	m := New(jid.FromSeed(jid.KindPeer, 1))
	if _, err := m.GetID("tps", "absent"); err == nil {
		t.Fatal("missing element must error")
	}
	m.AddBytes("tps", "junk", []byte("not an id"))
	if _, err := m.GetID("tps", "junk"); err == nil {
		t.Fatal("malformed payload must error")
	}
	bad := make([]byte, jid.WireSize)
	bad[0] = 0xEE // invalid kind byte, non-zero uuid
	bad[1] = 1
	m.AddBytes("tps", "badkind", bad)
	if _, err := m.GetID("tps", "badkind"); err == nil {
		t.Fatal("invalid kind byte must error")
	}
}

// TestWireCompatGoldenFrame builds a frame byte-for-byte to the layout
// documented in codec.go — the layout frames had before the binary ID
// fast path — and asserts both directions: Unmarshal decodes it, and
// Marshal still produces exactly those bytes. The binary ID change is an
// implementation detail; the wire format must not move.
func TestWireCompatGoldenFrame(t *testing.T) {
	src := jid.FromSeed(jid.KindPeer, 3)
	hop := jid.FromSeed(jid.KindPeer, 4)
	msgID := jid.FromSeed(jid.KindMessage, 5)

	putID := func(buf []byte, id jid.ID) []byte {
		buf = append(buf, byte(id.Kind()))
		u := id.UUID()
		return append(buf, u[:]...)
	}
	var golden []byte
	golden = append(golden, 'J', 'X', 'M', '1') // magic
	golden = append(golden, 1)                  // version
	golden = putID(golden, msgID)
	golden = putID(golden, src)
	golden = append(golden, 6)    // ttl
	golden = append(golden, 1)    // path length
	golden = putID(golden, hop)   // path[0]
	golden = append(golden, 0, 1) // element count
	golden = append(golden, 0, 3) // nslen
	golden = append(golden, "app"...)
	golden = append(golden, 0, 4) // namelen
	golden = append(golden, "data"...)
	golden = append(golden, 0, 0)       // mimelen
	golden = append(golden, 0, 0, 0, 2) // datalen
	golden = append(golden, 0xCA, 0xFE)

	m, err := Unmarshal(golden)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != msgID || m.Src != src || m.TTL != 6 {
		t.Fatalf("envelope mismatch: %+v", m)
	}
	if len(m.Path) != 1 || m.Path[0] != hop {
		t.Fatalf("path mismatch: %v", m.Path)
	}
	if got := m.Bytes("app", "data"); !bytes.Equal(got, []byte{0xCA, 0xFE}) {
		t.Fatalf("payload mismatch: %x", got)
	}

	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, golden) {
		t.Fatalf("re-marshal diverged from golden frame:\n got %x\nwant %x", enc, golden)
	}
}

func TestMarshalAppendUsesBuffer(t *testing.T) {
	m := testMsg()
	buf := make([]byte, 0, m.WireSize())
	out, err := m.MarshalAppend(buf)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("MarshalAppend reallocated despite sufficient capacity")
	}
	plain, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, plain) {
		t.Fatal("MarshalAppend and Marshal disagree")
	}
}

func TestUnmarshalRejectsBadIDKind(t *testing.T) {
	frame, err := testMsg().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the kind byte of the message ID (first byte after magic+version).
	frame[5] = 0xEE
	if _, err := Unmarshal(frame); err == nil {
		t.Fatal("corrupt kind byte must be rejected")
	}
}
