package message

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// Wire format (all integers big-endian):
//
//	magic   [4]byte  "JXM1"
//	version uint8    currently 1
//	id      [17]byte kind byte + 16 UUID bytes
//	src     [17]byte
//	ttl     uint8
//	plen    uint8    path length
//	path    plen × [17]byte
//	count   uint16   element count
//	count × element:
//	  nslen   uint16, ns    []byte
//	  namelen uint16, name  []byte
//	  mimelen uint16, mime  []byte
//	  datalen uint32, data  []byte
//
// The format is deliberately simple: it is the moral equivalent of JXTA's
// binary message wire format, and the paper's 1910-byte test messages fit
// in a single frame.

var wireMagic = [4]byte{'J', 'X', 'M', '1'}

const wireVersion = 1

// Decode errors.
var (
	ErrBadMagic   = errors.New("message: bad magic")
	ErrBadVersion = errors.New("message: unsupported version")
	ErrTruncated  = errors.New("message: truncated frame")
)

func putID(buf []byte, id jid.ID) []byte {
	return id.AppendWire(buf)
}

func readID(r *sliceReader) (jid.ID, error) {
	var raw [jid.WireSize]byte
	if err := r.readInto(raw[:]); err != nil {
		return jid.Nil, err
	}
	id, err := jid.FromWire(raw[0], [16]byte(raw[1:]))
	if err != nil {
		return jid.Nil, fmt.Errorf("message: bad ID: %w", err)
	}
	return id, nil
}

// Marshal encodes the message into a single wire frame.
func (m *Message) Marshal() ([]byte, error) {
	return m.MarshalAppend(make([]byte, 0, m.WireSize()))
}

// MarshalAppend encodes the message onto the end of buf and returns the
// extended slice, letting hot paths reuse pooled buffers instead of
// allocating a fresh frame per send.
func (m *Message) MarshalAppend(buf []byte) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	buf = append(buf, wireMagic[:]...)
	buf = append(buf, wireVersion)
	buf = putID(buf, m.ID)
	buf = putID(buf, m.Src)
	buf = append(buf, m.TTL)
	buf = append(buf, byte(len(m.Path)))
	for _, p := range m.Path {
		buf = putID(buf, p)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.elements)))
	for _, e := range m.elements {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Namespace)))
		buf = append(buf, e.Namespace...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Name)))
		buf = append(buf, e.Name...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.MimeType)))
		buf = append(buf, e.MimeType...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Data)))
		buf = append(buf, e.Data...)
	}
	return buf, nil
}

// Unmarshal decodes one wire frame produced by Marshal.
func Unmarshal(frame []byte) (*Message, error) {
	r := &sliceReader{buf: frame}
	var magic [4]byte
	if err := r.readInto(magic[:]); err != nil {
		return nil, err
	}
	if magic != wireMagic {
		return nil, ErrBadMagic
	}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	m := &Message{}
	if m.ID, err = readID(r); err != nil {
		return nil, err
	}
	if m.Src, err = readID(r); err != nil {
		return nil, err
	}
	if m.TTL, err = r.byte(); err != nil {
		return nil, err
	}
	plen, err := r.byte()
	if err != nil {
		return nil, err
	}
	if int(plen) > MaxPathLen {
		return nil, fmt.Errorf("%w: path length %d", ErrTooLarge, plen)
	}
	if plen > 0 {
		// Pre-size for the hops the message can still take, so forwarding
		// peers Stamp without reallocating.
		m.Path = make([]jid.ID, plen, int(plen)+int(m.TTL)+1)
		for i := range m.Path {
			if m.Path[i], err = readID(r); err != nil {
				return nil, err
			}
		}
	}
	count, err := r.uint16()
	if err != nil {
		return nil, err
	}
	if int(count) > MaxElements {
		return nil, fmt.Errorf("%w: %d elements", ErrTooLarge, count)
	}
	m.elements = make([]Element, 0, count)
	for i := 0; i < int(count); i++ {
		var e Element
		if e.Namespace, err = r.shortString(); err != nil {
			return nil, err
		}
		if e.Name, err = r.shortString(); err != nil {
			return nil, err
		}
		if e.MimeType, err = r.shortString(); err != nil {
			return nil, err
		}
		dlen, err := r.uint32()
		if err != nil {
			return nil, err
		}
		if dlen > MaxElementSize {
			return nil, fmt.Errorf("%w: element payload %d bytes", ErrTooLarge, dlen)
		}
		if e.Data, err = r.take(int(dlen)); err != nil {
			return nil, err
		}
		m.elements = append(m.elements, e)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("message: %d trailing bytes", r.remaining())
	}
	return m, nil
}

// sliceReader is a zero-copy cursor over a decode buffer. take returns
// copies so the decoded message does not alias the network buffer.
type sliceReader struct {
	buf []byte
	off int
}

func (r *sliceReader) remaining() int { return len(r.buf) - r.off }

// readInto copies exactly len(p) bytes into p without the interface
// indirection of io.ReadFull, which would force p's backing array to
// escape to the heap at every call site.
func (r *sliceReader) readInto(p []byte) error {
	if r.remaining() < len(p) {
		return ErrTruncated
	}
	copy(p, r.buf[r.off:])
	r.off += len(p)
	return nil
}

func (r *sliceReader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, ErrTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *sliceReader) uint16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *sliceReader) uint32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *sliceReader) take(n int) ([]byte, error) {
	if r.remaining() < n {
		return nil, ErrTruncated
	}
	out := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return out, nil
}

func (r *sliceReader) shortString() (string, error) {
	n, err := r.uint16()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
