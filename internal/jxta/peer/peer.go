// Package peer assembles a complete JXTA peer: an endpoint with its
// transports, the bootstrap net peer group, and the groups the peer
// joins over its lifetime.
//
// Any networked device is a peer; peers with extra duties (rendezvous,
// relay/router) are just peers configured with those roles. A peer that
// crashes and restarts keeps its identity (its ID), which is what lets
// pipes re-bind to it wherever it reappears.
package peer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/peergroup"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/wire"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

// Errors.
var (
	ErrClosed       = errors.New("peer: closed")
	ErrNoTransports = errors.New("peer: no transports")
	ErrAlreadyIn    = errors.New("peer: already joined group")
	ErrNoWireInAdv  = errors.New("peer: advertisement has no wire service pipe")
)

// Config configures a peer.
type Config struct {
	// Name is the peer's human-readable name.
	Name string
	// ID fixes the peer identity; zero generates a fresh one. Restarted
	// peers pass their old ID to keep their pipes and advertisements.
	ID jid.ID
	// Role is the peer's default role in joined groups.
	Role rendezvous.Role
	// Seeds are the default rendezvous addresses for joined groups.
	Seeds []endpoint.Address
	// LeaseTTL overrides the rendezvous lease duration.
	LeaseTTL time.Duration
	// Firewalled marks the peer as unable to accept unsolicited inbound
	// traffic.
	Firewalled bool
	// Log is the durable event log rendezvous services append to and
	// replay from; nil (the default) disables durability entirely.
	Log *eventlog.Log
	// Tracer is the peer-local hop-trace store rendezvous services (and
	// the engines above) record sampled-event hops into; nil disables
	// forward-hop recording on this peer.
	Tracer *trace.Store
	// ReplicaSeeds are the other members of this rendezvous daemon's
	// replica set: with a Log present, the daemon's wildcard rendezvous
	// anti-entropy-syncs its per-topic logs against them so any replica
	// can serve the others' retained history after a crash.
	ReplicaSeeds []endpoint.Address
	// SyncInterval is the anti-entropy digest cadence (zero: the
	// rendezvous default).
	SyncInterval time.Duration
	// Failover switches joined groups' rendezvous clients to
	// active/standby seed handling (see peergroup.Config.Failover).
	Failover bool
}

// Peer is a running JXTA peer.
type Peer struct {
	cfg Config
	ep  *endpoint.Service

	// joinMu serialises JoinGroup: constructing two stacks for the same
	// group concurrently would collide on endpoint handler registration.
	joinMu sync.Mutex

	mu     sync.Mutex
	groups map[jid.ID]*peergroup.Group
	net    *peergroup.Group
	closed bool
}

// New starts a peer with the given transports and joins the net peer
// group.
func New(cfg Config, transports ...endpoint.Transport) (*Peer, error) {
	if len(transports) == 0 {
		return nil, ErrNoTransports
	}
	if cfg.ID.IsZero() {
		cfg.ID = jid.NewPeer()
	}
	if cfg.Role == 0 {
		cfg.Role = rendezvous.RoleEdge
	}
	ep := endpoint.New(cfg.ID)
	for _, t := range transports {
		if err := ep.AddTransport(t); err != nil {
			_ = ep.Close()
			return nil, fmt.Errorf("peer %q: %w", cfg.Name, err)
		}
	}
	p := &Peer{cfg: cfg, ep: ep, groups: make(map[jid.ID]*peergroup.Group)}
	netGroup, err := p.JoinGroup(peergroup.Config{
		ID:   jid.NetGroup,
		Name: "NetPeerGroup",
	})
	if err != nil {
		_ = ep.Close()
		return nil, err
	}
	p.net = netGroup
	return p, nil
}

// ID returns the peer's identity.
func (p *Peer) ID() jid.ID { return p.cfg.ID }

// Name returns the peer's name.
func (p *Peer) Name() string { return p.cfg.Name }

// Endpoint exposes the endpoint service (stats, addresses).
func (p *Peer) Endpoint() *endpoint.Service { return p.ep }

// Addresses returns the peer's reachable addresses, best first.
func (p *Peer) Addresses() []endpoint.Address { return p.ep.LocalAddresses() }

// NetGroup returns the bootstrap group every peer joins at start.
func (p *Peer) NetGroup() *peergroup.Group {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.net
}

// Group returns the joined group with the given ID.
func (p *Peer) Group(id jid.ID) (*peergroup.Group, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.groups[id]
	return g, ok
}

// Groups lists all joined groups.
func (p *Peer) Groups() []*peergroup.Group {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*peergroup.Group, 0, len(p.groups))
	for _, g := range p.groups {
		out = append(out, g)
	}
	return out
}

// JoinGroup instantiates the group's service stack on this peer. Fields
// left zero in cfg inherit the peer's defaults (role, seeds, lease,
// firewall).
func (p *Peer) JoinGroup(cfg peergroup.Config) (*peergroup.Group, error) {
	if cfg.Role == 0 {
		cfg.Role = p.cfg.Role
	}
	if cfg.Seeds == nil {
		cfg.Seeds = p.cfg.Seeds
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = p.cfg.LeaseTTL
	}
	if !cfg.Firewalled {
		cfg.Firewalled = p.cfg.Firewalled
	}
	if cfg.Log == nil {
		cfg.Log = p.cfg.Log
	}
	if cfg.Tracer == nil {
		cfg.Tracer = p.cfg.Tracer
	}
	if !cfg.Failover {
		cfg.Failover = p.cfg.Failover
	}
	if cfg.ID.IsZero() {
		cfg.ID = jid.NetGroup
	}
	p.joinMu.Lock()
	defer p.joinMu.Unlock()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := p.groups[cfg.ID]; ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrAlreadyIn, cfg.ID)
	}
	p.mu.Unlock()

	g, err := peergroup.New(p.ep, cfg)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		g.Close()
		return nil, ErrClosed
	}
	p.groups[cfg.ID] = g
	p.mu.Unlock()
	return g, nil
}

// JoinGroupFromAdv joins the group described by a peer-group
// advertisement found in discovery, mirroring the paper's
// WireServiceFinder: it extracts the embedded wire service and returns
// the propagated pipe advertisement to open input/output pipes with.
func (p *Peer) JoinGroupFromAdv(pg *adv.PeerGroupAdv) (*peergroup.Group, *adv.PipeAdv, error) {
	svc, ok := pg.Service(wire.ServiceName)
	if !ok || svc.Pipe == nil {
		return nil, nil, fmt.Errorf("%w (group %q)", ErrNoWireInAdv, pg.Name)
	}
	g, err := p.JoinGroup(peergroup.Config{ID: pg.GroupID, Name: pg.Name})
	if err != nil {
		if errors.Is(err, ErrAlreadyIn) {
			if existing, found := p.Group(pg.GroupID); found {
				return existing, svc.Pipe, nil
			}
		}
		return nil, nil, err
	}
	return g, svc.Pipe, nil
}

// LeaveGroup tears down the group's service stack on this peer.
func (p *Peer) LeaveGroup(id jid.ID) {
	p.mu.Lock()
	g, ok := p.groups[id]
	delete(p.groups, id)
	if p.net != nil && ok && g == p.net {
		p.net = nil
	}
	p.mu.Unlock()
	if ok {
		g.Close()
	}
}

// SelfAdvertisement builds this peer's advertisement for publication in
// discovery.
func (p *Peer) SelfAdvertisement() *adv.PeerAdv {
	pa := &adv.PeerAdv{
		PeerID:     p.cfg.ID,
		GroupID:    jid.NetGroup,
		Name:       p.cfg.Name,
		Rendezvous: p.cfg.Role == rendezvous.RoleRendezvous,
	}
	for _, a := range p.ep.LocalAddresses() {
		pa.Addresses = append(pa.Addresses, string(a))
	}
	return pa
}

// AnnounceSelf publishes the peer advertisement in the net group, both
// locally and into the mesh.
func (p *Peer) AnnounceSelf() error {
	net := p.NetGroup()
	if net == nil {
		return ErrClosed
	}
	return net.Discovery.RemotePublish(p.SelfAdvertisement(), 0)
}

// Close leaves all groups and shuts the endpoint down.
func (p *Peer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	groups := make([]*peergroup.Group, 0, len(p.groups))
	for _, g := range p.groups {
		groups = append(groups, g)
	}
	p.groups = map[jid.ID]*peergroup.Group{}
	p.net = nil
	p.mu.Unlock()
	for _, g := range groups {
		g.Close()
	}
	_ = p.ep.Close()
}
