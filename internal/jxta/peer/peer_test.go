package peer_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/peergroup"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

type cluster struct {
	t   *testing.T
	net *netsim.Network
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	n := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(n.Close)
	return &cluster{t: t, net: n}
}

// addDaemon starts a rendezvous/relay daemon peer.
func (c *cluster) addDaemon(name string) *peer.Peer {
	c.t.Helper()
	node, err := c.net.AddNode(name)
	if err != nil {
		c.t.Fatal(err)
	}
	p, err := peer.New(peer.Config{
		Name:     name,
		Role:     rendezvous.RoleRendezvous,
		LeaseTTL: 2 * time.Second,
	}, memnet.New(node))
	if err != nil {
		c.t.Fatal(err)
	}
	if _, err := p.EnableDaemon(); err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(p.Close)
	return p
}

// addEdge starts an ordinary edge peer seeded with the daemon.
func (c *cluster) addEdge(name string, seeds ...endpoint.Address) *peer.Peer {
	c.t.Helper()
	node, err := c.net.AddNode(name)
	if err != nil {
		c.t.Fatal(err)
	}
	p, err := peer.New(peer.Config{
		Name:     name,
		Seeds:    seeds,
		LeaseTTL: 2 * time.Second,
	}, memnet.New(node))
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(p.Close)
	return p
}

func TestPeerBootJoinsNetGroup(t *testing.T) {
	c := newCluster(t)
	p := c.addEdge("solo")
	net := p.NetGroup()
	if net == nil {
		t.Fatal("no net group after boot")
	}
	if net.ID() != jid.NetGroup {
		t.Fatalf("net group ID %v", net.ID())
	}
	if len(p.Groups()) != 1 {
		t.Fatalf("groups = %d", len(p.Groups()))
	}
	if got := p.Addresses(); len(got) != 1 || got[0] != "mem://solo" {
		t.Fatalf("addresses %v", got)
	}
}

func TestPeerRequiresTransport(t *testing.T) {
	if _, err := peer.New(peer.Config{Name: "none"}); !errors.Is(err, peer.ErrNoTransports) {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinLeaveCustomGroup(t *testing.T) {
	c := newCluster(t)
	p := c.addEdge("p")
	gid := jid.FromSeed(jid.KindGroup, 100)
	g, err := p.JoinGroup(peergroup.Config{ID: gid, Name: "custom"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.JoinGroup(peergroup.Config{ID: gid, Name: "custom"}); !errors.Is(err, peer.ErrAlreadyIn) {
		t.Fatalf("double join: %v", err)
	}
	got, ok := p.Group(gid)
	if !ok || got != g {
		t.Fatal("group lookup failed")
	}
	p.LeaveGroup(gid)
	if _, ok := p.Group(gid); ok {
		t.Fatal("group still present after leave")
	}
	// Can re-join after leaving.
	if _, err := p.JoinGroup(peergroup.Config{ID: gid, Name: "custom"}); err != nil {
		t.Fatalf("re-join: %v", err)
	}
}

func TestWirePubSubThroughDaemonInTypeGroup(t *testing.T) {
	// The paper's core substrate flow: per-type peer groups bridged by a
	// rendezvous daemon that joined none of them.
	c := newCluster(t)
	c.addDaemon("rdv")
	pub := c.addEdge("pub", "mem://rdv")
	sub := c.addEdge("sub", "mem://rdv")

	gid := jid.FromSeed(jid.KindGroup, 7)
	gPub, err := pub.JoinGroup(peergroup.Config{ID: gid, Name: "PS.SkiRental"})
	if err != nil {
		t.Fatal(err)
	}
	gSub, err := sub.JoinGroup(peergroup.Config{ID: gid, Name: "PS.SkiRental"})
	if err != nil {
		t.Fatal(err)
	}
	if !gPub.AwaitRendezvous(5*time.Second) || !gSub.AwaitRendezvous(5*time.Second) {
		t.Fatal("type group never connected to daemon")
	}

	pipeAdv := &adv.PipeAdv{PipeID: jid.NewPipeIn(gid), Type: adv.PipePropagate, Name: "PS.SkiRental"}
	in, err := gSub.Wire.CreateInputPipe(pipeAdv)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 16)
	in.SetListener(func(m *message.Message) { got <- m.Text("app", "body") })

	out, err := gPub.Wire.CreateOutputPipe(pipeAdv)
	if err != nil {
		t.Fatal(err)
	}
	m := message.New(pub.ID())
	m.AddString("app", "body", "offer-1")
	if err := out.Send(m); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "offer-1" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event never crossed the daemon")
	}
}

func TestGroupIsolationAcrossTypes(t *testing.T) {
	c := newCluster(t)
	c.addDaemon("rdv")
	pub := c.addEdge("pub", "mem://rdv")
	sub := c.addEdge("sub", "mem://rdv")

	ski := jid.FromSeed(jid.KindGroup, 1)
	chat := jid.FromSeed(jid.KindGroup, 2)
	gPubSki, err := pub.JoinGroup(peergroup.Config{ID: ski, Name: "PS.Ski"})
	if err != nil {
		t.Fatal(err)
	}
	gSubChat, err := sub.JoinGroup(peergroup.Config{ID: chat, Name: "PS.Chat"})
	if err != nil {
		t.Fatal(err)
	}
	if !gPubSki.AwaitRendezvous(5*time.Second) || !gSubChat.AwaitRendezvous(5*time.Second) {
		t.Fatal("not connected")
	}
	// Same pipe ID in both groups: traffic must not leak across.
	pid := jid.FromSeed(jid.KindPipe, 9)
	inChat, err := gSubChat.Wire.CreateInputPipe(&adv.PipeAdv{PipeID: pid, Type: adv.PipePropagate, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	leaked := 0
	inChat.SetListener(func(*message.Message) { mu.Lock(); leaked++; mu.Unlock() })

	outSki, err := gPubSki.Wire.CreateOutputPipe(&adv.PipeAdv{PipeID: pid, Type: adv.PipePropagate, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := outSki.Send(message.New(pub.ID())); err != nil {
		t.Fatal(err)
	}
	c.net.WaitQuiesce(5 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if leaked != 0 {
		t.Fatalf("cross-group leak: %d messages", leaked)
	}
}

func TestDiscoveryAcrossDaemonAndJoinFromAdv(t *testing.T) {
	// Full paper flow: publisher creates a type group + wire pipe +
	// advertisement; subscriber discovers the advertisement remotely,
	// joins the group from it and receives events.
	c := newCluster(t)
	c.addDaemon("rdv")
	pub := c.addEdge("pub", "mem://rdv")
	sub := c.addEdge("sub", "mem://rdv")
	if !pub.NetGroup().AwaitRendezvous(5*time.Second) || !sub.NetGroup().AwaitRendezvous(5*time.Second) {
		t.Fatal("net groups never connected")
	}

	// Publisher side (the paper's AdvertisementsCreator).
	gid := jid.FromSeed(jid.KindGroup, 77)
	gPub, err := pub.JoinGroup(peergroup.Config{ID: gid, Name: "PS.SkiRental"})
	if err != nil {
		t.Fatal(err)
	}
	if !gPub.AwaitRendezvous(5 * time.Second) {
		t.Fatal("pub type group not connected")
	}
	pipeAdv := &adv.PipeAdv{PipeID: jid.NewPipeIn(gid), Type: adv.PipePropagate, Name: "PS.SkiRental"}
	groupAdv := gPub.Advertisement(pipeAdv)
	if err := pub.NetGroup().Discovery.RemotePublish(groupAdv, 0); err != nil {
		t.Fatal(err)
	}

	// Subscriber side (the paper's AdvertisementsFinder).
	found := make(chan *adv.PeerGroupAdv, 1)
	sub.NetGroup().Discovery.AddListener(func(a adv.Advertisement, _ jid.ID) {
		if pg, ok := a.(*adv.PeerGroupAdv); ok {
			select {
			case found <- pg:
			default:
			}
		}
	})
	if err := sub.NetGroup().Discovery.GetRemoteAdvertisements(adv.Group, "Name", "PS.*", 10); err != nil {
		t.Fatal(err)
	}
	var pg *adv.PeerGroupAdv
	select {
	case pg = <-found:
	case <-time.After(5 * time.Second):
		t.Fatal("group advertisement never discovered")
	}

	// Join from the advertisement (the paper's WireServiceFinder).
	gSub, wirePipe, err := sub.JoinGroupFromAdv(pg)
	if err != nil {
		t.Fatal(err)
	}
	if wirePipe.PipeID != pipeAdv.PipeID {
		t.Fatalf("wire pipe %v, want %v", wirePipe.PipeID, pipeAdv.PipeID)
	}
	if !gSub.AwaitRendezvous(5 * time.Second) {
		t.Fatal("sub type group not connected")
	}
	in, err := gSub.Wire.CreateInputPipe(wirePipe)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	in.SetListener(func(m *message.Message) { got <- m.Text("app", "body") })

	out, err := gPub.Wire.CreateOutputPipe(pipeAdv)
	if err != nil {
		t.Fatal(err)
	}
	m := message.New(pub.ID())
	m.AddString("app", "body", "discovered-and-delivered")
	if err := out.Send(m); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "discovered-and-delivered" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event never arrived after join-from-adv")
	}
}

func TestJoinGroupFromAdvWithoutWire(t *testing.T) {
	c := newCluster(t)
	p := c.addEdge("p")
	bare := &adv.PeerGroupAdv{GroupID: jid.FromSeed(jid.KindGroup, 5), Name: "no-wire"}
	if _, _, err := p.JoinGroupFromAdv(bare); !errors.Is(err, peer.ErrNoWireInAdv) {
		t.Fatalf("err = %v", err)
	}
}

func TestPeerInfoAcrossPeers(t *testing.T) {
	c := newCluster(t)
	c.addDaemon("rdv")
	a := c.addEdge("a", "mem://rdv")
	b := c.addEdge("b", "mem://rdv")
	if !a.NetGroup().AwaitRendezvous(5*time.Second) || !b.NetGroup().AwaitRendezvous(5*time.Second) {
		t.Fatal("not connected")
	}
	info, err := a.NetGroup().PeerInfo.Query("mem://b", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.PeerID != b.ID() {
		t.Fatalf("info.PeerID = %v, want %v", info.PeerID, b.ID())
	}
	if info.MsgsOut == 0 {
		t.Fatal("b shows no outbound traffic despite lease renewals")
	}
}

func TestAnnounceSelfAndSelfAdvertisement(t *testing.T) {
	c := newCluster(t)
	c.addDaemon("rdv")
	a := c.addEdge("a", "mem://rdv")
	b := c.addEdge("b", "mem://rdv")
	if !a.NetGroup().AwaitRendezvous(5*time.Second) || !b.NetGroup().AwaitRendezvous(5*time.Second) {
		t.Fatal("not connected")
	}
	sa := a.SelfAdvertisement()
	if sa.PeerID != a.ID() || len(sa.Addresses) == 0 {
		t.Fatalf("self adv %+v", sa)
	}
	heard := make(chan adv.Advertisement, 4)
	b.NetGroup().Discovery.AddListener(func(x adv.Advertisement, _ jid.ID) { heard <- x })
	if err := a.AnnounceSelf(); err != nil {
		t.Fatal(err)
	}
	select {
	case x := <-heard:
		if x.AdvID() != a.ID() {
			t.Fatalf("heard %v", x.AdvID())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("announcement never heard")
	}
}

func TestPeerRestartKeepsIdentity(t *testing.T) {
	c := newCluster(t)
	node, err := c.net.AddNode("p1")
	if err != nil {
		t.Fatal(err)
	}
	id := jid.FromSeed(jid.KindPeer, 42)
	p1, err := peer.New(peer.Config{Name: "p", ID: id}, memnet.New(node))
	if err != nil {
		t.Fatal(err)
	}
	if p1.ID() != id {
		t.Fatalf("ID = %v", p1.ID())
	}
	p1.Close()

	node2, err := c.net.AddNode("p2")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := peer.New(peer.Config{Name: "p", ID: id}, memnet.New(node2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p2.Close)
	if p2.ID() != id {
		t.Fatal("identity lost across restart")
	}
	if got := p2.Addresses(); got[0] != "mem://p2" {
		t.Fatalf("new address %v", got)
	}
}

func TestCloseIsIdempotentAndTerminal(t *testing.T) {
	c := newCluster(t)
	p := c.addEdge("p")
	p.Close()
	p.Close()
	if _, err := p.JoinGroup(peergroup.Config{ID: jid.FromSeed(jid.KindGroup, 1)}); !errors.Is(err, peer.ErrClosed) {
		t.Fatalf("join after close: %v", err)
	}
}
