package peer

import (
	"fmt"

	"github.com/tps-p2p/tps/internal/jxta/discovery"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
	"github.com/tps-p2p/tps/internal/jxta/route"
)

// Daemon is the wildcard service stack of a dedicated rendezvous/relay
// peer: one rendezvous, resolver, discovery and router instance that
// serve every peer group (endpoint parameter ""), so a single daemon can
// bridge the per-type groups the TPS layer creates without joining each
// one.
type Daemon struct {
	Rendezvous *rendezvous.Service
	Resolver   *resolver.Service
	Discovery  *discovery.Service
	Router     *route.Router
}

// EnableDaemon turns this peer into a wildcard rendezvous/relay daemon.
// The peer keeps its normal net group stack; the daemon stack runs
// alongside it. Seeds (for meshing with other daemons) come from the
// peer's configuration.
func (p *Peer) EnableDaemon() (*Daemon, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.mu.Unlock()

	d := &Daemon{}
	var err error
	d.Rendezvous, err = rendezvous.New(p.ep, rendezvous.Config{
		Role:         rendezvous.RoleRendezvous,
		GroupParam:   "", // wildcard: serve every group
		Seeds:        p.cfg.Seeds,
		LeaseTTL:     p.cfg.LeaseTTL,
		Log:          p.cfg.Log,
		Tracer:       p.cfg.Tracer,
		ReplicaSeeds: p.cfg.ReplicaSeeds,
		SyncInterval: p.cfg.SyncInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("peer daemon: %w", err)
	}
	if d.Resolver, err = resolver.New(p.ep, d.Rendezvous, ""); err != nil {
		d.Close()
		return nil, fmt.Errorf("peer daemon: %w", err)
	}
	if d.Discovery, err = discovery.New(d.Resolver); err != nil {
		d.Close()
		return nil, fmt.Errorf("peer daemon: %w", err)
	}
	if d.Router, err = route.New(p.ep, d.Resolver, route.Config{
		Group: "",
		Relay: true,
		Book:  d.Rendezvous,
	}); err != nil {
		d.Close()
		return nil, fmt.Errorf("peer daemon: %w", err)
	}
	return d, nil
}

// Close tears the daemon stack down. Safe on a partially built daemon.
func (d *Daemon) Close() {
	if d.Router != nil {
		d.Router.Close()
		d.Router = nil
	}
	if d.Discovery != nil {
		d.Discovery.Close()
		d.Discovery = nil
	}
	if d.Resolver != nil {
		d.Resolver.Close()
		d.Resolver = nil
	}
	if d.Rendezvous != nil {
		d.Rendezvous.Close()
		d.Rendezvous = nil
	}
}
