// Package jid implements JXTA-style identifiers.
//
// Every JXTA resource — peer, peer group, pipe, message, codat or module —
// is identified by a location-independent ID. IDs are 128-bit UUIDs tagged
// with the kind of resource they name, rendered in the canonical
// "urn:jxta:uuid-<32 hex digits><2 hex kind>" form. Because IDs are not
// bound to any physical address, a peer that changes its network address
// keeps its identity, which is what the Pipe Binding Protocol and the
// Endpoint Routing Protocol rely on to re-bind moving peers.
package jid

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Kind tags the resource category an ID names.
type Kind uint8

// Resource kinds. They start at one so the zero Kind is invalid, making
// accidentally-zeroed IDs detectable.
const (
	KindPeer Kind = iota + 1
	KindGroup
	KindPipe
	KindMessage
	KindCodat
	KindModule
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindPeer:
		return "peer"
	case KindGroup:
		return "group"
	case KindPipe:
		return "pipe"
	case KindMessage:
		return "message"
	case KindCodat:
		return "codat"
	case KindModule:
		return "module"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

func (k Kind) valid() bool { return k >= KindPeer && k <= KindModule }

// ID is a JXTA identifier: a 128-bit UUID plus a resource kind.
// The zero value is the nil ID; IsZero reports it and it never equals a
// generated ID.
type ID struct {
	kind Kind
	uuid [16]byte
}

// Nil is the zero ID. It names no resource.
var Nil ID

// ErrBadFormat is returned by Parse for strings that are not canonical
// JXTA URNs.
var ErrBadFormat = errors.New("jid: bad ID format")

const urnPrefix = "urn:jxta:uuid-"

// Kind returns the resource kind of the ID.
func (id ID) Kind() Kind { return id.kind }

// IsZero reports whether the ID is the nil ID.
func (id ID) IsZero() bool { return id == Nil }

// UUID returns the raw 16-byte UUID.
func (id ID) UUID() [16]byte { return id.uuid }

// String renders the ID as a canonical JXTA URN.
func (id ID) String() string {
	if id.IsZero() {
		return urnPrefix + strings.Repeat("0", 34)
	}
	var b strings.Builder
	b.Grow(len(urnPrefix) + 34)
	b.WriteString(urnPrefix)
	dst := make([]byte, 32)
	hex.Encode(dst, id.uuid[:])
	b.Write(dst)
	kb := [1]byte{byte(id.kind)}
	kd := make([]byte, 2)
	hex.Encode(kd, kb[:])
	b.Write(kd)
	return b.String()
}

// Short returns an abbreviated form such as "694..004" used in logs,
// mirroring the notation of the paper's figures.
func (id ID) Short() string {
	s := hex.EncodeToString(id.uuid[:])
	return s[:3] + ".." + s[len(s)-3:]
}

// Equal reports whether two IDs name the same resource.
func (id ID) Equal(other ID) bool { return id == other }

// Less imposes a total order over IDs (kind first, then UUID bytes). It is
// used to keep advertisement listings and routing tables deterministic.
func (id ID) Less(other ID) bool {
	if id.kind != other.kind {
		return id.kind < other.kind
	}
	for i := range id.uuid {
		if id.uuid[i] != other.uuid[i] {
			return id.uuid[i] < other.uuid[i]
		}
	}
	return false
}

// MarshalText implements encoding.TextMarshaler.
func (id ID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *ID) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// Parse decodes a canonical JXTA URN produced by String.
func Parse(s string) (ID, error) {
	if !strings.HasPrefix(s, urnPrefix) {
		return Nil, fmt.Errorf("%w: missing %q prefix in %q", ErrBadFormat, urnPrefix, s)
	}
	body := s[len(urnPrefix):]
	if len(body) != 34 {
		return Nil, fmt.Errorf("%w: want 34 hex digits, got %d in %q", ErrBadFormat, len(body), s)
	}
	raw, err := hex.DecodeString(body)
	if err != nil {
		return Nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	var id ID
	copy(id.uuid[:], raw[:16])
	id.kind = Kind(raw[16])
	if id == Nil {
		return Nil, nil
	}
	if !id.kind.valid() {
		return Nil, fmt.Errorf("%w: invalid kind byte %#x in %q", ErrBadFormat, raw[16], s)
	}
	return id, nil
}

// WireSize is the length of the binary wire form produced by AppendWire:
// one kind byte followed by the 16 UUID bytes.
const WireSize = 17

// AppendWire appends the binary wire form of the ID — the kind byte then
// the raw UUID — to buf and returns the extended slice. It is the
// allocation-free dual of String for wire codecs; FromWire reverses it.
func (id ID) AppendWire(buf []byte) []byte {
	buf = append(buf, byte(id.kind))
	return append(buf, id.uuid[:]...)
}

// FromWire reconstructs an ID from its binary wire form: the kind byte
// and the raw UUID as laid out by AppendWire. An all-zero input yields
// the nil ID; any other input with an invalid kind byte is rejected.
// Unlike Parse it never allocates, so wire codecs can validate IDs
// without round-tripping through the canonical text form.
func FromWire(kind byte, uuid [16]byte) (ID, error) {
	id := ID{kind: Kind(kind), uuid: uuid}
	if id == Nil {
		return Nil, nil
	}
	if !id.kind.valid() {
		return Nil, fmt.Errorf("%w: invalid kind byte %#x", ErrBadFormat, kind)
	}
	return id, nil
}

// Hash64 returns a well-mixed 64-bit hash of the ID, suitable for shard
// selection and hash tables. Generated IDs carry random UUIDs, but
// deterministic IDs (FromSeed) concentrate entropy unevenly, so the
// folded halves go through a multiply-xorshift finalizer.
func (id ID) Hash64() uint64 {
	lo := binary.BigEndian.Uint64(id.uuid[:8])
	hi := binary.BigEndian.Uint64(id.uuid[8:])
	h := lo ^ hi*0x9e3779b97f4a7c15 ^ uint64(id.kind)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// MustParse is Parse for trusted literals; it panics on malformed input.
func MustParse(s string) ID {
	id, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// New returns a fresh cryptographically random ID of the given kind.
func New(kind Kind) ID {
	var id ID
	id.kind = kind
	if _, err := rand.Read(id.uuid[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does the
		// process cannot mint identities and must not continue silently.
		panic(fmt.Sprintf("jid: crypto/rand failed: %v", err))
	}
	// Stamp UUID v4 variant bits so the output is a well-formed UUID.
	id.uuid[6] = (id.uuid[6] & 0x0f) | 0x40
	id.uuid[8] = (id.uuid[8] & 0x3f) | 0x80
	return id
}

// NewPeer returns a fresh peer ID.
func NewPeer() ID { return New(KindPeer) }

// NewGroup returns a fresh peer group ID.
func NewGroup() ID { return New(KindGroup) }

// NewMessage returns a fresh message ID, used for duplicate suppression in
// propagated (wire) pipes.
func NewMessage() ID { return New(KindMessage) }

// NewPipeIn derives a pipe ID scoped to a peer group, mirroring JXTA's
// "new PipeID(groupID)": the first eight bytes identify the group so that
// two groups can host same-named pipes without collision; the rest is
// random.
func NewPipeIn(group ID) ID {
	id := New(KindPipe)
	copy(id.uuid[:8], group.uuid[:8])
	return id
}

// FromSeed returns a deterministic ID for tests and simulations. The same
// (kind, seed) pair always yields the same ID.
func FromSeed(kind Kind, seed uint64) ID {
	var id ID
	id.kind = kind
	binary.BigEndian.PutUint64(id.uuid[:8], seed)
	binary.BigEndian.PutUint64(id.uuid[8:], ^seed*0x9e3779b97f4a7c15+1)
	return id
}

// Well-known group IDs, mirroring JXTA's world and net peer groups.
var (
	// WorldGroup is the root of the group hierarchy: every peer implicitly
	// belongs to it.
	WorldGroup = FromSeed(KindGroup, 0x_57_4F_52_4C_44) // "WORLD"
	// NetGroup is the default joined group after bootstrap.
	NetGroup = FromSeed(KindGroup, 0x_4E_45_54_50_47) // "NETPG"
)

// Set is a mutable, concurrency-safe collection of IDs. It backs
// seen-message caches and membership rosters.
type Set struct {
	mu sync.RWMutex
	m  map[ID]struct{}
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{m: make(map[ID]struct{})} }

// Add inserts id and reports whether it was absent.
func (s *Set) Add(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; ok {
		return false
	}
	s.m[id] = struct{}{}
	return true
}

// Remove deletes id and reports whether it was present.
func (s *Set) Remove(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; !ok {
		return false
	}
	delete(s.m, id)
	return true
}

// Contains reports whether id is in the set.
func (s *Set) Contains(id ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.m[id]
	return ok
}

// Len returns the number of IDs in the set.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Snapshot returns the members in unspecified order. The returned slice is
// owned by the caller.
func (s *Set) Snapshot() []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ID, 0, len(s.m))
	for id := range s.m {
		out = append(out, id)
	}
	return out
}
