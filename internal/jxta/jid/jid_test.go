package jid

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewKinds(t *testing.T) {
	kinds := []Kind{KindPeer, KindGroup, KindPipe, KindMessage, KindCodat, KindModule}
	for _, k := range kinds {
		id := New(k)
		if id.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, id.Kind())
		}
		if id.IsZero() {
			t.Errorf("New(%v) returned zero ID", k)
		}
	}
}

func TestNewIsUnique(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := New(KindPeer)
		if seen[id] {
			t.Fatalf("duplicate ID generated: %v", id)
		}
		seen[id] = true
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindPeer, KindGroup, KindPipe, KindMessage, KindCodat, KindModule} {
		id := New(k)
		s := id.String()
		if !strings.HasPrefix(s, "urn:jxta:uuid-") {
			t.Fatalf("String() = %q lacks urn prefix", s)
		}
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got != id {
			t.Fatalf("round trip mismatch: %v != %v", got, id)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"urn:jxta:uuid-",
		"urn:jxta:uuid-zz",
		"not-a-urn",
		"urn:jxta:uuid-" + strings.Repeat("g", 34),             // bad hex
		"urn:jxta:uuid-" + strings.Repeat("0", 33),             // short
		"urn:jxta:uuid-" + strings.Repeat("0", 32) + "ff",      // bad kind
		"urn:jxta:uuid-" + strings.Repeat("0", 32) + "07",      // kind out of range
		"URN:JXTA:UUID-" + strings.Repeat("0", 32) + "01",      // case-sensitive prefix
		"urn:jxta:uuid-" + strings.Repeat("0", 34) + "trailer", // trailing junk
	}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseNil(t *testing.T) {
	id, err := Parse(Nil.String())
	if err != nil {
		t.Fatalf("Parse(nil URN): %v", err)
	}
	if !id.IsZero() {
		t.Fatalf("Parse(nil URN) = %v, want zero", id)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on garbage did not panic")
		}
	}()
	MustParse("garbage")
}

func TestTextMarshaling(t *testing.T) {
	id := New(KindPipe)
	text, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back ID
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("text round trip: %v != %v", back, id)
	}
	if err := back.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("UnmarshalText(bogus) succeeded")
	}
}

func TestFromSeedDeterministic(t *testing.T) {
	a := FromSeed(KindPeer, 42)
	b := FromSeed(KindPeer, 42)
	if a != b {
		t.Fatal("FromSeed not deterministic")
	}
	c := FromSeed(KindPeer, 43)
	if a == c {
		t.Fatal("FromSeed(42) == FromSeed(43)")
	}
	d := FromSeed(KindGroup, 42)
	if a == d {
		t.Fatal("kind not part of FromSeed identity")
	}
}

func TestNewPipeInScopesGroup(t *testing.T) {
	g1 := NewGroup()
	g2 := NewGroup()
	p1 := NewPipeIn(g1)
	p2 := NewPipeIn(g2)
	if p1.Kind() != KindPipe {
		t.Fatalf("NewPipeIn kind = %v", p1.Kind())
	}
	u1, ug1 := p1.UUID(), g1.UUID()
	if !reflect.DeepEqual(u1[:8], ug1[:8]) {
		t.Fatal("pipe ID does not embed group prefix")
	}
	if p1 == p2 {
		t.Fatal("pipes in different groups collided")
	}
	if NewPipeIn(g1) == p1 {
		t.Fatal("NewPipeIn not random within group")
	}
}

func TestShort(t *testing.T) {
	id := FromSeed(KindPeer, 0x69400000000)
	s := id.Short()
	if len(s) != 8 || !strings.Contains(s, "..") {
		t.Fatalf("Short() = %q, want 3+..+3 form", s)
	}
}

func TestLessTotalOrder(t *testing.T) {
	ids := make([]ID, 100)
	for i := range ids {
		ids[i] = FromSeed(Kind(1+i%6), uint64(i*7919))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for i := 1; i < len(ids); i++ {
		if ids[i].Less(ids[i-1]) {
			t.Fatalf("sort not total at %d", i)
		}
	}
	if ids[0].Less(ids[0]) {
		t.Fatal("Less not irreflexive")
	}
}

// Property: String/Parse round-trips for arbitrary seeds and kinds.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, kindRaw uint8) bool {
		kind := Kind(1 + kindRaw%6)
		id := FromSeed(kind, seed)
		got, err := Parse(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Less is antisymmetric and consistent with equality.
func TestQuickLessAntisymmetric(t *testing.T) {
	f := func(a, b uint64, ka, kb uint8) bool {
		x := FromSeed(Kind(1+ka%6), a)
		y := FromSeed(Kind(1+kb%6), b)
		if x == y {
			return !x.Less(y) && !y.Less(x)
		}
		return x.Less(y) != y.Less(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	a, b := New(KindPeer), New(KindPeer)
	if !s.Add(a) {
		t.Fatal("first Add returned false")
	}
	if s.Add(a) {
		t.Fatal("second Add returned true")
	}
	if !s.Contains(a) || s.Contains(b) {
		t.Fatal("Contains wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Add(b)
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot len = %d", len(snap))
	}
	if !s.Remove(a) {
		t.Fatal("Remove present returned false")
	}
	if s.Remove(a) {
		t.Fatal("Remove absent returned true")
	}
	if s.Len() != 1 {
		t.Fatalf("Len after remove = %d", s.Len())
	}
}

func TestSetConcurrent(t *testing.T) {
	s := NewSet()
	const n = 64
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < n; i++ {
				id := FromSeed(KindMessage, uint64(rng.Intn(32)))
				s.Add(id)
				s.Contains(id)
				if rng.Intn(4) == 0 {
					s.Remove(id)
				}
				s.Len()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Len() > 32 {
		t.Fatalf("set grew beyond key space: %d", s.Len())
	}
}

func TestWireRoundTrip(t *testing.T) {
	// Property: FromWire inverts AppendWire for every valid ID.
	f := func(seed uint64, kindSel uint8) bool {
		kind := Kind(kindSel%6 + 1)
		id := FromSeed(kind, seed)
		buf := id.AppendWire(nil)
		if len(buf) != WireSize {
			return false
		}
		got, err := FromWire(buf[0], [16]byte(buf[1:]))
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireMatchesTextForm(t *testing.T) {
	// The binary wire form and the canonical URN must name the same ID.
	for kind := KindPeer; kind <= KindModule; kind++ {
		id := New(kind)
		buf := id.AppendWire(nil)
		viaWire, err := FromWire(buf[0], [16]byte(buf[1:]))
		if err != nil {
			t.Fatal(err)
		}
		viaText, err := Parse(id.String())
		if err != nil {
			t.Fatal(err)
		}
		if viaWire != viaText {
			t.Fatalf("wire %v != text %v", viaWire, viaText)
		}
	}
}

func TestFromWireRejectsBadKind(t *testing.T) {
	var uuid [16]byte
	uuid[0] = 1 // non-zero so the input is not the nil ID
	for _, kind := range []byte{0, 7, 8, 42, 255} {
		if _, err := FromWire(kind, uuid); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("kind %#x: want ErrBadFormat, got %v", kind, err)
		}
	}
}

func TestFromWireNil(t *testing.T) {
	id, err := FromWire(0, [16]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if !id.IsZero() {
		t.Fatalf("all-zero wire form must decode to the nil ID, got %v", id)
	}
}

func TestAppendWireReusesBuffer(t *testing.T) {
	id := FromSeed(KindPipe, 99)
	buf := make([]byte, 0, 64)
	out := id.AppendWire(buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendWire reallocated despite sufficient capacity")
	}
}
