package route_test

import (
	"errors"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
	"github.com/tps-p2p/tps/internal/jxta/route"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

type testPeer struct {
	name string
	ep   *endpoint.Service
	rdv  *rendezvous.Service
	res  *resolver.Service
	rtr  *route.Router
}

type cluster struct {
	t   *testing.T
	net *netsim.Network
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	n := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(n.Close)
	return &cluster{t: t, net: n}
}

func (c *cluster) addPeer(name string, seed uint64, role rendezvous.Role, firewalled bool, seeds ...endpoint.Address) *testPeer {
	c.t.Helper()
	var opts []netsim.NodeOption
	if firewalled {
		opts = append(opts, netsim.WithFirewall())
	}
	node, err := c.net.AddNode(name, opts...)
	if err != nil {
		c.t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		c.t.Fatal(err)
	}
	rdv, err := rendezvous.New(ep, rendezvous.Config{
		Role: role, GroupParam: "net", Seeds: seeds, LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	res, err := resolver.New(ep, rdv, "net")
	if err != nil {
		c.t.Fatal(err)
	}
	rtr, err := route.New(ep, res, route.Config{
		Group:      "net",
		Relay:      role == rendezvous.RoleRendezvous,
		Firewalled: firewalled,
		Book:       rdv,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	p := &testPeer{name: name, ep: ep, rdv: rdv, res: res, rtr: rtr}
	c.t.Cleanup(func() {
		p.rtr.Close()
		p.res.Close()
		p.rdv.Close()
		_ = p.ep.Close()
	})
	return p
}

func recvChan(t *testing.T, p *testPeer, svc string) chan *message.Message {
	t.Helper()
	ch := make(chan *message.Message, 64)
	if err := p.ep.RegisterHandler(svc, "net", func(m *message.Message, _ endpoint.Address) {
		ch <- m
	}); err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestDirectSendWithHints(t *testing.T) {
	c := newCluster(t)
	a := c.addPeer("a", 1, rendezvous.RoleEdge, false)
	b := c.addPeer("b", 2, rendezvous.RoleEdge, false)
	got := recvChan(t, b, "app.direct")
	m := message.New(a.ep.PeerID())
	m.AddString("app", "body", "direct")
	if err := a.rtr.Send(b.ep.PeerID(), []endpoint.Address{"mem://b"}, "app.direct", "net", m); err != nil {
		t.Fatal(err)
	}
	select {
	case rm := <-got:
		if rm.Text("app", "body") != "direct" {
			t.Fatalf("got %q", rm.Text("app", "body"))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	if st := a.rtr.Stats(); st.DirectSends != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNoRouteError(t *testing.T) {
	c := newCluster(t)
	a := c.addPeer("a", 1, rendezvous.RoleEdge, false)
	ghost := jid.FromSeed(jid.KindPeer, 99)
	err := a.rtr.Send(ghost, nil, "svc", "net", message.New(a.ep.PeerID()))
	if !errors.Is(err, route.ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
	err = a.rtr.Send(ghost, []endpoint.Address{"mem://nope"}, "svc", "net", message.New(a.ep.PeerID()))
	if !errors.Is(err, route.ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestResolveSelfAdvertisedRoute(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous, false)
	a := c.addPeer("a", 2, rendezvous.RoleEdge, false, "mem://rdv")
	b := c.addPeer("b", 3, rendezvous.RoleEdge, false, "mem://rdv")
	if !a.rdv.AwaitConnected(5*time.Second) || !b.rdv.AwaitConnected(5*time.Second) {
		t.Fatal("not connected")
	}
	// a has no idea where b lives; Resolve must discover b's direct
	// address (b answers the propagated route query itself).
	if err := a.rtr.Resolve(b.ep.PeerID(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Resolve returns on the first usable answer; b's own direct-address
	// answer may arrive a moment later and merge in.
	waitFor(t, func() bool {
		ra, ok := a.rtr.KnownRoute(b.ep.PeerID())
		return ok && len(ra.Addresses) > 0 && ra.Addresses[0] == "mem://b"
	})
	// And the route works without hints.
	got := recvChan(t, b, "app.routed")
	m := message.New(a.ep.PeerID())
	m.AddString("app", "body", "found-you")
	if err := a.rtr.Send(b.ep.PeerID(), nil, "app.routed", "net", m); err != nil {
		t.Fatal(err)
	}
	select {
	case rm := <-got:
		if rm.Text("app", "body") != "found-you" {
			t.Fatalf("got %q", rm.Text("app", "body"))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestRelayThroughRendezvousToFirewalledPeer(t *testing.T) {
	c := newCluster(t)
	r := c.addPeer("rdv", 1, rendezvous.RoleRendezvous, false)
	a := c.addPeer("a", 2, rendezvous.RoleEdge, false, "mem://rdv")
	// fw is behind a firewall: only its rendezvous can reach it, over the
	// flow its lease opened.
	fw := c.addPeer("fw", 3, rendezvous.RoleEdge, true, "mem://rdv")
	if !a.rdv.AwaitConnected(5*time.Second) || !fw.rdv.AwaitConnected(5*time.Second) {
		t.Fatal("not connected")
	}
	got := recvChan(t, fw, "app.fw")

	// Direct send must fail (firewall).
	m := message.New(a.ep.PeerID())
	m.AddString("app", "body", "knock")
	if err := a.rtr.Send(fw.ep.PeerID(), []endpoint.Address{"mem://fw"}, "app.fw", "net", m); err == nil {
		t.Fatal("direct send through firewall succeeded")
	}

	// Route resolution discovers the relay hop through the rendezvous.
	if err := a.rtr.Resolve(fw.ep.PeerID(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	ra, ok := a.rtr.KnownRoute(fw.ep.PeerID())
	if !ok || len(ra.Hops) == 0 {
		t.Fatalf("route = %+v, ok=%v; want relay hop", ra, ok)
	}
	if ra.Hops[0].PeerID != r.ep.PeerID() {
		t.Fatalf("hop peer = %v, want rendezvous", ra.Hops[0].PeerID)
	}

	// Sending via the router now relays through the rendezvous.
	m2 := message.New(a.ep.PeerID())
	m2.AddString("app", "body", "via-relay")
	if err := a.rtr.Send(fw.ep.PeerID(), []endpoint.Address{"mem://fw"}, "app.fw", "net", m2); err != nil {
		t.Fatal(err)
	}
	select {
	case rm := <-got:
		if rm.Text("app", "body") != "via-relay" {
			t.Fatalf("got %q", rm.Text("app", "body"))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("relayed message never arrived")
	}
	if st := a.rtr.Stats(); st.RelayedSends != 1 {
		t.Fatalf("sender stats %+v", st)
	}
	waitFor(t, func() bool { return r.rtr.Stats().Forwarded == 1 })
}

func TestAddRouteAndExpiry(t *testing.T) {
	clk := time.Unix(0, 0)
	now := func() time.Time { return clk }
	c := newCluster(t)
	node, err := c.net.AddNode("x")
	if err != nil {
		t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, 1))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ep.Close() })
	res, err := resolver.New(ep, nil, "net")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(res.Close)
	rtr, err := route.New(ep, res, route.Config{Group: "net", RouteTTL: time.Minute, Clock: now})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rtr.Close)

	dst := jid.FromSeed(jid.KindPeer, 7)
	rtr.AddRoute(&adv.RouteAdv{DestPeer: dst, Addresses: []string{"mem://y"}})
	if _, ok := rtr.KnownRoute(dst); !ok {
		t.Fatal("route not cached")
	}
	clk = clk.Add(2 * time.Minute)
	if _, ok := rtr.KnownRoute(dst); ok {
		t.Fatal("route survived its TTL")
	}
}

func TestResolveTimeout(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous, false)
	a := c.addPeer("a", 2, rendezvous.RoleEdge, false, "mem://rdv")
	if !a.rdv.AwaitConnected(5 * time.Second) {
		t.Fatal("not connected")
	}
	ghost := jid.FromSeed(jid.KindPeer, 404)
	err := a.rtr.Resolve(ghost, 200*time.Millisecond)
	if !errors.Is(err, route.ErrResolve) {
		t.Fatalf("err = %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
