// Package route implements the JXTA Endpoint Routing Protocol (ERP).
//
// Peers that cannot talk directly — different transports, firewalls,
// NATs — exchange messages through relay peers (rendezvous/routers).
// The router keeps a route table from peer IDs to direct addresses and
// relay hops, discovers routes by querying the group ("who can reach
// peer X?"), and transparently wraps messages for relay forwarding when
// a direct send fails.
//
// A firewalled peer stays reachable because its rendezvous holds an open
// flow to it: the rendezvous answers route queries for its clients and
// forwards wrapped messages down the open flow.
package route

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
)

// Protocol names.
const (
	// HandlerName is the resolver handler for route queries.
	HandlerName = "jxta.erp"
	// RelayService is the endpoint service that accepts wrapped messages
	// for forwarding.
	RelayService = "jxta.erp.relay"
)

// Message element names, namespace "erp".
const (
	elemNS       = "erp"
	elemDstPeer  = "DstPeer"
	elemDstSvc   = "DstSvc"
	elemDstParam = "DstParam"
)

// DefaultRouteTTL is how long a discovered route stays cached.
const DefaultRouteTTL = 5 * time.Minute

// Errors.
var (
	ErrNoRoute  = errors.New("route: no route to peer")
	ErrResolve  = errors.New("route: route resolution failed")
	ErrNotRelay = errors.New("route: this peer does not relay")
)

// AddressBook exposes the directly reachable peers a relay knows — the
// rendezvous service implements it with its client table.
type AddressBook interface {
	// DirectAddress returns an address this peer can reach id at, if any.
	DirectAddress(id jid.ID) (endpoint.Address, bool)
}

// Endpoint is the endpoint capability the router needs.
type Endpoint interface {
	endpoint.Sender
	RegisterHandler(svc, param string, h endpoint.Handler) error
	UnregisterHandler(svc, param string)
}

// Config configures a Router.
type Config struct {
	// Group scopes the router's endpoint/resolver registrations.
	Group string
	// Relay, when true, makes this peer forward wrapped messages and
	// answer route queries for peers in its address book (router role).
	Relay bool
	// Firewalled marks this peer as unable to accept unsolicited inbound
	// traffic. It then never advertises direct routes to itself — doing
	// so would also punch a hole that defeats the firewall model — and
	// relies on its rendezvous answering route queries on its behalf
	// with a relay hop.
	Firewalled bool
	// Book lists directly reachable peers (nil means none beyond self).
	Book AddressBook
	// RouteTTL overrides the route cache lifetime.
	RouteTTL time.Duration
	// Clock substitutes the time source (tests).
	Clock func() time.Time
}

type routeEntry struct {
	direct  []endpoint.Address
	hops    []adv.Hop
	expires time.Time
}

// Router is one peer's ERP instance.
type Router struct {
	ep  Endpoint
	res *resolver.Service
	cfg Config
	now func() time.Time
	ttl time.Duration

	mu      sync.Mutex
	table   map[jid.ID]routeEntry
	waiters map[jid.ID][]chan struct{}
	stats   Stats
	closed  bool
}

// Stats counts routing activity.
type Stats struct {
	DirectSends   int64
	RelayedSends  int64
	Forwarded     int64
	QueriesServed int64
	RoutesLearned int64
}

// New creates a router, registering its resolver handler and, for relay
// peers, the relay forwarding service.
func New(ep Endpoint, res *resolver.Service, cfg Config) (*Router, error) {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	ttl := cfg.RouteTTL
	if ttl == 0 {
		ttl = DefaultRouteTTL
	}
	r := &Router{
		ep:      ep,
		res:     res,
		cfg:     cfg,
		now:     now,
		ttl:     ttl,
		table:   make(map[jid.ID]routeEntry),
		waiters: make(map[jid.ID][]chan struct{}),
	}
	if err := res.RegisterHandler(HandlerName, (*routeHandler)(r)); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	if cfg.Relay {
		if err := ep.RegisterHandler(RelayService, cfg.Group, r.handleRelay); err != nil {
			res.UnregisterHandler(HandlerName)
			return nil, fmt.Errorf("route: %w", err)
		}
	}
	return r, nil
}

// Close unregisters the router's handlers.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	for _, ws := range r.waiters {
		for _, w := range ws {
			close(w)
		}
	}
	r.waiters = map[jid.ID][]chan struct{}{}
	r.mu.Unlock()
	r.res.UnregisterHandler(HandlerName)
	if r.cfg.Relay {
		r.ep.UnregisterHandler(RelayService, r.cfg.Group)
	}
}

// AddRoute installs or extends a route (e.g. from a RouteAdv found in
// discovery). Routes for the same destination merge: several peers may
// answer one query — the destination with its direct addresses, relays
// with hops through themselves — and all of them are usable.
func (r *Router) AddRoute(ra *adv.RouteAdv) {
	r.mu.Lock()
	entry, ok := r.table[ra.DestPeer]
	if !ok || r.now().After(entry.expires) {
		entry = routeEntry{}
	}
	for _, a := range ra.Addresses {
		addr := endpoint.Address(a)
		if !containsAddr(entry.direct, addr) {
			entry.direct = append(entry.direct, addr)
		}
	}
	for _, hop := range ra.Hops {
		if !containsHop(entry.hops, hop.PeerID) {
			entry.hops = append(entry.hops, hop)
		}
	}
	entry.expires = r.now().Add(r.ttl)
	r.table[ra.DestPeer] = entry
	for _, w := range r.waiters[ra.DestPeer] {
		close(w)
	}
	delete(r.waiters, ra.DestPeer)
	r.mu.Unlock()
}

func containsAddr(list []endpoint.Address, a endpoint.Address) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}

func containsHop(list []adv.Hop, peer jid.ID) bool {
	for _, h := range list {
		if h.PeerID == peer {
			return true
		}
	}
	return false
}

// KnownRoute reports the cached route for a peer, if fresh.
func (r *Router) KnownRoute(dst jid.ID) (*adv.RouteAdv, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.table[dst]
	if !ok || r.now().After(e.expires) {
		return nil, false
	}
	ra := &adv.RouteAdv{DestPeer: dst}
	for _, a := range e.direct {
		ra.Addresses = append(ra.Addresses, string(a))
	}
	ra.Hops = append(ra.Hops, e.hops...)
	return ra, true
}

// Send delivers msg to the (svc, param) service of peer dst. It tries
// the hinted direct addresses, then the cached route's direct addresses,
// then relays. hints may be nil.
func (r *Router) Send(dst jid.ID, hints []endpoint.Address, svc, param string, msg *message.Message) error {
	for _, a := range hints {
		if err := r.ep.Send(a, svc, param, msg); err == nil {
			r.count(func(s *Stats) { s.DirectSends++ })
			return nil
		}
	}
	r.mu.Lock()
	e, ok := r.table[dst]
	if ok && r.now().After(e.expires) {
		delete(r.table, dst)
		ok = false
	}
	r.mu.Unlock()
	if !ok {
		if len(hints) > 0 {
			return fmt.Errorf("%w: %s (direct addresses unreachable, no cached route)", ErrNoRoute, dst.Short())
		}
		return fmt.Errorf("%w: %s", ErrNoRoute, dst.Short())
	}
	for _, a := range e.direct {
		if err := r.ep.Send(a, svc, param, msg); err == nil {
			r.count(func(s *Stats) { s.DirectSends++ })
			return nil
		}
	}
	for _, hop := range e.hops {
		for _, relay := range hop.Addresses {
			wrapped := msg.Dup()
			wrapped.ReplaceElement(message.Element{Namespace: elemNS, Name: elemDstPeer, Data: []byte(dst.String())})
			wrapped.ReplaceElement(message.Element{Namespace: elemNS, Name: elemDstSvc, Data: []byte(svc)})
			wrapped.ReplaceElement(message.Element{Namespace: elemNS, Name: elemDstParam, Data: []byte(param)})
			if err := r.ep.Send(endpoint.Address(relay), RelayService, r.cfg.Group, wrapped); err == nil {
				r.count(func(s *Stats) { s.RelayedSends++ })
				return nil
			}
		}
	}
	return fmt.Errorf("%w: %s (all routes failed)", ErrNoRoute, dst.Short())
}

// Resolve discovers a route to dst by querying the group, blocking until
// a route is learned or the timeout elapses.
func (r *Router) Resolve(dst jid.ID, timeout time.Duration) error {
	if _, ok := r.KnownRoute(dst); ok {
		return nil
	}
	wait := make(chan struct{})
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrResolve
	}
	r.waiters[dst] = append(r.waiters[dst], wait)
	r.mu.Unlock()

	payload, err := xml.Marshal(routeQuery{DstPeer: dst})
	if err != nil {
		return fmt.Errorf("route: encode query: %w", err)
	}
	if _, err := r.res.PropagateQuery(HandlerName, payload); err != nil {
		return fmt.Errorf("route: propagate query: %w", err)
	}
	select {
	case <-wait:
		if _, ok := r.KnownRoute(dst); ok {
			return nil
		}
		return ErrResolve
	case <-time.After(timeout):
		return fmt.Errorf("%w: timeout resolving %s", ErrResolve, dst.Short())
	}
}

// Stats returns a snapshot of the counters.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func (r *Router) count(f func(*Stats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// handleRelay forwards a wrapped message to its final destination.
func (r *Router) handleRelay(msg *message.Message, _ endpoint.Address) {
	dstRaw := msg.Text(elemNS, elemDstPeer)
	dst, err := jid.Parse(dstRaw)
	if err != nil {
		return
	}
	svc := msg.Text(elemNS, elemDstSvc)
	param := msg.Text(elemNS, elemDstParam)
	if svc == "" {
		return
	}
	// Local delivery if we are the destination (a relay can be queried
	// directly too).
	if dst == r.ep.PeerID() {
		return // the endpoint would have delivered it already
	}
	addr, ok := r.lookupDirect(dst)
	if !ok {
		return // cannot help; the sender will try other relays
	}
	fwd := msg.Dup()
	fwd.RemoveElement(elemNS, elemDstPeer)
	fwd.RemoveElement(elemNS, elemDstSvc)
	fwd.RemoveElement(elemNS, elemDstParam)
	if err := r.ep.Send(addr, svc, param, fwd); err == nil {
		r.count(func(s *Stats) { s.Forwarded++ })
	}
}

func (r *Router) lookupDirect(dst jid.ID) (endpoint.Address, bool) {
	if r.cfg.Book != nil {
		if a, ok := r.cfg.Book.DirectAddress(dst); ok {
			return a, true
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.table[dst]
	if ok && !r.now().After(e.expires) && len(e.direct) > 0 {
		return e.direct[0], true
	}
	return "", false
}

// --- resolver handler ---

type routeQuery struct {
	XMLName xml.Name `xml:"RouteQuery"`
	DstPeer jid.ID   `xml:"DstPeer"`
}

type routeHandler Router

var _ resolver.Handler = (*routeHandler)(nil)

// ProcessQuery answers route queries: for ourselves with our direct
// addresses, and — when relaying — for peers in our address book with a
// hop through us.
func (h *routeHandler) ProcessQuery(q resolver.Query, _ endpoint.Address) ([]byte, error) {
	r := (*Router)(h)
	var query routeQuery
	if err := xml.Unmarshal(q.Payload, &query); err != nil {
		return nil, err
	}
	r.count(func(s *Stats) { s.QueriesServed++ })

	if query.DstPeer == r.ep.PeerID() {
		if r.cfg.Firewalled {
			// Stay silent: our relays answer for us, and an outbound
			// response would misadvertise a direct address that most
			// senders cannot use.
			return nil, nil
		}
		ra := adv.RouteAdv{DestPeer: query.DstPeer}
		for _, a := range r.ep.LocalAddresses() {
			ra.Addresses = append(ra.Addresses, string(a))
		}
		return xml.Marshal(ra)
	}
	if r.cfg.Relay && r.cfg.Book != nil {
		if _, ok := r.cfg.Book.DirectAddress(query.DstPeer); ok {
			ra := adv.RouteAdv{DestPeer: query.DstPeer}
			hop := adv.Hop{PeerID: r.ep.PeerID()}
			for _, a := range r.ep.LocalAddresses() {
				hop.Addresses = append(hop.Addresses, string(a))
			}
			ra.Hops = append(ra.Hops, hop)
			return xml.Marshal(ra)
		}
	}
	return nil, nil
}

// ProcessResponse caches learned routes and wakes resolvers.
func (h *routeHandler) ProcessResponse(resp resolver.Response, _ endpoint.Address) {
	r := (*Router)(h)
	var ra adv.RouteAdv
	if err := xml.Unmarshal(resp.Payload, &ra); err != nil {
		return
	}
	if ra.DestPeer.IsZero() {
		return
	}
	r.count(func(s *Stats) { s.RoutesLearned++ })
	r.AddRoute(&ra)
}
