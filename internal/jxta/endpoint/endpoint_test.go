package endpoint_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

func TestAddressParsing(t *testing.T) {
	a := endpoint.Address("tcp://10.0.0.1:9701")
	if a.Scheme() != "tcp" || a.Host() != "10.0.0.1:9701" {
		t.Fatalf("scheme=%q host=%q", a.Scheme(), a.Host())
	}
	if got := endpoint.MakeAddress("mem", "n1"); got != "mem://n1" {
		t.Fatalf("MakeAddress = %q", got)
	}
	bare := endpoint.Address("no-scheme")
	if bare.Scheme() != "" || bare.Host() != "no-scheme" {
		t.Fatalf("bare scheme=%q host=%q", bare.Scheme(), bare.Host())
	}
}

// memPair builds two endpoint services connected through a netsim network.
func memPair(t *testing.T) (*endpoint.Service, *endpoint.Service) {
	t.Helper()
	net := netsim.New(netsim.Config{})
	t.Cleanup(net.Close)
	mk := func(name string, seed uint64) *endpoint.Service {
		node, err := net.AddNode(name)
		if err != nil {
			t.Fatal(err)
		}
		svc := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
		if err := svc.AddTransport(memnet.New(node)); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = svc.Close() })
		return svc
	}
	return mk("a", 1), mk("b", 2)
}

type sink struct {
	mu   sync.Mutex
	msgs []*message.Message
	from []endpoint.Address
	ch   chan struct{}
}

func newSink() *sink { return &sink{ch: make(chan struct{}, 64)} }

func (s *sink) handler(msg *message.Message, from endpoint.Address) {
	s.mu.Lock()
	s.msgs = append(s.msgs, msg)
	s.from = append(s.from, from)
	s.mu.Unlock()
	select {
	case s.ch <- struct{}{}:
	default: // wait() also polls, so a dropped signal cannot stall it
	}
}

func (s *sink) wait(t *testing.T, n int) []*message.Message {
	t.Helper()
	deadline := time.After(10 * time.Second)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		if len(s.msgs) >= n {
			out := append([]*message.Message(nil), s.msgs...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		select {
		case <-s.ch:
		case <-tick.C:
		case <-deadline:
			t.Fatalf("timed out waiting for %d messages", n)
		}
	}
}

func TestSendAndDemux(t *testing.T) {
	a, b := memPair(t)
	disc := newSink()
	res := newSink()
	if err := b.RegisterHandler("jxta.discovery", "g1", disc.handler); err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterHandler("jxta.resolver", "g1", res.handler); err != nil {
		t.Fatal(err)
	}

	m1 := message.New(a.PeerID())
	m1.AddString("app", "q", "find-peers")
	if err := a.Send("mem://b", "jxta.discovery", "g1", m1); err != nil {
		t.Fatal(err)
	}
	m2 := message.New(a.PeerID())
	m2.AddString("app", "q", "resolve")
	if err := a.Send("mem://b", "jxta.resolver", "g1", m2); err != nil {
		t.Fatal(err)
	}

	got := disc.wait(t, 1)
	if got[0].Text("app", "q") != "find-peers" {
		t.Fatalf("discovery got %q", got[0].Text("app", "q"))
	}
	got = res.wait(t, 1)
	if got[0].Text("app", "q") != "resolve" {
		t.Fatalf("resolver got %q", got[0].Text("app", "q"))
	}
}

func TestWildcardParamHandler(t *testing.T) {
	a, b := memPair(t)
	wild := newSink()
	exact := newSink()
	if err := b.RegisterHandler("svc", "", wild.handler); err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterHandler("svc", "special", exact.handler); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("mem://b", "svc", "anything", message.New(a.PeerID())); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("mem://b", "svc", "special", message.New(a.PeerID())); err != nil {
		t.Fatal(err)
	}
	wild.wait(t, 1)
	exact.wait(t, 1)
}

func TestSourceAddressOnEnvelope(t *testing.T) {
	a, b := memPair(t)
	s := newSink()
	if err := b.RegisterHandler("svc", "", s.handler); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("mem://b", "svc", "", message.New(a.PeerID())); err != nil {
		t.Fatal(err)
	}
	s.wait(t, 1)
	s.mu.Lock()
	from := s.from[0]
	s.mu.Unlock()
	if from != "mem://a" {
		t.Fatalf("from = %q, want mem://a", from)
	}
}

func TestReplyViaFromAddress(t *testing.T) {
	a, b := memPair(t)
	pong := newSink()
	if err := a.RegisterHandler("pong", "", pong.handler); err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterHandler("ping", "", func(msg *message.Message, from endpoint.Address) {
		reply := message.New(b.PeerID())
		reply.AddString("app", "re", msg.Text("app", "n"))
		if err := b.Send(from, "pong", "", reply); err != nil {
			t.Errorf("reply: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	ping := message.New(a.PeerID())
	ping.AddString("app", "n", "7")
	if err := a.Send("mem://b", "ping", "", ping); err != nil {
		t.Fatal(err)
	}
	got := pong.wait(t, 1)
	if got[0].Text("app", "re") != "7" {
		t.Fatalf("reply payload %q", got[0].Text("app", "re"))
	}
}

func TestNoTransportForScheme(t *testing.T) {
	a, _ := memPair(t)
	err := a.Send("tcp://1.2.3.4:1", "svc", "", message.New(a.PeerID()))
	if !errors.Is(err, endpoint.ErrNoTransport) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateHandlerRejected(t *testing.T) {
	a, _ := memPair(t)
	h := func(*message.Message, endpoint.Address) {}
	if err := a.RegisterHandler("svc", "p", h); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterHandler("svc", "p", h); !errors.Is(err, endpoint.ErrDupHandler) {
		t.Fatalf("dup err = %v", err)
	}
	a.UnregisterHandler("svc", "p")
	if err := a.RegisterHandler("svc", "p", h); err != nil {
		t.Fatalf("re-register after unregister: %v", err)
	}
}

func TestStatsAndDrops(t *testing.T) {
	a, b := memPair(t)
	s := newSink()
	if err := b.RegisterHandler("known", "", s.handler); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("mem://b", "known", "", message.New(a.PeerID())); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("mem://b", "unknown", "", message.New(a.PeerID())); err != nil {
		t.Fatal(err)
	}
	s.wait(t, 1)
	waitFor(t, func() bool { return b.Stats().MsgsIn == 2 })
	ast := a.Stats()
	if ast.MsgsOut != 2 || ast.BytesOut == 0 || ast.LastOutgoing.IsZero() {
		t.Fatalf("sender stats %+v", ast)
	}
	bst := b.Stats()
	if bst.NoHandlerDrop != 1 {
		t.Fatalf("receiver stats %+v", bst)
	}
	if bst.Uptime(time.Now()) <= 0 {
		t.Fatal("uptime not positive")
	}
}

func TestClosedServiceRefusesWork(t *testing.T) {
	a, _ := memPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := a.Send("mem://b", "svc", "", message.New(a.PeerID())); !errors.Is(err, endpoint.ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := a.RegisterHandler("svc", "", func(*message.Message, endpoint.Address) {}); !errors.Is(err, endpoint.ErrClosed) {
		t.Fatalf("register after close: %v", err)
	}
}

func TestSendDoesNotMutateCallerMessage(t *testing.T) {
	a, b := memPair(t)
	s := newSink()
	if err := b.RegisterHandler("svc", "", s.handler); err != nil {
		t.Fatal(err)
	}
	m := message.New(a.PeerID())
	m.AddString("app", "k", "v")
	if err := a.Send("mem://b", "svc", "", m); err != nil {
		t.Fatal(err)
	}
	s.wait(t, 1)
	if _, ok := m.Element(endpoint.ElemNamespace, "DstSvc"); ok {
		t.Fatal("Send leaked envelope elements into the caller's message")
	}
}

func TestDestinationHelper(t *testing.T) {
	a, b := memPair(t)
	s := newSink()
	if err := b.RegisterHandler("svc", "param7", s.handler); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("mem://b", "svc", "param7", message.New(a.PeerID())); err != nil {
		t.Fatal(err)
	}
	got := s.wait(t, 1)
	svc, param, err := endpoint.Destination(got[0])
	if err != nil || svc != "svc" || param != "param7" {
		t.Fatalf("Destination = %q %q %v", svc, param, err)
	}
	if _, _, err := endpoint.Destination(message.New(a.PeerID())); !errors.Is(err, endpoint.ErrBadDestFormat) {
		t.Fatalf("bare message: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
