// Package endpoint implements the JXTA endpoint layer: the boundary
// between protocol services and concrete transports.
//
// An endpoint Service owns one or more Transports (TCP, in-memory
// simulated WAN, ...), demultiplexes incoming messages to registered
// service handlers by (service name, service parameter), and offers
// Send for addressing a message to a remote peer's service. Peers may
// have multiple network interfaces (multiple transports); the endpoint
// hides which one a message used.
//
// Everything above this layer deals in peer IDs and pipe IDs; only the
// endpoint and the Endpoint Routing Protocol deal in physical addresses.
package endpoint

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/obs"
	"github.com/tps-p2p/tps/internal/obs/hist"
)

// Address is a transport-qualified address such as "tcp://10.0.0.1:9701"
// or "mem://node3".
type Address string

// Scheme returns the transport scheme ("tcp", "mem", ...).
func (a Address) Scheme() string {
	if i := strings.Index(string(a), "://"); i >= 0 {
		return string(a)[:i]
	}
	return ""
}

// Host returns the transport-specific location part.
func (a Address) Host() string {
	if i := strings.Index(string(a), "://"); i >= 0 {
		return string(a)[i+3:]
	}
	return string(a)
}

// MakeAddress assembles an Address from scheme and host.
func MakeAddress(scheme, host string) Address {
	return Address(scheme + "://" + host)
}

// Transport moves opaque frames between addresses sharing one scheme.
// Implementations must be safe for concurrent use.
type Transport interface {
	// Scheme returns the address scheme this transport serves.
	Scheme() string
	// LocalAddress returns the address remote peers can reach us at.
	LocalAddress() Address
	// Send delivers one frame to the given address. It may fail fast
	// (unreachable) or succeed without delivery guarantee, like a
	// datagram over an established connection. Implementations must not
	// retain frame after returning: the endpoint recycles frame buffers.
	Send(to Address, frame []byte) error
	// SetReceiver installs the inbound frame callback. Must be called
	// exactly once, before the first frame can arrive.
	SetReceiver(func(frame []byte))
	// Close releases the transport's resources.
	Close() error
}

// Handler consumes a message addressed to a registered service.
type Handler func(msg *message.Message, from Address)

// Sender is the message-sending capability exported to upper layers.
// *Service implements it directly; the Endpoint Routing Protocol wraps it
// with relay fallback while keeping the same signature.
type Sender interface {
	// Send addresses msg to the (svc, param) handler at the remote
	// address.
	Send(to Address, svc, param string, msg *message.Message) error
	// LocalAddresses lists the addresses remote peers can use to reach
	// this peer, best first.
	LocalAddresses() []Address
	// PeerID returns the local peer's identity.
	PeerID() jid.ID
}

// Envelope element names, in the "ep" namespace.
const (
	ElemNamespace = "ep"
	elemDstSvc    = "DstSvc"
	elemDstParam  = "DstParam"
	elemSrcAddr   = "SrcAddr"
)

// Errors.
var (
	ErrNoTransport   = errors.New("endpoint: no transport for scheme")
	ErrClosed        = errors.New("endpoint: service closed")
	ErrDupHandler    = errors.New("endpoint: handler already registered")
	ErrNoHandler     = errors.New("endpoint: no handler registered")
	ErrBadDestFormat = errors.New("endpoint: message lacks destination elements")
)

// Stats is a snapshot of endpoint traffic, feeding the Peer Information
// Protocol.
//
// Deprecated: new introspection code should use Snapshot (the
// obs.Provider view with the shared counter vocabulary); Stats remains
// for the PIP responder and existing tests.
type Stats struct {
	Started       time.Time
	MsgsIn        int64
	MsgsOut       int64
	BytesIn       int64
	BytesOut      int64
	LastIncoming  time.Time
	LastOutgoing  time.Time
	NoHandlerDrop int64
	DecodeErrors  int64
	SendErrors    int64
}

// Uptime returns how long the endpoint has been running.
func (s Stats) Uptime(now time.Time) time.Duration { return now.Sub(s.Started) }

// epCounters is the lock-free internal form of Stats: every frame in and
// out bumps these, so they must never contend on s.mu. Timestamps are
// kept as unix nanoseconds.
type epCounters struct {
	msgsIn        atomic.Int64
	msgsOut       atomic.Int64
	bytesIn       atomic.Int64
	bytesOut      atomic.Int64
	lastIncoming  atomic.Int64
	lastOutgoing  atomic.Int64
	noHandlerDrop atomic.Int64
	decodeErrors  atomic.Int64
	sendErrors    atomic.Int64
}

func (c *epCounters) countOut(bytes int) {
	c.msgsOut.Add(1)
	c.bytesOut.Add(int64(bytes))
	c.lastOutgoing.Store(time.Now().UnixNano())
}

type handlerKey struct{ svc, param string }

// frameBufPool recycles marshal buffers across Send calls. Transports
// must not retain frames (see Transport.Send), so a buffer can go back
// in the pool as soon as the transport returns.
var frameBufPool = sync.Pool{New: func() any { return new([]byte) }}

// Service is the endpoint service of one peer.
type Service struct {
	peerID  jid.ID
	started time.Time
	stats   epCounters
	// encodeHist times frame enveloping + marshal (the wire-encode
	// stage); recording is alloc-free, so it is always on.
	encodeHist *hist.Hist

	mu         sync.RWMutex
	transports map[string]Transport
	order      []string // scheme registration order: preferred first
	handlers   map[handlerKey]Handler
	closed     bool
}

var _ Sender = (*Service)(nil)

// New creates an endpoint service for the given peer identity.
func New(peerID jid.ID) *Service {
	return &Service{
		peerID:     peerID,
		started:    time.Now(),
		encodeHist: hist.New(),
		transports: make(map[string]Transport),
		handlers:   make(map[handlerKey]Handler),
	}
}

// PeerID implements Sender.
func (s *Service) PeerID() jid.ID { return s.peerID }

// AddTransport attaches a transport and starts receiving from it.
// Transports added first are preferred by LocalAddresses.
func (s *Service) AddTransport(t Transport) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	scheme := t.Scheme()
	if _, ok := s.transports[scheme]; ok {
		return fmt.Errorf("endpoint: transport for %q already attached", scheme)
	}
	s.transports[scheme] = t
	s.order = append(s.order, scheme)
	t.SetReceiver(s.receive)
	return nil
}

// LocalAddresses implements Sender.
func (s *Service) LocalAddresses() []Address {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Address, 0, len(s.order))
	for _, scheme := range s.order {
		out = append(out, s.transports[scheme].LocalAddress())
	}
	return out
}

// RegisterHandler binds a handler to (svc, param). An empty param
// registers a wildcard receiving any param not bound more specifically.
func (s *Service) RegisterHandler(svc, param string, h Handler) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	k := handlerKey{svc, param}
	if _, ok := s.handlers[k]; ok {
		return fmt.Errorf("%w: %s/%s", ErrDupHandler, svc, param)
	}
	s.handlers[k] = h
	return nil
}

// UnregisterHandler removes the (svc, param) binding.
func (s *Service) UnregisterHandler(svc, param string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.handlers, handlerKey{svc, param})
}

// Send implements Sender: it envelopes msg with the destination service
// coordinates and this peer's return address, then hands the frame to the
// transport matching the destination scheme. The marshal buffer comes
// from a pool; transports must not retain it.
func (s *Service) Send(to Address, svc, param string, msg *message.Message) error {
	bufp, err := s.encodeFrame(svc, param, msg)
	if err != nil {
		return err
	}
	err = s.SendFrame(to, *bufp)
	frameBufPool.Put(bufp)
	return err
}

// EncodeFrame envelopes msg for the (svc, param) handler and marshals it
// into a single wire frame, without sending it. Fan-out paths use it to
// marshal once and SendFrame the same bytes to many addresses. The
// returned buffer may come from an internal pool; callers that are done
// with it may return it via RecycleFrame (optional — a dropped frame is
// simply collected).
func (s *Service) EncodeFrame(svc, param string, msg *message.Message) ([]byte, error) {
	bufp, err := s.encodeFrame(svc, param, msg)
	if err != nil {
		return nil, err
	}
	return *bufp, nil
}

// encodeFrame is EncodeFrame keeping the pool's box: Send returns it via
// the box, avoiding a per-call re-boxing allocation on the hot path.
func (s *Service) encodeFrame(svc, param string, msg *message.Message) (*[]byte, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	var srcAddr Address
	if len(s.order) > 0 {
		srcAddr = s.transports[s.order[0]].LocalAddress()
	}
	s.mu.RUnlock()

	start := time.Now()
	// Envelope mutations must not leak into the caller's message; the
	// COW Dup shares the payload elements, and the ReplaceElements below
	// clone just the headers, so enveloping never copies payload bytes.
	out := msg.Dup()
	out.ReplaceElement(message.Element{Namespace: ElemNamespace, Name: elemDstSvc, Data: []byte(svc)})
	out.ReplaceElement(message.Element{Namespace: ElemNamespace, Name: elemDstParam, Data: []byte(param)})
	out.ReplaceElement(message.Element{Namespace: ElemNamespace, Name: elemSrcAddr, Data: []byte(srcAddr)})
	bufp := frameBufPool.Get().(*[]byte)
	frame, err := out.MarshalAppend((*bufp)[:0])
	if err != nil {
		frameBufPool.Put(bufp)
		return nil, fmt.Errorf("endpoint: marshal: %w", err)
	}
	*bufp = frame
	s.encodeHist.Observe(time.Since(start))
	return bufp, nil
}

// RecycleFrame returns a frame obtained from EncodeFrame to the buffer
// pool. The caller must not touch the frame afterwards.
func RecycleFrame(frame []byte) { frameBufPool.Put(&frame) }

// SendFrame hands a pre-encoded frame to the transport serving the
// destination's scheme.
func (s *Service) SendFrame(to Address, frame []byte) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	t, ok := s.transports[to.Scheme()]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q (to %s)", ErrNoTransport, to.Scheme(), to)
	}
	if err := t.Send(to, frame); err != nil {
		s.stats.sendErrors.Add(1)
		return fmt.Errorf("endpoint: send to %s: %w", to, err)
	}
	s.stats.countOut(len(frame))
	return nil
}

// receive decodes a frame and dispatches it to the registered handler.
func (s *Service) receive(frame []byte) {
	msg, err := message.Unmarshal(frame)
	if err != nil {
		s.stats.decodeErrors.Add(1)
		return
	}
	svc := msg.Text(ElemNamespace, elemDstSvc)
	param := msg.Text(ElemNamespace, elemDstParam)
	from := Address(msg.Text(ElemNamespace, elemSrcAddr))

	s.stats.msgsIn.Add(1)
	s.stats.bytesIn.Add(int64(len(frame)))
	s.stats.lastIncoming.Store(time.Now().UnixNano())
	s.mu.RLock()
	h, ok := s.handlers[handlerKey{svc, param}]
	if !ok {
		h, ok = s.handlers[handlerKey{svc, ""}]
	}
	closed := s.closed
	s.mu.RUnlock()
	if !ok {
		s.stats.noHandlerDrop.Add(1)
		return
	}
	if closed {
		return
	}
	h(msg, from)
}

// DeliverLocal dispatches an in-process message to the local handler
// bound to (svc, param), as if it had arrived from the given address.
// Rendezvous propagation uses it to deliver forwarded messages to this
// peer's own services.
func (s *Service) DeliverLocal(svc, param string, msg *message.Message, from Address) error {
	s.mu.RLock()
	h, ok := s.handlers[handlerKey{svc, param}]
	if !ok {
		h, ok = s.handlers[handlerKey{svc, ""}]
	}
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		s.stats.noHandlerDrop.Add(1)
		return fmt.Errorf("%w: %s/%s", ErrNoHandler, svc, param)
	}
	h(msg, from)
	return nil
}

// Stats returns a snapshot of the endpoint counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Started:       s.started,
		MsgsIn:        s.stats.msgsIn.Load(),
		MsgsOut:       s.stats.msgsOut.Load(),
		BytesIn:       s.stats.bytesIn.Load(),
		BytesOut:      s.stats.bytesOut.Load(),
		NoHandlerDrop: s.stats.noHandlerDrop.Load(),
		DecodeErrors:  s.stats.decodeErrors.Load(),
		SendErrors:    s.stats.sendErrors.Load(),
	}
	if ns := s.stats.lastIncoming.Load(); ns != 0 {
		st.LastIncoming = time.Unix(0, ns)
	}
	if ns := s.stats.lastOutgoing.Load(); ns != 0 {
		st.LastOutgoing = time.Unix(0, ns)
	}
	return st
}

// Snapshot implements obs.Provider. Counter keys follow the shared
// obs vocabulary: what Stats calls NoHandlerDrop and SendErrors are
// `dropped` and `send_failures` here.
func (s *Service) Snapshot() obs.Snapshot {
	s.mu.RLock()
	transports := len(s.transports)
	s.mu.RUnlock()
	return obs.Snapshot{
		Name:    "endpoint",
		Version: 1,
		Counters: map[string]int64{
			"msgs_in":         s.stats.msgsIn.Load(),
			"msgs_out":        s.stats.msgsOut.Load(),
			"bytes_in":        s.stats.bytesIn.Load(),
			"bytes_out":       s.stats.bytesOut.Load(),
			"dropped":         s.stats.noHandlerDrop.Load(),
			"decode_failures": s.stats.decodeErrors.Load(),
			"send_failures":   s.stats.sendErrors.Load(),
		},
		Gauges: map[string]float64{
			"transports": float64(transports),
			"uptime_s":   time.Since(s.started).Seconds(),
		},
		Hists: map[string]hist.Snapshot{
			"encode_us": s.encodeHist.Snapshot(),
		},
	}
}

// Close shuts down all transports. Handlers registered remain but no
// further traffic flows.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ts := make([]Transport, 0, len(s.transports))
	for _, t := range s.transports {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	var firstErr error
	for _, t := range ts {
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Destination reports the service coordinates carried by a received
// message envelope — useful to relays that must re-deliver verbatim.
func Destination(msg *message.Message) (svc, param string, err error) {
	svc = msg.Text(ElemNamespace, elemDstSvc)
	param = msg.Text(ElemNamespace, elemDstParam)
	if svc == "" {
		return "", "", ErrBadDestFormat
	}
	return svc, param, nil
}
