package pipe

import (
	"fmt"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
)

// Listener consumes messages arriving on an input pipe. When a listener
// is installed, messages bypass the queue and go straight to it.
type Listener func(msg *message.Message)

// InputPipe is the receiving end of a pipe on this peer.
type InputPipe struct {
	svc  *Service
	id   jid.ID
	name string

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*message.Message
	listener Listener
	closed   bool
}

// ID returns the pipe ID.
func (in *InputPipe) ID() jid.ID { return in.id }

// Name returns the pipe's advertised name.
func (in *InputPipe) Name() string { return in.name }

// SetListener installs (or clears, with nil) the delivery callback.
// Queued messages are flushed to the new listener in order.
func (in *InputPipe) SetListener(l Listener) {
	in.mu.Lock()
	in.listener = l
	var backlog []*message.Message
	if l != nil {
		backlog = in.queue
		in.queue = nil
	}
	in.mu.Unlock()
	for _, m := range backlog {
		l(m)
	}
}

// Receive blocks until a message arrives or the timeout elapses. It
// returns ErrReceiveEmpty on timeout and ErrClosed once the pipe closes.
func (in *InputPipe) Receive(timeout time.Duration) (*message.Message, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		in.mu.Lock()
		in.cond.Broadcast()
		in.mu.Unlock()
	})
	defer timer.Stop()
	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		if len(in.queue) > 0 {
			m := in.queue[0]
			in.queue = in.queue[1:]
			return m, nil
		}
		if in.closed {
			return nil, ErrClosed
		}
		if !time.Now().Before(deadline) {
			return nil, ErrReceiveEmpty
		}
		in.cond.Wait()
	}
}

// Pending returns the number of queued messages.
func (in *InputPipe) Pending() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.queue)
}

// Close unbinds the input pipe; senders will re-resolve away from this
// peer.
func (in *InputPipe) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	in.queue = nil
	in.cond.Broadcast()
	in.mu.Unlock()

	in.svc.mu.Lock()
	if in.svc.inputs[in.id] == in {
		delete(in.svc.inputs, in.id)
	}
	in.svc.mu.Unlock()
}

// push delivers a message to the listener or the queue.
func (in *InputPipe) push(msg *message.Message) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	l := in.listener
	if l == nil {
		in.queue = append(in.queue, msg)
		in.cond.Broadcast()
	}
	in.mu.Unlock()
	if l != nil {
		l(msg)
	}
}

// OutputPipe is a sending end bound to whichever peers currently hold the
// pipe's input end.
type OutputPipe struct {
	svc  *Service
	id   jid.ID
	name string
}

// ID returns the pipe ID.
func (out *OutputPipe) ID() jid.ID { return out.id }

// Name returns the pipe's advertised name.
func (out *OutputPipe) Name() string { return out.name }

// Send delivers the message to the pipe's bound peer. If the cached
// binding has gone stale (the peer moved or died), Send re-resolves once
// and retries — the Pipe Binding Protocol's re-binding behaviour.
func (out *OutputPipe) Send(msg *message.Message) error {
	s := out.svc
	for attempt := 0; attempt < 2; attempt++ {
		// Loopback: a local input pipe takes priority (JXTA delivers
		// locally when both ends live on one peer).
		s.mu.Lock()
		in, local := s.inputs[out.id]
		s.mu.Unlock()
		if local {
			loop := msg.Dup()
			loop.ReplaceElement(message.Element{Namespace: elemNS, Name: elemID, Data: []byte(out.id.String())})
			in.push(loop)
			return nil
		}

		s.mu.Lock()
		bs := append([]binding(nil), s.freshBindingsLocked(out.id)...)
		s.mu.Unlock()
		for _, b := range bs {
			wire := msg.Dup()
			wire.ReplaceElement(message.Element{Namespace: elemNS, Name: elemID, Data: []byte(out.id.String())})
			for _, addr := range b.addrs {
				if err := s.ep.Send(addr, ServiceName, s.cfg.Group, wire); err == nil {
					return nil
				}
			}
			s.dropBinding(out.id, b.peer)
		}
		// All bindings failed or none were fresh: re-resolve and retry.
		if err := s.resolveBinding(out.id, 5*time.Second); err != nil {
			return fmt.Errorf("pipe: send: %w", err)
		}
	}
	return fmt.Errorf("pipe: send: %w", ErrNotBound)
}
