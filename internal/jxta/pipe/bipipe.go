package pipe

import (
	"fmt"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
)

// bipipe.go implements the "very new bi-directional pipes" the paper
// mentions alongside the basic asynchronous unidirectional ones (§2.1):
// a BiPipe couples two unicast pipes — one per direction — behind a
// single connect/accept API, which is what a request/reply interaction
// (the RPC-flavoured combination the paper's §6 anticipates) needs.

// BiPipe is one end of a bidirectional channel between two peers.
type BiPipe struct {
	in  *InputPipe
	out *OutputPipe
}

// BiPipeAdvPair derives the two directional pipe advertisements of a
// bidirectional pipe from a base advertisement. The base PipeID seeds
// both directions deterministically so the two ends agree without
// further negotiation.
func BiPipeAdvPair(base *adv.PipeAdv) (serverIn, clientIn *adv.PipeAdv) {
	u := base.PipeID.UUID()
	seed := uint64(u[0])<<56 | uint64(u[1])<<48 | uint64(u[2])<<40 | uint64(u[3])<<32 |
		uint64(u[4])<<24 | uint64(u[5])<<16 | uint64(u[6])<<8 | uint64(u[7])
	serverIn = &adv.PipeAdv{
		PipeID: jid.FromSeed(jid.KindPipe, seed),
		Type:   adv.PipeUnicast,
		Name:   base.Name + ".c2s",
	}
	clientIn = &adv.PipeAdv{
		PipeID: jid.FromSeed(jid.KindPipe, seed+1),
		Type:   adv.PipeUnicast,
		Name:   base.Name + ".s2c",
	}
	return serverIn, clientIn
}

// AcceptBiPipe binds the server end of a bidirectional pipe: it opens
// the server's input direction immediately and resolves the client
// direction lazily on the first Send (the client may not exist yet —
// pipes are decoupled).
func (s *Service) AcceptBiPipe(base *adv.PipeAdv) (*BiPipe, error) {
	serverIn, clientIn := BiPipeAdvPair(base)
	in, err := s.CreateInputPipe(serverIn)
	if err != nil {
		return nil, fmt.Errorf("pipe: accept bipipe: %w", err)
	}
	return &BiPipe{in: in, out: &OutputPipe{svc: s, id: clientIn.PipeID, name: clientIn.Name}}, nil
}

// ConnectBiPipe binds the client end: it opens the client's input
// direction and resolves the server's within the timeout.
func (s *Service) ConnectBiPipe(base *adv.PipeAdv, timeout time.Duration) (*BiPipe, error) {
	serverIn, clientIn := BiPipeAdvPair(base)
	in, err := s.CreateInputPipe(clientIn)
	if err != nil {
		return nil, fmt.Errorf("pipe: connect bipipe: %w", err)
	}
	out, err := s.CreateOutputPipe(serverIn, timeout)
	if err != nil {
		in.Close()
		return nil, fmt.Errorf("pipe: connect bipipe: %w", err)
	}
	return &BiPipe{in: in, out: out}, nil
}

// Send transmits a message to the other end.
func (b *BiPipe) Send(msg *message.Message) error { return b.out.Send(msg) }

// Receive blocks for the next message from the other end.
func (b *BiPipe) Receive(timeout time.Duration) (*message.Message, error) {
	return b.in.Receive(timeout)
}

// SetListener installs an asynchronous delivery callback.
func (b *BiPipe) SetListener(l Listener) { b.in.SetListener(l) }

// Close releases the receiving end; the other peer's sends will
// re-resolve and fail.
func (b *BiPipe) Close() { b.in.Close() }
