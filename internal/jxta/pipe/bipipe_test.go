package pipe_test

import (
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/pipe"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
)

func baseBiAdv(seed uint64) *adv.PipeAdv {
	return &adv.PipeAdv{PipeID: jid.FromSeed(jid.KindPipe, seed), Type: adv.PipeUnicast, Name: "bi.test"}
}

func TestBiPipeAdvPairDeterministic(t *testing.T) {
	base := baseBiAdv(42)
	s1, c1 := pipe.BiPipeAdvPair(base)
	s2, c2 := pipe.BiPipeAdvPair(base)
	if s1.PipeID != s2.PipeID || c1.PipeID != c2.PipeID {
		t.Fatal("pair derivation not deterministic")
	}
	if s1.PipeID == c1.PipeID {
		t.Fatal("directions collided")
	}
	other, _ := pipe.BiPipeAdvPair(baseBiAdv(43))
	if other.PipeID == s1.PipeID {
		t.Fatal("different bases collided")
	}
}

func TestBiPipeRequestReply(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	server := c.addPeer("server", 2, rendezvous.RoleEdge, "mem://rdv")
	client := c.addPeer("client", 3, rendezvous.RoleEdge, "mem://rdv")
	connect(t, server, client)

	base := baseBiAdv(50)
	srv, err := server.pipe.AcceptBiPipe(base)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := client.pipe.ConnectBiPipe(base, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Request from client to server...
	req := message.New(client.ep.PeerID())
	req.AddString("app", "op", "rent-skis")
	if err := cli.Send(req); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text("app", "op") != "rent-skis" {
		t.Fatalf("server got %q", got.Text("app", "op"))
	}
	// ...reply from server to client: the interaction TPS alone cannot
	// express (§6) and bidirectional pipes provide.
	rep := message.New(server.ep.PeerID())
	rep.AddString("app", "status", "confirmed")
	if err := srv.Send(rep); err != nil {
		t.Fatal(err)
	}
	back, err := cli.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if back.Text("app", "status") != "confirmed" {
		t.Fatalf("client got %q", back.Text("app", "status"))
	}
}

func TestBiPipeListener(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	server := c.addPeer("server", 2, rendezvous.RoleEdge, "mem://rdv")
	client := c.addPeer("client", 3, rendezvous.RoleEdge, "mem://rdv")
	connect(t, server, client)

	base := baseBiAdv(51)
	srv, err := server.pipe.AcceptBiPipe(base)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got := make(chan string, 8)
	srv.SetListener(func(m *message.Message) { got <- m.Text("app", "n") })

	cli, err := client.pipe.ConnectBiPipe(base, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 3; i++ {
		m := message.New(client.ep.PeerID())
		m.AddString("app", "n", string(rune('a'+i)))
		if err := cli.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case s := <-got:
			if s != string(rune('a'+i)) {
				t.Fatalf("out of order: %q at %d", s, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestBiPipeConnectWithoutServer(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	client := c.addPeer("client", 2, rendezvous.RoleEdge, "mem://rdv")
	connect(t, client)
	if _, err := client.pipe.ConnectBiPipe(baseBiAdv(52), 300*time.Millisecond); err == nil {
		t.Fatal("connect without server succeeded")
	}
}
