package pipe_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/pipe"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

type testPeer struct {
	name string
	ep   *endpoint.Service
	rdv  *rendezvous.Service
	res  *resolver.Service
	pipe *pipe.Service
}

type cluster struct {
	t   *testing.T
	net *netsim.Network
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	n := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(n.Close)
	return &cluster{t: t, net: n}
}

func (c *cluster) addPeer(name string, seed uint64, role rendezvous.Role, seeds ...endpoint.Address) *testPeer {
	c.t.Helper()
	node, err := c.net.AddNode(name)
	if err != nil {
		c.t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		c.t.Fatal(err)
	}
	rdv, err := rendezvous.New(ep, rendezvous.Config{
		Role: role, GroupParam: "net", Seeds: seeds, LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	res, err := resolver.New(ep, rdv, "net")
	if err != nil {
		c.t.Fatal(err)
	}
	ps, err := pipe.New(ep, res, pipe.Config{Group: "net"})
	if err != nil {
		c.t.Fatal(err)
	}
	p := &testPeer{name: name, ep: ep, rdv: rdv, res: res, pipe: ps}
	c.t.Cleanup(func() {
		p.pipe.Close()
		p.res.Close()
		p.rdv.Close()
		_ = p.ep.Close()
	})
	return p
}

func unicastAdv(seed uint64, name string) *adv.PipeAdv {
	return &adv.PipeAdv{PipeID: jid.FromSeed(jid.KindPipe, seed), Type: adv.PipeUnicast, Name: name}
}

func connect(t *testing.T, peers ...*testPeer) {
	t.Helper()
	for _, p := range peers {
		if !p.rdv.AwaitConnected(5 * time.Second) {
			t.Fatalf("%s never connected", p.name)
		}
	}
}

func TestUnicastPipeEndToEnd(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	rx := c.addPeer("rx", 2, rendezvous.RoleEdge, "mem://rdv")
	tx := c.addPeer("tx", 3, rendezvous.RoleEdge, "mem://rdv")
	connect(t, rx, tx)

	pa := unicastAdv(10, "test.unicast")
	in, err := rx.pipe.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tx.pipe.CreateOutputPipe(pa, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m := message.New(tx.ep.PeerID())
	m.AddString("app", "body", "through-the-pipe")
	if err := out.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := in.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text("app", "body") != "through-the-pipe" {
		t.Fatalf("got %q", got.Text("app", "body"))
	}
	if in.ID() != pa.PipeID || out.ID() != pa.PipeID {
		t.Fatal("pipe IDs do not match advertisement")
	}
	if in.Name() != "test.unicast" || out.Name() != "test.unicast" {
		t.Fatal("pipe names do not match advertisement")
	}
}

func TestListenerDelivery(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	rx := c.addPeer("rx", 2, rendezvous.RoleEdge, "mem://rdv")
	tx := c.addPeer("tx", 3, rendezvous.RoleEdge, "mem://rdv")
	connect(t, rx, tx)

	pa := unicastAdv(11, "listener.pipe")
	in, err := rx.pipe.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 16)
	in.SetListener(func(m *message.Message) { got <- m.Text("app", "n") })

	out, err := tx.pipe.CreateOutputPipe(pa, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m := message.New(tx.ep.PeerID())
		m.AddString("app", "n", fmt.Sprint(i))
		if err := out.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case s := <-got:
			if s != fmt.Sprint(i) {
				t.Fatalf("out of order: got %q want %d", s, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestListenerInstalledLateFlushesBacklog(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	rx := c.addPeer("rx", 2, rendezvous.RoleEdge, "mem://rdv")
	tx := c.addPeer("tx", 3, rendezvous.RoleEdge, "mem://rdv")
	connect(t, rx, tx)

	pa := unicastAdv(12, "late.listener")
	in, err := rx.pipe.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tx.pipe.CreateOutputPipe(pa, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m := message.New(tx.ep.PeerID())
	m.AddString("app", "body", "queued")
	if err := out.Send(m); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return in.Pending() == 1 })
	got := make(chan string, 1)
	in.SetListener(func(m *message.Message) { got <- m.Text("app", "body") })
	select {
	case s := <-got:
		if s != "queued" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backlog never flushed")
	}
	if in.Pending() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestOutputPipeToUnboundPipeFails(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	tx := c.addPeer("tx", 2, rendezvous.RoleEdge, "mem://rdv")
	connect(t, tx)
	_, err := tx.pipe.CreateOutputPipe(unicastAdv(13, "nobody"), 300*time.Millisecond)
	if !errors.Is(err, pipe.ErrNotBound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRebindAfterPeerMoves(t *testing.T) {
	// The paper's PBP scenario: the receiving peer changes its network
	// address; the sender's pipe keeps working because binding is by
	// pipe ID, not by address.
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	rx := c.addPeer("rx-old", 2, rendezvous.RoleEdge, "mem://rdv")
	tx := c.addPeer("tx", 3, rendezvous.RoleEdge, "mem://rdv")
	connect(t, rx, tx)

	pa := unicastAdv(14, "moving.pipe")
	in, err := rx.pipe.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tx.pipe.CreateOutputPipe(pa, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m1 := message.New(tx.ep.PeerID())
	m1.AddString("app", "body", "before-move")
	if err := out.Send(m1); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Receive(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The peer "moves": its old node dies, it comes back at a new
	// address with the same identity and re-creates its input pipe.
	in.Close()
	rx.pipe.Close()
	rx.res.Close()
	rx.rdv.Close()
	_ = rx.ep.Close()

	rx2 := c.addPeer("rx-new", 2, rendezvous.RoleEdge, "mem://rdv")
	connect(t, rx2)
	in2, err := rx2.pipe.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}

	// The sender's cached binding points at the dead address; Send must
	// re-resolve and deliver to the new one.
	var sendErr error
	deadline := time.Now().Add(10 * time.Second)
	for {
		m2 := message.New(tx.ep.PeerID())
		m2.AddString("app", "body", "after-move")
		sendErr = out.Send(m2)
		if sendErr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("send never recovered: %v", sendErr)
		}
		time.Sleep(50 * time.Millisecond)
	}
	got, err := in2.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text("app", "body") != "after-move" {
		t.Fatalf("got %q", got.Text("app", "body"))
	}
}

func TestLoopbackPipe(t *testing.T) {
	c := newCluster(t)
	p := c.addPeer("solo", 1, rendezvous.RoleEdge)
	pa := unicastAdv(15, "loopback")
	in, err := p.pipe.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.pipe.CreateOutputPipe(pa, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m := message.New(p.ep.PeerID())
	m.AddString("app", "body", "to-myself")
	if err := out.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := in.Receive(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text("app", "body") != "to-myself" {
		t.Fatalf("got %q", got.Text("app", "body"))
	}
}

func TestDuplicateInputPipeRejected(t *testing.T) {
	c := newCluster(t)
	p := c.addPeer("p", 1, rendezvous.RoleEdge)
	pa := unicastAdv(16, "dup")
	if _, err := p.pipe.CreateInputPipe(pa); err != nil {
		t.Fatal(err)
	}
	if _, err := p.pipe.CreateInputPipe(pa); !errors.Is(err, pipe.ErrDupInput) {
		t.Fatalf("err = %v", err)
	}
}

func TestWrongAdvertisementType(t *testing.T) {
	c := newCluster(t)
	p := c.addPeer("p", 1, rendezvous.RoleEdge)
	bad := &adv.PipeAdv{PipeID: jid.FromSeed(jid.KindPipe, 17), Type: adv.PipePropagate, Name: "wire"}
	if _, err := p.pipe.CreateInputPipe(bad); !errors.Is(err, pipe.ErrWrongType) {
		t.Fatalf("input err = %v", err)
	}
	if _, err := p.pipe.CreateOutputPipe(bad, time.Second); !errors.Is(err, pipe.ErrWrongType) {
		t.Fatalf("output err = %v", err)
	}
}

func TestReceiveTimeoutAndClose(t *testing.T) {
	c := newCluster(t)
	p := c.addPeer("p", 1, rendezvous.RoleEdge)
	in, err := p.pipe.CreateInputPipe(unicastAdv(18, "idle"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Receive(50 * time.Millisecond); !errors.Is(err, pipe.ErrReceiveEmpty) {
		t.Fatalf("timeout err = %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := in.Receive(5 * time.Second)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	in.Close()
	if err := <-done; !errors.Is(err, pipe.ErrClosed) {
		t.Fatalf("close err = %v", err)
	}
	in.Close() // idempotent
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
