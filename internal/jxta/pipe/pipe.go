// Package pipe implements JXTA pipes and the Pipe Binding Protocol (PBP).
//
// A pipe is a virtual, asynchronous, unidirectional communication channel
// identified by a pipe ID — never by a physical address. Input pipes are
// the receiving ends; output pipes resolve which peer(s) currently bind
// the pipe ID and send to them. Because binding is by ID, a peer that
// crashes and comes back with a different network address keeps its pipes:
// senders re-resolve and continue (the paper's PBP figure shows exactly
// this address-change scenario).
package pipe

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
)

// Protocol names.
const (
	// ServiceName is the endpoint service carrying pipe payloads.
	ServiceName = "jxta.pipe"
	// HandlerName is the resolver handler answering binding queries.
	HandlerName = "jxta.pbp"
)

// Message element names, namespace "pipe".
const (
	elemNS = "pipe"
	elemID = "ID"
)

// DefaultBindingTTL is how long a resolved binding stays cached.
const DefaultBindingTTL = time.Minute

// Errors.
var (
	ErrClosed       = errors.New("pipe: closed")
	ErrNotBound     = errors.New("pipe: no peer bound to pipe")
	ErrDupInput     = errors.New("pipe: input pipe already exists")
	ErrWrongType    = errors.New("pipe: advertisement type mismatch")
	ErrReceiveEmpty = errors.New("pipe: receive timeout")
)

// Endpoint is the endpoint capability the pipe service needs.
type Endpoint interface {
	endpoint.Sender
	RegisterHandler(svc, param string, h endpoint.Handler) error
	UnregisterHandler(svc, param string)
}

// Config configures a pipe Service.
type Config struct {
	// Group scopes the service to a peer group.
	Group string
	// BindingTTL overrides the binding cache lifetime.
	BindingTTL time.Duration
	// Clock substitutes the time source (tests).
	Clock func() time.Time
}

type binding struct {
	peer    jid.ID
	addrs   []endpoint.Address
	expires time.Time
}

// Service manages the pipes of one peer in one group.
type Service struct {
	ep  Endpoint
	res *resolver.Service
	cfg Config
	now func() time.Time
	ttl time.Duration

	mu       sync.Mutex
	inputs   map[jid.ID]*InputPipe
	bindings map[jid.ID][]binding
	waiters  map[jid.ID][]chan struct{}
	closed   bool
}

// New creates the pipe service: it registers the payload endpoint handler
// and the PBP resolver handler.
func New(ep Endpoint, res *resolver.Service, cfg Config) (*Service, error) {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	ttl := cfg.BindingTTL
	if ttl == 0 {
		ttl = DefaultBindingTTL
	}
	s := &Service{
		ep:       ep,
		res:      res,
		cfg:      cfg,
		now:      now,
		ttl:      ttl,
		inputs:   make(map[jid.ID]*InputPipe),
		bindings: make(map[jid.ID][]binding),
		waiters:  make(map[jid.ID][]chan struct{}),
	}
	if err := ep.RegisterHandler(ServiceName, cfg.Group, s.handlePayload); err != nil {
		return nil, fmt.Errorf("pipe: %w", err)
	}
	if err := res.RegisterHandler(HandlerName, (*bindHandler)(s)); err != nil {
		ep.UnregisterHandler(ServiceName, cfg.Group)
		return nil, fmt.Errorf("pipe: %w", err)
	}
	return s, nil
}

// Close tears down all pipes and unregisters the handlers.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	inputs := make([]*InputPipe, 0, len(s.inputs))
	for _, in := range s.inputs {
		inputs = append(inputs, in)
	}
	for _, ws := range s.waiters {
		for _, w := range ws {
			close(w)
		}
	}
	s.waiters = map[jid.ID][]chan struct{}{}
	s.mu.Unlock()
	for _, in := range inputs {
		in.Close()
	}
	s.res.UnregisterHandler(HandlerName)
	s.ep.UnregisterHandler(ServiceName, s.cfg.Group)
}

// CreateInputPipe binds the receiving end of the advertised pipe on this
// peer.
func (s *Service) CreateInputPipe(pa *adv.PipeAdv) (*InputPipe, error) {
	if pa.Type != adv.PipeUnicast {
		return nil, fmt.Errorf("%w: %s (want %s)", ErrWrongType, pa.Type, adv.PipeUnicast)
	}
	in := &InputPipe{svc: s, id: pa.PipeID, name: pa.Name}
	in.cond = sync.NewCond(&in.mu)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.inputs[pa.PipeID]; ok {
		return nil, fmt.Errorf("%w: %v", ErrDupInput, pa.PipeID)
	}
	s.inputs[pa.PipeID] = in
	return in, nil
}

// CreateOutputPipe resolves the pipe's current binding and returns a
// sending end. It blocks until a binding is found or the timeout elapses.
func (s *Service) CreateOutputPipe(pa *adv.PipeAdv, timeout time.Duration) (*OutputPipe, error) {
	if pa.Type != adv.PipeUnicast {
		return nil, fmt.Errorf("%w: %s (want %s)", ErrWrongType, pa.Type, adv.PipeUnicast)
	}
	if err := s.resolveBinding(pa.PipeID, timeout); err != nil {
		return nil, err
	}
	return &OutputPipe{svc: s, id: pa.PipeID, name: pa.Name}, nil
}

// resolveBinding queries the group for peers binding the pipe ID.
func (s *Service) resolveBinding(id jid.ID, timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	// Local input pipe counts as a binding (loopback pipes).
	if _, ok := s.inputs[id]; ok {
		s.mu.Unlock()
		return nil
	}
	if bs := s.freshBindingsLocked(id); len(bs) > 0 {
		s.mu.Unlock()
		return nil
	}
	wait := make(chan struct{})
	s.waiters[id] = append(s.waiters[id], wait)
	s.mu.Unlock()

	payload, err := xml.Marshal(bindQuery{PipeID: id})
	if err != nil {
		return fmt.Errorf("pipe: encode bind query: %w", err)
	}
	if _, err := s.res.PropagateQuery(HandlerName, payload); err != nil {
		return fmt.Errorf("pipe: bind query: %w", err)
	}
	select {
	case <-wait:
		s.mu.Lock()
		ok := len(s.freshBindingsLocked(id)) > 0
		s.mu.Unlock()
		if !ok {
			return ErrNotBound
		}
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("%w: %v (resolution timeout)", ErrNotBound, id)
	}
}

// freshBindingsLocked returns unexpired bindings for the pipe.
func (s *Service) freshBindingsLocked(id jid.ID) []binding {
	now := s.now()
	all := s.bindings[id]
	fresh := all[:0]
	for _, b := range all {
		if now.Before(b.expires) {
			fresh = append(fresh, b)
		}
	}
	s.bindings[id] = fresh
	return fresh
}

func (s *Service) addBinding(id jid.ID, peer jid.ID, addrs []endpoint.Address) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	entry := binding{peer: peer, addrs: addrs, expires: s.now().Add(s.ttl)}
	replaced := false
	for i, b := range s.bindings[id] {
		if b.peer == peer {
			s.bindings[id][i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		s.bindings[id] = append(s.bindings[id], entry)
	}
	for _, w := range s.waiters[id] {
		close(w)
	}
	delete(s.waiters, id)
}

// dropBinding forgets one peer's binding after a send failure so the next
// send re-resolves.
func (s *Service) dropBinding(id jid.ID, peer jid.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bs := s.bindings[id]
	for i, b := range bs {
		if b.peer == peer {
			s.bindings[id] = append(bs[:i], bs[i+1:]...)
			return
		}
	}
}

// handlePayload delivers pipe messages to the local input pipe.
func (s *Service) handlePayload(msg *message.Message, _ endpoint.Address) {
	id, err := jid.Parse(msg.Text(elemNS, elemID))
	if err != nil {
		return
	}
	s.mu.Lock()
	in, ok := s.inputs[id]
	s.mu.Unlock()
	if !ok {
		return // no input pipe here (stale binding)
	}
	in.push(msg)
}

// --- PBP resolver handler ---

type bindQuery struct {
	XMLName xml.Name `xml:"PipeBindQuery"`
	PipeID  jid.ID   `xml:"PipeID"`
}

type bindResponse struct {
	XMLName xml.Name `xml:"PipeBindResponse"`
	PipeID  jid.ID   `xml:"PipeID"`
	PeerID  jid.ID   `xml:"PeerID"`
	Addrs   []string `xml:"Addr"`
}

type bindHandler Service

var _ resolver.Handler = (*bindHandler)(nil)

// ProcessQuery answers binding queries for pipes with a local input end.
func (h *bindHandler) ProcessQuery(q resolver.Query, _ endpoint.Address) ([]byte, error) {
	s := (*Service)(h)
	var query bindQuery
	if err := xml.Unmarshal(q.Payload, &query); err != nil {
		return nil, err
	}
	s.mu.Lock()
	_, bound := s.inputs[query.PipeID]
	s.mu.Unlock()
	if !bound {
		return nil, nil
	}
	resp := bindResponse{PipeID: query.PipeID, PeerID: s.ep.PeerID()}
	for _, a := range s.ep.LocalAddresses() {
		resp.Addrs = append(resp.Addrs, string(a))
	}
	return xml.Marshal(resp)
}

// ProcessResponse caches learned bindings and wakes resolvers.
func (h *bindHandler) ProcessResponse(r resolver.Response, _ endpoint.Address) {
	s := (*Service)(h)
	var resp bindResponse
	if err := xml.Unmarshal(r.Payload, &resp); err != nil {
		return
	}
	if resp.PipeID.IsZero() || resp.PeerID.IsZero() {
		return
	}
	addrs := make([]endpoint.Address, 0, len(resp.Addrs))
	for _, a := range resp.Addrs {
		addrs = append(addrs, endpoint.Address(a))
	}
	s.addBinding(resp.PipeID, resp.PeerID, addrs)
}
