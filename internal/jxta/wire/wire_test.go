package wire_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/jxta/wire"
	"github.com/tps-p2p/tps/internal/netsim"
)

type testPeer struct {
	name string
	ep   *endpoint.Service
	rdv  *rendezvous.Service
	wire *wire.Service
}

type cluster struct {
	t   *testing.T
	net *netsim.Network
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	n := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(n.Close)
	return &cluster{t: t, net: n}
}

func (c *cluster) addPeer(name string, seed uint64, role rendezvous.Role, seeds ...endpoint.Address) *testPeer {
	c.t.Helper()
	node, err := c.net.AddNode(name)
	if err != nil {
		c.t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		c.t.Fatal(err)
	}
	rdv, err := rendezvous.New(ep, rendezvous.Config{
		Role: role, GroupParam: "net", Seeds: seeds, LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	ws, err := wire.New(ep, rdv, wire.Config{Group: "net"})
	if err != nil {
		c.t.Fatal(err)
	}
	p := &testPeer{name: name, ep: ep, rdv: rdv, wire: ws}
	c.t.Cleanup(func() {
		p.wire.Close()
		p.rdv.Close()
		_ = p.ep.Close()
	})
	return p
}

func wireAdv(seed uint64, name string) *adv.PipeAdv {
	return &adv.PipeAdv{PipeID: jid.FromSeed(jid.KindPipe, seed), Type: adv.PipePropagate, Name: name}
}

func connect(t *testing.T, peers ...*testPeer) {
	t.Helper()
	for _, p := range peers {
		if !p.rdv.AwaitConnected(5 * time.Second) {
			t.Fatalf("%s never connected", p.name)
		}
	}
}

type eventSink struct {
	mu   sync.Mutex
	got  []string
	wake chan struct{}
}

func newEventSink() *eventSink { return &eventSink{wake: make(chan struct{}, 1)} }

func (s *eventSink) listener(m *message.Message) {
	s.mu.Lock()
	s.got = append(s.got, m.Text("app", "body"))
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *eventSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func (s *eventSink) waitCount(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		if len(s.got) >= n {
			out := append([]string(nil), s.got...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d messages (have %d)", n, s.count())
		}
		select {
		case <-s.wake:
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestManyToManyFanOut(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	pub := c.addPeer("pub", 2, rendezvous.RoleEdge, "mem://rdv")
	s1 := c.addPeer("s1", 3, rendezvous.RoleEdge, "mem://rdv")
	s2 := c.addPeer("s2", 4, rendezvous.RoleEdge, "mem://rdv")
	connect(t, pub, s1, s2)

	pa := wireAdv(10, "PS.SkiRental")
	sink1, sink2 := newEventSink(), newEventSink()
	for p, sink := range map[*testPeer]*eventSink{s1: sink1, s2: sink2} {
		in, err := p.wire.CreateInputPipe(pa)
		if err != nil {
			t.Fatal(err)
		}
		in.SetListener(sink.listener)
	}
	out, err := pub.wire.CreateOutputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	m := message.New(pub.ep.PeerID())
	m.AddString("app", "body", "offer")
	if err := out.Send(m); err != nil {
		t.Fatal(err)
	}
	if got := sink1.waitCount(t, 1); got[0] != "offer" {
		t.Fatalf("s1 got %v", got)
	}
	if got := sink2.waitCount(t, 1); got[0] != "offer" {
		t.Fatalf("s2 got %v", got)
	}
}

func TestLoopbackToOwnInputPipe(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	p := c.addPeer("pubsub", 2, rendezvous.RoleEdge, "mem://rdv")
	connect(t, p)

	pa := wireAdv(11, "loopback")
	in, err := p.wire.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	sink := newEventSink()
	in.SetListener(sink.listener)
	out, err := p.wire.CreateOutputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	m := message.New(p.ep.PeerID())
	m.AddString("app", "body", "self")
	if err := out.Send(m); err != nil {
		t.Fatal(err)
	}
	if got := sink.waitCount(t, 1); got[0] != "self" {
		t.Fatalf("got %v", got)
	}
	// Exactly once, even though the mesh may echo the message back.
	time.Sleep(100 * time.Millisecond)
	if sink.count() != 1 {
		t.Fatalf("loopback delivered %d times", sink.count())
	}
}

func TestIsolatedPeerStillLoopsBack(t *testing.T) {
	c := newCluster(t)
	p := c.addPeer("alone", 1, rendezvous.RoleEdge) // no seeds at all
	pa := wireAdv(12, "solo")
	in, err := p.wire.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	sink := newEventSink()
	in.SetListener(sink.listener)
	out, err := p.wire.CreateOutputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	m := message.New(p.ep.PeerID())
	m.AddString("app", "body", "echo")
	if err := out.Send(m); err != nil {
		t.Fatalf("isolated send should succeed via loopback: %v", err)
	}
	if got := sink.waitCount(t, 1); got[0] != "echo" {
		t.Fatalf("got %v", got)
	}
}

func TestTwoWiresAreIsolated(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	pub := c.addPeer("pub", 2, rendezvous.RoleEdge, "mem://rdv")
	sub := c.addPeer("sub", 3, rendezvous.RoleEdge, "mem://rdv")
	connect(t, pub, sub)

	ski := wireAdv(13, "PS.SkiRental")
	chat := wireAdv(14, "PS.Chat")
	skiSink, chatSink := newEventSink(), newEventSink()
	inSki, err := sub.wire.CreateInputPipe(ski)
	if err != nil {
		t.Fatal(err)
	}
	inSki.SetListener(skiSink.listener)
	inChat, err := sub.wire.CreateInputPipe(chat)
	if err != nil {
		t.Fatal(err)
	}
	inChat.SetListener(chatSink.listener)

	outSki, err := pub.wire.CreateOutputPipe(ski)
	if err != nil {
		t.Fatal(err)
	}
	m := message.New(pub.ep.PeerID())
	m.AddString("app", "body", "ski-only")
	if err := outSki.Send(m); err != nil {
		t.Fatal(err)
	}
	skiSink.waitCount(t, 1)
	time.Sleep(50 * time.Millisecond)
	if chatSink.count() != 0 {
		t.Fatal("message leaked across wires")
	}
}

func TestManyPublishersManySubscribers(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	pa := wireAdv(15, "m2m")
	const pubs, subs, perPub = 3, 3, 10

	var sinks []*eventSink
	for i := 0; i < subs; i++ {
		p := c.addPeer("sub"+string(rune('0'+i)), uint64(10+i), rendezvous.RoleEdge, "mem://rdv")
		connect(t, p)
		in, err := p.wire.CreateInputPipe(pa)
		if err != nil {
			t.Fatal(err)
		}
		sink := newEventSink()
		in.SetListener(sink.listener)
		sinks = append(sinks, sink)
	}
	var outs []*wire.OutputPipe
	for i := 0; i < pubs; i++ {
		p := c.addPeer("pub"+string(rune('0'+i)), uint64(20+i), rendezvous.RoleEdge, "mem://rdv")
		connect(t, p)
		out, err := p.wire.CreateOutputPipe(pa)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	for i, out := range outs {
		for j := 0; j < perPub; j++ {
			m := message.New(jid.FromSeed(jid.KindPeer, uint64(20+i)))
			m.AddString("app", "body", "x")
			if err := out.Send(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, sink := range sinks {
		got := sink.waitCount(t, pubs*perPub)
		if len(got) != pubs*perPub {
			t.Fatalf("sub%d received %d, want %d", i, len(got), pubs*perPub)
		}
	}
}

func TestDedupeCountsDuplicates(t *testing.T) {
	// Two rendezvous seeded with each other produce duplicate deliveries
	// at the wire layer; the dedupe cache absorbs them.
	c := newCluster(t)
	c.addPeer("rdvA", 1, rendezvous.RoleRendezvous, "mem://rdvB")
	c.addPeer("rdvB", 2, rendezvous.RoleRendezvous, "mem://rdvA")
	pub := c.addPeer("pub", 3, rendezvous.RoleEdge, "mem://rdvA", "mem://rdvB")
	sub := c.addPeer("sub", 4, rendezvous.RoleEdge, "mem://rdvA", "mem://rdvB")
	connect(t, pub, sub)
	time.Sleep(100 * time.Millisecond) // let the rdv mesh link up

	pa := wireAdv(16, "dup-wire")
	in, err := sub.wire.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	sink := newEventSink()
	in.SetListener(sink.listener)
	out, err := pub.wire.CreateOutputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	const total = 10
	for i := 0; i < total; i++ {
		m := message.New(pub.ep.PeerID())
		m.AddString("app", "body", "d")
		if err := out.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	sink.waitCount(t, total)
	c.net.WaitQuiesce(5 * time.Second)
	if sink.count() != total {
		t.Fatalf("delivered %d, want exactly %d", sink.count(), total)
	}
	// The sub leased with both rendezvous, so duplicates must have been
	// suppressed (each message arrives via two paths).
	if st := sub.wire.Stats(); st.Duplicates == 0 {
		t.Logf("warning: no duplicates observed (topology may have deduped earlier); stats %+v", st)
	}
}

func TestWrongTypeRejected(t *testing.T) {
	c := newCluster(t)
	p := c.addPeer("p", 1, rendezvous.RoleEdge)
	bad := &adv.PipeAdv{PipeID: jid.FromSeed(jid.KindPipe, 17), Type: adv.PipeUnicast, Name: "unicast"}
	if _, err := p.wire.CreateInputPipe(bad); !errors.Is(err, wire.ErrWrongType) {
		t.Fatalf("input err = %v", err)
	}
	if _, err := p.wire.CreateOutputPipe(bad); !errors.Is(err, wire.ErrWrongType) {
		t.Fatalf("output err = %v", err)
	}
}

func TestDuplicateInputRejected(t *testing.T) {
	c := newCluster(t)
	p := c.addPeer("p", 1, rendezvous.RoleEdge)
	pa := wireAdv(18, "dup-in")
	if _, err := p.wire.CreateInputPipe(pa); err != nil {
		t.Fatal(err)
	}
	if _, err := p.wire.CreateInputPipe(pa); !errors.Is(err, wire.ErrDupInput) {
		t.Fatalf("err = %v", err)
	}
}

func TestClosedInputPipeStopsDelivery(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	pub := c.addPeer("pub", 2, rendezvous.RoleEdge, "mem://rdv")
	sub := c.addPeer("sub", 3, rendezvous.RoleEdge, "mem://rdv")
	connect(t, pub, sub)

	pa := wireAdv(19, "closing")
	in, err := sub.wire.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	sink := newEventSink()
	in.SetListener(sink.listener)
	out, err := pub.wire.CreateOutputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	m := message.New(pub.ep.PeerID())
	m.AddString("app", "body", "one")
	if err := out.Send(m); err != nil {
		t.Fatal(err)
	}
	sink.waitCount(t, 1)
	in.Close()
	m2 := message.New(pub.ep.PeerID())
	m2.AddString("app", "body", "two")
	if err := out.Send(m2); err != nil {
		t.Fatal(err)
	}
	c.net.WaitQuiesce(5 * time.Second)
	if sink.count() != 1 {
		t.Fatalf("closed pipe still delivered: %d", sink.count())
	}
	// Re-creating the input pipe after close works.
	if _, err := sub.wire.CreateInputPipe(pa); err != nil {
		t.Fatalf("recreate after close: %v", err)
	}
}

func TestStatsCounts(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	pub := c.addPeer("pub", 2, rendezvous.RoleEdge, "mem://rdv")
	sub := c.addPeer("sub", 3, rendezvous.RoleEdge, "mem://rdv")
	connect(t, pub, sub)
	pa := wireAdv(20, "stats")
	in, err := sub.wire.CreateInputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	sink := newEventSink()
	in.SetListener(sink.listener)
	out, err := pub.wire.CreateOutputPipe(pa)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m := message.New(pub.ep.PeerID())
		m.AddString("app", "body", "s")
		if err := out.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	sink.waitCount(t, 5)
	if st := pub.wire.Stats(); st.Sent != 5 {
		t.Fatalf("pub stats %+v", st)
	}
	if st := sub.wire.Stats(); st.Received != 5 {
		t.Fatalf("sub stats %+v", st)
	}
}
