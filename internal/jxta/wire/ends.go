package wire

import (
	"sync"

	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
)

// Listener consumes messages arriving on a wire input pipe. The
// delivered message is the listener's to keep, but its element payloads
// may be shared copy-on-write with copies still in flight (the local
// loopback shares bytes with the copy being propagated into the mesh):
// listeners may Add/Replace/Remove elements on their copy, but must
// never modify element payload bytes in place.
type Listener func(msg *message.Message)

// InputPipe is a peer's receiving end of a propagated pipe.
type InputPipe struct {
	svc  *Service
	id   jid.ID
	name string

	mu       sync.Mutex
	queue    []*message.Message
	listener Listener
	closed   bool
}

// ID returns the wire pipe ID.
func (in *InputPipe) ID() jid.ID { return in.id }

// Name returns the pipe's advertised name.
func (in *InputPipe) Name() string { return in.name }

// SetListener installs (or clears, with nil) the delivery callback.
// Messages queued before a listener existed are flushed to it in order.
func (in *InputPipe) SetListener(l Listener) {
	in.mu.Lock()
	in.listener = l
	var backlog []*message.Message
	if l != nil {
		backlog = in.queue
		in.queue = nil
	}
	in.mu.Unlock()
	for _, m := range backlog {
		l(m)
	}
}

// Pending returns the number of queued messages (no listener installed).
func (in *InputPipe) Pending() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.queue)
}

// Close unbinds the input pipe from the wire service.
func (in *InputPipe) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	in.queue = nil
	in.mu.Unlock()

	in.svc.mu.Lock()
	if in.svc.inputs[in.id] == in {
		delete(in.svc.inputs, in.id)
	}
	in.svc.mu.Unlock()
}

func (in *InputPipe) deliver(msg *message.Message) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	l := in.listener
	if l == nil {
		in.queue = append(in.queue, msg)
	}
	in.mu.Unlock()
	if l != nil {
		l(msg)
	}
}

// OutputPipe is a sending end of a propagated pipe.
type OutputPipe struct {
	svc  *Service
	id   jid.ID
	name string
}

// ID returns the wire pipe ID.
func (out *OutputPipe) ID() jid.ID { return out.id }

// Name returns the pipe's advertised name.
func (out *OutputPipe) Name() string { return out.name }

// Send fans the message out to every peer holding an input end of this
// pipe, including this peer itself.
func (out *OutputPipe) Send(msg *message.Message) error {
	return out.svc.send(out.id, msg)
}
