// Package wire implements the JXTA wire service: many-to-many propagated
// pipes.
//
// Where a unicast pipe binds one sender to one receiver, a wire pipe
// fans every message out to all peers holding an input end, using
// rendezvous propagation. Messages loop back to the sender's own input
// pipe (a publisher that also subscribes sees its own traffic) and a
// duplicate cache suppresses the replays that a meshed topology
// inevitably produces — the functionality the paper's SR-JXTA
// application had to rebuild by hand (§4.4 footnote 1).
package wire

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/seen"
	"github.com/tps-p2p/tps/internal/obs"
)

// ServiceName is the endpoint service name of the wire service (JXTA's
// WireService.WireName).
const ServiceName = "jxta.service.wire"

// Message element names, namespace "wire".
const (
	elemNS = "wire"
	elemID = "ID"
)

// Errors.
var (
	ErrClosed    = errors.New("wire: closed")
	ErrDupInput  = errors.New("wire: input pipe already exists")
	ErrWrongType = errors.New("wire: advertisement type mismatch")
)

// Propagator fans messages into the group; the rendezvous service
// implements it.
type Propagator interface {
	Propagate(msg *message.Message, dsvc, dparam string) error
}

// Endpoint is the endpoint capability the wire service needs.
type Endpoint interface {
	endpoint.Sender
	RegisterHandler(svc, param string, h endpoint.Handler) error
	UnregisterHandler(svc, param string)
}

// Config configures a wire Service.
type Config struct {
	// Group scopes the service to a peer group.
	Group string
	// DisableDedupe turns off the duplicate-suppression cache. Only the
	// ablation benchmarks use this; real deployments always deduplicate.
	DisableDedupe bool
}

// Stats counts wire traffic.
//
// Deprecated: new introspection code should use Snapshot (the
// obs.Provider view); Stats remains for existing tests and tools.
type Stats struct {
	Sent       int64
	Received   int64
	Duplicates int64
	// PropagateFailures counts sends whose mesh propagation errored
	// (partition, all peers unreachable). The local loopback may still
	// have delivered, so this is a reachability signal, not data loss.
	PropagateFailures int64
}

// wireCounters is the lock-free internal form of Stats: the per-message
// send and deliver paths bump these without touching s.mu.
type wireCounters struct {
	sent         atomic.Int64
	received     atomic.Int64
	duplicates   atomic.Int64
	propFailures atomic.Int64
}

// Service manages the propagated pipes of one peer in one group.
type Service struct {
	ep    Endpoint
	prop  Propagator
	cfg   Config
	seen  *seen.Cache
	stats wireCounters

	mu     sync.Mutex
	inputs map[jid.ID]*InputPipe
	closed bool
}

// New creates the wire service and registers its endpoint handler.
func New(ep Endpoint, prop Propagator, cfg Config) (*Service, error) {
	s := &Service{
		ep:     ep,
		prop:   prop,
		cfg:    cfg,
		seen:   seen.New(),
		inputs: make(map[jid.ID]*InputPipe),
	}
	if err := ep.RegisterHandler(ServiceName, cfg.Group, s.handle); err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return s, nil
}

// Close tears down the input pipes and unregisters the handler.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	inputs := make([]*InputPipe, 0, len(s.inputs))
	for _, in := range s.inputs {
		inputs = append(inputs, in)
	}
	s.mu.Unlock()
	for _, in := range inputs {
		in.Close()
	}
	s.ep.UnregisterHandler(ServiceName, s.cfg.Group)
}

// CreateInputPipe opens the receiving end of a propagated pipe on this
// peer.
func (s *Service) CreateInputPipe(pa *adv.PipeAdv) (*InputPipe, error) {
	if pa.Type != adv.PipePropagate {
		return nil, fmt.Errorf("%w: %s (want %s)", ErrWrongType, pa.Type, adv.PipePropagate)
	}
	in := &InputPipe{svc: s, id: pa.PipeID, name: pa.Name}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.inputs[pa.PipeID]; ok {
		return nil, fmt.Errorf("%w: %v", ErrDupInput, pa.PipeID)
	}
	s.inputs[pa.PipeID] = in
	return in, nil
}

// CreateOutputPipe opens a sending end. Propagated pipes need no binding
// resolution: the rendezvous mesh is the destination.
func (s *Service) CreateOutputPipe(pa *adv.PipeAdv) (*OutputPipe, error) {
	if pa.Type != adv.PipePropagate {
		return nil, fmt.Errorf("%w: %s (want %s)", ErrWrongType, pa.Type, adv.PipePropagate)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	return &OutputPipe{svc: s, id: pa.PipeID, name: pa.Name}, nil
}

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats {
	return Stats{
		Sent:              s.stats.sent.Load(),
		Received:          s.stats.received.Load(),
		Duplicates:        s.stats.duplicates.Load(),
		PropagateFailures: s.stats.propFailures.Load(),
	}
}

// Snapshot implements obs.Provider.
func (s *Service) Snapshot() obs.Snapshot {
	s.mu.Lock()
	inputs := len(s.inputs)
	s.mu.Unlock()
	return obs.Snapshot{
		Name:    "wire",
		Version: 1,
		Counters: map[string]int64{
			"sent":               s.stats.sent.Load(),
			"received":           s.stats.received.Load(),
			"duplicates":         s.stats.duplicates.Load(),
			"propagate_failures": s.stats.propFailures.Load(),
		},
		Gauges: map[string]float64{
			"input_pipes": float64(inputs),
		},
	}
}

// SeenCache exposes the duplicate-suppression cache for the "seen"
// subsystem aggregation; nil when dedupe is disabled.
func (s *Service) SeenCache() *seen.Cache {
	if s.cfg.DisableDedupe {
		return nil
	}
	return s.seen
}

// handle delivers propagated wire messages to the local input pipe.
// Dedupe runs first: duplicate frames are the common case in a meshed
// topology, and dropping them must not pay for parsing the pipe ID.
func (s *Service) handle(msg *message.Message, _ endpoint.Address) {
	if !s.cfg.DisableDedupe && !s.seen.Observe(msg.ID) {
		s.stats.duplicates.Add(1)
		return
	}
	id, err := msg.GetID(elemNS, elemID)
	if err != nil {
		return
	}
	s.mu.Lock()
	in, ok := s.inputs[id]
	s.mu.Unlock()
	if !ok {
		return
	}
	s.stats.received.Add(1)
	in.deliver(msg)
}

// send propagates a message on a wire pipe and loops it back locally.
func (s *Service) send(id jid.ID, msg *message.Message) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	in := s.inputs[id]
	s.mu.Unlock()
	s.stats.sent.Add(1)

	// COW envelope: Dup shares the caller's elements (the message may be
	// fanning out across many attachments) and ReplaceID clones only the
	// element headers before writing this pipe's ID. What used to be a
	// deep copy of the payload per attachment is now O(1).
	out := msg.Dup()
	out.ReplaceID(elemNS, elemID, id)
	// Mark our own message as seen so a mesh echo is not re-delivered.
	if !s.cfg.DisableDedupe {
		s.seen.Observe(out.ID)
	}
	// Local loopback first: a peer subscribing to its own wire hears
	// itself regardless of mesh connectivity. The loopback Dup (also
	// O(1)) isolates element-list mutations on the delivered copy from
	// the copy still headed into the mesh; payload BYTES are shared —
	// the Listener contract forbids mutating them in place.
	if in != nil {
		s.stats.received.Add(1)
		in.deliver(out.Dup())
	}
	if err := s.prop.Propagate(out, ServiceName, s.cfg.Group); err != nil {
		if errors.Is(err, rendezvous.ErrNoPeers) && in != nil {
			return nil // delivered locally; an isolated peer is not an error
		}
		s.stats.propFailures.Add(1)
		return fmt.Errorf("wire: propagate: %w", err)
	}
	return nil
}
