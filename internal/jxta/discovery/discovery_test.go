package discovery_test

import (
	"sync"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/discovery"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

type testPeer struct {
	name string
	ep   *endpoint.Service
	rdv  *rendezvous.Service
	res  *resolver.Service
	disc *discovery.Service
}

type cluster struct {
	t   *testing.T
	net *netsim.Network
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	n := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(n.Close)
	return &cluster{t: t, net: n}
}

func (c *cluster) addPeer(name string, seed uint64, role rendezvous.Role, seeds ...endpoint.Address) *testPeer {
	c.t.Helper()
	node, err := c.net.AddNode(name)
	if err != nil {
		c.t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		c.t.Fatal(err)
	}
	rdv, err := rendezvous.New(ep, rendezvous.Config{
		Role: role, GroupParam: "net", Seeds: seeds, LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	res, err := resolver.New(ep, rdv, "net")
	if err != nil {
		c.t.Fatal(err)
	}
	disc, err := discovery.New(res)
	if err != nil {
		c.t.Fatal(err)
	}
	p := &testPeer{name: name, ep: ep, rdv: rdv, res: res, disc: disc}
	c.t.Cleanup(func() {
		p.disc.Close()
		p.res.Close()
		p.rdv.Close()
		_ = p.ep.Close()
	})
	return p
}

func pipeAdv(seed uint64, name string) *adv.PipeAdv {
	return &adv.PipeAdv{PipeID: jid.FromSeed(jid.KindPipe, seed), Type: adv.PipePropagate, Name: name}
}

func groupAdv(seed uint64, name string) *adv.PeerGroupAdv {
	return &adv.PeerGroupAdv{GroupID: jid.FromSeed(jid.KindGroup, seed), Name: name}
}

func TestLocalPublishAndQuery(t *testing.T) {
	c := newCluster(t)
	p := c.addPeer("p", 1, rendezvous.RoleEdge)
	if err := p.disc.Publish(pipeAdv(1, "PS.SkiRental"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.disc.Publish(groupAdv(2, "PS.SkiRental"), 0, 0); err != nil {
		t.Fatal(err)
	}

	got := p.disc.GetLocalAdvertisements(adv.Adv, "Name", "PS.SkiRental")
	if len(got) != 1 {
		t.Fatalf("ADV index returned %d records", len(got))
	}
	got = p.disc.GetLocalAdvertisements(adv.Group, "Name", "PS.*")
	if len(got) != 1 {
		t.Fatalf("GROUP index returned %d records", len(got))
	}
	if got := p.disc.GetLocalAdvertisements(adv.Peer, "", ""); len(got) != 0 {
		t.Fatalf("PEER index should be empty, got %d", len(got))
	}
	if got := p.disc.GetLocalAdvertisements(adv.Adv, "Name", "Other*"); len(got) != 0 {
		t.Fatalf("wildcard mismatch returned %d", len(got))
	}
}

func TestFreshestRecordWinsPerID(t *testing.T) {
	clk := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clk }
	advance := func(d time.Duration) { mu.Lock(); clk = clk.Add(d); mu.Unlock() }

	c := newCluster(t)
	node, err := c.net.AddNode("solo")
	if err != nil {
		t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, 1))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ep.Close() })
	res, err := resolver.New(ep, nil, "net")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(res.Close)
	disc, err := discovery.New(res, discovery.WithClock(now))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(disc.Close)

	a := pipeAdv(1, "v1")
	if err := disc.Publish(a, time.Hour, time.Hour); err != nil {
		t.Fatal(err)
	}
	advance(time.Minute)
	b := pipeAdv(1, "v2") // same pipe ID, fresher
	if err := disc.Publish(b, time.Hour, time.Hour); err != nil {
		t.Fatal(err)
	}
	got := disc.GetLocalAdvertisements(adv.Adv, "", "")
	if len(got) != 1 || got[0].Adv.AdvName() != "v2" {
		t.Fatalf("got %d records, name %q", len(got), got[0].Adv.AdvName())
	}
	// Re-publishing the stale record must not clobber the fresh one...
	// (same Published time as v1: strictly older than v2)
	got = disc.GetLocalAdvertisements(adv.Adv, "", "")
	if got[0].Adv.AdvName() != "v2" {
		t.Fatal("stale record replaced fresh one")
	}
	// ...and expiry drops it eventually.
	advance(2 * time.Hour)
	if got := disc.GetLocalAdvertisements(adv.Adv, "", ""); len(got) != 0 {
		t.Fatalf("expired record still present: %d", len(got))
	}
}

func TestRemoteQueryFindsPublisher(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	pub := c.addPeer("pub", 2, rendezvous.RoleEdge, "mem://rdv")
	sub := c.addPeer("sub", 3, rendezvous.RoleEdge, "mem://rdv")
	for _, p := range []*testPeer{pub, sub} {
		if !p.rdv.AwaitConnected(5 * time.Second) {
			t.Fatal("not connected")
		}
	}
	if err := pub.disc.Publish(groupAdv(7, "PS.SkiRental"), 0, 0); err != nil {
		t.Fatal(err)
	}

	type hit struct {
		a    adv.Advertisement
		from jid.ID
	}
	hits := make(chan hit, 16)
	sub.disc.AddListener(func(a adv.Advertisement, from jid.ID) {
		hits <- hit{a, from}
	})
	if err := sub.disc.GetRemoteAdvertisements(adv.Group, "Name", "PS.*", 10); err != nil {
		t.Fatal(err)
	}
	select {
	case h := <-hits:
		if h.a.AdvName() != "PS.SkiRental" {
			t.Fatalf("found %q", h.a.AdvName())
		}
		if h.from != pub.ep.PeerID() {
			t.Fatalf("responder %v, want %v", h.from, pub.ep.PeerID())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("discovery response never arrived")
	}
	// The response also landed in the local cache.
	got := sub.disc.GetLocalAdvertisements(adv.Group, "Name", "PS.SkiRental")
	if len(got) != 1 {
		t.Fatalf("local cache has %d records", len(got))
	}
	if st := sub.disc.Stats(); st.QueriesSent != 1 || st.RecordsReceived != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st := pub.disc.Stats(); st.QueriesServed == 0 || st.ResponsesSent == 0 {
		t.Fatalf("publisher stats %+v", st)
	}
}

func TestRemotePublishPushesUnsolicited(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	pub := c.addPeer("pub", 2, rendezvous.RoleEdge, "mem://rdv")
	sub := c.addPeer("sub", 3, rendezvous.RoleEdge, "mem://rdv")
	for _, p := range []*testPeer{pub, sub} {
		if !p.rdv.AwaitConnected(5 * time.Second) {
			t.Fatal("not connected")
		}
	}
	heard := make(chan adv.Advertisement, 1)
	sub.disc.AddListener(func(a adv.Advertisement, _ jid.ID) { heard <- a })
	if err := pub.disc.RemotePublish(pipeAdv(9, "PS.Chat"), time.Hour); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-heard:
		if a.AdvName() != "PS.Chat" {
			t.Fatalf("heard %q", a.AdvName())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("remote publish never arrived")
	}
}

func TestThresholdLimitsResponse(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	pub := c.addPeer("pub", 2, rendezvous.RoleEdge, "mem://rdv")
	sub := c.addPeer("sub", 3, rendezvous.RoleEdge, "mem://rdv")
	for _, p := range []*testPeer{pub, sub} {
		if !p.rdv.AwaitConnected(5 * time.Second) {
			t.Fatal("not connected")
		}
	}
	for i := 0; i < 10; i++ {
		if err := pub.disc.Publish(pipeAdv(uint64(100+i), "bulk"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var got int
	sub.disc.AddListener(func(adv.Advertisement, jid.ID) {
		mu.Lock()
		got++
		mu.Unlock()
	})
	if err := sub.disc.GetRemoteAdvertisements(adv.Adv, "Name", "bulk", 3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	c.net.WaitQuiesce(5 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if got != 3 {
		t.Fatalf("received %d records, want threshold 3", got)
	}
}

func TestFlush(t *testing.T) {
	c := newCluster(t)
	p := c.addPeer("p", 1, rendezvous.RoleEdge)
	if err := p.disc.Publish(pipeAdv(1, "a"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.disc.Publish(pipeAdv(2, "b"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.disc.Publish(groupAdv(3, "g"), 0, 0); err != nil {
		t.Fatal(err)
	}
	p.disc.FlushID(adv.Adv, jid.FromSeed(jid.KindPipe, 1))
	if got := p.disc.GetLocalAdvertisements(adv.Adv, "", ""); len(got) != 1 {
		t.Fatalf("after FlushID: %d", len(got))
	}
	p.disc.Flush(adv.Adv)
	if got := p.disc.GetLocalAdvertisements(adv.Adv, "", ""); len(got) != 0 {
		t.Fatalf("after Flush: %d", len(got))
	}
	// GROUP index untouched.
	if got := p.disc.GetLocalAdvertisements(adv.Group, "", ""); len(got) != 1 {
		t.Fatalf("group index: %d", len(got))
	}
}

func TestDirectedRemoteQuery(t *testing.T) {
	c := newCluster(t)
	a := c.addPeer("a", 1, rendezvous.RoleEdge)
	b := c.addPeer("b", 2, rendezvous.RoleEdge)
	if err := b.disc.Publish(pipeAdv(5, "direct"), 0, 0); err != nil {
		t.Fatal(err)
	}
	heard := make(chan adv.Advertisement, 1)
	a.disc.AddListener(func(x adv.Advertisement, _ jid.ID) { heard <- x })
	if err := a.disc.GetRemoteAdvertisementsFrom("mem://b", adv.Adv, "Name", "direct", 0); err != nil {
		t.Fatal(err)
	}
	select {
	case x := <-heard:
		if x.AdvName() != "direct" {
			t.Fatalf("got %q", x.AdvName())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no response to directed query")
	}
}

func TestListenerRemoval(t *testing.T) {
	c := newCluster(t)
	a := c.addPeer("a", 1, rendezvous.RoleEdge)
	b := c.addPeer("b", 2, rendezvous.RoleEdge)
	if err := b.disc.Publish(pipeAdv(5, "x"), 0, 0); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := 0
	tok := a.disc.AddListener(func(adv.Advertisement, jid.ID) {
		mu.Lock()
		calls++
		mu.Unlock()
	})
	a.disc.RemoveListener(tok)
	if err := a.disc.GetRemoteAdvertisementsFrom("mem://b", adv.Adv, "", "", 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if calls != 0 {
		t.Fatal("removed listener still fired")
	}
}

func TestClosedServiceRefusesWork(t *testing.T) {
	c := newCluster(t)
	p := c.addPeer("p", 1, rendezvous.RoleEdge)
	p.disc.Close()
	if err := p.disc.Publish(pipeAdv(1, "x"), 0, 0); err == nil {
		t.Fatal("publish after close succeeded")
	}
	if err := p.disc.GetRemoteAdvertisements(adv.Adv, "", "", 0); err == nil {
		t.Fatal("query after close succeeded")
	}
	p.disc.Close() // idempotent
}
