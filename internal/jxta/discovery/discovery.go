// Package discovery implements the JXTA Peer Discovery Protocol (PDP).
//
// Discovery lets peers find any kind of published advertisement — peers,
// peer groups, pipes, services, routes. Each peer keeps a local
// advertisement cache with per-record ages; queries search the local
// cache, remote queries propagate through the rendezvous mesh and
// matching peers respond with their records (carrying a remaining
// expiration so stale information ages out of the network). Without this
// protocol a peer remains alone unless it knows its contacts in advance.
package discovery

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
)

// HandlerName is the resolver handler name of the discovery protocol.
const HandlerName = "jxta.discovery"

// DefaultThreshold is the maximum number of advertisements a peer
// returns per query (the paper's NUMBER_OF_ADV_PER_PEER).
const DefaultThreshold = 20

// MaxCachePerKind bounds each discovery index; oldest records are
// evicted first.
const MaxCachePerKind = 4096

// ErrClosed is returned after Close.
var ErrClosed = errors.New("discovery: closed")

// Listener observes advertisements as they enter the local cache from
// remote peers, mirroring JXTA's DiscoveryListener. from is the
// responding peer.
type Listener func(a adv.Advertisement, from jid.ID)

// Service is one peer's discovery service for one group.
type Service struct {
	res *resolver.Service
	now func() time.Time

	mu        sync.Mutex
	cache     map[adv.Kind]map[jid.ID]adv.Record
	listeners map[int]Listener
	nextLis   int
	stats     Stats
	closed    bool
}

// Stats counts discovery activity.
type Stats struct {
	QueriesSent     int64
	QueriesServed   int64
	ResponsesSent   int64
	RecordsReceived int64
	RecordsInCache  int
}

// Option customises the service.
type Option func(*Service)

// WithClock substitutes the time source (tests).
func WithClock(now func() time.Time) Option {
	return func(s *Service) { s.now = now }
}

// New creates the discovery service and registers its resolver handler.
func New(res *resolver.Service, opts ...Option) (*Service, error) {
	s := &Service{
		res:       res,
		now:       time.Now,
		cache:     make(map[adv.Kind]map[jid.ID]adv.Record),
		listeners: make(map[int]Listener),
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := res.RegisterHandler(HandlerName, (*handler)(s)); err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	return s, nil
}

// Close unregisters the resolver handler.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.res.UnregisterHandler(HandlerName)
}

// AddListener registers a listener and returns a token for removal.
func (s *Service) AddListener(l Listener) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextLis
	s.nextLis++
	s.listeners[id] = l
	return id
}

// RemoveListener drops the listener with the given token.
func (s *Service) RemoveListener(token int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, token)
}

// Publish stores the advertisement in the local cache, where local and
// remote queries can find it. Zero durations select the defaults.
func (s *Service) Publish(a adv.Advertisement, lifetime, expiration time.Duration) error {
	if lifetime == 0 {
		lifetime = adv.DefaultLifetime
	}
	if expiration == 0 {
		expiration = adv.DefaultExpiration
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.insertLocked(adv.Record{
		Adv:        a,
		Published:  s.now(),
		Lifetime:   lifetime,
		Expiration: expiration,
	})
	return nil
}

// RemotePublish pushes the advertisement to the group through the
// rendezvous mesh, unsolicited, so interested peers learn it without
// querying (JXTA's discovery.remotePublish). The local cache is updated
// too.
func (s *Service) RemotePublish(a adv.Advertisement, expiration time.Duration) error {
	if err := s.Publish(a, 0, expiration); err != nil {
		return err
	}
	if expiration == 0 {
		expiration = adv.DefaultExpiration
	}
	payload, err := encodeResponse([]adv.Record{{
		Adv:        a,
		Published:  s.now(),
		Lifetime:   expiration,
		Expiration: expiration,
	}}, s.now())
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.ResponsesSent++
	s.mu.Unlock()
	if err := s.res.PropagateResponse(HandlerName, 0, payload); err != nil {
		return fmt.Errorf("discovery: remote publish: %w", err)
	}
	return nil
}

// GetLocalAdvertisements searches the local cache. attr may be "" (match
// all), "Name" or "ID"; value supports a trailing '*' wildcard.
func (s *Service) GetLocalAdvertisements(kind adv.Kind, attr, value string) []adv.Record {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	var out []adv.Record
	for _, rec := range s.cache[kind] {
		if adv.Match(rec.Adv, attr, value) {
			out = append(out, rec)
		}
	}
	return out
}

// GetRemoteAdvertisements propagates a discovery query through the
// rendezvous mesh. Responses arrive asynchronously: they are inserted
// into the local cache and reported to listeners. threshold limits how
// many records each responding peer returns (0 means DefaultThreshold).
func (s *Service) GetRemoteAdvertisements(kind adv.Kind, attr, value string, threshold int) error {
	payload, err := encodeQuery(kind, attr, value, threshold)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.stats.QueriesSent++
	s.mu.Unlock()
	if _, err := s.res.PropagateQuery(HandlerName, payload); err != nil {
		return fmt.Errorf("discovery: remote query: %w", err)
	}
	return nil
}

// GetRemoteAdvertisementsFrom sends the discovery query to one known
// peer instead of the whole group.
func (s *Service) GetRemoteAdvertisementsFrom(to endpoint.Address, kind adv.Kind, attr, value string, threshold int) error {
	payload, err := encodeQuery(kind, attr, value, threshold)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.stats.QueriesSent++
	s.mu.Unlock()
	if _, err := s.res.SendQuery(to, HandlerName, payload); err != nil {
		return fmt.Errorf("discovery: directed query: %w", err)
	}
	return nil
}

// Flush drops every cached advertisement of the given kind (JXTA's
// flushAdvertisements(null, kind)).
func (s *Service) Flush(kind adv.Kind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cache, kind)
}

// FlushID drops one advertisement by resource ID.
func (s *Service) FlushID(kind adv.Kind, id jid.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.cache[kind]; ok {
		delete(m, id)
	}
}

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.now())
	st := s.stats
	for _, m := range s.cache {
		st.RecordsInCache += len(m)
	}
	return st
}

// insertLocked adds a record, keeping the freshest per resource ID and
// bounding the index size.
func (s *Service) insertLocked(rec adv.Record) {
	kind := rec.Adv.Kind()
	m, ok := s.cache[kind]
	if !ok {
		m = make(map[jid.ID]adv.Record)
		s.cache[kind] = m
	}
	id := rec.Adv.AdvID()
	if old, ok := m[id]; ok && old.Fresher(rec) {
		return
	}
	if len(m) >= MaxCachePerKind {
		s.evictOldestLocked(m)
	}
	m[id] = rec
}

func (s *Service) evictOldestLocked(m map[jid.ID]adv.Record) {
	var oldest jid.ID
	var oldestAt time.Time
	first := true
	for id, rec := range m {
		if first || rec.Published.Before(oldestAt) {
			oldest, oldestAt, first = id, rec.Published, false
		}
	}
	if !first {
		delete(m, oldest)
	}
}

func (s *Service) expireLocked(now time.Time) {
	for _, m := range s.cache {
		for id, rec := range m {
			if rec.Expired(now) {
				delete(m, id)
			}
		}
	}
}

// handler adapts Service to resolver.Handler without exporting the
// methods on the main type.
type handler Service

var _ resolver.Handler = (*handler)(nil)

// ProcessQuery serves a remote discovery query from the local cache.
func (h *handler) ProcessQuery(q resolver.Query, _ endpoint.Address) ([]byte, error) {
	s := (*Service)(h)
	query, err := decodeQuery(q.Payload)
	if err != nil {
		return nil, err
	}
	threshold := query.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	now := s.now()
	s.mu.Lock()
	s.stats.QueriesServed++
	s.expireLocked(now)
	var match []adv.Record
	for _, rec := range s.cache[adv.Kind(query.Kind)] {
		if adv.Match(rec.Adv, query.Attr, query.Value) {
			match = append(match, rec)
			if len(match) >= threshold {
				break
			}
		}
	}
	if len(match) > 0 {
		s.stats.ResponsesSent++
	}
	s.mu.Unlock()
	if len(match) == 0 {
		return nil, nil // discovery answers only positively
	}
	return encodeResponse(match, now)
}

// ProcessResponse ingests advertisements a remote peer sent us.
func (h *handler) ProcessResponse(r resolver.Response, _ endpoint.Address) {
	s := (*Service)(h)
	items, err := decodeResponse(r.Payload)
	if err != nil {
		return
	}
	now := s.now()
	var fire []adv.Advertisement
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	for _, it := range items {
		if it.expiration <= 0 {
			continue // already stale
		}
		s.stats.RecordsReceived++
		s.insertLocked(adv.Record{
			Adv:       it.adv,
			Published: now,
			// A record learned remotely lives only as long as the
			// remaining expiration its publisher granted.
			Lifetime:   it.expiration,
			Expiration: it.expiration,
		})
		fire = append(fire, it.adv)
	}
	listeners := make([]Listener, 0, len(s.listeners))
	for _, l := range s.listeners {
		listeners = append(listeners, l)
	}
	s.mu.Unlock()
	for _, a := range fire {
		for _, l := range listeners {
			l(a, r.Src)
		}
	}
}

// --- wire encoding ---

type queryDoc struct {
	XMLName   xml.Name `xml:"DiscoveryQuery"`
	Kind      int      `xml:"Kind"`
	Attr      string   `xml:"Attr,omitempty"`
	Value     string   `xml:"Value,omitempty"`
	Threshold int      `xml:"Threshold"`
}

type responseDoc struct {
	XMLName xml.Name      `xml:"DiscoveryResponse"`
	Items   []responseRec `xml:"Item"`
}

type responseRec struct {
	ExpirationMS int64  `xml:"expiration,attr"`
	Doc          string `xml:",chardata"` // the advertisement XML, escaped
}

type responseItem struct {
	adv        adv.Advertisement
	expiration time.Duration
}

func encodeQuery(kind adv.Kind, attr, value string, threshold int) ([]byte, error) {
	out, err := xml.Marshal(queryDoc{Kind: int(kind), Attr: attr, Value: value, Threshold: threshold})
	if err != nil {
		return nil, fmt.Errorf("discovery: encode query: %w", err)
	}
	return out, nil
}

func decodeQuery(payload []byte) (queryDoc, error) {
	var q queryDoc
	if err := xml.Unmarshal(payload, &q); err != nil {
		return q, fmt.Errorf("discovery: decode query: %w", err)
	}
	return q, nil
}

func encodeResponse(recs []adv.Record, now time.Time) ([]byte, error) {
	doc := responseDoc{Items: make([]responseRec, 0, len(recs))}
	for _, rec := range recs {
		raw, err := adv.Marshal(rec.Adv)
		if err != nil {
			return nil, err
		}
		doc.Items = append(doc.Items, responseRec{
			ExpirationMS: rec.RemainingExpiration(now).Milliseconds(),
			Doc:          string(raw),
		})
	}
	out, err := xml.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("discovery: encode response: %w", err)
	}
	return out, nil
}

func decodeResponse(payload []byte) ([]responseItem, error) {
	var doc responseDoc
	if err := xml.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("discovery: decode response: %w", err)
	}
	items := make([]responseItem, 0, len(doc.Items))
	for _, it := range doc.Items {
		a, err := adv.Unmarshal([]byte(it.Doc))
		if err != nil {
			continue // skip unknown or corrupt advertisements
		}
		items = append(items, responseItem{
			adv:        a,
			expiration: time.Duration(it.ExpirationMS) * time.Millisecond,
		})
	}
	return items, nil
}
