// Package membership implements the JXTA Peer Membership Protocol (PMP).
//
// Before sharing a group's resources, a peer obtains the group's
// membership requirements (apply), submits credentials (join), and may
// later resign. The group's authority — typically its creator — validates
// credentials with a pluggable Authenticator and tracks the member
// roster. Two authenticators ship here: "none" (everybody may join, the
// default for open event groups like the paper's per-type groups) and
// "passwd" (a shared secret).
package membership

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
)

// HandlerName is the resolver handler name of the membership protocol.
const HandlerName = "jxta.pmp"

// Errors.
var (
	ErrDenied   = errors.New("membership: credential rejected")
	ErrTimeout  = errors.New("membership: request timed out")
	ErrNotAuth  = errors.New("membership: peer is not a group authority")
	ErrResigned = errors.New("membership: not a member")
)

// Authenticator validates join credentials for one group.
type Authenticator interface {
	// Name identifies the authentication scheme ("none", "passwd", ...).
	Name() string
	// Challenge describes the credential requirements to applicants.
	Challenge() string
	// Authenticate accepts or rejects a credential.
	Authenticate(credential string) error
}

// NoneAuthenticator admits everyone.
type NoneAuthenticator struct{}

// Name implements Authenticator.
func (NoneAuthenticator) Name() string { return "none" }

// Challenge implements Authenticator.
func (NoneAuthenticator) Challenge() string { return "open group: no credential required" }

// Authenticate implements Authenticator.
func (NoneAuthenticator) Authenticate(string) error { return nil }

// PasswdAuthenticator admits peers presenting a shared secret.
type PasswdAuthenticator struct {
	// Password is the required credential.
	Password string
}

// Name implements Authenticator.
func (PasswdAuthenticator) Name() string { return "passwd" }

// Challenge implements Authenticator.
func (PasswdAuthenticator) Challenge() string { return "password required" }

// Authenticate implements Authenticator.
func (a PasswdAuthenticator) Authenticate(credential string) error {
	if credential != a.Password {
		return ErrDenied
	}
	return nil
}

var (
	_ Authenticator = NoneAuthenticator{}
	_ Authenticator = PasswdAuthenticator{}
)

// Service is one peer's membership protocol instance for one group. A
// peer with an Authenticator acts as the group authority; any peer can be
// a client.
type Service struct {
	res  *resolver.Service
	auth Authenticator // nil: not an authority

	mu      sync.Mutex
	members map[jid.ID]struct{} // roster (authority side)
	pending map[uint64]chan wireReply
	closed  bool
}

// New creates the membership service. auth may be nil for pure clients.
func New(res *resolver.Service, auth Authenticator) (*Service, error) {
	s := &Service{
		res:     res,
		auth:    auth,
		members: make(map[jid.ID]struct{}),
		pending: make(map[uint64]chan wireReply),
	}
	if err := res.RegisterHandler(HandlerName, (*handler)(s)); err != nil {
		return nil, fmt.Errorf("membership: %w", err)
	}
	return s, nil
}

// Close unregisters the handler and fails all pending requests.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for qid, ch := range s.pending {
		close(ch)
		delete(s.pending, qid)
	}
	s.mu.Unlock()
	s.res.UnregisterHandler(HandlerName)
}

// Requirements holds what an applicant learns from apply.
type Requirements struct {
	// Scheme is the authenticator name ("none", "passwd", ...).
	Scheme string
	// Challenge is the human-readable credential requirement.
	Challenge string
}

// Apply asks the authority at the given address for the group's
// membership requirements.
func (s *Service) Apply(authority endpoint.Address, timeout time.Duration) (Requirements, error) {
	reply, err := s.roundTrip(authority, wireRequest{Op: "apply"}, timeout)
	if err != nil {
		return Requirements{}, err
	}
	if reply.Err != "" {
		return Requirements{}, fmt.Errorf("membership: apply: %s", reply.Err)
	}
	return Requirements{Scheme: reply.Scheme, Challenge: reply.Challenge}, nil
}

// Join submits a credential to the authority. On success the peer is on
// the group roster until it resigns.
func (s *Service) Join(authority endpoint.Address, credential string, timeout time.Duration) error {
	reply, err := s.roundTrip(authority, wireRequest{Op: "join", Credential: credential}, timeout)
	if err != nil {
		return err
	}
	if reply.Err != "" {
		return fmt.Errorf("%w: %s", ErrDenied, reply.Err)
	}
	return nil
}

// Resign removes this peer from the authority's roster.
func (s *Service) Resign(authority endpoint.Address, timeout time.Duration) error {
	reply, err := s.roundTrip(authority, wireRequest{Op: "resign"}, timeout)
	if err != nil {
		return err
	}
	if reply.Err != "" {
		return fmt.Errorf("membership: resign: %s", reply.Err)
	}
	return nil
}

// Members returns the roster (authority side).
func (s *Service) Members() []jid.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]jid.ID, 0, len(s.members))
	for id := range s.members {
		out = append(out, id)
	}
	return out
}

// IsMember reports whether the peer is on the roster (authority side).
func (s *Service) IsMember(id jid.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.members[id]
	return ok
}

func (s *Service) roundTrip(to endpoint.Address, req wireRequest, timeout time.Duration) (wireReply, error) {
	payload, err := xml.Marshal(req)
	if err != nil {
		return wireReply{}, fmt.Errorf("membership: encode: %w", err)
	}
	ch := make(chan wireReply, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return wireReply{}, errors.New("membership: closed")
	}
	s.mu.Unlock()
	qid, err := s.res.SendQuery(to, HandlerName, payload)
	if err != nil {
		return wireReply{}, fmt.Errorf("membership: query: %w", err)
	}
	s.mu.Lock()
	s.pending[qid] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, qid)
		s.mu.Unlock()
	}()
	select {
	case reply, ok := <-ch:
		if !ok {
			return wireReply{}, ErrTimeout
		}
		return reply, nil
	case <-time.After(timeout):
		return wireReply{}, ErrTimeout
	}
}

// --- wire formats ---

type wireRequest struct {
	XMLName    xml.Name `xml:"MembershipRequest"`
	Op         string   `xml:"Op"`
	Credential string   `xml:"Credential,omitempty"`
}

type wireReply struct {
	XMLName   xml.Name `xml:"MembershipReply"`
	Scheme    string   `xml:"Scheme,omitempty"`
	Challenge string   `xml:"Challenge,omitempty"`
	Err       string   `xml:"Err,omitempty"`
}

// --- resolver handler ---

type handler Service

var _ resolver.Handler = (*handler)(nil)

// ProcessQuery serves apply/join/resign requests (authority side).
func (h *handler) ProcessQuery(q resolver.Query, _ endpoint.Address) ([]byte, error) {
	s := (*Service)(h)
	var req wireRequest
	if err := xml.Unmarshal(q.Payload, &req); err != nil {
		return nil, err
	}
	if s.auth == nil {
		return xml.Marshal(wireReply{Err: ErrNotAuth.Error()})
	}
	switch req.Op {
	case "apply":
		return xml.Marshal(wireReply{Scheme: s.auth.Name(), Challenge: s.auth.Challenge()})
	case "join":
		if err := s.auth.Authenticate(req.Credential); err != nil {
			return xml.Marshal(wireReply{Err: err.Error()})
		}
		s.mu.Lock()
		s.members[q.Src] = struct{}{}
		s.mu.Unlock()
		return xml.Marshal(wireReply{Scheme: s.auth.Name()})
	case "resign":
		s.mu.Lock()
		_, was := s.members[q.Src]
		delete(s.members, q.Src)
		s.mu.Unlock()
		if !was {
			return xml.Marshal(wireReply{Err: ErrResigned.Error()})
		}
		return xml.Marshal(wireReply{})
	default:
		return xml.Marshal(wireReply{Err: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

// ProcessResponse routes replies to waiting round trips (client side).
func (h *handler) ProcessResponse(r resolver.Response, _ endpoint.Address) {
	s := (*Service)(h)
	var reply wireReply
	if err := xml.Unmarshal(r.Payload, &reply); err != nil {
		return
	}
	s.mu.Lock()
	ch, ok := s.pending[r.QueryID]
	s.mu.Unlock()
	if ok {
		select {
		case ch <- reply:
		default:
		}
	}
}
