package membership_test

import (
	"errors"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/membership"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

type testPeer struct {
	ep  *endpoint.Service
	res *resolver.Service
	pmp *membership.Service
}

func newPair(t *testing.T, auth membership.Authenticator) (authority, client *testPeer) {
	t.Helper()
	net := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(net.Close)
	mk := func(name string, seed uint64, a membership.Authenticator) *testPeer {
		node, err := net.AddNode(name)
		if err != nil {
			t.Fatal(err)
		}
		ep := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
		if err := ep.AddTransport(memnet.New(node)); err != nil {
			t.Fatal(err)
		}
		res, err := resolver.New(ep, nil, "g1")
		if err != nil {
			t.Fatal(err)
		}
		pmp, err := membership.New(res, a)
		if err != nil {
			t.Fatal(err)
		}
		p := &testPeer{ep: ep, res: res, pmp: pmp}
		t.Cleanup(func() {
			p.pmp.Close()
			p.res.Close()
			_ = p.ep.Close()
		})
		return p
	}
	return mk("authority", 1, auth), mk("client", 2, nil)
}

func TestApplyJoinResignOpenGroup(t *testing.T) {
	authority, client := newPair(t, membership.NoneAuthenticator{})
	req, err := client.pmp.Apply("mem://authority", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if req.Scheme != "none" || req.Challenge == "" {
		t.Fatalf("requirements %+v", req)
	}
	if err := client.pmp.Join("mem://authority", "", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if !authority.pmp.IsMember(client.ep.PeerID()) {
		t.Fatal("client not on roster after join")
	}
	if got := authority.pmp.Members(); len(got) != 1 {
		t.Fatalf("roster size %d", len(got))
	}
	if err := client.pmp.Resign("mem://authority", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if authority.pmp.IsMember(client.ep.PeerID()) {
		t.Fatal("client still on roster after resign")
	}
}

func TestPasswordAuthenticator(t *testing.T) {
	authority, client := newPair(t, membership.PasswdAuthenticator{Password: "sesame"})
	req, err := client.pmp.Apply("mem://authority", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if req.Scheme != "passwd" {
		t.Fatalf("scheme %q", req.Scheme)
	}
	if err := client.pmp.Join("mem://authority", "wrong", 5*time.Second); !errors.Is(err, membership.ErrDenied) {
		t.Fatalf("wrong password: %v", err)
	}
	if authority.pmp.IsMember(client.ep.PeerID()) {
		t.Fatal("denied client on roster")
	}
	if err := client.pmp.Join("mem://authority", "sesame", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if !authority.pmp.IsMember(client.ep.PeerID()) {
		t.Fatal("client not on roster")
	}
}

func TestResignWithoutJoin(t *testing.T) {
	_, client := newPair(t, membership.NoneAuthenticator{})
	if err := client.pmp.Resign("mem://authority", 5*time.Second); err == nil {
		t.Fatal("resign without membership succeeded")
	}
}

func TestNonAuthorityRejectsEverything(t *testing.T) {
	// Both peers are clients: asking a non-authority must error, not hang.
	_, client := newPair(t, nil)
	if _, err := client.pmp.Apply("mem://authority", 2*time.Second); err == nil {
		t.Fatal("apply to non-authority succeeded")
	}
}

func TestTimeoutAgainstDeadPeer(t *testing.T) {
	_, client := newPair(t, membership.NoneAuthenticator{})
	// mem://ghost does not exist: SendQuery fails fast.
	if _, err := client.pmp.Apply("mem://ghost", 200*time.Millisecond); err == nil {
		t.Fatal("apply to ghost succeeded")
	}
}

func TestAuthenticatorContracts(t *testing.T) {
	var a membership.Authenticator = membership.NoneAuthenticator{}
	if err := a.Authenticate("anything"); err != nil {
		t.Fatal(err)
	}
	p := membership.PasswdAuthenticator{Password: "x"}
	if err := p.Authenticate("x"); err != nil {
		t.Fatal(err)
	}
	if err := p.Authenticate(""); !errors.Is(err, membership.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}
