// Package resolver implements the JXTA Peer Resolver Protocol (PRP).
//
// The resolver sits just above the transport: services register named
// handlers with it, and the resolver routes each query or response
// message to the right handler — the more handlers are registered, the
// more protocols a peer can take part in. Queries can be sent directly
// to a known peer or propagated through the rendezvous mesh; responses
// travel straight back to the querier's address.
//
// The Peer Discovery Protocol and the Peer Information Protocol are
// resolver clients.
package resolver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
)

// ServiceName is the endpoint service name of the resolver.
const ServiceName = "jxta.resolver"

// Message element names, namespace "prp".
const (
	elemNS      = "prp"
	elemKind    = "Kind"
	elemHandler = "Handler"
	elemQID     = "QID"
	elemPayload = "Payload"
	elemSrcAddr = "SrcAddr"
)

const (
	kindQuery    = "query"
	kindResponse = "response"
)

// Errors.
var (
	ErrDupHandler     = errors.New("resolver: handler already registered")
	ErrUnknownHandler = errors.New("resolver: no such handler")
	ErrNoPropagator   = errors.New("resolver: no propagator configured")
)

// Query is a request dispatched to a named handler on a remote peer.
type Query struct {
	// Handler names the resolver handler the query is for.
	Handler string
	// ID correlates responses with the query. Unique per issuing peer.
	ID uint64
	// Src is the querying peer.
	Src jid.ID
	// Payload is the handler-specific request body.
	Payload []byte
}

// Response answers a Query.
type Response struct {
	// Handler names the resolver handler the response is for.
	Handler string
	// QueryID echoes the query's ID.
	QueryID uint64
	// Src is the responding peer.
	Src jid.ID
	// Payload is the handler-specific response body.
	Payload []byte
}

// Handler processes queries and responses for one handler name.
// Implementations must be safe for concurrent use.
type Handler interface {
	// ProcessQuery handles a query. A non-nil response payload is sent
	// back to the querier; nil means no response (e.g. nothing matched
	// and the protocol answers only positively, like discovery).
	ProcessQuery(q Query, from endpoint.Address) ([]byte, error)
	// ProcessResponse handles a response to a query this peer issued.
	ProcessResponse(r Response, from endpoint.Address)
}

// Propagator fans a message out to the group; the rendezvous service
// implements it.
type Propagator interface {
	Propagate(msg *message.Message, dsvc, dparam string) error
}

// Endpoint is the endpoint capability the resolver needs.
type Endpoint interface {
	endpoint.Sender
	RegisterHandler(svc, param string, h endpoint.Handler) error
	UnregisterHandler(svc, param string)
}

// Service is one peer's resolver instance for one group.
type Service struct {
	ep     Endpoint
	prop   Propagator
	group  string
	nextID atomic.Uint64

	mu       sync.RWMutex
	handlers map[string]Handler
}

// New creates a resolver bound to the group-scoped endpoint service.
// prop may be nil for peers that never propagate (pure point-to-point).
func New(ep Endpoint, prop Propagator, group string) (*Service, error) {
	s := &Service{ep: ep, prop: prop, group: group, handlers: make(map[string]Handler)}
	if err := ep.RegisterHandler(ServiceName, group, s.handle); err != nil {
		return nil, fmt.Errorf("resolver: register endpoint handler: %w", err)
	}
	return s, nil
}

// Close detaches the resolver from the endpoint.
func (s *Service) Close() {
	s.ep.UnregisterHandler(ServiceName, s.group)
}

// RegisterHandler binds a named handler. Registering the same name twice
// is an error (JXTA semantics: one service owns one handler name).
func (s *Service) RegisterHandler(name string, h Handler) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.handlers[name]; ok {
		return fmt.Errorf("%w: %q", ErrDupHandler, name)
	}
	s.handlers[name] = h
	return nil
}

// UnregisterHandler removes a named handler.
func (s *Service) UnregisterHandler(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.handlers, name)
}

// SendQuery sends a query directly to the peer at the given address and
// returns the query ID for response correlation.
func (s *Service) SendQuery(to endpoint.Address, handler string, payload []byte) (uint64, error) {
	qid := s.nextID.Add(1)
	msg := s.encodeQuery(handler, qid, payload)
	if err := s.ep.Send(to, ServiceName, s.group, msg); err != nil {
		return 0, fmt.Errorf("resolver: send query: %w", err)
	}
	return qid, nil
}

// PropagateQuery fans a query out through the rendezvous mesh and returns
// the query ID. Responses arrive asynchronously from any peer that can
// answer.
func (s *Service) PropagateQuery(handler string, payload []byte) (uint64, error) {
	if s.prop == nil {
		return 0, ErrNoPropagator
	}
	qid := s.nextID.Add(1)
	msg := s.encodeQuery(handler, qid, payload)
	if err := s.prop.Propagate(msg, ServiceName, s.group); err != nil {
		return 0, fmt.Errorf("resolver: propagate query: %w", err)
	}
	return qid, nil
}

// PropagateResponse fans an unsolicited response out through the
// rendezvous mesh. Discovery's remotePublish uses it to push fresh
// advertisements to peers that never asked (query ID zero by convention).
func (s *Service) PropagateResponse(handler string, queryID uint64, payload []byte) error {
	if s.prop == nil {
		return ErrNoPropagator
	}
	msg := s.encodeResponse(handler, queryID, payload)
	if err := s.prop.Propagate(msg, ServiceName, s.group); err != nil {
		return fmt.Errorf("resolver: propagate response: %w", err)
	}
	return nil
}

// SendResponse sends a late or additional response for a query this peer
// received earlier (handlers that answer immediately just return a
// payload from ProcessQuery instead).
func (s *Service) SendResponse(to endpoint.Address, handler string, queryID uint64, payload []byte) error {
	msg := s.encodeResponse(handler, queryID, payload)
	if err := s.ep.Send(to, ServiceName, s.group, msg); err != nil {
		return fmt.Errorf("resolver: send response: %w", err)
	}
	return nil
}

func (s *Service) encodeQuery(handler string, qid uint64, payload []byte) *message.Message {
	msg := message.New(s.ep.PeerID())
	msg.AddString(elemNS, elemKind, kindQuery)
	msg.AddString(elemNS, elemHandler, handler)
	msg.AddBytes(elemNS, elemQID, encodeQID(qid))
	msg.AddBytes(elemNS, elemPayload, payload)
	// Responses must reach the querier even when the query travelled
	// through the rendezvous mesh, so the query carries its own return
	// address.
	if addrs := s.ep.LocalAddresses(); len(addrs) > 0 {
		msg.AddString(elemNS, elemSrcAddr, string(addrs[0]))
	}
	return msg
}

func (s *Service) encodeResponse(handler string, qid uint64, payload []byte) *message.Message {
	msg := message.New(s.ep.PeerID())
	msg.AddString(elemNS, elemKind, kindResponse)
	msg.AddString(elemNS, elemHandler, handler)
	msg.AddBytes(elemNS, elemQID, encodeQID(qid))
	msg.AddBytes(elemNS, elemPayload, payload)
	return msg
}

// handle demultiplexes resolver traffic to registered handlers.
func (s *Service) handle(msg *message.Message, from endpoint.Address) {
	name := msg.Text(elemNS, elemHandler)
	s.mu.RLock()
	h, ok := s.handlers[name]
	s.mu.RUnlock()
	if !ok {
		return // no handler: silently dropped, exactly like JXTA
	}
	qid := decodeQID(msg.Bytes(elemNS, elemQID))
	payload := msg.Bytes(elemNS, elemPayload)
	switch msg.Text(elemNS, elemKind) {
	case kindQuery:
		// A propagated query can echo back to its issuer; never
		// self-answer.
		if msg.Src == s.ep.PeerID() {
			return
		}
		// Respond to the querier's advertised address: `from` may be an
		// intermediate rendezvous when the query was propagated.
		respondTo := endpoint.Address(msg.Text(elemNS, elemSrcAddr))
		if respondTo == "" {
			respondTo = from
		}
		resp, err := h.ProcessQuery(Query{Handler: name, ID: qid, Src: msg.Src, Payload: payload}, respondTo)
		if err != nil || resp == nil {
			return
		}
		// Answer in the group the query was addressed to: a wildcard
		// service (group "") answers queries from many groups, and the
		// querier only listens on its own group parameter.
		respParam := s.group
		if _, inParam, derr := endpoint.Destination(msg); derr == nil && inParam != "" {
			respParam = inParam
		}
		out := s.encodeResponse(name, qid, resp)
		_ = s.ep.Send(respondTo, ServiceName, respParam, out)
	case kindResponse:
		h.ProcessResponse(Response{Handler: name, QueryID: qid, Src: msg.Src, Payload: payload}, from)
	}
}

func encodeQID(qid uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], qid)
	return b[:]
}

func decodeQID(b []byte) uint64 {
	if len(b) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// HandlerFunc adapts plain functions to the Handler interface.
type HandlerFunc struct {
	// OnQuery backs ProcessQuery; nil means "never answers".
	OnQuery func(q Query, from endpoint.Address) ([]byte, error)
	// OnResponse backs ProcessResponse; nil ignores responses.
	OnResponse func(r Response, from endpoint.Address)
}

// ProcessQuery implements Handler.
func (f HandlerFunc) ProcessQuery(q Query, from endpoint.Address) ([]byte, error) {
	if f.OnQuery == nil {
		return nil, nil
	}
	return f.OnQuery(q, from)
}

// ProcessResponse implements Handler.
func (f HandlerFunc) ProcessResponse(r Response, from endpoint.Address) {
	if f.OnResponse != nil {
		f.OnResponse(r, from)
	}
}

var _ Handler = HandlerFunc{}
