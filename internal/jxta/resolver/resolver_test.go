package resolver_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

type testPeer struct {
	ep  *endpoint.Service
	rdv *rendezvous.Service
	res *resolver.Service
}

type cluster struct {
	t   *testing.T
	net *netsim.Network
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	n := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(n.Close)
	return &cluster{t: t, net: n}
}

func (c *cluster) addPeer(name string, seed uint64, role rendezvous.Role, seeds ...endpoint.Address) *testPeer {
	c.t.Helper()
	node, err := c.net.AddNode(name)
	if err != nil {
		c.t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		c.t.Fatal(err)
	}
	rdv, err := rendezvous.New(ep, rendezvous.Config{
		Role: role, GroupParam: "net", Seeds: seeds, LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	res, err := resolver.New(ep, rdv, "net")
	if err != nil {
		c.t.Fatal(err)
	}
	p := &testPeer{ep: ep, rdv: rdv, res: res}
	c.t.Cleanup(func() {
		p.res.Close()
		p.rdv.Close()
		_ = p.ep.Close()
	})
	return p
}

// echoHandler responds to every query with "echo:"+payload and records
// responses it receives.
type echoHandler struct {
	mu        sync.Mutex
	queries   []resolver.Query
	responses []resolver.Response
}

func (h *echoHandler) ProcessQuery(q resolver.Query, _ endpoint.Address) ([]byte, error) {
	h.mu.Lock()
	h.queries = append(h.queries, q)
	h.mu.Unlock()
	return append([]byte("echo:"), q.Payload...), nil
}

func (h *echoHandler) ProcessResponse(r resolver.Response, _ endpoint.Address) {
	h.mu.Lock()
	h.responses = append(h.responses, r)
	h.mu.Unlock()
}

func (h *echoHandler) responseCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.responses)
}

func (h *echoHandler) lastResponse() resolver.Response {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.responses[len(h.responses)-1]
}

func TestDirectQueryResponse(t *testing.T) {
	c := newCluster(t)
	a := c.addPeer("a", 1, rendezvous.RoleEdge)
	b := c.addPeer("b", 2, rendezvous.RoleEdge)
	ha, hb := &echoHandler{}, &echoHandler{}
	if err := a.res.RegisterHandler("test.echo", ha); err != nil {
		t.Fatal(err)
	}
	if err := b.res.RegisterHandler("test.echo", hb); err != nil {
		t.Fatal(err)
	}
	qid, err := a.res.SendQuery("mem://b", "test.echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if qid == 0 {
		t.Fatal("query ID should be nonzero")
	}
	waitFor(t, func() bool { return ha.responseCount() == 1 })
	r := ha.lastResponse()
	if r.QueryID != qid {
		t.Fatalf("response qid = %d, want %d", r.QueryID, qid)
	}
	if string(r.Payload) != "echo:ping" {
		t.Fatalf("payload = %q", r.Payload)
	}
	if r.Src != b.ep.PeerID() {
		t.Fatalf("src = %v", r.Src)
	}
}

func TestQueryToMissingHandlerIsDropped(t *testing.T) {
	c := newCluster(t)
	a := c.addPeer("a", 1, rendezvous.RoleEdge)
	b := c.addPeer("b", 2, rendezvous.RoleEdge)
	_ = b
	ha := &echoHandler{}
	if err := a.res.RegisterHandler("test.echo", ha); err != nil {
		t.Fatal(err)
	}
	if _, err := a.res.SendQuery("mem://b", "test.echo", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if ha.responseCount() != 0 {
		t.Fatal("got response from peer with no handler")
	}
}

func TestHandlerReturningNilSendsNoResponse(t *testing.T) {
	c := newCluster(t)
	a := c.addPeer("a", 1, rendezvous.RoleEdge)
	b := c.addPeer("b", 2, rendezvous.RoleEdge)
	ha := &echoHandler{}
	if err := a.res.RegisterHandler("test.silent", ha); err != nil {
		t.Fatal(err)
	}
	var got int
	var mu sync.Mutex
	if err := b.res.RegisterHandler("test.silent", resolver.HandlerFunc{
		OnQuery: func(q resolver.Query, _ endpoint.Address) ([]byte, error) {
			mu.Lock()
			got++
			mu.Unlock()
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.res.SendQuery("mem://b", "test.silent", []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return got == 1 })
	time.Sleep(50 * time.Millisecond)
	if ha.responseCount() != 0 {
		t.Fatal("nil response payload still produced a response message")
	}
}

func TestHandlerErrorSendsNoResponse(t *testing.T) {
	c := newCluster(t)
	a := c.addPeer("a", 1, rendezvous.RoleEdge)
	b := c.addPeer("b", 2, rendezvous.RoleEdge)
	ha := &echoHandler{}
	if err := a.res.RegisterHandler("test.err", ha); err != nil {
		t.Fatal(err)
	}
	if err := b.res.RegisterHandler("test.err", resolver.HandlerFunc{
		OnQuery: func(resolver.Query, endpoint.Address) ([]byte, error) {
			return []byte("should-not-be-sent"), fmt.Errorf("boom")
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.res.SendQuery("mem://b", "test.err", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if ha.responseCount() != 0 {
		t.Fatal("handler error still produced a response")
	}
}

func TestPropagatedQueryReachesAllPeers(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	q := c.addPeer("querier", 2, rendezvous.RoleEdge, "mem://rdv")
	r1 := c.addPeer("r1", 3, rendezvous.RoleEdge, "mem://rdv")
	r2 := c.addPeer("r2", 4, rendezvous.RoleEdge, "mem://rdv")
	for _, p := range []*testPeer{q, r1, r2} {
		if !p.rdv.AwaitConnected(5 * time.Second) {
			t.Fatal("peer never connected")
		}
	}
	hq := &echoHandler{}
	if err := q.res.RegisterHandler("test.echo", hq); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*testPeer{r1, r2} {
		if err := p.res.RegisterHandler("test.echo", &echoHandler{}); err != nil {
			t.Fatal(err)
		}
	}
	qid, err := q.res.PropagateQuery("test.echo", []byte("who-is-there"))
	if err != nil {
		t.Fatal(err)
	}
	// Both responders answer; the querier's own handler must not
	// self-answer.
	waitFor(t, func() bool { return hq.responseCount() == 2 })
	hq.mu.Lock()
	defer hq.mu.Unlock()
	for _, r := range hq.responses {
		if r.QueryID != qid {
			t.Fatalf("qid %d, want %d", r.QueryID, qid)
		}
		if string(r.Payload) != "echo:who-is-there" {
			t.Fatalf("payload %q", r.Payload)
		}
	}
}

func TestPropagateWithoutPropagator(t *testing.T) {
	c := newCluster(t)
	node, err := c.net.AddNode("solo")
	if err != nil {
		t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, 1))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ep.Close() })
	res, err := resolver.New(ep, nil, "net")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(res.Close)
	if _, err := res.PropagateQuery("h", nil); !errors.Is(err, resolver.ErrNoPropagator) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateHandlerName(t *testing.T) {
	c := newCluster(t)
	a := c.addPeer("a", 1, rendezvous.RoleEdge)
	if err := a.res.RegisterHandler("dup", &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	if err := a.res.RegisterHandler("dup", &echoHandler{}); !errors.Is(err, resolver.ErrDupHandler) {
		t.Fatalf("err = %v", err)
	}
	a.res.UnregisterHandler("dup")
	if err := a.res.RegisterHandler("dup", &echoHandler{}); err != nil {
		t.Fatalf("after unregister: %v", err)
	}
}

func TestQueryIDsAreUniquePerPeer(t *testing.T) {
	c := newCluster(t)
	a := c.addPeer("a", 1, rendezvous.RoleEdge)
	b := c.addPeer("b", 2, rendezvous.RoleEdge)
	if err := b.res.RegisterHandler("test.echo", &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 50; i++ {
		qid, err := a.res.SendQuery("mem://b", "test.echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[qid] {
			t.Fatalf("duplicate query ID %d", qid)
		}
		seen[qid] = true
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
