package peerinfo_test

import (
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/peerinfo"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

type testPeer struct {
	ep  *endpoint.Service
	res *resolver.Service
	pip *peerinfo.Service
}

func newPair(t *testing.T) (a, b *testPeer) {
	t.Helper()
	net := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(net.Close)
	mk := func(name string, seed uint64) *testPeer {
		node, err := net.AddNode(name)
		if err != nil {
			t.Fatal(err)
		}
		ep := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
		if err := ep.AddTransport(memnet.New(node)); err != nil {
			t.Fatal(err)
		}
		res, err := resolver.New(ep, nil, "g1")
		if err != nil {
			t.Fatal(err)
		}
		pip, err := peerinfo.New(res, ep)
		if err != nil {
			t.Fatal(err)
		}
		p := &testPeer{ep: ep, res: res, pip: pip}
		t.Cleanup(func() {
			p.pip.Close()
			p.res.Close()
			_ = p.ep.Close()
		})
		return p
	}
	return mk("a", 1), mk("b", 2)
}

func TestLocalInfo(t *testing.T) {
	a, _ := newPair(t)
	info := a.pip.Local()
	if info.PeerID != a.ep.PeerID() {
		t.Fatalf("peer ID %v", info.PeerID)
	}
	if info.UptimeMS < 0 {
		t.Fatalf("uptime %d", info.UptimeMS)
	}
	if info.MsgsIn != 0 || info.MsgsOut != 0 {
		t.Fatalf("fresh peer has traffic: %+v", info)
	}
}

func TestRemoteQueryReflectsTraffic(t *testing.T) {
	a, b := newPair(t)
	// Generate some traffic from b so its counters move.
	if err := b.ep.RegisterHandler("noop", "", func(*message.Message, endpoint.Address) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.ep.Send("mem://a", "noop", "", message.New(b.ep.PeerID())); err != nil {
			t.Fatal(err)
		}
	}
	info, err := a.pip.Query("mem://b", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.PeerID != b.ep.PeerID() {
		t.Fatalf("peer ID %v, want %v", info.PeerID, b.ep.PeerID())
	}
	// b sent 3 noops plus the PIP response itself.
	if info.MsgsOut < 3 {
		t.Fatalf("MsgsOut = %d, want >= 3", info.MsgsOut)
	}
	if info.MsgsIn < 1 {
		t.Fatalf("MsgsIn = %d, want >= 1 (the PIP query)", info.MsgsIn)
	}
	if info.LastOutUnixMS == 0 {
		t.Fatal("LastOutUnixMS not set despite traffic")
	}
	if info.Uptime() <= 0 {
		t.Fatalf("uptime %v", info.Uptime())
	}
}

func TestQueryTimeout(t *testing.T) {
	a, _ := newPair(t)
	if _, err := a.pip.Query("mem://ghost", 200*time.Millisecond); err == nil {
		t.Fatal("query to ghost succeeded")
	}
}

func TestQueryAfterClose(t *testing.T) {
	a, b := newPair(t)
	_ = b
	a.pip.Close()
	if _, err := a.pip.Query("mem://b", time.Second); err == nil {
		t.Fatal("query after close succeeded")
	}
	a.pip.Close() // idempotent
}
