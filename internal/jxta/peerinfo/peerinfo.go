// Package peerinfo implements the JXTA Peer Information Protocol (PIP).
//
// PIP answers "how is that peer doing?": how long it has been up, how
// much traffic has flowed over its channels, and when it last sent or
// received. The data comes straight from the endpoint layer's counters;
// remote peers query it through the resolver.
package peerinfo

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
)

// HandlerName is the resolver handler name of the protocol.
const HandlerName = "jxta.pip"

// ErrTimeout is returned when a peer does not answer in time.
var ErrTimeout = errors.New("peerinfo: request timed out")

// Info is a snapshot of a peer's health counters.
type Info struct {
	XMLName  xml.Name `xml:"PeerInfo"`
	PeerID   jid.ID   `xml:"PeerID"`
	UptimeMS int64    `xml:"UptimeMS"`
	MsgsIn   int64    `xml:"MsgsIn"`
	MsgsOut  int64    `xml:"MsgsOut"`
	BytesIn  int64    `xml:"BytesIn"`
	BytesOut int64    `xml:"BytesOut"`
	// LastInUnixMS / LastOutUnixMS are zero when no traffic has flowed.
	LastInUnixMS  int64 `xml:"LastInUnixMS,omitempty"`
	LastOutUnixMS int64 `xml:"LastOutUnixMS,omitempty"`
}

// Uptime returns the peer's uptime.
func (i Info) Uptime() time.Duration { return time.Duration(i.UptimeMS) * time.Millisecond }

// StatsSource provides the local counters PIP reports — implemented by
// *endpoint.Service.
type StatsSource interface {
	Stats() endpoint.Stats
	PeerID() jid.ID
}

// Service is one peer's PIP instance.
type Service struct {
	res *resolver.Service
	src StatsSource
	now func() time.Time

	mu      sync.Mutex
	pending map[uint64]chan Info
	closed  bool
}

// Option customises the service.
type Option func(*Service)

// WithClock substitutes the time source (tests).
func WithClock(now func() time.Time) Option {
	return func(s *Service) { s.now = now }
}

// New creates the PIP service.
func New(res *resolver.Service, src StatsSource, opts ...Option) (*Service, error) {
	s := &Service{
		res:     res,
		src:     src,
		now:     time.Now,
		pending: make(map[uint64]chan Info),
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := res.RegisterHandler(HandlerName, (*handler)(s)); err != nil {
		return nil, fmt.Errorf("peerinfo: %w", err)
	}
	return s, nil
}

// Close unregisters the handler and fails pending queries.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for qid, ch := range s.pending {
		close(ch)
		delete(s.pending, qid)
	}
	s.mu.Unlock()
	s.res.UnregisterHandler(HandlerName)
}

// Local returns this peer's own info snapshot.
func (s *Service) Local() Info {
	st := s.src.Stats()
	now := s.now()
	info := Info{
		PeerID:   s.src.PeerID(),
		UptimeMS: st.Uptime(now).Milliseconds(),
		MsgsIn:   st.MsgsIn,
		MsgsOut:  st.MsgsOut,
		BytesIn:  st.BytesIn,
		BytesOut: st.BytesOut,
	}
	if !st.LastIncoming.IsZero() {
		info.LastInUnixMS = st.LastIncoming.UnixMilli()
	}
	if !st.LastOutgoing.IsZero() {
		info.LastOutUnixMS = st.LastOutgoing.UnixMilli()
	}
	return info
}

// Query fetches the info snapshot of the peer at the given address,
// blocking until the answer arrives or the timeout elapses.
func (s *Service) Query(to endpoint.Address, timeout time.Duration) (Info, error) {
	ch := make(chan Info, 1)
	qid, err := s.res.SendQuery(to, HandlerName, []byte("<PeerInfoQuery/>"))
	if err != nil {
		return Info{}, fmt.Errorf("peerinfo: query: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Info{}, errors.New("peerinfo: closed")
	}
	s.pending[qid] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, qid)
		s.mu.Unlock()
	}()
	select {
	case info, ok := <-ch:
		if !ok {
			return Info{}, ErrTimeout
		}
		return info, nil
	case <-time.After(timeout):
		return Info{}, ErrTimeout
	}
}

// --- resolver handler ---

type handler Service

var _ resolver.Handler = (*handler)(nil)

// ProcessQuery answers with this peer's counters.
func (h *handler) ProcessQuery(_ resolver.Query, _ endpoint.Address) ([]byte, error) {
	s := (*Service)(h)
	return xml.Marshal(s.Local())
}

// ProcessResponse routes answers to waiting queries.
func (h *handler) ProcessResponse(r resolver.Response, _ endpoint.Address) {
	s := (*Service)(h)
	var info Info
	if err := xml.Unmarshal(r.Payload, &info); err != nil {
		return
	}
	s.mu.Lock()
	ch, ok := s.pending[r.QueryID]
	s.mu.Unlock()
	if ok {
		select {
		case ch <- info:
		default:
		}
	}
}
