package seen

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func TestObserveNewThenDuplicate(t *testing.T) {
	c := New()
	id := jid.FromSeed(jid.KindMessage, 1)
	if !c.Observe(id) {
		t.Fatal("first Observe returned false")
	}
	if c.Observe(id) {
		t.Fatal("second Observe returned true")
	}
	if !c.Seen(id) {
		t.Fatal("Seen false after Observe")
	}
	if c.Seen(jid.FromSeed(jid.KindMessage, 2)) {
		t.Fatal("Seen true for never-observed ID")
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := New(WithTTL(time.Minute), WithClock(clk.now))
	id := jid.FromSeed(jid.KindMessage, 1)
	c.Observe(id)
	clk.advance(59 * time.Second)
	if !c.Seen(id) {
		t.Fatal("expired before TTL")
	}
	clk.advance(2 * time.Second)
	if c.Seen(id) {
		t.Fatal("still seen after TTL")
	}
	if !c.Observe(id) {
		t.Fatal("re-observe after expiry should be new")
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	c := New(WithCapacity(3))
	ids := make([]jid.ID, 5)
	for i := range ids {
		ids[i] = jid.FromSeed(jid.KindMessage, uint64(i))
		c.Observe(ids[i])
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Seen(ids[0]) || c.Seen(ids[1]) {
		t.Fatal("oldest entries not evicted")
	}
	for _, id := range ids[2:] {
		if !c.Seen(id) {
			t.Fatalf("recent entry %v evicted", id)
		}
	}
}

func TestLenAfterMixedOps(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := New(WithTTL(10*time.Second), WithClock(clk.now))
	for i := 0; i < 10; i++ {
		c.Observe(jid.FromSeed(jid.KindMessage, uint64(i)))
		clk.advance(time.Second)
	}
	// Entries observed at t=0..4 have expired by t=10 (TTL 10s: age >= 10).
	if got := c.Len(); got != 9 {
		t.Fatalf("Len = %d, want 9", got)
	}
	clk.advance(time.Hour)
	if got := c.Len(); got != 0 {
		t.Fatalf("Len after long idle = %d", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	c := New()
	const goroutines = 8
	const ids = 100
	counts := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ids; i++ {
				if c.Observe(jid.FromSeed(jid.KindMessage, uint64(i))) {
					counts[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	// Exactly one goroutine wins "new" per ID.
	if total != ids {
		t.Fatalf("total new observations = %d, want %d", total, ids)
	}
}

// Property: Observe returns true at most once per ID within TTL,
// regardless of the observation order.
func TestQuickAtMostOnceSemantics(t *testing.T) {
	f := func(seeds []uint64) bool {
		c := New()
		news := make(map[jid.ID]int)
		for _, s := range seeds {
			id := jid.FromSeed(jid.KindMessage, s%32)
			if c.Observe(id) {
				news[id]++
			}
		}
		for _, n := range news {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
