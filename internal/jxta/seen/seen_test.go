package seen

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func TestObserveNewThenDuplicate(t *testing.T) {
	c := New()
	id := jid.FromSeed(jid.KindMessage, 1)
	if !c.Observe(id) {
		t.Fatal("first Observe returned false")
	}
	if c.Observe(id) {
		t.Fatal("second Observe returned true")
	}
	if !c.Seen(id) {
		t.Fatal("Seen false after Observe")
	}
	if c.Seen(jid.FromSeed(jid.KindMessage, 2)) {
		t.Fatal("Seen true for never-observed ID")
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := New(WithTTL(time.Minute), WithClock(clk.now))
	id := jid.FromSeed(jid.KindMessage, 1)
	c.Observe(id)
	clk.advance(59 * time.Second)
	if !c.Seen(id) {
		t.Fatal("expired before TTL")
	}
	clk.advance(2 * time.Second)
	if c.Seen(id) {
		t.Fatal("still seen after TTL")
	}
	if !c.Observe(id) {
		t.Fatal("re-observe after expiry should be new")
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	c := New(WithCapacity(3))
	ids := make([]jid.ID, 5)
	for i := range ids {
		ids[i] = jid.FromSeed(jid.KindMessage, uint64(i))
		c.Observe(ids[i])
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Seen(ids[0]) || c.Seen(ids[1]) {
		t.Fatal("oldest entries not evicted")
	}
	for _, id := range ids[2:] {
		if !c.Seen(id) {
			t.Fatalf("recent entry %v evicted", id)
		}
	}
}

func TestLenAfterMixedOps(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := New(WithTTL(10*time.Second), WithClock(clk.now))
	for i := 0; i < 10; i++ {
		c.Observe(jid.FromSeed(jid.KindMessage, uint64(i)))
		clk.advance(time.Second)
	}
	// Entries observed at t=0..4 have expired by t=10 (TTL 10s: age >= 10).
	if got := c.Len(); got != 9 {
		t.Fatalf("Len = %d, want 9", got)
	}
	clk.advance(time.Hour)
	if got := c.Len(); got != 0 {
		t.Fatalf("Len after long idle = %d", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	c := New()
	const goroutines = 8
	const ids = 100
	counts := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ids; i++ {
				if c.Observe(jid.FromSeed(jid.KindMessage, uint64(i))) {
					counts[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	// Exactly one goroutine wins "new" per ID.
	if total != ids {
		t.Fatalf("total new observations = %d, want %d", total, ids)
	}
}

// TestShardedConcurrentObserve exercises the striped configuration (a
// capacity large enough for multiple shards) with parallel observers:
// every ID must be reported new exactly once across all goroutines, with
// no lost dedupes on any stripe.
func TestShardedConcurrentObserve(t *testing.T) {
	c := New(WithCapacity(1 << 16))
	const goroutines = 8
	const ids = 4096
	var news atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the ID space from a different offset so
			// shard locks genuinely interleave.
			for i := 0; i < ids; i++ {
				id := jid.FromSeed(jid.KindMessage, uint64((i+g*ids/goroutines)%ids))
				if c.Observe(id) {
					news.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if news.Load() != ids {
		t.Fatalf("new observations = %d, want %d", news.Load(), ids)
	}
	if c.Len() != ids {
		t.Fatalf("Len = %d, want %d", c.Len(), ids)
	}
	for i := 0; i < ids; i++ {
		if !c.Seen(jid.FromSeed(jid.KindMessage, uint64(i))) {
			t.Fatalf("id %d lost", i)
		}
	}
}

// TestShardedExpiryUnderLoad advances the clock while parallel observers
// insert: expiry must never drop a live entry, and an expired ID must be
// observable as new again.
func TestShardedExpiryUnderLoad(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1, 0)}
	c := New(WithCapacity(1<<16), WithTTL(time.Minute), WithClock(clk.now))
	const old = 1024
	for i := 0; i < old; i++ {
		c.Observe(jid.FromSeed(jid.KindMessage, uint64(i)))
	}
	clk.advance(30 * time.Second)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 512; i++ {
				c.Observe(jid.FromSeed(jid.KindMessage, uint64(10_000+g*512+i)))
				if i%64 == 0 {
					clk.advance(time.Millisecond) // concurrent expiry sweeps
				}
			}
		}(g)
	}
	wg.Wait()
	// The old generation is still within TTL: nothing may have been lost.
	for i := 0; i < old; i++ {
		if !c.Seen(jid.FromSeed(jid.KindMessage, uint64(i))) {
			t.Fatalf("live entry %d lost during concurrent sweeps", i)
		}
	}
	clk.advance(time.Minute)
	if !c.Observe(jid.FromSeed(jid.KindMessage, 1)) {
		t.Fatal("expired ID not new again")
	}
}

// TestShardedCapacityBound floods a striped cache far past capacity from
// several goroutines: the live count must stay within the configured
// bound.
func TestShardedCapacityBound(t *testing.T) {
	const capacity = 4096
	c := New(WithCapacity(capacity))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < capacity; i++ {
				c.Observe(jid.FromSeed(jid.KindMessage, uint64(g*capacity+i)))
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > capacity {
		t.Fatalf("Len = %d exceeds capacity %d", got, capacity)
	}
	if got := c.Len(); got < capacity/2 {
		t.Fatalf("Len = %d suspiciously low after flood (capacity %d)", got, capacity)
	}
}

// TestObserveSteadyStateAllocs pins the allocation-free ring design:
// once a shard's ring and map have warmed up, the Observe cycle
// (insert + evict) must not allocate.
func TestObserveSteadyStateAllocs(t *testing.T) {
	c := New(WithCapacity(1024))
	for i := 0; i < 4096; i++ { // warm every shard past its ring size
		c.Observe(jid.FromSeed(jid.KindMessage, uint64(i)))
	}
	n := uint64(1 << 20)
	allocs := testing.AllocsPerRun(2000, func() {
		n++
		c.Observe(jid.FromSeed(jid.KindMessage, n))
	})
	if allocs > 0.1 {
		t.Errorf("steady-state Observe allocates %.2f/op, want 0", allocs)
	}
}

// Property: Observe returns true at most once per ID within TTL,
// regardless of the observation order.
func TestQuickAtMostOnceSemantics(t *testing.T) {
	f := func(seeds []uint64) bool {
		c := New()
		news := make(map[jid.ID]int)
		for _, s := range seeds {
			id := jid.FromSeed(jid.KindMessage, s%32)
			if c.Observe(id) {
				news[id]++
			}
		}
		for _, n := range news {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
