// Package seen provides a time-bounded duplicate-suppression cache.
//
// Propagated (many-to-many) communication in a peer-to-peer mesh
// inevitably delivers the same message along several paths; rendezvous
// peers and the wire service remember recently seen message IDs and drop
// replays. Entries expire after a TTL and the cache is capacity-bounded,
// evicting oldest-first, so a chatty peer cannot exhaust memory.
package seen

import (
	"container/list"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// Defaults chosen to cover the paper's workloads (10 000-event floods)
// with headroom.
const (
	DefaultTTL      = 2 * time.Minute
	DefaultCapacity = 65536
)

// Cache is a concurrency-safe set of recently seen IDs.
type Cache struct {
	ttl time.Duration
	cap int
	now func() time.Time

	mu    sync.Mutex
	order *list.List               // entries oldest-first
	byID  map[jid.ID]*list.Element // id -> entry
}

type entry struct {
	id jid.ID
	at time.Time
}

// Option customises a Cache.
type Option func(*Cache)

// WithTTL sets how long an ID stays remembered.
func WithTTL(ttl time.Duration) Option { return func(c *Cache) { c.ttl = ttl } }

// WithCapacity bounds the number of remembered IDs.
func WithCapacity(n int) Option { return func(c *Cache) { c.cap = n } }

// WithClock substitutes the time source (tests).
func WithClock(now func() time.Time) Option { return func(c *Cache) { c.now = now } }

// New creates a cache with the given options.
func New(opts ...Option) *Cache {
	c := &Cache{
		ttl:   DefaultTTL,
		cap:   DefaultCapacity,
		now:   time.Now,
		order: list.New(),
		byID:  make(map[jid.ID]*list.Element),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Observe records the ID and reports whether it is new: true means the
// caller sees this ID for the first time (within TTL) and should process
// the message; false means duplicate.
func (c *Cache) Observe(id jid.ID) bool {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	if _, ok := c.byID[id]; ok {
		return false
	}
	for len(c.byID) >= c.cap {
		c.evictOldestLocked()
	}
	c.byID[id] = c.order.PushBack(entry{id: id, at: now})
	return true
}

// Seen reports whether the ID is currently remembered, without recording
// it.
func (c *Cache) Seen(id jid.ID) bool {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	_, ok := c.byID[id]
	return ok
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	return len(c.byID)
}

func (c *Cache) expireLocked(now time.Time) {
	for {
		front := c.order.Front()
		if front == nil {
			return
		}
		e := front.Value.(entry)
		if now.Sub(e.at) < c.ttl {
			return
		}
		c.order.Remove(front)
		delete(c.byID, e.id)
	}
}

func (c *Cache) evictOldestLocked() {
	front := c.order.Front()
	if front == nil {
		return
	}
	e := front.Value.(entry)
	c.order.Remove(front)
	delete(c.byID, e.id)
}
