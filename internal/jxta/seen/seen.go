// Package seen provides a time-bounded duplicate-suppression cache.
//
// Propagated (many-to-many) communication in a peer-to-peer mesh
// inevitably delivers the same message along several paths; rendezvous
// peers and the wire service remember recently seen message IDs and drop
// replays. Entries expire after a TTL and the cache is capacity-bounded,
// evicting oldest-first, so a chatty peer cannot exhaust memory.
//
// The cache is lock-striped: IDs hash to one of up to 16 shards, each an
// independently locked ring buffer plus index map, so concurrent
// deliveries on different connections deduplicate without serialising on
// a global mutex. Within a shard, entries live in a power-of-two ring —
// insertion order is arrival order, so both TTL expiry and capacity
// eviction pop from the head with no per-entry heap node and no free-list
// bookkeeping. Expiry is amortised: each operation on a shard first
// drains the stale prefix of its ring, which over time does constant work
// per inserted entry. Small caches (below one ring's worth of entries per
// shard) collapse to a single shard, preserving exact global oldest-first
// eviction where tests and tiny deployments expect it.
package seen

import (
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/obs"
)

// Defaults chosen to cover the paper's workloads (10 000-event floods)
// with headroom.
const (
	DefaultTTL      = 2 * time.Minute
	DefaultCapacity = 65536
)

const (
	// maxShards bounds the stripe count; must be a power of two.
	maxShards = 16
	// minShardCapacity is the smallest per-shard capacity worth striping
	// for: below it the map/ring overhead dominates and a single shard
	// with exact global FIFO semantics is used instead.
	minShardCapacity = 256
	// initialRingSize is the ring allocation on first use; rings double
	// up to the shard capacity, so idle caches stay small.
	initialRingSize = 64
)

// Cache is a concurrency-safe set of recently seen IDs.
type Cache struct {
	ttl      int64 // nanoseconds
	now      func() time.Time
	shards   []shard
	mask     uint64 // len(shards)-1; shard selector over jid.Hash64
	shardCap int    // per-shard entry bound; total is bounded by len(shards)*shardCap
}

// shard is one lock stripe: a FIFO ring of entries ordered by arrival
// plus the membership index. head and tail are monotonically increasing
// sequence numbers; live entries occupy [head, tail) and map to ring
// slots by sequence & (len(ring)-1).
type shard struct {
	mu   sync.Mutex
	byID map[jid.ID]struct{}
	ring []entry
	head uint64
	tail uint64

	// Shard-local counters, mutated under mu the operations already
	// hold, so counting adds no atomics and no allocations to Observe.
	observed   int64 // Observe calls
	duplicates int64 // Observe calls that found the ID present
	expired    int64 // entries dropped by TTL expiry
	evicted    int64 // entries dropped by capacity pressure
}

type entry struct {
	id jid.ID
	at int64 // unix nanoseconds
}

// Option customises a Cache.
type Option func(*config)

type config struct {
	ttl time.Duration
	cap int
	now func() time.Time
}

// WithTTL sets how long an ID stays remembered.
func WithTTL(ttl time.Duration) Option { return func(c *config) { c.ttl = ttl } }

// WithCapacity bounds the number of remembered IDs.
func WithCapacity(n int) Option { return func(c *config) { c.cap = n } }

// WithClock substitutes the time source (tests).
func WithClock(now func() time.Time) Option { return func(c *config) { c.now = now } }

// New creates a cache with the given options.
func New(opts ...Option) *Cache {
	cfg := config{ttl: DefaultTTL, cap: DefaultCapacity, now: time.Now}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.cap < 1 {
		cfg.cap = 1
	}
	n := 1
	for n < maxShards && cfg.cap/(n*2) >= minShardCapacity {
		n *= 2
	}
	c := &Cache{
		ttl:    int64(cfg.ttl),
		now:    cfg.now,
		shards: make([]shard, n),
		mask:   uint64(n - 1),
		// Round the per-shard bound up so the sum covers the requested
		// capacity; the total stays within cap+n-1.
		shardCap: (cfg.cap + n - 1) / n,
	}
	return c
}

func (c *Cache) shardFor(id jid.ID) *shard {
	return &c.shards[id.Hash64()&c.mask]
}

// Observe records the ID and reports whether it is new: true means the
// caller sees this ID for the first time (within TTL) and should process
// the message; false means duplicate.
func (c *Cache) Observe(id jid.ID) bool {
	now := c.now().UnixNano()
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expire(now, c.ttl)
	s.observed++
	if _, ok := s.byID[id]; ok {
		s.duplicates++
		return false
	}
	if s.byID == nil {
		s.byID = make(map[jid.ID]struct{}, min(c.shardCap, minShardCapacity))
	}
	for int(s.tail-s.head) >= c.shardCap {
		s.popOldest()
	}
	if int(s.tail-s.head) == len(s.ring) {
		s.grow(c.shardCap)
	}
	s.ring[s.tail&uint64(len(s.ring)-1)] = entry{id: id, at: now}
	s.tail++
	s.byID[id] = struct{}{}
	return true
}

// Seen reports whether the ID is currently remembered, without recording
// it.
func (c *Cache) Seen(id jid.ID) bool {
	now := c.now().UnixNano()
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expire(now, c.ttl)
	_, ok := s.byID[id]
	return ok
}

// Stats is a snapshot of cache activity.
type Stats struct {
	Observed   int64 // Observe calls
	Duplicates int64 // Observe calls answered "already seen"
	Expired    int64 // entries dropped by TTL
	Evicted    int64 // entries dropped by capacity pressure
	Entries    int   // live entries right now
}

// Stats sums the shard counters into one snapshot. Like Len it expires
// stale entries as a side effect, so Entries is live occupancy.
func (c *Cache) Stats() Stats {
	now := c.now().UnixNano()
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.expire(now, c.ttl)
		st.Observed += s.observed
		st.Duplicates += s.duplicates
		st.Expired += s.expired
		st.Evicted += s.evicted
		st.Entries += int(s.tail - s.head)
		s.mu.Unlock()
	}
	return st
}

// Snapshot implements obs.Provider.
func (c *Cache) Snapshot() obs.Snapshot {
	st := c.Stats()
	return obs.Snapshot{
		Name:    "seen",
		Version: 1,
		Counters: map[string]int64{
			"observed":   st.Observed,
			"duplicates": st.Duplicates,
			"expired":    st.Expired,
			"evicted":    st.Evicted,
		},
		Gauges: map[string]float64{
			"entries": float64(st.Entries),
		},
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	now := c.now().UnixNano()
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.expire(now, c.ttl)
		total += int(s.tail - s.head)
		s.mu.Unlock()
	}
	return total
}

// expire drains the stale prefix of the ring. Entries are in arrival
// order, so the scan stops at the first live one; each entry is popped at
// most once in its lifetime, making expiry amortised O(1) per insert.
func (s *shard) expire(now, ttl int64) {
	for s.head != s.tail {
		e := &s.ring[s.head&uint64(len(s.ring)-1)]
		if now-e.at < ttl {
			return
		}
		delete(s.byID, e.id)
		s.head++
		s.expired++
	}
}

func (s *shard) popOldest() {
	if s.head == s.tail {
		return
	}
	e := &s.ring[s.head&uint64(len(s.ring)-1)]
	delete(s.byID, e.id)
	s.head++
	s.evicted++
}

// grow doubles the ring (bounded by shardCap rounded to a power of two),
// re-slotting live entries under the new mask.
func (s *shard) grow(shardCap int) {
	size := len(s.ring) * 2
	if size == 0 {
		size = initialRingSize
		for size > 1 && size/2 >= shardCap {
			size /= 2
		}
	}
	next := make([]entry, size)
	for seq := s.head; seq != s.tail; seq++ {
		next[seq&uint64(size-1)] = s.ring[seq&uint64(len(s.ring)-1)]
	}
	s.ring = next
}
