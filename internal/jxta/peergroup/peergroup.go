// Package peergroup composes the JXTA protocol services into peer
// groups.
//
// A peer group is a scoped, monitored environment: each group a peer
// joins gets its own rendezvous client, resolver, discovery, router,
// pipe, wire, membership and peer-info service instances, all
// parameterised by the group ID so two groups never see each other's
// traffic. There is no hierarchy between groups; a peer may join many to
// share different resources — the paper's TPS layer joins one group per
// event type.
package peergroup

import (
	"errors"
	"fmt"
	"time"

	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/discovery"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/membership"
	"github.com/tps-p2p/tps/internal/jxta/peerinfo"
	"github.com/tps-p2p/tps/internal/jxta/pipe"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/resolver"
	"github.com/tps-p2p/tps/internal/jxta/route"
	"github.com/tps-p2p/tps/internal/jxta/wire"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

// ErrNilEndpoint is returned when no endpoint service is supplied.
var ErrNilEndpoint = errors.New("peergroup: nil endpoint")

// Config configures a group instance on one peer.
type Config struct {
	// ID identifies the group; jid.NetGroup is the bootstrap group.
	ID jid.ID
	// Name is the human-readable group name.
	Name string
	// Role selects edge or rendezvous behaviour inside this group.
	Role rendezvous.Role
	// Seeds are rendezvous addresses for this group.
	Seeds []endpoint.Address
	// LeaseTTL overrides the rendezvous lease duration.
	LeaseTTL time.Duration
	// Firewalled marks this peer as unreachable for unsolicited inbound
	// traffic (drives the routing behaviour).
	Firewalled bool
	// Authenticator, when set, makes this peer a membership authority
	// for the group.
	Authenticator membership.Authenticator
	// DisableWireDedupe turns off wire-level duplicate suppression
	// (ablation benchmarks only).
	DisableWireDedupe bool
	// Log, when set on a rendezvous-role peer, makes the group's
	// rendezvous service append propagated events to this durable log
	// and serve replay requests from it. The group ID is the log topic.
	Log *eventlog.Log
	// Tracer is the peer-local hop-trace store the group's rendezvous
	// service records sampled-event forward hops into; nil disables it.
	Tracer *trace.Store
	// Failover switches the group's rendezvous client to active/standby
	// seed handling: lease with exactly one seed (the elected active)
	// and re-lease against the next standby when the failure detector
	// declares it dead. Requires every client to list Seeds in the same
	// order. Off by default — all seeds are leased with concurrently.
	Failover bool
}

// Group is one peer's instance of a peer group: the full protocol stack
// scoped to the group ID.
type Group struct {
	id   jid.ID
	name string
	ep   *endpoint.Service

	Rendezvous *rendezvous.Service
	Resolver   *resolver.Service
	Discovery  *discovery.Service
	Router     *route.Router
	Pipes      *pipe.Service
	Wire       *wire.Service
	Membership *membership.Service
	PeerInfo   *peerinfo.Service
}

// New instantiates the group's service stack on the given endpoint.
func New(ep *endpoint.Service, cfg Config) (*Group, error) {
	if ep == nil {
		return nil, ErrNilEndpoint
	}
	if cfg.ID.IsZero() {
		cfg.ID = jid.NetGroup
	}
	if cfg.Role == 0 {
		cfg.Role = rendezvous.RoleEdge
	}
	param := cfg.ID.String()

	g := &Group{id: cfg.ID, name: cfg.Name, ep: ep}
	var err error
	teardown := func() { g.Close() }

	g.Rendezvous, err = rendezvous.New(ep, rendezvous.Config{
		Role:          cfg.Role,
		GroupParam:    param,
		Seeds:         cfg.Seeds,
		LeaseTTL:      cfg.LeaseTTL,
		Log:           cfg.Log,
		Tracer:        cfg.Tracer,
		ActiveStandby: cfg.Failover,
	})
	if err != nil {
		return nil, fmt.Errorf("peergroup %q: %w", cfg.Name, err)
	}
	if g.Resolver, err = resolver.New(ep, g.Rendezvous, param); err != nil {
		teardown()
		return nil, fmt.Errorf("peergroup %q: %w", cfg.Name, err)
	}
	if g.Discovery, err = discovery.New(g.Resolver); err != nil {
		teardown()
		return nil, fmt.Errorf("peergroup %q: %w", cfg.Name, err)
	}
	if g.Router, err = route.New(ep, g.Resolver, route.Config{
		Group:      param,
		Relay:      cfg.Role == rendezvous.RoleRendezvous,
		Firewalled: cfg.Firewalled,
		Book:       g.Rendezvous,
	}); err != nil {
		teardown()
		return nil, fmt.Errorf("peergroup %q: %w", cfg.Name, err)
	}
	if g.Pipes, err = pipe.New(ep, g.Resolver, pipe.Config{Group: param}); err != nil {
		teardown()
		return nil, fmt.Errorf("peergroup %q: %w", cfg.Name, err)
	}
	if g.Wire, err = wire.New(ep, g.Rendezvous, wire.Config{
		Group:         param,
		DisableDedupe: cfg.DisableWireDedupe,
	}); err != nil {
		teardown()
		return nil, fmt.Errorf("peergroup %q: %w", cfg.Name, err)
	}
	if g.Membership, err = membership.New(g.Resolver, cfg.Authenticator); err != nil {
		teardown()
		return nil, fmt.Errorf("peergroup %q: %w", cfg.Name, err)
	}
	if g.PeerInfo, err = peerinfo.New(g.Resolver, ep); err != nil {
		teardown()
		return nil, fmt.Errorf("peergroup %q: %w", cfg.Name, err)
	}
	return g, nil
}

// ID returns the group ID.
func (g *Group) ID() jid.ID { return g.id }

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Param returns the endpoint service parameter scoping this group.
func (g *Group) Param() string { return g.id.String() }

// PeerID returns the local peer's ID.
func (g *Group) PeerID() jid.ID { return g.ep.PeerID() }

// LocalAddresses returns the peer's reachable addresses.
func (g *Group) LocalAddresses() []endpoint.Address { return g.ep.LocalAddresses() }

// AwaitRendezvous blocks until the group holds a rendezvous lease or the
// timeout elapses. Groups without seeds return false immediately unless
// this peer is itself a rendezvous.
func (g *Group) AwaitRendezvous(timeout time.Duration) bool {
	return g.Rendezvous.AwaitConnected(timeout)
}

// Advertisement builds this peer's advertisement of the group, embedding
// the wire service bound to the given pipe — the structure the paper's
// AdvertisementsCreator assembles by hand (Figure 15).
func (g *Group) Advertisement(pipeAdv *adv.PipeAdv) *adv.PeerGroupAdv {
	pg := &adv.PeerGroupAdv{
		GroupID:    g.id,
		PeerID:     g.ep.PeerID(),
		Name:       g.name,
		GroupImpl:  "go-jxta-stdgroup",
		App:        "tps",
		Rendezvous: g.Rendezvous.Role() == rendezvous.RoleRendezvous,
	}
	if pipeAdv != nil {
		pg.SetService(adv.ServiceAdv{
			Name:     wire.ServiceName,
			Version:  "1.0",
			Keywords: pipeAdv.Name,
			Pipe:     pipeAdv,
		})
	}
	return pg
}

// Close tears the group's services down in reverse construction order.
// It is safe to call on a partially constructed group.
func (g *Group) Close() {
	if g.PeerInfo != nil {
		g.PeerInfo.Close()
		g.PeerInfo = nil
	}
	if g.Membership != nil {
		g.Membership.Close()
		g.Membership = nil
	}
	if g.Wire != nil {
		g.Wire.Close()
		g.Wire = nil
	}
	if g.Pipes != nil {
		g.Pipes.Close()
		g.Pipes = nil
	}
	if g.Router != nil {
		g.Router.Close()
		g.Router = nil
	}
	if g.Discovery != nil {
		g.Discovery.Close()
		g.Discovery = nil
	}
	if g.Resolver != nil {
		g.Resolver.Close()
		g.Resolver = nil
	}
	if g.Rendezvous != nil {
		g.Rendezvous.Close()
		g.Rendezvous = nil
	}
}
