package peergroup_test

import (
	"errors"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/adv"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/membership"
	"github.com/tps-p2p/tps/internal/jxta/peergroup"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/jxta/wire"
	"github.com/tps-p2p/tps/internal/netsim"
)

func newEndpoint(t *testing.T, name string, seed uint64) *endpoint.Service {
	t.Helper()
	n := netsim.New(netsim.Config{})
	t.Cleanup(n.Close)
	node, err := n.AddNode(name)
	if err != nil {
		t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ep.Close() })
	return ep
}

func TestNewWiresAllServices(t *testing.T) {
	ep := newEndpoint(t, "p", 1)
	g, err := peergroup.New(ep, peergroup.Config{
		ID:   jid.FromSeed(jid.KindGroup, 9),
		Name: "test-group",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if g.Rendezvous == nil || g.Resolver == nil || g.Discovery == nil ||
		g.Router == nil || g.Pipes == nil || g.Wire == nil ||
		g.Membership == nil || g.PeerInfo == nil {
		t.Fatal("service missing from group stack")
	}
	if g.ID() != jid.FromSeed(jid.KindGroup, 9) || g.Name() != "test-group" {
		t.Fatal("identity wrong")
	}
	if g.Param() != g.ID().String() {
		t.Fatal("param must scope by group ID")
	}
	if g.PeerID() != ep.PeerID() {
		t.Fatal("peer ID mismatch")
	}
	if got := g.LocalAddresses(); len(got) != 1 {
		t.Fatalf("addresses %v", got)
	}
	// Default role is edge; no seeds means AwaitRendezvous fails fast.
	if g.AwaitRendezvous(50 * time.Millisecond) {
		t.Fatal("unseeded group claims rendezvous")
	}
}

func TestNilEndpointRejected(t *testing.T) {
	if _, err := peergroup.New(nil, peergroup.Config{}); !errors.Is(err, peergroup.ErrNilEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	ep := newEndpoint(t, "p", 1)
	g, err := peergroup.New(ep, peergroup.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if g.ID() != jid.NetGroup {
		t.Fatalf("default group = %v", g.ID())
	}
	if g.Rendezvous.Role() != rendezvous.RoleEdge {
		t.Fatalf("default role = %v", g.Rendezvous.Role())
	}
}

func TestAdvertisementEmbedsWireService(t *testing.T) {
	ep := newEndpoint(t, "p", 1)
	gid := jid.FromSeed(jid.KindGroup, 3)
	g, err := peergroup.New(ep, peergroup.Config{ID: gid, Name: "PS.SkiRental", Role: rendezvous.RoleRendezvous})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	pipeAdv := &adv.PipeAdv{PipeID: jid.NewPipeIn(gid), Type: adv.PipePropagate, Name: "PS.SkiRental"}
	pg := g.Advertisement(pipeAdv)
	if pg.GroupID != gid || pg.Name != "PS.SkiRental" || !pg.Rendezvous {
		t.Fatalf("adv %+v", pg)
	}
	svc, ok := pg.Service(wire.ServiceName)
	if !ok || svc.Pipe == nil || svc.Pipe.PipeID != pipeAdv.PipeID {
		t.Fatalf("wire service not embedded: %+v", svc)
	}
	// Without a pipe, no wire service is attached.
	bare := g.Advertisement(nil)
	if _, ok := bare.Service(wire.ServiceName); ok {
		t.Fatal("nil pipe still produced a wire service")
	}
}

func TestGroupsAreIsolatedOnOneEndpoint(t *testing.T) {
	ep := newEndpoint(t, "p", 1)
	g1, err := peergroup.New(ep, peergroup.Config{ID: jid.FromSeed(jid.KindGroup, 1), Name: "g1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g1.Close)
	g2, err := peergroup.New(ep, peergroup.Config{ID: jid.FromSeed(jid.KindGroup, 2), Name: "g2"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g2.Close)

	// Same advertisement names in both groups' discovery caches must not
	// cross-contaminate.
	a1 := &adv.PipeAdv{PipeID: jid.FromSeed(jid.KindPipe, 1), Type: adv.PipePropagate, Name: "shared-name"}
	if err := g1.Discovery.Publish(a1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := g2.Discovery.GetLocalAdvertisements(adv.Adv, "Name", "shared-name"); len(got) != 0 {
		t.Fatal("advertisement leaked across groups")
	}
	if got := g1.Discovery.GetLocalAdvertisements(adv.Adv, "Name", "shared-name"); len(got) != 1 {
		t.Fatal("advertisement missing from its own group")
	}
}

func TestMembershipAuthorityInGroup(t *testing.T) {
	ep := newEndpoint(t, "p", 1)
	g, err := peergroup.New(ep, peergroup.Config{
		ID:            jid.FromSeed(jid.KindGroup, 4),
		Name:          "secured",
		Authenticator: membership.PasswdAuthenticator{Password: "pw"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if g.Membership == nil {
		t.Fatal("membership missing")
	}
	// The authority tracks its own roster locally.
	if got := g.Membership.Members(); len(got) != 0 {
		t.Fatalf("fresh roster = %v", got)
	}
}

func TestCloseIsIdempotentAndPartialSafe(t *testing.T) {
	ep := newEndpoint(t, "p", 1)
	g, err := peergroup.New(ep, peergroup.Config{ID: jid.FromSeed(jid.KindGroup, 5)})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	g.Close() // idempotent, all fields nil now
	// A new group with the same ID can be built after Close released the
	// endpoint handlers.
	g2, err := peergroup.New(ep, peergroup.Config{ID: jid.FromSeed(jid.KindGroup, 5)})
	if err != nil {
		t.Fatalf("rebuild after close: %v", err)
	}
	g2.Close()
}
