// Package rendezvous implements JXTA rendezvous peers and their clients.
//
// Rendezvous (rdv) peers keep track of connected peers and bridge
// sub-networks: edge peers hold a renewable lease with one or more
// rendezvous, and messages propagated into the mesh fan out from
// rendezvous to their connected peers and on to neighbouring rendezvous,
// with TTL, path stamping and a duplicate cache suppressing loops.
//
// The Peer Discovery Protocol and the wire (propagated pipe) service both
// ride on Propagate.
package rendezvous

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous/replica"
	"github.com/tps-p2p/tps/internal/jxta/seen"
	"github.com/tps-p2p/tps/internal/obs"
	"github.com/tps-p2p/tps/internal/obs/trace"
	"github.com/tps-p2p/tps/internal/retry"
)

// ServiceName is the endpoint service name of the rendezvous protocol.
const ServiceName = "jxta.rdv"

// Message element names, namespace "rdv".
const (
	elemNS     = "rdv"
	elemOp     = "Op"
	elemDSvc   = "DSvc"
	elemDParam = "DParam"
	elemLease  = "Lease"
	elemIsRdv  = "IsRdv"
)

// Operations.
const (
	opConnect    = "connect"
	opLease      = "lease"
	opDisconnect = "disconnect"
	opProp       = "prop"
	opPing       = "ping"
	opPong       = "pong"
)

// Role of a peer in the rendezvous protocol.
type Role int

// Roles. Edge peers lease into the mesh; rendezvous peers form it.
const (
	RoleEdge Role = iota + 1
	RoleRendezvous
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleEdge:
		return "edge"
	case RoleRendezvous:
		return "rendezvous"
	default:
		return "role(?)"
	}
}

// Endpoint is the slice of the endpoint service the rendezvous protocol
// needs: sending, local delivery and handler registration. The frame
// methods let fanOut marshal a propagated message once and send the same
// bytes to every target instead of re-enveloping per peer.
type Endpoint interface {
	endpoint.Sender
	EncodeFrame(svc, param string, msg *message.Message) ([]byte, error)
	SendFrame(to endpoint.Address, frame []byte) error
	DeliverLocal(svc, param string, msg *message.Message, from endpoint.Address) error
	RegisterHandler(svc, param string, h endpoint.Handler) error
	UnregisterHandler(svc, param string)
}

// Config configures a rendezvous service instance.
type Config struct {
	// Role selects edge or rendezvous behaviour.
	Role Role
	// GroupParam scopes the protocol to one peer group; it becomes the
	// endpoint service parameter. A rendezvous peer may leave it empty
	// to serve every group with one instance (a wildcard rendezvous, the
	// normal configuration for a dedicated rendezvous daemon): clients
	// are then tracked per group and propagation stays group-scoped.
	GroupParam string
	// Seeds are addresses of rendezvous peers to connect to. Edge peers
	// need at least one to reach beyond their own process; rendezvous
	// peers use seeds to form a mesh with other rendezvous.
	Seeds []endpoint.Address
	// LeaseTTL is how long a granted lease lasts. Clients renew at a
	// third of the TTL. Zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Clock substitutes the time source (tests). Nil means time.Now.
	Clock func() time.Time
	// SuspectAfter is the number of consecutive send failures after
	// which a peer is marked suspect and probed with a ping. Zero means
	// DefaultSuspectAfter.
	SuspectAfter int
	// EvictAfter is the number of consecutive send failures after which
	// a peer is evicted from the connection tables and its address
	// breaker opens. Zero means DefaultEvictAfter.
	EvictAfter int
	// EvictCooldown is how long an evicted address stays behind the
	// breaker before sends and seed reconnects may resume. Zero means
	// DefaultEvictCooldown.
	EvictCooldown time.Duration
	// SeedBackoff shapes the retry curve for unreachable seeds. Zero
	// fields use retry defaults with Max capped at the lease TTL.
	SeedBackoff retry.Policy
	// Log, when set on a rendezvous-role service, makes propagation
	// durable: every message this peer fans out is appended to the
	// per-topic log first (stamped with its sequence number), and replay
	// requests from reconnecting subscribers are served from it. Nil —
	// the default — leaves the fire-and-forget hot path untouched.
	Log *eventlog.Log
	// Tracer, when set, archives a forward-stage hop record for every
	// propagated message that carries a trace element (stamped by the
	// publishing engine for sampled events). Untraced messages pay one
	// allocation-free element probe; nil skips even that.
	Tracer *trace.Store
	// ReplicaSeeds are the addresses of the other rendezvous in this
	// peer's replica set. A rendezvous-role service with a Log and
	// replica seeds runs the anti-entropy sync loop (sync.go): it
	// exchanges per-topic log digests with the replicas and pulls the
	// suffixes it is missing, so any one replica can serve another's
	// retained history after a crash. Replicas are not mesh-seeded with
	// each other; anti-entropy is the only replication path.
	ReplicaSeeds []endpoint.Address
	// SyncInterval is the anti-entropy digest cadence. Zero means
	// DefaultSyncInterval.
	SyncInterval time.Duration
	// ActiveStandby switches seed handling from "lease with every seed"
	// to "lease with exactly one": the active, initially Seeds[0], with
	// the rest as standbys. When the failure detector declares the
	// active dead (eviction breaker open, or EvictAfter consecutive
	// connect failures), the client re-leases against the next healthy
	// standby on the seed backoff curve and the engine's cursor
	// machinery replays the handover gap from the new replica. All
	// clients of a replica set must list the seeds in the same order so
	// they converge on the same active.
	ActiveStandby bool
}

// DefaultLeaseTTL is the lease duration granted by rendezvous peers.
const DefaultLeaseTTL = 30 * time.Second

// Failure-detection defaults.
const (
	DefaultSuspectAfter  = 2
	DefaultEvictAfter    = 4
	DefaultEvictCooldown = 30 * time.Second
	// seedFailFastAfter is the consecutive connect failures per seed
	// after which AwaitConnected gives up early: every seed has been
	// tried at least twice and the transport rejected each attempt.
	seedFailFastAfter = 2
)

// ErrNoPeers is returned by Propagate when no rendezvous or clients are
// connected, meaning the message reached nobody.
var ErrNoPeers = errors.New("rendezvous: no connected peers")

// ErrAllSendsFailed is returned by Propagate when peers were connected
// but every send to them failed: the message reached nobody, and unlike
// ErrNoPeers the mesh thinks it exists — a partition or mass failure.
var ErrAllSendsFailed = errors.New("rendezvous: all sends failed")

// Stats counts rendezvous activity.
//
// Deprecated: new introspection code should use Snapshot (the
// obs.Provider view); Stats remains for existing tests and tools.
type Stats struct {
	Propagated   int64 // messages this peer injected or forwarded
	Delivered    int64 // propagated messages delivered to local services
	Duplicates   int64 // propagated messages dropped by the seen-cache
	SendFailures int64 // per-peer propagation sends that errored
	SeedFailures int64 // seed connect attempts rejected by the transport
	Suspected    int64 // peers marked suspect after consecutive failures
	Probes       int64 // ping probes sent to suspect peers
	Evicted      int64 // peers evicted after sustained failure
	BreakerSkips int64 // sends/redials skipped while a breaker was open
	LeasesActive int   // currently connected clients (rendezvous role)
}

// rdvCounters is the lock-free internal form of Stats: the propagation
// hot path bumps these without taking s.mu.
type rdvCounters struct {
	propagated     atomic.Int64
	delivered      atomic.Int64
	duplicates     atomic.Int64
	sendFailures   atomic.Int64
	seedFailures   atomic.Int64
	suspected      atomic.Int64
	probes         atomic.Int64
	evicted        atomic.Int64
	breakerSkips   atomic.Int64
	replayRequests atomic.Int64 // replay ops sent (edge) or received (rdv)
	replayServed   atomic.Int64 // log entries resent to requesters
	replayGaps     atomic.Int64 // gap signals sent or received
	logFailures    atomic.Int64 // event-log appends that errored
	failovers      atomic.Int64 // active→standby re-elections (ActiveStandby)
	syncDigests    atomic.Int64 // anti-entropy digests received
	syncPulls      atomic.Int64 // pull requests served
	syncRecords    atomic.Int64 // records sent while serving pulls
	syncApplied    atomic.Int64 // pulled records applied to local copies
	syncDivergence atomic.Int64 // aligned segment ranges with mismatched CRCs
	syncRejects    atomic.Int64 // sync ops dropped: sender not a replica seed
	syncResets     atomic.Int64 // copies reset past an origin-side retention gap
}

type peerEntry struct {
	addr    endpoint.Address
	expires time.Time
	isRdv   bool
	// param is the group the client leased for; "" (wildcard rendezvous
	// mesh peers) receives every group's propagation.
	param string
}

// clientKey identifies a lease: one peer may lease separately for
// several groups.
type clientKey struct {
	id    jid.ID
	param string
}

// healthState tracks delivery failures per address. Addresses — not
// peer IDs — are the unit of reachability: they are what sends go to and
// what seed reconnects dial.
type healthState struct {
	fails       int       // consecutive send failures
	suspect     bool      // crossed SuspectAfter; being probed
	bannedUntil time.Time // breaker: evicted, no contact until then
}

// seedState throttles (re)connect attempts to one configured seed.
type seedState struct {
	fails int       // consecutive connect-send failures
	next  time.Time // do not retry before this instant
}

// Service is one peer's rendezvous protocol instance for one group.
type Service struct {
	ep           Endpoint
	cfg          Config
	now          func() time.Time
	seen         *seen.Cache
	lease        time.Duration
	suspectAfter int
	evictAfter   int
	cooldown     time.Duration
	seedPolicy   retry.Policy
	log          *eventlog.Log
	tracer       *trace.Store
	stats        rdvCounters

	gapMu sync.Mutex
	gapFn GapListener

	// store views the event log as replicated (origin, topic) streams;
	// set on every logging rendezvous so replay can serve copies, and
	// fed by the sync loop when ReplicaSeeds are configured.
	store     *replica.Store
	replMu    sync.Mutex
	replState map[endpoint.Address]*replicaPeer

	mu      sync.Mutex
	clients map[clientKey]peerEntry // connected to us (rendezvous role)
	rdvs    map[jid.ID]peerEntry    // we are connected to them (granted leases)
	health  map[endpoint.Address]*healthState
	seeds   []seedState // parallel to cfg.Seeds
	active  int         // index of the active seed (ActiveStandby mode)
	conn    *sync.Cond  // signals rdvs-set and seed-failure changes
	closed  bool

	wg   sync.WaitGroup
	stop chan struct{}
}

// New creates and starts the rendezvous service: it registers the
// protocol handler and, when seeds are configured, starts the lease
// maintenance loop.
func New(ep Endpoint, cfg Config) (*Service, error) {
	if cfg.Role != RoleEdge && cfg.Role != RoleRendezvous {
		return nil, fmt.Errorf("rendezvous: invalid role %d", cfg.Role)
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	lease := cfg.LeaseTTL
	if lease == 0 {
		lease = DefaultLeaseTTL
	}
	suspectAfter := cfg.SuspectAfter
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	evictAfter := cfg.EvictAfter
	if evictAfter <= 0 {
		evictAfter = DefaultEvictAfter
	}
	if evictAfter <= suspectAfter {
		evictAfter = suspectAfter + 1
	}
	cooldown := cfg.EvictCooldown
	if cooldown <= 0 {
		cooldown = DefaultEvictCooldown
	}
	seedPolicy := cfg.SeedBackoff
	if seedPolicy == (retry.Policy{}) {
		seedPolicy = retry.Policy{Max: lease}
	}
	s := &Service{
		ep:           ep,
		cfg:          cfg,
		now:          now,
		seen:         seen.New(),
		lease:        lease,
		suspectAfter: suspectAfter,
		evictAfter:   evictAfter,
		cooldown:     cooldown,
		seedPolicy:   seedPolicy,
		log:          cfg.Log,
		tracer:       cfg.Tracer,
		clients:      make(map[clientKey]peerEntry),
		rdvs:         make(map[jid.ID]peerEntry),
		health:       make(map[endpoint.Address]*healthState),
		seeds:        make([]seedState, len(cfg.Seeds)),
		stop:         make(chan struct{}),
	}
	s.conn = sync.NewCond(&s.mu)
	if cfg.Role == RoleRendezvous && cfg.Log != nil {
		s.store = replica.NewStore(cfg.Log, ep.PeerID())
		s.replState = make(map[endpoint.Address]*replicaPeer)
	}
	if err := ep.RegisterHandler(ServiceName, cfg.GroupParam, s.handle); err != nil {
		return nil, fmt.Errorf("rendezvous: register handler: %w", err)
	}
	// Seeded peers maintain leases; rendezvous additionally probe their
	// suspects even when they have no seeds of their own.
	if len(cfg.Seeds) > 0 || cfg.Role == RoleRendezvous {
		s.wg.Add(1)
		go s.maintainLoop()
	}
	if s.store != nil && len(cfg.ReplicaSeeds) > 0 {
		s.wg.Add(1)
		go s.syncLoop()
	}
	return s, nil
}

// Role returns the configured role.
func (s *Service) Role() Role { return s.cfg.Role }

// ActiveStandby reports whether this client runs the active/standby
// failover seed mode. The engine's replay loop uses it to decide
// whether foreign-origin cursors are worth presenting: only a failover
// client ever re-homes to a replica serving a dead origin's copy.
func (s *Service) ActiveStandby() bool { return s.cfg.ActiveStandby }

// Seeded reports whether the service was configured with seed
// rendezvous: unseeded peers never hold leases and rely on loopback
// only.
func (s *Service) Seeded() bool { return len(s.cfg.Seeds) > 0 }

// Close stops lease maintenance, tells our rendezvous we are leaving and
// unregisters the handler.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	rdvs := s.snapshotLocked(s.rdvs)
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	for _, e := range rdvs {
		bye := message.New(s.ep.PeerID())
		bye.AddString(elemNS, elemOp, opDisconnect)
		_ = s.ep.Send(e.addr, ServiceName, s.cfg.GroupParam, bye)
	}
	s.ep.UnregisterHandler(ServiceName, s.cfg.GroupParam)
}

// ConnectedRendezvous returns the IDs of rendezvous peers we hold leases
// with.
func (s *Service) ConnectedRendezvous() []jid.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	return keysLocked(s.rdvs)
}

// ConnectedClients returns the IDs of peers leased to us (rendezvous
// role), across all groups, without duplicates.
func (s *Service) ConnectedClients() []jid.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	seen := make(map[jid.ID]struct{}, len(s.clients))
	out := make([]jid.ID, 0, len(s.clients))
	for k := range s.clients {
		if _, dup := seen[k.id]; dup {
			continue
		}
		seen[k.id] = struct{}{}
		out = append(out, k.id)
	}
	return out
}

// DirectAddress returns an address this peer can currently reach id at:
// a leased client, a rendezvous we lease with, or nothing. It implements
// the router's AddressBook so relay peers can forward to their clients.
func (s *Service) DirectAddress(id jid.ID) (endpoint.Address, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	for k, e := range s.clients {
		if k.id == id {
			return e.addr, true
		}
	}
	if e, ok := s.rdvs[id]; ok {
		return e.addr, true
	}
	return "", false
}

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Propagated:   s.stats.propagated.Load(),
		Delivered:    s.stats.delivered.Load(),
		Duplicates:   s.stats.duplicates.Load(),
		SendFailures: s.stats.sendFailures.Load(),
		SeedFailures: s.stats.seedFailures.Load(),
		Suspected:    s.stats.suspected.Load(),
		Probes:       s.stats.probes.Load(),
		Evicted:      s.stats.evicted.Load(),
		BreakerSkips: s.stats.breakerSkips.Load(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	st.LeasesActive = len(s.clients)
	return st
}

// Snapshot implements obs.Provider.
func (s *Service) Snapshot() obs.Snapshot {
	s.mu.Lock()
	s.expireLocked()
	leases := len(s.clients)
	connected := len(s.rdvs)
	now := s.now()
	suspects, breakers := 0, 0
	for _, h := range s.health {
		if h.suspect {
			suspects++
		}
		if now.Before(h.bannedUntil) {
			breakers++
		}
	}
	s.mu.Unlock()
	return obs.Snapshot{
		Name:    "rendezvous",
		Version: 1,
		Counters: map[string]int64{
			"propagated":      s.stats.propagated.Load(),
			"delivered":       s.stats.delivered.Load(),
			"duplicates":      s.stats.duplicates.Load(),
			"send_failures":   s.stats.sendFailures.Load(),
			"seed_failures":   s.stats.seedFailures.Load(),
			"suspected":       s.stats.suspected.Load(),
			"probes":          s.stats.probes.Load(),
			"evicted":         s.stats.evicted.Load(),
			"breaker_skips":   s.stats.breakerSkips.Load(),
			"replay_requests": s.stats.replayRequests.Load(),
			"replay_served":   s.stats.replayServed.Load(),
			"replay_gaps":     s.stats.replayGaps.Load(),
			"log_failures":    s.stats.logFailures.Load(),
			"failovers":       s.stats.failovers.Load(),
			"sync_digests":    s.stats.syncDigests.Load(),
			"sync_pulls":      s.stats.syncPulls.Load(),
			"sync_records":    s.stats.syncRecords.Load(),
			"sync_applied":    s.stats.syncApplied.Load(),
			"sync_divergence": s.stats.syncDivergence.Load(),
			"sync_rejects":    s.stats.syncRejects.Load(),
			"sync_resets":     s.stats.syncResets.Load(),
		},
		Gauges: map[string]float64{
			"leases":        float64(leases),
			"connected":     float64(connected),
			"suspects":      float64(suspects),
			"breakers_open": float64(breakers),
		},
	}
}

// SeenCache exposes the propagation duplicate cache for the "seen"
// subsystem aggregation.
func (s *Service) SeenCache() *seen.Cache { return s.seen }

// PeersView lists every peer this service knows about — rendezvous we
// lease with, clients leased to us, and the configured seeds — together
// with the failure detector's per-address state. It feeds /peers on the
// admin surface.
func (s *Service) PeersView() []obs.PeerEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	now := s.now()
	out := make([]obs.PeerEntry, 0, len(s.rdvs)+len(s.clients)+len(s.cfg.Seeds))
	for id, e := range s.rdvs {
		pe := obs.PeerEntry{
			ID:          id.String(),
			Addr:        string(e.addr),
			Kind:        obs.PeerRendezvous,
			Group:       e.param,
			ExpiresInMS: remainingMS(e.expires, now),
		}
		s.fillHealthLocked(&pe, e.addr, now)
		out = append(out, pe)
	}
	for k, e := range s.clients {
		pe := obs.PeerEntry{
			ID:          k.id.String(),
			Addr:        string(e.addr),
			Kind:        obs.PeerClient,
			Group:       k.param,
			ExpiresInMS: remainingMS(e.expires, now),
		}
		s.fillHealthLocked(&pe, e.addr, now)
		out = append(out, pe)
	}
	for i, addr := range s.cfg.Seeds {
		pe := obs.PeerEntry{
			Addr:   string(addr),
			Kind:   obs.PeerSeed,
			Fails:  s.seeds[i].fails,
			Active: s.cfg.ActiveStandby && i == s.active,
		}
		// Leased is the per-seed connection truth AwaitConnected cannot
		// give: it reports whether a lease is currently held with THIS
		// seed, so operators can see that e.g. the only logging
		// rendezvous is down while some other seed keeps the peer
		// nominally "connected".
		for _, e := range s.rdvs {
			if e.addr == addr {
				pe.Leased = true
				break
			}
		}
		s.fillHealthLocked(&pe, addr, now)
		out = append(out, pe)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// fillHealthLocked copies the failure-detector state of addr into pe.
// Seed entries keep their own connect-failure count when the address
// has no send-side health record.
func (s *Service) fillHealthLocked(pe *obs.PeerEntry, addr endpoint.Address, now time.Time) {
	h, ok := s.health[addr]
	if !ok {
		return
	}
	if h.fails > pe.Fails {
		pe.Fails = h.fails
	}
	pe.Suspect = h.suspect
	pe.BreakerOpenMS = remainingMS(h.bannedUntil, now)
}

// remainingMS returns how many milliseconds remain until t, or 0 when t
// is zero or past.
func remainingMS(t, now time.Time) int64 {
	if t.IsZero() || !t.After(now) {
		return 0
	}
	return t.Sub(now).Milliseconds()
}

// AwaitConnected blocks until this peer holds a lease with at least one
// rendezvous, or the timeout elapses. It reports success. Peers with no
// seeds are never "connected". It fails fast — without spinning out the
// timeout — once every configured seed has rejected at least
// seedFailFastAfter consecutive connect attempts at the transport layer
// (all seeds unreachable).
//
// Contract under mixed seed health: "connected" means AT LEAST ONE
// lease, not one per seed. A peer whose only logging (replay-serving)
// rendezvous is down while another seed answers still reports
// connected, with replay silently unavailable until the logging seed
// recovers. Callers that need a particular seed must check the
// per-seed Leased flag in PeersView (surfaced through Inspect() and
// the /peers admin endpoint) rather than infer it from this method. In
// ActiveStandby mode only the elected active is ever leased with, so
// exactly one seed entry shows Leased when healthy.
func (s *Service) AwaitConnected(timeout time.Duration) bool {
	deadline := s.now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.conn.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.expireLocked()
		if len(s.rdvs) > 0 {
			return true
		}
		if s.closed || !s.now().Before(deadline) {
			return false
		}
		if s.allSeedsUnreachableLocked() {
			return false
		}
		s.conn.Wait()
	}
}

// allSeedsUnreachableLocked reports whether every configured seed has
// accumulated enough consecutive transport-level connect failures to be
// considered unreachable.
func (s *Service) allSeedsUnreachableLocked() bool {
	if len(s.seeds) == 0 {
		return false
	}
	now := s.now()
	for i := range s.seeds {
		if s.seeds[i].fails >= seedFailFastAfter {
			continue
		}
		if h := s.health[s.cfg.Seeds[i]]; h != nil && now.Before(h.bannedUntil) {
			continue // evicted and cooling down counts as unreachable
		}
		return false
	}
	return true
}

// Propagate fans msg out into the mesh, addressed to the (dsvc, dparam)
// service on every reachable peer in the group. The local peer is NOT
// delivered to — callers decide whether to loop back. Returns ErrNoPeers
// if there was nobody to send to.
func (s *Service) Propagate(msg *message.Message, dsvc, dparam string) error {
	// Dup is an O(1) copy-on-write header copy: the caller's payload
	// elements are shared read-only, and the first ReplaceElement below
	// clones only the element headers before writing the rdv envelope.
	out := msg.Dup()
	out.ReplaceElement(message.Element{Namespace: elemNS, Name: elemOp, Data: []byte(opProp)})
	out.ReplaceElement(message.Element{Namespace: elemNS, Name: elemDSvc, Data: []byte(dsvc)})
	out.ReplaceElement(message.Element{Namespace: elemNS, Name: elemDParam, Data: []byte(dparam)})
	if !out.Stamp(s.ep.PeerID()) {
		return nil // TTL exhausted before leaving the peer
	}
	// Remember our own injection so the mesh echo is dropped.
	s.seen.Observe(out.ID)
	// Durable path: number and persist the message before it leaves, so
	// a subscriber that is offline right now can replay it later.
	if s.log != nil && s.cfg.Role == RoleRendezvous {
		s.appendToLog(out, s.cfg.GroupParam)
	}
	s.recordForward(out)

	attempted, failed := s.fanOut(out, jid.Nil, s.cfg.GroupParam)
	s.stats.propagated.Add(1)
	if attempted == 0 {
		return ErrNoPeers
	}
	if failed == attempted {
		return fmt.Errorf("%w (%d peers)", ErrAllSendsFailed, failed)
	}
	return nil
}

// fanOut sends the stamped message to every connected peer in the given
// group except the one it came from, any peer already on its path, and
// any address whose eviction breaker is still open. It returns how many
// sends were attempted and how many of those failed, so callers can
// tell "nobody to send to" apart from "everybody unreachable". Failed
// sends feed the suspect/evict failure accounting.
func (s *Service) fanOut(msg *message.Message, except jid.ID, param string) (attempted, failed int) {
	s.mu.Lock()
	s.expireLocked()
	now := s.now()
	type target struct {
		id   jid.ID
		addr endpoint.Address
	}
	targets := make([]target, 0, len(s.clients)+len(s.rdvs))
	// The dedupe map only matters when client leases exist: one peer may
	// lease for several groups, or lease while also being a rendezvous we
	// connect to. Pure mesh forwarding (no clients — every edge peer, and
	// rendezvous between lease arrivals) skips the allocation; reads from
	// the nil map below are safe and always miss.
	var seenIDs map[jid.ID]struct{}
	if len(s.clients) > 0 {
		seenIDs = make(map[jid.ID]struct{}, len(s.clients)+len(s.rdvs))
		for k, e := range s.clients {
			// Group scoping: a client leased for group X must not receive
			// group Y traffic. Wildcard entries ("") are mesh peers that
			// forward everything.
			if e.param != "" && param != "" && e.param != param {
				continue
			}
			if _, dup := seenIDs[k.id]; dup {
				continue
			}
			if h := s.health[e.addr]; h != nil && now.Before(h.bannedUntil) {
				s.stats.breakerSkips.Add(1)
				continue
			}
			seenIDs[k.id] = struct{}{}
			targets = append(targets, target{k.id, e.addr})
		}
	}
	for id, e := range s.rdvs {
		// IDs are unique within rdvs; only a client/rdv overlap can dup.
		if _, dup := seenIDs[id]; dup {
			continue
		}
		if h := s.health[e.addr]; h != nil && now.Before(h.bannedUntil) {
			s.stats.breakerSkips.Add(1)
			continue
		}
		targets = append(targets, target{id, e.addr})
	}
	s.mu.Unlock()

	// Marshal once: every target receives the identical frame, so the
	// envelope-and-encode work must not be repeated per peer.
	var frame []byte
	var probes []endpoint.Address
	for _, t := range targets {
		if t.id == except || msg.Visited(t.id) {
			continue
		}
		if frame == nil {
			var err error
			if frame, err = s.ep.EncodeFrame(ServiceName, param, msg); err != nil {
				return 0, 0
			}
			defer endpoint.RecycleFrame(frame)
		}
		attempted++
		if err := s.ep.SendFrame(t.addr, frame); err != nil {
			// Unreachable peers age out via lease expiry; the failure
			// accounting gets them suspected, probed and evicted sooner.
			failed++
			s.stats.sendFailures.Add(1)
			if s.noteFailure(t.addr) {
				probes = append(probes, t.addr)
			}
			continue
		}
		s.noteSuccess(t.addr)
	}
	// Probe outside the send loop: a probe is itself a send and must not
	// distort this fan-out's accounting.
	for _, addr := range probes {
		s.probe(addr)
	}
	return attempted, failed
}

// noteFailure records a send failure against addr. It reports whether
// the address just crossed the suspect threshold (the caller should
// probe it). Crossing the evict threshold removes every client and
// rendezvous entry behind the address and opens its breaker for the
// cooldown, so dead peers are not redialed on every fan-out.
func (s *Service) noteFailure(addr endpoint.Address) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	h := s.health[addr]
	if h == nil {
		h = &healthState{}
		s.health[addr] = h
	}
	h.fails++
	becameSuspect := false
	if !h.suspect && h.fails >= s.suspectAfter {
		h.suspect = true
		s.stats.suspected.Add(1)
		becameSuspect = true
	}
	if h.fails >= s.evictAfter {
		s.evictLocked(addr, h)
		return false
	}
	return becameSuspect
}

// noteSuccess clears any failure state for addr: proof of life resets
// the suspect counter and closes the breaker.
func (s *Service) noteSuccess(addr endpoint.Address) {
	s.mu.Lock()
	if _, ok := s.health[addr]; ok {
		delete(s.health, addr)
	}
	s.mu.Unlock()
}

// evictLocked drops every connection-table entry behind addr and opens
// the address's breaker for the cooldown.
func (s *Service) evictLocked(addr endpoint.Address, h *healthState) {
	for k, e := range s.clients {
		if e.addr == addr {
			delete(s.clients, k)
		}
	}
	for id, e := range s.rdvs {
		if e.addr == addr {
			delete(s.rdvs, id)
		}
	}
	h.fails = 0
	h.suspect = false
	h.bannedUntil = s.now().Add(s.cooldown)
	s.stats.evicted.Add(1)
}

// probe sends a lightweight ping to a suspect address. A live peer
// answers with a pong, which clears its failure state; a dead one keeps
// accumulating failures until eviction.
func (s *Service) probe(addr endpoint.Address) {
	ping := message.New(s.ep.PeerID())
	ping.AddString(elemNS, elemOp, opPing)
	s.stats.probes.Add(1)
	if err := s.ep.Send(addr, ServiceName, s.cfg.GroupParam, ping); err != nil {
		s.stats.sendFailures.Add(1)
		// noteFailure only reports a suspect transition once, so a
		// failed probe advances toward eviction without re-probing.
		_ = s.noteFailure(addr)
	}
}

// probeSuspects pings every suspect address that is not behind an open
// breaker. Called from the maintenance loop.
func (s *Service) probeSuspects() {
	s.mu.Lock()
	now := s.now()
	var addrs []endpoint.Address
	for addr, h := range s.health {
		if h.suspect && !now.Before(h.bannedUntil) {
			addrs = append(addrs, addr)
			continue
		}
		// Prune entries whose breaker expired with no fresh failures:
		// the peer is gone and nothing references the address anymore.
		if !h.suspect && h.fails == 0 && !h.bannedUntil.IsZero() && now.After(h.bannedUntil) {
			delete(s.health, addr)
		}
	}
	s.mu.Unlock()
	for _, addr := range addrs {
		s.probe(addr)
	}
}

// handle processes rendezvous protocol messages.
func (s *Service) handle(msg *message.Message, from endpoint.Address) {
	switch msg.Text(elemNS, elemOp) {
	case opConnect:
		s.handleConnect(msg, from)
	case opLease:
		s.handleLease(msg, from)
	case opDisconnect:
		s.handleDisconnect(msg)
	case opProp:
		s.handleProp(msg, from)
	case opPing:
		s.handlePing(msg, from)
	case opPong:
		s.handlePong(from)
	case opReplay:
		s.handleReplay(msg, from)
	case opGap:
		s.handleGap(msg)
	case opSyncDigest:
		s.handleSyncDigest(msg, from)
	case opSyncPull:
		s.handleSyncPull(msg, from)
	case opSyncRec:
		s.handleSyncRec(msg, from)
	}
}

// handlePing answers a liveness probe. Any role answers: probing works
// edge→rendezvous and rendezvous→client alike.
func (s *Service) handlePing(msg *message.Message, from endpoint.Address) {
	pong := message.New(s.ep.PeerID())
	pong.AddString(elemNS, elemOp, opPong)
	_ = s.ep.Send(from, ServiceName, s.incomingParam(msg), pong)
}

// handlePong clears the sender's failure state: the suspect is alive.
func (s *Service) handlePong(from endpoint.Address) {
	s.noteSuccess(from)
}

func (s *Service) handleConnect(msg *message.Message, from endpoint.Address) {
	if s.cfg.Role != RoleRendezvous {
		return // edge peers do not grant leases
	}
	isRdv := msg.Text(elemNS, elemIsRdv) == "true"
	// The lease is scoped to the group the client addressed: a wildcard
	// rendezvous receives connects for many groups through its ("", svc)
	// fallback handler.
	param := s.incomingParam(msg)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.clients[clientKey{msg.Src, param}] = peerEntry{
		addr:    from,
		expires: s.now().Add(s.lease),
		isRdv:   isRdv,
		param:   param,
	}
	s.mu.Unlock()
	// An inbound connect is proof of life: whatever suspicion (or stale
	// eviction ban) the address carried is obsolete.
	s.noteSuccess(from)

	grant := message.New(s.ep.PeerID())
	grant.AddString(elemNS, elemOp, opLease)
	grant.AddString(elemNS, elemLease, strconv.FormatInt(int64(s.lease/time.Millisecond), 10))
	_ = s.ep.Send(from, ServiceName, param, grant)
}

// incomingParam recovers the group parameter a message was addressed to
// on this hop, falling back to our own configured group.
func (s *Service) incomingParam(msg *message.Message) string {
	if _, param, err := endpoint.Destination(msg); err == nil && param != "" {
		return param
	}
	return s.cfg.GroupParam
}

func (s *Service) handleLease(msg *message.Message, from endpoint.Address) {
	ttlMS, err := strconv.ParseInt(msg.Text(elemNS, elemLease), 10, 64)
	if err != nil || ttlMS <= 0 {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.rdvs[msg.Src] = peerEntry{
		addr:    from,
		expires: s.now().Add(time.Duration(ttlMS) * time.Millisecond),
		isRdv:   true,
	}
	s.conn.Broadcast()
	s.mu.Unlock()
	// A granted lease is proof of life for the rendezvous's address.
	s.noteSuccess(from)
}

func (s *Service) handleDisconnect(msg *message.Message) {
	param := s.incomingParam(msg)
	s.mu.Lock()
	delete(s.clients, clientKey{msg.Src, param})
	s.mu.Unlock()
}

func (s *Service) handleProp(msg *message.Message, from endpoint.Address) {
	if !s.seen.Observe(msg.ID) {
		s.stats.duplicates.Add(1)
		return
	}
	dsvc := msg.Text(elemNS, elemDSvc)
	dparam := msg.Text(elemNS, elemDParam)
	if dsvc == "" {
		return
	}
	if err := s.ep.DeliverLocal(dsvc, dparam, msg, from); err == nil {
		s.stats.delivered.Add(1)
	}
	// Forward deeper into the mesh. Edge peers terminate propagation;
	// only rendezvous fan out.
	if s.cfg.Role != RoleRendezvous {
		return
	}
	// COW Dup: forwarding deeper shares the delivered message's elements;
	// only the per-hop path/TTL state is copied before stamping.
	fwd := msg.Dup()
	if !fwd.Stamp(s.ep.PeerID()) {
		return
	}
	param := s.incomingParam(msg)
	if s.log != nil {
		// Re-number under this peer's own log: cursors are per origin,
		// and this rendezvous is now an origin for its subscribers.
		s.appendToLog(fwd, param)
	}
	s.recordForward(fwd)
	s.stats.propagated.Add(1)
	s.fanOut(fwd, msg.Src, param)
}

// recordForward archives a forward-stage hop for messages carrying a
// trace element. The stamped Path at this moment shows exactly which
// peers the frame crossed to get here. No-op without a tracer; with
// one, untraced messages cost a single allocation-free element scan.
func (s *Service) recordForward(msg *message.Message) {
	if s.tracer == nil {
		return
	}
	if ev, sentUS, ok := trace.Info(msg); ok {
		s.tracer.Record(ev, trace.StageForward, s.ep.PeerID(), sentUS, msg.Path)
	}
}

// maintainLoop keeps leases with seed rendezvous alive (renewing at a
// third of the TTL, backing off per unreachable seed) and probes
// suspect peers.
func (s *Service) maintainLoop() {
	defer s.wg.Done()
	s.connectSeeds()
	interval := s.lease / 3
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.connectSeeds()
			s.probeSuspects()
		case <-s.stop:
			return
		}
	}
}

// connectSeeds sends a connect (which doubles as lease renewal) to every
// configured seed that is neither behind an eviction breaker nor inside
// its failure backoff window. Transport-level failures are counted and
// push the seed's next attempt out on the retry curve, instead of
// hammering a dead seed on every tick. In ActiveStandby mode only the
// elected active seed is leased with; the rest stay cold standbys.
func (s *Service) connectSeeds() {
	if s.cfg.ActiveStandby && len(s.cfg.Seeds) > 0 {
		s.connectActive()
		return
	}
	for i := range s.cfg.Seeds {
		s.connectSeed(i)
	}
}

// connectActive is the failover state machine: renew the lease with the
// current active seed, unless the failure detector has declared it dead
// — then elect the next healthy standby (round-robin from the dead
// active), clear its backoff so the re-lease is immediate, and renew
// with it instead. Clients sharing a seed order walk the same sequence
// of actives, so a replica set's clients converge on one primary.
func (s *Service) connectActive() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	idx := s.active
	if s.activeDeadLocked(idx) {
		if next, ok := s.pickStandbyLocked(idx); ok {
			s.active = next
			s.seeds[next] = seedState{}
			s.stats.failovers.Add(1)
			idx = next
		}
	}
	s.mu.Unlock()
	s.connectSeed(idx)
}

// activeDeadLocked reports whether the failure detector has declared
// seed i dead: its address breaker is open (the send-path suspect→
// probe→evict sequence ran its course) or EvictAfter consecutive
// connect attempts were rejected by the transport.
func (s *Service) activeDeadLocked(i int) bool {
	if h := s.health[s.cfg.Seeds[i]]; h != nil && s.now().Before(h.bannedUntil) {
		return true
	}
	return s.seeds[i].fails >= s.evictAfter
}

// pickStandbyLocked chooses the next standby after a dead active,
// skipping seeds that are themselves behind an open breaker.
func (s *Service) pickStandbyLocked(from int) (int, bool) {
	now := s.now()
	for off := 1; off < len(s.cfg.Seeds); off++ {
		j := (from + off) % len(s.cfg.Seeds)
		if h := s.health[s.cfg.Seeds[j]]; h != nil && now.Before(h.bannedUntil) {
			continue
		}
		return j, true
	}
	return 0, false
}

// connectSeed sends one connect/renewal to seed i unless its breaker is
// open or its failure backoff window has not yet elapsed.
func (s *Service) connectSeed(i int) {
	seed := s.cfg.Seeds[i]
	now := s.now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if h := s.health[seed]; h != nil && now.Before(h.bannedUntil) {
		s.mu.Unlock()
		s.stats.breakerSkips.Add(1)
		return
	}
	if now.Before(s.seeds[i].next) {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	req := message.New(s.ep.PeerID())
	req.AddString(elemNS, elemOp, opConnect)
	if s.cfg.Role == RoleRendezvous {
		req.AddString(elemNS, elemIsRdv, "true")
	}
	err := s.ep.Send(seed, ServiceName, s.cfg.GroupParam, req)
	s.mu.Lock()
	if err != nil {
		s.stats.seedFailures.Add(1)
		s.seeds[i].fails++
		s.seeds[i].next = now.Add(s.seedPolicy.Backoff(s.seeds[i].fails))
		// Wake AwaitConnected so its all-seeds-unreachable check
		// runs as soon as the evidence is in.
		s.conn.Broadcast()
	} else {
		s.seeds[i].fails = 0
		s.seeds[i].next = time.Time{}
	}
	s.mu.Unlock()
}

func (s *Service) expireLocked() {
	now := s.now()
	for k, e := range s.clients {
		if now.After(e.expires) {
			delete(s.clients, k)
		}
	}
	for id, e := range s.rdvs {
		if now.After(e.expires) {
			delete(s.rdvs, id)
		}
	}
}

func (s *Service) snapshotLocked(m map[jid.ID]peerEntry) []peerEntry {
	out := make([]peerEntry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	return out
}

func keysLocked(m map[jid.ID]peerEntry) []jid.ID {
	out := make([]jid.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}
