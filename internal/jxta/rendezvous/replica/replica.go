// Package replica is the anti-entropy half of rendezvous replication:
// the digest format peers in a replica set exchange, and the store that
// keeps byte-identical copies of other replicas' per-topic event logs
// alongside this peer's own.
//
// The protocol is pull-based and convergent. Every sync interval each
// replica sends the others a digest of every (origin, topic) log stream
// it holds — the highest contiguous sequence plus per-segment CRC-32C
// checksums over the eventlog's Castagnoli-checked records. A receiver
// that is behind on some stream pulls the missing suffix from whoever
// is ahead and applies the records verbatim (same sequence, timestamp
// and payload) with eventlog.AppendExact, so converged copies are
// byte-identical on disk and the segment checksums prove it. Matched
// sequence ranges whose checksums differ are counted as divergence —
// the verifiable-digest property — rather than silently overwritten.
//
// The wire plumbing (who to sync with, which ops carry digests, pulls
// and records) lives in the rendezvous package; this package owns the
// digest codec and the replicated-log bookkeeping, so both halves are
// testable in isolation.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// keyPrefix namespaces replicated copies inside the shared event log:
// this peer's own streams keep their bare topic keys, a copy of another
// peer's stream is stored under "r|<origin-urn>|<topic>".
const keyPrefix = "r|"

// TopicKey returns the event-log key a copy of origin's stream for
// topic is stored under.
func TopicKey(origin jid.ID, topic string) string {
	return keyPrefix + origin.String() + "|" + topic
}

// ParseKey reverses TopicKey. ok is false for keys that are not
// replicated copies (this peer's own topics among them).
func ParseKey(key string) (origin jid.ID, topic string, ok bool) {
	rest, found := strings.CutPrefix(key, keyPrefix)
	if !found {
		return jid.Nil, "", false
	}
	urn, topic, found := strings.Cut(rest, "|")
	if !found {
		return jid.Nil, "", false
	}
	origin, err := jid.Parse(urn)
	if err != nil {
		return jid.Nil, "", false
	}
	return origin, topic, true
}

// TopicDigest describes one (origin, topic) log stream for anti-entropy
// comparison: who numbered it, the highest contiguous sequence held,
// and checksums over the retained segments.
type TopicDigest struct {
	Origin   jid.ID
	Topic    string
	Last     uint64
	Segments []eventlog.SegmentDigest
}

// digestVersion guards the binary digest encoding.
const digestVersion = 1

// ErrBadDigest is returned by DecodeDigest for malformed input.
var ErrBadDigest = errors.New("replica: malformed digest")

// EncodeDigest renders digests into the compact binary element body a
// sync message carries: version byte, then per entry the origin's wire
// ID, the topic (uvarint length prefix), the last sequence and the
// segment checksum list.
func EncodeDigest(ds []TopicDigest) []byte {
	buf := make([]byte, 0, 64*len(ds)+1)
	buf = append(buf, digestVersion)
	buf = binary.AppendUvarint(buf, uint64(len(ds)))
	for _, d := range ds {
		buf = d.Origin.AppendWire(buf)
		buf = binary.AppendUvarint(buf, uint64(len(d.Topic)))
		buf = append(buf, d.Topic...)
		buf = binary.AppendUvarint(buf, d.Last)
		buf = binary.AppendUvarint(buf, uint64(len(d.Segments)))
		for _, s := range d.Segments {
			buf = binary.AppendUvarint(buf, s.FirstSeq)
			buf = binary.AppendUvarint(buf, s.LastSeq)
			buf = binary.BigEndian.AppendUint32(buf, s.CRC)
		}
	}
	return buf
}

// DecodeDigest reverses EncodeDigest.
func DecodeDigest(b []byte) ([]TopicDigest, error) {
	if len(b) == 0 || b[0] != digestVersion {
		return nil, ErrBadDigest
	}
	b = b[1:]
	count, b, err := takeUvarint(b)
	if err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, ErrBadDigest
	}
	out := make([]TopicDigest, 0, count)
	for i := uint64(0); i < count; i++ {
		var d TopicDigest
		if len(b) < jid.WireSize {
			return nil, ErrBadDigest
		}
		var uuid [16]byte
		copy(uuid[:], b[1:jid.WireSize])
		if d.Origin, err = jid.FromWire(b[0], uuid); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadDigest, err)
		}
		b = b[jid.WireSize:]
		var n uint64
		if n, b, err = takeUvarint(b); err != nil {
			return nil, err
		}
		if uint64(len(b)) < n {
			return nil, ErrBadDigest
		}
		d.Topic = string(b[:n])
		b = b[n:]
		if d.Last, b, err = takeUvarint(b); err != nil {
			return nil, err
		}
		var segs uint64
		if segs, b, err = takeUvarint(b); err != nil {
			return nil, err
		}
		if segs > 1<<20 {
			return nil, ErrBadDigest
		}
		for j := uint64(0); j < segs; j++ {
			var s eventlog.SegmentDigest
			if s.FirstSeq, b, err = takeUvarint(b); err != nil {
				return nil, err
			}
			if s.LastSeq, b, err = takeUvarint(b); err != nil {
				return nil, err
			}
			if len(b) < 4 {
				return nil, ErrBadDigest
			}
			s.CRC = binary.BigEndian.Uint32(b[:4])
			b = b[4:]
			d.Segments = append(d.Segments, s)
		}
		out = append(out, d)
	}
	return out, nil
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrBadDigest
	}
	return v, b[n:], nil
}

// Diverged reports whether two digests of the same stream disagree on
// the content of a sequence range both fully retain: a sealed segment
// present on both sides with the same (first, last) range but a
// different checksum. Replicas converge from the same record stream
// with the same retention config, so aligned ranges must match; a
// mismatch means one copy is corrupt or the streams forked.
func Diverged(a, b []eventlog.SegmentDigest) bool {
	byRange := make(map[[2]uint64]uint32, len(a))
	for _, s := range a {
		byRange[[2]uint64{s.FirstSeq, s.LastSeq}] = s.CRC
	}
	for _, s := range b {
		if crc, ok := byRange[[2]uint64{s.FirstSeq, s.LastSeq}]; ok && crc != s.CRC {
			return true
		}
	}
	return false
}

// Store is one peer's view of the replicated logs: its own streams
// (origin == self, bare topic keys) plus the copies of other replicas'
// streams it maintains, all inside the one eventlog.
type Store struct {
	log  *eventlog.Log
	self jid.ID
}

// NewStore wraps the peer's event log for replication bookkeeping.
func NewStore(log *eventlog.Log, self jid.ID) *Store {
	return &Store{log: log, self: self}
}

// key routes an (origin, topic) stream to its event-log key: this
// peer's own streams live under the bare topic.
func (st *Store) key(origin jid.ID, topic string) string {
	if origin == st.self {
		return topic
	}
	return TopicKey(origin, topic)
}

// Last returns the highest contiguous sequence held for the stream, 0
// when nothing is held. Both own streams and copies are contiguous by
// construction (Append numbers densely, AppendExact refuses holes), so
// the retained tail is the contiguous tail.
func (st *Store) Last(origin jid.ID, topic string) uint64 {
	_, last, ok := st.log.Range(st.key(origin, topic))
	if !ok {
		return 0
	}
	return last
}

// Holds reports whether any records of the stream are held.
func (st *Store) Holds(origin jid.ID, topic string) bool {
	_, _, ok := st.log.Range(st.key(origin, topic))
	return ok
}

// Key exposes the event-log key serving the stream, for callers that
// read it directly (replay serving).
func (st *Store) Key(origin jid.ID, topic string) string {
	return st.key(origin, topic)
}

// Digest summarises every stream this peer holds — own topics under
// their origin (self), replicated copies under theirs.
func (st *Store) Digest() []TopicDigest {
	var out []TopicDigest
	for _, key := range st.log.Topics() {
		origin, topic, isCopy := ParseKey(key)
		if !isCopy {
			origin, topic = st.self, key
		}
		_, last, ok := st.log.Range(key)
		if !ok {
			continue
		}
		out = append(out, TopicDigest{
			Origin:   origin,
			Topic:    topic,
			Last:     last,
			Segments: st.log.SegmentDigests(key),
		})
	}
	return out
}

// Range reports the retained sequence range held for the stream.
func (st *Store) Range(origin jid.ID, topic string) (first, last uint64, ok bool) {
	return st.log.Range(st.key(origin, topic))
}

// Apply stores one pulled record of origin's stream. Records must
// arrive in order: a non-contiguous sequence is normally skipped
// (applied=false, no error) and the next digest round re-pulls from the
// contiguous tail — at-least-once transfer, exactly-once application.
// Sequences at or below the held tail are duplicates and likewise
// skipped.
//
// srcFirst is the first sequence the serving replica still retains for
// the stream (0 when unknown). When it lies beyond this copy's next
// sequence, the records bridging the copy's tail to srcFirst were
// trimmed by retention on the serving side and can never arrive —
// skipping would re-pull the same batch every sync round forever. The
// copy is reset and restarted at the pulled record instead (reset=true,
// for the caller's gap accounting), exactly as a fresh copy starts at
// the source's retained head.
func (st *Store) Apply(origin jid.ID, topic string, seq uint64, timeMS int64, payload []byte, srcFirst uint64) (applied, reset bool, err error) {
	if origin == st.self {
		// Our own log is authoritative; never let an echo rewrite it.
		return false, false, nil
	}
	key := TopicKey(origin, topic)
	err = st.log.AppendExact(key, seq, timeMS, payload)
	if !errors.Is(err, eventlog.ErrOutOfOrder) {
		return err == nil, false, err
	}
	_, last, held := st.log.Range(key)
	if !held || srcFirst <= last+1 || seq < srcFirst {
		// Duplicate, or a transient reorder the next digest round
		// re-pulls from the contiguous tail: skip without error.
		return false, false, nil
	}
	// Retention gap on the serving side: nothing bridges (last, srcFirst).
	if _, err = st.log.Reset(key); err != nil {
		return false, false, err
	}
	err = st.log.AppendExact(key, seq, timeMS, payload)
	return err == nil, true, err
}

// Read streams held records of the stream after the given sequence, up
// to max (0 for all), in order.
func (st *Store) Read(origin jid.ID, topic string, after uint64, max int, fn func(eventlog.Entry) error) error {
	return st.log.Read(st.key(origin, topic), after, max, fn)
}
