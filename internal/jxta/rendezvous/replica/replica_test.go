package replica

import (
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/jid"
)

func openLog(t *testing.T) *eventlog.Log {
	t.Helper()
	l, err := eventlog.Open(eventlog.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestTopicKeyRoundTrip(t *testing.T) {
	origin := jid.FromSeed(jid.KindPeer, 42)
	for _, topic := range []string{"news", "with|pipe", "r|tricky", ""} {
		key := TopicKey(origin, topic)
		got, gotTopic, ok := ParseKey(key)
		if !ok {
			t.Fatalf("ParseKey(%q): not a replica key", key)
		}
		if got != origin || gotTopic != topic {
			t.Fatalf("ParseKey(%q) = (%v, %q), want (%v, %q)", key, got, gotTopic, origin, topic)
		}
	}
}

func TestParseKeyRejectsOwnTopics(t *testing.T) {
	for _, key := range []string{"news", "r|", "r|not-a-urn|topic", ""} {
		if _, _, ok := ParseKey(key); ok {
			t.Fatalf("ParseKey(%q) accepted a non-replica key", key)
		}
	}
}

func TestDigestCodecRoundTrip(t *testing.T) {
	ds := []TopicDigest{
		{
			Origin: jid.FromSeed(jid.KindPeer, 1),
			Topic:  "alpha",
			Last:   107,
			Segments: []eventlog.SegmentDigest{
				{FirstSeq: 1, LastSeq: 50, CRC: 0xdeadbeef},
				{FirstSeq: 51, LastSeq: 107, CRC: 0x01},
			},
		},
		{Origin: jid.FromSeed(jid.KindPeer, 2), Topic: "", Last: 0},
	}
	got, err := DecodeDigest(EncodeDigest(ds))
	if err != nil {
		t.Fatalf("DecodeDigest: %v", err)
	}
	if len(got) != len(ds) {
		t.Fatalf("got %d digests, want %d", len(got), len(ds))
	}
	for i := range ds {
		if got[i].Origin != ds[i].Origin || got[i].Topic != ds[i].Topic || got[i].Last != ds[i].Last {
			t.Fatalf("digest %d = %+v, want %+v", i, got[i], ds[i])
		}
		if len(got[i].Segments) != len(ds[i].Segments) {
			t.Fatalf("digest %d: %d segments, want %d", i, len(got[i].Segments), len(ds[i].Segments))
		}
		for j := range ds[i].Segments {
			if got[i].Segments[j] != ds[i].Segments[j] {
				t.Fatalf("digest %d seg %d = %+v, want %+v", i, j, got[i].Segments[j], ds[i].Segments[j])
			}
		}
	}
}

func TestDecodeDigestRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{99},         // bad version
		{1, 0xff},    // truncated count varint
		{1, 1},       // count says 1, no entry bytes
		{1, 1, 0x03}, // bad kind byte, truncated wire ID
	}
	for _, b := range cases {
		if _, err := DecodeDigest(b); err == nil {
			t.Fatalf("DecodeDigest(%v) accepted garbage", b)
		}
	}
	// Truncate a valid encoding at every length; none may panic, all
	// must error.
	full := EncodeDigest([]TopicDigest{{
		Origin:   jid.FromSeed(jid.KindPeer, 7),
		Topic:    "t",
		Last:     3,
		Segments: []eventlog.SegmentDigest{{FirstSeq: 1, LastSeq: 3, CRC: 5}},
	}})
	for n := range len(full) {
		if _, err := DecodeDigest(full[:n]); err == nil {
			t.Fatalf("DecodeDigest accepted truncation at %d/%d bytes", n, len(full))
		}
	}
}

func TestDiverged(t *testing.T) {
	a := []eventlog.SegmentDigest{{FirstSeq: 1, LastSeq: 10, CRC: 1}, {FirstSeq: 11, LastSeq: 20, CRC: 2}}
	same := []eventlog.SegmentDigest{{FirstSeq: 1, LastSeq: 10, CRC: 1}}
	if Diverged(a, same) {
		t.Fatal("matching overlap reported as diverged")
	}
	// Different ranges (e.g. one side compacted further) are not
	// comparable, so not divergence.
	shifted := []eventlog.SegmentDigest{{FirstSeq: 5, LastSeq: 20, CRC: 99}}
	if Diverged(a, shifted) {
		t.Fatal("non-aligned ranges reported as diverged")
	}
	bad := []eventlog.SegmentDigest{{FirstSeq: 11, LastSeq: 20, CRC: 3}}
	if !Diverged(a, bad) {
		t.Fatal("mismatched checksum on aligned range not reported")
	}
}

func TestStoreApplyAndRead(t *testing.T) {
	self := jid.FromSeed(jid.KindPeer, 1)
	origin := jid.FromSeed(jid.KindPeer, 2)
	st := NewStore(openLog(t), self)

	now := time.Now().UnixMilli()
	for seq := uint64(1); seq <= 3; seq++ {
		applied, _, err := st.Apply(origin, "news", seq, now, []byte{byte(seq)}, 0)
		if err != nil || !applied {
			t.Fatalf("Apply(%d) = (%v, %v), want applied", seq, applied, err)
		}
	}
	// Duplicate and gapped sequences are skipped without error.
	if applied, _, err := st.Apply(origin, "news", 2, now, []byte{2}, 0); err != nil || applied {
		t.Fatalf("duplicate Apply = (%v, %v), want skip", applied, err)
	}
	if applied, _, err := st.Apply(origin, "news", 9, now, []byte{9}, 0); err != nil || applied {
		t.Fatalf("gapped Apply = (%v, %v), want skip", applied, err)
	}
	// Echoes of our own stream never touch the authoritative log.
	if applied, _, err := st.Apply(self, "news", 1, now, []byte{1}, 0); err != nil || applied {
		t.Fatalf("self Apply = (%v, %v), want skip", applied, err)
	}

	if last := st.Last(origin, "news"); last != 3 {
		t.Fatalf("Last = %d, want 3", last)
	}
	if !st.Holds(origin, "news") || st.Holds(origin, "other") {
		t.Fatal("Holds wrong")
	}

	var seqs []uint64
	err := st.Read(origin, "news", 1, 0, func(e eventlog.Entry) error {
		seqs = append(seqs, e.Seq)
		return nil
	})
	if err != nil || len(seqs) != 2 || seqs[0] != 2 || seqs[1] != 3 {
		t.Fatalf("Read after 1 = %v (%v), want [2 3]", seqs, err)
	}
}

func TestStoreApplyStartsAtRetentionHead(t *testing.T) {
	// A fresh copy of a stream whose source already compacted its
	// prefix starts at the source's retained head, not at 1.
	st := NewStore(openLog(t), jid.FromSeed(jid.KindPeer, 1))
	origin := jid.FromSeed(jid.KindPeer, 2)
	if applied, _, err := st.Apply(origin, "news", 40, 0, []byte("x"), 40); err != nil || !applied {
		t.Fatalf("Apply(40) on empty copy = (%v, %v), want applied", applied, err)
	}
	if applied, _, err := st.Apply(origin, "news", 41, 0, []byte("y"), 40); err != nil || !applied {
		t.Fatalf("Apply(41) = (%v, %v), want applied", applied, err)
	}
	if first, last, ok := func() (uint64, uint64, bool) {
		var f, l uint64
		var any bool
		_ = st.Read(origin, "news", 0, 0, func(e eventlog.Entry) error {
			if !any {
				f = e.Seq
				any = true
			}
			l = e.Seq
			return nil
		})
		return f, l, any
	}(); !ok || first != 40 || last != 41 {
		t.Fatalf("copy range = [%d,%d] ok=%v, want [40,41]", first, last, ok)
	}
}

func TestStoreApplyResetsPastRetentionGap(t *testing.T) {
	// The copy holds 1..3; the serving replica's retained head moved to
	// 10. Without the stamped head the record is a transient reorder and
	// is skipped; with it, the bridge records provably no longer exist,
	// so the copy must reset and restart at the head instead of
	// re-pulling the same batch forever.
	st := NewStore(openLog(t), jid.FromSeed(jid.KindPeer, 1))
	origin := jid.FromSeed(jid.KindPeer, 2)
	for seq := uint64(1); seq <= 3; seq++ {
		if applied, _, err := st.Apply(origin, "news", seq, 0, []byte{byte(seq)}, 1); err != nil || !applied {
			t.Fatalf("Apply(%d) = (%v, %v), want applied", seq, applied, err)
		}
	}
	// No stamped head (0) or a head we still bridge (4): skip, no reset.
	if applied, reset, err := st.Apply(origin, "news", 10, 0, []byte{10}, 0); err != nil || applied || reset {
		t.Fatalf("unstamped gapped Apply = (%v, %v, %v), want skip", applied, reset, err)
	}
	if applied, reset, err := st.Apply(origin, "news", 10, 0, []byte{10}, 4); err != nil || applied || reset {
		t.Fatalf("bridged-head Apply = (%v, %v, %v), want skip", applied, reset, err)
	}
	if last := st.Last(origin, "news"); last != 3 {
		t.Fatalf("tail moved to %d on skipped applies, want 3", last)
	}
	// Head 10 > tail+1: authoritative retention gap — reset and restart.
	applied, reset, err := st.Apply(origin, "news", 10, 0, []byte{10}, 10)
	if err != nil || !applied || !reset {
		t.Fatalf("gapped Apply = (%v, %v, %v), want applied+reset", applied, reset, err)
	}
	if applied, reset, err := st.Apply(origin, "news", 11, 0, []byte{11}, 10); err != nil || !applied || reset {
		t.Fatalf("follow-up Apply = (%v, %v, %v), want applied, no reset", applied, reset, err)
	}
	if first, last, ok := st.Range(origin, "news"); !ok || first != 10 || last != 11 {
		t.Fatalf("copy range after reset = [%d,%d] ok=%v, want [10,11]", first, last, ok)
	}
}

func TestStoreDigestCoversOwnAndCopies(t *testing.T) {
	self := jid.FromSeed(jid.KindPeer, 1)
	origin := jid.FromSeed(jid.KindPeer, 2)
	log := openLog(t)
	st := NewStore(log, self)

	if _, err := log.Append("mine", func(uint64) ([]byte, error) { return []byte("a"), nil }); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, _, err := st.Apply(origin, "theirs", 1, 0, []byte("b"), 0); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	ds := st.Digest()
	if len(ds) != 2 {
		t.Fatalf("Digest len = %d, want 2", len(ds))
	}
	byTopic := map[string]TopicDigest{}
	for _, d := range ds {
		byTopic[d.Topic] = d
	}
	if d := byTopic["mine"]; d.Origin != self || d.Last != 1 || len(d.Segments) == 0 {
		t.Fatalf("own digest wrong: %+v", d)
	}
	if d := byTopic["theirs"]; d.Origin != origin || d.Last != 1 || len(d.Segments) == 0 {
		t.Fatalf("copy digest wrong: %+v", d)
	}
}

func TestConvergedCopiesShareChecksums(t *testing.T) {
	// Pull A's records into B verbatim; the segment digests must match
	// exactly — the byte-identical convergence property.
	a := NewStore(openLog(t), jid.FromSeed(jid.KindPeer, 1))
	b := NewStore(openLog(t), jid.FromSeed(jid.KindPeer, 2))
	origin := jid.FromSeed(jid.KindPeer, 1)

	logA := a.log
	for i := range 20 {
		if _, err := logA.Append("news", func(uint64) ([]byte, error) {
			return []byte{byte(i)}, nil
		}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	err := a.Read(origin, "news", 0, 0, func(e eventlog.Entry) error {
		_, _, err := b.Apply(origin, "news", e.Seq, e.TimeMS, e.Payload, 1)
		return err
	})
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}

	da := a.log.SegmentDigests("news")
	db := b.log.SegmentDigests(TopicKey(origin, "news"))
	if len(da) == 0 || len(da) != len(db) {
		t.Fatalf("segment digests differ in count: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("segment %d differs: %+v vs %+v", i, da[i], db[i])
		}
	}
	if Diverged(da, db) {
		t.Fatal("converged copies reported diverged")
	}
}
