package rendezvous

// replay.go is the durability half of the rendezvous protocol: peers
// with an event log (Config.Log) append every propagated message before
// fanning it out, stamping the assigned per-topic sequence number and
// their own identity onto the frame. A subscriber that joined late or
// reconnected presents its last-delivered cursor with a replay request
// and receives the retained suffix as the original frames, resent
// verbatim — at-least-once, with the receive-side seen caches turning
// redelivery into exactly-once observable delivery. A cursor that fell
// behind retention gets an explicit gap signal instead of silent loss.

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
)

// Replay message element names, namespace "rdv".
const (
	// elemSeq carries the 8-byte big-endian per-topic log sequence a
	// rendezvous assigned to a propagated message.
	elemSeq = "Seq"
	// elemLogSrc carries the binary ID of the rendezvous whose log
	// numbered the message — cursors are only meaningful per origin.
	elemLogSrc = "LogSrc"
	// elemTopic names the topic (group parameter) of a replay request
	// or gap signal.
	elemTopic = "Topic"
	// elemCursor is the requester's last-delivered sequence, decimal.
	elemCursor = "Cursor"
	// elemFirst / elemLast bound the retained range in a gap signal.
	elemFirst = "First"
	elemLast  = "Last"
)

// Replay operations.
const (
	opReplay = "replay"
	opGap    = "gap"
)

// GapListener is notified when a replay request could not be served
// from the requested cursor: entries (cursor, first) were dropped by
// retention, or the server's log restarted. origin is the rendezvous
// that signalled; first and last bound what it still retains (both
// zero when it retains nothing). Receivers should advance their cursor
// for origin past the gap — those entries are unrecoverable.
type GapListener func(origin jid.ID, topic string, first, last uint64)

// SetReplayGapListener installs the callback for gap signals received
// in response to this peer's replay requests. Pass nil to remove.
func (s *Service) SetReplayGapListener(fn GapListener) {
	s.gapMu.Lock()
	s.gapFn = fn
	s.gapMu.Unlock()
}

// Log returns the event log this service appends to, nil without one.
func (s *Service) Log() *eventlog.Log { return s.log }

// ReplayInfo extracts the log coordinates a rendezvous stamped onto a
// propagated message: the origin peer whose log numbered it and the
// sequence it was assigned. ok is false for messages that never crossed
// a logging rendezvous. The lookup is allocation-free.
func ReplayInfo(msg *message.Message) (origin jid.ID, seq uint64, ok bool) {
	seq, found := msg.Uint64(elemNS, elemSeq)
	if !found {
		return jid.Nil, 0, false
	}
	origin, err := msg.GetID(elemNS, elemLogSrc)
	if err != nil {
		return jid.Nil, 0, false
	}
	return origin, seq, true
}

// RequestReplay asks the connected rendezvous target to resend the
// retained entries of topic with sequence numbers after the cursor.
// Replayed events arrive through the normal propagation path (and its
// dedupe); a gap signal arrives through the GapListener. The request is
// fire-and-forget: callers re-request on the next (re)connect cycle,
// which is what makes delivery at-least-once over lossy links.
func (s *Service) RequestReplay(target jid.ID, topic string, after uint64) error {
	s.mu.Lock()
	e, ok := s.rdvs[target]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("rendezvous: no lease with %v", target)
	}
	req := message.New(s.ep.PeerID())
	req.Grow(4)
	req.AddString(elemNS, elemOp, opReplay)
	req.AddString(elemNS, elemTopic, topic)
	req.AddString(elemNS, elemCursor, strconv.FormatUint(after, 10))
	// The cursor only means anything against the log that assigned it:
	// name the origin so a different (restarted, re-homed) rendezvous
	// falls back to a full replay instead of honouring a foreign cursor.
	req.AddID(elemNS, elemLogSrc, target)
	s.stats.replayRequests.Add(1)
	return s.ep.Send(e.addr, ServiceName, s.cfg.GroupParam, req)
}

// appendToLog reserves the topic's next sequence number, stamps it and
// this peer's identity onto msg, and stores the encoded propagation
// frame — so the bytes a later replay resends are exactly the bytes the
// fan-out sends now. Called with a log present, on the forwarding path
// only (never on the log-off hot path).
func (s *Service) appendToLog(msg *message.Message, topic string) {
	var frame []byte
	_, err := s.log.Append(topic, func(seq uint64) ([]byte, error) {
		seqData := make([]byte, 8)
		binary.BigEndian.PutUint64(seqData, seq)
		msg.ReplaceElement(message.Element{Namespace: elemNS, Name: elemSeq, Data: seqData})
		msg.ReplaceID(elemNS, elemLogSrc, s.ep.PeerID())
		f, err := s.ep.EncodeFrame(ServiceName, topic, msg)
		frame = f
		return f, err
	})
	if frame != nil {
		endpoint.RecycleFrame(frame)
	}
	if err != nil {
		s.stats.logFailures.Add(1)
	}
}

// handleReplay serves one replay request from the log. Stored frames
// are resent verbatim to the requester's address; they re-enter its
// normal propagation handling, where the seen caches drop whatever was
// already delivered live.
func (s *Service) handleReplay(msg *message.Message, from endpoint.Address) {
	if s.cfg.Role != RoleRendezvous || s.log == nil {
		return
	}
	topic := msg.Text(elemNS, elemTopic)
	if topic == "" {
		return
	}
	cursor, _ := strconv.ParseUint(msg.Text(elemNS, elemCursor), 10, 64)
	if origin, err := msg.GetID(elemNS, elemLogSrc); err != nil || origin != s.ep.PeerID() {
		// The cursor counts another peer's log (the subscriber re-homed
		// after its rendezvous died): our numbering is unrelated. Replay
		// the full retained suffix; receive-side dedupe absorbs overlap.
		cursor = 0
	}
	param := s.incomingParam(msg)
	first, last, ok := s.log.Range(topic)
	if !ok {
		if cursor > 0 {
			// The requester has history we do not: log restarted empty.
			s.sendGap(from, param, topic, 0, 0)
		}
		return
	}
	if cursor > last {
		// Cursor outruns our log: the numbering restarted (log state
		// lost). Signal the discontinuity, then replay what we have.
		s.sendGap(from, param, topic, first, last)
		cursor = 0
	} else if cursor > 0 && cursor+1 < first {
		// Retention dropped (cursor, first): explicit gap, not silence.
		s.sendGap(from, param, topic, first, last)
	}
	served := 0
	_ = s.log.Read(topic, cursor, 0, func(e eventlog.Entry) error {
		if err := s.ep.SendFrame(from, e.Payload); err != nil {
			s.stats.sendFailures.Add(1)
			return err
		}
		served++
		return nil
	})
	s.stats.replayServed.Add(int64(served))
}

// sendGap tells a requester that its cursor predates what the log
// retains, bounding what is still available.
func (s *Service) sendGap(to endpoint.Address, param, topic string, first, last uint64) {
	s.stats.replayGaps.Add(1)
	m := message.New(s.ep.PeerID())
	m.Grow(4)
	m.AddString(elemNS, elemOp, opGap)
	m.AddString(elemNS, elemTopic, topic)
	m.AddString(elemNS, elemFirst, strconv.FormatUint(first, 10))
	m.AddString(elemNS, elemLast, strconv.FormatUint(last, 10))
	_ = s.ep.Send(to, ServiceName, param, m)
}

// handleGap dispatches a received gap signal to the listener.
func (s *Service) handleGap(msg *message.Message) {
	topic := msg.Text(elemNS, elemTopic)
	first, _ := strconv.ParseUint(msg.Text(elemNS, elemFirst), 10, 64)
	last, _ := strconv.ParseUint(msg.Text(elemNS, elemLast), 10, 64)
	s.stats.replayGaps.Add(1)
	s.gapMu.Lock()
	fn := s.gapFn
	s.gapMu.Unlock()
	if fn != nil {
		fn(msg.Src, topic, first, last)
	}
}
