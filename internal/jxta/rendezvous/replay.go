package rendezvous

// replay.go is the durability half of the rendezvous protocol: peers
// with an event log (Config.Log) append every propagated message before
// fanning it out, stamping the assigned per-topic sequence number and
// their own identity onto the frame. A subscriber that joined late or
// reconnected presents its last-delivered cursor with a replay request
// and receives the retained suffix as the original frames, resent
// verbatim — at-least-once, with the receive-side seen caches turning
// redelivery into exactly-once observable delivery. A cursor that fell
// behind retention gets an explicit gap signal instead of silent loss.

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
)

// Replay message element names, namespace "rdv".
const (
	// elemSeq carries the 8-byte big-endian per-topic log sequence a
	// rendezvous assigned to a propagated message.
	elemSeq = "Seq"
	// elemLogSrc carries the binary ID of the rendezvous whose log
	// numbered the message — cursors are only meaningful per origin.
	elemLogSrc = "LogSrc"
	// elemTopic names the topic (group parameter) of a replay request
	// or gap signal.
	elemTopic = "Topic"
	// elemCursor is the requester's last-delivered sequence, decimal.
	elemCursor = "Cursor"
	// elemFirst / elemLast bound the retained range in a gap signal.
	// elemFirst doubles as the server's retained head on sync records.
	elemFirst = "First"
	elemLast  = "Last"
	// elemTentative marks a gap signal sent before the sender completed
	// a first anti-entropy exchange: the range looks lost from here, but
	// an unsynced replica may yet hold it.
	elemTentative = "Tentative"
)

// Replay operations.
const (
	opReplay = "replay"
	opGap    = "gap"
)

// GapListener is notified when a replay request could not be served
// from the requested cursor: entries (cursor, first) were dropped by
// retention, or the server's log restarted. origin is the rendezvous
// that signalled; first and last bound what it still retains (both
// zero when it retains nothing). Receivers should advance their cursor
// for origin past the gap — those entries are unrecoverable. tentative
// is set when the signalling replica had not completed a first
// anti-entropy exchange, so its "nothing retained" verdict is
// provisional rather than proof of loss.
type GapListener func(origin jid.ID, topic string, first, last uint64, tentative bool)

// SetReplayGapListener installs the callback for gap signals received
// in response to this peer's replay requests. Pass nil to remove.
func (s *Service) SetReplayGapListener(fn GapListener) {
	s.gapMu.Lock()
	s.gapFn = fn
	s.gapMu.Unlock()
}

// Log returns the event log this service appends to, nil without one.
func (s *Service) Log() *eventlog.Log { return s.log }

// ReplayInfo extracts the log coordinates a rendezvous stamped onto a
// propagated message: the origin peer whose log numbered it and the
// sequence it was assigned. ok is false for messages that never crossed
// a logging rendezvous. The lookup is allocation-free.
func ReplayInfo(msg *message.Message) (origin jid.ID, seq uint64, ok bool) {
	seq, found := msg.Uint64(elemNS, elemSeq)
	if !found {
		return jid.Nil, 0, false
	}
	origin, err := msg.GetID(elemNS, elemLogSrc)
	if err != nil {
		return jid.Nil, 0, false
	}
	return origin, seq, true
}

// RequestReplay asks the connected rendezvous target to resend the
// retained entries of topic that origin's log numbered after the
// cursor. origin is usually the target itself; after a failover it is
// the dead primary, and the target serves the request from its
// replicated copy of that log — the cursor stays meaningful because
// copies keep the origin's numbering. A zero origin means the target.
// Replayed events arrive through the normal propagation path (and its
// dedupe); a gap signal arrives through the GapListener. The request is
// fire-and-forget: callers re-request on the next (re)connect cycle,
// which is what makes delivery at-least-once over lossy links.
func (s *Service) RequestReplay(target jid.ID, topic string, origin jid.ID, after uint64) error {
	s.mu.Lock()
	e, ok := s.rdvs[target]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("rendezvous: no lease with %v", target)
	}
	if origin.IsZero() {
		origin = target
	}
	req := message.New(s.ep.PeerID())
	req.Grow(4)
	req.AddString(elemNS, elemOp, opReplay)
	req.AddString(elemNS, elemTopic, topic)
	req.AddString(elemNS, elemCursor, strconv.FormatUint(after, 10))
	// The cursor only means anything against the log that assigned it:
	// name the origin so a server without that log (or a copy of it)
	// falls back to a full replay instead of honouring a foreign cursor.
	req.AddID(elemNS, elemLogSrc, origin)
	s.stats.replayRequests.Add(1)
	return s.ep.Send(e.addr, ServiceName, s.cfg.GroupParam, req)
}

// appendToLog reserves the topic's next sequence number, stamps it and
// this peer's identity onto msg, and stores the encoded propagation
// frame — so the bytes a later replay resends are exactly the bytes the
// fan-out sends now. Called with a log present, on the forwarding path
// only (never on the log-off hot path).
func (s *Service) appendToLog(msg *message.Message, topic string) {
	var frame []byte
	_, err := s.log.Append(topic, func(seq uint64) ([]byte, error) {
		seqData := make([]byte, 8)
		binary.BigEndian.PutUint64(seqData, seq)
		msg.ReplaceElement(message.Element{Namespace: elemNS, Name: elemSeq, Data: seqData})
		msg.ReplaceID(elemNS, elemLogSrc, s.ep.PeerID())
		f, err := s.ep.EncodeFrame(ServiceName, topic, msg)
		frame = f
		return f, err
	})
	if frame != nil {
		endpoint.RecycleFrame(frame)
	}
	if err != nil {
		s.stats.logFailures.Add(1)
	}
}

// handleReplay serves one replay request from the log. Stored frames
// are resent verbatim to the requester's address; they re-enter its
// normal propagation handling, where the seen caches drop whatever was
// already delivered live.
//
// The request names the origin whose log numbered the cursor. When
// that is this peer, the own log serves it (the pre-replication path).
// When it is another peer whose stream this replica holds a copy of,
// the copy serves it — honouring the cursor, because copies keep the
// origin's numbering — which is what makes failover exactly-once
// observable. A replica-set member holding nothing of the named origin
// declares the cursor's suffix unrecoverable with a gap; a plain
// rendezvous (no replica set) keeps the old re-homing behaviour of a
// full own-log replay with receive-side dedupe absorbing overlap.
func (s *Service) handleReplay(msg *message.Message, from endpoint.Address) {
	if s.cfg.Role != RoleRendezvous || s.log == nil {
		return
	}
	topic := msg.Text(elemNS, elemTopic)
	if topic == "" {
		return
	}
	cursor, _ := strconv.ParseUint(msg.Text(elemNS, elemCursor), 10, 64)
	param := s.incomingParam(msg)
	self := s.ep.PeerID()
	origin, err := msg.GetID(elemNS, elemLogSrc)
	if err != nil {
		origin = self
	}
	key := topic
	if origin != self {
		switch {
		case s.store != nil && s.store.Holds(origin, topic):
			// Serve the replicated copy under the origin's numbering.
			key = s.store.Key(origin, topic)
		case len(s.cfg.ReplicaSeeds) > 0:
			// We are in the origin's replica set but hold none of its
			// stream.
			if cursor == 0 {
				return
			}
			if s.replicaAdvertises(origin, topic) {
				// A replica we synced with still advertises the stream:
				// nothing is lost, our copy just has not arrived yet.
				// Serve nothing; when anti-entropy lands it, the records
				// are mirrored live to our leased clients.
				return
			}
			// No synced replica holds it either, so the suffix past the
			// cursor is gone for good — say so instead of staying silent.
			// Before the first digest exchange that verdict is only
			// provisional (the copy may simply not have been pulled yet),
			// which the signal's tentative flag reports honestly.
			s.sendGap(from, param, topic, origin, 0, 0, !s.syncedOnce())
			return
		default:
			// The cursor counts another peer's log (the subscriber
			// re-homed after its rendezvous died) and we are no replica
			// of it: our numbering is unrelated. Replay the full
			// retained suffix; receive-side dedupe absorbs overlap.
			origin, cursor = self, 0
		}
	}
	first, last, ok := s.log.Range(key)
	if !ok {
		if cursor > 0 {
			// The requester has history we do not: log restarted empty.
			s.sendGap(from, param, topic, origin, 0, 0, false)
		}
		return
	}
	if cursor > last {
		if origin != self {
			// Our copy is merely behind the requester's cursor: those
			// entries were already delivered to it (the cursor proves
			// so), nothing is lost and anti-entropy may still catch us
			// up. Serve nothing, signal nothing.
			return
		}
		// Cursor outruns our own log: the numbering restarted (log
		// state lost). Signal the discontinuity, then replay all.
		s.sendGap(from, param, topic, origin, first, last, false)
		cursor = 0
	} else if cursor > 0 && cursor+1 < first {
		// Retention dropped (cursor, first): explicit gap, not silence.
		s.sendGap(from, param, topic, origin, first, last, false)
	}
	served := 0
	_ = s.log.Read(key, cursor, 0, func(e eventlog.Entry) error {
		if err := s.ep.SendFrame(from, e.Payload); err != nil {
			s.stats.sendFailures.Add(1)
			return err
		}
		served++
		return nil
	})
	s.stats.replayServed.Add(int64(served))
}

// sendGap tells a requester that its cursor into origin's log predates
// what is retained here, bounding what is still available. tentative
// qualifies an unbounded gap from a replica that has not completed a
// first anti-entropy exchange yet.
func (s *Service) sendGap(to endpoint.Address, param, topic string, origin jid.ID, first, last uint64, tentative bool) {
	s.stats.replayGaps.Add(1)
	m := message.New(s.ep.PeerID())
	m.Grow(6)
	m.AddString(elemNS, elemOp, opGap)
	m.AddString(elemNS, elemTopic, topic)
	m.AddID(elemNS, elemLogSrc, origin)
	m.AddString(elemNS, elemFirst, strconv.FormatUint(first, 10))
	m.AddString(elemNS, elemLast, strconv.FormatUint(last, 10))
	if tentative {
		m.AddString(elemNS, elemTentative, "true")
	}
	_ = s.ep.Send(to, ServiceName, param, m)
}

// handleGap dispatches a received gap signal to the listener. The gap
// is attributed to the log origin it names — which, when a replica
// answers for a dead primary, is the primary rather than the sender —
// so cursor jumps land on the right origin. Signals from peers that
// predate the origin stamp fall back to the sender.
func (s *Service) handleGap(msg *message.Message) {
	topic := msg.Text(elemNS, elemTopic)
	origin, err := msg.GetID(elemNS, elemLogSrc)
	if err != nil {
		origin = msg.Src
	}
	first, _ := strconv.ParseUint(msg.Text(elemNS, elemFirst), 10, 64)
	last, _ := strconv.ParseUint(msg.Text(elemNS, elemLast), 10, 64)
	tentative := msg.Text(elemNS, elemTentative) == "true"
	s.stats.replayGaps.Add(1)
	s.gapMu.Lock()
	fn := s.gapFn
	s.gapMu.Unlock()
	if fn != nil {
		fn(origin, topic, first, last, tentative)
	}
}
