package rendezvous

// sync.go is the anti-entropy half of rendezvous replication. A
// rendezvous started with ReplicaSeeds periodically sends each replica
// a digest of every (origin, topic) log stream it holds — its own
// topics plus the copies it maintains — and pulls the missing suffix of
// any stream a replica is ahead on. Records transfer verbatim (origin's
// sequence, timestamp and frame bytes), so converged copies are
// byte-identical on disk and the per-segment CRCs in the digest prove
// it; aligned sequence ranges whose checksums disagree are counted as
// divergence instead of silently papered over.
//
// Replicas are deliberately NOT mesh-seeded with each other: all live
// traffic flows through whichever replica the clients elected active,
// and anti-entropy is the only replication path. That keeps the live
// fan-out hot path untouched (replication off = zero cost) and makes
// convergence reasoning trivial — one log owner numbers each stream,
// everyone else copies.

import (
	"sort"
	"strconv"
	"time"

	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous/replica"
	"github.com/tps-p2p/tps/internal/obs"
)

// Sync operations, namespace "rdv".
const (
	opSyncDigest = "syncdig"
	opSyncPull   = "syncpull"
	opSyncRec    = "syncrec"
)

// Sync message element names, namespace "rdv". Pulls and records reuse
// elemLogSrc (stream origin), elemTopic and elemCursor (pull-after)
// from the replay protocol.
const (
	// elemDigest carries a replica.EncodeDigest blob.
	elemDigest = "SyncDigest"
	// elemTime carries a record's original append time, decimal ms.
	elemTime = "TimeMS"
	// elemFrame carries a record's stored propagation frame verbatim.
	elemFrame = "Frame"
)

// DefaultSyncInterval is the anti-entropy digest cadence when
// Config.SyncInterval is zero.
const DefaultSyncInterval = 5 * time.Second

// syncPullBatch caps records served per pull request. After a full
// batch the server re-sends its digest to the requester, which pulls
// again from its new tail — convergence without a "more" flag.
const syncPullBatch = 512

// replicaPeer is what we know about one replica: who answered last,
// when, and the stream tails it advertised.
type replicaPeer struct {
	id       jid.ID
	lastSync time.Time
	remote   []replica.TopicDigest
}

// syncAuthorized gates every inbound anti-entropy op: only a rendezvous
// that is itself replicating (configured with replica seeds) takes part,
// and only messages from a configured replica seed's address are
// honoured. Without the check any peer could durably plant forged
// records under another origin's key on a plain durable rendezvous
// ("replication off by default"), have them mirrored straight to its
// leased clients, or dump its whole log through a pull. Rejections on a
// durable rendezvous are counted; sync noise at peers with no log at
// all is just dropped. The membership check also caps replState at the
// seed-list size — only authorized senders ever reach the map.
func (s *Service) syncAuthorized(from endpoint.Address) bool {
	if s.store != nil && len(s.cfg.ReplicaSeeds) > 0 {
		for _, a := range s.cfg.ReplicaSeeds {
			if a == from {
				return true
			}
		}
	}
	if s.store != nil {
		s.stats.syncRejects.Add(1)
	}
	return false
}

// syncedOnce reports whether at least one anti-entropy digest exchange
// has completed. Before the first exchange, "I hold nothing of that
// origin" is evidence of not having synced yet, not of loss.
func (s *Service) syncedOnce() bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return len(s.replState) > 0
}

// replicaAdvertises reports whether any synced replica's last digest
// includes a non-empty stream of origin's for topic — proof the stream
// survives in the replica set even if this peer's copy has not arrived
// yet.
func (s *Service) replicaAdvertises(origin jid.ID, topic string) bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	for _, st := range s.replState {
		for _, d := range st.remote {
			if d.Origin == origin && d.Topic == topic && d.Last > 0 {
				return true
			}
		}
	}
	return false
}

// syncLoop drives the anti-entropy cadence.
func (s *Service) syncLoop() {
	defer s.wg.Done()
	interval := s.cfg.SyncInterval
	if interval <= 0 {
		interval = DefaultSyncInterval
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.sendDigests()
		case <-s.stop:
			return
		}
	}
}

// sendDigests advertises this replica's stream tails to every replica
// seed whose breaker is closed. Unreachable replicas feed the same
// suspect/evict accounting as any other address.
func (s *Service) sendDigests() {
	enc := replica.EncodeDigest(s.store.Digest())
	now := s.now()
	for _, addr := range s.cfg.ReplicaSeeds {
		s.mu.Lock()
		closed := s.closed
		banned := false
		if h := s.health[addr]; h != nil && now.Before(h.bannedUntil) {
			banned = true
		}
		s.mu.Unlock()
		if closed {
			return
		}
		if banned {
			s.stats.breakerSkips.Add(1)
			continue
		}
		s.sendDigestTo(addr, enc)
	}
}

// sendDigestTo ships one encoded digest to one replica address.
func (s *Service) sendDigestTo(addr endpoint.Address, enc []byte) {
	m := message.New(s.ep.PeerID())
	m.Grow(2)
	m.AddString(elemNS, elemOp, opSyncDigest)
	m.AddBytes(elemNS, elemDigest, enc)
	if err := s.ep.Send(addr, ServiceName, s.cfg.GroupParam, m); err != nil {
		s.stats.sendFailures.Add(1)
		if s.noteFailure(addr) {
			s.probe(addr)
		}
		return
	}
	s.noteSuccess(addr)
}

// handleSyncDigest compares a replica's advertised tails with our own
// and pulls the suffix of every stream it is ahead on. Aligned segment
// ranges with mismatched checksums bump the divergence counter — the
// verifiable-digest property.
func (s *Service) handleSyncDigest(msg *message.Message, from endpoint.Address) {
	if !s.syncAuthorized(from) {
		return
	}
	ds, err := replica.DecodeDigest(msg.Bytes(elemNS, elemDigest))
	if err != nil {
		return
	}
	s.stats.syncDigests.Add(1)
	s.replMu.Lock()
	s.replState[from] = &replicaPeer{id: msg.Src, lastSync: s.now(), remote: ds}
	s.replMu.Unlock()
	self := s.ep.PeerID()
	for _, d := range ds {
		if replica.Diverged(s.log.SegmentDigests(s.store.Key(d.Origin, d.Topic)), d.Segments) {
			s.stats.syncDivergence.Add(1)
		}
		if d.Origin == self {
			continue // our own log is authoritative, never pulled
		}
		local := s.store.Last(d.Origin, d.Topic)
		if d.Last <= local {
			continue
		}
		// A non-empty copy whose tail fell below this replica's retained
		// head can only converge by resetting — but if another synced
		// replica still bridges our tail, pull there first and keep the
		// copy gapless instead.
		if local > 0 && digestFirst(d) > local+1 && s.bridgedElsewhere(from, d.Origin, d.Topic, local) {
			continue
		}
		s.sendPull(from, d.Origin, d.Topic, local)
	}
}

// digestFirst returns the first sequence a stream digest shows
// retained, 0 for an empty stream.
func digestFirst(d replica.TopicDigest) uint64 {
	if len(d.Segments) == 0 {
		return 0
	}
	return d.Segments[0].FirstSeq
}

// bridgedElsewhere reports whether a replica other than except
// advertised records contiguous with our tail (retained head at or
// below local+1 and entries beyond local): pulling from it extends the
// copy without a retention-gap reset.
func (s *Service) bridgedElsewhere(except endpoint.Address, origin jid.ID, topic string, local uint64) bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	for addr, st := range s.replState {
		if addr == except {
			continue
		}
		for _, d := range st.remote {
			if d.Origin != origin || d.Topic != topic || d.Last <= local {
				continue
			}
			if f := digestFirst(d); f > 0 && f <= local+1 {
				return true
			}
		}
	}
	return false
}

// sendPull asks the replica at addr for origin's records of topic with
// sequence numbers after our contiguous tail.
func (s *Service) sendPull(addr endpoint.Address, origin jid.ID, topic string, after uint64) {
	m := message.New(s.ep.PeerID())
	m.Grow(4)
	m.AddString(elemNS, elemOp, opSyncPull)
	m.AddID(elemNS, elemLogSrc, origin)
	m.AddString(elemNS, elemTopic, topic)
	m.AddString(elemNS, elemCursor, strconv.FormatUint(after, 10))
	if err := s.ep.Send(addr, ServiceName, s.cfg.GroupParam, m); err != nil {
		s.stats.sendFailures.Add(1)
	}
}

// handleSyncPull serves one batch of a stream's records to a replica
// that is behind. A full batch means there may be more: the server
// follows up with a fresh digest so the requester pulls the rest.
func (s *Service) handleSyncPull(msg *message.Message, from endpoint.Address) {
	if !s.syncAuthorized(from) {
		return
	}
	origin, err := msg.GetID(elemNS, elemLogSrc)
	if err != nil {
		return
	}
	topic := msg.Text(elemNS, elemTopic)
	if topic == "" {
		return
	}
	after, _ := strconv.ParseUint(msg.Text(elemNS, elemCursor), 10, 64)
	s.stats.syncPulls.Add(1)
	// Each record names our retained head for the stream, so a requester
	// whose tail fell below it can tell an origin-side retention gap
	// (reset and restart at the head) from a transient reorder (skip and
	// re-pull).
	srcFirst := strconv.FormatUint(func() uint64 {
		first, _, _ := s.store.Range(origin, topic)
		return first
	}(), 10)
	served := 0
	_ = s.store.Read(origin, topic, after, syncPullBatch, func(e eventlog.Entry) error {
		rec := message.New(s.ep.PeerID())
		rec.Grow(7)
		rec.AddString(elemNS, elemOp, opSyncRec)
		rec.AddID(elemNS, elemLogSrc, origin)
		rec.AddString(elemNS, elemTopic, topic)
		rec.AddBytes(elemNS, elemSeq, seqBytes(e.Seq))
		rec.AddString(elemNS, elemTime, strconv.FormatInt(e.TimeMS, 10))
		rec.AddString(elemNS, elemFirst, srcFirst)
		rec.AddBytes(elemNS, elemFrame, e.Payload)
		if err := s.ep.Send(from, ServiceName, s.cfg.GroupParam, rec); err != nil {
			s.stats.sendFailures.Add(1)
			return err
		}
		served++
		return nil
	})
	s.stats.syncRecords.Add(int64(served))
	if served == syncPullBatch {
		s.sendDigestTo(from, replica.EncodeDigest(s.store.Digest()))
	}
}

// handleSyncRec applies one pulled record to the local copy of the
// origin's stream and mirrors it live to any of our own leased clients
// in that group — their seen caches drop anything already delivered.
// Out-of-order arrivals are skipped (the next digest round re-pulls
// from the contiguous tail), so application is exactly-once — except
// when the record's stamped retained head proves the sender trimmed
// past our tail: then the copy is reset and restarted at the head (a
// counted retention gap), because the bridge records no longer exist
// anywhere and waiting would re-pull the same batch forever.
func (s *Service) handleSyncRec(msg *message.Message, from endpoint.Address) {
	if !s.syncAuthorized(from) {
		return
	}
	origin, err := msg.GetID(elemNS, elemLogSrc)
	if err != nil {
		return
	}
	topic := msg.Text(elemNS, elemTopic)
	seq, ok := msg.Uint64(elemNS, elemSeq)
	frame := msg.Bytes(elemNS, elemFrame)
	if topic == "" || !ok || seq == 0 || len(frame) == 0 {
		return
	}
	timeMS, _ := strconv.ParseInt(msg.Text(elemNS, elemTime), 10, 64)
	srcFirst, _ := strconv.ParseUint(msg.Text(elemNS, elemFirst), 10, 64)
	applied, reset, err := s.store.Apply(origin, topic, seq, timeMS, frame, srcFirst)
	if reset {
		s.stats.syncResets.Add(1)
	}
	if err != nil {
		s.stats.logFailures.Add(1)
		return
	}
	if !applied {
		return
	}
	s.stats.syncApplied.Add(1)
	s.mirrorToClients(topic, frame)
}

// mirrorToClients forwards a freshly replicated frame to this peer's
// own leased clients in the stream's group. The frame is the origin's
// stored fan-out frame, resent verbatim; receive-side dedupe absorbs
// anything the client already saw live. This is what keeps a standby's
// clients current while the primary is unreachable from them but not
// from the replica set.
func (s *Service) mirrorToClients(param string, frame []byte) {
	s.mu.Lock()
	s.expireLocked()
	now := s.now()
	addrs := make([]endpoint.Address, 0, len(s.clients))
	for _, e := range s.clients {
		if e.param != "" && param != "" && e.param != param {
			continue
		}
		if h := s.health[e.addr]; h != nil && now.Before(h.bannedUntil) {
			s.stats.breakerSkips.Add(1)
			continue
		}
		addrs = append(addrs, e.addr)
	}
	s.mu.Unlock()
	for _, addr := range addrs {
		if err := s.ep.SendFrame(addr, frame); err != nil {
			s.stats.sendFailures.Add(1)
			_ = s.noteFailure(addr)
		}
	}
}

// seqBytes renders a sequence number in the 8-byte big-endian form the
// elemSeq element always carries.
func seqBytes(seq uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(seq)
		seq >>= 8
	}
	return b
}

// ReplicasView reports the state of this peer's replica set for the
// admin surface: one entry per configured replica with the time since
// it last answered a digest and, per advertised stream, its tail next
// to ours. LastSyncAgoMS is -1 for a replica that never synced.
func (s *Service) ReplicasView() []obs.ReplicaEntry {
	if len(s.cfg.ReplicaSeeds) == 0 {
		return nil
	}
	now := s.now()
	s.replMu.Lock()
	out := make([]obs.ReplicaEntry, 0, len(s.cfg.ReplicaSeeds))
	for _, addr := range s.cfg.ReplicaSeeds {
		re := obs.ReplicaEntry{Addr: string(addr), LastSyncAgoMS: -1}
		if st := s.replState[addr]; st != nil {
			re.ID = st.id.String()
			re.LastSyncAgoMS = now.Sub(st.lastSync).Milliseconds()
			for _, d := range st.remote {
				re.Topics = append(re.Topics, obs.ReplicaTopicLag{
					Origin:     d.Origin.String(),
					Topic:      d.Topic,
					LocalLast:  s.store.Last(d.Origin, d.Topic),
					RemoteLast: d.Last,
				})
			}
			sort.Slice(re.Topics, func(i, j int) bool {
				if re.Topics[i].Topic != re.Topics[j].Topic {
					return re.Topics[i].Topic < re.Topics[j].Topic
				}
				return re.Topics[i].Origin < re.Topics[j].Origin
			})
		}
		out = append(out, re)
	}
	s.replMu.Unlock()
	return out
}
