package rendezvous_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

// testPeer bundles an endpoint + rendezvous service on a netsim node.
type testPeer struct {
	name string
	ep   *endpoint.Service
	rdv  *rendezvous.Service
}

type cluster struct {
	t   *testing.T
	net *netsim.Network
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	n := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(n.Close)
	return &cluster{t: t, net: n}
}

func (c *cluster) addPeer(name string, seed uint64, role rendezvous.Role, seeds ...endpoint.Address) *testPeer {
	c.t.Helper()
	node, err := c.net.AddNode(name)
	if err != nil {
		c.t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, seed))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		c.t.Fatal(err)
	}
	rdv, err := rendezvous.New(ep, rendezvous.Config{
		Role:       role,
		GroupParam: "net",
		Seeds:      seeds,
		LeaseTTL:   2 * time.Second,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	p := &testPeer{name: name, ep: ep, rdv: rdv}
	c.t.Cleanup(func() {
		p.rdv.Close()
		_ = p.ep.Close()
	})
	return p
}

// subscribe registers a sink for a propagated destination service.
func subscribe(t *testing.T, p *testPeer, svc string) *msgSink {
	t.Helper()
	s := &msgSink{ch: make(chan *message.Message, 256)}
	if err := p.ep.RegisterHandler(svc, "net", s.handler); err != nil {
		t.Fatal(err)
	}
	return s
}

type msgSink struct {
	mu   sync.Mutex
	msgs []*message.Message
	ch   chan *message.Message
}

func (s *msgSink) handler(msg *message.Message, _ endpoint.Address) {
	s.mu.Lock()
	s.msgs = append(s.msgs, msg)
	s.mu.Unlock()
	s.ch <- msg
}

func (s *msgSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func (s *msgSink) waitOne(t *testing.T) *message.Message {
	t.Helper()
	select {
	case m := <-s.ch:
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for propagated message")
		return nil
	}
}

func TestEdgeConnectsToRendezvous(t *testing.T) {
	c := newCluster(t)
	r := c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	e := c.addPeer("edge", 2, rendezvous.RoleEdge, "mem://rdv")
	if !e.rdv.AwaitConnected(5 * time.Second) {
		t.Fatal("edge never connected")
	}
	got := e.rdv.ConnectedRendezvous()
	if len(got) != 1 || got[0] != r.ep.PeerID() {
		t.Fatalf("connected rdvs = %v", got)
	}
	waitFor(t, func() bool { return len(r.rdv.ConnectedClients()) == 1 })
	if st := r.rdv.Stats(); st.LeasesActive != 1 {
		t.Fatalf("rdv stats %+v", st)
	}
}

func TestPropagateThroughOneRendezvous(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	pub := c.addPeer("pub", 2, rendezvous.RoleEdge, "mem://rdv")
	sub1 := c.addPeer("sub1", 3, rendezvous.RoleEdge, "mem://rdv")
	sub2 := c.addPeer("sub2", 4, rendezvous.RoleEdge, "mem://rdv")
	for _, p := range []*testPeer{pub, sub1, sub2} {
		if !p.rdv.AwaitConnected(5 * time.Second) {
			t.Fatalf("%s never connected", p.name)
		}
	}
	s1 := subscribe(t, sub1, "app.events")
	s2 := subscribe(t, sub2, "app.events")
	sp := subscribe(t, pub, "app.events")

	m := message.New(pub.ep.PeerID())
	m.AddString("app", "body", "hello-mesh")
	if err := pub.rdv.Propagate(m, "app.events", "net"); err != nil {
		t.Fatal(err)
	}
	if got := s1.waitOne(t); got.Text("app", "body") != "hello-mesh" {
		t.Fatalf("sub1 got %q", got.Text("app", "body"))
	}
	if got := s2.waitOne(t); got.Text("app", "body") != "hello-mesh" {
		t.Fatalf("sub2 got %q", got.Text("app", "body"))
	}
	// Propagate does not loop back to the publisher.
	time.Sleep(50 * time.Millisecond)
	if sp.count() != 0 {
		t.Fatal("publisher received its own propagation")
	}
}

func TestPropagateAcrossRendezvousMesh(t *testing.T) {
	c := newCluster(t)
	c.addPeer("rdvA", 1, rendezvous.RoleRendezvous)
	c.addPeer("rdvB", 2, rendezvous.RoleRendezvous, "mem://rdvA")
	pub := c.addPeer("pub", 3, rendezvous.RoleEdge, "mem://rdvA")
	sub := c.addPeer("sub", 4, rendezvous.RoleEdge, "mem://rdvB")
	if !pub.rdv.AwaitConnected(5*time.Second) || !sub.rdv.AwaitConnected(5*time.Second) {
		t.Fatal("peers never connected")
	}
	s := subscribe(t, sub, "app.events")
	m := message.New(pub.ep.PeerID())
	m.AddString("app", "body", "cross-mesh")
	if err := pub.rdv.Propagate(m, "app.events", "net"); err != nil {
		t.Fatal(err)
	}
	if got := s.waitOne(t); got.Text("app", "body") != "cross-mesh" {
		t.Fatalf("got %q", got.Text("app", "body"))
	}
}

func TestDuplicateSuppressionInMesh(t *testing.T) {
	// Two rendezvous seeded with each other create a cycle; the seen
	// cache must deliver each message exactly once per subscriber.
	c := newCluster(t)
	c.addPeer("rdvA", 1, rendezvous.RoleRendezvous, "mem://rdvB")
	c.addPeer("rdvB", 2, rendezvous.RoleRendezvous, "mem://rdvA")
	pub := c.addPeer("pub", 3, rendezvous.RoleEdge, "mem://rdvA")
	subA := c.addPeer("subA", 4, rendezvous.RoleEdge, "mem://rdvA")
	subB := c.addPeer("subB", 5, rendezvous.RoleEdge, "mem://rdvB")
	for _, p := range []*testPeer{pub, subA, subB} {
		if !p.rdv.AwaitConnected(5 * time.Second) {
			t.Fatalf("%s never connected", p.name)
		}
	}
	// Give the two rendezvous time to lease with each other so the
	// cycle actually exists when we publish.
	time.Sleep(100 * time.Millisecond)
	sa := subscribe(t, subA, "app.events")
	sb := subscribe(t, subB, "app.events")
	const total = 20
	for i := 0; i < total; i++ {
		m := message.New(pub.ep.PeerID())
		m.AddBytes("app", "n", []byte{byte(i)})
		if err := pub.rdv.Propagate(m, "app.events", "net"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return sa.count() >= total && sb.count() >= total })
	c.net.WaitQuiesce(5 * time.Second)
	if sa.count() != total {
		t.Fatalf("subA received %d, want exactly %d (duplicates leaked)", sa.count(), total)
	}
	if sb.count() != total {
		t.Fatalf("subB received %d, want exactly %d (duplicates leaked)", sb.count(), total)
	}
}

func TestPropagateWithNoPeers(t *testing.T) {
	c := newCluster(t)
	lonely := c.addPeer("lonely", 1, rendezvous.RoleEdge)
	m := message.New(lonely.ep.PeerID())
	err := lonely.rdv.Propagate(m, "app.events", "net")
	if !errors.Is(err, rendezvous.ErrNoPeers) {
		t.Fatalf("err = %v", err)
	}
}

func TestLeaseExpiryDropsClient(t *testing.T) {
	c := newCluster(t)
	r := c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	e := c.addPeer("edge", 2, rendezvous.RoleEdge, "mem://rdv")
	if !e.rdv.AwaitConnected(5 * time.Second) {
		t.Fatal("edge never connected")
	}
	waitFor(t, func() bool { return len(r.rdv.ConnectedClients()) == 1 })
	// Stop the edge's renewals by closing it; the rendezvous must drop
	// the client after the lease TTL (2s in this cluster).
	e.rdv.Close()
	waitFor(t, func() bool { return len(r.rdv.ConnectedClients()) == 0 })
}

func TestRendezvousRestartHeals(t *testing.T) {
	c := newCluster(t)
	r := c.addPeer("rdv", 1, rendezvous.RoleRendezvous)
	e := c.addPeer("edge", 2, rendezvous.RoleEdge, "mem://rdv")
	if !e.rdv.AwaitConnected(5 * time.Second) {
		t.Fatal("initial connect failed")
	}
	// Kill the rendezvous node entirely.
	r.rdv.Close()
	_ = r.ep.Close()
	// Start a replacement with the same address but a new identity.
	r2 := c.addPeer("rdv", 9, rendezvous.RoleRendezvous)
	// The edge's lease loop keeps retrying the seed; eventually it holds
	// a lease with the new rendezvous.
	waitFor(t, func() bool {
		for _, id := range e.rdv.ConnectedRendezvous() {
			if id == r2.ep.PeerID() {
				return true
			}
		}
		return false
	})
}

func TestInvalidRole(t *testing.T) {
	c := newCluster(t)
	node, err := c.net.AddNode("x")
	if err != nil {
		t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, 1))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ep.Close() })
	if _, err := rendezvous.New(ep, rendezvous.Config{}); err == nil {
		t.Fatal("zero role accepted")
	}
}

func TestTTLBoundsPropagationDepth(t *testing.T) {
	// Chain of rendezvous longer than the TTL: the far end must not
	// receive a message whose hop budget ran out.
	c := newCluster(t)
	chain := []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8"}
	for i, name := range chain {
		var seeds []endpoint.Address
		if i > 0 {
			seeds = append(seeds, endpoint.MakeAddress("mem", chain[i-1]))
		}
		c.addPeer(name, uint64(10+i), rendezvous.RoleRendezvous, seeds...)
	}
	pub := c.addPeer("pub", 30, rendezvous.RoleEdge, "mem://r0")
	far := c.addPeer("far", 31, rendezvous.RoleEdge, "mem://r8")
	if !pub.rdv.AwaitConnected(5*time.Second) || !far.rdv.AwaitConnected(5*time.Second) {
		t.Fatal("never connected")
	}
	// Let the rendezvous chain link up (each must lease with its
	// predecessor).
	time.Sleep(300 * time.Millisecond)
	s := subscribe(t, far, "app.events")

	m := message.New(pub.ep.PeerID())
	m.TTL = 3 // pub -> r0 -> r1 -> r2, then exhausted
	m.AddString("app", "body", "short-ttl")
	if err := pub.rdv.Propagate(m, "app.events", "net"); err != nil {
		t.Fatal(err)
	}
	c.net.WaitQuiesce(5 * time.Second)
	if s.count() != 0 {
		t.Fatal("message crossed more hops than its TTL allowed")
	}

	m2 := message.New(pub.ep.PeerID())
	m2.TTL = 32
	m2.AddString("app", "body", "long-ttl")
	if err := pub.rdv.Propagate(m2, "app.events", "net"); err != nil {
		t.Fatal(err)
	}
	if got := s.waitOne(t); got.Text("app", "body") != "long-ttl" {
		t.Fatalf("got %q", got.Text("app", "body"))
	}
}

func TestAwaitConnectedFailsFastWhenAllSeedsUnreachable(t *testing.T) {
	// Seeds that point at nodes which do not exist fail at the transport
	// on every connect attempt; AwaitConnected must give up once the
	// evidence is conclusive instead of spinning out the full timeout.
	c := newCluster(t)
	e := c.addPeer("edge", 1, rendezvous.RoleEdge, "mem://ghost1", "mem://ghost2")
	start := time.Now()
	if e.rdv.AwaitConnected(30 * time.Second) {
		t.Fatal("connected to nonexistent seeds")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("AwaitConnected spun for %v instead of failing fast", elapsed)
	}
	if st := e.rdv.Stats(); st.SeedFailures < 2 {
		t.Fatalf("stats = %+v, want SeedFailures >= 2", st)
	}
}

func TestLeaseExpiryUnderClockSkew(t *testing.T) {
	// The rendezvous's clock jumps forward past the lease TTL (NTP step,
	// VM resume): the client's lease expires from the rendezvous's point
	// of view even though the client believes it is current. The
	// client's steady renewals must then re-establish it.
	c := newCluster(t)
	var skew atomic.Int64 // extra time applied to the rendezvous clock, in ns
	node, err := c.net.AddNode("rdv")
	if err != nil {
		t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, 1))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		t.Fatal(err)
	}
	const ttl = 2 * time.Second
	rdv, err := rendezvous.New(ep, rendezvous.Config{
		Role:       rendezvous.RoleRendezvous,
		GroupParam: "net",
		LeaseTTL:   ttl,
		Clock:      func() time.Time { return time.Now().Add(time.Duration(skew.Load())) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdv.Close(); _ = ep.Close() })

	e := c.addPeer("edge", 2, rendezvous.RoleEdge, "mem://rdv")
	if !e.rdv.AwaitConnected(5 * time.Second) {
		t.Fatal("edge never connected")
	}
	waitFor(t, func() bool { return len(rdv.ConnectedClients()) == 1 })

	skew.Store(int64(2 * ttl))
	if got := len(rdv.ConnectedClients()); got != 0 {
		t.Fatalf("client survived a %v clock jump past its lease", 2*ttl)
	}
	// The edge renews at ttl/3; the renewal grants a fresh lease stamped
	// with the skewed clock, so the client reappears.
	waitFor(t, func() bool { return len(rdv.ConnectedClients()) == 1 })
}

func TestSuspectProbeRecovery(t *testing.T) {
	// A one-way link failure makes rendezvous→edge sends fail while the
	// edge's renewals still arrive. The edge must be marked suspect and
	// probed — and once the link heals, the pong clears the suspicion
	// without an eviction.
	c := newCluster(t)
	node, err := c.net.AddNode("rdv")
	if err != nil {
		t.Fatal(err)
	}
	ep := endpoint.New(jid.FromSeed(jid.KindPeer, 1))
	if err := ep.AddTransport(memnet.New(node)); err != nil {
		t.Fatal(err)
	}
	rdv, err := rendezvous.New(ep, rendezvous.Config{
		Role:         rendezvous.RoleRendezvous,
		GroupParam:   "net",
		LeaseTTL:     time.Second,
		SuspectAfter: 2,
		EvictAfter:   50, // keep eviction out of this test
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdv.Close(); _ = ep.Close() })

	pub := c.addPeer("pub", 2, rendezvous.RoleEdge, "mem://rdv")
	sub := c.addPeer("sub", 3, rendezvous.RoleEdge, "mem://rdv")
	if !pub.rdv.AwaitConnected(5*time.Second) || !sub.rdv.AwaitConnected(5*time.Second) {
		t.Fatal("peers never connected")
	}
	sink := subscribe(t, sub, "app.events")

	// Break only rdv → sub; renewals (sub → rdv) keep the lease alive.
	c.net.SetLink("rdv", "sub", netsim.Link{Latency: time.Millisecond, Down: true})
	for i := 0; i < 3; i++ {
		m := message.New(pub.ep.PeerID())
		m.AddBytes("app", "n", []byte{byte(i)})
		if err := pub.rdv.Propagate(m, "app.events", "net"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitFor(t, func() bool { return rdv.Stats().Suspected >= 1 })
	if st := rdv.Stats(); st.SendFailures == 0 || st.Probes == 0 {
		t.Fatalf("stats = %+v, want send failures and a probe", st)
	}

	c.net.SetLink("rdv", "sub", netsim.Link{Latency: time.Millisecond})
	// The maintenance loop re-probes the surviving suspect; the pong
	// clears it and propagation flows again.
	m := message.New(pub.ep.PeerID())
	m.AddString("app", "body", "after-heal")
	waitFor(t, func() bool {
		_ = pub.rdv.Propagate(m.Dup(), "app.events", "net")
		return sink.count() > 0
	})
	if st := rdv.Stats(); st.Evicted != 0 {
		t.Fatalf("stats = %+v, want no evictions", st)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
