package adv

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

func samplePeerAdv() *PeerAdv {
	return &PeerAdv{
		PeerID:     jid.FromSeed(jid.KindPeer, 1),
		GroupID:    jid.NetGroup,
		Name:       "peer-one",
		Desc:       "a test peer",
		Addresses:  []string{"tcp://10.0.0.1:9701", "mem://n1"},
		Rendezvous: true,
	}
}

func samplePipeAdv() *PipeAdv {
	return &PipeAdv{
		PipeID: jid.FromSeed(jid.KindPipe, 2),
		Type:   PipePropagate,
		Name:   "PS.SkiRental",
	}
}

func sampleGroupAdv() *PeerGroupAdv {
	return &PeerGroupAdv{
		GroupID:    jid.FromSeed(jid.KindGroup, 3),
		PeerID:     jid.FromSeed(jid.KindPeer, 1),
		Name:       "PS.SkiRental",
		Desc:       "ski rental event group",
		GroupImpl:  "stdgroup",
		App:        "tps",
		Rendezvous: true,
		Services: []ServiceAdv{{
			Name:     "jxta.service.wire",
			Version:  "1.0",
			Keywords: "PS.SkiRental",
			Pipe:     samplePipeAdv(),
		}},
	}
}

func sampleRouteAdv() *RouteAdv {
	return &RouteAdv{
		DestPeer:  jid.FromSeed(jid.KindPeer, 5),
		Addresses: []string{"tcp://10.0.0.5:9701"},
		Hops: []Hop{
			{PeerID: jid.FromSeed(jid.KindPeer, 6), Addresses: []string{"tcp://10.0.0.6:9701"}},
		},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	advs := []Advertisement{
		samplePeerAdv(),
		samplePipeAdv(),
		sampleGroupAdv(),
		sampleRouteAdv(),
		&ServiceAdv{Name: "jxta.service.resolver", Params: []string{"p1", "p2"}},
	}
	for _, a := range advs {
		t.Run(a.AdvType(), func(t *testing.T) {
			doc, err := Marshal(a)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Unmarshal(doc)
			if err != nil {
				t.Fatalf("Unmarshal: %v\ndoc:\n%s", err, doc)
			}
			if got.AdvType() != a.AdvType() {
				t.Fatalf("type = %q, want %q", got.AdvType(), a.AdvType())
			}
			if got.AdvID() != a.AdvID() {
				t.Fatalf("id = %v, want %v", got.AdvID(), a.AdvID())
			}
			if got.AdvName() != a.AdvName() {
				t.Fatalf("name = %q, want %q", got.AdvName(), a.AdvName())
			}
			if got.Kind() != a.Kind() {
				t.Fatalf("kind = %v, want %v", got.Kind(), a.Kind())
			}
		})
	}
}

func TestRoundTripPreservesFields(t *testing.T) {
	orig := sampleGroupAdv()
	doc, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := got.(*PeerGroupAdv)
	if !ok {
		t.Fatalf("got %T", got)
	}
	g.XMLName = orig.XMLName // XMLName is set by the decoder; ignore
	if len(g.Services) == 1 {
		g.Services[0].XMLName = orig.Services[0].XMLName
		if g.Services[0].Pipe != nil {
			g.Services[0].Pipe.XMLName = orig.Services[0].Pipe.XMLName
		}
	}
	if !reflect.DeepEqual(g, orig) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", g, orig)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("<UnknownAdvertisement/>")); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type: %v", err)
	}
	if _, err := Unmarshal([]byte("not xml at all")); !errors.Is(err, ErrNotXML) {
		t.Fatalf("garbage: %v", err)
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil doc parsed")
	}
	// Root is known but the body is broken XML.
	if _, err := Unmarshal([]byte("<PipeAdvertisement><Id>oops")); err == nil {
		t.Fatal("truncated doc parsed")
	}
	// Known root, but an ID field that fails jid parsing.
	if _, err := Unmarshal([]byte("<PipeAdvertisement><Id>bogus</Id></PipeAdvertisement>")); err == nil {
		t.Fatal("bogus ID parsed")
	}
}

func TestGroupServiceAccessors(t *testing.T) {
	g := sampleGroupAdv()
	if _, ok := g.Service("jxta.service.wire"); !ok {
		t.Fatal("wire service not found")
	}
	if _, ok := g.Service("absent"); ok {
		t.Fatal("absent service found")
	}
	g.SetService(ServiceAdv{Name: "jxta.service.wire", Version: "2.0"})
	s, _ := g.Service("jxta.service.wire")
	if s.Version != "2.0" {
		t.Fatalf("SetService did not replace: %+v", s)
	}
	if len(g.Services) != 1 {
		t.Fatalf("SetService duplicated: %d", len(g.Services))
	}
	g.SetService(ServiceAdv{Name: "jxta.service.resolver"})
	if len(g.Services) != 2 {
		t.Fatal("SetService did not append new service")
	}
}

func TestMatch(t *testing.T) {
	p := samplePipeAdv() // Name "PS.SkiRental"
	cases := []struct {
		attr, value string
		want        bool
	}{
		{"", "anything", true},
		{"Name", "PS.SkiRental", true},
		{"Name", "PS.Ski*", true},
		{"Name", "PS.*", true},
		{"Name", "*", true},
		{"Name", "PS.Bike*", false},
		{"Name", "ps.skirental", false}, // case sensitive
		{"ID", p.PipeID.String(), true},
		{"ID", jid.New(jid.KindPipe).String(), false},
		{"Unsupported", "x", false},
	}
	for _, c := range cases {
		if got := Match(p, c.attr, c.value); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.attr, c.value, got, c.want)
		}
	}
}

func TestRecordAging(t *testing.T) {
	now := time.Unix(1000, 0)
	r := Record{
		Adv:        samplePipeAdv(),
		Published:  now,
		Lifetime:   time.Hour,
		Expiration: 30 * time.Minute,
	}
	if r.Expired(now) {
		t.Fatal("expired at publication")
	}
	if r.Expired(now.Add(59 * time.Minute)) {
		t.Fatal("expired before lifetime")
	}
	if !r.Expired(now.Add(time.Hour)) {
		t.Fatal("not expired at lifetime")
	}
	if got := r.Age(now.Add(10 * time.Minute)); got != 10*time.Minute {
		t.Fatalf("Age = %v", got)
	}
	if got := r.RemainingExpiration(now.Add(10 * time.Minute)); got != 20*time.Minute {
		t.Fatalf("RemainingExpiration = %v", got)
	}
	if got := r.RemainingExpiration(now.Add(2 * time.Hour)); got != 0 {
		t.Fatalf("RemainingExpiration past end = %v", got)
	}
	newer := Record{Published: now.Add(time.Minute)}
	if !newer.Fresher(r) || r.Fresher(newer) {
		t.Fatal("Fresher ordering wrong")
	}
}

func TestKindString(t *testing.T) {
	if Peer.String() != "PEER" || Group.String() != "GROUP" || Adv.String() != "ADV" {
		t.Fatal("kind names wrong")
	}
	if Kind(0).String() != "KIND(?)" {
		t.Fatal("zero kind should be invalid")
	}
}

// Property: peer advertisements round-trip for arbitrary names and
// address lists (XML escaping must not lose data).
func TestQuickPeerAdvRoundTrip(t *testing.T) {
	f := func(seed uint64, name string, addrs []string) bool {
		if !validXMLText(name) {
			return true // XML cannot carry arbitrary control bytes; skip
		}
		for _, a := range addrs {
			if !validXMLText(a) {
				return true
			}
		}
		orig := &PeerAdv{
			PeerID:    jid.FromSeed(jid.KindPeer, seed),
			GroupID:   jid.NetGroup,
			Name:      name,
			Addresses: addrs,
		}
		doc, err := Marshal(orig)
		if err != nil {
			return false
		}
		got, err := Unmarshal(doc)
		if err != nil {
			return false
		}
		p, ok := got.(*PeerAdv)
		if !ok {
			return false
		}
		if len(orig.Addresses) == 0 && len(p.Addresses) == 0 {
			return p.PeerID == orig.PeerID && p.Name == orig.Name
		}
		return p.PeerID == orig.PeerID && p.Name == orig.Name &&
			reflect.DeepEqual(p.Addresses, orig.Addresses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// validXMLText reports whether s survives an XML round trip: Go's encoder
// rejects or mangles control characters and CR.
func validXMLText(s string) bool {
	for _, r := range s {
		if r < 0x20 && r != '\t' && r != '\n' {
			return false
		}
		if r == 0xFFFD || r == '\r' {
			return false
		}
	}
	return strings.ToValidUTF8(s, "") == s
}
