// Package adv implements JXTA advertisements.
//
// An advertisement is an XML document announcing a resource — a peer, a
// peer group, a pipe, a service or a route — so other peers can discover
// and use it. Every advertisement carries an age: the Peer Discovery
// Protocol distinguishes stale advertisements from fresh ones and expires
// cached entries whose lifetime has elapsed.
//
// The package mirrors JXTA's AdvertisementFactory: Marshal renders any
// advertisement as its canonical XML document and Unmarshal sniffs the
// root element to rebuild the concrete type.
package adv

import (
	"strings"
	"time"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// Kind selects one of the three discovery indexes, mirroring JXTA's
// Discovery.PEER, Discovery.GROUP and Discovery.ADV constants.
type Kind int

// Discovery index kinds.
const (
	Peer Kind = iota + 1
	Group
	Adv
)

// String returns the index name.
func (k Kind) String() string {
	switch k {
	case Peer:
		return "PEER"
	case Group:
		return "GROUP"
	case Adv:
		return "ADV"
	default:
		return "KIND(?)"
	}
}

// Advertisement is the interface satisfied by every advertisement type.
type Advertisement interface {
	// AdvType returns the document type, e.g. "jxta:PipeAdvertisement".
	AdvType() string
	// AdvID returns the ID of the advertised resource. Two advertisements
	// with the same AdvID describe the same resource; caches keep the
	// freshest one.
	AdvID() jid.ID
	// AdvName returns the human-readable name attribute used by
	// name-based discovery queries.
	AdvName() string
	// Kind returns the discovery index the advertisement belongs to.
	Kind() Kind
}

// Default cache parameters, mirroring JXTA's defaults in spirit: locally
// published advertisements live long; what we tell remote peers is much
// shorter so stale information ages out of the network.
const (
	DefaultLifetime   = 4 * time.Hour
	DefaultExpiration = 2 * time.Hour
)

// Record is a cached advertisement plus its age bookkeeping.
type Record struct {
	Adv Advertisement
	// Published is when the record entered this cache.
	Published time.Time
	// Lifetime is how long this cache keeps the record.
	Lifetime time.Duration
	// Expiration is the remaining lifetime announced to remote peers when
	// the record is forwarded in a discovery response.
	Expiration time.Duration
}

// Age returns how long ago the record was published here.
func (r Record) Age(now time.Time) time.Duration { return now.Sub(r.Published) }

// Expired reports whether the record has outlived its local lifetime.
func (r Record) Expired(now time.Time) bool { return r.Age(now) >= r.Lifetime }

// RemainingExpiration returns the expiration to announce to a remote peer
// at time now, never negative.
func (r Record) RemainingExpiration(now time.Time) time.Duration {
	rem := r.Expiration - r.Age(now)
	if rem < 0 {
		return 0
	}
	return rem
}

// Fresher reports whether r should replace old in a cache: a record is
// fresher if it was published later.
func (r Record) Fresher(old Record) bool { return r.Published.After(old.Published) }

// Match reports whether the advertisement matches an attribute query.
// Supported attributes are "Name" and "ID"; a trailing '*' in value makes
// the comparison a prefix match, which is how the paper's finder locates
// all advertisements related to a type ("Name", prefix+"*"). An empty
// attribute matches everything.
func Match(a Advertisement, attr, value string) bool {
	if attr == "" {
		return true
	}
	var field string
	switch attr {
	case "Name":
		field = a.AdvName()
	case "ID":
		field = a.AdvID().String()
	default:
		return false
	}
	if strings.HasSuffix(value, "*") {
		return strings.HasPrefix(field, strings.TrimSuffix(value, "*"))
	}
	return field == value
}
