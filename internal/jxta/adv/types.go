package adv

import (
	"encoding/xml"

	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// Document type names. They double as the XML root element names.
const (
	TypePeer      = "jxta:PeerAdvertisement"
	TypePeerGroup = "jxta:PeerGroupAdvertisement"
	TypePipe      = "jxta:PipeAdvertisement"
	TypeService   = "jxta:ServiceAdvertisement"
	TypeRoute     = "jxta:RouteAdvertisement"
)

// Pipe type attribute values.
const (
	// PipeUnicast is an asynchronous unidirectional point-to-point pipe.
	PipeUnicast = "JxtaUnicast"
	// PipePropagate is a many-to-many propagated pipe (the wire service).
	PipePropagate = "JxtaPropagate"
)

// PeerAdv announces a peer: its identity, name, the group it lives in,
// the endpoint addresses it listens on, and whether it acts as a
// rendezvous for others.
type PeerAdv struct {
	XMLName    xml.Name `xml:"PeerAdvertisement"`
	PeerID     jid.ID   `xml:"PID"`
	GroupID    jid.ID   `xml:"GID"`
	Name       string   `xml:"Name"`
	Desc       string   `xml:"Desc,omitempty"`
	Addresses  []string `xml:"EndpointAddresses>Addr"`
	Rendezvous bool     `xml:"IsRendezvous,omitempty"`
}

// AdvType implements Advertisement.
func (a *PeerAdv) AdvType() string { return TypePeer }

// AdvID implements Advertisement.
func (a *PeerAdv) AdvID() jid.ID { return a.PeerID }

// AdvName implements Advertisement.
func (a *PeerAdv) AdvName() string { return a.Name }

// Kind implements Advertisement.
func (a *PeerAdv) Kind() Kind { return Peer }

// PipeAdv announces a pipe: a virtual, address-independent communication
// channel identified solely by its pipe ID. In the paper's TPS layer the
// pipe name is the name of the event type the pipe carries.
type PipeAdv struct {
	XMLName xml.Name `xml:"PipeAdvertisement"`
	PipeID  jid.ID   `xml:"Id"`
	Type    string   `xml:"Type"`
	Name    string   `xml:"Name"`
}

// AdvType implements Advertisement.
func (a *PipeAdv) AdvType() string { return TypePipe }

// AdvID implements Advertisement.
func (a *PipeAdv) AdvID() jid.ID { return a.PipeID }

// AdvName implements Advertisement.
func (a *PipeAdv) AdvName() string { return a.Name }

// Kind implements Advertisement.
func (a *PipeAdv) Kind() Kind { return Adv }

// ServiceAdv describes a service offered inside a peer group, optionally
// bound to a pipe (the wire service advertises its propagated pipe this
// way, cf. the paper's AdvertisementsCreator lines 27–44).
type ServiceAdv struct {
	XMLName  xml.Name `xml:"ServiceAdvertisement"`
	Name     string   `xml:"Name"`
	Version  string   `xml:"Version,omitempty"`
	URI      string   `xml:"Uri,omitempty"`
	Code     string   `xml:"Code,omitempty"`
	Security string   `xml:"Security,omitempty"`
	Keywords string   `xml:"Keywords,omitempty"`
	Params   []string `xml:"Params>Param,omitempty"`
	Pipe     *PipeAdv `xml:"PipeAdvertisement,omitempty"`
}

// AdvType implements Advertisement.
func (a *ServiceAdv) AdvType() string { return TypeService }

// AdvID implements Advertisement. A service advertisement names its pipe's
// resource when bound to one.
func (a *ServiceAdv) AdvID() jid.ID {
	if a.Pipe != nil {
		return a.Pipe.PipeID
	}
	return jid.Nil
}

// AdvName implements Advertisement.
func (a *ServiceAdv) AdvName() string { return a.Name }

// Kind implements Advertisement.
func (a *ServiceAdv) Kind() Kind { return Adv }

// PeerGroupAdv announces a peer group together with the services it
// provides. The paper's TPS layer publishes one peer-group advertisement
// per event type, embedding the wire service bound to the type's pipe.
type PeerGroupAdv struct {
	XMLName    xml.Name     `xml:"PeerGroupAdvertisement"`
	GroupID    jid.ID       `xml:"GID"`
	PeerID     jid.ID       `xml:"PID"` // publishing peer
	Name       string       `xml:"Name"`
	Desc       string       `xml:"Desc,omitempty"`
	GroupImpl  string       `xml:"GroupImpl,omitempty"`
	App        string       `xml:"App,omitempty"`
	Rendezvous bool         `xml:"IsRendezvous,omitempty"`
	Services   []ServiceAdv `xml:"Svcs>ServiceAdvertisement,omitempty"`
}

// AdvType implements Advertisement.
func (a *PeerGroupAdv) AdvType() string { return TypePeerGroup }

// AdvID implements Advertisement.
func (a *PeerGroupAdv) AdvID() jid.ID { return a.GroupID }

// AdvName implements Advertisement.
func (a *PeerGroupAdv) AdvName() string { return a.Name }

// Kind implements Advertisement.
func (a *PeerGroupAdv) Kind() Kind { return Group }

// Service returns the named service advertisement, if present.
func (a *PeerGroupAdv) Service(name string) (ServiceAdv, bool) {
	for _, s := range a.Services {
		if s.Name == name {
			return s, true
		}
	}
	return ServiceAdv{}, false
}

// SetService replaces the named service or appends it, mirroring the
// Hashtable-based services map of the paper's AdvertisementsCreator.
func (a *PeerGroupAdv) SetService(s ServiceAdv) {
	for i := range a.Services {
		if a.Services[i].Name == s.Name {
			a.Services[i] = s
			return
		}
	}
	a.Services = append(a.Services, s)
}

// Hop is one step of a route.
type Hop struct {
	PeerID    jid.ID   `xml:"PID"`
	Addresses []string `xml:"Addr,omitempty"`
}

// RouteAdv announces how to reach a destination peer, possibly through
// relay hops (Endpoint Routing Protocol). The destination's direct
// addresses come first; if they are unreachable the hops are traversed in
// order.
type RouteAdv struct {
	XMLName   xml.Name `xml:"RouteAdvertisement"`
	DestPeer  jid.ID   `xml:"DstPID"`
	Addresses []string `xml:"DstAddr,omitempty"`
	Hops      []Hop    `xml:"Hops>Hop,omitempty"`
}

// AdvType implements Advertisement.
func (a *RouteAdv) AdvType() string { return TypeRoute }

// AdvID implements Advertisement.
func (a *RouteAdv) AdvID() jid.ID { return a.DestPeer }

// AdvName implements Advertisement. Routes are matched by destination ID,
// not name.
func (a *RouteAdv) AdvName() string { return "" }

// Kind implements Advertisement.
func (a *RouteAdv) Kind() Kind { return Adv }

// Interface compliance checks.
var (
	_ Advertisement = (*PeerAdv)(nil)
	_ Advertisement = (*PipeAdv)(nil)
	_ Advertisement = (*ServiceAdv)(nil)
	_ Advertisement = (*PeerGroupAdv)(nil)
	_ Advertisement = (*RouteAdv)(nil)
)
