package adv

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
)

// Factory errors.
var (
	// ErrUnknownType is returned by Unmarshal for documents whose root
	// element names no registered advertisement type.
	ErrUnknownType = errors.New("adv: unknown advertisement type")
	// ErrNotXML is returned for byte streams that do not parse as XML.
	ErrNotXML = errors.New("adv: malformed XML")
)

// Marshal renders the advertisement as its canonical XML document. The
// document is self-describing: Unmarshal recovers the concrete type from
// the root element.
func Marshal(a Advertisement) ([]byte, error) {
	out, err := xml.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("adv: marshal %s: %w", a.AdvType(), err)
	}
	return out, nil
}

// Unmarshal parses an XML document produced by Marshal, sniffing the root
// element to choose the concrete advertisement type — the Go analogue of
// JXTA's AdvertisementFactory.newAdvertisement(type).
func Unmarshal(doc []byte) (Advertisement, error) {
	root, err := rootElement(doc)
	if err != nil {
		return nil, err
	}
	var a Advertisement
	switch root {
	case "PeerAdvertisement":
		a = &PeerAdv{}
	case "PeerGroupAdvertisement":
		a = &PeerGroupAdv{}
	case "PipeAdvertisement":
		a = &PipeAdv{}
	case "ServiceAdvertisement":
		a = &ServiceAdv{}
	case "RouteAdvertisement":
		a = &RouteAdv{}
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, root)
	}
	if err := xml.Unmarshal(doc, a); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotXML, err)
	}
	return a, nil
}

// rootElement returns the name of the first start element.
func rootElement(doc []byte) (string, error) {
	dec := xml.NewDecoder(bytes.NewReader(doc))
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("%w: %v", ErrNotXML, err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			return start.Name.Local, nil
		}
	}
}
