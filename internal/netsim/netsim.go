// Package netsim simulates a wide-area network inside one process.
//
// A Network hosts named nodes connected by directed links with
// configurable latency, jitter, bandwidth and loss. Nodes can be
// firewalled (they refuse unsolicited inbound traffic until they have
// opened an outbound flow, the way NAT/firewall traversal behaves for the
// Endpoint Routing Protocol) and the network can be partitioned and
// healed to inject failures.
//
// Delivery preserves per-(sender,receiver) FIFO order, matching what a
// TCP connection between two peers would provide. All randomness (loss,
// jitter) comes from a single seeded source so failures are reproducible.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Link describes one direction of connectivity between two nodes.
type Link struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// Bandwidth in bytes/second; 0 means unlimited. Transmission time
	// (size/bandwidth) is added to the propagation delay and serialises
	// back-to-back messages on the same link.
	Bandwidth int
	// Loss is the probability in [0,1] that a message silently vanishes.
	Loss float64
	// Down marks the link administratively down (partition).
	Down bool
}

// Config configures a Network.
type Config struct {
	// Seed feeds the deterministic random source. Zero means seed 1.
	Seed int64
	// DefaultLink is used for node pairs without an explicit SetLink.
	DefaultLink Link
}

// Errors returned by Send.
var (
	ErrUnknownNode = errors.New("netsim: unknown node")
	ErrNodeClosed  = errors.New("netsim: node closed")
	ErrNetClosed   = errors.New("netsim: network closed")
	ErrLinkDown    = errors.New("netsim: link down")
	ErrFirewalled  = errors.New("netsim: destination firewalled")
	ErrDuplicate   = errors.New("netsim: node name in use")
)

// Handler consumes messages delivered to a node. Handlers for one node
// run serially in FIFO order; handlers of different nodes run
// concurrently.
type Handler func(from string, data []byte)

type pairKey struct{ from, to string }

// Network is a simulated WAN.
type Network struct {
	mu       sync.Mutex
	rng      *rand.Rand
	cfg      Config
	nodes    map[string]*Node
	links    map[pairKey]Link
	lastAt   map[pairKey]time.Time
	linkFree map[pairKey]time.Time // when the pair's link finishes its current transmission
	nodeFree map[string]time.Time  // when the node finishes processing its current delivery
	nodeFrom map[string]string     // last sender whose delivery the node processed
	flows    map[pairKey]struct{}  // outbound flows opened by firewalled nodes
	seq      uint64
	inflight int
	idle     *sync.Cond
	events   eventHeap
	wake     chan struct{}
	closed   bool
	done     chan struct{}
}

// New creates a network and starts its delivery scheduler.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	n := &Network{
		rng:      rand.New(rand.NewSource(seed)),
		cfg:      cfg,
		nodes:    make(map[string]*Node),
		links:    make(map[pairKey]Link),
		lastAt:   make(map[pairKey]time.Time),
		linkFree: make(map[pairKey]time.Time),
		nodeFree: make(map[string]time.Time),
		nodeFrom: make(map[string]string),
		flows:    make(map[pairKey]struct{}),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	n.idle = sync.NewCond(&n.mu)
	go n.run()
	return n
}

// NodeOption customises AddNode.
type NodeOption func(*Node)

// WithFirewall marks the node as refusing unsolicited inbound messages.
// Peers it has previously sent to may respond (the outbound flow punches
// the hole), which is exactly the asymmetry the Endpoint Routing Protocol
// works around with relay peers.
func WithFirewall() NodeOption {
	return func(nd *Node) { nd.firewalled = true }
}

// WithProcessing models receiver-side cost: every message delivered to
// the node occupies it for perMsg plus size/bytesPerSec (0 disables the
// size-dependent part). Deliveries to the node serialise behind this
// cost, so a flooded receiver saturates — the behaviour the paper's
// subscriber-throughput experiment exhibits on 2001 hardware.
func WithProcessing(perMsg time.Duration, bytesPerSec int) NodeOption {
	return func(nd *Node) {
		nd.procPerMsg = perMsg
		nd.procBandwidth = bytesPerSec
	}
}

// WithSwitchPenalty adds an extra processing cost whenever a delivery
// comes from a different sender than the previous one: the
// per-connection overhead (thread switches, buffer churn) that made a
// multi-publisher flood collapse a 2001-era receiver's total rate.
func WithSwitchPenalty(d time.Duration) NodeOption {
	return func(nd *Node) { nd.procSwitch = d }
}

// AddNode creates a node. Names must be unique for the life of the
// network; a closed node's name may be reused (peer restart).
func (n *Network) AddNode(name string, opts ...NodeOption) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNetClosed
	}
	if old, ok := n.nodes[name]; ok && !old.closed {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	nd := &Node{name: name, net: n}
	nd.cond = sync.NewCond(&nd.mu)
	for _, opt := range opts {
		opt(nd)
	}
	n.nodes[name] = nd
	go nd.dispatch()
	return nd, nil
}

// Node returns the live node with the given name.
func (n *Network) Node(name string) (*Node, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[name]
	if !ok || nd.closed {
		return nil, false
	}
	return nd, true
}

// SetLink installs a directional link override from → to.
func (n *Network) SetLink(from, to string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[pairKey{from, to}] = l
}

// SetBidirectional installs the same link in both directions.
func (n *Network) SetBidirectional(a, b string, l Link) {
	n.SetLink(a, b, l)
	n.SetLink(b, a, l)
}

// SetLinkDown raises or clears the down flag in both directions.
func (n *Network) SetLinkDown(a, b string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range []pairKey{{a, b}, {b, a}} {
		l, ok := n.links[k]
		if !ok {
			l = n.cfg.DefaultLink
		}
		l.Down = down
		n.links[k] = l
	}
}

// Partition cuts every link that crosses between the given groups.
// Links inside a group are untouched.
func (n *Network) Partition(groups ...[]string) {
	for i := range groups {
		for j := i + 1; j < len(groups); j++ {
			for _, a := range groups[i] {
				for _, b := range groups[j] {
					n.SetLinkDown(a, b, true)
				}
			}
		}
	}
}

// Heal clears the down flag on every link.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k, l := range n.links {
		l.Down = false
		n.links[k] = l
	}
}

func (n *Network) linkFor(from, to string) Link {
	if l, ok := n.links[pairKey{from, to}]; ok {
		return l
	}
	return n.cfg.DefaultLink
}

// WaitQuiesce blocks until no messages are in flight (scheduled, queued
// or being handled) or the timeout elapses. It reports whether the
// network went idle.
func (n *Network) WaitQuiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		n.mu.Lock()
		n.idle.Broadcast()
		n.mu.Unlock()
	})
	defer timer.Stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.inflight != 0 {
		if time.Now().After(deadline) {
			return false
		}
		n.idle.Wait()
	}
	return true
}

// Close shuts the network down. Pending messages are discarded.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	nodes := make([]*Node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	close(n.done)
	n.mu.Unlock()
	for _, nd := range nodes {
		nd.Close()
	}
}

// event is a scheduled delivery.
type event struct {
	at   time.Time
	seq  uint64
	dst  *Node
	from string
	data []byte
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// run is the delivery scheduler: a single goroutine that pops due events
// in (time, sequence) order and hands them to the destination mailboxes.
func (n *Network) run() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.mu.Lock()
		for len(n.events) == 0 {
			n.mu.Unlock()
			select {
			case <-n.wake:
			case <-n.done:
				return
			}
			n.mu.Lock()
		}
		next := n.events.peek()
		now := time.Now()
		if next.at.After(now) {
			wait := next.at.Sub(now)
			n.mu.Unlock()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-n.wake:
			case <-n.done:
				return
			}
			continue
		}
		e := heap.Pop(&n.events).(event)
		n.mu.Unlock()
		e.dst.enqueue(e.from, e.data)
	}
}

func (n *Network) schedule(e event) {
	heap.Push(&n.events, e)
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// finishOne decrements the in-flight counter. Callers hold n.mu or call
// via the locked helpers.
func (n *Network) finishOneLocked() {
	n.inflight--
	if n.inflight == 0 {
		n.idle.Broadcast()
	}
}

func (n *Network) finishOne() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.finishOneLocked()
}
