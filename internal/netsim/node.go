package netsim

import (
	"fmt"
	"sync"
	"time"
)

// NodeStats counts a node's traffic. Lost messages were sent but dropped
// by a lossy or partitioned link; they are counted at the sender.
type NodeStats struct {
	MsgsIn   int
	MsgsOut  int
	BytesIn  int
	BytesOut int
	MsgsLost int
}

// Node is one endpoint of the simulated network.
type Node struct {
	name          string
	net           *Network
	firewalled    bool
	procPerMsg    time.Duration
	procBandwidth int
	procSwitch    time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []delivery
	handler Handler
	stats   NodeStats
	closed  bool
}

type delivery struct {
	from string
	data []byte
}

// Name returns the node's unique name.
func (nd *Node) Name() string { return nd.name }

// Firewalled reports whether the node refuses unsolicited inbound
// messages.
func (nd *Node) Firewalled() bool { return nd.firewalled }

// SetHandler installs the message handler. Messages arriving while no
// handler is installed are queued and handed to the handler once set.
func (nd *Node) SetHandler(h Handler) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.handler = h
	nd.cond.Broadcast()
}

// Stats returns a snapshot of the node's traffic counters.
func (nd *Node) Stats() NodeStats {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.stats
}

// Close stops the node. Queued messages are dropped; subsequent sends to
// or from the node fail with ErrNodeClosed.
func (nd *Node) Close() {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return
	}
	nd.closed = true
	dropped := len(nd.queue)
	nd.queue = nil
	nd.cond.Broadcast()
	nd.mu.Unlock()

	if dropped > 0 {
		nd.net.mu.Lock()
		for i := 0; i < dropped; i++ {
			nd.net.finishOneLocked()
		}
		nd.net.mu.Unlock()
	}
}

// Send transmits data to the named node, subject to the link's latency,
// bandwidth, loss and partition state and to the destination's firewall
// policy. A nil error means the message entered the network — not that it
// will arrive (lossy links drop silently, as UDP or a mid-stream
// disconnect would).
func (nd *Node) Send(to string, data []byte) error {
	n := nd.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNetClosed
	}
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		n.mu.Unlock()
		return ErrNodeClosed
	}
	nd.stats.MsgsOut++
	nd.stats.BytesOut += len(data)
	nd.mu.Unlock()

	dst, ok := n.nodes[to]
	if !ok || dst.isClosed() {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	link := n.linkFor(nd.name, to)
	if link.Down {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s -> %s", ErrLinkDown, nd.name, to)
	}
	// Firewall: unsolicited inbound is refused unless the destination
	// previously opened an outbound flow to us.
	if dst.firewalled {
		if _, open := n.flows[pairKey{to, nd.name}]; !open {
			n.mu.Unlock()
			return fmt.Errorf("%w: %s -> %s", ErrFirewalled, nd.name, to)
		}
	}
	// A firewalled sender punches a return hole to the destination.
	if nd.firewalled {
		n.flows[pairKey{nd.name, to}] = struct{}{}
	}
	if link.Loss > 0 && n.rng.Float64() < link.Loss {
		nd.mu.Lock()
		nd.stats.MsgsLost++
		nd.mu.Unlock()
		n.mu.Unlock()
		return nil // silently lost in transit
	}

	now := time.Now()
	key := pairKey{nd.name, to}
	// Bandwidth serialises the link: a transmission starts only when the
	// previous one on the same directed pair has finished.
	start := now
	if free, ok := n.linkFree[key]; ok && free.After(start) {
		start = free
	}
	var transmit time.Duration
	if link.Bandwidth > 0 {
		transmit = time.Duration(float64(len(data)) / float64(link.Bandwidth) * float64(time.Second))
	}
	n.linkFree[key] = start.Add(transmit)
	delay := link.Latency
	if link.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(link.Jitter)))
	}
	at := start.Add(transmit + delay)
	// Receiver-side processing: deliveries to a node serialise behind
	// its per-message cost, so flooding it saturates.
	if dst.procPerMsg > 0 || dst.procBandwidth > 0 || dst.procSwitch > 0 {
		if free, ok := n.nodeFree[to]; ok && free.After(at) {
			at = free
		}
		proc := dst.procPerMsg
		if dst.procBandwidth > 0 {
			proc += time.Duration(float64(len(data)) / float64(dst.procBandwidth) * float64(time.Second))
		}
		if dst.procSwitch > 0 && n.nodeFrom[to] != nd.name {
			proc += dst.procSwitch
		}
		n.nodeFrom[to] = nd.name
		at = at.Add(proc)
		n.nodeFree[to] = at
	}
	// Per-pair FIFO: never deliver before an earlier message on the same
	// directed pair (jitter must not reorder).
	if last, ok := n.lastAt[key]; ok && at.Before(last) {
		at = last
	}
	n.lastAt[key] = at
	n.seq++
	n.inflight++
	payload := append([]byte(nil), data...)
	n.schedule(event{at: at, seq: n.seq, dst: dst, from: nd.name, data: payload})
	n.mu.Unlock()
	return nil
}

func (nd *Node) isClosed() bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.closed
}

// enqueue appends a delivery to the node's mailbox (called by the
// network scheduler).
func (nd *Node) enqueue(from string, data []byte) {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		nd.net.finishOne()
		return
	}
	nd.stats.MsgsIn++
	nd.stats.BytesIn += len(data)
	nd.queue = append(nd.queue, delivery{from: from, data: data})
	nd.cond.Broadcast()
	nd.mu.Unlock()
}

// dispatch drains the mailbox, invoking the handler serially so each node
// sees FIFO per-sender ordering.
func (nd *Node) dispatch() {
	for {
		nd.mu.Lock()
		for len(nd.queue) == 0 || nd.handler == nil {
			if nd.closed {
				nd.mu.Unlock()
				return
			}
			nd.cond.Wait()
		}
		d := nd.queue[0]
		nd.queue = nd.queue[1:]
		h := nd.handler
		nd.mu.Unlock()

		h(d.from, d.data)
		nd.net.finishOne()
	}
}
