package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n := New(cfg)
	t.Cleanup(n.Close)
	return n
}

// collector accumulates deliveries for assertions.
type collector struct {
	mu   sync.Mutex
	msgs []string
	from []string
}

func (c *collector) handler(from string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, string(data))
	c.from = append(c.from, from)
}

func (c *collector) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.msgs...)
}

func TestBasicDelivery(t *testing.T) {
	n := newTestNet(t, Config{})
	a, err := n.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddNode("b")
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	b.SetHandler(c.handler)
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if !n.WaitQuiesce(2 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	got := c.snapshot()
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v", got)
	}
	st := a.Stats()
	if st.MsgsOut != 1 || st.BytesOut != 5 {
		t.Fatalf("sender stats %+v", st)
	}
	if st := b.Stats(); st.MsgsIn != 1 || st.BytesIn != 5 {
		t.Fatalf("receiver stats %+v", st)
	}
}

func TestFIFOPerPair(t *testing.T) {
	n := newTestNet(t, Config{DefaultLink: Link{Latency: time.Millisecond, Jitter: 3 * time.Millisecond}})
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	var c collector
	b.SetHandler(c.handler)
	const total = 200
	for i := 0; i < total; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !n.WaitQuiesce(5 * time.Second) {
		t.Fatal("did not quiesce")
	}
	got := c.snapshot()
	if len(got) != total {
		t.Fatalf("delivered %d of %d", len(got), total)
	}
	for i, m := range got {
		if m[0] != byte(i) {
			t.Fatalf("out of order at %d: got %d", i, m[0])
		}
	}
}

func TestUnknownNodeAndClosed(t *testing.T) {
	n := newTestNet(t, Config{})
	a, _ := n.AddNode("a")
	if err := a.Send("ghost", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
	b, _ := n.AddNode("b")
	b.Close()
	if err := a.Send("b", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("send to closed: %v", err)
	}
	a.Close()
	if err := a.Send("b", nil); !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("send from closed: %v", err)
	}
}

func TestDuplicateNamesAndRestart(t *testing.T) {
	n := newTestNet(t, Config{})
	a, _ := n.AddNode("a")
	if _, err := n.AddNode("a"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	a.Close()
	if _, err := n.AddNode("a"); err != nil {
		t.Fatalf("reuse after close: %v", err)
	}
}

func TestLinkDownAndHeal(t *testing.T) {
	n := newTestNet(t, Config{})
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	var c collector
	b.SetHandler(c.handler)
	n.SetLinkDown("a", "b", true)
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v", err)
	}
	n.Heal()
	if err := a.Send("b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	n.WaitQuiesce(2 * time.Second)
	if got := c.snapshot(); len(got) != 1 || got[0] != "y" {
		t.Fatalf("got %v", got)
	}
}

func TestPartition(t *testing.T) {
	n := newTestNet(t, Config{})
	names := []string{"a", "b", "c", "d"}
	nodes := map[string]*Node{}
	for _, name := range names {
		nd, err := n.AddNode(name)
		if err != nil {
			t.Fatal(err)
		}
		nd.SetHandler(func(string, []byte) {})
		nodes[name] = nd
	}
	n.Partition([]string{"a", "b"}, []string{"c", "d"})
	if err := nodes["a"].Send("c", nil); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("cross-partition send: %v", err)
	}
	if err := nodes["a"].Send("b", nil); err != nil {
		t.Fatalf("intra-partition send: %v", err)
	}
	if err := nodes["d"].Send("b", nil); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("cross-partition reverse: %v", err)
	}
	n.Heal()
	if err := nodes["a"].Send("c", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestFirewallSemantics(t *testing.T) {
	n := newTestNet(t, Config{})
	fw, _ := n.AddNode("fw", WithFirewall())
	open, _ := n.AddNode("open")
	var cFW, cOpen collector
	fw.SetHandler(cFW.handler)
	open.SetHandler(cOpen.handler)

	if !fw.Firewalled() || open.Firewalled() {
		t.Fatal("firewall flags wrong")
	}
	// Unsolicited inbound to the firewalled node is refused.
	if err := open.Send("fw", []byte("knock")); !errors.Is(err, ErrFirewalled) {
		t.Fatalf("unsolicited: %v", err)
	}
	// The firewalled node can initiate outbound...
	if err := fw.Send("open", []byte("out")); err != nil {
		t.Fatal(err)
	}
	// ...which punches a return hole.
	if err := open.Send("fw", []byte("reply")); err != nil {
		t.Fatalf("reply over open flow: %v", err)
	}
	n.WaitQuiesce(2 * time.Second)
	if got := cFW.snapshot(); len(got) != 1 || got[0] != "reply" {
		t.Fatalf("fw got %v", got)
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		n := New(Config{Seed: seed, DefaultLink: Link{Loss: 0.5}})
		defer n.Close()
		a, _ := n.AddNode("a")
		b, _ := n.AddNode("b")
		var c collector
		b.SetHandler(c.handler)
		for i := 0; i < 100; i++ {
			if err := a.Send("b", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		n.WaitQuiesce(2 * time.Second)
		lost := a.Stats().MsgsLost
		if lost+len(c.snapshot()) != 100 {
			t.Fatalf("lost %d + delivered %d != 100", lost, len(c.snapshot()))
		}
		return lost
	}
	l1, l2, l3 := run(7), run(7), run(8)
	if l1 != l2 {
		t.Fatalf("same seed, different loss: %d vs %d", l1, l2)
	}
	if l1 == 0 || l1 == 100 {
		t.Fatalf("loss 0.5 produced degenerate count %d", l1)
	}
	_ = l3 // different seed may or may not differ; only determinism is asserted
}

func TestLatencyIsApplied(t *testing.T) {
	n := newTestNet(t, Config{DefaultLink: Link{Latency: 50 * time.Millisecond}})
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	done := make(chan time.Time, 1)
	b.SetHandler(func(string, []byte) { done <- time.Now() })
	start := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	arrival := <-done
	if d := arrival.Sub(start); d < 45*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~50ms", d)
	}
}

func TestBandwidthSerialisesLink(t *testing.T) {
	// 10 KB/s and two 1000-byte messages: second arrives ~200ms after start.
	n := newTestNet(t, Config{DefaultLink: Link{Bandwidth: 10_000}})
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	var mu sync.Mutex
	var arrivals []time.Time
	b.SetHandler(func(string, []byte) {
		mu.Lock()
		arrivals = append(arrivals, time.Now())
		mu.Unlock()
	})
	payload := make([]byte, 1000)
	start := time.Now()
	for i := 0; i < 2; i++ {
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
	}
	if !n.WaitQuiesce(5 * time.Second) {
		t.Fatal("did not quiesce")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	if d := arrivals[1].Sub(start); d < 150*time.Millisecond {
		t.Fatalf("second message after %v, want >= ~200ms (bandwidth not applied)", d)
	}
}

func TestHandlerInstalledLate(t *testing.T) {
	n := newTestNet(t, Config{})
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	if err := a.Send("b", []byte("early")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let it land in the mailbox
	var c collector
	b.SetHandler(c.handler)
	if !n.WaitQuiesce(2 * time.Second) {
		t.Fatal("did not quiesce")
	}
	if got := c.snapshot(); len(got) != 1 || got[0] != "early" {
		t.Fatalf("got %v", got)
	}
}

func TestSendDataIsCopied(t *testing.T) {
	n := newTestNet(t, Config{DefaultLink: Link{Latency: 20 * time.Millisecond}})
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	var c collector
	b.SetHandler(c.handler)
	buf := []byte("fresh")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "stale")
	n.WaitQuiesce(2 * time.Second)
	if got := c.snapshot(); len(got) != 1 || got[0] != "fresh" {
		t.Fatalf("got %v (send buffer aliased)", got)
	}
}

func TestHandlerMaySend(t *testing.T) {
	// A handler that forwards must not deadlock the scheduler, and
	// WaitQuiesce must account for the chained message.
	n := newTestNet(t, Config{})
	a, _ := n.AddNode("a")
	relay, _ := n.AddNode("relay")
	c, _ := n.AddNode("c")
	var sink collector
	c.SetHandler(sink.handler)
	relay.SetHandler(func(from string, data []byte) {
		if err := relay.Send("c", data); err != nil {
			t.Errorf("relay send: %v", err)
		}
	})
	a.SetHandler(func(string, []byte) {})
	if err := a.Send("relay", []byte("via")); err != nil {
		t.Fatal(err)
	}
	if !n.WaitQuiesce(2 * time.Second) {
		t.Fatal("did not quiesce")
	}
	if got := sink.snapshot(); len(got) != 1 || got[0] != "via" {
		t.Fatalf("got %v", got)
	}
}

func TestNetworkCloseRejectsWork(t *testing.T) {
	n := New(Config{})
	a, _ := n.AddNode("a")
	n.Close()
	if err := a.Send("a", nil); !errors.Is(err, ErrNetClosed) && !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := n.AddNode("b"); !errors.Is(err, ErrNetClosed) {
		t.Fatalf("add after close: %v", err)
	}
	n.Close() // idempotent
}

func TestManyNodesConcurrentTraffic(t *testing.T) {
	n := newTestNet(t, Config{DefaultLink: Link{Latency: time.Millisecond}})
	const nodes = 10
	const perNode = 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	received := make(map[string]int)
	all := make([]*Node, nodes)
	for i := 0; i < nodes; i++ {
		name := string(rune('a' + i))
		nd, err := n.AddNode(name)
		if err != nil {
			t.Fatal(err)
		}
		nd.SetHandler(func(from string, data []byte) {
			mu.Lock()
			received[name]++
			mu.Unlock()
		})
		all[i] = nd
	}
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perNode; j++ {
				to := string(rune('a' + (i+1+j)%nodes))
				if err := all[i].Send(to, []byte("m")); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	if !n.WaitQuiesce(10 * time.Second) {
		t.Fatal("did not quiesce")
	}
	mu.Lock()
	total := 0
	for _, v := range received {
		total += v
	}
	mu.Unlock()
	if total != nodes*perNode {
		t.Fatalf("received %d of %d", total, nodes*perNode)
	}
}

func TestWaitQuiesceTimeout(t *testing.T) {
	n := newTestNet(t, Config{DefaultLink: Link{Latency: 500 * time.Millisecond}})
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	b.SetHandler(func(string, []byte) {})
	if err := a.Send("b", []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if n.WaitQuiesce(30 * time.Millisecond) {
		t.Fatal("claimed quiescence while message in flight")
	}
	if !n.WaitQuiesce(5 * time.Second) {
		t.Fatal("never quiesced")
	}
}
