package tps_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/netsim"
	"github.com/tps-p2p/tps/internal/obs/admin"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

// TestTraceRigThreePeers is the ISSUE's acceptance rig: three platforms
// (rendezvous + publisher + subscriber) with TraceRate 1 and live admin
// endpoints. One published event must be reconstructable as a
// multi-peer hop path by querying /trace/{id} on every peer and merging
// with trace.Assemble — exactly what `tpsctl trace <event-id>` does.
// The same rig also pins that /metrics serves a valid Prometheus
// exposition carrying the new latency histograms, and that /stats
// reports schema 2.
func TestTraceRigThreePeers(t *testing.T) {
	n := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(n.Close)
	r := &rig{t: t, net: n}
	traced := func(cfg tps.Config) *tps.Platform {
		cfg.TraceRate = 1
		cfg.AdminAddr = "127.0.0.1:0"
		return r.platform(cfg)
	}
	rdv := traced(tps.Config{Name: "rdv", Rendezvous: true, LeaseTTL: 2 * time.Second})
	pub := traced(tps.Config{Seeds: []string{"mem://rdv"}})
	sub := traced(tps.Config{Seeds: []string{"mem://rdv"}})
	admins := []*tps.Platform{rdv, pub, sub}
	for _, p := range admins {
		if p.AdminAddr() == "" {
			t.Fatal("AdminAddr empty with admin configured")
		}
	}

	if err := tps.Register[SkiRental](pub); err != nil {
		t.Fatal(err)
	}
	if err := tps.Register[SkiRental](sub); err != nil {
		t.Fatal(err)
	}
	subEng, err := tps.NewEngine[SkiRental](sub)
	if err != nil {
		t.Fatal(err)
	}
	subIntf, err := subEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	g := &gather[SkiRental]{}
	if err := subIntf.Subscribe(g, nil); err != nil {
		t.Fatal(err)
	}
	pubEng, err := tps.NewEngine[SkiRental](pub)
	if err != nil {
		t.Fatal(err)
	}
	pubIntf, err := pubEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pubEng.AwaitReady(1, 10*time.Second) || !subEng.AwaitReady(1, 10*time.Second) {
		t.Fatal("engines not ready")
	}
	if err := pubIntf.Publish(SkiRental{Shop: "trace", Brand: "X", Price: 1}); err != nil {
		t.Fatal(err)
	}
	waitN(t, g, 1)

	// The publisher recorded the publish hop synchronously, so its
	// /trace list names the event ID — the same way an operator finds
	// it with `tpsctl trace`.
	var list struct {
		Schema int                  `json:"schema"`
		Events []trace.EventSummary `json:"events"`
	}
	getAs(t, "http://"+pub.AdminAddr()+"/trace", 200, &list)
	if list.Schema != 2 {
		t.Fatalf("/trace schema = %d, want 2", list.Schema)
	}
	if len(list.Events) != 1 {
		t.Fatalf("publisher trace list = %+v, want exactly the published event", list.Events)
	}
	eventID := list.Events[0].EventID

	// Cross-peer assembly: ask every peer for its hops and merge. The
	// forward hop on the rendezvous and the deliver hop on the
	// subscriber land asynchronously, so poll until the path spans
	// publish → forward → deliver.
	var tr trace.Trace
	deadline := time.Now().Add(10 * time.Second)
	for {
		var hops []trace.Hop
		for _, p := range admins {
			var doc struct {
				Hops []trace.Hop `json:"hops"`
			}
			getAs(t, "http://"+p.AdminAddr()+"/trace/"+eventID, 200, &doc)
			hops = append(hops, doc.Hops...)
		}
		tr = trace.Assemble(eventID, hops)
		if hasStages(tr, trace.StagePublish, trace.StageForward, trace.StageDeliver) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never completed: %+v", tr.Hops)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if tr.Hops[0].Stage != trace.StagePublish {
		t.Fatalf("trace does not start at publish: %+v", tr.Hops)
	}
	if tr.SentUS == 0 {
		t.Fatalf("assembled trace lost the publish timestamp: %+v", tr)
	}
	peers := map[string]bool{}
	for _, h := range tr.Hops {
		peers[h.Peer] = true
	}
	if len(peers) < 3 {
		t.Fatalf("hop path spans %d peers, want publisher, rendezvous and subscriber: %+v", len(peers), tr.Hops)
	}

	// /metrics on the publisher: a valid Prometheus exposition that
	// includes the new latency histograms alongside the counters.
	body := getBody(t, "http://"+pub.AdminAddr()+"/metrics")
	if err := admin.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics exposition invalid: %v\n%s", err, body)
	}
	for _, series := range []string{
		"tps_engine_published_total",
		"tps_engine_publish_fanout_us_count",
		"tps_endpoint_encode_us_count",
	} {
		if !containsSeries(body, series) {
			t.Fatalf("/metrics lacks %s:\n%s", series, body)
		}
	}

	var view struct {
		Schema int `json:"schema"`
	}
	getAs(t, "http://"+pub.AdminAddr()+"/stats", 200, &view)
	if view.Schema != 2 {
		t.Fatalf("/stats schema = %d, want 2", view.Schema)
	}
}

// getBody fetches a URL and returns its body as a string.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// containsSeries reports whether a sample line for the metric name
// appears in the exposition (with or without labels).
func containsSeries(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			return true
		}
	}
	return false
}

// hasStages reports whether the trace carries every listed stage.
func hasStages(tr trace.Trace, stages ...string) bool {
	have := map[string]bool{}
	for _, h := range tr.Hops {
		have[h.Stage] = true
	}
	for _, s := range stages {
		if !have[s] {
			return false
		}
	}
	return true
}
