package tps_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

// SkiRental is the paper's running example type (§4.3.1).
type SkiRental struct {
	Shop         string
	Brand        string
	Price        float64
	NumberOfDays float64
}

// String gives the console rendering used by the paper's callback.
func (r SkiRental) String() string {
	return fmt.Sprintf("%s: %s at %.2f for %.0f days", r.Shop, r.Brand, r.Price, r.NumberOfDays)
}

// Offer is an interface root used for the Figure 7 subtype tests.
type Offer interface{ Seller() string }

// Seller implements Offer for SkiRental.
func (r SkiRental) Seller() string { return r.Shop }

// BikeRental is a second Offer implementation.
type BikeRental struct {
	Shop  string
	Price float64
}

// Seller implements Offer.
func (r BikeRental) Seller() string { return r.Shop }

// rig is a netsim-backed fleet of TPS platforms around one rendezvous.
type rig struct {
	t   *testing.T
	net *netsim.Network
	n   int
}

func newRig(t *testing.T) *rig {
	t.Helper()
	n := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(n.Close)
	r := &rig{t: t, net: n}
	r.platform(tps.Config{Name: "rdv", Rendezvous: true, LeaseTTL: 2 * time.Second})
	return r
}

// platform builds one TPS platform on a fresh netsim node.
func (r *rig) platform(cfg tps.Config) *tps.Platform {
	r.t.Helper()
	r.n++
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("peer%d", r.n)
		cfg.Name = name
	}
	node, err := r.net.AddNode(name)
	if err != nil {
		r.t.Fatal(err)
	}
	if cfg.FindTimeout == 0 {
		cfg.FindTimeout = 400 * time.Millisecond
	}
	if cfg.FindInterval == 0 {
		cfg.FindInterval = 100 * time.Millisecond
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	p, err := tps.NewPlatform(cfg, tps.WithTransport(memnet.New(node)))
	if err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(p.Close)
	return p
}

// edge builds an ordinary platform seeded with the rig's rendezvous.
func (r *rig) edge() *tps.Platform {
	return r.platform(tps.Config{Seeds: []string{"mem://rdv"}})
}

// gather collects received events.
type gather[T any] struct {
	mu     sync.Mutex
	events []T
}

func (g *gather[T]) Handle(ev T) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.events = append(g.events, ev)
	return nil
}

func (g *gather[T]) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.events)
}

func (g *gather[T]) snapshot() []T {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]T(nil), g.events...)
}

func waitN[T any](t *testing.T, g *gather[T], n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d of %d events", g.count(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSkiRentalEndToEnd(t *testing.T) {
	r := newRig(t)
	pubP, subP := r.edge(), r.edge()
	if err := tps.Register[SkiRental](pubP); err != nil {
		t.Fatal(err)
	}
	if err := tps.Register[SkiRental](subP); err != nil {
		t.Fatal(err)
	}

	subEng, err := tps.NewEngine[SkiRental](subP)
	if err != nil {
		t.Fatal(err)
	}
	defer subEng.Close()
	subInt, err := subEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	var g gather[SkiRental]
	if err := subInt.Subscribe(&g, nil); err != nil {
		t.Fatal(err)
	}

	pubEng, err := tps.NewEngine[SkiRental](pubP)
	if err != nil {
		t.Fatal(err)
	}
	defer pubEng.Close()
	pubInt, err := pubEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	offer := SkiRental{Shop: "XTremShop", Brand: "Salomon", Price: 14, NumberOfDays: 100}
	if err := pubInt.Publish(offer); err != nil {
		t.Fatal(err)
	}
	if !pubEng.AwaitReady(1, 5*time.Second) {
		t.Fatal("publisher never ready")
	}
	// The first publish may have predated the subscriber's attachment;
	// publish once more after readiness.
	if err := pubInt.Publish(offer); err != nil {
		t.Fatal(err)
	}
	waitN(t, &g, 1)
	got := g.snapshot()[0]
	if got != offer {
		t.Fatalf("got %+v", got)
	}
	if len(pubInt.ObjectsSent()) != 2 {
		t.Fatalf("ObjectsSent = %d", len(pubInt.ObjectsSent()))
	}
	if n := len(subInt.ObjectsReceived()); n < 1 {
		t.Fatalf("ObjectsReceived = %d", n)
	}
}

func TestSubscribeManyMultipleCallbacks(t *testing.T) {
	// The paper's method (3): display events on a console AND sketch them
	// in a GUI at the same time.
	r := newRig(t)
	pubP, subP := r.edge(), r.edge()
	for _, p := range []*tps.Platform{pubP, subP} {
		if err := tps.Register[SkiRental](p); err != nil {
			t.Fatal(err)
		}
	}
	subEng, err := tps.NewEngine[SkiRental](subP)
	if err != nil {
		t.Fatal(err)
	}
	defer subEng.Close()
	subInt, err := subEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	var console, gui gather[SkiRental]
	err = subInt.SubscribeMany(
		[]tps.CallBack[SkiRental]{&console, &gui},
		[]tps.ExceptionHandler{nil, nil},
	)
	if err != nil {
		t.Fatal(err)
	}

	pubEng, err := tps.NewEngine[SkiRental](pubP)
	if err != nil {
		t.Fatal(err)
	}
	defer pubEng.Close()
	pubInt, err := pubEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pubEng.AwaitReady(1, 5*time.Second) {
		t.Fatal("not ready")
	}
	if err := pubInt.Publish(SkiRental{Shop: "S"}); err != nil {
		t.Fatal(err)
	}
	waitN(t, &console, 1)
	waitN(t, &gui, 1)

	// Mismatched arrays are rejected.
	if err := subInt.SubscribeMany([]tps.CallBack[SkiRental]{&console}, nil); !errors.Is(err, tps.ErrMismatchedArrays) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnsubscribeSpecificCallback(t *testing.T) {
	r := newRig(t)
	pubP, subP := r.edge(), r.edge()
	for _, p := range []*tps.Platform{pubP, subP} {
		if err := tps.Register[SkiRental](p); err != nil {
			t.Fatal(err)
		}
	}
	subEng, _ := tps.NewEngine[SkiRental](subP)
	defer subEng.Close()
	subInt, _ := subEng.NewInterface(nil)
	var keep, drop gather[SkiRental]
	if err := subInt.Subscribe(&keep, nil); err != nil {
		t.Fatal(err)
	}
	if err := subInt.Subscribe(&drop, nil); err != nil {
		t.Fatal(err)
	}

	pubEng, _ := tps.NewEngine[SkiRental](pubP)
	defer pubEng.Close()
	pubInt, _ := pubEng.NewInterface(nil)
	if !pubEng.AwaitReady(1, 5*time.Second) {
		t.Fatal("not ready")
	}
	if err := pubInt.Publish(SkiRental{Shop: "one"}); err != nil {
		t.Fatal(err)
	}
	waitN(t, &keep, 1)
	waitN(t, &drop, 1)

	if err := subInt.Unsubscribe(&drop, nil); err != nil {
		t.Fatal(err)
	}
	if err := subInt.Unsubscribe(&drop, nil); !errors.Is(err, tps.ErrNotSubscribed) {
		t.Fatalf("double unsubscribe: %v", err)
	}
	if err := pubInt.Publish(SkiRental{Shop: "two"}); err != nil {
		t.Fatal(err)
	}
	waitN(t, &keep, 2)
	time.Sleep(100 * time.Millisecond)
	if drop.count() != 1 {
		t.Fatalf("dropped callback still received: %d", drop.count())
	}

	if err := subInt.UnsubscribeAll(); err != nil {
		t.Fatal(err)
	}
	if err := pubInt.Publish(SkiRental{Shop: "three"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if keep.count() != 2 {
		t.Fatalf("callback received after UnsubscribeAll: %d", keep.count())
	}
}

// TestUnsubscribeLastTearsDownCore asserts that removing the final
// (callback, handler) pair via Unsubscribe stops deliveries entirely —
// ObjectsReceived must not keep growing on an interface nobody listens
// on — and that a later Subscribe revives the flow.
func TestUnsubscribeLastTearsDownCore(t *testing.T) {
	r := newRig(t)
	pubP, subP := r.edge(), r.edge()
	for _, p := range []*tps.Platform{pubP, subP} {
		if err := tps.Register[SkiRental](p); err != nil {
			t.Fatal(err)
		}
	}
	subEng, _ := tps.NewEngine[SkiRental](subP)
	defer subEng.Close()
	subInt, _ := subEng.NewInterface(nil)
	var g gather[SkiRental]
	if err := subInt.Subscribe(&g, nil); err != nil {
		t.Fatal(err)
	}

	pubEng, _ := tps.NewEngine[SkiRental](pubP)
	defer pubEng.Close()
	pubInt, _ := pubEng.NewInterface(nil)
	if !pubEng.AwaitReady(1, 5*time.Second) {
		t.Fatal("not ready")
	}
	if err := pubInt.Publish(SkiRental{Shop: "one"}); err != nil {
		t.Fatal(err)
	}
	waitN(t, &g, 1)

	// Remove the only pair: the core subscription must go with it.
	if err := subInt.Unsubscribe(&g, nil); err != nil {
		t.Fatal(err)
	}
	if err := pubInt.Publish(SkiRental{Shop: "two"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if got := len(subInt.ObjectsReceived()); got != 1 {
		t.Fatalf("interface kept receiving after last Unsubscribe: %d events", got)
	}

	// Resubscribing revives delivery.
	if err := subInt.Subscribe(&g, nil); err != nil {
		t.Fatal(err)
	}
	if err := pubInt.Publish(SkiRental{Shop: "three"}); err != nil {
		t.Fatal(err)
	}
	waitN(t, &g, 2)
}

func TestCriteriaContentFilter(t *testing.T) {
	r := newRig(t)
	pubP, subP := r.edge(), r.edge()
	for _, p := range []*tps.Platform{pubP, subP} {
		if err := tps.Register[SkiRental](p); err != nil {
			t.Fatal(err)
		}
	}
	subEng, _ := tps.NewEngine[SkiRental](subP)
	defer subEng.Close()
	// Content-based filtering on top of TPS (§3.1): only cheap offers.
	subInt, err := subEng.NewInterface(func(rental SkiRental) bool { return rental.Price < 20 })
	if err != nil {
		t.Fatal(err)
	}
	var g gather[SkiRental]
	if err := subInt.Subscribe(&g, nil); err != nil {
		t.Fatal(err)
	}

	pubEng, _ := tps.NewEngine[SkiRental](pubP)
	defer pubEng.Close()
	pubInt, _ := pubEng.NewInterface(nil)
	if !pubEng.AwaitReady(1, 5*time.Second) {
		t.Fatal("not ready")
	}
	for _, price := range []float64{10, 50, 15, 99} {
		if err := pubInt.Publish(SkiRental{Shop: "S", Price: price}); err != nil {
			t.Fatal(err)
		}
	}
	waitN(t, &g, 2)
	time.Sleep(200 * time.Millisecond)
	if g.count() != 2 {
		t.Fatalf("criteria leaked: %d events", g.count())
	}
	for _, ev := range g.snapshot() {
		if ev.Price >= 20 {
			t.Fatalf("expensive offer leaked: %+v", ev)
		}
	}
}

func TestExceptionHandlerReceivesErrors(t *testing.T) {
	r := newRig(t)
	pubP, subP := r.edge(), r.edge()
	for _, p := range []*tps.Platform{pubP, subP} {
		if err := tps.Register[SkiRental](p); err != nil {
			t.Fatal(err)
		}
	}
	subEng, _ := tps.NewEngine[SkiRental](subP)
	defer subEng.Close()
	subInt, _ := subEng.NewInterface(nil)
	var mu sync.Mutex
	var caught []error
	cb := tps.CallBackFunc[SkiRental](func(SkiRental) error { return errors.New("cannot render offer") })
	exh := tps.ExceptionHandlerFunc(func(err error) {
		mu.Lock()
		caught = append(caught, err)
		mu.Unlock()
	})
	if err := subInt.Subscribe(cb, exh); err != nil {
		t.Fatal(err)
	}

	pubEng, _ := tps.NewEngine[SkiRental](pubP)
	defer pubEng.Close()
	pubInt, _ := pubEng.NewInterface(nil)
	if !pubEng.AwaitReady(1, 5*time.Second) {
		t.Fatal("not ready")
	}
	if err := pubInt.Publish(SkiRental{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(caught)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("exception handler never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInterfaceSubtypeDelivery(t *testing.T) {
	// Figure 7 with Go subtyping: subscribing to the Offer interface
	// delivers SkiRental and BikeRental instances.
	r := newRig(t)
	pubP, subP := r.edge(), r.edge()
	for _, p := range []*tps.Platform{pubP, subP} {
		if err := tps.Register[Offer](p); err != nil {
			t.Fatal(err)
		}
		if err := tps.RegisterSub[SkiRental, Offer](p); err != nil {
			t.Fatal(err)
		}
		if err := tps.RegisterSub[BikeRental, Offer](p); err != nil {
			t.Fatal(err)
		}
	}
	subEng, err := tps.NewEngine[Offer](subP)
	if err != nil {
		t.Fatal(err)
	}
	defer subEng.Close()
	subInt, _ := subEng.NewInterface(nil)
	var g gather[Offer]
	if err := subInt.Subscribe(&g, nil); err != nil {
		t.Fatal(err)
	}

	// The publishers use concrete-type engines.
	skiEng, err := tps.NewEngine[SkiRental](pubP)
	if err != nil {
		t.Fatal(err)
	}
	defer skiEng.Close()
	skiInt, _ := skiEng.NewInterface(nil)
	bikeEng, err := tps.NewEngine[BikeRental](pubP)
	if err != nil {
		t.Fatal(err)
	}
	defer bikeEng.Close()
	bikeInt, _ := bikeEng.NewInterface(nil)

	// Nobody has advertised the concrete types yet; announce them.
	if err := skiEng.Announce(); err != nil {
		t.Fatal(err)
	}
	if err := bikeEng.Announce(); err != nil {
		t.Fatal(err)
	}
	if !skiEng.AwaitReady(1, 5*time.Second) || !bikeEng.AwaitReady(1, 5*time.Second) {
		t.Fatal("publishers not ready")
	}
	// And the root subscriber must have joined both subtype groups
	// before events flow, or early events are lost to decoupling.
	if !subEng.AwaitReady(2, 10*time.Second) {
		t.Fatal("subscriber did not attach to subtype groups")
	}
	if err := skiInt.Publish(SkiRental{Shop: "ski-shop", Price: 10}); err != nil {
		t.Fatal(err)
	}
	if err := bikeInt.Publish(BikeRental{Shop: "bike-shop", Price: 5}); err != nil {
		t.Fatal(err)
	}
	waitN(t, &g, 2)
	sellers := map[string]bool{}
	for _, ev := range g.snapshot() {
		sellers[ev.Seller()] = true
	}
	if !sellers["ski-shop"] || !sellers["bike-shop"] {
		t.Fatalf("sellers = %v", sellers)
	}
}

func TestJSONCodecPlatform(t *testing.T) {
	r := newRig(t)
	pubP := r.platform(tps.Config{Seeds: []string{"mem://rdv"}, Codec: "json"})
	subP := r.platform(tps.Config{Seeds: []string{"mem://rdv"}, Codec: "json"})
	for _, p := range []*tps.Platform{pubP, subP} {
		if err := tps.Register[SkiRental](p); err != nil {
			t.Fatal(err)
		}
	}
	subEng, _ := tps.NewEngine[SkiRental](subP)
	defer subEng.Close()
	subInt, _ := subEng.NewInterface(nil)
	var g gather[SkiRental]
	if err := subInt.Subscribe(&g, nil); err != nil {
		t.Fatal(err)
	}
	pubEng, _ := tps.NewEngine[SkiRental](pubP)
	defer pubEng.Close()
	pubInt, _ := pubEng.NewInterface(nil)
	if !pubEng.AwaitReady(1, 5*time.Second) {
		t.Fatal("not ready")
	}
	want := SkiRental{Shop: "json-shop", Brand: "K2", Price: 33, NumberOfDays: 2}
	if err := pubInt.Publish(want); err != nil {
		t.Fatal(err)
	}
	waitN(t, &g, 1)
	if g.snapshot()[0] != want {
		t.Fatalf("got %+v", g.snapshot()[0])
	}
}

func TestPSErrorWrapping(t *testing.T) {
	if _, err := tps.NewPlatform(tps.Config{Name: "no-transport"}); err == nil {
		t.Fatal("platform without transports created")
	} else {
		var pse *tps.PSError
		if !errors.As(err, &pse) {
			t.Fatalf("error %T is not a PSError", err)
		}
		if pse.Op != "platform" {
			t.Fatalf("op = %q", pse.Op)
		}
	}
	r := newRig(t)
	p := r.edge()
	if err := tps.RegisterSub[SkiRental, Offer](p); err == nil {
		t.Fatal("RegisterSub with unregistered parent succeeded")
	}
	if err := tps.Register[SkiRental](p); err != nil {
		t.Fatal(err)
	}
	if err := tps.Register[SkiRental](p); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
}

func TestPlatformAccessors(t *testing.T) {
	r := newRig(t)
	p := r.edge()
	if p.PeerID() == "" {
		t.Fatal("empty peer ID")
	}
	if got := p.Addresses(); len(got) != 1 || got[0][:6] != "mem://" {
		t.Fatalf("addresses %v", got)
	}
	if !p.AwaitRendezvous(5 * time.Second) {
		t.Fatal("edge never reached the rendezvous")
	}
}
