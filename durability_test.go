package tps_test

// durability_test.go exercises the durable event log end-to-end at the
// TPS API surface: a rendezvous daemon started with LogDir retains
// published events, and a subscriber that joins only after publication
// catches up automatically — the engine's replay loop presents its
// cursor, the daemon replays the retained suffix, and the dedupe caches
// keep delivery exactly-once observable. No test code drives the replay
// protocol by hand; this is what an application gets for free.

import (
	"fmt"
	"testing"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
)

// statCounter digs one subsystem counter out of a platform's stats view.
func statCounter(p *tps.Platform, subsystem, key string) int64 {
	for _, s := range p.Stats().Subsystems {
		if s.Name == subsystem {
			return s.Counters[key]
		}
	}
	return 0
}

func TestLateJoinerCatchesUpEndToEnd(t *testing.T) {
	net := netsim.New(netsim.Config{DefaultLink: netsim.Link{Latency: time.Millisecond}})
	t.Cleanup(net.Close)

	rdvNode, err := net.AddNode("rdv")
	if err != nil {
		t.Fatal(err)
	}
	rdv, err := tps.NewPlatform(tps.Config{
		Name:       "rdv",
		Rendezvous: true,
		LeaseTTL:   2 * time.Second,
		LogDir:     t.TempDir(),
	}, tps.WithTransport(memnet.New(rdvNode)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rdv.Close)

	edge := func(name string) *tps.Platform {
		node, err := net.AddNode(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := tps.NewPlatform(tps.Config{
			Name:         name,
			Seeds:        []string{"mem://rdv"},
			FindTimeout:  400 * time.Millisecond,
			FindInterval: 100 * time.Millisecond,
			LeaseTTL:     2 * time.Second,
		}, tps.WithTransport(memnet.New(node)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}

	// Phase 1: publish with nobody subscribed anywhere.
	pubP := edge("pub")
	if err := tps.Register[SkiRental](pubP); err != nil {
		t.Fatal(err)
	}
	pubEng, err := tps.NewEngine[SkiRental](pubP)
	if err != nil {
		t.Fatal(err)
	}
	pubIntf, err := pubEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Durability starts at the rendezvous: an event is only loggable once
	// it reaches the mesh, so advertise the type and wait for the group's
	// lease before publishing anything that must survive.
	if err := pubEng.Announce(); err != nil {
		t.Fatal(err)
	}
	if !pubEng.AwaitReady(1, 5*time.Second) {
		t.Fatal("publisher group never became ready")
	}
	const early = 10
	for i := 0; i < early; i++ {
		ev := SkiRental{Shop: fmt.Sprintf("shop-%d", i), Brand: "Salomon", Price: float64(i)}
		if err := pubIntf.Publish(ev); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	// The daemon's log is the durability boundary: wait until it retains
	// every event before letting the late joiner appear. The daemon logs
	// one topic per group it relays — the net group carries discovery
	// chatter, the SkiRental group exactly the published events — so wait
	// for every topic's tail, which includes the event topic's.
	deadline := time.Now().Add(10 * time.Second)
	for {
		topics := rdv.Inspect().EventLog
		caughtUp := len(topics) >= 2
		for _, e := range topics {
			if e.LastSeq < early {
				caughtUp = false
			}
		}
		if caughtUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon log never retained %d events: %+v", early, topics)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Phase 2: the subscriber joins only now. Catch-up must be fully
	// automatic — subscribe and wait, nothing else.
	subP := edge("sub")
	if err := tps.Register[SkiRental](subP); err != nil {
		t.Fatal(err)
	}
	subEng, err := tps.NewEngine[SkiRental](subP)
	if err != nil {
		t.Fatal(err)
	}
	subIntf, err := subEng.NewInterface(nil)
	if err != nil {
		t.Fatal(err)
	}
	g := &gather[SkiRental]{}
	if err := subIntf.Subscribe(tps.CallBackFunc[SkiRental](g.Handle), nil); err != nil {
		t.Fatal(err)
	}
	waitN(t, g, early)

	// Phase 3: live publishing continues; replayed history and live
	// traffic must compose into exactly-once per event.
	const late = 5
	for i := 0; i < late; i++ {
		ev := SkiRental{Shop: fmt.Sprintf("shop-%d", early+i), Brand: "Salomon"}
		if err := pubIntf.Publish(ev); err != nil {
			t.Fatalf("late publish %d: %v", i, err)
		}
	}
	waitN(t, g, early+late)
	time.Sleep(300 * time.Millisecond) // let any stray duplicate surface
	counts := map[string]int{}
	for _, ev := range g.snapshot() {
		counts[ev.Shop]++
	}
	if len(counts) != early+late {
		t.Fatalf("distinct events delivered: %d, want %d", len(counts), early+late)
	}
	for shop, n := range counts {
		if n != 1 {
			t.Fatalf("event %s delivered %d times, want exactly once", shop, n)
		}
	}

	// The control plane must reflect what happened: the daemon's log
	// retains the full range and served a replay; the subscriber's
	// cursor points at the retained tail.
	if served := statCounter(rdv, "rendezvous", "replay_served"); served < early {
		t.Fatalf("daemon served %d replayed events, want >= %d", served, early)
	}
	cursors := subP.Inspect().Cursors
	if len(cursors) == 0 {
		t.Fatal("subscriber inspection reports no replay cursors")
	}
	// The subscriber's cursor names its group, which is the daemon's log
	// topic: the two views must agree on the retained range.
	var foundTopic bool
	for _, e := range rdv.Inspect().EventLog {
		if e.Topic == cursors[0].Group {
			foundTopic = true
			if e.LastSeq < early {
				t.Fatalf("daemon retains %s only to %d, want >= %d", e.Topic, e.LastSeq, early)
			}
		}
	}
	if !foundTopic {
		t.Fatalf("daemon log has no topic for group %s: %+v", cursors[0].Group, rdv.Inspect().EventLog)
	}
	if cursors[0].Seq < early {
		t.Fatalf("subscriber cursor at %d, want >= %d", cursors[0].Seq, early)
	}
}
