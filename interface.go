package tps

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/core/engine"
	"github.com/tps-p2p/tps/internal/core/typereg"
	"github.com/tps-p2p/tps/internal/jxta/jid"
)

// CallBack handles events delivered to a subscription — the paper's
// TPSCallBackInterface. A returned error is routed to the registered
// ExceptionHandler.
type CallBack[T any] interface {
	Handle(event T) error
}

// CallBackFunc adapts a plain function to CallBack.
type CallBackFunc[T any] func(event T) error

// Handle implements CallBack.
func (f CallBackFunc[T]) Handle(event T) error { return f(event) }

// ExceptionHandler consumes the errors raised while handling received
// events — the paper's TPSExceptionHandler.
type ExceptionHandler interface {
	HandleException(err error)
}

// ExceptionHandlerFunc adapts a plain function to ExceptionHandler.
type ExceptionHandlerFunc func(err error)

// HandleException implements ExceptionHandler.
func (f ExceptionHandlerFunc) HandleException(err error) { f(err) }

// Criteria is a content filter evaluated on each received event before
// the callbacks run: TPS encapsulation means the filter uses the event
// type's own fields and methods. A nil Criteria accepts everything.
type Criteria[T any] func(event T) bool

// Errors.
var (
	// ErrNotSubscribed is returned by Unsubscribe when no matching
	// (callback, handler) pair is registered.
	ErrNotSubscribed = errors.New("no matching subscription")
	// ErrMismatchedArrays is returned by SubscribeMany when the callback
	// and handler slices differ in length.
	ErrMismatchedArrays = errors.New("callback and handler arrays differ in length")
)

// Engine is the typed TPS engine for one event type hierarchy rooted at
// T — the paper's TPSEngine<Type>. Create one engine per unrelated type
// of interest (§4.2).
type Engine[T any] struct {
	platform *Platform
	core     *engine.Engine
	node     *typereg.Node
}

// NewEngine creates the engine for type T, registering T as a hierarchy
// root if it is not registered yet. Subtypes of T must have been added
// with RegisterSub before events of those types can flow.
func NewEngine[T any](p *Platform) (*Engine[T], error) {
	t := typeOf[T]()
	node, ok := p.reg.NodeByType(t)
	if !ok {
		var err error
		node, err = p.reg.Register(t, nil)
		if err != nil {
			return nil, psErr("engine", err)
		}
	}
	core, err := engine.New(engine.Config{
		Peer:         p.peer,
		Registry:     p.reg,
		Codec:        p.codec,
		FindTimeout:  p.ftime,
		FindInterval: p.fint,
		Tracer:       p.tracer,
		TraceRate:    p.trate,
	})
	if err != nil {
		return nil, psErr("engine", err)
	}
	p.trackEngine(core)
	return &Engine[T]{platform: p, core: core, node: node}, nil
}

// NewInterface returns the TPS interface for the engine's type — the
// paper's TPSEngine.newInterface. criteria may be nil.
func (e *Engine[T]) NewInterface(criteria Criteria[T]) (*Interface[T], error) {
	return &Interface[T]{eng: e, criteria: criteria}, nil
}

// Node exposes the engine's root type node (used by benchmarks to probe
// readiness).
func (e *Engine[T]) Node() *typereg.Node { return e.node }

// Announce makes sure the type is advertised on the mesh without
// publishing an event: it searches for an existing advertisement and
// creates this peer's own when none is found — the initialization a
// publisher performs at startup (§4.1). Publish calls it implicitly.
func (e *Engine[T]) Announce() error {
	return psErr("announce", e.core.EnsureType(e.node))
}

// AwaitReady blocks until at least n groups carrying T (or subtypes) are
// attached and connected, or the timeout elapses. Decoupled applications
// do not need it; benchmarks and tests do.
func (e *Engine[T]) AwaitReady(n int, timeout time.Duration) bool {
	return e.core.AwaitReady(e.node, n, timeout)
}

// Close shuts the engine down. Interfaces created from it stop
// delivering, and the engine leaves the platform's stats aggregation.
func (e *Engine[T]) Close() {
	e.platform.untrackEngine(e.core)
	e.core.Close()
}

// Interface is the paper's TPSInterface<Type>: the seven operations of
// Figure 8, typed by Go generics.
type Interface[T any] struct {
	eng      *Engine[T]
	criteria Criteria[T]

	mu       sync.Mutex
	entries  []subEntry[T]
	coreSub  *engine.Subscription
	received []T
	sent     []T
}

type subEntry[T any] struct {
	cb  CallBack[T]
	exh ExceptionHandler
}

// Publish sends an instance of the type as an event to the subscribers —
// method (1) of Figure 8. The event's dynamic type may be any registered
// subtype of T.
//
// Events are immutable once published (§4.2): the publisher must not
// mutate memory reachable through the event (slices, maps, pointers)
// after Publish returns. Local subscribers on the same peer may be
// handed the publisher's value itself rather than a serialisation
// round-trip copy — the decode-once delivery path — so post-publish
// mutation is observable (or racy) there, while remote subscribers
// always decode their own copy.
func (i *Interface[T]) Publish(event T) error {
	if err := i.eng.core.Publish(event); err != nil {
		return psErr("publish", err)
	}
	i.mu.Lock()
	i.sent = append(i.sent, event)
	i.mu.Unlock()
	return nil
}

// Subscribe registers a callback object plus the exception handler for
// errors raised while handling events — method (2). exh may be nil.
//
// Delivered events follow the immutability contract of Publish:
// callbacks must treat the event as read-only. An event published on
// this same peer may share memory with the publisher's value and, when
// several subscriptions match, with the other callbacks' deliveries.
func (i *Interface[T]) Subscribe(cb CallBack[T], exh ExceptionHandler) error {
	if cb == nil {
		return psErr("subscribe", errors.New("nil callback"))
	}
	i.mu.Lock()
	i.entries = append(i.entries, subEntry[T]{cb: cb, exh: exh})
	needCore := i.coreSub == nil
	i.mu.Unlock()
	if !needCore {
		return nil
	}
	sub, err := i.eng.core.Subscribe(i.eng.node, i.deliver, i.onError)
	if err != nil {
		i.mu.Lock()
		i.entries = i.entries[:len(i.entries)-1]
		i.mu.Unlock()
		return psErr("subscribe", err)
	}
	i.mu.Lock()
	if len(i.entries) == 0 || i.coreSub != nil {
		// A concurrent Unsubscribe removed the last pair while the core
		// subscription was being set up (the interface must go quiet), or
		// a concurrent Subscribe already installed one. Either way this
		// subscription must not be kept, or it would deliver forever with
		// nobody listening.
		i.mu.Unlock()
		i.eng.core.Unsubscribe(sub)
		return nil
	}
	i.coreSub = sub
	i.mu.Unlock()
	return nil
}

// SubscribeMany registers several callback objects at once — method (3),
// e.g. one callback printing to a console and another updating a GUI.
func (i *Interface[T]) SubscribeMany(cbs []CallBack[T], exhs []ExceptionHandler) error {
	if len(cbs) != len(exhs) {
		return psErr("subscribe", ErrMismatchedArrays)
	}
	for k, cb := range cbs {
		if err := i.Subscribe(cb, exhs[k]); err != nil {
			return err
		}
	}
	return nil
}

// Unsubscribe removes one previously registered (callback, handler)
// pair; only that callback stops receiving — method (4). Removing the
// last pair tears down the core subscription, exactly like
// UnsubscribeAll: otherwise the engine would keep decoding and buffering
// events for an interface nobody listens on.
func (i *Interface[T]) Unsubscribe(cb CallBack[T], exh ExceptionHandler) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	for k, e := range i.entries {
		if sameHandler(e.cb, cb) && sameHandler(e.exh, exh) {
			i.entries = append(i.entries[:k], i.entries[k+1:]...)
			if len(i.entries) == 0 && i.coreSub != nil {
				i.eng.core.Unsubscribe(i.coreSub)
				i.coreSub = nil
			}
			return nil
		}
	}
	return psErr("unsubscribe", ErrNotSubscribed)
}

// UnsubscribeAll removes every callback registered so far; after this
// call no event is received anymore — method (5).
func (i *Interface[T]) UnsubscribeAll() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.entries = nil
	if i.coreSub != nil {
		i.eng.core.Unsubscribe(i.coreSub)
		i.coreSub = nil
	}
	return nil
}

// ObjectsReceived returns the events received so far — method (6).
func (i *Interface[T]) ObjectsReceived() []T {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]T(nil), i.received...)
}

// ObjectsSent returns the events published so far — method (7).
func (i *Interface[T]) ObjectsSent() []T {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]T(nil), i.sent...)
}

// deliver is the core-engine delivery callback: it narrows the event to
// T, applies the criteria and fans out to the registered callbacks.
func (i *Interface[T]) deliver(event any, _ jid.ID) error {
	v, ok := event.(T)
	if !ok {
		// A nominal subtype that is not Go-assignable to T (struct
		// hierarchies): the subject matched but the Go type cannot be
		// narrowed. Skip: Go's analogue of subtype delivery is interface
		// satisfaction.
		return nil
	}
	if i.criteria != nil && !i.criteria(v) {
		return nil
	}
	i.mu.Lock()
	i.received = append(i.received, v)
	entries := append([]subEntry[T](nil), i.entries...)
	i.mu.Unlock()
	for _, e := range entries {
		if err := e.cb.Handle(v); err != nil && e.exh != nil {
			e.exh.HandleException(err)
		}
	}
	return nil
}

// onError fans engine-level errors (decode failures, callback panics) to
// every registered exception handler.
func (i *Interface[T]) onError(err error) {
	i.mu.Lock()
	entries := append([]subEntry[T](nil), i.entries...)
	i.mu.Unlock()
	for _, e := range entries {
		if e.exh != nil {
			e.exh.HandleException(err)
		}
	}
}

// sameHandler compares callbacks/handlers by identity: pointer equality
// for pointers and funcs, value equality for comparable values.
func sameHandler(a, b any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	if va.Kind() != vb.Kind() {
		return false
	}
	switch va.Kind() {
	case reflect.Func, reflect.Pointer, reflect.Chan, reflect.Map, reflect.Slice:
		return va.Pointer() == vb.Pointer()
	default:
		if va.Comparable() && vb.Comparable() {
			return a == b
		}
		return false
	}
}

// String renders a short description, useful in logs.
func (i *Interface[T]) String() string {
	return fmt.Sprintf("tps.Interface[%s]", i.eng.node.Path())
}
