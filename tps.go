// Package tps is a Go implementation of Type-based Publish/Subscribe
// (TPS) over a JXTA-style peer-to-peer substrate, reproducing
// S. Baehni, P. Th. Eugster and R. Guerraoui, "OS Support for P2P
// Programming: a Case for TPS" (ICDCS 2002).
//
// TPS is to P2P programming what RPC was to client/server programming:
// a high-level abstraction that hides the substrate (advertisements,
// discovery, peer groups, propagated pipes) while preserving type
// safety and encapsulation — without giving up the time, space and flow
// decoupling that publish/subscribe provides. The subject of a
// subscription is an event type: subscribing to a type delivers every
// published instance of that type and of its subtypes (Go interfaces
// play the role of Java supertypes), and the event's own methods can be
// used for content-based filtering.
//
// # Programming model (the paper's four phases, §4.2)
//
// Type definition — declare the event type and register it:
//
//	type SkiRental struct {
//		Shop         string
//		Brand        string
//		Price        float64
//		NumberOfDays float64
//	}
//	tps.Register[SkiRental](platform)
//
// Initialization — create the engine and its interface:
//
//	engine, _ := tps.NewEngine[SkiRental](platform)
//	intf, _ := engine.NewInterface()
//
// Subscription:
//
//	intf.Subscribe(tps.CallBackFunc[SkiRental](func(r SkiRental) error {
//		fmt.Println("skis that could be rented:", r)
//		return nil
//	}), nil)
//
// Publication:
//
//	intf.Publish(SkiRental{Shop: "XTremShop", Brand: "Salomon", Price: 14, NumberOfDays: 100})
//
// One engine serves one type hierarchy; create an engine per unrelated
// type of interest, exactly as the paper prescribes.
package tps

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"github.com/tps-p2p/tps/internal/core/codec"
	"github.com/tps-p2p/tps/internal/core/typereg"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/transport/tcpnet"
)

// Transport is a pluggable network transport. The TCP transport is
// configured via Config.ListenTCP; simulations and tests inject others
// (e.g. the in-memory WAN) through WithTransport.
type Transport = endpoint.Transport

// PSError wraps every error the TPS API returns — the analogue of the
// paper's PSException.
type PSError struct {
	// Op is the API operation that failed ("publish", "subscribe", ...).
	Op string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *PSError) Error() string { return "tps: " + e.Op + ": " + e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *PSError) Unwrap() error { return e.Err }

func psErr(op string, err error) error {
	if err == nil {
		return nil
	}
	return &PSError{Op: op, Err: err}
}

// Config configures a Platform.
type Config struct {
	// Name is the peer's human-readable name.
	Name string
	// ListenTCP, when non-empty (e.g. "0.0.0.0:9701"), starts the TCP
	// transport on that address.
	ListenTCP string
	// Seeds are rendezvous addresses ("tcp://host:port", "mem://node").
	Seeds []string
	// Rendezvous makes this peer a rendezvous/relay daemon serving every
	// event group, in addition to its normal duties.
	Rendezvous bool
	// Firewalled declares that this peer cannot accept unsolicited
	// inbound connections; it will rely on relays.
	Firewalled bool
	// Codec selects the event serialisation: "gob" (default) or "json".
	Codec string
	// FindTimeout bounds the initial advertisement search before a type
	// advertisement is created (default 2s).
	FindTimeout time.Duration
	// FindInterval is the background advertisement finder period
	// (default 1s).
	FindInterval time.Duration
	// LeaseTTL overrides the rendezvous lease duration.
	LeaseTTL time.Duration
}

// Option customises NewPlatform.
type Option func(*platformOptions)

type platformOptions struct {
	transports []Transport
}

// WithTransport attaches an additional transport (simulated WANs, test
// fabrics).
func WithTransport(t Transport) Option {
	return func(o *platformOptions) { o.transports = append(o.transports, t) }
}

// Platform is the per-process TPS runtime: one JXTA peer, one type
// registry, shared by all engines the process creates.
type Platform struct {
	peer   *peer.Peer
	reg    *typereg.Registry
	codec  codec.Codec
	ftime  time.Duration
	fint   time.Duration
	daemon *peer.Daemon
}

// NewPlatform boots the peer-to-peer substrate: transports, net peer
// group, and (for rendezvous peers) the daemon stack.
func NewPlatform(cfg Config, opts ...Option) (*Platform, error) {
	var po platformOptions
	for _, opt := range opts {
		opt(&po)
	}
	transports := po.transports
	if cfg.ListenTCP != "" {
		t, err := tcpnet.Listen(cfg.ListenTCP)
		if err != nil {
			return nil, psErr("platform", err)
		}
		transports = append(transports, t)
	}
	if len(transports) == 0 {
		return nil, psErr("platform", errors.New("no transports: set ListenTCP or use WithTransport"))
	}
	c, err := codec.ByName(defaultStr(cfg.Codec, "gob"))
	if err != nil {
		return nil, psErr("platform", err)
	}
	role := rendezvous.RoleEdge
	if cfg.Rendezvous {
		role = rendezvous.RoleRendezvous
	}
	seeds := make([]endpoint.Address, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		seeds = append(seeds, endpoint.Address(s))
	}
	p, err := peer.New(peer.Config{
		Name:       cfg.Name,
		Role:       role,
		Seeds:      seeds,
		LeaseTTL:   cfg.LeaseTTL,
		Firewalled: cfg.Firewalled,
	}, transports...)
	if err != nil {
		return nil, psErr("platform", err)
	}
	pl := &Platform{
		peer:  p,
		reg:   typereg.New(),
		codec: c,
		ftime: cfg.FindTimeout,
		fint:  cfg.FindInterval,
	}
	if cfg.Rendezvous {
		d, err := p.EnableDaemon()
		if err != nil {
			p.Close()
			return nil, psErr("platform", err)
		}
		pl.daemon = d
	}
	return pl, nil
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// PeerID returns the peer's identity in URN form.
func (p *Platform) PeerID() string { return p.peer.ID().String() }

// Addresses returns the peer's reachable addresses, best first.
func (p *Platform) Addresses() []string {
	addrs := p.peer.Addresses()
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = string(a)
	}
	return out
}

// AwaitRendezvous blocks until the peer holds a rendezvous lease, or the
// timeout elapses. Peers configured without seeds report false.
func (p *Platform) AwaitRendezvous(timeout time.Duration) bool {
	net := p.peer.NetGroup()
	return net != nil && net.AwaitRendezvous(timeout)
}

// Close shuts the platform down: all engines' groups, the daemon stack
// if any, and the transports.
func (p *Platform) Close() {
	if p.daemon != nil {
		p.daemon.Close()
		p.daemon = nil
	}
	p.peer.Close()
}

// Register adds T to the platform's type registry as a hierarchy root.
// Registration is the paper's "type definition phase": peers must agree
// on the type model a priori (§3.2).
func Register[T any](p *Platform) error {
	_, err := p.reg.Register(typeOf[T](), nil)
	return psErr("register", err)
}

// RegisterSub adds T as a subtype of Parent: subscriptions to Parent
// also deliver T instances (Figure 7). Parent must be registered first.
// For the delivered values to be visible through a Parent-typed
// interface, Parent should be a Go interface type that T implements;
// struct parents still organise the subject hierarchy for discovery.
func RegisterSub[T, Parent any](p *Platform) error {
	parent, ok := p.reg.NodeByType(typeOf[Parent]())
	if !ok {
		return psErr("register", fmt.Errorf("%w: parent %v", typereg.ErrNotRegistered, typeOf[Parent]()))
	}
	_, err := p.reg.Register(typeOf[T](), parent)
	return psErr("register", err)
}

// typeOf yields the reflect.Type of T, working for interface types too.
func typeOf[T any]() reflect.Type {
	return reflect.TypeOf((*T)(nil)).Elem()
}
