// Package tps is a Go implementation of Type-based Publish/Subscribe
// (TPS) over a JXTA-style peer-to-peer substrate, reproducing
// S. Baehni, P. Th. Eugster and R. Guerraoui, "OS Support for P2P
// Programming: a Case for TPS" (ICDCS 2002).
//
// TPS is to P2P programming what RPC was to client/server programming:
// a high-level abstraction that hides the substrate (advertisements,
// discovery, peer groups, propagated pipes) while preserving type
// safety and encapsulation — without giving up the time, space and flow
// decoupling that publish/subscribe provides. The subject of a
// subscription is an event type: subscribing to a type delivers every
// published instance of that type and of its subtypes (Go interfaces
// play the role of Java supertypes), and the event's own methods can be
// used for content-based filtering.
//
// # Programming model (the paper's four phases, §4.2)
//
// Type definition — declare the event type and register it:
//
//	type SkiRental struct {
//		Shop         string
//		Brand        string
//		Price        float64
//		NumberOfDays float64
//	}
//	tps.Register[SkiRental](platform)
//
// Initialization — create the engine and its interface:
//
//	engine, _ := tps.NewEngine[SkiRental](platform)
//	intf, _ := engine.NewInterface()
//
// Subscription:
//
//	intf.Subscribe(tps.CallBackFunc[SkiRental](func(r SkiRental) error {
//		fmt.Println("skis that could be rented:", r)
//		return nil
//	}), nil)
//
// Publication:
//
//	intf.Publish(SkiRental{Shop: "XTremShop", Brand: "Salomon", Price: 14, NumberOfDays: 100})
//
// One engine serves one type hierarchy; create an engine per unrelated
// type of interest, exactly as the paper prescribes.
package tps

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"github.com/tps-p2p/tps/internal/core/codec"
	"github.com/tps-p2p/tps/internal/core/engine"
	"github.com/tps-p2p/tps/internal/core/typereg"
	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/endpoint"
	"github.com/tps-p2p/tps/internal/jxta/peer"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/seen"
	"github.com/tps-p2p/tps/internal/jxta/transport/tcpnet"
	"github.com/tps-p2p/tps/internal/obs"
	"github.com/tps-p2p/tps/internal/obs/admin"
	"github.com/tps-p2p/tps/internal/obs/trace"
)

// Transport is a pluggable network transport. The TCP transport is
// configured via Config.ListenTCP; simulations and tests inject others
// (e.g. the in-memory WAN) through WithTransport.
type Transport = endpoint.Transport

// PSError wraps every error the TPS API returns — the analogue of the
// paper's PSException.
type PSError struct {
	// Op is the API operation that failed ("publish", "subscribe", ...).
	Op string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *PSError) Error() string { return "tps: " + e.Op + ": " + e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *PSError) Unwrap() error { return e.Err }

func psErr(op string, err error) error {
	if err == nil {
		return nil
	}
	return &PSError{Op: op, Err: err}
}

// Config configures a Platform.
type Config struct {
	// Name is the peer's human-readable name.
	Name string
	// ListenTCP, when non-empty (e.g. "0.0.0.0:9701"), starts the TCP
	// transport on that address.
	ListenTCP string
	// Seeds are rendezvous addresses ("tcp://host:port", "mem://node").
	Seeds []string
	// Rendezvous makes this peer a rendezvous/relay daemon serving every
	// event group, in addition to its normal duties.
	Rendezvous bool
	// Firewalled declares that this peer cannot accept unsolicited
	// inbound connections; it will rely on relays.
	Firewalled bool
	// Codec selects the event serialisation: "gob" (default) or "json".
	Codec string
	// FindTimeout bounds the initial advertisement search before a type
	// advertisement is created (default 2s).
	FindTimeout time.Duration
	// FindInterval is the background advertisement finder period
	// (default 1s).
	FindInterval time.Duration
	// LeaseTTL overrides the rendezvous lease duration.
	LeaseTTL time.Duration
	// AdminAddr, when non-empty (e.g. "127.0.0.1:7700" or
	// "127.0.0.1:0"), serves the embedded HTTP/JSON-RPC admin surface on
	// that address: GET /stats, /metrics (Prometheus text exposition),
	// /peers, /subscriptions, /health, /trace and POST /rpc (see
	// OBSERVABILITY.md). Off by default. The server carries no
	// authentication — bind loopback unless the network is trusted.
	AdminAddr string
	// LogDir, when non-empty, opens a durable per-topic event log in
	// that directory. Rendezvous peers append every propagated event and
	// serve late-joiner catch-up / reconnect redelivery from it; the
	// receive-side dedupe caches turn the at-least-once replay into
	// exactly-once observable delivery. Off by default — the fire-and-
	// forget hot path is untouched without it.
	LogDir string
	// LogRetention bounds the event log; zero fields take the defaults
	// (1 MiB segments, 64 MiB per topic, no age limit).
	LogRetention LogRetention
	// LogSync selects the log fsync policy: "" or "none" (OS decides),
	// "roll" (fsync sealed segments), "always" (fsync every append).
	LogSync string
	// ReplicaSeeds are the addresses of the other rendezvous daemons in
	// this peer's replica set. A Rendezvous peer with a LogDir and
	// replica seeds anti-entropy-syncs its per-topic event logs against
	// them — exchanging digests every ReplicaSyncInterval and pulling
	// missing suffixes — so a topic's retained history survives the
	// crash of any single replica. See ROBUSTNESS.md, Replication.
	ReplicaSeeds []string
	// ReplicaSyncInterval is the anti-entropy digest cadence (default
	// 5s).
	ReplicaSyncInterval time.Duration
	// Failover switches this peer's rendezvous clients from "lease with
	// every seed" to active/standby: lease with exactly one seed and
	// re-lease against the next when the failure detector declares the
	// active dead, replaying the handover gap from the new replica's
	// copied logs. All clients of a replica set must list Seeds in the
	// same order so they converge on the same active.
	Failover bool
	// TraceRate samples events for end-to-end hop tracing: each event
	// whose ID hashes under the rate gets a trace element stamped at
	// publish and a hop recorded at every peer it crosses (publish,
	// rendezvous forward, delivery). The decision is a deterministic
	// function of the event ID, so every peer traces the same events
	// without coordination. 0 (the default) disables tracing and leaves
	// the publish hot path byte-identical; 1 traces everything. Traced
	// hops are served on the admin endpoint under /trace.
	TraceRate float64
	// AdminProfiling mounts net/http/pprof on the admin mux (GET
	// /debug/pprof/...). Off by default: profiles expose memory contents
	// and cost CPU to capture — enable only on loopback-bound admin
	// addresses or trusted networks.
	AdminProfiling bool
}

// LogRetention bounds the durable event log per topic.
type LogRetention struct {
	// SegmentBytes caps one log segment before rolling to the next.
	SegmentBytes int64
	// MaxBytes caps the retained bytes per topic; oldest sealed
	// segments are deleted first.
	MaxBytes int64
	// MaxAge drops sealed segments whose newest entry is older.
	MaxAge time.Duration
}

// Option customises NewPlatform.
type Option func(*platformOptions)

type platformOptions struct {
	transports []Transport
}

// WithTransport attaches an additional transport (simulated WANs, test
// fabrics).
func WithTransport(t Transport) Option {
	return func(o *platformOptions) { o.transports = append(o.transports, t) }
}

// Platform is the per-process TPS runtime: one JXTA peer, one type
// registry, shared by all engines the process creates.
type Platform struct {
	peer   *peer.Peer
	reg    *typereg.Registry
	codec  codec.Codec
	ftime  time.Duration
	fint   time.Duration
	daemon *peer.Daemon
	name   string

	// Observability: the stats registry every subsystem snapshots into,
	// and the optional embedded admin server reading from it.
	obsreg *obs.Registry
	admin  *admin.Server
	tcp    *tcpnet.Transport
	log    *eventlog.Log

	// Tracing: the peer-local hop store every subsystem records sampled
	// events into, and the sampling rate engines inherit.
	tracer *trace.Store
	trate  float64

	// engMu guards the live core engines, tracked so Stats and Inspect
	// cover engines created at any time.
	engMu   sync.Mutex
	engines []*engine.Engine
}

// NewPlatform boots the peer-to-peer substrate: transports, net peer
// group, and (for rendezvous peers) the daemon stack.
func NewPlatform(cfg Config, opts ...Option) (*Platform, error) {
	var po platformOptions
	for _, opt := range opts {
		opt(&po)
	}
	transports := po.transports
	var tcp *tcpnet.Transport
	if cfg.ListenTCP != "" {
		t, err := tcpnet.Listen(cfg.ListenTCP)
		if err != nil {
			return nil, psErr("platform", err)
		}
		tcp = t
		transports = append(transports, t)
	}
	if len(transports) == 0 {
		return nil, psErr("platform", errors.New("no transports: set ListenTCP or use WithTransport"))
	}
	c, err := codec.ByName(defaultStr(cfg.Codec, "gob"))
	if err != nil {
		return nil, psErr("platform", err)
	}
	role := rendezvous.RoleEdge
	if cfg.Rendezvous {
		role = rendezvous.RoleRendezvous
	}
	seeds := make([]endpoint.Address, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		seeds = append(seeds, endpoint.Address(s))
	}
	var elog *eventlog.Log
	if cfg.LogDir != "" {
		policy, err := eventlog.ParseSyncPolicy(cfg.LogSync)
		if err != nil {
			return nil, psErr("platform", err)
		}
		elog, err = eventlog.Open(eventlog.Config{
			Dir: cfg.LogDir,
			Retention: eventlog.Retention{
				SegmentBytes: cfg.LogRetention.SegmentBytes,
				MaxBytes:     cfg.LogRetention.MaxBytes,
				MaxAge:       cfg.LogRetention.MaxAge,
			},
			Sync: policy,
		})
		if err != nil {
			return nil, psErr("platform", err)
		}
	}
	replicaSeeds := make([]endpoint.Address, 0, len(cfg.ReplicaSeeds))
	for _, s := range cfg.ReplicaSeeds {
		replicaSeeds = append(replicaSeeds, endpoint.Address(s))
	}
	tracer := trace.NewStore(trace.DefaultMaxEvents)
	p, err := peer.New(peer.Config{
		Name:         cfg.Name,
		Role:         role,
		Seeds:        seeds,
		LeaseTTL:     cfg.LeaseTTL,
		Firewalled:   cfg.Firewalled,
		Log:          elog,
		Tracer:       tracer,
		ReplicaSeeds: replicaSeeds,
		SyncInterval: cfg.ReplicaSyncInterval,
		Failover:     cfg.Failover,
	}, transports...)
	if err != nil {
		if elog != nil {
			_ = elog.Close()
		}
		return nil, psErr("platform", err)
	}
	pl := &Platform{
		peer:   p,
		reg:    typereg.New(),
		codec:  c,
		ftime:  cfg.FindTimeout,
		fint:   cfg.FindInterval,
		name:   cfg.Name,
		obsreg: obs.NewRegistry(),
		tcp:    tcp,
		log:    elog,
		tracer: tracer,
		trate:  cfg.TraceRate,
	}
	if cfg.Rendezvous {
		d, err := p.EnableDaemon()
		if err != nil {
			p.Close()
			return nil, psErr("platform", err)
		}
		pl.daemon = d
	}
	pl.registerProviders()
	if cfg.AdminAddr != "" {
		srv, err := admin.New(admin.Config{
			Addr:      cfg.AdminAddr,
			Registry:  pl.obsreg,
			Inspect:   pl.Inspect,
			Health:    pl.health,
			Trace:     pl.tracer,
			Profiling: cfg.AdminProfiling,
		})
		if err != nil {
			pl.Close()
			return nil, psErr("platform", err)
		}
		pl.admin = srv
	}
	return pl, nil
}

// registerProviders wires the six instrumented subsystems into the
// stats registry. Providers are aggregate closures evaluated at Collect
// time, so groups joined and engines created later are covered without
// re-registration; the per-message hot paths are untouched (they keep
// bumping the same atomic counters and pay nothing until a collect).
func (p *Platform) registerProviders() {
	r := p.obsreg
	r.RegisterFunc("endpoint", func() obs.Snapshot {
		return p.peer.Endpoint().Snapshot()
	})
	if p.tcp != nil {
		r.RegisterFunc("tcpnet", func() obs.Snapshot { return p.tcp.Snapshot() })
	}
	r.RegisterFunc("engine", func() obs.Snapshot {
		engines := p.coreEngines()
		if len(engines) == 0 {
			return engine.ZeroSnapshot()
		}
		snaps := make([]obs.Snapshot, 0, len(engines))
		for _, e := range engines {
			snaps = append(snaps, e.Snapshot())
		}
		return obs.Merge("engine", snaps...)
	})
	r.RegisterFunc("wire", func() obs.Snapshot {
		var snaps []obs.Snapshot
		for _, g := range p.peer.Groups() {
			if g.Wire != nil {
				snaps = append(snaps, g.Wire.Snapshot())
			}
		}
		return obs.Merge("wire", snaps...)
	})
	r.RegisterFunc("rendezvous", func() obs.Snapshot {
		var snaps []obs.Snapshot
		for _, g := range p.peer.Groups() {
			if g.Rendezvous != nil {
				snaps = append(snaps, g.Rendezvous.Snapshot())
			}
		}
		if p.daemon != nil && p.daemon.Rendezvous != nil {
			snaps = append(snaps, p.daemon.Rendezvous.Snapshot())
		}
		return obs.Merge("rendezvous", snaps...)
	})
	r.RegisterFunc("seen", func() obs.Snapshot {
		var snaps []obs.Snapshot
		for _, c := range p.seenCaches() {
			snaps = append(snaps, c.Snapshot())
		}
		return obs.Merge("seen", snaps...)
	})
	if p.log != nil {
		r.RegisterFunc("eventlog", func() obs.Snapshot { return p.log.Snapshot() })
	}
}

// seenCaches collects every live dedupe cache: the wire and rendezvous
// caches of each joined group, the daemon's, and each engine's
// event-level cache.
func (p *Platform) seenCaches() []*seen.Cache {
	var out []*seen.Cache
	for _, g := range p.peer.Groups() {
		if g.Wire != nil {
			if c := g.Wire.SeenCache(); c != nil {
				out = append(out, c)
			}
		}
		if g.Rendezvous != nil {
			out = append(out, g.Rendezvous.SeenCache())
		}
	}
	if p.daemon != nil && p.daemon.Rendezvous != nil {
		out = append(out, p.daemon.Rendezvous.SeenCache())
	}
	for _, e := range p.coreEngines() {
		out = append(out, e.SeenCache())
	}
	return out
}

func (p *Platform) coreEngines() []*engine.Engine {
	p.engMu.Lock()
	defer p.engMu.Unlock()
	return append([]*engine.Engine(nil), p.engines...)
}

func (p *Platform) trackEngine(e *engine.Engine) {
	p.engMu.Lock()
	defer p.engMu.Unlock()
	p.engines = append(p.engines, e)
}

func (p *Platform) untrackEngine(e *engine.Engine) {
	p.engMu.Lock()
	defer p.engMu.Unlock()
	for i, cur := range p.engines {
		if cur == e {
			p.engines = append(p.engines[:i], p.engines[i+1:]...)
			return
		}
	}
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// PeerID returns the peer's identity in URN form.
func (p *Platform) PeerID() string { return p.peer.ID().String() }

// Addresses returns the peer's reachable addresses, best first.
func (p *Platform) Addresses() []string {
	addrs := p.peer.Addresses()
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = string(a)
	}
	return out
}

// AwaitRendezvous blocks until the peer holds a rendezvous lease, or the
// timeout elapses. Peers configured without seeds report false.
func (p *Platform) AwaitRendezvous(timeout time.Duration) bool {
	net := p.peer.NetGroup()
	return net != nil && net.AwaitRendezvous(timeout)
}

// StatsView is the coherent multi-subsystem metrics view Platform.Stats
// returns and the admin surface serves on GET /stats: one snapshot per
// instrumented subsystem (engine, wire, endpoint, tcpnet, rendezvous,
// seen) plus per-second rates derived between calls. See
// OBSERVABILITY.md for the schema.
type StatsView = obs.View

// StatsSnapshot is one subsystem's named counters and gauges inside a
// StatsView.
type StatsSnapshot = obs.Snapshot

// Inspection is the structural self-description Platform.Inspect
// returns: connected peers with failure-detector state, the live
// subscription table, and the registered type catalog.
type Inspection = obs.Inspection

// PeerEntry is one remote peer (or configured seed) in an Inspection.
type PeerEntry = obs.PeerEntry

// SubscriptionEntry is one subscribed type root in an Inspection.
type SubscriptionEntry = obs.SubscriptionEntry

// Stats collects a point-in-time view of every instrumented subsystem.
// It is safe to call at any time, concurrently with publishing and
// delivery: subsystems count on atomic counters, and collection adds
// nothing to the publish→deliver hot path.
func (p *Platform) Stats() StatsView { return p.obsreg.Collect() }

// Inspect reports the peer's structure: identity, connected peers and
// their failure-detector state, live subscriptions, registered types.
func (p *Platform) Inspect() Inspection {
	in := Inspection{
		Schema:     obs.SchemaVersion,
		PeerID:     p.PeerID(),
		Name:       p.name,
		Addresses:  p.Addresses(),
		Rendezvous: p.daemon != nil,
	}
	for _, g := range p.peer.Groups() {
		if g.Rendezvous != nil {
			in.Peers = append(in.Peers, g.Rendezvous.PeersView()...)
		}
	}
	if p.daemon != nil && p.daemon.Rendezvous != nil {
		in.Peers = append(in.Peers, p.daemon.Rendezvous.PeersView()...)
	}
	for _, e := range p.coreEngines() {
		in.Subscriptions = append(in.Subscriptions, e.SubscriptionsView()...)
		in.Cursors = append(in.Cursors, e.CursorsView()...)
	}
	if p.log != nil {
		in.EventLog = p.log.TopicsView()
	}
	if p.daemon != nil && p.daemon.Rendezvous != nil {
		in.Replicas = p.daemon.Rendezvous.ReplicasView()
	}
	in.Types = p.reg.Paths()
	return in
}

// AdminAddr returns the bound address of the embedded admin server, or
// "" when Config.AdminAddr was empty. With ":0" configured this is how
// the ephemeral port is discovered.
func (p *Platform) AdminAddr() string {
	if p.admin == nil {
		return ""
	}
	return p.admin.Addr()
}

// health is the admin /health source: a seeded peer that holds no
// rendezvous lease (what AwaitRendezvous would time out on) is
// degraded; unseeded peers and rendezvous daemons are healthy while
// running. A peer whose event log is failing appends or fsyncs is
// degraded with the I/O error as the reason — a dying disk becomes
// visible here (and in tps_eventlog_io_errors_total) before it becomes
// data loss. The log error is sticky until an append succeeds again.
func (p *Platform) health() error {
	net := p.peer.NetGroup()
	if net == nil {
		return errors.New("platform closed")
	}
	rdv := net.Rendezvous
	if rdv == nil {
		return errors.New("net group closed")
	}
	if rdv.Seeded() && len(rdv.ConnectedRendezvous()) == 0 {
		return errors.New("no rendezvous lease held")
	}
	if p.log != nil {
		if err := p.log.Err(); err != nil {
			return fmt.Errorf("event log failing: %w", err)
		}
	}
	return nil
}

// Close shuts the platform down: the admin server first (so /stats
// never reads a half-closed substrate), then all engines' groups, the
// daemon stack if any, and the transports.
func (p *Platform) Close() {
	if p.admin != nil {
		_ = p.admin.Close()
		p.admin = nil
	}
	if p.daemon != nil {
		p.daemon.Close()
		p.daemon = nil
	}
	p.peer.Close()
	if p.log != nil {
		_ = p.log.Close()
		p.log = nil
	}
}

// Register adds T to the platform's type registry as a hierarchy root.
// Registration is the paper's "type definition phase": peers must agree
// on the type model a priori (§3.2).
func Register[T any](p *Platform) error {
	_, err := p.reg.Register(typeOf[T](), nil)
	return psErr("register", err)
}

// RegisterSub adds T as a subtype of Parent: subscriptions to Parent
// also deliver T instances (Figure 7). Parent must be registered first.
// For the delivered values to be visible through a Parent-typed
// interface, Parent should be a Go interface type that T implements;
// struct parents still organise the subject hierarchy for discovery.
func RegisterSub[T, Parent any](p *Platform) error {
	parent, ok := p.reg.NodeByType(typeOf[Parent]())
	if !ok {
		return psErr("register", fmt.Errorf("%w: parent %v", typereg.ErrNotRegistered, typeOf[Parent]()))
	}
	_, err := p.reg.Register(typeOf[T](), parent)
	return psErr("register", err)
}

// typeOf yields the reflect.Type of T, working for interface types too.
func typeOf[T any]() reflect.Type {
	return reflect.TypeOf((*T)(nil)).Elem()
}
