// bench_test.go maps every figure of the paper's evaluation (§5) to a
// testing.B benchmark, plus ablation benches for the design choices
// DESIGN.md calls out. The figure benches drive the same benchkit
// harness as cmd/benchfig, at a compressed time scale; regenerating the
// actual curves is cmd/benchfig's job.
package tps_test

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	tps "github.com/tps-p2p/tps"
	"github.com/tps-p2p/tps/internal/benchkit"
	"github.com/tps-p2p/tps/internal/core/codec"
	"github.com/tps-p2p/tps/internal/core/typereg"
	"github.com/tps-p2p/tps/internal/eventlog"
	"github.com/tps-p2p/tps/internal/jxta/jid"
	"github.com/tps-p2p/tps/internal/jxta/message"
	"github.com/tps-p2p/tps/internal/jxta/rendezvous"
	"github.com/tps-p2p/tps/internal/jxta/seen"
	"github.com/tps-p2p/tps/internal/jxta/transport/memnet"
	"github.com/tps-p2p/tps/internal/netsim"
	"github.com/tps-p2p/tps/internal/obs/hist"
	"github.com/tps-p2p/tps/internal/srapp"
)

func benchProfile() benchkit.Profile { return benchkit.Paper2001(0.001) }

func benchCluster(b *testing.B, stack benchkit.Stack, pubs, subs int) *benchkit.Cluster {
	b.Helper()
	c, err := benchkit.NewCluster(benchkit.Config{
		Stack: stack, Publishers: pubs, Subscribers: subs, Profile: benchProfile(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

// BenchmarkFig18InvocationTime measures the publisher's per-event send
// cost (the paper's Figure 18) for each stack and subscriber count.
// ns/op is the invocation time.
func BenchmarkFig18InvocationTime(b *testing.B) {
	for _, stack := range benchkit.DefaultStacks {
		for _, subs := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/%dsub", stack, subs), func(b *testing.B) {
				c := benchCluster(b, stack, 1, subs)
				offer := c.Offer(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.Pubs[0].Publish(offer); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				c.WaitQuiesce(30 * time.Second)
			})
		}
	}
}

// BenchmarkFig19PublisherThroughput reports the send-side event rate
// (the paper's Figure 19) as events/sec.
func BenchmarkFig19PublisherThroughput(b *testing.B) {
	for _, stack := range benchkit.DefaultStacks {
		for _, subs := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/%dsub", stack, subs), func(b *testing.B) {
				c := benchCluster(b, stack, 1, subs)
				offer := c.Offer(0)
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					if err := c.Pubs[0].Publish(offer); err != nil {
						b.Fatal(err)
					}
				}
				elapsed := time.Since(start)
				b.StopTimer()
				if elapsed > 0 {
					b.ReportMetric(float64(b.N)/elapsed.Seconds(), "events/sec")
				}
				c.WaitQuiesce(30 * time.Second)
			})
		}
	}
}

// BenchmarkFig20SubscriberThroughput floods the subscriber and reports
// its drain rate (the paper's Figure 20) as events/sec. The receiver's
// simulated processing cost bounds the rate, so the metric reflects the
// saturation plateau, not the publish loop.
func BenchmarkFig20SubscriberThroughput(b *testing.B) {
	for _, stack := range benchkit.DefaultStacks {
		for _, pubs := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/%dpub", stack, pubs), func(b *testing.B) {
				c := benchCluster(b, stack, pubs, 1)
				offer := c.Offer(0)
				base := c.Subs[0].Received()
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					if err := c.Pubs[i%pubs].Publish(offer); err != nil {
						b.Fatal(err)
					}
				}
				// Drain: subscriber throughput is measured at the
				// receiving side.
				deadline := time.Now().Add(60 * time.Second)
				for c.Subs[0].Received() < base+b.N && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				elapsed := time.Since(start)
				b.StopTimer()
				got := c.Subs[0].Received() - base
				if elapsed > 0 {
					b.ReportMetric(float64(got)/elapsed.Seconds(), "events/sec")
				}
			})
		}
	}
}

// --- ablations ---

// BenchmarkAblationCodec compares the gob and json event codecs (the
// "common type model" tax, §3.2/§6).
func BenchmarkAblationCodec(b *testing.B) {
	offer := srapp.Pad(srapp.SkiRental{Shop: "XTremShop", Brand: "Salomon", Price: 14, NumberOfDays: 100}, 1710)
	reg := typereg.New()
	if _, err := reg.Register(reflect.TypeOf(srapp.SkiRental{}), nil); err != nil {
		b.Fatal(err)
	}
	for _, c := range []codec.Codec{codec.Gob{}, codec.JSON{}} {
		c := c
		b.Run("encode/"+c.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(offer); err != nil {
					b.Fatal(err)
				}
			}
		})
		data, err := c.Encode(offer)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("decode/"+c.Name(), func(b *testing.B) {
			b.ReportAllocs()
			typ := reflect.TypeOf(srapp.SkiRental{})
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(data, typ); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDedupe measures the duplicate-suppression cache on
// the hot path (every delivered wire message pays one Observe).
func BenchmarkAblationDedupe(b *testing.B) {
	b.Run("all-new", func(b *testing.B) {
		c := seen.New(seen.WithCapacity(1 << 20))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Observe(jid.FromSeed(jid.KindMessage, uint64(i)))
		}
	})
	b.Run("all-duplicate", func(b *testing.B) {
		c := seen.New()
		id := jid.FromSeed(jid.KindMessage, 1)
		c.Observe(id)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Observe(id)
		}
	})
}

// BenchmarkAblationSubtypeDispatch measures the Figure 7 delivery
// predicate at increasing hierarchy depths.
func BenchmarkAblationSubtypeDispatch(b *testing.B) {
	type l0 struct{ A int }
	type l1 struct{ A int }
	type l2 struct{ A int }
	type l3 struct{ A int }
	reg := typereg.New()
	types := []reflect.Type{
		reflect.TypeOf(l0{}), reflect.TypeOf(l1{}),
		reflect.TypeOf(l2{}), reflect.TypeOf(l3{}),
	}
	var parent *typereg.Node
	nodes := make([]*typereg.Node, 0, len(types))
	for _, t := range types {
		n, err := reg.Register(t, parent)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
		parent = n
	}
	leaf := types[len(types)-1]
	for depth, root := range nodes {
		b.Run(fmt.Sprintf("depth%d", len(nodes)-1-depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !reg.Assignable(root, leaf) {
					b.Fatal("leaf must be assignable to its ancestors")
				}
			}
		})
	}
}

// localPublishDeliverLoop assembles a single-peer platform with one
// subscriber and returns a function that publishes one paper-sized event
// and blocks until the wire loopback delivers it — the full encode, wire
// send, loopback, dedupe, dispatch round trip — plus the platform, so
// callers can read the latency histograms the loop fills.
// BenchmarkLocalPublishDeliver times it; TestHotPathAllocBudget gates
// its allocation count.
func localPublishDeliverLoop(tb testing.TB) (func(), *tps.Platform) {
	tb.Helper()
	net := netsim.New(netsim.Config{})
	tb.Cleanup(net.Close)
	node, err := net.AddNode("solo")
	if err != nil {
		tb.Fatal(err)
	}
	p, err := tps.NewPlatform(tps.Config{Name: "solo"}, tps.WithTransport(memnet.New(node)))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { p.Close() })
	if err := tps.Register[srapp.SkiRental](p); err != nil {
		tb.Fatal(err)
	}
	eng, err := tps.NewEngine[srapp.SkiRental](p)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { eng.Close() })
	iface, err := eng.NewInterface(nil)
	if err != nil {
		tb.Fatal(err)
	}
	delivered := make(chan struct{}, 1)
	err = iface.Subscribe(tps.CallBackFunc[srapp.SkiRental](func(srapp.SkiRental) error {
		delivered <- struct{}{}
		return nil
	}), nil)
	if err != nil {
		tb.Fatal(err)
	}
	offer := srapp.Pad(srapp.SkiRental{Shop: "XTremShop", Brand: "Salomon", Price: 14, NumberOfDays: 100}, 1710)
	return func() {
		if err := iface.Publish(offer); err != nil {
			tb.Fatal(err)
		}
		<-delivered
	}, p
}

// BenchmarkLocalPublishDeliver measures the full local publish→deliver
// round trip — encode, wire send, loopback, dedupe, decode, dispatch —
// on one isolated platform. allocs/op here is the hot-path allocation
// budget the zero-allocation work targets; TestHotPathAllocBudget gates
// it so regressions fail tests, not just benchmarks. The publish-stage
// latency percentiles come straight from the platform's always-on
// histograms, so the benchmark reports the same numbers an operator
// would read off `tpsctl latency` or /metrics.
func BenchmarkLocalPublishDeliver(b *testing.B) {
	roundTrip, p := localPublishDeliverLoop(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
	b.StopTimer()
	if s, ok := p.Stats().Subsystem("engine"); ok {
		if h, ok := s.Hists["publish_fanout_us"]; ok && h.Count > 0 {
			b.ReportMetric(h.Quantile(0.50), "p50_us")
			b.ReportMetric(h.Quantile(0.90), "p90_us")
			b.ReportMetric(h.Quantile(0.99), "p99_us")
		}
	}
}

// BenchmarkSeenObserve measures the dedupe cache under the two shapes the
// mesh produces: a single hot connection (serial) and many connections
// deduplicating concurrently (parallel, where the lock-striped shards
// must scale instead of serialising on a global mutex). The parallel-dup
// variant is the flooding steady state: every Observe is a replay.
func BenchmarkSeenObserve(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		c := seen.New(seen.WithCapacity(1 << 16))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Observe(jid.FromSeed(jid.KindMessage, uint64(i)))
		}
	})
	b.Run("parallel", func(b *testing.B) {
		c := seen.New(seen.WithCapacity(1 << 16))
		var next atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Observe(jid.FromSeed(jid.KindMessage, next.Add(1)))
			}
		})
	})
	b.Run("parallel-dup", func(b *testing.B) {
		c := seen.New(seen.WithCapacity(1 << 16))
		const hot = 64 // a few in-flight events echoed by every mesh path
		for i := 0; i < hot; i++ {
			c.Observe(jid.FromSeed(jid.KindMessage, uint64(i)))
		}
		var next atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Observe(jid.FromSeed(jid.KindMessage, next.Add(1)%hot))
			}
		})
	})
}

// TestHotPathAllocBudget is the regression gate behind the codec
// benchmarks: the paper-sized frame must stay within a fixed allocation
// budget per marshal/unmarshal. The seed decoded every wire ID through a
// hex string + jid.Parse round trip (19 allocs/op to unmarshal); the
// binary ID path brought that under 8, and this test keeps it there.
// The end-to-end budget gates the whole publish→deliver round trip: the
// deep-copy delivery path cost 246 allocs/op; copy-on-write Dup, the
// sharded seen cache and decode-once dispatch brought it to ~41, and
// the 120 ceiling keeps the ≥50 % win from regressing silently.
func TestHotPathAllocBudget(t *testing.T) {
	roundTrip, _ := localPublishDeliverLoop(t)
	roundTrip() // warm attachments, pools and gob type machinery
	e2eAllocs := testing.AllocsPerRun(300, roundTrip)
	if e2eAllocs > 120 {
		t.Errorf("publish→deliver round trip allocates %.1f/op, budget is 120 (pre-COW path was 246)", e2eAllocs)
	}

	m := message.New(jid.FromSeed(jid.KindPeer, 1))
	m.Path = append(m.Path, jid.FromSeed(jid.KindPeer, 2))
	payload := make([]byte, 1910)
	m.AddBytes("bench", "payload", payload)
	frame, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	marshalAllocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Marshal(); err != nil {
			t.Fatal(err)
		}
	})
	if marshalAllocs > 1 {
		t.Errorf("Marshal allocates %.1f/op, budget is 1 (the frame itself)", marshalAllocs)
	}

	buf := make([]byte, 0, m.WireSize())
	appendAllocs := testing.AllocsPerRun(200, func() {
		if _, err := m.MarshalAppend(buf); err != nil {
			t.Fatal(err)
		}
	})
	if appendAllocs > 0 {
		t.Errorf("MarshalAppend into a sized buffer allocates %.1f/op, budget is 0", appendAllocs)
	}

	unmarshalAllocs := testing.AllocsPerRun(200, func() {
		if _, err := message.Unmarshal(frame); err != nil {
			t.Fatal(err)
		}
	})
	if unmarshalAllocs > 8 {
		t.Errorf("Unmarshal allocates %.1f/op, budget is 8 (seed was 19)", unmarshalAllocs)
	}

	// The durable log's only presence on the log-off delivery path is the
	// ReplayInfo probe for the rdv:Seq cursor stamp. On a message that
	// never crossed a logging rendezvous (the default configuration) that
	// probe must cost nothing — the e2e budget above runs with the log
	// off, and this pins the reason it can.
	replayAllocs := testing.AllocsPerRun(200, func() {
		if _, _, ok := rendezvous.ReplayInfo(m); ok {
			t.Fatal("unstamped message must have no replay info")
		}
	})
	if replayAllocs > 0 {
		t.Errorf("ReplayInfo on an unstamped message allocates %.1f/op, budget is 0", replayAllocs)
	}

	// The always-on latency histograms sit on every one of those paths;
	// recording must stay two atomic adds, never an allocation, or the
	// e2e budget above silently absorbs observability cost.
	h := hist.New()
	histAllocs := testing.AllocsPerRun(200, func() { h.Observe(123 * time.Microsecond) })
	if histAllocs > 0 {
		t.Errorf("hist.Observe allocates %.1f/op, budget is 0", histAllocs)
	}
}

// BenchmarkEventLogAppend measures the durable log's append cost at the
// paper's frame size, per fsync policy. This is the price a rendezvous
// pays on its forwarding path when durability is enabled; the log-off
// default pays none of it (TestHotPathAllocBudget pins that).
func BenchmarkEventLogAppend(b *testing.B) {
	frame := make([]byte, 1990) // paper-sized event frame incl. envelope
	for _, pol := range []struct {
		name string
		sync eventlog.SyncPolicy
	}{
		{"none", eventlog.SyncNone},
		{"roll", eventlog.SyncRoll},
		{"always", eventlog.SyncAlways},
	} {
		b.Run(pol.name, func(b *testing.B) {
			log, err := eventlog.Open(eventlog.Config{Dir: b.TempDir(), Sync: pol.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := log.Append("bench-topic", func(uint64) ([]byte, error) {
					return frame, nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMessageCodec measures the wire frame codec at the paper's
// message size.
func BenchmarkMessageCodec(b *testing.B) {
	m := message.New(jid.FromSeed(jid.KindPeer, 1))
	payload := make([]byte, 1910)
	m.AddBytes("bench", "payload", payload)
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Marshal(); err != nil {
				b.Fatal(err)
			}
		}
	})
	frame, err := m.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := message.Unmarshal(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}
