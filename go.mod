module github.com/tps-p2p/tps

go 1.24.0
